(* Scaling study: how the achievable speedup grows with problem size and
   shrinks with communication latency — the trade-off at the heart of the
   paper's evaluation (§4, §6).

   Run with:  dune exec examples/scaling_study.exe *)

module R = Objectmath.Runtime
module Machine = Om_machine.Machine

let () =
  Printf.printf
    "speedup of the generated parallel RHS vs problem size and machine\n\n";
  let machines =
    [
      Machine.sparccenter_2000;
      Machine.parsytec_gcpp;
      Machine.make ~name:"zero-latency ideal" ~latency:0. ~per_byte:0.
        ~physical_procs:64 ();
    ]
  in
  Printf.printf "%-34s %10s" "problem" "kflops";
  List.iter (fun (m : Machine.t) -> Printf.printf " %22s" m.name) machines;
  Printf.printf "\n%74s\n" "(best speedup over workers 1..16, at that count)";
  List.iter
    (fun (label, n_rollers, order) ->
      let fm =
        if order = Om_models.Bearing2d.default_profile_order then
          Om_models.Bearing2d.model ~n_rollers ()
        else Om_models.Bearing_scaled.model ~n_rollers ~profile_order:order ()
      in
      let r = Om_codegen.Pipeline.compile fm in
      Printf.printf "%-34s %10.0f" label
        (Om_sched.Task.total_cost r.tasks /. 1000.);
      List.iter
        (fun machine ->
          let best = ref (0., 0) in
          for w = 1 to 16 do
            let sp = R.speedup ~machine ~nworkers:w r in
            if sp > fst !best then best := (sp, w)
          done;
          let sp, w = !best in
          Printf.printf " %15.1fx @ %2d" sp w)
        machines;
      Printf.printf "\n")
    [
      ("bearing, 4 rollers, light contact", 4, 4);
      ("bearing, 10 rollers (paper's 2D)", 10,
        Om_models.Bearing2d.default_profile_order);
      ("bearing, 20 rollers, order 40", 20, 40);
      ("bearing, 30 rollers, order 40", 30, 40);
    ];
  Printf.printf
    "\nThe same code scales with the problem (rows) but only on machines\n\
     whose per-message cost is small against the per-task computation\n\
     (columns) — the paper's central experimental finding.\n"
