(* PDE extension (paper §6 future work): discretise a PDE with the method
   of lines and push the resulting large ODE system through exactly the
   same analysis / code generation / parallel execution pipeline as the
   mechanical models.

   Run with:  dune exec examples/heat_equation.exe *)

module Dz = Om_pde.Discretize
module Fm = Om_lang.Flat_model

let () =
  (* 1. A 1D advection-diffusion problem on 200 nodes. *)
  let m = Dz.advection_diffusion_1d ~n:201 ~speed:1. ~alpha:0.005 () in
  Printf.printf "advection-diffusion, 201 nodes -> %d ODEs\n" (Fm.dim m);

  (* 2. Solve it and watch the pulse travel. *)
  let sys = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false
      m.equations
  in
  let y0 = Fm.initial_values m in
  let tr = Om_ode.Rk.rkf45 sys ~t0:0. ~y0 ~tend:0.4 in
  let profile y =
    (* A coarse ASCII rendering of the field. *)
    String.init 66 (fun k ->
        let i = k * (Array.length y - 1) / 65 in
        let v = y.(i) in
        if v > 0.75 then '#'
        else if v > 0.5 then '+'
        else if v > 0.25 then '-'
        else if v > 0.05 then '.'
        else ' ')
  in
  Printf.printf "\npulse transport (t = 0, 0.2, 0.4):\n";
  Printf.printf "  |%s|\n" (profile tr.states.(0));
  let mid =
    let n = Array.length tr.ts in
    let rec find i = if tr.ts.(i) >= 0.2 then i else find (i + 1) in
    min (n - 1) (find 0)
  in
  Printf.printf "  |%s|\n" (profile tr.states.(mid));
  Printf.printf "  |%s|\n" (profile (Om_ode.Odesys.final_state tr));

  (* 3. The same parallel code generation as for the bearing. *)
  let r = Om_codegen.Pipeline.compile m in
  Printf.printf "\ncode generation: %d tasks, %.1f kflop per RHS call\n"
    (Array.length r.tasks)
    (Om_sched.Task.total_cost r.tasks /. 1000.);
  List.iter
    (fun w ->
      let sp =
        Objectmath.Runtime.speedup
          ~machine:Om_machine.Machine.sparccenter_2000 ~nworkers:w r
      in
      Printf.printf "  SPARC, %d workers: speedup %.2f\n" w sp)
    [ 2; 4; 7 ];

  (* 4. The generated Jacobian is tridiagonal: stiff diffusion problems
     integrate cheaply with BDF + sparse analytic Jacobian. *)
  let jg = Om_codegen.Jacobian_gen.generate m in
  Printf.printf
    "\ngenerated Jacobian: %d nonzeros (%.1f%% dense) — banded, as the\n\
     5-point/3-point stencils promise\n"
    (Om_codegen.Jacobian_gen.nonzero_count jg)
    (100. *. Om_codegen.Jacobian_gen.density jg)
