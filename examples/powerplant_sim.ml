(* The hydroelectric power plant (paper fig. 3): the positive example for
   equation-system-level parallelism.

   Reproduces the SCC partitioning, schedules the subsystems on the
   condensation DAG, and simulates ten minutes of plant operation.

   Run with:  dune exec examples/powerplant_sim.exe *)

let () =
  let fm = Om_models.Powerplant.model () in
  let r = Om_codegen.Pipeline.compile fm in
  let a = r.analysis in
  Printf.printf "power plant: %d equations in %d subsystems (SCCs)\n"
    (Om_lang.Flat_model.dim fm) a.comps.count;

  (* The subsystem DAG and its parallel schedule. *)
  let layers = Om_graph.Topo.layers a.condensed in
  Printf.printf "subsystem pipeline depth: %d layers\n" (List.length layers);
  List.iter
    (fun p ->
      let sp =
        Om_sched.Dag_sched.speedup a.condensed ~weights:a.scc_weights
          ~comm:0. ~nprocs:p
      in
      Printf.printf "  %d processors: system-level speedup %.2f\n" p sp)
    [ 2; 4; 8 ];

  (* Write the dependency graph for inspection with Graphviz. *)
  Om_graph.Dot.save "powerplant_deps.dot"
    (Om_graph.Dot.with_components a.graph a.comps);
  Printf.printf "dependency graph written to powerplant_deps.dot\n";

  (* Simulate 10 minutes of operation: the dam level responds to the
     gates and the spillway threshold. *)
  Printf.printf "\nsimulating 600 s of plant operation (LSODA)...\n";
  let sys = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false
      fm.equations
  in
  let y0 = Om_lang.Flat_model.initial_values fm in
  let res = Om_ode.Lsoda.integrate sys ~t0:0. ~y0 ~tend:600. in
  let traj = res.trajectory in
  let level = Om_ode.Odesys.column traj "Dam.SurfaceLevel" sys in
  let flow1 = Om_ode.Odesys.column traj "G[1].Flow" sys in
  let n = Array.length traj.ts in
  Printf.printf "  %d steps, %d RHS calls\n" sys.counters.steps
    sys.counters.rhs_calls;
  Printf.printf "  dam level: %.3f m -> %.3f m\n" level.(0) level.(n - 1);
  Printf.printf "  gate 1 flow: %.2f -> %.2f m3/s\n" flow1.(0) flow1.(n - 1);
  (* Print a small time series of the dam level. *)
  Printf.printf "\n  t [s]    dam level [m]\n";
  List.iter
    (fun frac ->
      let k = min (n - 1) (int_of_float (frac *. float_of_int (n - 1))) in
      Printf.printf "  %6.0f    %.4f\n" traj.ts.(k) level.(k))
    [ 0.; 0.1; 0.25; 0.5; 0.75; 1.0 ]
