(* Quickstart: write an object-oriented mathematical model as text,
   flatten it to an ODE system, inspect its structure, and solve it.

   Run with:  dune exec examples/quickstart.exe *)

let model_source = {|
model Pendulum;

// A damped pendulum class; theta is measured from the vertical.
class Pendulum
  parameter g = 9.81;
  parameter length = 1.0;
  parameter damping = 0.05;

  variable theta init 0.5;
  variable omega init 0.0;

  equation der(theta) = omega;
  equation der(omega) = 0.0 - g / length * sin(theta) - damping * omega
                        + drive;
end;

// A driven pendulum refines the plain one through inheritance.
class DrivenPendulum extends Pendulum with damping = 0.2
end;

instance free of Pendulum with drive = 0.0;
instance forced of DrivenPendulum with drive = 0.5 * sin(time);
|}

let () =
  (* 1. Parse and flatten: classes, inheritance and instances compile
     away into a flat first-order ODE system. *)
  let fm = Om_lang.Flatten.flatten_string model_source in
  Printf.printf "model %s flattens to %d state variables:\n" fm.name
    (Om_lang.Flat_model.dim fm);
  List.iter
    (fun (state, rhs) ->
      Format.printf "  der(%s) = %a@." state Om_expr.Expr.pp rhs)
    fm.equations;

  (* 2. Dependency analysis: which equations form coupled subsystems? *)
  let graph = Om_lang.Flat_model.dependency_graph fm in
  let comps = Om_graph.Scc.tarjan graph in
  Printf.printf "\n%d strongly connected components (coupled subsystems)\n"
    comps.count;

  (* 3. Solve with the LSODA-style switching solver. *)
  let sys = Om_ode.Odesys.of_equations fm.equations in
  let y0 = Om_lang.Flat_model.initial_values fm in
  let result = Om_ode.Lsoda.integrate sys ~t0:0. ~y0 ~tend:10. in
  let yf = Om_ode.Odesys.final_state result.trajectory in
  Printf.printf "\nafter 10 s (%d steps, %d RHS calls):\n"
    sys.counters.steps sys.counters.rhs_calls;
  Array.iteri
    (fun i name -> Printf.printf "  %-16s % .4f\n" name yf.(i))
    sys.names;

  (* 4. Generate parallel Fortran 90, as the ObjectMath compiler did. *)
  let r = Om_codegen.Pipeline.compile fm in
  let f90 =
    Om_codegen.Fortran.generate ~mode:Om_codegen.Fortran.Parallel r.plan
      ~state_names:(Om_lang.Flat_model.state_names fm)
      ~initial:y0 ~model_name:fm.name
  in
  Printf.printf "\ngenerated %d lines of parallel Fortran 90 (%d tasks);\n"
    f90.total_lines
    (Array.length r.plan.tasks);
  Printf.printf "first lines of the RHS subroutine:\n";
  String.split_on_char '\n' f90.code
  |> List.filteri (fun i _ -> i >= 7 && i < 15)
  |> List.iter (fun l -> Printf.printf "  | %s\n" l)
