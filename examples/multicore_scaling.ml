(* Real multicore scaling of equation-level RHS evaluation.

   The paper's Figure 12 measures #RHS-calls/second against processor
   count on 1995 hardware; the rest of this repo replays that on a
   calibrated machine model.  This example runs the same LPT schedules
   on real OCaml domains (Om_parallel.Par_exec) and measures the real
   rate, writing bench_out/BENCH_parallel.json so the simulated curve
   and the measured curve can be plotted side by side.

     dune exec examples/multicore_scaling.exe            # full sweep
     dune exec examples/multicore_scaling.exe -- 500     # quicker: 500 rounds

   Trajectory identity is checked as well: integrating the bearing and
   power-plant models through Runtime with `Real_domains n` must give
   byte-identical results to sequential evaluation for every n. *)

module P = Om_codegen.Pipeline
module R = Objectmath.Runtime
module Scaling = Om_parallel.Scaling

let rounds =
  match Sys.argv with
  | [| _; n |] -> int_of_string n
  | _ -> 2000

let out_dir = "bench_out"

let sweep_workers ncores =
  List.sort_uniq compare
    (1 :: 2 :: 4 :: (if ncores > 4 then [ min ncores 8 ] else []))

let check_trajectories name (r : P.result) =
  (* Sequential reference: the same compiled tasks, evaluated in order
     on one domain, through the same solver. *)
  let tend = 2e-4 in
  let solver = R.Rk4 (tend /. 20.) in
  let y0 = Om_lang.Flat_model.initial_values r.model in
  let sys =
    Om_ode.Odesys.make
      ~names:(Om_lang.Flat_model.state_names r.model)
      ~dim:r.compiled.dim (P.rhs_fn r)
  in
  let reference =
    Om_ode.Rk.integrate_fixed Om_ode.Rk.rk4 sys ~t0:0. ~y0 ~tend
      ~h:(tend /. 20.)
  in
  List.iter
    (fun (n, scheduling, label) ->
      let rep =
        R.execute
          ~config:
            { R.default_config with execution = R.Real_domains n; scheduling }
          ~solver ~tend r
      in
      let same =
        rep.trajectory.ts = reference.ts
        && rep.trajectory.states = reference.states
      in
      Printf.printf "  %s, %d domain(s)%s: trajectory %s\n" name n label
        (if same then "byte-identical to sequential" else "DIVERGED");
      if not same then exit 1)
    [
      (1, R.Static, "");
      (2, R.Static, "");
      (4, R.Static, "");
      (2, R.Semidynamic 5, ", semidynamic 5");
      (4, R.Semidynamic 5, ", semidynamic 5");
    ]

let () =
  let ncores = Domain.recommended_domain_count () in
  let workers = sweep_workers ncores in
  Printf.printf
    "Real multicore RHS scaling — %d core(s), workers %s, %d rounds/point\n\n"
    ncores
    (String.concat ", " (List.map string_of_int workers))
    rounds;
  let models =
    [
      ("bearing2d", P.compile (Om_models.Bearing2d.model ()));
      ("powerplant", P.compile (Om_models.Powerplant.model ()));
    ]
  in
  (* Static LPT and the measured semi-dynamic rescheduler, side by
     side in the same JSON (the paper's §3.2.3 comparison on real
     hardware). *)
  let series =
    List.concat_map
      (fun (name, r) ->
        List.map
          (fun semidynamic ->
            let s = Scaling.measure ~rounds ?semidynamic ~name ~workers r in
            Format.printf "%a@." Scaling.pp_series s;
            s)
          [ None; Some 25 ])
      models
  in
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let path = Filename.concat out_dir "BENCH_parallel.json" in
  Scaling.write_json ~path ~ncores series;
  Printf.printf "results written to %s\n\n" path;
  Printf.printf "trajectory identity under Runtime.Real_domains:\n";
  List.iter (fun (name, r) -> check_trajectories name r) models;
  if ncores = 1 then
    Printf.printf
      "\n(single-core host: every worker count shares one CPU, so the\n\
       measured curve is flat and below sequential — round barriers cost\n\
       real context switches here.  On an N-core machine the same binary\n\
       shows near-linear scaling until workers exceed cores.)\n"
