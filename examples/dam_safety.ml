(* Parameter sweep: the paper's own use case for the power plant model —
   "the model can be used for verifying dam safety margins, for example"
   (§2.5).  Sweep the river inflow and watch the steady dam level and the
   spillway flow; the safety margin is the inflow at which the spillway
   must engage.

   Run with:  dune exec examples/dam_safety.exe *)

let () =
  let source = Om_models.Powerplant.source () in
  let inflows = [ 180.; 300.; 420.; 480.; 540.; 600.; 660. ] in
  Printf.printf "sweeping river inflow over %d values (2 simulated hours each)...\n\n"
    (List.length inflows);
  let level_points =
    Objectmath.Sweep.run ~source ~cls:"Dam" ~param:"inflow" ~values:inflows
      ~tend:7200.
      ~metric:(Objectmath.Sweep.final_value "Dam.SurfaceLevel")
      ()
  in
  let spill_points =
    Objectmath.Sweep.run ~source ~cls:"Dam" ~param:"inflow" ~values:inflows
      ~tend:7200.
      ~metric:(Objectmath.Sweep.final_value "Spill.Flow")
      ()
  in
  Printf.printf "%12s %18s %18s\n" "inflow m3/s" "dam level [m]"
    "spillway [m3/s]";
  List.iter2
    (fun (l : Objectmath.Sweep.point) (s : Objectmath.Sweep.point) ->
      Printf.printf "%12.0f %18.3f %18.2f%s\n" l.value l.metric s.metric
        (if s.metric > 1. then "   <- spillway engaged" else ""))
    level_points spill_points;
  (* The safety margin: the largest swept inflow the gates absorb without
     spilling. *)
  let margin =
    List.fold_left
      (fun acc (s : Objectmath.Sweep.point) ->
        if s.metric <= 1. then Float.max acc s.value else acc)
      0. spill_points
  in
  Printf.printf
    "\nsafety margin: gates absorb inflows up to ~%.0f m3/s before the\n\
     spillway engages (crest at 10.5 m)\n"
    margin;
  Objectmath.Plot.save_svg ~path:"dam_safety.svg"
    ~title:"Dam level and spillway flow vs river inflow"
    ~x_label:"inflow [m3/s]"
    [
      Objectmath.Sweep.to_series "dam level [m]" level_points;
      Objectmath.Sweep.to_series "spillway [m3/s]" spill_points;
    ];
  Printf.printf "plot written to dam_safety.svg\n"
