(* The paper's flagship application: the 2D rolling bearing (fig. 4-6).

   Builds the model, reproduces the dependency analysis, simulates the
   bearing dynamics with the LSODA-style solver, and executes the
   generated right-hand-side tasks on both simulated target machines.

   Run with:  dune exec examples/bearing_sim.exe *)

module R = Objectmath.Runtime
module Machine = Om_machine.Machine

let () =
  Printf.printf "building the 2D rolling bearing model...\n";
  let fm = Om_models.Bearing2d.model () in
  let r = Om_codegen.Pipeline.compile fm in
  Printf.printf "  %d state variables, %d tasks, %.0f kflop per RHS call\n"
    (Om_lang.Flat_model.dim fm)
    (Array.length r.tasks)
    (Om_sched.Task.total_cost r.tasks /. 1000.);

  (* Dependency structure: one giant SCC (paper figure 6). *)
  let a = r.analysis in
  Printf.printf "  SCCs: %d (sizes %s) — all computation in one subsystem\n"
    a.comps.count
    (String.concat ", "
       (Array.to_list
          (Array.map (fun m -> string_of_int (List.length m)) a.comps.members)));

  (* Simulate half a shaft revolution and report the dynamics. *)
  let tend = 5e-3 in
  Printf.printf "\nsimulating %.3f s of bearing motion (LSODA)...\n" tend;
  let sys = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false
      fm.equations
  in
  let y0 = Om_lang.Flat_model.initial_values fm in
  let res = Om_ode.Lsoda.integrate sys ~t0:0. ~y0 ~tend in
  let traj = res.trajectory in
  let time_series name = Om_ode.Odesys.column traj name sys in
  let iy = time_series "Inner.y" in
  let w1r = time_series "W[1].R" in
  let n = Array.length traj.ts in
  Printf.printf "  %d accepted steps, %d RHS calls, final mode %s\n"
    sys.counters.steps sys.counters.rhs_calls
    (Fmt.str "%a" Om_ode.Lsoda.pp_mode res.final_mode);
  Printf.printf "  inner ring settles at y = %.4f mm under the 500 N load\n"
    (1000. *. iy.(n - 1));
  Printf.printf "  roller 1 rides at radius %.3f mm\n" (1000. *. w1r.(n - 1));

  (* How many rollers carry load at the end? (contact conditionals) *)
  let loaded = ref 0 in
  let yf = Om_ode.Odesys.final_state traj in
  let idx name =
    match Array.find_index (fun n -> n = name) sys.names with
    | Some i -> i
    | None -> assert false
  in
  for k = 1 to 10 do
    let r_k = yf.(idx (Printf.sprintf "W[%d].R" k)) in
    let fi_k = yf.(idx (Printf.sprintf "W[%d].Fi" k)) in
    let px = r_k *. Float.cos fi_k and py = r_k *. Float.sin fi_k in
    let ix = yf.(idx "Inner.x") and iy' = yf.(idx "Inner.y") in
    let dist = Float.hypot (px -. ix) (py -. iy') in
    if 0.05 -. dist > 0. then incr loaded
  done;
  Printf.printf "  %d of 10 rollers in contact with the inner raceway\n"
    !loaded;

  (* The inner ring's orbit under load, as an SVG plot. *)
  let times = Array.init 200 (fun i -> tend *. float_of_int i /. 199.) in
  let samples = Om_ode.Odesys.sample traj ~times in
  let orbit =
    Om_viz.Plot.series "inner ring orbit [mm]"
      (Array.to_list
         (Array.map
            (fun y -> (1000. *. y.(idx "Inner.x"), 1000. *. y.(idx "Inner.y")))
            samples))
  in
  Om_viz.Plot.save_svg ~path:"bearing_orbit.svg"
    ~title:"Inner ring centre orbit under 500 N load" ~x_label:"x [mm]"
    ~y_label:"y [mm]" [ orbit ];
  Printf.printf "  orbit plot written to bearing_orbit.svg\n";

  (* Contact events: when does roller 1 enter/leave the load zone?
     This is ODEPACK's LSODAR-style root finding on the contact gap. *)
  let sys_ev = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false
      fm.equations
  in
  let gap roller _t y =
    (* inner-contact compression: positive while in contact *)
    let r1 = y.(idx (Printf.sprintf "W[%d].R" roller)) in
    let fi1 = y.(idx (Printf.sprintf "W[%d].Fi" roller)) in
    let px = r1 *. Float.cos fi1 and py = r1 *. Float.sin fi1 in
    let d = Float.hypot (px -. y.(idx "Inner.x")) (py -. y.(idx "Inner.y")) in
    0.05 -. d
  in
  (* Watch long enough for the cage to carry roller 1 through the load
     zone boundary (~1/3 of a revolution). *)
  let tend_ev = 0.04 in
  let r_ev =
    Om_ode.Events.integrate
      ~events:
        (List.map
           (fun k ->
             { Om_ode.Events.label = Printf.sprintf "roller%d" k;
               g = gap k })
           [ 5; 10 ])
      sys_ev ~t0:0. ~y0 ~tend:tend_ev
  in
  Printf.printf "\ncontact transitions in %.3f s (rollers 5 and 10): %d\n"
    tend_ev
    (List.length r_ev.occurrences);
  List.iteri
    (fun k (o : Om_ode.Events.occurrence) ->
      if k < 6 then
        Printf.printf "  t = %.5f s: %s %s the load zone\n" o.time
          o.event_label
          (if o.rising then "enters" else "leaves"))
    r_ev.occurrences;

  (* Parallel execution of the generated code on both 1995 machines. *)
  Printf.printf "\nparallel RHS execution (simulated machines):\n";
  List.iter
    (fun (m : Machine.t) ->
      Printf.printf "  %s:\n" m.name;
      List.iter
        (fun workers ->
          let config =
            { R.default_config with
              R.machine = m; nworkers = workers;
              strategy = Om_machine.Supervisor.Broadcast_state;
              scheduling = R.Semidynamic 10 }
          in
          let rep = R.execute ~config ~solver:(R.Rk4 2e-5) ~tend:1e-3 r in
          Printf.printf
            "    %2d workers: %7.1f RHS-calls/s (sched overhead %.2f%%)\n"
            workers rep.rhs_calls_per_sec
            (100. *. rep.sched_overhead_seconds /. rep.sim_seconds))
        [ 1; 4; 7 ])
    [ Machine.sparccenter_2000; Machine.parsytec_gcpp ]
