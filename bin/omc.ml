(* omc — the ObjectMath reproduction compiler driver.

   Subcommands mirror the paper's toolchain (Figure 7): [analyze] performs
   the dependency/SCC analysis, [compile] runs the code generator and
   emits Fortran 90 / C, [simulate] integrates the model, and [bench]
   executes the generated RHS on a simulated parallel machine. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- shared arguments ---- *)

let builtin_models =
  [
    ("bearing2d", fun () -> Om_models.Bearing2d.source ());
    ("powerplant", fun () -> Om_models.Powerplant.source ());
    ("servo", fun () -> Om_models.Servo.source ());
    ("bearing3d", fun () -> Om_models.Bearing_scaled.source ());
  ]

let model_source file builtin =
  match (file, builtin) with
  | Some path, None -> Ok (read_file path)
  | None, Some name -> (
      match List.assoc_opt name builtin_models with
      | Some f -> Ok (f ())
      | None ->
          Error
            (Printf.sprintf "unknown builtin model %s (available: %s)" name
               (String.concat ", " (List.map fst builtin_models))))
  | Some _, Some _ -> Error "give either FILE or --model, not both"
  | None, None -> Error "a model is required: FILE or --model NAME"

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"ObjectMath model source file.")

let builtin_arg =
  Arg.(value & opt (some string) None
       & info [ "model" ] ~docv:"NAME"
           ~doc:"Use a builtin model: bearing2d, powerplant, servo, \
                 bearing3d.")

(* --jac-mode NAME: auto | dense | sparse | banded:ML:MU. *)
let parse_jac_mode s =
  match String.lowercase_ascii s with
  | "auto" -> Om_ode.Odesys.Auto
  | "dense" -> Om_ode.Odesys.Dense
  | "sparse" -> Om_ode.Odesys.Sparse
  | other -> (
      match String.split_on_char ':' other with
      | [ "banded"; ml; mu ] -> (
          match (int_of_string_opt ml, int_of_string_opt mu) with
          | Some ml, Some mu when ml >= 0 && mu >= 0 ->
              Om_ode.Odesys.Banded (ml, mu)
          | _ ->
              Printf.eprintf "omc: bad band widths in --jac-mode %s\n" s;
              exit 2)
      | _ ->
          Printf.eprintf
            "omc: unknown jac mode %s (auto, dense, sparse, banded:ML:MU)\n" s;
          exit 2)

let jac_mode_arg =
  Arg.(value & opt string "auto"
       & info [ "jac-mode" ] ~docv:"MODE"
           ~doc:"Newton-matrix strategy for the stiff solver path: \
                 $(b,auto), $(b,dense), $(b,sparse) or $(b,banded:ML:MU). \
                 $(b,auto) takes the colored-column sparse path on large \
                 sparse systems; trajectories are bitwise-identical \
                 across modes.")

let load file builtin =
  match model_source file builtin with
  | Error e ->
      Printf.eprintf "omc: %s\n" e;
      exit 2
  | Ok src -> (
      match Om_lang.Flatten.flatten_string src with
      | fm -> (src, fm)
      | exception Om_lang.Flatten.Error msg ->
          Printf.eprintf "omc: semantic error: %s\n" msg;
          exit 1
      | exception Om_lang.Parser.Error (msg, pos) ->
          Printf.eprintf "omc: syntax error at %d:%d: %s\n" pos.line pos.col
            msg;
          exit 1
      | exception Om_lang.Lexer.Error (msg, pos) ->
          Printf.eprintf "omc: lexical error at %d:%d: %s\n" pos.line pos.col
            msg;
          exit 1)

(* ---- analyze ---- *)

let analyze_cmd =
  let run file builtin dot_path =
    let _, fm = load file builtin in
    let a = Om_codegen.Pipeline.analyse fm in
    Printf.printf "model %s: %d equations, %d SCCs (%d nontrivial)\n" fm.name
      (Om_lang.Flat_model.dim fm) a.comps.count
      (List.length a.nontrivial);
    Array.iteri
      (fun k members ->
        Printf.printf "  SCC %2d (%d): %s\n" k (List.length members)
          (String.concat ", "
             (List.map (Om_graph.Digraph.label a.graph) members)))
      a.comps.members;
    let layers = Om_graph.Topo.layers a.condensed in
    Printf.printf "condensation: %d layers (critical path)\n"
      (List.length layers);
    Printf.printf "max equation-system-level speedup: %.2f\n"
      (Om_sched.Dag_sched.max_speedup a.condensed ~weights:a.scc_weights);
    Format.printf "%a" Om_codegen.Diagnostics.pp
      (Om_codegen.Diagnostics.analyse fm);
    match dot_path with
    | Some path ->
        Om_graph.Dot.save path (Om_graph.Dot.with_components a.graph a.comps);
        Printf.printf "dependency graph written to %s\n" path
    | None -> ()
  in
  let dot =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"PATH" ~doc:"Write a Graphviz graph.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Dependency and SCC analysis (paper fig. 3/6)")
    Term.(const run $ file_arg $ builtin_arg $ dot)

(* ---- browse ---- *)

let browse_cmd =
  let run file builtin dot_path =
    let src, _ = load file builtin in
    let ast = Om_lang.Parser.parse_model src in
    Printf.printf "inheritance hierarchy:\n%s\n"
      (Om_lang.Browser.inheritance_tree ast);
    Printf.printf "composition structure:\n%s"
      (Om_lang.Browser.composition_tree ast);
    match dot_path with
    | Some path ->
        let oc = open_out path in
        output_string oc (Om_lang.Browser.to_dot ast);
        close_out oc;
        Printf.printf "\nstructure graph written to %s\n" path
    | None -> ()
  in
  let dot =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"PATH" ~doc:"Write a Graphviz graph.")
  in
  Cmd.v
    (Cmd.info "browse"
       ~doc:"Show the model's class hierarchy and composition (paper fig. 5)")
    Term.(const run $ file_arg $ builtin_arg $ dot)

(* ---- flatten ---- *)

let flatten_cmd =
  let run file builtin unparse_out =
    let _, fm = load file builtin in
    Printf.printf "model %s: %d state variables\n" fm.name
      (Om_lang.Flat_model.dim fm);
    List.iter
      (fun (s, v) -> Printf.printf "  %-28s init %g\n" s v)
      fm.states;
    List.iter
      (fun (s, e) ->
        Format.printf "  der(%s) =@[<hov 2> %a@]@." s Om_expr.Expr.pp e)
      fm.equations;
    match unparse_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Om_lang.Unparse.flat_model fm);
        close_out oc;
        Printf.printf "flat model source written to %s\n" path
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "unparse" ] ~docv:"PATH"
             ~doc:"Write the flat model back as model source text.")
  in
  Cmd.v
    (Cmd.info "flatten"
       ~doc:"Flatten classes/instances into explicit first-order ODEs")
    Term.(const run $ file_arg $ builtin_arg $ out)

(* ---- compile ---- *)

let compile_cmd =
  let run file builtin out_prefix serial =
    let src, fm = load file builtin in
    let r = Om_codegen.Pipeline.compile fm in
    let stats = Om_codegen.Stats.collect ~source:src r in
    Format.printf "%a@." Om_codegen.Stats.pp stats;
    let state_names = Om_lang.Flat_model.state_names fm in
    let initial = Om_lang.Flat_model.initial_values fm in
    let mode_f, mode_c, suffix =
      if serial then (Om_codegen.Fortran.Serial, Om_codegen.C_backend.Serial, "serial")
      else (Om_codegen.Fortran.Parallel, Om_codegen.C_backend.Parallel, "parallel")
    in
    match out_prefix with
    | None -> ()
    | Some prefix ->
        let f =
          Om_codegen.Fortran.generate ~mode:mode_f r.plan ~state_names
            ~initial ~model_name:fm.name
        in
        let c =
          Om_codegen.C_backend.generate ~mode:mode_c r.plan ~state_names
            ~initial ~model_name:fm.name
        in
        let write path text =
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc text);
          Printf.printf "wrote %s\n" path
        in
        write (Printf.sprintf "%s_%s.f90" prefix suffix) f.code;
        write (Printf.sprintf "%s_%s.c" prefix suffix) c.code;
        let jac =
          Om_codegen.Jacobian_gen.fortran
            (Om_codegen.Jacobian_gen.generate fm)
            ~state_names ~model_name:fm.name
        in
        write (Printf.sprintf "%s_jacobian.f90" prefix) jac.code;
        let mma = Om_codegen.Mathematica_backend.generate fm in
        write (Printf.sprintf "%s.m" prefix) mma.code
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"PREFIX"
             ~doc:"Write generated Fortran 90 and C code to PREFIX_*.f90/.c.")
  in
  let serial =
    Arg.(value & flag
         & info [ "serial" ] ~doc:"Generate serial code (global CSE).")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Run the code generator and report statistics")
    Term.(const run $ file_arg $ builtin_arg $ out $ serial)

(* ---- simulate ---- *)

(* Start values from a text file, one "name value" pair per line — the
   paper's §3.2 requirement that "the start values for the simulation can
   be changed without re-compilation of the application". *)
let read_start_values path fm =
  let y0 = Om_lang.Flat_model.initial_values fm in
  let names = Om_lang.Flat_model.state_names fm in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && line.[0] <> '#' then
             match String.split_on_char ' ' line |> List.filter (( <> ) "") with
             | [ name; value ] -> (
                 match Array.find_index (( = ) name) names with
                 | Some i -> y0.(i) <- float_of_string value
                 | None ->
                     Printf.eprintf "omc: unknown state %s in %s\n" name path;
                     exit 1)
             | _ ->
                 Printf.eprintf "omc: malformed line in %s: %s\n" path line;
                 exit 1
         done
       with End_of_file -> ());
      y0)

let simulate_cmd =
  let run file builtin tend solver hstep csv plot init_file jac_mode =
    let _, fm = load file builtin in
    let jac_mode = parse_jac_mode jac_mode in
    let sys = Om_ode.Odesys.of_equations fm.equations in
    let y0 =
      match init_file with
      | Some path -> read_start_values path fm
      | None -> Om_lang.Flat_model.initial_values fm
    in
    let trajectory =
      try
        match solver with
        | "lsoda" ->
            (Om_ode.Lsoda.integrate ~jac_mode sys ~t0:0. ~y0 ~tend)
              .trajectory
        | "rkf45" -> Om_ode.Rk.rkf45 sys ~t0:0. ~y0 ~tend
        | "rk4" ->
            let h = match hstep with Some h -> h | None -> tend /. 1000. in
            Om_ode.Rk.integrate_fixed Om_ode.Rk.rk4 sys ~t0:0. ~y0 ~tend ~h
        | other ->
            Printf.eprintf "omc: unknown solver %s (lsoda, rkf45, rk4)\n"
              other;
            exit 2
      with Om_guard.Om_error.Error e ->
        (* Solver failures (blown retry or step budgets) are distinct
           from model errors: exit 3, not 1. *)
        Printf.eprintf "omc: solver failure: %s\n"
          (Om_guard.Om_error.to_string e);
        exit 3
    in
    Printf.printf
      "simulated %s to t=%g: %d steps, %d RHS calls, %d Jacobians\n" fm.name
      tend sys.counters.steps sys.counters.rhs_calls sys.counters.jac_calls;
    (match Om_ode.Jacobian.mode_stats ~jac_mode sys with
    | mode, Some (nnz, colors) ->
        Printf.printf
          "jacobian: %s, %d structural nonzeros of %d x %d, %d colors (%d \
           RHS evals per fd Jacobian)\n"
          mode nnz sys.dim sys.dim colors (colors + 1)
    | _, None -> ());
    if csv then begin
      Printf.printf "t,%s\n"
        (String.concat "," (Array.to_list sys.names));
      Array.iteri
        (fun k t ->
          Printf.printf "%g,%s\n" t
            (String.concat ","
               (Array.to_list
                  (Array.map (Printf.sprintf "%g") trajectory.states.(k)))))
        trajectory.ts
    end
    else begin
      let yf = Om_ode.Odesys.final_state trajectory in
      Printf.printf "final state:\n";
      Array.iteri
        (fun i n -> Printf.printf "  %-24s % .6e\n" n yf.(i))
        sys.names
    end;
    match plot with
    | None -> ()
    | Some path ->
        (* Plot the first few state variables over time. *)
        let n_plot = min 6 sys.dim in
        let all =
          List.init n_plot (fun i ->
              Om_viz.Plot.of_arrays sys.names.(i) trajectory.ts
                (Array.map (fun y -> y.(i)) trajectory.states))
        in
        Om_viz.Plot.save_svg ~path
          ~title:(Printf.sprintf "%s trajectory" fm.name)
          ~x_label:"t" all;
        Printf.printf "trajectory plot written to %s\n" path
  in
  let tend =
    Arg.(value & opt float 1.0
         & info [ "tend" ] ~docv:"T" ~doc:"Simulation end time.")
  in
  let solver =
    Arg.(value & opt string "lsoda"
         & info [ "solver" ] ~docv:"NAME" ~doc:"lsoda, rkf45 or rk4.")
  in
  let hstep =
    Arg.(value & opt (some float) None
         & info [ "step" ] ~docv:"H" ~doc:"Fixed step size for rk4.")
  in
  let csv =
    Arg.(value & flag
         & info [ "csv" ] ~doc:"Print the whole trajectory as CSV.")
  in
  let plot =
    Arg.(value & opt (some string) None
         & info [ "plot" ] ~docv:"PATH"
             ~doc:"Write an SVG plot of the first state variables.")
  in
  let init_file =
    Arg.(value & opt (some file) None
         & info [ "init" ] ~docv:"FILE"
             ~doc:"Read start values from FILE (one 'state value' per                    line) instead of the model's init expressions.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Integrate the model's ODE system")
    Term.(const run $ file_arg $ builtin_arg $ tend $ solver $ hstep $ csv
          $ plot $ init_file $ jac_mode_arg)

(* ---- bench ---- *)

let bench_cmd =
  let run file builtin machine workers tend needed_only semidynamic fanout
      domains chaos_nan chaos_inf chaos_stall stall_micros chaos_spawn
      barrier_deadline no_guard jac_mode =
    let _, fm = load file builtin in
    let jac_mode = parse_jac_mode jac_mode in
    let r = Om_codegen.Pipeline.compile fm in
    let m =
      match machine with
      | "sparc" -> Om_machine.Machine.sparccenter_2000
      | "parsytec" -> Om_machine.Machine.parsytec_gcpp
      | "mpp" -> Om_machine.Machine.t3d_class_mpp
      | other ->
          Printf.eprintf "omc: unknown machine %s (sparc, parsytec, mpp)\n"
            other;
          exit 2
    in
    let faults =
      let fs =
        (match chaos_nan with
        | Some (task, round) ->
            [ Om_guard.Fault_plan.Nan_task { task; round } ]
        | None -> [])
        @ (match chaos_inf with
          | Some (task, round) ->
              [ Om_guard.Fault_plan.Inf_task { task; round } ]
          | None -> [])
        @ (match chaos_stall with
          | Some (worker, round) ->
              [
                Om_guard.Fault_plan.Delay_worker
                  { worker; round; micros = stall_micros };
              ]
          | None -> [])
        @
        match chaos_spawn with
        | Some worker -> [ Om_guard.Fault_plan.Fail_spawn { worker } ]
        | None -> []
      in
      if fs = [] then None else Some (Om_guard.Fault_plan.make fs)
    in
    let config =
      {
        Objectmath.Runtime.default_config with
        Objectmath.Runtime.machine = m;
        nworkers = workers;
        strategy =
          (if needed_only then Om_machine.Supervisor.Needed_only
           else Om_machine.Supervisor.Broadcast_state);
        scheduling =
          (match semidynamic with
          | Some period -> Objectmath.Runtime.Semidynamic period
          | None -> Objectmath.Runtime.Static);
        topology =
          (match fanout with
          | Some f -> Objectmath.Runtime.Tree f
          | None -> Objectmath.Runtime.Flat);
        execution =
          (match domains with
          | Some n -> Objectmath.Runtime.Real_domains n
          | None -> Objectmath.Runtime.Simulated);
        guard = not no_guard;
        faults;
        barrier_deadline;
        jac_mode;
      }
    in
    let rep =
      try Objectmath.Runtime.execute ~config ~tend r
      with Om_guard.Om_error.Error e ->
        Printf.eprintf "omc: solver failure: %s\n"
          (Om_guard.Om_error.to_string e);
        exit 3
    in
    (match domains with
     | Some n ->
         Printf.printf
           "%s on %d real domains%s:\n  %d RHS calls in %.4f wall-clock s -> \
            %.1f calls/s\n"
           fm.name n
           (match semidynamic with
           | Some p -> Printf.sprintf " (semidynamic, period %d)" p
           | None -> "")
           rep.rhs_calls rep.sim_seconds rep.rhs_calls_per_sec;
         Printf.printf
           "  reschedules: %d (%.6f s), barrier wait: %.4f s, worker \
            utilization: %.2f\n"
           rep.reschedules rep.sched_overhead_seconds
           rep.supervisor_comm_seconds rep.worker_utilization;
         Array.iteri
           (fun w c ->
             Printf.printf "  worker %d: compute %.4f s, wait %.4f s\n" w c
               rep.worker_wait_seconds.(w))
           rep.worker_compute_seconds
     | None ->
         Printf.printf
           "%s on %s with %d workers:\n  %d RHS calls in %.4f simulated s -> \
            %.1f calls/s\n  supervisor messaging: %.4f s\n"
           fm.name m.name workers rep.rhs_calls rep.sim_seconds
           rep.rhs_calls_per_sec rep.supervisor_comm_seconds);
    (match rep.jac_sparsity with
    | Some (nnz, colors) ->
        Printf.printf
          "  jacobian: %s, %d structural nonzeros, %d colors (%d Jacobian \
           evaluations)\n"
          rep.jac_mode nnz colors rep.jac_calls
    | None -> ());
    if rep.faults_injected > 0 || rep.retries > 0 || rep.degradations <> []
    then begin
      Printf.printf "  chaos: %d fault(s) injected, %d solver retry(ies)\n"
        rep.faults_injected rep.retries;
      List.iter
        (fun d ->
          Printf.printf "  degradation: %s\n"
            (Fmt.str "%a" Om_guard.Om_error.pp_degradation d))
        rep.degradations
    end;
    let sp =
      Objectmath.Runtime.speedup ~machine:m ~nworkers:(max 1 workers) r
    in
    Printf.printf "  static speedup vs local evaluation: %.2fx\n" sp
  in
  let machine =
    Arg.(value & opt string "sparc"
         & info [ "machine" ] ~docv:"NAME" ~doc:"sparc or parsytec.")
  in
  let workers =
    Arg.(value & opt int 4
         & info [ "workers" ] ~docv:"N" ~doc:"Worker processors.")
  in
  let tend =
    Arg.(value & opt float 1e-3
         & info [ "tend" ] ~docv:"T" ~doc:"Simulated model time.")
  in
  let needed_only =
    Arg.(value & flag
         & info [ "needed-only" ]
             ~doc:"Ship only the state entries each worker reads.")
  in
  let semidynamic =
    Arg.(value & opt (some int) None
         & info [ "semidynamic" ] ~docv:"PERIOD"
             ~doc:"Semi-dynamic LPT rescheduling every PERIOD iterations.")
  in
  let fanout =
    Arg.(value & opt (some int) None
         & info [ "tree" ] ~docv:"FANOUT"
             ~doc:"Tree-structured scatter/gather with the given fanout.")
  in
  let domains =
    Arg.(value & opt (some int) None
         & info [ "domains" ] ~docv:"N"
             ~doc:"Execute RHS rounds on N real OCaml domains (wall-clock \
                   measurement) instead of the simulated machine.")
  in
  let chaos_nan =
    Arg.(value & opt (some (pair ~sep:':' int int)) None
         & info [ "chaos-nan" ] ~docv:"TASK:ROUND"
             ~doc:"Fault injection: overwrite TASK's output with NaN at \
                   round ROUND.  The finite guard catches it and the \
                   solver retries.")
  in
  let chaos_inf =
    Arg.(value & opt (some (pair ~sep:':' int int)) None
         & info [ "chaos-inf" ] ~docv:"TASK:ROUND"
             ~doc:"Like $(b,--chaos-nan) with +infinity.")
  in
  let chaos_stall =
    Arg.(value & opt (some (pair ~sep:':' int int)) None
         & info [ "chaos-stall-worker" ] ~docv:"WORKER:ROUND"
             ~doc:"Fault injection: busy-delay WORKER at round ROUND \
                   (see $(b,--chaos-stall-micros)).  With \
                   $(b,--barrier-deadline) this forces a recorded \
                   degradation.  Real domains only.")
  in
  let stall_micros =
    Arg.(value & opt int 3000
         & info [ "chaos-stall-micros" ] ~docv:"US"
             ~doc:"Injected stall length in microseconds.")
  in
  let chaos_spawn =
    Arg.(value & opt (some int) None
         & info [ "chaos-fail-spawn" ] ~docv:"WORKER"
             ~doc:"Fault injection: fail the spawn of WORKER, degrading \
                   the run to fewer domains.  Real domains only.")
  in
  let barrier_deadline =
    Arg.(value & opt float 0.
         & info [ "barrier-deadline" ] ~docv:"SECONDS"
             ~doc:"Arm barrier stall detection: a round outliving the \
                   deadline drops the stalled worker (LPT reassignment). \
                   0 disables.  Real domains only.")
  in
  let no_guard =
    Arg.(value & flag
         & info [ "no-guard" ]
             ~doc:"Disable the post-round finite guard over the \
                   derivative vector.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Execute the generated RHS on a simulated parallel machine")
    Term.(const run $ file_arg $ builtin_arg $ machine $ workers $ tend
          $ needed_only $ semidynamic $ fanout $ domains $ chaos_nan
          $ chaos_inf $ chaos_stall $ stall_micros $ chaos_spawn
          $ barrier_deadline $ no_guard $ jac_mode_arg)

(* ---- sweep / ensemble ---- *)

(* Shared by [sweep] and [ensemble]: resolve the metric state name and
   fail with the model-error exit code when it does not exist. *)
let metric_of fm metric =
  let names = Om_lang.Flat_model.state_names fm in
  let name = match metric with Some m -> m | None -> names.(0) in
  if not (Array.exists (( = ) name) names) then begin
    Printf.eprintf "omc: unknown metric state %s (states: %s)\n" name
      (String.concat ", " (Array.to_list names));
    exit 1
  end;
  (name, Objectmath.Sweep.final_value name)

let sweep_cmd =
  let run file builtin cls param values tend metric domains =
    if values = [] then begin
      Printf.eprintf "omc: --values requires at least one value\n";
      exit 2
    end;
    let src, fm = load file builtin in
    let metric_name, metric = metric_of fm metric in
    let prepared =
      match Objectmath.Sweep.prepare ~source:src ~cls ~param with
      | p -> p
      | exception Om_lang.Override.Unknown_target what ->
          Printf.eprintf "omc: unknown sweep target: %s\n" what;
          exit 1
    in
    let points, engine =
      try
        match prepared with
        | Objectmath.Sweep.Promoted c ->
            ( Objectmath.Sweep.run_compiled ~domains c ~values ~tend ~metric
                (),
              "compile-once ensemble" )
        | Objectmath.Sweep.Legacy _ ->
            ( Objectmath.Sweep.run ~source:src ~cls ~param ~values ~tend
                ~metric (),
              "legacy per-value" )
      with Om_guard.Om_error.Error e ->
        Printf.eprintf "omc: solver failure: %s\n"
          (Om_guard.Om_error.to_string e);
        exit 3
    in
    Printf.printf "sweep %s.%s over %d values to t=%g (engine: %s)\n" cls
      param (List.length points) tend engine;
    Printf.printf "%14s %16s %8s %10s\n" "value"
      ("final " ^ metric_name)
      "steps" "rhs-calls";
    List.iter
      (fun (p : Objectmath.Sweep.point) ->
        Printf.printf "%14g % .9e %8d %10d\n" p.value p.metric p.steps
          p.rhs_calls)
      points
  in
  let cls =
    Arg.(required & opt (some string) None
         & info [ "class" ] ~docv:"CLASS"
             ~doc:"Class declaring the swept parameter.")
  in
  let param =
    Arg.(required & opt (some string) None
         & info [ "param" ] ~docv:"NAME" ~doc:"Parameter to sweep.")
  in
  let values =
    Arg.(value & opt (list float) []
         & info [ "values" ] ~docv:"V1,V2,..."
             ~doc:"Comma-separated parameter values, one ensemble member \
                   each.")
  in
  let tend =
    Arg.(value & opt float 1.0
         & info [ "tend" ] ~docv:"T" ~doc:"Simulation end time.")
  in
  let metric =
    Arg.(value & opt (some string) None
         & info [ "metric" ] ~docv:"STATE"
             ~doc:"State whose final value is reported (default: the \
                   first state).")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"Split batched RHS rounds across N OCaml domains.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sweep a parameter: compile once, integrate all values as one \
             lockstep ensemble")
    Term.(const run $ file_arg $ builtin_arg $ cls $ param $ values $ tend
          $ metric $ domains)

let ensemble_cmd =
  let parse_dist s =
    let fail () =
      Printf.eprintf
        "omc: bad distribution %s (want uniform:LO,HI or normal:MU,SIGMA)\n"
        s;
      exit 2
    in
    match String.index_opt s ':' with
    | None -> fail ()
    | Some i -> (
        let kind = String.sub s 0 i in
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        match
          (kind, String.split_on_char ',' rest |> List.map float_of_string)
        with
        | "uniform", [ a; b ] -> Objectmath.Sweep.Uniform (a, b)
        | "normal", [ mu; sigma ] -> Objectmath.Sweep.Normal (mu, sigma)
        | _ -> fail ()
        | exception _ -> fail ())
  in
  let run file builtin cls param dist samples seed tend metric domains
      show_samples =
    let src, fm = load file builtin in
    let metric_name, metric = metric_of fm metric in
    let dist = parse_dist dist in
    let rep =
      try
        Objectmath.Sweep.monte_carlo ~source:src
          ~specs:[ (cls, param, dist) ]
          ~samples ~seed ~tend ~domains ~metric ()
      with
      | Om_lang.Override.Unknown_target what ->
          Printf.eprintf "omc: unknown ensemble target: %s\n" what;
          exit 1
      | Om_guard.Om_error.Error e ->
          Printf.eprintf "omc: solver failure: %s\n"
            (Om_guard.Om_error.to_string e);
          exit 3
    in
    Printf.printf
      "monte carlo %s.%s: %d samples, seed %d, t=%g (engine: %s)\n" cls param
      samples seed tend
      (if rep.Objectmath.Sweep.promoted then "compile-once ensemble"
       else "legacy per-sample");
    Printf.printf "final %s: mean % .9e, stddev %.9e\n" metric_name
      rep.Objectmath.Sweep.mean rep.Objectmath.Sweep.stddev;
    if show_samples then begin
      Printf.printf "%14s %16s\n" param ("final " ^ metric_name);
      List.iter
        (fun (s : Objectmath.Sweep.mc_sample) ->
          Printf.printf "%14.6f % .9e\n" s.draws.(0) s.mc_metric)
        rep.Objectmath.Sweep.samples
    end
  in
  let cls =
    Arg.(required & opt (some string) None
         & info [ "class" ] ~docv:"CLASS"
             ~doc:"Class declaring the varied parameter.")
  in
  let param =
    Arg.(required & opt (some string) None
         & info [ "param" ] ~docv:"NAME" ~doc:"Parameter to vary.")
  in
  let dist =
    Arg.(value & opt string "uniform:0.5,2.0"
         & info [ "dist" ] ~docv:"SPEC"
             ~doc:"Sampling distribution: uniform:LO,HI or \
                   normal:MU,SIGMA.")
  in
  let samples =
    Arg.(value & opt int 32
         & info [ "samples" ] ~docv:"N" ~doc:"Ensemble members to draw.")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"S"
             ~doc:"Deterministic draw seed: the same seed reproduces the \
                   same report.")
  in
  let tend =
    Arg.(value & opt float 1.0
         & info [ "tend" ] ~docv:"T" ~doc:"Simulation end time.")
  in
  let metric =
    Arg.(value & opt (some string) None
         & info [ "metric" ] ~docv:"STATE"
             ~doc:"State whose final value is summarised (default: the \
                   first state).")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"Split batched RHS rounds across N OCaml domains.")
  in
  let show_samples =
    Arg.(value & flag
         & info [ "show-samples" ] ~doc:"Print every drawn sample.")
  in
  Cmd.v
    (Cmd.info "ensemble"
       ~doc:"Seeded Monte Carlo over a parameter distribution, integrated \
             as one lockstep ensemble")
    Term.(const run $ file_arg $ builtin_arg $ cls $ param $ dist $ samples
          $ seed $ tend $ metric $ domains $ show_samples)

(* ---- serve ---- *)

let serve_cmd =
  let run socket accept queue executors cache_capacity no_timings journal_path
      retries retry_backoff quota_queued quota_running deadline_margin
      result_cache =
    let resolve name =
      Option.map (fun f -> f ()) (List.assoc_opt name builtin_models)
    in
    let config =
      {
        Om_serve.Server.default_config with
        queue_capacity = queue;
        executors;
        cache_capacity;
        timings = not no_timings;
        resolve;
        max_queued_per_tenant = quota_queued;
        max_running_per_tenant = quota_running;
        default_retries = retries;
        retry_backoff_s = retry_backoff;
        deadline_margin;
        result_cache_capacity = result_cache;
      }
    in
    let write_record oc record =
      (* Best-effort: a client that hangs up mid-stream must not kill
         the server loop. *)
      try
        output_string oc (Om_serve.Json.to_string record);
        output_char oc '\n';
        flush oc
      with Sys_error _ -> ()
    in
    (* Durability: replay the journal before serving (re-enqueueing the
       previous process's unfinished jobs exactly once), then append to
       the same file.  A corrupt journal is a hard startup error — the
       operator must not silently lose accepted work. *)
    let start_server ~emit =
      match journal_path with
      | None -> Om_serve.Server.create ~config ~emit ()
      | Some path -> (
          match Om_serve.Journal.replay path with
          | Error msg ->
              Printf.eprintf "omc: %s\n" msg;
              exit 2
          | Ok replay ->
              let journal = Om_serve.Journal.open_append path in
              let server =
                Om_serve.Server.create ~config ~journal ~emit ()
              in
              let recovered = Om_serve.Server.recover server replay in
              if recovered > 0 then
                emit
                  (Om_serve.Json.Obj
                     [
                       ("type", Om_serve.Json.Str "recovered");
                       ("jobs", Om_serve.Json.Int recovered);
                       ( "torn_tail",
                         Om_serve.Json.Bool replay.Om_serve.Journal.torn_tail
                       );
                     ]);
              server)
    in
    let serve_stdin () =
      let server = start_server ~emit:(write_record stdout) in
      (try
         let rec loop () =
           ignore (Om_serve.Server.handle_line server (input_line stdin));
           loop ()
         in
         loop ()
       with End_of_file | Sys_error _ -> ());
      ignore (Om_serve.Server.drain server)
    in
    (* One connection of the socket mode: its own writer mutex keeps the
       connection's NDJSON unmangled while executor domains emit into it
       concurrently; jobs run on the shared server, so connections
       submitting the same model hit one compiled artifact and their
       jobs execute simultaneously. *)
    let serve_client server client =
      let ic = Unix.in_channel_of_descr client in
      let oc = Unix.out_channel_of_descr client in
      let wmutex = Mutex.create () in
      (* Completion tracking for this connection's jobs: [pending] holds
         queued ids awaiting a terminal status; [early] holds terminal
         statuses that raced ahead of the reader registering the id. *)
      let pmutex = Mutex.create () in
      let done_cv = Condition.create () in
      let pending : (string, unit) Hashtbl.t = Hashtbl.create 8 in
      let early : (string, string) Hashtbl.t = Hashtbl.create 8 in
      let jobs = ref 0 and ok = ref 0 and failed = ref 0 in
      let rejected = ref 0 in
      let count_terminal status =
        if status = "ok" then incr ok else incr failed
      in
      let field record name =
        Option.bind (Om_serve.Json.member record name) Om_serve.Json.to_str
      in
      let sink record =
        Mutex.lock wmutex;
        write_record oc record;
        Mutex.unlock wmutex;
        match (field record "type", field record "status", field record "job")
        with
        | Some "status", Some status, _
          when String.length status >= 8 && String.sub status 0 8 = "rejected"
          ->
            incr rejected
        | Some "status", Some "invalid", _ -> ()
        | Some "status", Some status, Some job ->
            Mutex.lock pmutex;
            if Hashtbl.mem pending job then begin
              Hashtbl.remove pending job;
              count_terminal status;
              Condition.signal done_cv
            end
            else Hashtbl.replace early job status;
            Mutex.unlock pmutex
        | _ -> ()
      in
      (try
         let rec loop () =
           (match Om_serve.Server.handle_line ~sink server (input_line ic) with
           | `Queued id ->
               Mutex.lock pmutex;
               incr jobs;
               (match Hashtbl.find_opt early id with
               | Some status ->
                   Hashtbl.remove early id;
                   count_terminal status
               | None -> Hashtbl.add pending id ());
               Mutex.unlock pmutex
           | `Replied | `Quiet -> ());
           loop ()
         in
         loop ()
       with End_of_file | Sys_error _ -> ());
      (* The client closed its input; its queued jobs may still be
         running on the shared executors.  Wait for each to reach a
         terminal status before summarising and hanging up. *)
      Mutex.lock pmutex;
      while Hashtbl.length pending > 0 do
        Condition.wait done_cv pmutex
      done;
      Mutex.unlock pmutex;
      let cs = Om_serve.Model_cache.stats (Om_serve.Server.cache server) in
      write_record oc
        (Om_serve.Json.Obj
           [
             ("type", Om_serve.Json.Str "summary");
             ("jobs", Om_serve.Json.Int !jobs);
             ("ok", Om_serve.Json.Int !ok);
             ("failed", Om_serve.Json.Int !failed);
             ("rejected", Om_serve.Json.Int !rejected);
             ( "cache",
               Om_serve.Json.Obj
                 [
                   ("hits", Om_serve.Json.Int cs.Om_serve.Model_cache.hits);
                   ("misses", Om_serve.Json.Int cs.Om_serve.Model_cache.misses);
                   ( "compiles",
                     Om_serve.Json.Int cs.Om_serve.Model_cache.compiles );
                   ( "evictions",
                     Om_serve.Json.Int cs.Om_serve.Model_cache.evictions );
                   ("entries", Om_serve.Json.Int cs.Om_serve.Model_cache.entries);
                 ] );
           ]);
      try close_out oc with Sys_error _ -> ()
    in
    match socket with
    | None -> serve_stdin ()
    | Some path ->
        (* One server shared by every connection: shared compiled-model
           cache, shared queue, shared executor domains.  Connections
           are accepted concurrently, each handled by its own domain;
           records route to the submitting connection via per-job
           sinks. *)
        let server = start_server ~emit:(write_record stdout) in
        if Sys.file_exists path then Sys.remove path;
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind sock (Unix.ADDR_UNIX path);
        Unix.listen sock (max 8 accept);
        let conns = ref [] in
        let rec accept_loop remaining =
          if remaining <> 0 then begin
            let client, _ = Unix.accept sock in
            conns := Domain.spawn (fun () -> serve_client server client) :: !conns;
            accept_loop (if remaining > 0 then remaining - 1 else remaining)
          end
        in
        (* [--accept 0] means serve forever: a negative count never
           reaches the loop's 0 stop condition. *)
        accept_loop (if accept = 0 then -1 else accept);
        List.iter Domain.join !conns;
        ignore (Om_serve.Server.drain server);
        Unix.close sock;
        if Sys.file_exists path then Sys.remove path
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Listen on a Unix-domain socket instead of stdin; \
                   connections are served concurrently as NDJSON sessions \
                   against one shared server (cache, queue and executors).")
  in
  let accept =
    Arg.(value & opt int 0
         & info [ "accept" ] ~docv:"N"
             ~doc:"With $(b,--socket), exit after N connections, which are \
                   accepted and served simultaneously (0 = serve forever).")
  in
  let queue =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N"
             ~doc:"Submission queue capacity; a full queue rejects jobs \
                   with a $(i,rejected_full) status record.")
  in
  let executors =
    Arg.(value & opt int 1
         & info [ "executors" ] ~docv:"N"
             ~doc:"Worker domains running jobs (1 keeps status records in \
                   priority order).")
  in
  let cache =
    Arg.(value & opt int 32
         & info [ "cache" ] ~docv:"N"
             ~doc:"Compiled-model cache capacity (0 disables caching).")
  in
  let no_timings =
    Arg.(value & flag
         & info [ "no-timings" ]
             ~doc:"Omit wall-clock fields from status records (makes the \
                   output deterministic for tests).")
  in
  let journal =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"PATH"
             ~doc:"Write-ahead job journal: every accepted job and state \
                   transition is appended to PATH (fsynced before the job \
                   runs).  On startup the journal is replayed and jobs the \
                   previous process accepted but never finished are \
                   re-enqueued exactly once.")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Default job-level retry budget: transiently failed jobs \
                   (worker faults, spawn failures, exhausted solver \
                   ladders) are re-enqueued with exponential backoff up to \
                   N times.  Jobs may override with their own \
                   $(i,retries) field.")
  in
  let retry_backoff =
    Arg.(value & opt float 0.05
         & info [ "retry-backoff" ] ~docv:"SECONDS"
             ~doc:"Base backoff before the first retry; attempt k waits \
                   2^(k-1) times this.")
  in
  let quota_queued =
    Arg.(value & opt int 0
         & info [ "quota-queued" ] ~docv:"N"
             ~doc:"Per-tenant bound on queued jobs; over-quota submissions \
                   are shed with $(i,rejected_quota) (0 = no quota).")
  in
  let quota_running =
    Arg.(value & opt int 0
         & info [ "quota-running" ] ~docv:"N"
             ~doc:"Per-tenant bound on concurrently executing jobs; a \
                   saturated tenant's jobs wait while other tenants' jobs \
                   overtake them (0 = no quota).")
  in
  let deadline_margin =
    Arg.(value & opt float 0.
         & info [ "deadline-margin" ] ~docv:"FACTOR"
             ~doc:"Shed jobs at admission with $(i,rejected_deadline) when \
                   the model's smoothed run time times FACTOR exceeds the \
                   job's deadline (0 = never shed on deadline).")
  in
  let result_cache =
    Arg.(value & opt int 0
         & info [ "result-cache" ] ~docv:"N"
             ~doc:"Cache up to N finished trajectories: identical \
                   deterministic jobs (same model, solver and end time, no \
                   chaos, no domains) replay the stored result bit for bit \
                   (0 = off).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Long-running multi-tenant simulation service: NDJSON jobs on \
             stdin or a Unix socket, priority scheduling, per-job \
             deadlines/cancellation, per-tenant quotas, crash-recoverable \
             job journal, retry/backoff, compiled-model and result caches, \
             streamed results")
    Term.(const run $ socket $ accept $ queue $ executors $ cache
          $ no_timings $ journal $ retries $ retry_backoff $ quota_queued
          $ quota_running $ deadline_margin $ result_cache)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let run cases seed out_dir verbose chaos =
    let log = if verbose then prerr_endline else ignore in
    let summary = Om_fuzz.Runner.run ~out_dir ~cases ~seed ~chaos ~log () in
    Format.printf "%a@." Om_fuzz.Runner.pp_summary summary;
    if summary.failures <> [] then begin
      List.iter
        (fun (fl : Om_fuzz.Runner.failure) ->
          Printf.printf "case %d: %d violation(s); counterexample in %s\n"
            fl.index
            (List.length fl.violations)
            out_dir)
        summary.failures;
      exit 1
    end
  in
  let cases =
    Arg.(value & opt int 100
         & info [ "cases" ] ~docv:"N" ~doc:"Number of random models.")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"S"
             ~doc:"Base seed; case $(i,i) uses the pair (S, i).")
  in
  let out =
    Arg.(value & opt string "bench_out/fuzz"
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Directory for shrunk counterexample dumps.")
  in
  let verbose =
    Arg.(value & flag
         & info [ "verbose" ] ~doc:"Log each discarded/failing case.")
  in
  let chaos =
    Arg.(value & flag
         & info [ "chaos" ]
             ~doc:"Additionally inject one seeded fault (NaN/Inf task \
                   output or a worker stall) per case into a 2-domain run \
                   and require the recovered trajectory to stay bitwise \
                   identical to the fault-free reference.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: random models checked across all \
             evaluator and scheduling strategies")
    Term.(const run $ cases $ seed $ out $ verbose $ chaos)

let () =
  let doc = "ObjectMath reproduction compiler (PPoPP 1995)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "omc" ~doc)
          [
            analyze_cmd; browse_cmd; flatten_cmd; compile_cmd; simulate_cmd;
            sweep_cmd; ensemble_cmd; bench_cmd; fuzz_cmd; serve_cmd;
          ]))
