# Convenience targets for the ObjectMath reproduction.

.PHONY: all build test bench examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/bearing_sim.exe
	dune exec examples/powerplant_sim.exe
	dune exec examples/heat_equation.exe
	dune exec examples/scaling_study.exe
	dune exec examples/dam_safety.exe

clean:
	dune clean
