# Convenience targets for the ObjectMath reproduction.

.PHONY: all build test bench examples multicore doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/bearing_sim.exe
	dune exec examples/powerplant_sim.exe
	dune exec examples/heat_equation.exe
	dune exec examples/scaling_study.exe
	dune exec examples/dam_safety.exe
	dune exec examples/multicore_scaling.exe -- 500

# Measured multicore scaling on real OCaml domains
# (writes bench_out/BENCH_parallel.json).
multicore:
	dune exec bench/main.exe -- multicore

# odoc site for the whole library tree (requires odoc; landing page
# doc/index.mld).  Output under _build/default/_doc/_html/.
doc:
	dune build @doc

clean:
	dune clean
