(* Tests for the runtime guard layer: the typed error taxonomy, the
   deterministic fault plan, and the allocation-free finite guard. *)

module E = Om_guard.Om_error
module FP = Om_guard.Fault_plan
module FG = Om_guard.Finite_guard

(* ---------- error taxonomy ---------- *)

let test_error_strings () =
  let check what expect e =
    Alcotest.(check string) what expect (E.to_string e)
  in
  check "nonfinite nan"
    "non-finite RHS output nan in der(b.x) (state slot 3) at t=0.5"
    (E.Nonfinite_output
       { slot = 3; equation = "der(b.x)"; value = Float.nan; time = 0.5 });
  check "nonfinite inf"
    "non-finite RHS output inf in der(y) (state slot 0) at t=1"
    (E.Nonfinite_output
       { slot = 0; equation = "der(y)"; value = Float.infinity; time = 1. });
  check "nonfinite -inf"
    "non-finite RHS output -inf in der(y) (state slot 0) at t=1"
    (E.Nonfinite_output
       { slot = 0; equation = "der(y)"; value = Float.neg_infinity; time = 1. });
  check "stall" "worker 2 stalled in round 7 (waited 0.0031s)"
    (E.Worker_stall { worker = 2; round = 7; waited_s = 0.0031 });
  check "spawn" "failed to spawn worker domain 1 of 4: no threads"
    (E.Spawn_failure { worker = 1; nworkers = 4; reason = "no threads" });
  check "step"
    "lsoda step failed at t=0.25 (h=1e-06) after 8 retries: poisoned"
    (E.Step_failure
       { solver = "lsoda"; time = 0.25; step = 1e-6; retries = 8;
         reason = "poisoned" })

let test_error_printexc () =
  (* The registered printer makes uncaught guard errors readable. *)
  let e = E.Newton_failure { time = 0.1; iterations = 4 } in
  Alcotest.(check string) "printexc uses the registered printer"
    "Om_guard.Om_error.Error: Newton iteration failed to converge at t=0.1 \
     (4 iters)"
    (Printexc.to_string (E.Error e))

(* A tiny substring helper so the test file has no extra deps. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_degradation_pp () =
  let d =
    {
      E.at_round = 5;
      worker = 1;
      remaining = 2;
      cause = E.Worker_stall { worker = 1; round = 5; waited_s = 0.002 };
    }
  in
  Alcotest.(check string) "degradation to fewer workers"
    "round 5: dropped worker 1 -> 2 live worker(s) (worker 1 stalled in \
     round 5 (waited 0.0020s))"
    (Fmt.str "%a" E.pp_degradation d);
  let seq = { d with remaining = 0 } in
  Alcotest.(check bool) "degradation to sequential" true
    (contains (Fmt.str "%a" E.pp_degradation seq) "-> sequential")

(* ---------- fault plan ---------- *)

let test_plan_fire_once () =
  let plan = FP.make [ FP.Nan_task { task = 2; round = 3 } ] in
  Alcotest.(check int) "nothing fired yet" 0 (FP.injected plan);
  Alcotest.(check (float 0.)) "wrong round: no poison" 0.
    (FP.task_poison plan ~round:2 ~task:2);
  Alcotest.(check (float 0.)) "wrong task: no poison" 0.
    (FP.task_poison plan ~round:3 ~task:1);
  Alcotest.(check bool) "match: nan" true
    (Float.is_nan (FP.task_poison plan ~round:3 ~task:2));
  Alcotest.(check int) "fired once" 1 (FP.injected plan);
  Alcotest.(check (float 0.)) "fire-once: second query is clean" 0.
    (FP.task_poison plan ~round:3 ~task:2)

let test_plan_kinds () =
  let plan =
    FP.make
      [
        FP.Inf_task { task = 0; round = 1 };
        FP.Delay_worker { worker = 1; round = 4; micros = 2500 };
        FP.Fail_spawn { worker = 3 };
      ]
  in
  Alcotest.(check (float 0.)) "inf poison" Float.infinity
    (FP.task_poison plan ~round:1 ~task:0);
  Alcotest.(check int) "no delay off-coordinates" 0
    (FP.delay_micros plan ~round:4 ~worker:0);
  Alcotest.(check int) "delay fires" 2500
    (FP.delay_micros plan ~round:4 ~worker:1);
  Alcotest.(check int) "delay fire-once" 0
    (FP.delay_micros plan ~round:4 ~worker:1);
  Alcotest.(check bool) "spawn ok for other workers" false
    (FP.spawn_should_fail plan ~worker:0);
  Alcotest.(check bool) "spawn fails for worker 3" true
    (FP.spawn_should_fail plan ~worker:3);
  Alcotest.(check int) "all three fired" 3 (FP.injected plan)

let test_plan_seeded () =
  (* Reproducible from the seed, one recoverable fault, coordinates in
     range. *)
  let draw seed = FP.seeded ~seed ~ntasks:6 ~nworkers:3 ~max_round:20 in
  List.iter
    (fun seed ->
      let a = draw seed and b = draw seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d reproducible" seed)
        true
        (FP.faults a = FP.faults b);
      match FP.faults a with
      | [ FP.Nan_task { task; round } ] | [ FP.Inf_task { task; round } ] ->
          Alcotest.(check bool) "task in range" true (task >= 0 && task < 6);
          Alcotest.(check bool) "round in range" true
            (round >= 1 && round <= 20)
      | [ FP.Delay_worker { worker; round; micros } ] ->
          Alcotest.(check bool) "worker in range" true
            (worker >= 0 && worker < 3);
          Alcotest.(check bool) "round in range" true
            (round >= 1 && round <= 20);
          Alcotest.(check bool) "delay long enough to trip a deadline" true
            (micros >= 2000)
      | fs ->
          Alcotest.failf "seed %d drew an unexpected plan: %a" seed FP.pp
            (FP.make fs))
    [ 0; 1; 2; 17; 42; 1000 ]

(* ---------- finite guard ---------- *)

let test_guard_clean () =
  let g = FG.create ~names:[| "a"; "b"; "c" |] ~dim:3 in
  Alcotest.(check int) "dim" 3 (FG.dim g);
  FG.check g ~time:0. [| 1.; -2.5; 0. |];
  (* Slots past [dim] are ignored: solvers hand over scratch vectors. *)
  let g2 = FG.create ~names:[| "a" |] ~dim:1 in
  FG.check g2 ~time:0. [| 1.; Float.nan |]

let test_guard_attribution () =
  let g = FG.create ~names:[| "p.x"; "p.y" |] ~dim:2 in
  match FG.check g ~time:0.75 [| 1.; Float.nan |] with
  | () -> Alcotest.fail "NaN not detected"
  | exception E.Error (E.Nonfinite_output { slot; equation; value; time }) ->
      Alcotest.(check int) "slot" 1 slot;
      Alcotest.(check string) "equation" "der(p.y)" equation;
      Alcotest.(check bool) "value preserved" true (Float.is_nan value);
      Alcotest.(check (float 0.)) "time preserved" 0.75 time

let test_guard_first_slot_wins () =
  let g = FG.create ~names:[| "a"; "b" |] ~dim:2 in
  match FG.check g ~time:0. [| Float.infinity; Float.nan |] with
  | () -> Alcotest.fail "inf not detected"
  | exception E.Error (E.Nonfinite_output { slot; equation; _ }) ->
      Alcotest.(check int) "first bad slot reported" 0 slot;
      Alcotest.(check string) "equation" "der(a)" equation

let test_guard_wrap () =
  let g = FG.create ~names:[| "a" |] ~dim:1 in
  let calls = ref 0 in
  let rhs _t _y ydot =
    incr calls;
    ydot.(0) <- if !calls > 1 then Float.nan else 0.
  in
  let guarded = FG.wrap g rhs in
  let ydot = [| 0. |] in
  guarded 0. [| 0. |] ydot;
  Alcotest.(check bool) "second call trips the guard" true
    (match guarded 0.1 [| 0. |] ydot with
    | () -> false
    | exception E.Error (E.Nonfinite_output _) -> true)

let test_guard_invalid () =
  Alcotest.(check bool) "names shorter than dim rejected" true
    (match FG.create ~names:[| "a" |] ~dim:2 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_guard_zero_alloc () =
  (* The clean-path scan must not allocate: two loop sizes so fixed
     per-measurement costs cancel. *)
  let dim = 64 in
  let g =
    FG.create ~names:(Array.init dim (Printf.sprintf "s%d")) ~dim
  in
  let v = Array.init dim (fun i -> float_of_int i *. 0.5) in
  let words n =
    FG.check g ~time:0. v;
    let before = Gc.minor_words () in
    for _ = 1 to n do
      FG.check g ~time:0. v
    done;
    Gc.minor_words () -. before
  in
  let d1 = words 100 in
  let d2 = words 1100 in
  Alcotest.(check (float 0.)) "zero words per check" 0. (d2 -. d1)

let () =
  Alcotest.run "om_guard"
    [
      ( "om_error",
        [
          Alcotest.test_case "messages" `Quick test_error_strings;
          Alcotest.test_case "printexc" `Quick test_error_printexc;
          Alcotest.test_case "degradation pp" `Quick test_degradation_pp;
        ] );
      ( "fault_plan",
        [
          Alcotest.test_case "fire once" `Quick test_plan_fire_once;
          Alcotest.test_case "all kinds" `Quick test_plan_kinds;
          Alcotest.test_case "seeded" `Quick test_plan_seeded;
        ] );
      ( "finite_guard",
        [
          Alcotest.test_case "clean" `Quick test_guard_clean;
          Alcotest.test_case "attribution" `Quick test_guard_attribution;
          Alcotest.test_case "first slot wins" `Quick
            test_guard_first_slot_wins;
          Alcotest.test_case "wrap" `Quick test_guard_wrap;
          Alcotest.test_case "invalid" `Quick test_guard_invalid;
          Alcotest.test_case "zero alloc" `Quick test_guard_zero_alloc;
        ] );
    ]
