(* Batched ensemble engine: SoA batch VM, lockstep steppers, group
   split/merge, compile-once sweeps and Monte Carlo. *)

module E = Om_expr.Expr
module Vm = Om_expr.Vm
module Vb = Om_expr.Vm_batch
module Ens = Om_ode.Ensemble
module Bb = Om_codegen.Bytecode_backend
module Batch = Om_codegen.Batch_backend

let bits = Int64.bits_of_float

let check_bits what a b = Alcotest.(check int64) what (bits a) (bits b)

(* ---------- batched VM vs scalar VM ---------- *)

let names = [| "x"; "y"; "z" |]

let sample_exprs =
  [
    ( "poly",
      E.add
        [
          E.mul [ E.var "x"; E.var "x" ];
          E.mul [ E.const 3.; E.var "y" ];
          E.neg (E.var "z");
        ] );
    ("pow", E.pow (E.var "x") (E.var "y"));
    ( "calls",
      E.add
        [
          E.sin (E.var "x");
          E.atan2 (E.var "y") (E.var "z");
          E.hypot (E.var "x") (E.var "z");
          E.min_e (E.var "x") (E.var "y");
          E.sign (E.var "z");
        ] );
    ( "branch",
      E.if_
        (E.cond (E.var "x") E.Lt (E.var "y"))
        (E.exp (E.var "z"))
        (E.mul [ E.var "x"; E.var "y" ]) );
    ( "nested branch",
      E.if_
        (E.cond (E.var "x") E.Ge E.zero)
        (E.if_ (E.cond (E.var "y") E.Gt (E.var "z")) (E.var "y") (E.var "z"))
        (E.neg (E.var "x")) );
  ]

(* Deterministic lane environments crossing every branch. *)
let lane_envs =
  [|
    [| 0.3; 0.7; -1.2 |];
    [| 0.7; 0.3; 1.2 |];
    [| -0.5; 0.5; 0. |];
    [| 0.; 0.; -0. |];
    [| 2.5; -3.5; 0.25 |];
    [| -1.; -2.; 42. |];
    [| 1e-8; 1e8; -7.5 |];
  |]

let soa_env width =
  Array.init (Array.length names) (fun i ->
      Array.init width (fun j -> lane_envs.(j).(i)))

let test_batch_matches_scalar () =
  let width = Array.length lane_envs in
  let env = soa_env width in
  List.iter
    (fun (label, e) ->
      let p = Vm.compile names e in
      let b = Vb.create p ~width in
      Vb.exec b ~env ~out:[||] ~lo:0 ~hi:width;
      let row = Vb.result_row b in
      Array.iteri
        (fun j scalar_env ->
          check_bits
            (Printf.sprintf "%s lane %d" label j)
            (Vm.run p scalar_env) row.(j))
        lane_envs)
    sample_exprs

let test_batch_width_one () =
  List.iter
    (fun (label, e) ->
      let p = Vm.compile names e in
      let b = Vb.create p ~width:1 in
      Array.iter
        (fun scalar_env ->
          let env =
            Array.init (Array.length names) (fun i -> [| scalar_env.(i) |])
          in
          Vb.exec b ~env ~out:[||] ~lo:0 ~hi:1;
          check_bits
            (Printf.sprintf "%s width-1" label)
            (Vm.run p scalar_env) (Vb.result_row b).(0))
        lane_envs)
    sample_exprs

let test_batch_subrange () =
  (* Lanes outside [lo, hi) keep their previous results. *)
  let width = Array.length lane_envs in
  let env = soa_env width in
  let p = Vm.compile names (snd (List.nth sample_exprs 3)) in
  let b = Vb.create p ~width in
  Vb.exec b ~env ~out:[||] ~lo:0 ~hi:width;
  let before = Array.copy (Vb.result_row b) in
  (* Perturb every env column, then re-run only lanes 2..4. *)
  Array.iter (fun col -> Array.iteri (fun j v -> col.(j) <- v +. 1.) col) env;
  Vb.exec b ~env ~out:[||] ~lo:2 ~hi:5;
  let after = Vb.result_row b in
  for j = 0 to width - 1 do
    if j < 2 || j >= 5 then
      check_bits (Printf.sprintf "lane %d untouched" j) before.(j) after.(j)
    else
      let scalar_env = Array.init 3 (fun i -> env.(i).(j)) in
      check_bits (Printf.sprintf "lane %d re-run" j) (Vm.run p scalar_env)
        after.(j)
  done

let test_batch_zero_alloc () =
  (* Both interpreter paths: straight-line and masked. *)
  List.iter
    (fun (_, e) ->
      let p = Vm.compile names e in
      let width = 64 in
      let env =
        Array.init (Array.length names) (fun i ->
            Array.init width (fun j -> lane_envs.(j mod Array.length lane_envs).(i)))
      in
      let b = Vb.create p ~width in
      let words n =
        Vb.exec b ~env ~out:[||] ~lo:0 ~hi:width;
        let before = Gc.minor_words () in
        for _ = 1 to n do
          Vb.exec b ~env ~out:[||] ~lo:0 ~hi:width
        done;
        Gc.minor_words () -. before
      in
      let d1 = words 500 in
      let d2 = words 5_500 in
      Alcotest.(check (float 0.)) "zero words per exec" 0. (d2 -. d1))
    [ List.nth sample_exprs 0; List.nth sample_exprs 4 ]

(* ---------- batch backend over a compiled model ---------- *)

let branchy_source =
  {|model M;
    class Osc
      parameter k = 1.5;
      variable x init 1.0;
      variable v init 0.5;
      equation der(x) = v;
      equation der(v) = if x > 0.0 then 0.0 - k * x else 0.0 - 2.0 * k * x;
    end;
    instance a of Osc;
    instance b of Osc;|}

let compile_model source =
  Om_codegen.Pipeline.compile (Om_lang.Flatten.flatten_string source)

let test_batch_backend_matches_rhs_fn () =
  let r = compile_model branchy_source in
  let c = r.Om_codegen.Pipeline.compiled in
  let dim = c.Bb.dim in
  let width = 6 in
  let bb = Batch.create c ~width in
  let y =
    Array.init dim (fun i ->
        Array.init width (fun j ->
            (0.25 *. float_of_int (i + 1)) -. (0.35 *. float_of_int j)))
  in
  let times = Array.init width (fun j -> 0.125 *. float_of_int j) in
  let ydot = Array.init dim (fun _ -> Array.make width 0.) in
  Batch.brhs bb ~times ~y ~ydot ~lo:0 ~hi:width;
  let ys = Array.make dim 0. and yds = Array.make dim 0. in
  for j = 0 to width - 1 do
    for i = 0 to dim - 1 do
      ys.(i) <- y.(i).(j)
    done;
    Bb.rhs_fn c times.(j) ys yds;
    for i = 0 to dim - 1 do
      check_bits (Printf.sprintf "lane %d state %d" j i) yds.(i) ydot.(i).(j)
    done
  done

let test_batch_backend_zero_alloc () =
  let r = compile_model branchy_source in
  let c = r.Om_codegen.Pipeline.compiled in
  let dim = c.Bb.dim in
  let width = 32 in
  let bb = Batch.create c ~width in
  let y = Array.init dim (fun i -> Array.make width (0.5 +. float_of_int i)) in
  let times = Array.make width 0. in
  let ydot = Array.init dim (fun _ -> Array.make width 0.) in
  let words n =
    Batch.brhs bb ~times ~y ~ydot ~lo:0 ~hi:width;
    let before = Gc.minor_words () in
    for _ = 1 to n do
      Batch.brhs bb ~times ~y ~ydot ~lo:0 ~hi:width
    done;
    Gc.minor_words () -. before
  in
  let d1 = words 200 in
  let d2 = words 2_200 in
  Alcotest.(check (float 0.)) "zero words per brhs" 0. (d2 -. d1)

(* ---------- lockstep RK4 vs scalar integration ---------- *)

let scalar_sys c =
  Om_ode.Odesys.make ~dim:c.Bb.dim (fun t y ydot -> Bb.rhs_fn c t y ydot)

let member_y0 c m =
  (* The compiled model's initial state, perturbed per member. *)
  Array.init c.Bb.dim (fun i ->
      (0.5 +. (0.25 *. float_of_int i)) +. (0.125 *. float_of_int m))

let check_traj what (a : Om_ode.Odesys.trajectory)
    (b : Om_ode.Odesys.trajectory) =
  Alcotest.(check int)
    (what ^ " length")
    (Array.length a.ts) (Array.length b.ts);
  Array.iteri
    (fun s ta -> check_bits (Printf.sprintf "%s t[%d]" what s) ta b.ts.(s))
    a.ts;
  Array.iteri
    (fun s row ->
      Array.iteri
        (fun i v ->
          check_bits (Printf.sprintf "%s y[%d].(%d)" what s i) v
            b.states.(s).(i))
        row)
    a.states

let test_rk4_matches_scalar_runs () =
  let r = compile_model branchy_source in
  let c = r.Om_codegen.Pipeline.compiled in
  let n = 5 in
  let y0s = Array.init n (member_y0 c) in
  let bb = Batch.create c ~width:n in
  let ens = Ens.create ~dim:c.Bb.dim ~f:(Batch.brhs bb) y0s in
  let rep = Ens.rk4 ~record:true ens ~t0:0. ~tend:0.4 ~h:0.025 in
  let trajs = Option.get rep.Ens.trajectories in
  for m = 0 to n - 1 do
    let tr =
      Om_ode.Rk.integrate_fixed Om_ode.Rk.rk4 (scalar_sys c) ~t0:0.
        ~y0:y0s.(m) ~tend:0.4 ~h:0.025
    in
    check_traj (Printf.sprintf "member %d" m) tr trajs.(m)
  done;
  Alcotest.(check int) "steps counted" 16 rep.Ens.steps.(0);
  Alcotest.(check int) "rhs evals" (16 * 4) rep.Ens.rhs_evals.(0)

let test_rkf45_batch_of_one_matches_scalar () =
  let r = compile_model branchy_source in
  let c = r.Om_codegen.Pipeline.compiled in
  let y0 = member_y0 c 0 in
  let bb = Batch.create c ~width:1 in
  let ens = Ens.create ~dim:c.Bb.dim ~f:(Batch.brhs bb) [| y0 |] in
  let rep = Ens.rkf45 ~record:true ens ~t0:0. ~tend:2.5 in
  let trajs = Option.get rep.Ens.trajectories in
  let sys = scalar_sys c in
  let tr = Om_ode.Rk.rkf45 sys ~t0:0. ~y0 ~tend:2.5 in
  check_traj "batch of one" tr trajs.(0);
  Alcotest.(check int) "same accepted steps" sys.counters.steps
    rep.Ens.steps.(0);
  Alcotest.(check int) "same rejections" sys.counters.rejected
    rep.Ens.rejected.(0)

(* ---------- group split/merge ---------- *)

(* Decay with per-member rate carried in the state vector:
   k' = 0, x' = -k x.  A huge k makes one member stiff for RKF45. *)
let decay_source =
  {|model D;
    class C
      variable k init 1.0;
      variable x init 1.0;
      equation der(k) = 0.0;
      equation der(x) = 0.0 - k * x;
    end;
    instance c of C;|}

let decay_member c k =
  let y = Array.make c.Bb.dim 1. in
  let ki =
    match Array.to_list c.Bb.state_names with
    | names ->
        let rec find i = function
          | [] -> invalid_arg "no k state"
          | n :: tl -> if n = "c.k" then i else find (i + 1) tl
        in
        find 0 names
  in
  y.(ki) <- k;
  y

let run_decay_ensemble c ks =
  let n = Array.length ks in
  let bb = Batch.create c ~width:n in
  let ens =
    Ens.create ~dim:c.Bb.dim ~f:(Batch.brhs bb)
      (Array.map (decay_member c) ks)
  in
  Ens.rkf45 ens ~t0:0. ~tend:1.

let test_split_isolates_stiff_member () =
  let r = compile_model decay_source in
  let c = r.Om_codegen.Pipeline.compiled in
  let calm = run_decay_ensemble c [| 1.0; 2.5 |] in
  let mixed = run_decay_ensemble c [| 1.0; 2.5; 4000. |] in
  Alcotest.(check bool) "splits happened" true (mixed.Ens.splits > 0);
  Alcotest.(check int) "merged back" mixed.Ens.splits mixed.Ens.merges;
  Alcotest.(check bool)
    "stiff member rejected steps" true
    (mixed.Ens.rejected.(2) > 0);
  (* The stiff member must not perturb the others: identical bits. *)
  for m = 0 to 1 do
    Array.iteri
      (fun i v ->
        check_bits
          (Printf.sprintf "member %d state %d" m i)
          v
          mixed.Ens.final.(m).(i))
      calm.Ens.final.(m)
  done;
  (* And per-member telemetry for the calm members matches too. *)
  for m = 0 to 1 do
    Alcotest.(check int)
      (Printf.sprintf "member %d steps" m)
      calm.Ens.steps.(m)
      mixed.Ens.steps.(m)
  done

(* ---------- parallel lane dispatch ---------- *)

let test_domains_match_sequential () =
  let r = compile_model branchy_source in
  let c = r.Om_codegen.Pipeline.compiled in
  let n = 8 in
  let y0s = Array.init n (member_y0 c) in
  let run domains =
    let bb = Batch.create c ~width:n in
    let ex = Objectmath.Ensemble_exec.create ~domains bb in
    Fun.protect
      ~finally:(fun () -> Objectmath.Ensemble_exec.shutdown ex)
      (fun () ->
        let ens =
          Ens.create ~dim:c.Bb.dim ~f:(Objectmath.Ensemble_exec.brhs ex) y0s
        in
        Ens.rkf45 ens ~t0:0. ~tend:1.)
  in
  let seq = run 1 and par = run 3 in
  for m = 0 to n - 1 do
    Array.iteri
      (fun i v ->
        check_bits (Printf.sprintf "member %d state %d" m i) v
          par.Ens.final.(m).(i))
      seq.Ens.final.(m)
  done

(* ---------- compile-once sweeps ---------- *)

let sweep_source =
  {|model M; class C parameter k = 1.0; variable x init 1.0;
    equation der(x) = 0.0 - k * x; end; instance c of C;|}

let test_sweep_promotes () =
  match Objectmath.Sweep.prepare ~source:sweep_source ~cls:"C" ~param:"k" with
  | Objectmath.Sweep.Promoted c ->
      let points =
        Objectmath.Sweep.run_compiled c ~values:[ 0.5; 1.; 2.; 4. ] ~tend:1.
          ~metric:(Objectmath.Sweep.final_value "c.x")
          ()
      in
      List.iter
        (fun (p : Objectmath.Sweep.point) ->
          Alcotest.(check (float 1e-4))
            (Printf.sprintf "exp(-%g)" p.value)
            (Float.exp (Float.neg p.value))
            p.metric;
          Alcotest.(check bool) "steps counted" true (p.steps > 0);
          Alcotest.(check bool) "rhs calls counted" true (p.rhs_calls > 0))
        points
  | Objectmath.Sweep.Legacy reason ->
      Alcotest.failf "expected promotion, got legacy: %s" reason

let test_sweep_structural_fallback () =
  (* An instance [with] binding rebinding the swept parameter forces the
     legacy path. *)
  let source =
    {|model M; class C parameter k = 1.0; variable x init 1.0;
      equation der(x) = 0.0 - k * x; end; instance c of C with k = 2.0;|}
  in
  (match Objectmath.Sweep.prepare ~source ~cls:"C" ~param:"k" with
  | Objectmath.Sweep.Legacy _ -> ()
  | Objectmath.Sweep.Promoted _ ->
      Alcotest.fail "expected legacy fallback for structural rebinding");
  (* And Sweep.run still works on it end to end. *)
  let points =
    Objectmath.Sweep.run ~source ~cls:"C" ~param:"k" ~values:[ 1.; 2. ]
      ~tend:1.
      ~metric:(Objectmath.Sweep.final_value "c.x")
      ()
  in
  Alcotest.(check int) "two points" 2 (List.length points)

let test_sweep_unknown_param () =
  Alcotest.check_raises "unknown parameter"
    (Om_lang.Override.Unknown_target "parameter nope of class C") (fun () ->
      ignore
        (Objectmath.Sweep.prepare ~source:sweep_source ~cls:"C" ~param:"nope"))

let test_sweep_matches_legacy_numerics () =
  (* Promoted ensemble path vs per-value LSODA path: same physics. *)
  let values = [ 0.5; 2. ] in
  let metric = Objectmath.Sweep.final_value "c.x" in
  let fast =
    Objectmath.Sweep.run ~source:sweep_source ~cls:"C" ~param:"k" ~values
      ~tend:1. ~metric ()
  in
  List.iter
    (fun (p : Objectmath.Sweep.point) ->
      Alcotest.(check (float 1e-4))
        (Printf.sprintf "analytic exp(-%g)" p.value)
        (Float.exp (Float.neg p.value))
        p.metric)
    fast

(* ---------- Monte Carlo ---------- *)

let test_monte_carlo_deterministic () =
  let mc seed =
    Objectmath.Sweep.monte_carlo ~source:sweep_source
      ~specs:[ ("C", "k", Objectmath.Sweep.Uniform (0.5, 2.)) ]
      ~samples:16 ~seed ~tend:1.
      ~metric:(Objectmath.Sweep.final_value "c.x")
      ()
  in
  let a = mc 42 and b = mc 42 and c = mc 7 in
  Alcotest.(check bool) "promoted path" true a.Objectmath.Sweep.promoted;
  List.iter2
    (fun (x : Objectmath.Sweep.mc_sample) (y : Objectmath.Sweep.mc_sample) ->
      check_bits "same draw" x.draws.(0) y.draws.(0);
      check_bits "same metric" x.mc_metric y.mc_metric)
    a.Objectmath.Sweep.samples b.Objectmath.Sweep.samples;
  Alcotest.(check bool)
    "different seed, different draws" true
    (List.exists2
       (fun (x : Objectmath.Sweep.mc_sample) (y : Objectmath.Sweep.mc_sample) ->
         x.draws.(0) <> y.draws.(0))
       a.Objectmath.Sweep.samples c.Objectmath.Sweep.samples);
  (* Draws respect the distribution's support, and the metric follows:
     exp(-2) <= x(1) <= exp(-0.5). *)
  List.iter
    (fun (s : Objectmath.Sweep.mc_sample) ->
      Alcotest.(check bool) "draw in range" true
        (s.draws.(0) >= 0.5 && s.draws.(0) <= 2.);
      Alcotest.(check bool) "metric in range" true
        (s.mc_metric >= (Float.exp (-2.) -. 1e-3)
        && s.mc_metric <= Float.exp (-0.5) +. 1e-3))
    a.Objectmath.Sweep.samples

let () =
  Alcotest.run "om_ensemble"
    [
      ( "vm_batch",
        [
          Alcotest.test_case "matches scalar per lane" `Quick
            test_batch_matches_scalar;
          Alcotest.test_case "width one" `Quick test_batch_width_one;
          Alcotest.test_case "subrange execution" `Quick test_batch_subrange;
          Alcotest.test_case "zero allocation" `Quick test_batch_zero_alloc;
        ] );
      ( "batch_backend",
        [
          Alcotest.test_case "matches rhs_fn per lane" `Quick
            test_batch_backend_matches_rhs_fn;
          Alcotest.test_case "zero allocation" `Quick
            test_batch_backend_zero_alloc;
        ] );
      ( "ensemble",
        [
          Alcotest.test_case "rk4 matches scalar runs" `Quick
            test_rk4_matches_scalar_runs;
          Alcotest.test_case "rkf45 batch of one" `Quick
            test_rkf45_batch_of_one_matches_scalar;
          Alcotest.test_case "split isolates stiff member" `Quick
            test_split_isolates_stiff_member;
          Alcotest.test_case "domains match sequential" `Quick
            test_domains_match_sequential;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "compile-once promotion" `Quick
            test_sweep_promotes;
          Alcotest.test_case "structural fallback" `Quick
            test_sweep_structural_fallback;
          Alcotest.test_case "unknown parameter" `Quick
            test_sweep_unknown_param;
          Alcotest.test_case "matches analytic" `Quick
            test_sweep_matches_legacy_numerics;
          Alcotest.test_case "monte carlo deterministic" `Quick
            test_monte_carlo_deterministic;
        ] );
    ]
