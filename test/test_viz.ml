(* Tests for the visualization module: SVG structure, scaling sanity and
   the ASCII quick-look. *)

module Plot = Om_viz.Plot

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let wave =
  Plot.series "wave"
    (List.init 50 (fun i ->
         let x = float_of_int i /. 10. in
         (x, Float.sin x)))

let line = Plot.series "line" [ (0., 0.); (1., 2.); (2., 4.) ]

let test_svg_structure () =
  let svg = Plot.to_svg ~title:"t" ~x_label:"x" ~y_label:"y" [ wave; line ] in
  Alcotest.(check bool) "svg root" true (contains svg "<svg xmlns");
  Alcotest.(check bool) "closes" true (contains svg "</svg>");
  Alcotest.(check bool) "two polylines" true
    (List.length (String.split_on_char '\n' svg
                  |> List.filter (fun l -> contains l "<polyline"))
    = 2);
  Alcotest.(check bool) "legend labels" true
    (contains svg ">wave</text>" && contains svg ">line</text>");
  Alcotest.(check bool) "title" true (contains svg ">t</text>")

let test_svg_dimensions () =
  let svg = Plot.to_svg ~width:320 ~height:200 [ line ] in
  Alcotest.(check bool) "width attr" true (contains svg "width=\"320\"");
  Alcotest.(check bool) "height attr" true (contains svg "height=\"200\"")

let test_svg_rejects_empty () =
  Alcotest.check_raises "no points"
    (Invalid_argument "Plot.to_svg: need at least one series with two points")
    (fun () -> ignore (Plot.to_svg [ Plot.series "x" [ (1., 1.) ] ]))

let test_svg_points_inside_viewbox () =
  let svg = Plot.to_svg ~width:640 ~height:400 [ wave ] in
  (* Every polyline coordinate must lie inside the canvas. *)
  String.split_on_char '\n' svg
  |> List.filter (fun l -> contains l "<polyline")
  |> List.iter (fun l ->
         let start = String.index l '"' + 1 in
         let stop = String.index_from l start '"' in
         let pts = String.sub l start (stop - start) in
         String.split_on_char ' ' pts
         |> List.iter (fun p ->
                match String.split_on_char ',' p with
                | [ x; y ] ->
                    let x = float_of_string x and y = float_of_string y in
                    Alcotest.(check bool) "x in range" true
                      (x >= 0. && x <= 640.);
                    Alcotest.(check bool) "y in range" true
                      (y >= 0. && y <= 400.)
                | _ -> Alcotest.fail "bad point"))

let test_of_arrays () =
  let s = Plot.of_arrays "a" [| 1.; 2. |] [| 3.; 4. |] in
  Alcotest.(check int) "points" 2 (List.length s.points);
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Plot.of_arrays: length mismatch") (fun () ->
      ignore (Plot.of_arrays "a" [| 1. |] [| 1.; 2. |]))

let test_ascii () =
  let a = Plot.to_ascii ~width:40 ~height:10 wave in
  Alcotest.(check bool) "has stars" true (contains a "*");
  Alcotest.(check bool) "has label" true (contains a "wave");
  Alcotest.(check int) "rows" 11
    (List.length (String.split_on_char '\n' a))

let test_ascii_degenerate () =
  Alcotest.(check string) "single point" "(not enough points)"
    (Plot.to_ascii (Plot.series "p" [ (0., 0.) ]))

let test_save_svg () =
  let path = Filename.temp_file "plot" ".svg" in
  Plot.save_svg ~path [ line ];
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "nonempty file" true (len > 200)

(* ---------- gantt ---------- *)

let segs =
  [
    { Plot.row = 0; t_start = 0.; t_end = 1.; category = "send" };
    { Plot.row = 1; t_start = 1.; t_end = 3.; category = "compute" };
    { Plot.row = 0; t_start = 3.; t_end = 3.5; category = "recv" };
  ]

let test_gantt_structure () =
  let svg = Plot.gantt_svg ~title:"round" ~row_labels:[ "sup"; "w0" ] segs in
  Alcotest.(check bool) "svg" true (contains svg "<svg xmlns");
  Alcotest.(check bool) "row label" true (contains svg ">sup</text>");
  Alcotest.(check bool) "legend categories" true
    (contains svg ">send</text>" && contains svg ">compute</text>");
  (* 3 activity rects + 3 legend swatches + background. *)
  let rects =
    String.split_on_char '
' svg
    |> List.filter (fun l -> contains l "<rect")
    |> List.length
  in
  Alcotest.(check int) "rect count" 7 rects

let test_gantt_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Plot.gantt_svg: empty input")
    (fun () -> ignore (Plot.gantt_svg ~row_labels:[ "a" ] []));
  Alcotest.check_raises "bad row"
    (Invalid_argument "Plot.gantt_svg: row out of range") (fun () ->
      ignore (Plot.gantt_svg ~row_labels:[ "a" ] segs))

let () =
  Alcotest.run "om_viz"
    [
      ( "svg",
        [
          Alcotest.test_case "structure" `Quick test_svg_structure;
          Alcotest.test_case "dimensions" `Quick test_svg_dimensions;
          Alcotest.test_case "rejects empty" `Quick test_svg_rejects_empty;
          Alcotest.test_case "points inside viewbox" `Quick
            test_svg_points_inside_viewbox;
          Alcotest.test_case "save" `Quick test_save_svg;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "structure" `Quick test_gantt_structure;
          Alcotest.test_case "rejects bad input" `Quick test_gantt_rejects;
        ] );
      ( "ascii",
        [
          Alcotest.test_case "of_arrays" `Quick test_of_arrays;
          Alcotest.test_case "rendering" `Quick test_ascii;
          Alcotest.test_case "degenerate" `Quick test_ascii_degenerate;
        ] );
    ]
