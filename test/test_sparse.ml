(* Property and regression tests for the sparse Newton path: CSR
   patterns, distance-2 column coloring, colored finite differences,
   the dense-replaying sparse LU, Newton-matrix assembly, and the
   parallel colored-group evaluator.

   The load-bearing claims are all *bitwise*: the sparse path must be a
   drop-in replacement for the dense one, producing Int64-identical
   numbers, so every comparison below goes through
   [Int64.bits_of_float] rather than a tolerance. *)

module S = Om_ode.Sparse
module L = Om_ode.Linalg
module Odesys = Om_ode.Odesys
module Jacobian = Om_ode.Jacobian

let bits = Int64.bits_of_float

(* ---------- generators ---------- *)

(* A random rectangular-free sparse pattern: [n] columns/rows plus a
   per-cell inclusion mask drawn from a density knob. *)
let pattern_gen =
  QCheck.Gen.(
    let* n = int_range 2 20 in
    let* keep = int_range 1 6 in
    let* mask = array_size (return (n * n)) (int_range 0 9) in
    let entries = ref [] in
    for i = n - 1 downto 0 do
      for j = n - 1 downto 0 do
        if mask.((i * n) + j) < keep then entries := (i, j) :: !entries
      done
    done;
    return (n, !entries))

let arbitrary_pattern =
  QCheck.make
    ~print:(fun (n, es) -> Printf.sprintf "n=%d nnz<=%d" n (List.length es))
    pattern_gen

(* A random sparse matrix: pattern with a full diagonal (so random
   values are usually nonsingular, and the Newton merge is the
   identity) plus values in [-5, 5]. *)
let matrix_gen =
  QCheck.Gen.(
    let* n, entries = pattern_gen in
    let pat =
      S.pattern_of_entries ~rows:n ~cols:n
        (List.init n (fun i -> (i, i)) @ entries)
    in
    let* v = array_size (return (S.nnz pat)) (float_range (-5.) 5.) in
    let* b = array_size (return n) (float_range (-5.) 5.) in
    return (pat, v, b))

let arbitrary_matrix =
  QCheck.make
    ~print:(fun (p, _, _) ->
      Printf.sprintf "n=%d nnz=%d" p.S.rows (S.nnz p))
    matrix_gen

let sparse_of (pat, v) =
  let sm = S.create pat in
  Array.blit v 0 sm.S.v 0 (S.nnz pat);
  sm

(* ---------- coloring ---------- *)

(* Validity: the partition into groups is consistent with the color
   array, and no two columns sharing a row share a color (the distance-2
   property that makes one RHS evaluation per group decompressible). *)
let prop_coloring_valid =
  QCheck.Test.make ~name:"coloring is a valid distance-2 partition"
    ~count:300 arbitrary_pattern (fun (n, entries) ->
      let pat = S.pattern_of_entries ~rows:n ~cols:n entries in
      let c = S.color_columns pat in
      let ok_range =
        Array.for_all (fun col -> col >= 0 && col < c.S.ncolors) c.S.color
      in
      let ok_groups =
        c.S.ncolors = Array.length c.S.groups
        && Array.for_all (fun g -> Array.length g > 0) c.S.groups
        && Array.to_list c.S.groups
           |> List.concat_map Array.to_list
           |> List.sort compare
           = List.init n Fun.id
        && Array.for_all2
             (fun g color -> Array.for_all (fun j -> c.S.color.(j) = color) g)
             c.S.groups
             (Array.init c.S.ncolors Fun.id)
      in
      let ok_distance2 =
        (* walk each row; its columns must have pairwise distinct colors *)
        let ok = ref true in
        for i = 0 to pat.S.rows - 1 do
          let seen = Hashtbl.create 8 in
          for k = pat.S.row_ptr.(i) to pat.S.row_ptr.(i + 1) - 1 do
            let col = c.S.color.(pat.S.col_ind.(k)) in
            if Hashtbl.mem seen col then ok := false;
            Hashtbl.replace seen col ()
          done
        done;
        !ok
      in
      ok_range && ok_groups && ok_distance2)

(* On a banded pattern the greedy ordering achieves the analytic bound:
   at most ml + mu + 1 colors (CPR on band matrices). *)
let prop_banded_color_bound =
  QCheck.Test.make ~name:"banded pattern colors <= ml + mu + 1" ~count:200
    (QCheck.make
       ~print:(fun (n, ml, mu) -> Printf.sprintf "n=%d ml=%d mu=%d" n ml mu)
       QCheck.Gen.(
         let* n = int_range 2 40 in
         let* ml = int_range 0 3 in
         let* mu = int_range 0 3 in
         return (n, ml, mu)))
    (fun (n, ml, mu) ->
      let entries = ref [] in
      for i = 0 to n - 1 do
        for j = max 0 (i - ml) to min (n - 1) (i + mu) do
          entries := (i, j) :: !entries
        done
      done;
      let pat = S.pattern_of_entries ~rows:n ~cols:n !entries in
      (S.color_columns pat).S.ncolors <= ml + mu + 1)

(* ---------- colored finite differences ---------- *)

(* A synthetic RHS that reads exactly the structural entries of its
   pattern (deterministic nonlinear coefficients), so forward
   differences outside the pattern are exactly +0 and the colored
   compression is loss-free. *)
let structural_rhs (pat : S.pattern) t y ydot =
  for i = 0 to pat.rows - 1 do
    let acc = ref (Float.sin t) in
    for k = pat.row_ptr.(i) to pat.row_ptr.(i + 1) - 1 do
      let j = pat.col_ind.(k) in
      let c = float_of_int ((((i * 7) + (j * 13)) mod 11) - 5) /. 7. in
      acc := !acc +. (c *. Float.sin y.(j)) +. (0.1 *. y.(j) *. y.(j))
    done;
    ydot.(i) <- !acc
  done

let prop_colored_fd_bitwise =
  QCheck.Test.make
    ~name:"colored fd decompresses to dense forward differences bitwise"
    ~count:200 arbitrary_pattern (fun (n, entries) ->
      let pat = S.pattern_of_entries ~rows:n ~cols:n entries in
      let sys = Odesys.make ~sparsity:pat ~dim:n (structural_rhs pat) in
      let ctx =
        match Jacobian.plan ~jac_mode:Odesys.Sparse sys with
        | Jacobian.Sparse_plan c -> c
        | _ -> QCheck.Test.fail_report "no sparse plan"
      in
      let y = Array.init n (fun i -> Float.cos (float_of_int i)) in
      Jacobian.sparse_eval_into sys ctx 0.3 y;
      let num = Jacobian.numeric sys 0.3 y in
      let ok_structural = ref true and ok_zero = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if S.mem pat i j then (
            let k = S.index pat i j in
            if bits ctx.Jacobian.sj.S.v.(k) <> bits num.(i).(j) then
              ok_structural := false)
          else if bits num.(i).(j) <> bits 0. then ok_zero := false
        done
      done;
      !ok_structural && !ok_zero)

(* The fd cost model the bench and the report advertise: one Jacobian
   evaluation costs exactly [colors + 1] RHS calls. *)
let test_fd_evals_equals_colors_plus_one () =
  let n = 20 in
  let entries = ref [] in
  for i = 0 to n - 1 do
    for j = max 0 (i - 1) to min (n - 1) (i + 1) do
      entries := (i, j) :: !entries
    done
  done;
  let pat = S.pattern_of_entries ~rows:n ~cols:n !entries in
  let sys = Odesys.make ~sparsity:pat ~dim:n (structural_rhs pat) in
  let ctx =
    match Jacobian.plan ~jac_mode:Odesys.Sparse sys with
    | Jacobian.Sparse_plan c -> c
    | _ -> Alcotest.fail "no sparse plan"
  in
  Alcotest.(check int) "tridiagonal colors" 3 ctx.Jacobian.coloring.S.ncolors;
  Odesys.reset_counters sys;
  let y = Array.make n 1. in
  Jacobian.sparse_eval_into sys ctx 0. y;
  Alcotest.(check int) "jac_calls" 1 sys.Odesys.counters.Odesys.jac_calls;
  Alcotest.(check int) "rhs calls = colors + 1" 4
    sys.Odesys.counters.Odesys.rhs_calls

(* ---------- sparse LU vs dense LU ---------- *)

let prop_sparse_lu_bitwise =
  QCheck.Test.make
    ~name:"sparse LU solve bitwise equals dense (incl. Singular parity)"
    ~count:300 arbitrary_matrix (fun (pat, v, b) ->
      let sm = sparse_of (pat, v) in
      let dense = S.to_dense sm in
      let s_res =
        try Ok (S.lu_solve (S.lu_factor sm) b) with L.Singular k -> Error k
      in
      let d_res =
        try Ok (L.lu_solve (L.lu_factor dense) b)
        with L.Singular k -> Error k
      in
      match (s_res, d_res) with
      | Ok xs, Ok xd -> Array.for_all2 (fun a c -> bits a = bits c) xs xd
      | Error a, Error c -> a = c
      | _ -> false)

let test_singular_index_parity () =
  (* An exactly zero pivot column: both factorisations must name the
     same pivot step. *)
  let dense = [| [| 1.; 0.; 2. |]; [| 3.; 0.; 4. |]; [| 5.; 0.; 6. |] |] in
  let sm = S.of_dense ~tol:(-1.) dense in
  let d_idx =
    try
      ignore (L.lu_factor (Array.map Array.copy dense));
      -1
    with L.Singular k -> k
  in
  let s_idx = try ignore (S.lu_factor sm); -1 with L.Singular k -> k in
  Alcotest.(check bool) "dense is singular" true (d_idx >= 0);
  Alcotest.(check int) "same pivot step" d_idx s_idx

(* ---------- Newton assembly ---------- *)

let prop_newton_assemble_bitwise =
  QCheck.Test.make
    ~name:"newton_assemble bitwise equals dense alpha*I - beta*J"
    ~count:300
    (QCheck.make
       ~print:(fun ((p, _, _), _, _) ->
         Printf.sprintf "n=%d nnz=%d" p.S.rows (S.nnz p))
       QCheck.Gen.(
         let* m = matrix_gen in
         let* alpha = float_range (-3.) 3. in
         let* beta = float_range (-3.) 3. in
         return (m, alpha, beta)))
    (fun ((pat, v, _), alpha, beta) ->
      let sm = sparse_of (pat, v) in
      let n = pat.S.rows in
      let nt = S.make_newton pat in
      S.newton_assemble nt ~jac:sm ~alpha ~beta;
      let got = S.to_dense (S.newton_matrix nt) in
      let j = S.to_dense sm in
      let ok = ref true in
      for i = 0 to n - 1 do
        for k = 0 to n - 1 do
          let want =
            (if i = k then alpha else 0.) -. (beta *. j.(i).(k))
          in
          (* Outside the merged pattern the dense formula can produce a
             signed zero the CSR storage has no slot for; those
             positions are structurally impossible to disagree on
             magnitude, so compare values there and bits inside. *)
          if S.mem (S.newton_matrix nt).S.pat i k then (
            if bits got.(i).(k) <> bits want then ok := false)
          else if got.(i).(k) <> want then ok := false
        done
      done;
      !ok)

(* ---------- parallel colored-group evaluation ---------- *)

(* [Par_jac] with caller-supplied pure closures: the ticket-scheduled
   parallel batch must be bitwise the sequential loop, across repeated
   reuse of the evaluator. *)
let test_par_jac_matches_sequential () =
  let dim = 5 in
  let f t y out =
    for i = 0 to dim - 1 do
      out.(i) <- Float.sin (t +. (y.(i) *. float_of_int (i + 1))) +. y.((i + 1) mod dim)
    done
  in
  let pj = Om_parallel.Par_jac.create_with [| f; f; f |] in
  Fun.protect
    ~finally:(fun () -> Om_parallel.Par_jac.shutdown pj)
    (fun () ->
      Alcotest.(check int) "workers" 3 (Om_parallel.Par_jac.nworkers pj);
      for round = 1 to 3 do
        let npts = 7 in
        let pts =
          Array.init npts (fun p ->
              Array.init dim (fun i ->
                  Float.cos (float_of_int ((p * dim) + i + round))))
        in
        let expected = Array.init npts (fun _ -> Array.make dim 0.) in
        Array.iteri (fun p pt -> f 0.25 pt expected.(p)) pts;
        let got = Array.init npts (fun _ -> Array.make dim 0.) in
        Om_parallel.Par_jac.batch pj 0.25 pts got;
        Alcotest.(check bool)
          (Printf.sprintf "round %d bitwise" round)
          true
          (Array.for_all2
             (fun a b -> Array.for_all2 (fun x y -> bits x = bits y) a b)
             expected got)
      done)

(* ---------- pattern plumbing ---------- *)

let test_pattern_merge_and_index () =
  let pat =
    S.pattern_of_entries ~rows:3 ~cols:3
      [ (0, 2); (0, 0); (0, 2); (2, 1) ]
  in
  Alcotest.(check int) "duplicates merged" 3 (S.nnz pat);
  Alcotest.(check bool) "mem hit" true (S.mem pat 0 2);
  Alcotest.(check bool) "mem miss" false (S.mem pat 1 1);
  Alcotest.(check int) "index of miss" (-1) (S.index pat 1 1);
  Alcotest.(check bool) "ascending columns" true
    (pat.S.col_ind = [| 0; 2; 1 |])

let prop_dense_roundtrip =
  QCheck.Test.make ~name:"of_dense . to_dense is the identity" ~count:200
    arbitrary_matrix (fun (pat, v, _) ->
      let sm = sparse_of (pat, v) in
      let back = S.of_dense ~tol:(-1.) (S.to_dense sm) in
      (* [tol = -1] keeps explicit zeros, but of_dense cannot recover
         structural slots holding 0. exactly; compare as dense. *)
      S.to_dense back = S.to_dense sm)

let () =
  let q = Qcheck_seed.to_alcotest in
  Alcotest.run "om_sparse"
    [
      ( "coloring",
        [
          q prop_coloring_valid;
          q prop_banded_color_bound;
          Alcotest.test_case "fd evals = colors + 1" `Quick
            test_fd_evals_equals_colors_plus_one;
        ] );
      ("fd", [ q prop_colored_fd_bitwise ]);
      ( "lu",
        [
          q prop_sparse_lu_bitwise;
          Alcotest.test_case "singular index parity" `Quick
            test_singular_index_parity;
        ] );
      ("newton", [ q prop_newton_assemble_bitwise ]);
      ( "par_jac",
        [
          Alcotest.test_case "parallel batch bitwise" `Quick
            test_par_jac_matches_sequential;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "merge and index" `Quick
            test_pattern_merge_and_index;
          q prop_dense_roundtrip;
        ] );
    ]
