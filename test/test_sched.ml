(* Tests for scheduling: LPT, semi-dynamic LPT and DAG list scheduling. *)

module Task = Om_sched.Task
module Lpt = Om_sched.Lpt
module Semidynamic = Om_sched.Semidynamic
module Dag = Om_sched.Dag_sched
module D = Om_graph.Digraph

let mk_tasks costs =
  Array.of_list
    (List.mapi
       (fun i c ->
         Task.make ~id:i ~label:(Printf.sprintf "t%d" i) ~cost:c ~reads:[ 0 ]
           ~writes:[ i ])
       costs)

(* ---------- task ---------- *)

let test_task_stats () =
  let tasks = mk_tasks [ 1.; 2.; 3. ] in
  Alcotest.(check (float 1e-9)) "total" 6. (Task.total_cost tasks);
  Alcotest.(check (float 1e-9)) "max" 3. (Task.max_cost tasks);
  Task.validate tasks

let test_task_validate_duplicate_write () =
  let t i w = Task.make ~id:i ~label:"x" ~cost:1. ~reads:[] ~writes:[ w ] in
  Alcotest.check_raises "duplicate write"
    (Invalid_argument "Task.validate: output 5 written twice") (fun () ->
      Task.validate [| t 0 5; t 1 5 |])

let test_task_validate_ids () =
  let t i = Task.make ~id:i ~label:"x" ~cost:1. ~reads:[] ~writes:[ i ] in
  Alcotest.check_raises "non-dense ids"
    (Invalid_argument "Task.validate: id 2 at position 1") (fun () ->
      Task.validate [| t 0; t 2 |])

(* ---------- LPT ---------- *)

let test_lpt_balanced () =
  (* 6 equal tasks on 3 processors: perfectly balanced. *)
  let tasks = mk_tasks [ 1.; 1.; 1.; 1.; 1.; 1. ] in
  let s = Lpt.schedule tasks ~nprocs:3 in
  Alcotest.(check (float 1e-9)) "makespan" 2. s.makespan;
  Alcotest.(check (float 1e-9)) "imbalance 1" 1. (Lpt.imbalance s)

let test_lpt_classic () =
  (* LPT on {7,6,5,4,3,2} with 2 procs: optimal 14, LPT gives 14. *)
  let tasks = mk_tasks [ 7.; 6.; 5.; 4.; 3.; 2. ] in
  let s = Lpt.schedule tasks ~nprocs:2 in
  Alcotest.(check (float 1e-9)) "makespan" 14. s.makespan

let test_lpt_single_proc () =
  let tasks = mk_tasks [ 3.; 1.; 2. ] in
  let s = Lpt.schedule tasks ~nprocs:1 in
  Alcotest.(check (float 1e-9)) "serial makespan" 6. s.makespan

let test_lpt_override_costs () =
  let tasks = mk_tasks [ 1.; 1. ] in
  let s = Lpt.schedule ~costs:[| 10.; 1. |] tasks ~nprocs:2 in
  Alcotest.(check (float 1e-9)) "uses measured costs" 10. s.makespan

let test_lpt_empty () =
  let s = Lpt.schedule [||] ~nprocs:3 in
  Alcotest.(check (float 1e-12)) "empty makespan" 0. s.makespan;
  Alcotest.(check (float 1e-12)) "imbalance defined" 1. (Lpt.imbalance s)

let test_lpt_more_procs_than_tasks () =
  let tasks = mk_tasks [ 5.; 3. ] in
  let s = Lpt.schedule tasks ~nprocs:8 in
  Alcotest.(check (float 1e-12)) "one task per proc" 5. s.makespan

let test_lpt_tasks_of () =
  let tasks = mk_tasks [ 5.; 1.; 1. ] in
  let s = Lpt.schedule tasks ~nprocs:2 in
  let all = List.sort compare (Lpt.tasks_of s 0 @ Lpt.tasks_of s 1) in
  Alcotest.(check (list int)) "partition covers all" [ 0; 1; 2 ] all

let cost_list_gen =
  QCheck.Gen.(list_size (int_range 1 40) (float_range 0.1 100.))

let arbitrary_lpt =
  QCheck.make
    ~print:(fun (costs, p) ->
      Printf.sprintf "%d tasks, %d procs" (List.length costs) p)
    QCheck.Gen.(pair cost_list_gen (int_range 1 8))

let prop_lpt_makespan_bounds =
  QCheck.Test.make ~name:"LPT within list-scheduling bounds" ~count:300
    arbitrary_lpt (fun (costs, nprocs) ->
      let tasks = mk_tasks costs in
      let s = Lpt.schedule tasks ~nprocs in
      let total = Task.total_cost tasks in
      let avg = total /. float_of_int nprocs in
      let lower = Float.max avg (Task.max_cost tasks) in
      (* Any list schedule satisfies makespan <= avg + (1 - 1/m) max. *)
      let upper =
        avg
        +. (1. -. (1. /. float_of_int nprocs)) *. Task.max_cost tasks
      in
      s.makespan >= lower -. 1e-9 && s.makespan <= upper +. 1e-6)

let prop_lpt_loads_consistent =
  QCheck.Test.make ~name:"LPT loads sum to total" ~count:300 arbitrary_lpt
    (fun (costs, nprocs) ->
      let tasks = mk_tasks costs in
      let s = Lpt.schedule tasks ~nprocs in
      let total = Array.fold_left ( +. ) 0. s.loads in
      Float.abs (total -. Task.total_cost tasks) < 1e-6)

(* The production scheduler keeps a min-heap of processors; replay the
   historical O(n·p) linear scan and demand byte-identical assignments,
   including the lowest-index tie-break. *)
let reference_lpt costs nprocs =
  let n = Array.length costs in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare costs.(b) costs.(a)) order;
  let loads = Array.make nprocs 0. in
  let assignment = Array.make n 0 in
  Array.iter
    (fun i ->
      let best = ref 0 in
      for p = 1 to nprocs - 1 do
        if loads.(p) < loads.(!best) then best := p
      done;
      assignment.(i) <- !best;
      loads.(!best) <- loads.(!best) +. costs.(i))
    order;
  assignment

let prop_lpt_heap_matches_linear_scan =
  QCheck.Test.make ~name:"heap LPT matches reference linear scan" ~count:500
    arbitrary_lpt (fun (costs, nprocs) ->
      let tasks = mk_tasks costs in
      let s = Lpt.schedule tasks ~nprocs in
      s.assignment = reference_lpt (Array.of_list costs) nprocs)

(* Duplicate costs force load ties, stressing the tie-break path. *)
let prop_lpt_heap_matches_on_ties =
  QCheck.Test.make ~name:"heap LPT matches reference on tied loads"
    ~count:300
    (QCheck.make
       ~print:(fun (costs, p) ->
         Printf.sprintf "%d tasks, %d procs" (List.length costs) p)
       QCheck.Gen.(
         pair
           (list_size (int_range 1 60)
              (map (fun i -> float_of_int i) (int_range 1 4)))
           (int_range 1 8)))
    (fun (costs, nprocs) ->
      let tasks = mk_tasks costs in
      let s = Lpt.schedule tasks ~nprocs in
      s.assignment = reference_lpt (Array.of_list costs) nprocs)

let prop_lpt_makespan_monotone_in_procs =
  QCheck.Test.make ~name:"more processors never hurt LPT by much" ~count:200
    arbitrary_lpt (fun (costs, nprocs) ->
      let tasks = mk_tasks costs in
      let s1 = Lpt.schedule tasks ~nprocs in
      let s2 = Lpt.schedule tasks ~nprocs:(nprocs + 1) in
      (* LPT is not strictly monotone, but cannot degrade beyond the
         approximation bound. *)
      s2.makespan <= s1.makespan *. (4. /. 3.) +. 1e-9)

(* ---------- semi-dynamic ---------- *)

let test_semidynamic_adapts () =
  (* Static estimates say equal costs; reality is skewed.  After enough
     observations the schedule separates the two heavy tasks. *)
  let tasks = mk_tasks [ 10.; 10.; 10.; 10. ] in
  let sd = Semidynamic.create ~period:1 ~smoothing:1. tasks ~nprocs:2 in
  let measured = [| 100.; 1.; 100.; 1. |] in
  Semidynamic.observe sd measured;
  let s = Semidynamic.current sd in
  Alcotest.(check bool) "heavy tasks split" true
    (s.assignment.(0) <> s.assignment.(2));
  Alcotest.(check int) "one reschedule" 1 (Semidynamic.reschedule_count sd)

let test_semidynamic_period () =
  let tasks = mk_tasks [ 1.; 1. ] in
  let sd = Semidynamic.create ~period:5 tasks ~nprocs:2 in
  for _ = 1 to 4 do
    Semidynamic.observe sd [| 1.; 1. |]
  done;
  Alcotest.(check int) "not yet" 0 (Semidynamic.reschedule_count sd);
  Semidynamic.observe sd [| 1.; 1. |];
  Alcotest.(check int) "now" 1 (Semidynamic.reschedule_count sd)

let test_semidynamic_overhead_model () =
  let tasks = mk_tasks (List.init 64 (fun _ -> 1.)) in
  let per = Semidynamic.overhead_cost_per_reschedule tasks in
  (* n log2 n with n = 64: 64 * 6 = 384. *)
  Alcotest.(check (float 1e-6)) "n log n model" 384. per;
  let sd = Semidynamic.create ~period:1 tasks ~nprocs:4 in
  Semidynamic.observe sd (Array.make 64 1.);
  Alcotest.(check (float 1e-6)) "accumulated" 384.
    (Semidynamic.overhead_flops sd)

let test_semidynamic_wrong_measurement () =
  let tasks = mk_tasks [ 1.; 1. ] in
  let sd = Semidynamic.create tasks ~nprocs:2 in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Semidynamic.observe: wrong measurement vector")
    (fun () -> Semidynamic.observe sd [| 1. |])

let test_semidynamic_smoothing () =
  let tasks = mk_tasks [ 10. ] in
  let sd = Semidynamic.create ~period:100 ~smoothing:0.5 tasks ~nprocs:1 in
  Semidynamic.observe sd [| 20. |];
  Semidynamic.observe sd [| 20. |];
  (* estimate = 10 -> 15 -> 17.5; no reschedule yet so the schedule is
     unchanged, but estimates converge toward measurements. *)
  Alcotest.(check int) "no reschedule" 0 (Semidynamic.reschedule_count sd);
  Alcotest.(check (float 1e-9)) "EWMA after two observations" 17.5
    (Semidynamic.estimates sd).(0)

let test_semidynamic_ewma_converges () =
  (* Repeated observation of constant measured costs drives the EWMA
     estimates geometrically toward the measurements. *)
  let tasks = mk_tasks [ 10.; 10.; 10. ] in
  let sd = Semidynamic.create ~period:1000 ~smoothing:0.5 tasks ~nprocs:2 in
  let measured = [| 2.; 6.; 40. |] in
  for _ = 1 to 30 do
    Semidynamic.observe sd measured
  done;
  let est = Semidynamic.estimates sd in
  Array.iteri
    (fun i m ->
      Alcotest.(check bool)
        (Printf.sprintf "estimate %d converged to %g" i m)
        true
        (Float.abs (est.(i) -. m) < 1e-6))
    measured

let test_semidynamic_exact_period () =
  (* A reschedule fires on exactly every [period]-th observation:
     the count is k after k*period observations and never in between. *)
  let period = 4 in
  let tasks = mk_tasks [ 1.; 1.; 1. ] in
  let sd = Semidynamic.create ~period tasks ~nprocs:2 in
  for i = 1 to 3 * period do
    Semidynamic.observe sd [| 1.; 1.; 1. |];
    Alcotest.(check int)
      (Printf.sprintf "reschedule count after %d observations" i)
      (i / period)
      (Semidynamic.reschedule_count sd)
  done

let test_semidynamic_initial_costs () =
  (* [?costs] overrides both the initial estimates and the initial
     schedule; a mismatched length is rejected. *)
  let tasks = mk_tasks [ 1.; 1. ] in
  let sd = Semidynamic.create ~costs:[| 10.; 1. |] tasks ~nprocs:2 in
  Alcotest.(check (float 1e-9)) "initial makespan from costs" 10.
    (Semidynamic.current sd).makespan;
  let est = Semidynamic.estimates sd in
  Alcotest.(check (float 1e-9)) "initial estimate 0" 10. est.(0);
  Alcotest.(check (float 1e-9)) "initial estimate 1" 1. est.(1);
  Alcotest.(check bool) "wrong-length costs rejected" true
    (match Semidynamic.create ~costs:[| 1. |] tasks ~nprocs:2 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_semidynamic_cost_inversion () =
  (* Static estimates put one heavy task alone and pile the light ones
     on the other processor.  When measurements invert the costs, the
     rebuilt schedule must break up the now-overloaded worker. *)
  let tasks = mk_tasks [ 8.; 1.; 1.; 1.; 1.; 1. ] in
  let sd = Semidynamic.create ~period:1 ~smoothing:1. tasks ~nprocs:2 in
  let initial = Semidynamic.current sd in
  let light_proc = initial.assignment.(1) in
  Alcotest.(check int) "statically the heavy task sits alone"
    (1 - light_proc)
    initial.assignment.(0);
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "light task %d packed together" i)
        light_proc initial.assignment.(i))
    [ 1; 2; 3; 4; 5 ];
  (* Reality inverted: task 0 is cheap, the "light" tasks are heavy. *)
  Semidynamic.observe sd [| 1.; 4.; 4.; 4.; 4.; 4. |];
  let rebuilt = Semidynamic.current sd in
  Alcotest.(check int) "reschedule happened" 1
    (Semidynamic.reschedule_count sd);
  let heavy_on_light_proc =
    List.filter (fun i -> rebuilt.assignment.(i) = light_proc) [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool)
    "the overloaded worker sheds some of the now-heavy tasks" true
    (List.length heavy_on_light_proc < 5);
  (* LPT on {4,4,4,4,4,1}: loads 12 and 9 — the optimum for these
     costs (every subset sum is 4k or 4k+1, so 11 is unreachable). *)
  Alcotest.(check (float 1e-9)) "rebuilt makespan is the LPT optimum" 12.
    rebuilt.makespan

(* ---------- DAG scheduling ---------- *)

let diamond () =
  D.of_edges [ "a"; "b"; "c"; "d" ]
    [ ("a", "b"); ("a", "c"); ("b", "d"); ("c", "d") ]

let test_dag_critical_path () =
  let g = diamond () in
  Alcotest.(check (float 1e-9)) "cp" 3.
    (Dag.critical_path g ~weights:[| 1.; 1.; 1.; 1. |]);
  Alcotest.(check (float 1e-9)) "max speedup" (4. /. 3.)
    (Dag.max_speedup g ~weights:[| 1.; 1.; 1.; 1. |])

let test_dag_schedule_two_procs () =
  let g = diamond () in
  let s = Dag.schedule g ~weights:[| 1.; 1.; 1.; 1. |] ~comm:0. ~nprocs:2 in
  Alcotest.(check (float 1e-9)) "makespan = critical path" 3. s.makespan

let test_dag_schedule_one_proc () =
  let g = diamond () in
  let s = Dag.schedule g ~weights:[| 1.; 1.; 1.; 1. |] ~comm:0. ~nprocs:1 in
  Alcotest.(check (float 1e-9)) "serial" 4. s.makespan

let test_dag_comm_cost_matters () =
  (* With huge communication it is better to serialise on one processor:
     makespan stays bounded by the serial time. *)
  let g = diamond () in
  let s = Dag.schedule g ~weights:[| 1.; 1.; 1.; 1. |] ~comm:100. ~nprocs:4 in
  Alcotest.(check bool) "avoids communication" true (s.makespan <= 4. +. 1e-9)

let test_dag_cycle_rejected () =
  let g = D.of_edges [ "a"; "b" ] [ ("a", "b"); ("b", "a") ] in
  Alcotest.check_raises "cycle"
    (Invalid_argument "Topo.sort: graph has a cycle") (fun () ->
      ignore (Dag.schedule g ~weights:[| 1.; 1. |] ~comm:0. ~nprocs:2))

let random_dag_gen =
  QCheck.Gen.(
    let* n = int_range 1 10 in
    let* edges =
      list_size (int_bound (2 * n))
        (pair (int_bound (n - 1)) (int_bound (n - 1)))
    in
    let* weights = array_size (return n) (float_range 0.5 10.) in
    let* nprocs = int_range 1 4 in
    let* comm = float_range 0. 5. in
    return (n, edges, weights, nprocs, comm))

let arbitrary_dag =
  QCheck.make
    ~print:(fun (n, _, _, p, c) -> Printf.sprintf "n=%d p=%d comm=%g" n p c)
    random_dag_gen

let prop_dag_schedule_valid =
  QCheck.Test.make ~name:"DAG schedules respect precedence and resources"
    ~count:300 arbitrary_dag (fun (n, edges, weights, nprocs, comm) ->
      let g = D.create () in
      for i = 0 to n - 1 do
        ignore (D.add_node g (string_of_int i))
      done;
      List.iter (fun (a, b) -> if a < b then D.add_edge g a b) edges;
      let s = Dag.schedule g ~weights ~comm ~nprocs in
      (* Precedence with communication delays. *)
      let prec_ok =
        List.for_all
          (fun (a, b) ->
            s.start_time.(b)
            >= s.finish_time.(a)
               +. (if s.assignment.(a) = s.assignment.(b) then 0. else comm)
               -. 1e-9)
          (D.edges g)
      in
      (* No two tasks overlap on one processor. *)
      let overlap_ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j && s.assignment.(i) = s.assignment.(j) then
            if
              s.start_time.(i) < s.finish_time.(j) -. 1e-9
              && s.start_time.(j) < s.finish_time.(i) -. 1e-9
            then overlap_ok := false
        done
      done;
      prec_ok && !overlap_ok)

(* ---------- pipeline parallelism ---------- *)

let test_pipeline_chain () =
  (* A chain a -> b -> c of equal stages pipelines perfectly. *)
  let g = D.of_edges [ "a"; "b"; "c" ] [ ("a", "b"); ("b", "c") ] in
  Alcotest.(check (float 1e-9)) "3 procs" 3.
    (Dag.pipeline_throughput g ~weights:[| 1.; 1.; 1. |] ~nprocs:3);
  Alcotest.(check (float 1e-9)) "1 proc" 1.
    (Dag.pipeline_throughput g ~weights:[| 1.; 1.; 1. |] ~nprocs:1)

let test_pipeline_bottleneck () =
  let g = D.of_edges [ "a"; "b"; "c" ] [ ("a", "b"); ("b", "c") ] in
  (* The heaviest stage is the initiation interval. *)
  Alcotest.(check (float 1e-9)) "bound by heavy stage" (5. /. 3.)
    (Dag.pipeline_throughput g ~weights:[| 3.; 1.; 1. |] ~nprocs:3)

let test_pipeline_beats_dag_on_chains () =
  (* A pure chain has no DAG parallelism but full pipeline throughput. *)
  let g = D.of_edges [ "a"; "b"; "c"; "d" ]
      [ ("a", "b"); ("b", "c"); ("c", "d") ]
  in
  let w = [| 1.; 1.; 1.; 1. |] in
  Alcotest.(check (float 1e-9)) "dag speedup 1" 1.
    (Dag.speedup g ~weights:w ~comm:0. ~nprocs:4);
  Alcotest.(check (float 1e-9)) "pipeline speedup 4" 4.
    (Dag.pipeline_throughput g ~weights:w ~nprocs:4)

let test_pipeline_cycle_rejected () =
  let g = D.of_edges [ "a"; "b" ] [ ("a", "b"); ("b", "a") ] in
  Alcotest.check_raises "cycle"
    (Invalid_argument "Dag_sched.pipeline_throughput: graph has a cycle")
    (fun () ->
      ignore (Dag.pipeline_throughput g ~weights:[| 1.; 1. |] ~nprocs:2))

let test_nprocs_boundary () =
  (* Both entry points share the raise-on-nonpositive contract:
     [pipeline_throughput] used to clamp [max 1 nprocs] silently while
     [schedule] raised, hiding caller bugs on one path only. *)
  let g = D.of_edges [ "a"; "b" ] [ ("a", "b") ] in
  let w = [| 1.; 1. |] in
  Alcotest.check_raises "schedule rejects 0"
    (Invalid_argument "Dag_sched.schedule: nprocs < 1") (fun () ->
      ignore (Dag.schedule g ~weights:w ~comm:0. ~nprocs:0));
  Alcotest.check_raises "pipeline rejects 0"
    (Invalid_argument "Dag_sched.pipeline_throughput: nprocs < 1") (fun () ->
      ignore (Dag.pipeline_throughput g ~weights:w ~nprocs:0));
  Alcotest.check_raises "pipeline rejects negative"
    (Invalid_argument "Dag_sched.pipeline_throughput: nprocs < 1") (fun () ->
      ignore (Dag.pipeline_throughput g ~weights:w ~nprocs:(-3)));
  (* nprocs = 1 is the smallest legal value on both. *)
  Alcotest.(check (float 1e-9)) "schedule at 1 proc" 2.
    (Dag.schedule g ~weights:w ~comm:0. ~nprocs:1).makespan;
  Alcotest.(check (float 1e-9)) "pipeline at 1 proc" 1.
    (Dag.pipeline_throughput g ~weights:w ~nprocs:1)

let () =
  let q = Qcheck_seed.to_alcotest in
  Alcotest.run "om_sched"
    [
      ( "task",
        [
          Alcotest.test_case "stats" `Quick test_task_stats;
          Alcotest.test_case "duplicate write" `Quick
            test_task_validate_duplicate_write;
          Alcotest.test_case "dense ids" `Quick test_task_validate_ids;
        ] );
      ( "lpt",
        [
          Alcotest.test_case "balanced" `Quick test_lpt_balanced;
          Alcotest.test_case "classic instance" `Quick test_lpt_classic;
          Alcotest.test_case "single processor" `Quick test_lpt_single_proc;
          Alcotest.test_case "override costs" `Quick test_lpt_override_costs;
          Alcotest.test_case "tasks_of partition" `Quick test_lpt_tasks_of;
          Alcotest.test_case "empty task set" `Quick test_lpt_empty;
          Alcotest.test_case "more procs than tasks" `Quick
            test_lpt_more_procs_than_tasks;
          q prop_lpt_makespan_bounds;
          q prop_lpt_loads_consistent;
          q prop_lpt_heap_matches_linear_scan;
          q prop_lpt_heap_matches_on_ties;
          q prop_lpt_makespan_monotone_in_procs;
        ] );
      ( "semidynamic",
        [
          Alcotest.test_case "adapts to measurements" `Quick
            test_semidynamic_adapts;
          Alcotest.test_case "reschedule period" `Quick test_semidynamic_period;
          Alcotest.test_case "overhead model" `Quick
            test_semidynamic_overhead_model;
          Alcotest.test_case "smoothing" `Quick test_semidynamic_smoothing;
          Alcotest.test_case "wrong measurement vector" `Quick
            test_semidynamic_wrong_measurement;
          Alcotest.test_case "EWMA converges" `Quick
            test_semidynamic_ewma_converges;
          Alcotest.test_case "exact period" `Quick
            test_semidynamic_exact_period;
          Alcotest.test_case "initial costs" `Quick
            test_semidynamic_initial_costs;
          Alcotest.test_case "cost inversion" `Quick
            test_semidynamic_cost_inversion;
        ] );
      ( "dag",
        [
          Alcotest.test_case "critical path" `Quick test_dag_critical_path;
          Alcotest.test_case "two processors" `Quick
            test_dag_schedule_two_procs;
          Alcotest.test_case "one processor" `Quick test_dag_schedule_one_proc;
          Alcotest.test_case "communication" `Quick test_dag_comm_cost_matters;
          Alcotest.test_case "cycle rejected" `Quick test_dag_cycle_rejected;
          q prop_dag_schedule_valid;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "chain" `Quick test_pipeline_chain;
          Alcotest.test_case "bottleneck stage" `Quick
            test_pipeline_bottleneck;
          Alcotest.test_case "chains pipeline but do not parallelise"
            `Quick test_pipeline_beats_dag_on_chains;
          Alcotest.test_case "cycle rejected" `Quick
            test_pipeline_cycle_rejected;
          Alcotest.test_case "nprocs boundary" `Quick test_nprocs_boundary;
        ] );
    ]
