(* Tests for the MIMD machine model: discrete-event core, machine
   parameters and the supervisor/worker round. *)

module Sim = Om_machine.Event_sim
module Machine = Om_machine.Machine
module Sup = Om_machine.Supervisor

let checkf = Alcotest.check (Alcotest.float 1e-12)

(* ---------- event sim ---------- *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.at sim 3. (fun () -> log := 3 :: !log);
  Sim.at sim 1. (fun () -> log := 1 :: !log);
  Sim.at sim 2. (fun () -> log := 2 :: !log);
  Sim.run sim;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  checkf "clock at last event" 3. (Sim.now sim)

let test_sim_ties_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Sim.at sim 1. (fun () -> log := i :: !log)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "insertion order on ties"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.at sim 1. (fun () ->
      log := "a" :: !log;
      Sim.after sim 1. (fun () -> log := "b" :: !log));
  Sim.at sim 1.5 (fun () -> log := "c" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "interleaved" [ "a"; "c"; "b" ] (List.rev !log)

let test_sim_past_rejected () =
  let sim = Sim.create () in
  Sim.at sim 5. (fun () -> ());
  ignore (Sim.step sim);
  Alcotest.check_raises "past" (Invalid_argument "Event_sim.at: scheduling in the past")
    (fun () -> Sim.at sim 1. (fun () -> ()))

let test_sim_rounding_clamped () =
  (* Summing fixed float steps can land the "next" event a few ulps
     before the current clock (0.1 +. 0.2 > 0.3); [at] clamps such
     times to now instead of raising, while genuinely past times are
     still rejected. *)
  let sim = Sim.create () in
  Sim.at sim (0.1 +. 0.2) (fun () -> ());
  ignore (Sim.step sim);
  let fired = ref false in
  Sim.at sim 0.3 (fun () -> fired := true);
  (* one ulp before [now] *)
  Sim.run sim;
  Alcotest.(check bool) "clamped event fired" true !fired;
  checkf "clock unchanged by clamped event" (0.1 +. 0.2) (Sim.now sim);
  Alcotest.check_raises "genuinely past still rejected"
    (Invalid_argument "Event_sim.at: scheduling in the past") (fun () ->
      Sim.at sim 0.2 (fun () -> ()))

let test_sim_many_events () =
  (* Heap stress: 10k events in reverse order still drain sorted. *)
  let sim = Sim.create () in
  let last = ref (-1.) in
  let ok = ref true in
  for i = 10_000 downto 1 do
    Sim.at sim (float_of_int i) (fun () ->
        if Sim.now sim < !last then ok := false;
        last := Sim.now sim)
  done;
  Sim.run sim;
  Alcotest.(check bool) "monotone clock" true !ok;
  Alcotest.(check int) "drained" 0 (Sim.pending sim)

(* ---------- machine ---------- *)

let test_machine_presets () =
  checkf "sparc latency" 4e-6 Machine.sparccenter_2000.latency;
  checkf "parsytec latency" 140e-6 Machine.parsytec_gcpp.latency;
  Alcotest.(check bool) "sparc timeshared" true
    Machine.sparccenter_2000.timeshared;
  Alcotest.(check bool) "parsytec dedicated" false
    Machine.parsytec_gcpp.timeshared

let test_message_time () =
  let m = Machine.make ~name:"m" ~latency:1e-6 ~per_byte:1e-8 ~physical_procs:4 () in
  checkf "1 byte" (1e-6 +. 1e-8) (Machine.message_time m ~bytes:1);
  checkf "1000 bytes" (1e-6 +. 1e-5) (Machine.message_time m ~bytes:1000)

let test_timesharing_slowdown () =
  let m = Machine.sparccenter_2000 in
  checkf "under capacity" 1. (Machine.slowdown m ~nworkers:7);
  checkf "at 8 workers" (8. /. 7.) (Machine.slowdown m ~nworkers:8);
  checkf "at 14 workers" 2. (Machine.slowdown m ~nworkers:14);
  let d = Machine.parsytec_gcpp in
  checkf "dedicated machine never slows" 1. (Machine.slowdown d ~nworkers:60)

let test_ideal_machine () =
  let m = Machine.ideal 4 in
  checkf "no latency" 0. (Machine.message_time m ~bytes:10000)

(* ---------- supervisor round ---------- *)

let simple_round ?(machine = Machine.ideal 8) ?(strategy = Sup.Broadcast_state)
    ~nworkers ~flops () =
  let n = Array.length flops in
  let assignment = Array.init n (fun i -> i mod max 1 nworkers) in
  Sup.round machine ~nworkers ~assignment ~task_flops:flops
    ~task_reads:(Array.make n [ 0 ])
    ~task_writes:(Array.init n (fun i -> [ i ]))
    ~state_dim:n ~strategy

let test_round_sequential () =
  let m = Machine.ideal ~flop_time:1e-6 1 in
  let r = simple_round ~machine:m ~nworkers:0 ~flops:[| 100.; 200. |] () in
  checkf "sum of flops" 300e-6 r.duration;
  Alcotest.(check int) "no bytes" 0 r.bytes_sent

let test_round_ideal_speedup () =
  (* Zero-latency machine: round time = max worker compute. *)
  let m = Machine.ideal ~flop_time:1e-6 8 in
  let r = simple_round ~machine:m ~nworkers:4 ~flops:(Array.make 4 100.) () in
  checkf "perfectly parallel" 100e-6 r.duration

let test_round_latency_adds_up () =
  let m =
    Machine.make ~name:"lat" ~latency:1e-3 ~per_byte:0. ~flop_time:1e-9
      ~physical_procs:8 ()
  in
  let r = simple_round ~machine:m ~nworkers:1 ~flops:[| 1. |] () in
  (* send + receive latencies dominate: >= 2 ms. *)
  Alcotest.(check bool) "two messages" true (r.duration >= 2e-3)

let test_round_supervisor_serialisation () =
  (* With many workers and zero compute, the round time is dominated by
     the serialised message handling at the supervisor: 2W messages. *)
  let m =
    Machine.make ~name:"ser" ~latency:1e-4 ~per_byte:0. ~flop_time:1e-12
      ~physical_procs:64 ()
  in
  let w = 8 in
  let r = simple_round ~machine:m ~nworkers:w ~flops:(Array.make w 1.) () in
  Alcotest.(check bool) "at least 2W messages serialised" true
    (r.duration >= float_of_int (2 * w) *. 1e-4 -. 1e-12)

let test_round_needed_only_cheaper () =
  let m = Machine.parsytec_gcpp in
  let n = 32 in
  let flops = Array.make n 1000. in
  let assignment = Array.init n (fun i -> i mod 4) in
  let reads = Array.init n (fun i -> [ i ]) in
  let writes = Array.init n (fun i -> [ i ]) in
  let mk strategy =
    Sup.round m ~nworkers:4 ~assignment ~task_flops:flops ~task_reads:reads
      ~task_writes:writes ~state_dim:n ~strategy
  in
  let broadcast = mk Sup.Broadcast_state in
  let needed = mk Sup.Needed_only in
  Alcotest.(check bool) "fewer bytes" true
    (needed.bytes_sent < broadcast.bytes_sent);
  Alcotest.(check bool) "not slower" true
    (needed.duration <= broadcast.duration +. 1e-12)

let test_round_worker_compute_reported () =
  let m = Machine.ideal ~flop_time:1e-6 8 in
  let r = simple_round ~machine:m ~nworkers:2 ~flops:[| 100.; 300. |] () in
  checkf "worker 0" 100e-6 r.worker_compute.(0);
  checkf "worker 1" 300e-6 r.worker_compute.(1)

let test_round_timesharing_knee () =
  (* On the timeshared SPARC, adding workers beyond the physical CPUs
     cannot improve the round time. *)
  let m = Machine.sparccenter_2000 in
  let round w =
    let n = 32 in
    let flops = Array.make n 2000. in
    let assignment = Array.init n (fun i -> i mod w) in
    (Sup.round m ~nworkers:w ~assignment ~task_flops:flops
       ~task_reads:(Array.make n [ 0 ])
       ~task_writes:(Array.init n (fun i -> [ i ]))
       ~state_dim:n ~strategy:Sup.Broadcast_state)
      .duration
  in
  Alcotest.(check bool) "7 workers beat 1" true (round 7 < round 1);
  Alcotest.(check bool) "14 workers no better than 7" true
    (round 14 >= round 7 -. 1e-12)

let test_round_invalid_assignment () =
  let m = Machine.ideal 4 in
  Alcotest.check_raises "bad worker"
    (Invalid_argument "Supervisor.round: worker id out of range") (fun () ->
      ignore
        (Sup.round m ~nworkers:2 ~assignment:[| 5 |] ~task_flops:[| 1. |]
           ~task_reads:[| [ 0 ] |] ~task_writes:[| [ 0 ] |] ~state_dim:1
           ~strategy:Sup.Broadcast_state))

let test_round_bytes_accounting () =
  let m = Machine.ideal 4 in
  let r = simple_round ~machine:m ~nworkers:2 ~flops:[| 1.; 1. |] () in
  (* Broadcast: each worker gets (state_dim + 1) * 8 bytes. *)
  Alcotest.(check int) "sent" (2 * (2 + 1) * 8) r.bytes_sent;
  Alcotest.(check int) "received" (2 * 8) r.bytes_received

let prop_message_time_monotone =
  QCheck.Test.make ~name:"message time monotone in size" ~count:200
    QCheck.(pair (int_bound 10_000) (int_bound 10_000))
    (fun (a, b) ->
      let m = Machine.parsytec_gcpp in
      let lo = min a b and hi = max a b in
      Machine.message_time m ~bytes:lo <= Machine.message_time m ~bytes:hi)

let prop_round_at_least_compute =
  QCheck.Test.make ~name:"round duration bounded by slowest worker"
    ~count:200
    QCheck.(pair (int_range 1 12) (list_of_size (Gen.int_range 1 30)
      (float_range 1. 5000.)))
    (fun (w, costs) ->
      let flops = Array.of_list costs in
      let n = Array.length flops in
      let assignment = Array.init n (fun i -> i mod w) in
      let r =
        Sup.round Machine.parsytec_gcpp ~nworkers:w ~assignment
          ~task_flops:flops
          ~task_reads:(Array.make n [ 0 ])
          ~task_writes:(Array.init n (fun i -> [ i ]))
          ~state_dim:n ~strategy:Sup.Broadcast_state
      in
      let slowest = Array.fold_left Float.max 0. r.worker_compute in
      r.duration >= slowest -. 1e-12)

(* ---------- tree scatter/gather ---------- *)

let tree ?(machine = Machine.ideal 128) ~fanout ~nworkers ~flops () =
  let n = Array.length flops in
  let assignment = Array.init n (fun i -> i mod nworkers) in
  Sup.tree_round machine ~fanout ~nworkers ~assignment ~task_flops:flops
    ~task_reads:(Array.make n [ 0 ])
    ~task_writes:(Array.init n (fun i -> [ i ]))
    ~state_dim:n

let test_tree_single_worker () =
  let m =
    Machine.make ~name:"t" ~latency:1e-4 ~per_byte:0. ~flop_time:1e-6
      ~physical_procs:8 ()
  in
  let r = tree ~machine:m ~fanout:2 ~nworkers:1 ~flops:[| 100. |] () in
  (* send + compute + receive *)
  Alcotest.(check (float 1e-12)) "round" (1e-4 +. 100e-6 +. 1e-4) r.duration

let test_tree_beats_serial_at_scale () =
  (* With 64 workers and tiny compute, the flat round pays 128 serialised
     messages at the supervisor; the tree pays ~2*fanout*log. *)
  let m =
    Machine.make ~name:"t" ~latency:1e-4 ~per_byte:0. ~flop_time:1e-12
      ~physical_procs:128 ()
  in
  let w = 64 in
  let flops = Array.make w 1. in
  let flat =
    let assignment = Array.init w (fun i -> i) in
    (Sup.round m ~nworkers:w ~assignment ~task_flops:flops
       ~task_reads:(Array.make w [ 0 ])
       ~task_writes:(Array.init w (fun i -> [ i ]))
       ~state_dim:w ~strategy:Sup.Broadcast_state)
      .duration
  in
  let treed = (tree ~machine:m ~fanout:2 ~nworkers:w ~flops ()).duration in
  Alcotest.(check bool) "tree wins" true (treed < flat /. 2.)

let test_tree_bytes_accounting () =
  let m = Machine.ideal 64 in
  let r = tree ~machine:m ~fanout:2 ~nworkers:7 ~flops:(Array.make 7 1.) () in
  (* Every worker receives the state exactly once. *)
  Alcotest.(check int) "sent" (7 * (7 + 1) * 8) r.bytes_sent;
  (* Every result reaches the supervisor exactly once (through the tree). *)
  Alcotest.(check int) "received" (7 * 8) r.bytes_received

let test_tree_duration_bounded_below_by_compute () =
  let r = tree ~fanout:3 ~nworkers:9 ~flops:(Array.make 9 1000.) () in
  let max_comp = Array.fold_left Float.max 0. r.worker_compute in
  Alcotest.(check bool) "at least compute" true (r.duration >= max_comp)

let test_tree_invalid () =
  Alcotest.check_raises "fanout 1"
    (Invalid_argument "Supervisor.tree_round: fanout < 2") (fun () ->
      ignore (tree ~fanout:1 ~nworkers:2 ~flops:[| 1.; 1. |] ()))

let () =
  Alcotest.run "om_machine"
    [
      ( "event_sim",
        [
          Alcotest.test_case "ordering" `Quick test_sim_ordering;
          Alcotest.test_case "fifo ties" `Quick test_sim_ties_fifo;
          Alcotest.test_case "nested scheduling" `Quick
            test_sim_nested_scheduling;
          Alcotest.test_case "past rejected" `Quick test_sim_past_rejected;
          Alcotest.test_case "rounding clamped" `Quick
            test_sim_rounding_clamped;
          Alcotest.test_case "heap stress" `Quick test_sim_many_events;
        ] );
      ( "machine",
        [
          Alcotest.test_case "presets" `Quick test_machine_presets;
          Alcotest.test_case "message time" `Quick test_message_time;
          Alcotest.test_case "timesharing" `Quick test_timesharing_slowdown;
          Alcotest.test_case "ideal" `Quick test_ideal_machine;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "sequential" `Quick test_round_sequential;
          Alcotest.test_case "ideal speedup" `Quick test_round_ideal_speedup;
          Alcotest.test_case "latency" `Quick test_round_latency_adds_up;
          Alcotest.test_case "serialisation" `Quick
            test_round_supervisor_serialisation;
          Alcotest.test_case "needed-only strategy" `Quick
            test_round_needed_only_cheaper;
          Alcotest.test_case "worker compute" `Quick
            test_round_worker_compute_reported;
          Alcotest.test_case "timesharing knee" `Quick
            test_round_timesharing_knee;
          Alcotest.test_case "invalid assignment" `Quick
            test_round_invalid_assignment;
          Alcotest.test_case "bytes accounting" `Quick
            test_round_bytes_accounting;
        ] );
      ( "properties",
        [
          Qcheck_seed.to_alcotest prop_message_time_monotone;
          Qcheck_seed.to_alcotest prop_round_at_least_compute;
        ] );
      ( "tree",
        [
          Alcotest.test_case "single worker" `Quick test_tree_single_worker;
          Alcotest.test_case "beats serial at scale" `Quick
            test_tree_beats_serial_at_scale;
          Alcotest.test_case "bytes accounting" `Quick
            test_tree_bytes_accounting;
          Alcotest.test_case "bounded by compute" `Quick
            test_tree_duration_bounded_below_by_compute;
          Alcotest.test_case "invalid fanout" `Quick test_tree_invalid;
        ] );
    ]
