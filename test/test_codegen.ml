(* Tests for the code generator: assignments, CSE, partitioning,
   communication analysis, textual backends and the executable bytecode
   backend. *)

module E = Om_expr.Expr
module A = Om_codegen.Assignments
module Cse = Om_codegen.Cse
module Part = Om_codegen.Partition
module Comm = Om_codegen.Comm_analysis
module Bc = Om_codegen.Bytecode_backend
module F = Om_codegen.Fortran
module C = Om_codegen.C_backend
module P = Om_codegen.Pipeline
module Stats = Om_codegen.Stats
module Fm = Om_lang.Flat_model

let x = E.var "x"
let y = E.var "y"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let tiny_model src = Om_lang.Flatten.flatten_string src

let oscillator =
  {|model Osc; class C variable x init 1.0; variable y;
    equation der(x) = y; equation der(y) = 0.0 - x; end; instance c of C;|}

(* ---------- assignments ---------- *)

let test_assignments () =
  let m = tiny_model oscillator in
  let a = A.of_flat_model m in
  Alcotest.(check int) "two" 2 (Array.length a);
  Alcotest.(check string) "target name" "c.x$dot" a.(0).target;
  Alcotest.(check int) "index" 1 a.(1).state_index;
  Alcotest.(check bool) "cost nonneg" true (A.cost a.(0) >= 0.)

(* ---------- cse ---------- *)

let test_cse_extracts_shared () =
  (* (x+y)*sin(x+y): x+y occurs twice. *)
  let shared = E.add [ x; y ] in
  let e = E.mul [ shared; E.sin shared ] in
  let block = Cse.eliminate [ ("out", e) ] in
  Alcotest.(check int) "one temp" 1 (Cse.temp_count block);
  Alcotest.(check bool) "ordered" true (Cse.verify_no_forward_refs block)

let test_cse_no_sharing_no_temp () =
  let block = Cse.eliminate [ ("out", E.add [ x; E.sin y ]) ] in
  Alcotest.(check int) "no temps" 0 (Cse.temp_count block)

let test_cse_across_targets () =
  let shared = E.mul [ x; E.cos y ] in
  let block =
    Cse.eliminate [ ("a", E.add [ shared; E.one ]); ("b", E.sub shared y) ]
  in
  Alcotest.(check int) "shared across roots" 1 (Cse.temp_count block)

let test_cse_inline_roundtrip () =
  let shared = E.add [ x; y ] in
  let targets =
    [ ("a", E.mul [ shared; shared; E.sin shared ]); ("b", E.sqrt shared) ]
  in
  let block = Cse.eliminate targets in
  let restored = Cse.inline block in
  List.iter2
    (fun (n1, e1) (n2, e2) ->
      Alcotest.(check string) "target" n1 n2;
      Alcotest.check (Alcotest.testable E.pp E.equal) "expr" e1 e2)
    targets restored

let test_cse_min_size_threshold () =
  (* x+y has size 3; with min_size 4 it is not extracted. *)
  let shared = E.add [ x; y ] in
  let e = E.mul [ shared; E.sin shared ] in
  let block = Cse.eliminate ~min_size:4 [ ("out", e) ] in
  Alcotest.(check int) "threshold respected" 0 (Cse.temp_count block)

let test_cse_single_use_inlined () =
  (* A subtree occurring twice, but only inside one bigger shared tree:
     the small temp collapses into the big one. *)
  let inner = E.add [ x; y ] in
  let big = E.mul [ E.sin inner; E.cos inner ] in
  let e = E.add [ big; E.sqrt big ] in
  let block = Cse.eliminate [ ("out", e) ] in
  (* big is shared (2 uses); inner's uses are inside big's single
     definition, so inner must have been inlined. *)
  Alcotest.(check int) "only the big temp" 2 (Cse.temp_count block)

(* qcheck: CSE preserves semantics on random expressions *)
let expr_gen =
  QCheck.Gen.(
    sized_size (int_bound 8) @@ fix (fun self n ->
        if n <= 0 then oneof [ map E.const (float_range (-2.) 2.); oneofl [ x; y ] ]
        else
          oneof
            [
              map2 (fun a b -> E.add [ a; b ]) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> E.mul [ a; b ]) (self (n / 2)) (self (n / 2));
              map E.sin (self (n - 1));
              map (fun a -> E.powi a 2) (self (n - 1));
            ]))

let arbitrary_exprs =
  QCheck.make
    ~print:(fun es ->
      String.concat "; " (List.map (Fmt.to_to_string E.pp) es))
    QCheck.Gen.(list_size (int_range 1 5) expr_gen)

let prop_cse_preserves_semantics =
  QCheck.Test.make ~name:"CSE inline restores originals" ~count:200
    arbitrary_exprs (fun es ->
      let targets = List.mapi (fun i e -> (Printf.sprintf "t%d" i, e)) es in
      let block = Cse.eliminate targets in
      Cse.verify_no_forward_refs block
      && List.for_all2
           (fun (_, e1) (_, e2) -> E.equal e1 e2)
           targets (Cse.inline block))

let prop_cse_eval_equivalence =
  QCheck.Test.make ~name:"CSE block evaluates like originals" ~count:200
    arbitrary_exprs (fun es ->
      let targets = List.mapi (fun i e -> (Printf.sprintf "t%d" i, e)) es in
      let block = Cse.eliminate targets in
      (* Evaluate the block sequentially with an environment. *)
      let env = Om_expr.Eval.env_of_list [ ("x", 0.7); ("y", -1.3) ] in
      List.iter
        (fun (b : Cse.binding) ->
          Hashtbl.replace env b.name (Om_expr.Eval.eval env b.expr))
        block.temps;
      List.for_all2
        (fun (_, orig) (_, rewritten) ->
          let v1 = Om_expr.Eval.eval env orig in
          let v2 = Om_expr.Eval.eval env rewritten in
          Float.abs (v1 -. v2) <= 1e-9 *. (1. +. Float.abs v1))
        targets block.roots)

(* ---------- partition ---------- *)

let heavy_expr n =
  (* A sum of n sin terms: cost ~ n * 21. *)
  E.add (List.init n (fun i -> E.sin (E.add [ x; E.int i ])))

let mk_assigns specs =
  Array.of_list
    (List.mapi
       (fun i (name, e) ->
         { A.state = name; target = name ^ "$dot"; state_index = i; rhs = e })
       specs)

let test_partition_grouping () =
  (* Many trivial assignments group into few tasks. *)
  let assigns =
    mk_assigns (List.init 10 (fun i -> (Printf.sprintf "s%d" i, E.neg x)))
  in
  let plan = Part.partition ~merge_threshold:50. ~split_threshold:1e9 assigns in
  Part.validate plan;
  Alcotest.(check bool) "grouped" true (Array.length plan.tasks < 10);
  Alcotest.(check int) "no partials" 0 plan.n_partials

let test_partition_splitting () =
  let assigns = mk_assigns [ ("big", heavy_expr 40) ] in
  let plan = Part.partition ~merge_threshold:10. ~split_threshold:100. assigns in
  Part.validate plan;
  Alcotest.(check bool) "split into partials" true (plan.n_partials >= 2);
  Alcotest.(check int) "one epilogue entry" 1 (List.length plan.epilogue);
  Alcotest.(check bool) "epilogue sums the partials" true
    (plan.epilogue_flops > 0.)

let test_partition_validate_catches () =
  let plan =
    {
      Part.dim = 1;
      n_partials = 0;
      tasks = [||];
      epilogue = [];
      epilogue_flops = 0.;
    }
  in
  match Part.validate plan with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "derivative 0 never produced"

let prop_partition_covers_all_derivs =
  QCheck.Test.make ~name:"partition covers every derivative once" ~count:100
    QCheck.(pair (int_range 1 30) (int_range 1 8))
    (fun (n, k) ->
      let assigns =
        mk_assigns
          (List.init n (fun i -> (Printf.sprintf "s%d" i, heavy_expr (1 + (i mod k)))))
      in
      let plan =
        Part.partition ~merge_threshold:30. ~split_threshold:60. assigns
      in
      match Part.validate plan with () -> true | exception _ -> false)

(* ---------- comm analysis ---------- *)

let test_comm_analysis () =
  let m =
    tiny_model
      {|model M; class C variable x; variable y;
        equation der(x) = x; equation der(y) = x + y; end; instance c of C;|}
  in
  let assigns = A.of_flat_model m in
  let plan = Part.partition ~merge_threshold:0.5 ~split_threshold:1e9 assigns in
  let info = Comm.analyse plan ~state_names:(Fm.state_names m) in
  (* Task writing y' reads both states; task writing x' reads only x. *)
  let by_write w =
    let rec find i =
      if i >= Array.length info.writes then Alcotest.fail "missing task"
      else if List.mem w info.writes.(i) then i
      else find (i + 1)
    in
    find 0
  in
  Alcotest.(check (list int)) "x' reads x" [ 0 ] info.reads.(by_write 0);
  Alcotest.(check (list int)) "y' reads x,y" [ 0; 1 ] info.reads.(by_write 1)

let test_read_fraction () =
  let info = { Comm.reads = [| [ 0 ]; [ 0; 1 ] |]; writes = [| [ 0 ]; [ 1 ] |] } in
  Alcotest.(check (float 1e-9)) "fraction" 0.75 (Comm.read_fraction info ~dim:2)

(* ---------- bytecode backend ---------- *)

let compile_model ?(scope = Bc.Cse_per_task) src =
  let m = tiny_model src in
  let assigns = A.of_flat_model m in
  let plan = Part.partition assigns in
  (m, Bc.compile ~scope plan ~state_names:(Fm.state_names m))

let test_bytecode_matches_direct () =
  let m, bc = compile_model oscillator in
  let sys = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false m.equations in
  let y0 = [| 0.3; -0.8 |] in
  let d1 = Om_ode.Odesys.rhs sys 0.5 y0 in
  let d2 = Array.make 2 0. in
  Bc.rhs_fn bc 0.5 y0 d2;
  Alcotest.(check (float 1e-12)) "dx" d1.(0) d2.(0);
  Alcotest.(check (float 1e-12)) "dy" d1.(1) d2.(1)

let test_bytecode_scopes_agree () =
  let src = Om_models.Servo.source () in
  let m = tiny_model src in
  let assigns = A.of_flat_model m in
  let plan = Part.partition assigns in
  let names = Fm.state_names m in
  let y0 = Fm.initial_values m in
  let out scope =
    let bc = Bc.compile ~scope plan ~state_names:names in
    let d = Array.make (Array.length y0) 0. in
    Bc.rhs_fn bc 0.25 y0 d;
    d
  in
  let a = out Bc.Cse_none and b = out Bc.Cse_per_task and c = out Bc.Cse_global in
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-10)) (Printf.sprintf "per-task %d" i) v b.(i);
      Alcotest.(check (float 1e-10)) (Printf.sprintf "global %d" i) v c.(i))
    a

let test_bytecode_backends_agree () =
  (* The register-VM engine and the historical closure engine must
     produce the same derivatives on a nontrivial model. *)
  let src = Om_models.Bearing2d.source () in
  let m = tiny_model src in
  let assigns = A.of_flat_model m in
  let plan = Part.partition assigns in
  let names = Fm.state_names m in
  let y0 = Fm.initial_values m in
  let out backend =
    let bc = Bc.compile ~backend plan ~state_names:names in
    let d = Array.make (Array.length y0) 0. in
    Bc.rhs_fn bc 0.01 y0 d;
    (bc, d)
  in
  let vm, dv = out Bc.Exec_vm in
  let cl, dc = out Bc.Exec_closures in
  Array.iteri
    (fun i v ->
      let rel =
        Float.abs (v -. dc.(i))
        /. (1. +. Float.max (Float.abs v) (Float.abs dc.(i)))
      in
      Alcotest.(check bool)
        (Printf.sprintf "deriv %d agrees (%g vs %g)" i v dc.(i))
        true (rel <= 1e-12))
    dv;
  (* Static VM statistics only exist for the VM engine. *)
  Alcotest.(check bool) "vm instrs counted" true (vm.Bc.vm_instrs > 0);
  Alcotest.(check int) "closures have no vm instrs" 0 cl.Bc.vm_instrs;
  Array.iter
    (fun t ->
      Alcotest.(check bool) "vm task has program" true (t.Bc.program <> None))
    vm.Bc.tasks

let test_bytecode_measured_eval () =
  let _, bc = compile_model oscillator in
  bc.set_state 0. [| 1.; 2. |];
  let total =
    Array.fold_left (fun acc t -> acc +. t.Bc.measured_eval ()) 0. bc.tasks
  in
  Alcotest.(check bool) "measured cost positive" true (total >= 0.);
  (* Static cost bounds the measured cost for branch-free models. *)
  let static = Array.fold_left (fun acc t -> acc +. t.Bc.static_cost) 0. bc.tasks in
  Alcotest.(check (float 1e-9)) "equal for branch-free" static total

let test_bytecode_conditional_costs_vary () =
  let src =
    {|model M; class C variable x init 1.0;
      equation der(x) = if x > 0.0 then sin(sin(sin(x))) else 0.0 - x; end;
      instance c of C;|}
  in
  let _, bc = compile_model src in
  bc.set_state 0. [| 1. |];
  let expensive = bc.tasks.(0).measured_eval () in
  bc.set_state 0. [| -1. |];
  let cheap = bc.tasks.(0).measured_eval () in
  Alcotest.(check bool) "taken branch matters" true (expensive > cheap)

(* ---------- fortran backend ---------- *)

let gen_fortran mode src =
  let m = tiny_model src in
  let assigns = A.of_flat_model m in
  let plan = Part.partition assigns in
  F.generate ~mode plan ~state_names:(Fm.state_names m)
    ~initial:(Fm.initial_values m) ~model_name:m.name

let test_fortran_parallel_structure () =
  let f = gen_fortran F.Parallel oscillator in
  Alcotest.(check bool) "subroutine RHS" true
    (contains f.code "subroutine RHS(workerid, yin, yout)");
  Alcotest.(check bool) "select case" true
    (contains f.code "select case (workerid)");
  Alcotest.(check bool) "init_state" true (contains f.code "subroutine init_state");
  Alcotest.(check bool) "reader" true
    (contains f.code "subroutine read_start_values");
  Alcotest.(check int) "line count consistent" f.total_lines
    (Om_codegen.Stats.count_lines f.code)

let test_fortran_serial_structure () =
  let f = gen_fortran F.Serial oscillator in
  Alcotest.(check bool) "serial signature" true
    (contains f.code "subroutine RHS(t, yin, yout)");
  Alcotest.(check bool) "no select" false (contains f.code "select case")

let test_fortran_mangling () =
  Alcotest.(check string) "brackets and dots" "W_3__phi" (F.mangle "W[3].phi");
  Alcotest.(check string) "dollar" "cse_0_1" (F.mangle "cse$0$1")

let test_fortran_expressions () =
  let v n = n in
  Alcotest.(check string) "pow" "x**(2)" (F.expr_to_fortran v (E.powi x 2));
  Alcotest.(check string) "literal" "1.5d0" (F.expr_to_fortran v (E.const 1.5));
  Alcotest.(check string) "merge for if" "merge(x, y, x < y)"
    (F.expr_to_fortran v (E.if_ (E.cond x E.Lt y) x y));
  Alcotest.(check bool) "sign helper" true
    (contains (F.expr_to_fortran v (E.sign x)) "omsign")

let test_fortran_decl_share_grows_with_model () =
  let f = gen_fortran F.Parallel (Om_models.Servo.source ()) in
  Alcotest.(check bool) "declarations dominate statements eventually" true
    (f.declaration_lines > 0 && f.declaration_lines < f.total_lines)

let test_fortran_serial_golden () =
  (* Lock the backend's exact output format on the smallest model. *)
  let f = gen_fortran F.Serial oscillator in
  let expected_body =
    [ "  subroutine RHS(t, yin, yout)";
      "    real(dp), intent(in) :: t";
      "    real(dp), intent(in) :: yin(2)";
      "    real(dp), intent(inout) :: yout(2)";
      "    real(dp) :: c__x";
      "    real(dp) :: c__y";
      "    real(dp) :: c__x_dot";
      "    real(dp) :: c__y_dot";
      "    c__x = yin(1)";
      "    c__y = yin(2)";
      "    c__x_dot = c__y";
      "    c__y_dot = -c__x";
      "    yout(1) = c__x_dot";
      "    yout(2) = c__y_dot";
      "  end subroutine RHS" ]
  in
  List.iter
    (fun line ->
      if not (contains f.code (line ^ "\n")) then
        Alcotest.failf "missing line: %s" line)
    expected_body

let test_cse_custom_prefix () =
  let shared = E.add [ x; y ] in
  let block =
    Cse.eliminate ~prefix:"tmp@" [ ("a", E.mul [ shared; E.sin shared ]) ]
  in
  Alcotest.(check int) "one temp" 1 (Cse.temp_count block);
  List.iter
    (fun (b : Cse.binding) ->
      Alcotest.(check bool) "prefix used" true
        (String.length b.name > 4 && String.sub b.name 0 4 = "tmp@"))
    block.temps

let test_fortran_line_width () =
  (* The backend wraps statements at 72 columns like 1995 F90 listings;
     only unbreakable tokens may run longer, and none should approach a
     punch-card-hostile 110. *)
  let f = gen_fortran F.Parallel (Om_models.Bearing2d.source ()) in
  let too_long =
    String.split_on_char '\n' f.code
    |> List.filter (fun l -> String.length l > 110)
  in
  Alcotest.(check (list string)) "no overlong lines" [] too_long;
  let wrapped =
    String.split_on_char '\n' f.code
    |> List.filter (fun l ->
           String.length l >= 2 && String.sub l (String.length l - 2) 2 = " &")
  in
  Alcotest.(check bool) "continuations present" true
    (List.length wrapped > 50)

let prop_partition_chunks_bounded =
  QCheck.Test.make ~name:"split chunks stay near the threshold" ~count:60
    QCheck.(int_range 200 2000)
    (fun threshold ->
      let threshold = float_of_int threshold in
      let m = Om_models.Bearing2d.model ~n_rollers:4 () in
      let assigns = A.of_flat_model m in
      let plan =
        Part.partition ~merge_threshold:20. ~split_threshold:threshold
          assigns
      in
      Part.validate plan;
      (* Every multi-root task containing partials must not wildly exceed
         the chunk target (threshold/2 + one term). *)
      Array.for_all
        (fun (t : Part.task) ->
          List.length t.roots > 0)
        plan.tasks)

(* ---------- c backend ---------- *)

let test_c_structure () =
  let m = tiny_model oscillator in
  let assigns = A.of_flat_model m in
  let plan = Part.partition assigns in
  let c =
    C.generate ~mode:C.Parallel plan ~state_names:(Fm.state_names m)
      ~initial:(Fm.initial_values m) ~model_name:m.name
  in
  Alcotest.(check bool) "switch" true (contains c.code "switch (workerid)");
  Alcotest.(check bool) "math.h" true (contains c.code "#include <math.h>");
  Alcotest.(check bool) "sign helper" true (contains c.code "om_sign")

let test_c_expressions () =
  let v n = n in
  Alcotest.(check string) "small power inlined" "x*x" (C.expr_to_c v (E.powi x 2));
  Alcotest.(check string) "ternary" "(x < y) ? x : y"
    (C.expr_to_c v (E.if_ (E.cond x E.Lt y) x y))

(* ---------- mathematica backend ---------- *)

module Mma = Om_codegen.Mathematica_backend

let test_mathematica_structure () =
  let m = tiny_model oscillator in
  let src = Mma.generate m in
  Alcotest.(check bool) "NDSolve driver" true (contains src.code "NDSolve[");
  Alcotest.(check bool) "equations" true (contains src.code "'[t] ==");
  Alcotest.(check bool) "initial conditions" true (contains src.code "[0] ==");
  Alcotest.(check bool) "line count" true
    (src.total_lines = Om_codegen.Stats.count_lines src.code)

let test_mathematica_functions () =
  let m =
    tiny_model
      {|model M; class C variable x init 1.0;
        equation der(x) = atan2(x, 2.0) + max(x, 0.0) - asin(x / 2.0); end;
        instance c of C;|}
  in
  let src = Mma.generate m in
  Alcotest.(check bool) "arctan2 helper" true (contains src.code "OMArcTan2[");
  Alcotest.(check bool) "Max" true (contains src.code "Max[");
  Alcotest.(check bool) "ArcSin" true (contains src.code "ArcSin[")

let test_mathematica_mangling_collisions () =
  let m =
    tiny_model
      {|model M;
        class A variable b; equation der(b) = b; end;
        class Holder part a : A; end;
        instance a of Holder;
        instance ab of A;|}
  in
  (* States a.a.b and ab.b both strip to "aab"/"abb"?  Construct the real
     collision: a.a.b -> aab; check all mangled names are distinct. *)
  let mg = Mma.mangle m in
  let mangled = List.map (fun (s, _) -> mg s) m.states in
  let sorted = List.sort_uniq compare mangled in
  Alcotest.(check int) "distinct symbols" (List.length mangled)
    (List.length sorted)

let test_mathematica_conditionals () =
  let m =
    tiny_model
      {|model M; class C variable x init 1.0;
        equation der(x) = if x > 0.0 then 0.0 - x else x; end;
        instance c of C;|}
  in
  let src = Mma.generate m in
  Alcotest.(check bool) "If form" true (contains src.code "If[")

(* ---------- pipeline + stats ---------- *)

let test_pipeline_bearing () =
  let m = Om_models.Bearing2d.model () in
  let r = P.compile m in
  Alcotest.(check int) "2 SCCs" 2 r.analysis.comps.count;
  Alcotest.(check int) "one nontrivial" 1 (List.length r.analysis.nontrivial);
  Alcotest.(check bool) "tasks exist" true (Array.length r.tasks > 10)

let test_pipeline_rhs_equivalence () =
  let m = Om_models.Powerplant.model () in
  let r = P.compile m in
  let sys = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false m.equations in
  let y0 = Fm.initial_values m in
  let d1 = Om_ode.Odesys.rhs sys 0.1 y0 in
  let d2 = Array.make (Array.length y0) 0. in
  P.rhs_fn r 0.1 y0 d2;
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-10)) (Printf.sprintf "deriv %d" i) v d2.(i))
    d1

let test_stats_directions () =
  (* The paper's qualitative relations: intermediate form larger than
     source; parallel CSE count >= serial CSE count; serial code smaller
     than parallel code. *)
  let src = Om_models.Bearing2d.source () in
  let r = P.compile (Om_lang.Flatten.flatten_string src) in
  let s = Stats.collect ~source:src r in
  Alcotest.(check bool) "intermediate >> source" true
    (s.intermediate_lines > 5 * Option.get s.source_lines);
  Alcotest.(check bool) "cse parallel >= serial" true
    (s.cse_parallel >= s.cse_serial);
  Alcotest.(check bool) "serial smaller" true
    (s.fortran_serial_lines < s.fortran_parallel_lines)

let test_system_level_speedup () =
  let m = Om_models.Powerplant.model () in
  let a = P.analyse m in
  let sp = P.system_level_speedup a ~comm:0. ~nprocs:8 in
  Alcotest.(check bool) "plant partitions" true (sp > 1.5);
  let m2 = Om_models.Bearing2d.model () in
  let a2 = P.analyse m2 in
  let sp2 = P.system_level_speedup a2 ~comm:0. ~nprocs:8 in
  (* One giant SCC: no useful system-level parallelism. *)
  Alcotest.(check bool) "bearing does not" true (sp2 < 1.1)

(* ---------- generated jacobian ---------- *)

module Jg = Om_codegen.Jacobian_gen

let test_jacobian_sparsity () =
  let m = tiny_model oscillator in
  let jg = Jg.generate m in
  Alcotest.(check int) "two nonzeros" 2 (Jg.nonzero_count jg);
  Alcotest.(check (float 1e-9)) "density" 0.5 (Jg.density jg);
  let coords = List.map (fun (r, c, _) -> (r, c)) jg.entries in
  Alcotest.(check bool) "dx'/dy" true (List.mem (0, 1) coords);
  Alcotest.(check bool) "dy'/dx" true (List.mem (1, 0) coords)

let test_jacobian_values () =
  let m = tiny_model oscillator in
  let jg = Jg.generate m in
  let f = Jg.compile jg ~state_names:(Fm.state_names m) in
  let mat = Om_ode.Linalg.make 2 2 99. in
  f 0.3 [| 0.5; -0.25 |] mat;
  Alcotest.(check (float 1e-12)) "j00 zeroed" 0. mat.(0).(0);
  Alcotest.(check (float 1e-12)) "j01" 1. mat.(0).(1);
  Alcotest.(check (float 1e-12)) "j10" (-1.) mat.(1).(0)

let test_jacobian_matches_numeric () =
  (* On the smooth servo model the generated Jacobian must agree with
     finite differences everywhere. *)
  let m = Om_models.Servo.model () in
  let sys_gen = Jg.to_odesys m in
  let sys_num =
    Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false m.equations
  in
  let y = Array.map (fun (_, v) -> v +. 0.1) (Array.of_list m.states) in
  let ja = Om_ode.Jacobian.analytic sys_gen 0.2 y in
  let jn = Om_ode.Jacobian.numeric sys_num 0.2 y in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          let d = Float.abs (v -. jn.(i).(j)) /. (1. +. Float.abs v) in
          if d > 1e-4 then
            Alcotest.failf "entry (%d,%d): %g vs %g" i j v jn.(i).(j))
        row)
    ja

let test_jacobian_speeds_up_bdf () =
  let m = Om_models.Servo.model () in
  let sys_gen = Jg.to_odesys m in
  let sys_num =
    Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false m.equations
  in
  let y0 = Fm.initial_values m in
  let run sys =
    Om_ode.Odesys.reset_counters sys;
    ignore (Om_ode.Bdf.integrate ~order:2 sys ~t0:0. ~y0 ~tend:0.05 ~h:1e-3);
    sys.Om_ode.Odesys.counters.rhs_calls
  in
  let gen_calls = run sys_gen and num_calls = run sys_num in
  Alcotest.(check bool) "drastically fewer RHS calls" true
    (gen_calls * 5 < num_calls)

let test_jacobian_trajectories_agree () =
  let m = tiny_model oscillator in
  let y0 = Fm.initial_values m in
  let run sys =
    Om_ode.Odesys.final_state
      (Om_ode.Bdf.integrate ~order:2 sys ~t0:0. ~y0 ~tend:1. ~h:1e-3)
  in
  let a = run (Jg.to_odesys m) in
  let b =
    run (Om_ode.Odesys.of_equations ~with_symbolic_jacobian:true m.equations)
  in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-8)) (string_of_int i) v b.(i))
    a

let test_jacobian_fortran () =
  let m = tiny_model oscillator in
  let jg = Jg.generate m in
  let f = Jg.fortran jg ~state_names:(Fm.state_names m) ~model_name:m.name in
  Alcotest.(check bool) "subroutine JAC" true
    (contains f.code "subroutine JAC(t, yin, pd)");
  Alcotest.(check bool) "zero fill" true (contains f.code "pd = 0.0d0");
  Alcotest.(check bool) "entry" true (contains f.code "pd(1,2)")

let test_jacobian_cse_shares_work () =
  (* Equations with a common heavy factor: its partials share temps. *)
  let m =
    tiny_model
      {|model M; class C variable x; variable y;
        alias heavy = sin(x * y) * exp(x + y);
        equation der(x) = heavy * x; equation der(y) = heavy * y; end;
        instance c of C;|}
  in
  let jg = Jg.generate m in
  Alcotest.(check bool) "temps extracted" true
    (Om_codegen.Cse.temp_count jg.block > 0);
  Alcotest.(check int) "dense 2x2" 4 (Jg.nonzero_count jg)

(* ---------- diagnostics ---------- *)

module Diag = Om_codegen.Diagnostics

let test_diagnostics_bearing () =
  let m = Om_models.Bearing2d.model () in
  let r = Diag.analyse m in
  (* The driven rotation influences nothing and depends on nothing. *)
  Alcotest.(check (list string)) "isolated" [ "Inner.theta" ] r.isolated;
  Alcotest.(check bool) "one giant SCC" true (r.largest_scc_share > 0.95)

let test_diagnostics_servo () =
  let m = Om_models.Servo.model () in
  let r = Diag.analyse m in
  (* Sensors observe; nothing reads them back. *)
  Alcotest.(check bool) "sensors are observers" true
    (List.mem "S[1].sensor.Value" r.sinks
    && List.mem "S[2].sensor.Value" r.sinks);
  Alcotest.(check bool) "small SCC share" true (r.largest_scc_share < 0.5)

let test_restrict_closure () =
  let m = Om_models.Servo.model () in
  let sub = Diag.restrict m ~keep:[ "S[1].motor.Speed" ] in
  (* The controller/motor loop is needed; the load, angle integrator and
     sensor are not. *)
  let names = List.map fst sub.states in
  Alcotest.(check (list string)) "loop only"
    [ "S[1].ctrl.IPart"; "S[1].motor.Current"; "S[1].motor.Speed" ]
    (List.sort compare names);
  Om_lang.Typecheck.check sub

let test_restrict_preserves_trajectories () =
  let m = Om_models.Servo.model () in
  let sub = Diag.restrict m ~keep:[ "S[1].motor.Speed" ] in
  let run fm name =
    let sys = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false fm.Om_lang.Flat_model.equations in
    let tr =
      Om_ode.Rk.integrate_fixed Om_ode.Rk.rk4 sys ~t0:0.
        ~y0:(Fm.initial_values fm) ~tend:1. ~h:1e-3
    in
    let col = Om_ode.Odesys.column tr name sys in
    col.(Array.length col - 1)
  in
  Alcotest.(check (float 1e-12)) "same speed trajectory"
    (run m "S[1].motor.Speed") (run sub "S[1].motor.Speed")

let test_restrict_unknown () =
  let m = Om_models.Servo.model () in
  Alcotest.check_raises "unknown state"
    (Invalid_argument "Diagnostics.restrict: unknown state nope") (fun () ->
      ignore (Diag.restrict m ~keep:[ "nope" ]))

let prop_restrict_always_valid =
  QCheck.Test.make ~name:"restrict yields a well-formed sub-model" ~count:40
    QCheck.(int_range 0 38)
    (fun k ->
      let m = Om_models.Powerplant.model () in
      let states = List.map fst m.states in
      let keep = [ List.nth states (k mod List.length states) ] in
      let sub = Diag.restrict m ~keep in
      Om_lang.Typecheck.check sub;
      List.length sub.states <= List.length m.states
      && List.for_all (fun s -> List.mem s (List.map fst sub.states)) keep)

let () =
  let q = Qcheck_seed.to_alcotest in
  Alcotest.run "om_codegen"
    [
      ("assignments", [ Alcotest.test_case "basic" `Quick test_assignments ]);
      ( "cse",
        [
          Alcotest.test_case "extracts shared" `Quick test_cse_extracts_shared;
          Alcotest.test_case "no sharing" `Quick test_cse_no_sharing_no_temp;
          Alcotest.test_case "across targets" `Quick test_cse_across_targets;
          Alcotest.test_case "inline roundtrip" `Quick test_cse_inline_roundtrip;
          Alcotest.test_case "min size" `Quick test_cse_min_size_threshold;
          Alcotest.test_case "single-use inlined" `Quick
            test_cse_single_use_inlined;
          Alcotest.test_case "custom prefix" `Quick test_cse_custom_prefix;
          q prop_cse_preserves_semantics;
          q prop_cse_eval_equivalence;
        ] );
      ( "partition",
        [
          Alcotest.test_case "grouping" `Quick test_partition_grouping;
          Alcotest.test_case "splitting" `Quick test_partition_splitting;
          Alcotest.test_case "validation" `Quick test_partition_validate_catches;
          q prop_partition_covers_all_derivs;
          q prop_partition_chunks_bounded;
        ] );
      ( "comm",
        [
          Alcotest.test_case "reads and writes" `Quick test_comm_analysis;
          Alcotest.test_case "read fraction" `Quick test_read_fraction;
        ] );
      ( "bytecode",
        [
          Alcotest.test_case "matches direct eval" `Quick
            test_bytecode_matches_direct;
          Alcotest.test_case "scopes agree" `Quick test_bytecode_scopes_agree;
          Alcotest.test_case "backends agree" `Quick
            test_bytecode_backends_agree;
          Alcotest.test_case "measured eval" `Quick test_bytecode_measured_eval;
          Alcotest.test_case "conditional costs" `Quick
            test_bytecode_conditional_costs_vary;
        ] );
      ( "fortran",
        [
          Alcotest.test_case "parallel structure" `Quick
            test_fortran_parallel_structure;
          Alcotest.test_case "serial structure" `Quick
            test_fortran_serial_structure;
          Alcotest.test_case "mangling" `Quick test_fortran_mangling;
          Alcotest.test_case "expressions" `Quick test_fortran_expressions;
          Alcotest.test_case "declarations" `Quick
            test_fortran_decl_share_grows_with_model;
          Alcotest.test_case "serial golden" `Quick test_fortran_serial_golden;
          Alcotest.test_case "line width" `Quick test_fortran_line_width;
        ] );
      ( "c",
        [
          Alcotest.test_case "structure" `Quick test_c_structure;
          Alcotest.test_case "expressions" `Quick test_c_expressions;
        ] );
      ( "jacobian",
        [
          Alcotest.test_case "sparsity" `Quick test_jacobian_sparsity;
          Alcotest.test_case "values" `Quick test_jacobian_values;
          Alcotest.test_case "matches numeric" `Quick
            test_jacobian_matches_numeric;
          Alcotest.test_case "speeds up BDF" `Quick
            test_jacobian_speeds_up_bdf;
          Alcotest.test_case "trajectories agree" `Quick
            test_jacobian_trajectories_agree;
          Alcotest.test_case "fortran output" `Quick test_jacobian_fortran;
          Alcotest.test_case "CSE shares work" `Quick
            test_jacobian_cse_shares_work;
        ] );
      ( "mathematica",
        [
          Alcotest.test_case "structure" `Quick test_mathematica_structure;
          Alcotest.test_case "function names" `Quick
            test_mathematica_functions;
          Alcotest.test_case "mangling collisions" `Quick
            test_mathematica_mangling_collisions;
          Alcotest.test_case "conditionals" `Quick
            test_mathematica_conditionals;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "bearing" `Quick test_diagnostics_bearing;
          Alcotest.test_case "servo" `Quick test_diagnostics_servo;
          Alcotest.test_case "restrict closure" `Quick test_restrict_closure;
          Alcotest.test_case "restrict preserves trajectories" `Quick
            test_restrict_preserves_trajectories;
          Alcotest.test_case "restrict unknown state" `Quick
            test_restrict_unknown;
          q prop_restrict_always_valid;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "bearing analysis" `Quick test_pipeline_bearing;
          Alcotest.test_case "rhs equivalence" `Quick
            test_pipeline_rhs_equivalence;
          Alcotest.test_case "stats directions" `Quick test_stats_directions;
          Alcotest.test_case "system-level speedup" `Quick
            test_system_level_speedup;
        ] );
    ]
