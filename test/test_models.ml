(* Tests for the application models: structure of the dependency graphs
   (paper Figures 3 and 6), integrability, and physical sanity. *)

module Fm = Om_lang.Flat_model
module Scc = Om_graph.Scc
module P = Om_codegen.Pipeline

let scc_sizes m =
  let g = Fm.dependency_graph m in
  let c = Scc.tarjan g in
  List.sort compare (Array.to_list (Array.map List.length c.members))

(* ---------- 2D bearing ---------- *)

let test_bearing_dimensions () =
  let m = Om_models.Bearing2d.model () in
  (* 10 rollers x 5 states + inner ring x 5. *)
  Alcotest.(check int) "55 states" 55 (Fm.dim m);
  Alcotest.(check int) "55 equations" 55 (List.length m.equations)

let test_bearing_scc_structure () =
  (* Paper Figure 6: all equations strongly connected except one. *)
  let m = Om_models.Bearing2d.model () in
  Alcotest.(check (list int)) "one giant SCC plus the driven angle"
    [ 1; 54 ] (scc_sizes m)

let test_bearing_rollers_parameterised () =
  let m = Om_models.Bearing2d.model ~n_rollers:4 () in
  Alcotest.(check int) "4 rollers" (4 * 5 + 5) (Fm.dim m);
  Alcotest.(check (list int)) "same shape" [ 1; 24 ] (scc_sizes m)

let test_bearing_integrates () =
  let m = Om_models.Bearing2d.model () in
  let sys = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false m.equations in
  let r =
    Om_ode.Lsoda.integrate sys ~t0:0. ~y0:(Fm.initial_values m) ~tend:0.002
  in
  let yf = Om_ode.Odesys.final_state r.trajectory in
  Alcotest.(check bool) "finite" true (Array.for_all Float.is_finite yf);
  (* The loaded ring must deflect downward but stay inside the clearance
     scale (a few mm at this soft contact stiffness). *)
  let iy = Om_ode.Odesys.column r.trajectory "Inner.y" sys in
  let final_iy = iy.(Array.length iy - 1) in
  Alcotest.(check bool) "ring deflects under load" true (final_iy < 0.);
  Alcotest.(check bool) "bounded deflection" true (final_iy > -0.02)

let test_bearing_contacts_conditional () =
  (* The generated RHS must contain conditionals (contact loss), which is
     what drives the semi-dynamic scheduling experiment. *)
  let m = Om_models.Bearing2d.model () in
  let has_if =
    List.exists
      (fun (_, e) ->
        Om_expr.Expr.fold
          (fun acc n -> acc || match n with Om_expr.Expr.If _ -> true | _ -> false)
          false e)
      m.equations
  in
  Alcotest.(check bool) "conditionals present" true has_if

let test_bearing_rhs_heavy () =
  let m = Om_models.Bearing2d.model () in
  Alcotest.(check bool) "thousands of flops" true
    (Fm.total_rhs_flops m > 5000.)

(* ---------- power plant ---------- *)

let test_powerplant_scc_structure () =
  (* Six 4-state gate servo loops; per gate a penstock-flow and a
     turbine-speed singleton; dam, regulator and spillway singletons:
     the positive example for equation-system-level parallelism, with
     the many-singletons shape of the paper's Figure 3. *)
  let m = Om_models.Powerplant.model () in
  let sizes = scc_sizes m in
  Alcotest.(check int) "39 states" 39 (Fm.dim m);
  let gates = List.filter (fun s -> s = 4) sizes in
  Alcotest.(check int) "six gate SCCs" 6 (List.length gates);
  let singletons = List.filter (fun s -> s = 1) sizes in
  Alcotest.(check int) "fifteen singleton SCCs" 15 (List.length singletons)

let test_powerplant_partitions_well () =
  let m = Om_models.Powerplant.model () in
  let a = P.analyse m in
  Alcotest.(check bool) "many SCCs" true (a.comps.count >= 20);
  let sp = P.system_level_speedup a ~comm:0. ~nprocs:8 in
  Alcotest.(check bool) "speedup > 4 with 8 procs" true (sp > 4.)

let test_powerplant_integrates () =
  let m = Om_models.Powerplant.model () in
  let sys = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false m.equations in
  let r = Om_ode.Lsoda.integrate sys ~t0:0. ~y0:(Fm.initial_values m) ~tend:60. in
  let yf = Om_ode.Odesys.final_state r.trajectory in
  Alcotest.(check bool) "finite" true (Array.for_all Float.is_finite yf);
  (* Dam level must stay near its operating point over a minute. *)
  let level = (Om_ode.Odesys.column r.trajectory "Dam.SurfaceLevel" sys) in
  let final = level.(Array.length level - 1) in
  Alcotest.(check bool) "plausible level" true (final > 9. && final < 11.)

let test_powerplant_gate_count_scales () =
  let m = Om_models.Powerplant.model ~n_gates:3 () in
  Alcotest.(check int) "3 gates" ((3 * 6) + 3) (Fm.dim m)

(* ---------- servo ---------- *)

let test_servo_structure () =
  let m = Om_models.Servo.model () in
  Alcotest.(check int) "14 states (two axes)" 14 (Fm.dim m);
  let sizes = scc_sizes m in
  (* Per axis: controller+motor loop of 3; load shaft pair; two
     singletons.  Two independent axes. *)
  Alcotest.(check (list int)) "SCC sizes" [ 1; 1; 1; 1; 2; 2; 3; 3 ] sizes

let test_servo_tracks_reference () =
  let m = Om_models.Servo.model () in
  let sys = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false m.equations in
  let tr = Om_ode.Rk.rkf45 sys ~t0:0. ~y0:(Fm.initial_values m) ~tend:10. in
  let speed = Om_ode.Odesys.column tr "S[1].motor.Speed" sys in
  let final = speed.(Array.length speed - 1) in
  (* PI control around speed_ref = 20 with a +-2 sine disturbance. *)
  Alcotest.(check bool) "near reference" true (final > 15. && final < 25.)

(* ---------- scaled bearing ---------- *)

let test_scaled_bearing_flops_scale () =
  let small = Om_models.Bearing_scaled.model ~n_rollers:6 ~profile_order:2 () in
  let big = Om_models.Bearing_scaled.model ~n_rollers:6 ~profile_order:12 () in
  Alcotest.(check bool) "profile order scales cost" true
    (Fm.total_rhs_flops big > 2. *. Fm.total_rhs_flops small)

let test_scaled_bearing_structure_matches_2d () =
  let m = Om_models.Bearing_scaled.model ~n_rollers:8 ~profile_order:3 () in
  Alcotest.(check (list int)) "same SCC shape" [ 1; 8 * 5 + 4 ] (scc_sizes m)

let test_scaled_bearing_default_is_heavy () =
  let m = Om_models.Bearing_scaled.model () in
  (* The paper's 3D models have RHS of "several tens of thousands of
     floating point operations". *)
  Alcotest.(check bool) "tens of thousands of flops" true
    (Fm.total_rhs_flops m > 30_000.)

let test_scaled_shares_generator () =
  let src = Om_models.Bearing_scaled.source ~n_rollers:4 ~profile_order:2 () in
  Alcotest.(check bool) "distinct model name" true
    (String.length src > 20 && String.sub src 0 20 = "model Bearing3DScale")

let test_plant_turbine_spins () =
  let m = Om_models.Powerplant.model () in
  let sys = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false m.equations in
  let tr =
    Om_ode.Rk.rkf45 sys ~t0:0. ~y0:(Fm.initial_values m) ~tend:120.
  in
  let speed = Om_ode.Odesys.column tr "G[1].TurbineSpeed" sys in
  Array.iter
    (fun v -> Alcotest.(check bool) "positive speed" true (v > 0.))
    speed

(* ---------- sources parse through the real frontend ---------- *)

let test_sources_reparse () =
  List.iter
    (fun src ->
      let model = Om_lang.Parser.parse_model src in
      Alcotest.(check bool) "has classes" true (List.length model.classes >= 1))
    [
      Om_models.Bearing2d.source ();
      Om_models.Powerplant.source ();
      Om_models.Servo.source ();
      Om_models.Bearing_scaled.source ~n_rollers:4 ~profile_order:2 ();
    ]

let () =
  Alcotest.run "om_models"
    [
      ( "bearing2d",
        [
          Alcotest.test_case "dimensions" `Quick test_bearing_dimensions;
          Alcotest.test_case "SCC structure (fig 6)" `Quick
            test_bearing_scc_structure;
          Alcotest.test_case "parameterised rollers" `Quick
            test_bearing_rollers_parameterised;
          Alcotest.test_case "integrates" `Slow test_bearing_integrates;
          Alcotest.test_case "conditional contacts" `Quick
            test_bearing_contacts_conditional;
          Alcotest.test_case "heavy RHS" `Quick test_bearing_rhs_heavy;
        ] );
      ( "powerplant",
        [
          Alcotest.test_case "SCC structure (fig 3)" `Quick
            test_powerplant_scc_structure;
          Alcotest.test_case "partitions well" `Quick
            test_powerplant_partitions_well;
          Alcotest.test_case "integrates" `Slow test_powerplant_integrates;
          Alcotest.test_case "gate count scales" `Quick
            test_powerplant_gate_count_scales;
        ] );
      ( "servo",
        [
          Alcotest.test_case "structure" `Quick test_servo_structure;
          Alcotest.test_case "tracks reference" `Slow
            test_servo_tracks_reference;
        ] );
      ( "bearing_scaled",
        [
          Alcotest.test_case "flops scale" `Quick test_scaled_bearing_flops_scale;
          Alcotest.test_case "structure" `Quick
            test_scaled_bearing_structure_matches_2d;
          Alcotest.test_case "default heavy" `Quick
            test_scaled_bearing_default_is_heavy;
        ] );
      ( "sources",
        [
          Alcotest.test_case "reparse" `Quick test_sources_reparse;
          Alcotest.test_case "scaled generator" `Quick
            test_scaled_shares_generator;
          Alcotest.test_case "turbine stays spinning" `Slow
            test_plant_turbine_spins;
        ] );
    ]
