(* Tests for the modelling-language frontend: lexer, parser, flattening
   semantics (inheritance, composition, instance arrays, bindings) and the
   typed intermediate form. *)

module Lexer = Om_lang.Lexer
module Token = Om_lang.Token
module Parser = Om_lang.Parser
module Flatten = Om_lang.Flatten
module Fm = Om_lang.Flat_model
module Tc = Om_lang.Typecheck
module E = Om_expr.Expr
module Ast = Om_lang.Ast

let flat = Flatten.flatten_string

let states m = List.map fst m.Fm.states
let rhs m s = Fm.rhs_of m s

let check_expr msg expected actual =
  Alcotest.check (Alcotest.testable E.pp E.equal) msg expected actual

(* ---------- lexer ---------- *)

let toks src = List.map fst (Lexer.tokenize src)

let test_lexer_basic () =
  Alcotest.(check bool) "keywords and idents" true
    (toks "model M; class x end"
    = [ Token.KW_MODEL; IDENT "M"; SEMI; KW_CLASS; IDENT "x"; KW_END; EOF ])

let test_lexer_numbers () =
  Alcotest.(check bool) "floats" true
    (toks "1 2.5 1e-3 10.25e2"
    = [ Token.NUMBER 1.; NUMBER 2.5; NUMBER 1e-3; NUMBER 1025.; EOF ])

let test_lexer_operators () =
  Alcotest.(check bool) "ops" true
    (toks "a <= b >= c < d > e ^ f .. g"
    = [
        Token.IDENT "a"; LE; IDENT "b"; GE; IDENT "c"; LT; IDENT "d"; GT;
        IDENT "e"; CARET; IDENT "f"; DOTDOT; IDENT "g"; EOF;
      ])

let test_lexer_comments () =
  Alcotest.(check bool) "line and block comments" true
    (toks "a // comment\n b (* multi \n line (* nested *) *) c"
    = [ Token.IDENT "a"; IDENT "b"; IDENT "c"; EOF ])

let test_lexer_unterminated_comment () =
  (match Lexer.tokenize "(* oops" with
  | exception Lexer.Error (msg, _) ->
      Alcotest.(check string) "msg" "unterminated comment" msg
  | _ -> Alcotest.fail "expected error")

let test_lexer_bad_char () =
  match Lexer.tokenize "a ? b" with
  | exception Lexer.Error (_, pos) ->
      Alcotest.(check int) "column" 3 pos.col
  | _ -> Alcotest.fail "expected error"

let test_lexer_positions () =
  let l = Lexer.tokenize "a\n  b" in
  match l with
  | [ (_, p1); (_, p2); _ ] ->
      Alcotest.(check int) "line 1" 1 p1.line;
      Alcotest.(check int) "line 2" 2 p2.line;
      Alcotest.(check int) "col 3" 3 p2.col
  | _ -> Alcotest.fail "token count"

(* ---------- parser ---------- *)

let test_parser_precedence () =
  (* a + b * c ^ 2 parses as a + (b * (c ^ 2)) *)
  let e = Parser.parse_expr "1 + 2 * 3 ^ 2" in
  let v =
    match e with
    | Ast.Snum _ -> Alcotest.fail "not folded at parse time"
    | _ -> e
  in
  ignore v;
  (* Evaluate through elaboration: flatten a model using it. *)
  let m =
    flat
      {|model M; class C variable x init 1 + 2 * 3 ^ 2; equation der(x) = 0.0 - x; end; instance c of C;|}
  in
  Alcotest.(check (float 1e-12)) "1+2*9" 19. (List.assoc "c.x" m.states)

let test_parser_unary_minus () =
  let m =
    flat
      {|model M; class C variable x init -2 ^ 2; equation der(x) = x; end; instance c of C;|}
  in
  (* -2^2 parses as -(2^2) = -4: exponentiation binds tighter than
     unary minus, as in mathematics. *)
  Alcotest.(check (float 1e-12)) "unary minus" (-4.) (List.assoc "c.x" m.states)

let test_parser_if () =
  let e = Parser.parse_expr "if a < b then 1 else 2" in
  match e with
  | Ast.Sif ({ sc_rel = E.Lt; _ }, Snum 1., Snum 2.) -> ()
  | _ -> Alcotest.fail "if structure"

let test_parser_error_position () =
  match Parser.parse_model "model M; class C parameter = 3; end;" with
  | exception Parser.Error (_, pos) ->
      Alcotest.(check int) "line" 1 pos.line
  | _ -> Alcotest.fail "expected error"

let test_parser_qualified_names () =
  let e = Parser.parse_expr "A[3].sub.x" in
  match e with
  | Ast.Sname { segments = [ s1; s2; s3 ] } ->
      Alcotest.(check string) "base" "A" s1.base;
      Alcotest.(check bool) "index" true (s1.index <> None);
      Alcotest.(check string) "mid" "sub" s2.base;
      Alcotest.(check string) "leaf" "x" s3.base
  | _ -> Alcotest.fail "segments"

let test_parser_call_args () =
  match Parser.parse_expr "atan2(y, x)" with
  | Ast.Scall ("atan2", [ _; _ ]) -> ()
  | _ -> Alcotest.fail "call with two args"

(* ---------- flatten: basic semantics ---------- *)

let test_flatten_simple () =
  let m =
    flat
      {|model M; class C variable x init 3.5; equation der(x) = 0.0 - x; end; instance c of C;|}
  in
  Alcotest.(check (list string)) "states" [ "c.x" ] (states m);
  check_expr "rhs" (E.neg (E.var "c.x")) (rhs m "c.x")

let test_flatten_params_substituted () =
  let m =
    flat
      {|model M; class C parameter k = 2.0; parameter k2 = k * 3.0;
        variable x; equation der(x) = k2 * x; end; instance c of C;|}
  in
  check_expr "k2 = 6" E.(mul [ const 6.; var "c.x" ]) (rhs m "c.x")

let test_flatten_alias_chain () =
  let m =
    flat
      {|model M; class C variable x; alias a = x + 1.0; alias b = a * a;
        equation der(x) = b; end; instance c of C;|}
  in
  check_expr "b expanded" (E.powi (E.add [ E.var "c.x"; E.one ]) 2) (rhs m "c.x")

let test_flatten_alias_cycle () =
  match
    flat
      {|model M; class C variable x; alias a = b; alias b = a;
        equation der(x) = a; end; instance c of C;|}
  with
  | exception Flatten.Error msg ->
      Alcotest.(check bool) "mentions loop" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected algebraic loop error"

let test_flatten_time () =
  let m =
    flat
      {|model M; class C variable x; equation der(x) = sin(time); end; instance c of C;|}
  in
  check_expr "time -> t" (E.sin (E.var "t")) (rhs m "c.x")

(* ---------- flatten: inheritance ---------- *)

let test_inheritance_members_merged () =
  let m =
    flat
      {|model M;
        class Base parameter k = 1.0; variable x; equation der(x) = k * x; end;
        class Child extends Base variable y; equation der(y) = x; end;
        instance c of Child;|}
  in
  Alcotest.(check (list string)) "both states" [ "c.x"; "c.y" ]
    (List.sort compare (states m))

let test_inheritance_with_rebinding () =
  let m =
    flat
      {|model M;
        class Base parameter k = 1.0; variable x; equation der(x) = k * x; end;
        class Child extends Base with k = 5.0 end;
        instance c of Child;|}
  in
  check_expr "k rebound" E.(mul [ const 5.; var "c.x" ]) (rhs m "c.x")

let test_inheritance_override_equation () =
  let m =
    flat
      {|model M;
        class Base variable x; equation der(x) = x; end;
        class Child extends Base equation der(x) = 2.0 * x; end;
        instance c of Child;|}
  in
  check_expr "child equation wins" E.(mul [ two; var "c.x" ]) (rhs m "c.x")

let test_inheritance_unknown_parent () =
  match
    flat {|model M; class C extends Nope variable x; equation der(x) = x; end; instance c of C;|}
  with
  | exception Flatten.Error msg ->
      Alcotest.(check string) "msg" "unknown class Nope (parent of class C)"
        msg
  | _ -> Alcotest.fail "expected error"

let test_inheritance_cycle () =
  match
    flat {|model M; class A extends B end; class B extends A end; instance a of A;|}
  with
  | exception Flatten.Error msg ->
      Alcotest.(check bool) "cycle" true
        (String.length msg >= 5)
  | _ -> Alcotest.fail "expected error"

let test_inheritance_bad_rebinding () =
  match
    flat
      {|model M; class Base variable x; equation der(x) = x; end;
        class C extends Base with nothere = 1.0 end; instance c of C;|}
  with
  | exception Flatten.Error _ -> ()
  | _ -> Alcotest.fail "expected error"

(* ---------- flatten: composition ---------- *)

let test_part_prefixing () =
  let m =
    flat
      {|model M;
        class Inner variable v; equation der(v) = u - v; end;
        class Outer variable w; part p : Inner with u = w;
        equation der(w) = 0.0 - w; end;
        instance o of Outer;|}
  in
  Alcotest.(check (list string)) "nested names" [ "o.p.v"; "o.w" ]
    (List.sort compare (states m));
  check_expr "part binding sees enclosing local"
    (E.sub (E.var "o.w") (E.var "o.p.v"))
    (rhs m "o.p.v")

let test_nested_parts () =
  let m =
    flat
      {|model M;
        class A variable a; equation der(a) = a; end;
        class B part inner : A; end;
        class C part mid : B; variable c; equation der(c) = mid.inner.a; end;
        instance top of C;|}
  in
  Alcotest.(check bool) "deep name" true
    (List.mem "top.mid.inner.a" (states m));
  check_expr "part path resolution" (E.var "top.mid.inner.a") (rhs m "top.c")

(* ---------- flatten: instances ---------- *)

let test_instance_array_and_index () =
  let m =
    flat
      {|model M; class C parameter phase = 0.0; variable x init phase;
        equation der(x) = x; end;
        instance a[1..3] of C with phase = 10.0 * index;|}
  in
  Alcotest.(check (list string)) "three instances"
    [ "a[1].x"; "a[2].x"; "a[3].x" ]
    (states m);
  Alcotest.(check (float 1e-12)) "index in binding" 20.
    (List.assoc "a[2].x" m.states)

let test_cross_instance_reference () =
  let m =
    flat
      {|model M;
        class P variable v; equation der(v) = 0.0 - v; end;
        class Q variable w; equation der(w) = src - w; end;
        instance p of P;
        instance q of Q with src = p.v;|}
  in
  check_expr "reads other instance" (E.sub (E.var "p.v") (E.var "q.w"))
    (rhs m "q.w")

let test_cross_instance_alias_reference () =
  let m =
    flat
      {|model M;
        class P variable v; alias double = 2.0 * v; equation der(v) = 0.0 - v; end;
        class Q variable w; equation der(w) = src; end;
        instance p of P;
        instance q of Q with src = p.double;|}
  in
  check_expr "alias expanded across instances"
    E.(mul [ two; var "p.v" ])
    (rhs m "q.w")

let test_unresolved_name () =
  match
    flat {|model M; class C variable x; equation der(x) = ghost; end; instance c of C;|}
  with
  | exception Flatten.Error msg ->
      Alcotest.(check bool) "mentions ghost" true
        (String.length msg > 0 && String.sub msg 0 10 = "unresolved")
  | _ -> Alcotest.fail "expected error"

let test_missing_equation () =
  match
    flat {|model M; class C variable x; variable y; equation der(x) = y; end; instance c of C;|}
  with
  | exception Flatten.Error msg ->
      Alcotest.(check string) "msg" "no equation for state variable c.y" msg
  | _ -> Alcotest.fail "expected error"

let test_duplicate_instance () =
  match
    flat
      {|model M; class C variable x; equation der(x) = x; end;
        instance c of C; instance c of C;|}
  with
  | exception Flatten.Error _ -> ()
  | _ -> Alcotest.fail "expected duplicate error"

let test_nonconstant_init () =
  match
    flat
      {|model M; class C variable x init other; variable other;
        equation der(x) = x; equation der(other) = other; end; instance c of C;|}
  with
  | exception Flatten.Error _ -> ()
  | _ -> Alcotest.fail "expected error"

let test_empty_range () =
  match
    flat {|model M; class C variable x; equation der(x) = x; end; instance a[3..1] of C;|}
  with
  | exception Flatten.Error msg ->
      Alcotest.(check string) "msg" "instance a: empty range" msg
  | _ -> Alcotest.fail "expected error"

let test_no_instances () =
  match flat {|model M; class C variable x; equation der(x) = x; end;|} with
  | exception Flatten.Error msg ->
      Alcotest.(check string) "msg" "model M declares no instances" msg
  | _ -> Alcotest.fail "expected error"

(* ---------- dependency graph ---------- *)

let test_dependency_graph () =
  let m =
    flat
      {|model M; class C variable x; variable y;
        equation der(x) = y; equation der(y) = y; end; instance c of C;|}
  in
  let g = Fm.dependency_graph m in
  Alcotest.(check int) "2 nodes" 2 (Om_graph.Digraph.node_count g);
  (* y -> x edge (x' depends on y) and y -> y self-loop. *)
  Alcotest.(check bool) "y->x" true (Om_graph.Digraph.mem_edge g 1 0);
  Alcotest.(check bool) "y->y" true (Om_graph.Digraph.mem_edge g 1 1);
  Alcotest.(check bool) "no x->y" false (Om_graph.Digraph.mem_edge g 0 1)

(* ---------- typecheck / intermediate form ---------- *)

let test_intermediate_form () =
  let m =
    flat
      {|model M; class C variable x; equation der(x) = sin(x); end; instance c of C;|}
  in
  let lines = Tc.intermediate_form m in
  let text = String.concat "\n" lines in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has Derivative" true (contains text "Derivative[1]");
  Alcotest.(check bool) "has om$Type" true (contains text "om$Type");
  Alcotest.(check bool) "has annotation for x" true
    (contains text "om$Type[c.x, om$Real]");
  Alcotest.(check int) "count consistent" (List.length lines)
    (Tc.intermediate_line_count m)

let test_typecheck_passes_on_flatten_output () =
  Tc.check (flat {|model M; class C variable x; equation der(x) = x * time; end; instance c of C;|})

let test_typecheck_rejects_broken () =
  let broken =
    { Fm.name = "broken"; states = [ ("x", 0.) ]; equations = [ ("x", E.var "ghost") ] }
  in
  match Tc.check broken with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected rejection"

(* ---------- unparser ---------- *)

let normalise src =
  (* Unparsing the parse is a normal form for source text. *)
  Om_lang.Unparse.model (Om_lang.Parser.parse_model src)

let test_unparse_fixpoint () =
  List.iter
    (fun src ->
      let once = normalise src in
      Alcotest.(check string) "unparse is a fixpoint" once (normalise once))
    [
      Om_models.Bearing2d.source ();
      Om_models.Powerplant.source ();
      Om_models.Servo.source ();
    ]

let test_unparse_preserves_semantics () =
  (* The unparsed text flattens to the same model. *)
  List.iter
    (fun src ->
      let m1 = flat src in
      let m2 = flat (normalise src) in
      Alcotest.(check (list string)) "same states" (states m1) (states m2);
      List.iter2
        (fun (s1, e1) (s2, e2) ->
          Alcotest.(check string) "same state" s1 s2;
          Alcotest.check (Alcotest.testable E.pp E.equal) s1 e1 e2)
        m1.equations m2.equations)
    [ Om_models.Servo.source (); Om_models.Powerplant.source () ]

let test_unparse_expr_precedence () =
  (* Round-trip through text preserves the tree for tricky precedence. *)
  List.iter
    (fun src ->
      let e = Om_lang.Parser.parse_expr src in
      let text = Om_lang.Unparse.sexpr e in
      let e2 = Om_lang.Parser.parse_expr text in
      Alcotest.(check string) src (Om_lang.Unparse.sexpr e2) text)
    [
      "a + b * c";
      "(a + b) * c";
      "-a ^ 2";
      "a - (b - c)";
      "a / b / c";
      "if a < b then c else d + e";
      "atan2(y, x) ^ 2";
      "W[3].sub.x + 1.0";
    ]

let test_unparse_flat_model () =
  let m1 = flat (Om_models.Servo.source ()) in
  let text = Om_lang.Unparse.flat_model m1 in
  let m2 = flat text in
  Alcotest.(check int) "same dimension" (Fm.dim m1) (Fm.dim m2);
  (* Evaluate both RHS at the same state: must agree. *)
  let sys1 = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false m1.equations in
  let sys2 = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false m2.equations in
  let y = Array.map (fun (_, v) -> v +. 0.25) (Array.of_list m1.states) in
  let d1 = Om_ode.Odesys.rhs sys1 0.5 y in
  let d2 = Om_ode.Odesys.rhs sys2 0.5 y in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-12)) (string_of_int i) v d2.(i))
    d1

(* ---------- browser ---------- *)

module Browser = Om_lang.Browser

let browse_src =
  {|model M;
    class Base variable x; equation der(x) = x; end;
    class Mid extends Base end;
    class Leaf extends Mid end;
    class Holder part inner : Leaf; part other : Base; end;
    instance h of Holder;
    instance ls[1..3] of Leaf;|}

let test_browser_analyse () =
  let nodes = Browser.analyse (Om_lang.Parser.parse_model browse_src) in
  let find n = List.find (fun (x : Browser.node) -> x.cname = n) nodes in
  Alcotest.(check (option string)) "leaf parent" (Some "Mid") (find "Leaf").parent;
  Alcotest.(check (list string)) "base children" [ "Mid" ] (find "Base").children;
  Alcotest.(check int) "holder parts" 2 (List.length (find "Holder").parts);
  Alcotest.(check (list string)) "leaf instances" [ "ls[1..3]" ]
    (find "Leaf").instances

let test_browser_trees () =
  let ast = Om_lang.Parser.parse_model browse_src in
  let inh = Browser.inheritance_tree ast in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "indented chain" true (contains inh "    Leaf");
  Alcotest.(check bool) "instances annotated" true
    (contains inh "instances: ls[1..3]");
  let comp = Browser.composition_tree ast in
  Alcotest.(check bool) "nested part" true (contains comp "  inner : Leaf");
  let dot = Browser.to_dot ast in
  Alcotest.(check bool) "inheritance edge" true
    (contains dot "\"Leaf\" -> \"Mid\"");
  Alcotest.(check bool) "composition edge dashed" true
    (contains dot "style=dashed")

let test_browser_unknown_parent () =
  let bad = {|model M; class A extends Nope end; instance a of A;|} in
  match Browser.analyse (Om_lang.Parser.parse_model bad) with
  | exception Flatten.Error _ -> ()
  | _ -> Alcotest.fail "expected error"

(* ---------- robustness / fuzzing ---------- *)

(* The frontend must fail only through its own typed errors, never with
   Match_failure / Assert_failure / stack overflow. *)
let well_behaved f =
  match f () with
  | _ -> true
  | exception Lexer.Error _ -> true
  | exception Parser.Error _ -> true
  | exception Flatten.Error _ -> true
  | exception _ -> false

let fuzz_chars = "modelclasinstqjk xyz0123456789.;=+-*/^()[],<>_ \n"

let random_text_gen =
  QCheck.Gen.(
    let* n = int_range 0 120 in
    let* chars =
      list_size (return n)
        (map (fun i -> fuzz_chars.[i]) (int_bound (String.length fuzz_chars - 1)))
    in
    return (String.init (List.length chars) (List.nth chars)))

let prop_parser_total =
  QCheck.Test.make ~name:"frontend fails only with typed errors" ~count:500
    (QCheck.make ~print:(fun s -> s) random_text_gen)
    (fun text -> well_behaved (fun () -> Flatten.flatten_string text))

(* Mutations of a valid model must also behave. *)
let prop_mutated_model_total =
  QCheck.Test.make ~name:"mutated models fail only with typed errors"
    ~count:300
    (QCheck.make
       ~print:(fun (i, c) -> Printf.sprintf "pos %d <- %c" i c)
       QCheck.Gen.(pair (int_bound 2000) (map (fun i -> fuzz_chars.[i])
         (int_bound (String.length fuzz_chars - 1)))))
    (fun (pos, c) ->
      let base = Om_models.Servo.source () in
      let pos = pos mod String.length base in
      let mutated = String.mapi (fun i x -> if i = pos then c else x) base in
      well_behaved (fun () -> Flatten.flatten_string mutated))

(* Directed error-path cases complementing the random properties above:
   each malformed input must fail with the frontend's own typed error —
   carrying a position — not a crash. *)

let typed_error what src =
  match Flatten.flatten_string src with
  | _ -> Alcotest.failf "%s: expected a frontend error" what
  | exception Lexer.Error (msg, pos) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: lexer error %S has a position" what msg)
        true
        (pos.line >= 1 && pos.col >= 1)
  | exception Parser.Error (msg, pos) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: parser error %S has a position" what msg)
        true
        (pos.line >= 1 && pos.col >= 1)

let test_unterminated_comment () =
  typed_error "plain" "model M; (* never closed";
  typed_error "nested" "model M; (* outer (* inner *) still open";
  typed_error "nested at eof" "model M; (* a (* b (* c";
  (* A properly closed nested comment is fine. *)
  ignore
    (Flatten.flatten_string
       {|model M; (* outer (* inner *) closed *)
         class C variable x init 1.0; equation der(x) = 0.0 - x; end;
         instance c of C;|})

let test_bad_tokens () =
  typed_error "stray hash" "model M; # class";
  typed_error "stray quote" "model M; class \"C\"";
  typed_error "stray backslash" "model M; \\";
  typed_error "lone rparen" "model M; class C variable x init );";
  typed_error "bad exponent is two tokens" "model M; class C parameter k = 1e;"

let test_deep_nesting () =
  (* ~1000 balanced parentheses must parse (no stack overflow, value
     preserved through constant folding)... *)
  let depth = 1000 in
  let deep =
    String.concat ""
      (List.init depth (fun _ -> "(")
      @ [ "1.0" ]
      @ List.init depth (fun _ -> ")"))
  in
  let src =
    Printf.sprintf
      "model M; class C variable x init %s; equation der(x) = 0.0 - x; \
       end; instance c of C;"
      deep
  in
  let f = Flatten.flatten_string src in
  Alcotest.(check (float 0.)) "init survives nesting" 1.
    (Om_lang.Flat_model.initial_values f).(0);
  (* ...while unbalanced nesting is a typed parse error. *)
  let unbalanced =
    Printf.sprintf
      "model M; class C variable x init %s1.0; equation der(x) = 0.0; end;"
      (String.concat "" (List.init 40 (fun _ -> "(")))
  in
  typed_error "unbalanced" unbalanced

let test_error_positions () =
  (* Positions must point at the offending token, not the file start. *)
  (match Flatten.flatten_string "model M;\nclass C\n  variable x init ?;\nend;" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Lexer.Error (_, pos) ->
      Alcotest.(check int) "line of bad char" 3 pos.line);
  match Flatten.flatten_string "model M;\nclass C\n  variable init 1.0;\nend;" with
  | _ -> Alcotest.fail "expected parser error"
  | exception Parser.Error (_, pos) ->
      Alcotest.(check int) "line of bad syntax" 3 pos.line

(* ---------- overrides ---------- *)

module Override = Om_lang.Override

let decay_src =
  {|model M; class C parameter k = 1.0; variable x init 1.0;
    equation der(x) = 0.0 - k * x; end; instance c of C;|}

let test_override_parameter () =
  let m =
    Override.flatten_with ~source:decay_src ~overrides:[ ("C", "k", 3.) ]
  in
  check_expr "k = 3" E.(mul [ const (-3.); var "c.x" ]) (rhs m "c.x")

let test_override_unknown () =
  let ast = Om_lang.Parser.parse_model decay_src in
  Alcotest.check_raises "unknown parameter"
    (Override.Unknown_target "parameter nope of class C") (fun () ->
      ignore (Override.set_parameter ast ~cls:"C" ~param:"nope" 1.));
  Alcotest.check_raises "unknown class"
    (Override.Unknown_target "parameter k of class D") (fun () ->
      ignore (Override.set_parameter ast ~cls:"D" ~param:"k" 1.))

let test_override_instance_binding () =
  let src =
    {|model M; class C variable x; equation der(x) = u - x; end;
      instance c of C with u = 1.0;|}
  in
  let ast = Om_lang.Parser.parse_model src in
  let ast =
    Override.set_instance_binding ast ~instance:"c" ~name:"u" (Ast.Snum 5.)
  in
  let m = Om_lang.Flatten.flatten ast in
  check_expr "binding replaced"
    E.(add [ const 5.; neg (var "c.x") ])
    (rhs m "c.x");
  Alcotest.check_raises "unknown instance"
    (Override.Unknown_target "instance zz") (fun () ->
      ignore
        (Override.set_instance_binding ast ~instance:"zz" ~name:"u"
           (Ast.Snum 0.)))

let test_override_dependent_parameters () =
  (* Overriding k must propagate through parameters derived from it. *)
  let src =
    {|model M; class C parameter k = 2.0; parameter k2 = k * k;
      variable x; equation der(x) = k2 * x; end; instance c of C;|}
  in
  let m = Override.flatten_with ~source:src ~overrides:[ ("C", "k", 5.) ] in
  check_expr "k2 re-elaborated" E.(mul [ const 25.; var "c.x" ]) (rhs m "c.x")

(* ---------- whole-model smoke ---------- *)

let test_flatten_solves () =
  (* der(x) = -x from source, solved end to end. *)
  let m =
    flat {|model M; class C variable x init 1.0; equation der(x) = 0.0 - x; end; instance c of C;|}
  in
  let sys = Om_ode.Odesys.of_equations m.equations in
  let tr =
    Om_ode.Rk.rkf45 sys ~t0:0. ~y0:(Fm.initial_values m) ~tend:1.
  in
  Alcotest.(check (float 1e-4)) "exp(-1)" (Float.exp (-1.))
    (Om_ode.Odesys.final_state tr).(0)

let () =
  Alcotest.run "om_lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "numbers" `Quick test_lexer_numbers;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "unterminated comment" `Quick
            test_lexer_unterminated_comment;
          Alcotest.test_case "bad character" `Quick test_lexer_bad_char;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "unary minus" `Quick test_parser_unary_minus;
          Alcotest.test_case "if expression" `Quick test_parser_if;
          Alcotest.test_case "error position" `Quick test_parser_error_position;
          Alcotest.test_case "qualified names" `Quick
            test_parser_qualified_names;
          Alcotest.test_case "call arguments" `Quick test_parser_call_args;
        ] );
      ( "flatten",
        [
          Alcotest.test_case "simple" `Quick test_flatten_simple;
          Alcotest.test_case "parameters" `Quick test_flatten_params_substituted;
          Alcotest.test_case "alias chain" `Quick test_flatten_alias_chain;
          Alcotest.test_case "alias cycle" `Quick test_flatten_alias_cycle;
          Alcotest.test_case "time" `Quick test_flatten_time;
        ] );
      ( "inheritance",
        [
          Alcotest.test_case "members merged" `Quick
            test_inheritance_members_merged;
          Alcotest.test_case "with rebinding" `Quick
            test_inheritance_with_rebinding;
          Alcotest.test_case "equation override" `Quick
            test_inheritance_override_equation;
          Alcotest.test_case "unknown parent" `Quick
            test_inheritance_unknown_parent;
          Alcotest.test_case "cycle" `Quick test_inheritance_cycle;
          Alcotest.test_case "bad rebinding" `Quick
            test_inheritance_bad_rebinding;
        ] );
      ( "composition",
        [
          Alcotest.test_case "part prefixing" `Quick test_part_prefixing;
          Alcotest.test_case "nested parts" `Quick test_nested_parts;
        ] );
      ( "instances",
        [
          Alcotest.test_case "arrays and index" `Quick
            test_instance_array_and_index;
          Alcotest.test_case "cross-instance state" `Quick
            test_cross_instance_reference;
          Alcotest.test_case "cross-instance alias" `Quick
            test_cross_instance_alias_reference;
          Alcotest.test_case "unresolved name" `Quick test_unresolved_name;
          Alcotest.test_case "missing equation" `Quick test_missing_equation;
          Alcotest.test_case "duplicate instance" `Quick
            test_duplicate_instance;
          Alcotest.test_case "non-constant init" `Quick test_nonconstant_init;
          Alcotest.test_case "empty range" `Quick test_empty_range;
          Alcotest.test_case "no instances" `Quick test_no_instances;
        ] );
      ( "analysis",
        [ Alcotest.test_case "dependency graph" `Quick test_dependency_graph ] );
      ( "typecheck",
        [
          Alcotest.test_case "intermediate form" `Quick test_intermediate_form;
          Alcotest.test_case "accepts flatten output" `Quick
            test_typecheck_passes_on_flatten_output;
          Alcotest.test_case "rejects broken model" `Quick
            test_typecheck_rejects_broken;
        ] );
      ( "unparse",
        [
          Alcotest.test_case "fixpoint" `Quick test_unparse_fixpoint;
          Alcotest.test_case "preserves semantics" `Quick
            test_unparse_preserves_semantics;
          Alcotest.test_case "expression precedence" `Quick
            test_unparse_expr_precedence;
          Alcotest.test_case "flat model" `Quick test_unparse_flat_model;
        ] );
      ( "browser",
        [
          Alcotest.test_case "analyse" `Quick test_browser_analyse;
          Alcotest.test_case "trees and dot" `Quick test_browser_trees;
          Alcotest.test_case "unknown parent" `Quick
            test_browser_unknown_parent;
        ] );
      ( "robustness",
        [
          Qcheck_seed.to_alcotest prop_parser_total;
          Qcheck_seed.to_alcotest prop_mutated_model_total;
          Alcotest.test_case "unterminated comments" `Quick
            test_unterminated_comment;
          Alcotest.test_case "bad tokens" `Quick test_bad_tokens;
          Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
          Alcotest.test_case "error positions" `Quick test_error_positions;
        ] );
      ( "override",
        [
          Alcotest.test_case "parameter" `Quick test_override_parameter;
          Alcotest.test_case "unknown target" `Quick test_override_unknown;
          Alcotest.test_case "instance binding" `Quick
            test_override_instance_binding;
          Alcotest.test_case "dependent parameters" `Quick
            test_override_dependent_parameters;
        ] );
      ( "integration",
        [ Alcotest.test_case "source to solution" `Quick test_flatten_solves ] );
    ]
