(* Tests for the differential fuzzing subsystem itself: the generator's
   well-typedness-by-construction guarantee, determinism of the
   seed → model mapping, the shrinker's contract, the counterexample
   dumping of the runner, and a small smoke batch through the full
   oracle (every evaluator and scheduling strategy, bitwise). *)

module Gen = Om_fuzz.Gen
module Oracle = Om_fuzz.Oracle
module Shrink = Om_fuzz.Shrink
module Runner = Om_fuzz.Runner
module A = Om_lang.Ast

let rng seed = Random.State.make [| seed |]

(* ---- generator ---- *)

let test_gen_deterministic () =
  for seed = 0 to 9 do
    Alcotest.(check string)
      (Printf.sprintf "seed %d reproducible" seed)
      (Gen.source (rng seed)) (Gen.source (rng seed))
  done;
  Alcotest.(check bool)
    "different seeds differ" true
    (Gen.source (rng 0) <> Gen.source (rng 1))

let prop_gen_well_typed =
  QCheck.Test.make ~name:"generated models flatten and typecheck"
    ~count:100
    QCheck.(int_bound 100_000)
    (fun seed ->
      let m = Gen.model (rng seed) in
      let f = Om_lang.Flatten.flatten m in
      Om_lang.Typecheck.check f;
      Om_lang.Flat_model.dim f > 0)

let prop_gen_parses =
  QCheck.Test.make ~name:"generated source reparses to equal source"
    ~count:100
    QCheck.(int_bound 100_000)
    (fun seed ->
      let src = Gen.source (rng seed) in
      Om_lang.Unparse.model (Om_lang.Parser.parse_model src) = src)

let test_stiff_model () =
  let f = Om_lang.Flatten.flatten (Gen.stiff_model ()) in
  Alcotest.(check int) "two states" 2 (Om_lang.Flat_model.dim f);
  Om_lang.Typecheck.check f

(* ---- shrinker ---- *)

let test_shrink_converges () =
  (* Predicate: the model still flattens to at least one state.  The
     greedy fixpoint must land on a model where no candidate still
     satisfies it — i.e. minimal for the predicate. *)
  let m = Gen.model (rng 7) in
  let pred m' =
    match Om_lang.Flatten.flatten m' with
    | f -> Om_lang.Flat_model.dim f >= 1
    | exception Om_lang.Flatten.Error _ -> false
  in
  Alcotest.(check bool) "predicate holds initially" true (pred m);
  let s = Shrink.shrink ~budget:2000 m ~predicate:pred in
  Alcotest.(check bool) "predicate preserved" true (pred s);
  Alcotest.(check bool)
    "no candidate still satisfies the predicate" true
    (not (List.exists pred (Shrink.candidates s)));
  (* Minimal for this predicate: one class, one state. *)
  Alcotest.(check int) "one class" 1 (List.length s.A.classes);
  Alcotest.(check int) "one instance" 1 (List.length s.A.instances);
  Alcotest.(check int) "one state" 1
    (Om_lang.Flat_model.dim (Om_lang.Flatten.flatten s))

let test_shrink_budget () =
  let m = Gen.model (rng 7) in
  let evals = ref 0 in
  let pred _ = incr evals; true in
  ignore (Shrink.shrink ~budget:5 m ~predicate:pred);
  Alcotest.(check bool)
    (Printf.sprintf "at most 5 evaluations (got %d)" !evals)
    true (!evals <= 5)

let test_shrink_rejects_raising_predicate () =
  (* A predicate that raises counts as false, so shrinking terminates and
     returns the input unchanged. *)
  let m = Gen.model (rng 3) in
  let s = Shrink.shrink m ~predicate:(fun _ -> failwith "boom") in
  Alcotest.(check string) "input returned" (Om_lang.Unparse.model m)
    (Om_lang.Unparse.model s)

(* ---- runner ---- *)

let test_runner_green_batch () =
  (* The full oracle over a deterministic batch: every invariant on every
     strategy pair must hold.  This is the in-tree version of
     [omc fuzz]; CI additionally runs 200 cases through the CLI. *)
  let summary = Runner.run ~cases:15 ~seed:42 () in
  (match summary.failures with
  | [] -> ()
  | fl :: _ ->
      Alcotest.failf "case %d violated: %a" fl.index
        (Fmt.list ~sep:Fmt.comma Oracle.pp_violation)
        fl.violations);
  Alcotest.(check int) "all cases ran" 15 summary.cases

let test_runner_dumps_counterexamples () =
  (* Inject an always-failing check and verify shrinking + dump-to-disk:
     the report, original and shrunk sources must all land in [out_dir]. *)
  let dir =
    (* A fresh unique path: claim a temp file name, then reuse it as the
       dump directory. *)
    let f = Filename.temp_file "om_fuzz_test" "" in
    Sys.remove f;
    f
  in
  let check m =
    let dim =
      match Om_lang.Flatten.flatten m with
      | f -> Om_lang.Flat_model.dim f
      | exception Om_lang.Flatten.Error _ -> 0
    in
    {
      Oracle.dim;
      n_tasks = 0;
      discarded = None;
      violations = [ { Oracle.invariant = "synthetic"; detail = "always" } ];
    }
  in
  let summary = Runner.run ~out_dir:dir ~check ~cases:2 ~seed:1 () in
  Alcotest.(check int) "both cases fail" 2 (List.length summary.failures);
  List.iter
    (fun suffix ->
      List.iter
        (fun i ->
          let path = Filename.concat dir (Printf.sprintf "case%04d-%s" i suffix) in
          Alcotest.(check bool) (path ^ " exists") true (Sys.file_exists path);
          if Filename.check_suffix path ".om" then
            (* Dumped sources must be valid model text. *)
            ignore
              (Om_lang.Parser.parse_model
                 (In_channel.with_open_text path In_channel.input_all)))
        [ 0; 1 ])
    [ "original.om"; "shrunk.om"; "report.txt" ];
  (* The always-failing predicate shrinks all the way to a one-class,
     one-instance skeleton. *)
  (match summary.failures with
  | fl :: _ ->
      Alcotest.(check bool) "shrunk to <= 1 class" true
        (List.length fl.shrunk.A.classes <= 1)
  | [] -> ());
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Sys.rmdir dir

let test_runner_deterministic () =
  let s1 = Runner.run ~cases:5 ~seed:9 () in
  let s2 = Runner.run ~cases:5 ~seed:9 () in
  Alcotest.(check int) "same discards" s1.discarded s2.discarded;
  Alcotest.(check int) "same dims" s1.dim_total s2.dim_total;
  Alcotest.(check int) "same tasks" s1.task_total s2.task_total

(* ---- oracle ---- *)

let test_oracle_reports_all_violations () =
  (* A hand-written ill-typed model: state without an equation.  The
     oracle must report it as a flatten/typecheck violation rather than
     raise. *)
  let src = "model M;\nclass C\n  variable x init 1.0;\nend;\ninstance c of C;\n" in
  let m = Om_lang.Parser.parse_model src in
  let res = Oracle.check m in
  Alcotest.(check bool) "some violation" true (res.violations <> [])

let () =
  Alcotest.run "om_fuzz"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "stiff model" `Quick test_stiff_model;
          Qcheck_seed.to_alcotest prop_gen_well_typed;
          Qcheck_seed.to_alcotest prop_gen_parses;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "converges to minimal" `Quick
            test_shrink_converges;
          Alcotest.test_case "budget respected" `Quick test_shrink_budget;
          Alcotest.test_case "raising predicate" `Quick
            test_shrink_rejects_raising_predicate;
        ] );
      ( "runner",
        [
          Alcotest.test_case "green batch" `Slow test_runner_green_batch;
          Alcotest.test_case "counterexample dumps" `Quick
            test_runner_dumps_counterexamples;
          Alcotest.test_case "deterministic" `Slow test_runner_deterministic;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "ill-typed model" `Quick
            test_oracle_reports_all_violations;
        ] );
    ]
