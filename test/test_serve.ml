(* Tests for the multi-tenant simulation service: the NDJSON codec, job
   decoding, the bounded priority queue, the compiled-model cache (hits
   skip compilation and are bitwise-identical, LRU eviction, cross-tenant
   artifact sharing without data leakage), and the server loop
   (cancellation, deadlines, chaos survival, streamed chunks). *)

module J = Om_serve.Json
module Job = Om_serve.Job
module Q = Om_serve.Job_queue
module MC = Om_serve.Model_cache
module RC = Om_serve.Result_cache
module Jr = Om_serve.Journal
module S = Om_serve.Server
module P = Om_codegen.Pipeline

let decay k x0 =
  Printf.sprintf
    "model M; class C parameter k = %s; variable x init %s; equation der(x) \
     = 0.0 - k * x; end; instance c of C;"
    k x0

let resolve = function
  | "servo" -> Some (Om_models.Servo.source ())
  | _ -> None

(* ---------- JSON codec ---------- *)

let test_json_roundtrip () =
  let samples =
    [
      {|{"a":1,"b":-2.5,"c":"x\ny","d":[true,false,null],"e":{}}|};
      {|[1.0,0.1,1e300]|};
      {|"plain"|};
      {|-42|};
    ]
  in
  List.iter
    (fun s ->
      let v = J.of_string s in
      Alcotest.(check string)
        ("roundtrip " ^ s)
        (J.to_string v)
        (J.to_string (J.of_string (J.to_string v))))
    samples

let test_json_floats () =
  (* Equal floats print to equal bytes; non-finite values become null. *)
  Alcotest.(check string) "shortest roundtrip" "[0.1,1.0,12345.0]"
    (J.to_string (J.Arr [ J.Num 0.1; J.Num 1.0; J.Num 12345.0 ]));
  Alcotest.(check string) "non-finite to null" "[null,null,null]"
    (J.to_string
       (J.Arr [ J.Num Float.nan; J.Num Float.infinity; J.Num Float.neg_infinity ]));
  let f = 0.30000000000000004 in
  let printed = J.to_string (J.Num f) in
  Alcotest.(check (float 0.)) "reparses to the same float" f
    (match J.of_string printed with J.Num g -> g | J.Int n -> float_of_int n | _ -> Float.nan)

let test_json_errors () =
  let bad = [ "{"; "[1,"; "tru"; "\"unterminated"; "{\"a\":}"; "1 2" ] in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (match J.of_string s with
        | exception J.Error _ -> true
        | _ -> false))
    bad

(* ---------- job decoding ---------- *)

let test_job_defaults () =
  let json = J.of_string {|{"source":"model M; end;"}|} in
  match Job.of_json ~default_id:"j0" ~resolve json with
  | Error e -> Alcotest.fail e
  | Ok spec ->
      Alcotest.(check string) "id" "j0" spec.Job.id;
      Alcotest.(check string) "tenant" "default" spec.Job.tenant;
      Alcotest.(check int) "priority" 0 spec.Job.priority;
      Alcotest.(check (float 0.)) "tend" 1.0 spec.Job.tend;
      Alcotest.(check bool) "no chaos" true (spec.Job.chaos = None)

let test_job_decode_errors () =
  let expect_err what line =
    match Job.of_json ~resolve (J.of_string line) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (what ^ ": expected a decode error")
  in
  expect_err "no model" {|{"id":"x"}|};
  expect_err "both source and model" {|{"source":"m","model":"servo"}|};
  expect_err "unknown builtin" {|{"model":"nonesuch"}|};
  expect_err "unknown solver" {|{"source":"m","solver":"euler"}|};
  expect_err "bad chaos" {|{"source":"m","chaos":{"kind":"nan","round":0}}|};
  expect_err "negative deadline" {|{"source":"m","deadline_s":-1}|};
  expect_err "not an object" {|[1,2]|}

let test_job_chaos_plan () =
  let json =
    J.of_string
      {|{"source":"m","chaos":{"kind":"inf","task":2,"round":3,"count":2}}|}
  in
  match Job.of_json ~resolve json with
  | Error e -> Alcotest.fail e
  | Ok spec -> (
      match Job.fault_plan spec with
      | None -> Alcotest.fail "expected a fault plan"
      | Some plan ->
          let hit round =
            (* [task_poison] yields the poison value, [0.] when none. *)
            Om_guard.Fault_plan.task_poison plan ~round ~task:2 <> 0.
          in
          Alcotest.(check bool) "round 3 poisoned" true (hit 3);
          Alcotest.(check bool) "round 4 poisoned" true (hit 4);
          Alcotest.(check bool) "round 5 clean" false (hit 5))

(* ---------- bounded priority queue ---------- *)

let test_queue_priority_order () =
  let q = Q.create ~capacity:8 () in
  List.iter
    (fun (p, x) -> Alcotest.(check bool) "accepted" true (Q.submit q ~priority:p x = `Ok))
    [ (0, "a"); (5, "b"); (0, "c"); (9, "d"); (5, "e") ];
  Q.close q;
  let rec drain acc =
    match Q.pop q with Some x -> drain (x :: acc) | None -> List.rev acc
  in
  (* Highest priority first; FIFO within a priority. *)
  Alcotest.(check (list string)) "pop order" [ "d"; "b"; "e"; "a"; "c" ]
    (drain [])

let test_queue_bounded_rejection () =
  let q = Q.create ~capacity:2 () in
  Alcotest.(check bool) "1st" true (Q.submit q ~priority:0 1 = `Ok);
  Alcotest.(check bool) "2nd" true (Q.submit q ~priority:0 2 = `Ok);
  Alcotest.(check bool) "3rd rejected" true (Q.submit q ~priority:7 3 = `Rejected_full);
  Alcotest.(check int) "length" 2 (Q.length q);
  ignore (Q.pop q);
  Alcotest.(check bool) "space again" true (Q.submit q ~priority:0 4 = `Ok)

let test_queue_close () =
  let q = Q.create ~capacity:4 () in
  ignore (Q.submit q ~priority:0 "x");
  Q.close q;
  Alcotest.(check bool) "closed rejects" true (Q.submit q ~priority:0 "y" = `Closed);
  Alcotest.(check bool) "drains queued" true (Q.pop q = Some "x");
  Alcotest.(check bool) "then none" true (Q.pop q = None);
  Alcotest.(check bool) "closed" true (Q.closed q)

let test_queue_concurrent_consumers () =
  (* Two consumer domains drain 50 items exactly once between them. *)
  let q = Q.create ~capacity:64 () in
  let seen = Atomic.make 0 in
  let consumer () =
    let rec go n = match Q.pop q with
      | Some _ -> Atomic.incr seen; go (n + 1)
      | None -> n
    in
    go 0
  in
  let d1 = Domain.spawn consumer and d2 = Domain.spawn consumer in
  for i = 1 to 50 do ignore (Q.submit q ~priority:(i mod 3) i) done;
  Q.close q;
  let n1 = Domain.join d1 and n2 = Domain.join d2 in
  Alcotest.(check int) "all items consumed once" 50 (n1 + n2);
  Alcotest.(check int) "seen count" 50 (Atomic.get seen)

(* ---------- compiled-model cache ---------- *)

let test_cache_hit_skips_compile_bitwise () =
  (* A hit must not re-run the pipeline (compile-counter stays put) and
     must integrate bitwise-identically to the cold compile. *)
  let source = decay "1.0" "2.0" in
  let cold = P.compile_source source in
  let cache = MC.create ~capacity:4 () in
  let e1 =
    match MC.lookup cache source with `Miss e -> e | `Hit _ -> Alcotest.fail "cold hit"
  in
  let before = P.compile_count () in
  let e2 =
    match MC.lookup cache source with `Hit e -> e | `Miss _ -> Alcotest.fail "warm miss"
  in
  Alcotest.(check int) "hit compiles nothing" before (P.compile_count ());
  Alcotest.(check bool) "same artifact" true (e1.MC.compiled == e2.MC.compiled);
  let final r =
    Om_ode.Odesys.final_state
      (Objectmath.Runtime.execute ~tend:1. r).trajectory
  in
  Alcotest.(check bool) "bitwise identical to cold compile" true
    (final cold = final e2.MC.compiled);
  let s = MC.stats cache in
  Alcotest.(check int) "hits" 1 s.MC.hits;
  Alcotest.(check int) "misses" 1 s.MC.misses;
  Alcotest.(check int) "compiles" 1 s.MC.compiles

let test_cache_lru_eviction () =
  let s1 = decay "1.0" "1.0" and s2 = decay "2.0" "1.0" and s3 = decay "3.0" "1.0" in
  let cache = MC.create ~capacity:2 () in
  ignore (MC.lookup cache s1);
  ignore (MC.lookup cache s2);
  ignore (MC.lookup cache s1);  (* s1 most recently used; s2 is the LRU *)
  ignore (MC.lookup cache s3);  (* evicts s2 *)
  let st = MC.stats cache in
  Alcotest.(check int) "entries at capacity" 2 st.MC.entries;
  Alcotest.(check int) "one eviction" 1 st.MC.evictions;
  Alcotest.(check (list string)) "s2 evicted, s3 freshest"
    [ P.source_key s3; P.source_key s1 ]
    (MC.resident cache);
  (match MC.lookup cache s2 with
  | `Miss _ -> ()
  | `Hit _ -> Alcotest.fail "evicted entry still resident");
  Alcotest.(check int) "re-adding evicts again" 2 (MC.stats cache).MC.evictions

let test_cache_capacity_zero_never_stores () =
  let source = decay "1.0" "1.0" in
  let cache = MC.create ~capacity:0 () in
  (match MC.lookup cache source with
  | `Miss _ -> ()
  | `Hit _ -> Alcotest.fail "nothing was stored yet");
  (match MC.lookup cache source with
  | `Miss _ -> ()
  | `Hit _ -> Alcotest.fail "capacity 0 must never hit");
  let st = MC.stats cache in
  Alcotest.(check int) "compiled every time" 2 st.MC.compiles;
  Alcotest.(check int) "nothing resident" 0 st.MC.entries

(* ---------- server ---------- *)

let collecting_server ?(config = S.default_config) ?journal () =
  let records = ref [] in
  let mu = Mutex.create () in
  let emit r =
    Mutex.lock mu;
    records := r :: !records;
    Mutex.unlock mu
  in
  let config = { config with S.timings = false; resolve } in
  (S.create ~config ?journal ~emit (), fun () -> List.rev !records)

let str_field r k = Option.bind (J.member r k) J.to_str
let int_field r k = Option.bind (J.member r k) J.to_int

let statuses records =
  List.filter_map
    (fun r ->
      match (str_field r "type", str_field r "job", str_field r "status") with
      | Some "status", Some job, Some st -> Some (job, st)
      | _ -> None)
    records

let status_of records job = List.assoc_opt job (statuses records)

let test_server_tenants_share_artifact_no_leakage () =
  (* Same source from two tenants: one compile, one cached artifact —
     but each job's numerics are its own and bitwise-reproducible. *)
  let server, records = collecting_server () in
  let source = decay "1.0" "2.0" in
  let submit tenant id =
    match S.submit server { Job.default with Job.id; tenant; source } with
    | `Ok _ -> ()
    | _ -> Alcotest.fail "submit failed"
  in
  submit "alice" "a1";
  submit "bob" "b1";
  ignore (S.drain server);
  let rs = records () in
  Alcotest.(check (option string)) "alice ok" (Some "ok") (status_of rs "a1");
  Alcotest.(check (option string)) "bob ok" (Some "ok") (status_of rs "b1");
  let cs = MC.stats (S.cache server) in
  Alcotest.(check int) "one compile for both tenants" 1 cs.MC.compiles;
  Alcotest.(check int) "second tenant hit" 1 cs.MC.hits;
  (* No leakage: each status carries its own tenant, and the shared
     artifact yields the same bitwise result as a private compile. *)
  let final job =
    let r = List.find (fun r -> str_field r "job" = Some job) rs in
    match J.member r "final" with
    | Some (J.Arr xs) -> List.filter_map J.to_float xs
    | _ -> Alcotest.fail ("no final state for " ^ job)
  in
  let tenant job =
    let r = List.find (fun r -> str_field r "job" = Some job) rs in
    str_field r "tenant"
  in
  Alcotest.(check (option string)) "alice tagged" (Some "alice") (tenant "a1");
  Alcotest.(check (option string)) "bob tagged" (Some "bob") (tenant "b1");
  let solo =
    Array.to_list
      (Om_ode.Odesys.final_state
         (Objectmath.Runtime.execute ~tend:1. (P.compile_source source)).trajectory)
  in
  Alcotest.(check bool) "alice bitwise = solo" true (final "a1" = solo);
  Alcotest.(check bool) "bob bitwise = solo" true (final "b1" = solo)

let test_server_chaos_fails_job_not_server () =
  (* A chaos plan longer than the retry budget fails its job with
     status solver_failure; later jobs on the same server still run. *)
  let server, records = collecting_server () in
  let source = decay "1.0" "1.0" in
  let chaos =
    { Job.default with
      Job.id = "boom"; source;
      chaos = Some { Job.kind = `Nan; task = 0; round = 1; count = 64; attempts = 0 } }
  in
  ignore (S.submit server chaos);
  ignore (S.submit server { Job.default with Job.id = "next"; source });
  ignore (S.drain server);
  let rs = records () in
  Alcotest.(check (option string)) "chaos job fails"
    (Some "solver_failure") (status_of rs "boom");
  Alcotest.(check (option string)) "server survives, next job ok"
    (Some "ok") (status_of rs "next")

let test_server_chaos_recovers_bitwise () =
  (* One poisoned round inside the retry budget: the job succeeds, the
     report shows the injection + retry, and numerics are unaffected. *)
  let server, records = collecting_server () in
  let source = decay "1.0" "2.0" in
  let job =
    { Job.default with
      Job.id = "c1"; source;
      chaos = Some { Job.kind = `Inf; task = 0; round = 2; count = 1; attempts = 0 } }
  in
  ignore (S.submit server job);
  ignore (S.submit server { Job.default with Job.id = "clean"; source });
  ignore (S.drain server);
  let rs = records () in
  Alcotest.(check (option string)) "chaos job ok" (Some "ok") (status_of rs "c1");
  let rec_of job = List.find (fun r -> str_field r "job" = Some job) rs in
  Alcotest.(check bool) "fault injected" true
    (match int_field (rec_of "c1") "faults" with Some n -> n > 0 | None -> false);
  Alcotest.(check bool) "retried" true
    (match int_field (rec_of "c1") "retries" with Some n -> n > 0 | None -> false);
  Alcotest.(check bool) "bitwise equal to clean run" true
    (J.member (rec_of "c1") "final" = J.member (rec_of "clean") "final")

let test_server_deadline_exceeded () =
  (* An already-expired deadline fails the job before it even compiles. *)
  let server, records = collecting_server () in
  let job =
    { Job.default with
      Job.id = "late"; source = decay "1.0" "1.0"; deadline_s = 1e-9 }
  in
  ignore (S.submit server job);
  ignore (S.drain server);
  let rs = records () in
  Alcotest.(check (option string)) "deadline status"
    (Some "deadline_exceeded") (status_of rs "late");
  let r = List.find (fun r -> str_field r "job" = Some "late") rs in
  Alcotest.(check (option string)) "no cache involvement" (Some "none")
    (str_field r "cache")

let test_server_cancel () =
  (* Cancelling a queued/running job surfaces as status "cancelled".
     The tiny step size makes the run effectively unbounded, so the
     cancel always lands before the job can finish on its own. *)
  let server, records = collecting_server () in
  let job =
    { Job.default with Job.id = "victim"; source = decay "1.0" "1.0";
      solver = Job.Rk4 (Some 1e-8); tend = 50. }
  in
  ignore (S.submit server job);
  S.cancel server ~job:"victim" ~reason:"test says stop";
  ignore (S.drain server);
  Alcotest.(check (option string)) "cancelled"
    (Some "cancelled") (status_of (records ()) "victim")

let test_server_model_error_and_invalid () =
  let server, records = collecting_server () in
  let feed line = ignore (S.handle_line server line) in
  feed {|{"id":"bad","source":"not a model"}|};
  feed "this is not json";
  feed {|{"id":"nomodel"}|};
  feed {|{"type":"frobnicate"}|};
  feed "";
  ignore (S.drain server);
  let rs = records () in
  Alcotest.(check (option string)) "model error"
    (Some "model_error") (status_of rs "bad");
  let invalids =
    List.length (List.filter (fun (_, st) -> st = "invalid") (statuses rs))
  in
  Alcotest.(check int) "three invalid records" 3 invalids

let test_server_chunk_stream () =
  (* chunk=150 over a 401-row trajectory: 3 chunk records, rows
     reassemble the full trajectory, all before the status record. *)
  let server, records = collecting_server () in
  let job =
    { Job.default with Job.id = "s"; source = decay "1.0" "2.0"; chunk = 150 }
  in
  ignore (S.submit server job);
  ignore (S.drain server);
  let rs = records () in
  let chunks = List.filter (fun r -> str_field r "type" = Some "chunk") rs in
  Alcotest.(check int) "chunk count" 3 (List.length chunks);
  let rows =
    List.concat_map
      (fun r ->
        match J.member r "rows" with Some (J.Arr l) -> l | _ -> [])
      chunks
  in
  Alcotest.(check int) "401 rows total" 401 (List.length rows);
  List.iteri
    (fun i r ->
      Alcotest.(check (option int)) "seq ordered" (Some i) (int_field r "seq"))
    chunks;
  (* Every chunk precedes the job's status record. *)
  let status_pos = ref (-1) and last_chunk = ref (-1) in
  List.iteri
    (fun i r ->
      match str_field r "type" with
      | Some "status" when !status_pos < 0 -> status_pos := i
      | Some "chunk" -> last_chunk := i
      | _ -> ())
    rs;
  Alcotest.(check bool) "chunks before status" true (!last_chunk < !status_pos)

let test_server_rejection_overload () =
  (* With a capacity-1 queue and the lone executor busy, extra
     submissions are shed as "rejected" while accepted jobs complete. *)
  let config = { S.default_config with S.queue_capacity = 1 } in
  let server, records = collecting_server ~config () in
  let mk id = { Job.default with Job.id = id; source = decay "1.0" "1.0" } in
  let outcomes =
    List.map
      (fun id ->
        match S.submit server (mk id) with
        | `Ok _ -> `Ok
        | `Duplicate -> `Duplicate
        | `Rejected status ->
            (* a full queue must shed with the global-overload status,
               never a tenant-quota or deadline one *)
            Alcotest.(check string) "full-queue shed status" "rejected_full"
              status;
            `Rejected
        | `Closed -> `Closed)
      [ "r1"; "r2"; "r3"; "r4"; "r5"; "r6" ]
  in
  ignore (S.drain server);
  let accepted = List.length (List.filter (( = ) `Ok) outcomes) in
  let rejected = List.length (List.filter (( = ) `Rejected) outcomes) in
  Alcotest.(check int) "every submission accounted" 6 (accepted + rejected);
  Alcotest.(check bool) "nothing closed early" false (List.mem `Closed outcomes);
  Alcotest.(check bool) "distinct ids never duplicates" false
    (List.mem `Duplicate outcomes);
  let rs = records () in
  let ok_count =
    List.length (List.filter (fun (_, st) -> st = "ok") (statuses rs))
  in
  let rejected_count =
    List.length
      (List.filter (fun (_, st) -> st = "rejected_full") (statuses rs))
  in
  Alcotest.(check int) "accepted jobs all ok" accepted ok_count;
  Alcotest.(check int) "rejections reported as statuses" rejected rejected_count;
  let st = S.stats server in
  Alcotest.(check int) "stats.submitted" accepted st.S.submitted;
  Alcotest.(check int) "stats.rejected_full" rejected st.S.rejected_full

let test_server_summary_counts () =
  let server, records = collecting_server () in
  let source = decay "1.0" "1.0" in
  ignore (S.submit server { Job.default with Job.id = "ok1"; source });
  ignore
    (S.submit server
       { Job.default with
         Job.id = "boom"; source;
         chaos = Some { Job.kind = `Nan; task = 0; round = 1; count = 64; attempts = 0 } });
  let summary = S.drain server in
  Alcotest.(check (option int)) "jobs" (Some 2) (int_field summary "jobs");
  Alcotest.(check (option int)) "ok" (Some 1) (int_field summary "ok");
  Alcotest.(check (option int)) "failed" (Some 1) (int_field summary "failed");
  let rs = records () in
  Alcotest.(check bool) "summary emitted last" true
    (match List.rev rs with
    | last :: _ -> str_field last "type" = Some "summary"
    | [] -> false)

(* ---------- executor concurrency ---------- *)

let rec wait_for ?(timeout = 30.) what pred =
  if pred () then ()
  else if timeout <= 0. then Alcotest.fail ("timed out waiting for " ^ what)
  else begin
    Unix.sleepf 0.005;
    wait_for ~timeout:(timeout -. 0.005) what pred
  end

let test_clone_scratch_concurrent_execution () =
  (* The regression the per-entry lock used to paper over: two domains
     executing the same compiled artifact.  With per-domain scratch
     clones, every concurrent run must stay bitwise equal to the
     sequential reference. *)
  let r = P.compile_source (decay "1.0" "2.0") in
  let clone = P.clone_scratch r in
  Alcotest.(check bool) "analysis shared physically" true
    (clone.P.model == r.P.model);
  Alcotest.(check bool) "backend scratch is private" true
    (clone.P.compiled != r.P.compiled);
  let final res =
    Array.to_list
      (Om_ode.Odesys.final_state
         (Objectmath.Runtime.execute ~tend:1. res).trajectory)
  in
  let reference = final clone in
  let run () =
    let mine = P.clone_scratch r in
    Array.init 25 (fun _ -> final mine)
  in
  let d1 = Domain.spawn run and d2 = Domain.spawn run in
  let f1 = Domain.join d1 and f2 = Domain.join d2 in
  Array.iter
    (fun f ->
      Alcotest.(check (list (float 0.))) "domain 1 bitwise" reference f)
    f1;
  Array.iter
    (fun f ->
      Alcotest.(check (list (float 0.))) "domain 2 bitwise" reference f)
    f2

let test_cache_compile_off_lock_single_flight () =
  (* Hold a compile open via the on_compile hook: hits on other sources
     must keep flowing (the table mutex is not held across the compile),
     and the two racing lookups of the new source compile it once. *)
  let s_fast = decay "1.0" "1.0" and s_slow = decay "2.0" "3.0" in
  let entered = Atomic.make 0 and release = Atomic.make false in
  let on_compile src =
    if src = s_slow then begin
      Atomic.incr entered;
      while not (Atomic.get release) do
        Unix.sleepf 0.001
      done
    end
  in
  let cache = MC.create ~on_compile ~capacity:4 () in
  (match MC.lookup cache s_fast with
  | `Miss _ -> ()
  | `Hit _ -> Alcotest.fail "cold hit");
  let worker () =
    match MC.lookup cache s_slow with `Miss _ -> `M | `Hit _ -> `H
  in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  wait_for "slow compile entered" (fun () -> Atomic.get entered >= 1);
  (* Give the losing lookup time to park on the in-flight latch. *)
  Unix.sleepf 0.02;
  (* If lookup held the cache mutex across compilation, this hit would
     deadlock behind the held-open compile instead of returning. *)
  (match MC.lookup cache s_fast with
  | `Hit _ -> ()
  | `Miss _ -> Alcotest.fail "hit blocked or lost during compile");
  Atomic.set release true;
  let o1 = Domain.join d1 and o2 = Domain.join d2 in
  Alcotest.(check bool) "one compiler, one waiter-or-hit" true
    ((o1 = `M && o2 = `H) || (o1 = `H && o2 = `M));
  Alcotest.(check int) "single-flight: slow source compiled once" 1
    (Atomic.get entered);
  let st = MC.stats cache in
  Alcotest.(check int) "two compiles total" 2 st.MC.compiles;
  Alcotest.(check int) "both sources resident" 2 st.MC.entries

let test_server_duplicate_id () =
  (* While a job id is in flight, resubmitting it must not clobber the
     live job's cancel token: the duplicate is refused with an "invalid"
     status and the original completes untouched. *)
  let server, records = collecting_server () in
  let source = decay "1.0" "1.0" in
  let blocker =
    (* ~100k rk4 steps keep the lone executor busy while we submit. *)
    { Job.default with Job.id = "blocker"; source; solver = Job.Rk4 (Some 1e-5) }
  in
  (match S.submit server blocker with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "blocker refused");
  let dup = { Job.default with Job.id = "dup"; source } in
  (match S.submit server dup with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "first dup refused");
  (match S.submit server dup with
  | `Duplicate -> ()
  | `Ok _ -> Alcotest.fail "duplicate id accepted"
  | _ -> Alcotest.fail "duplicate id mis-handled");
  ignore (S.drain server);
  let rs = records () in
  Alcotest.(check (option string)) "blocker ok" (Some "ok")
    (status_of rs "blocker");
  let dup_statuses =
    List.sort compare
      (List.filter_map
         (fun (j, st) -> if j = "dup" then Some st else None)
         (statuses rs))
  in
  Alcotest.(check (list string)) "dup: one invalid, one ok"
    [ "invalid"; "ok" ] dup_statuses;
  let st = S.stats server in
  Alcotest.(check int) "two accepted jobs" 2 st.S.submitted;
  Alcotest.(check int) "duplicate is not a rejection" 0
    (st.S.rejected_full + st.S.rejected_quota + st.S.rejected_deadline)

let test_server_drain_idempotent () =
  let server, records = collecting_server () in
  ignore
    (S.submit server { Job.default with Job.id = "j"; source = decay "1.0" "1.0" });
  let s1 = S.drain server in
  let s2 = S.drain server in
  Alcotest.(check string) "second drain returns the same summary"
    (J.to_string s1) (J.to_string s2);
  let summaries rs =
    List.length (List.filter (fun r -> str_field r "type" = Some "summary") rs)
  in
  Alcotest.(check int) "summary emitted once" 1 (summaries (records ()));
  (* Concurrent drains agree and still emit exactly one summary. *)
  let server2, records2 = collecting_server () in
  ignore
    (S.submit server2
       { Job.default with Job.id = "k"; source = decay "1.0" "1.0" });
  let d1 = Domain.spawn (fun () -> S.drain server2)
  and d2 = Domain.spawn (fun () -> S.drain server2) in
  let a = Domain.join d1 and b = Domain.join d2 in
  Alcotest.(check string) "concurrent drains agree" (J.to_string a)
    (J.to_string b);
  Alcotest.(check int) "concurrent drains emit one summary" 1
    (summaries (records2 ()));
  Alcotest.(check (option int)) "summary counted the job" (Some 1)
    (int_field a "jobs")

let test_server_per_job_sink_routing () =
  (* The socket mode's contract: a job's chunks and terminal status go
     to the submitting connection's sink, never to the server-wide emit
     (which keeps only the summary). *)
  let server, records = collecting_server () in
  let make_sink () =
    let l = ref [] and m = Mutex.create () in
    ( (fun r ->
        Mutex.lock m;
        l := r :: !l;
        Mutex.unlock m),
      fun () -> List.rev !l )
  in
  let sink_a, got_a = make_sink () in
  let sink_b, got_b = make_sink () in
  let source = decay "1.0" "2.0" in
  (match
     S.submit ~sink:sink_a server
       { Job.default with Job.id = "a"; source; chunk = 150 }
   with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "submit a failed");
  (match
     S.handle_line ~sink:sink_b server
       (Printf.sprintf {|{"id":"b","source":"%s"}|} source)
   with
  | `Queued id -> Alcotest.(check string) "queued id" "b" id
  | _ -> Alcotest.fail "expected `Queued");
  (match S.handle_line ~sink:sink_b server "not json at all" with
  | `Replied -> ()
  | _ -> Alcotest.fail "expected `Replied for bad JSON");
  ignore (S.drain server);
  let a_rs = got_a () and b_rs = got_b () in
  Alcotest.(check bool) "a got chunks and status" true
    (List.exists (fun r -> str_field r "type" = Some "chunk") a_rs
    && status_of a_rs "a" = Some "ok");
  Alcotest.(check bool) "every record in sink a is job a's" true
    (List.for_all (fun r -> str_field r "job" = Some "a") a_rs);
  Alcotest.(check (option string)) "b ok via its sink" (Some "ok")
    (status_of b_rs "b");
  Alcotest.(check bool) "bad JSON answered on sink b" true
    (List.exists (fun (_, st) -> st = "invalid") (statuses b_rs));
  Alcotest.(check bool) "server-wide emit got no job records" true
    (List.for_all (fun r -> str_field r "type" = Some "summary") (records ()))

let test_server_executors_overlap_same_model () =
  (* The tentpole witness: with two executors and one model, a short job
     finishes while a long job on the same compiled artifact is still
     running.  A per-artifact execution lock would serialise them and
     this test would time out waiting for the short job. *)
  let config = { S.default_config with S.executors = 2 } in
  let server, records = collecting_server ~config () in
  let source = decay "1.0" "2.0" in
  let long =
    (* ~1e8 rk4 steps: effectively runs until cancelled. *)
    { Job.default with Job.id = "long"; source; solver = Job.Rk4 (Some 1e-8) }
  in
  (match S.submit server long with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "long refused");
  wait_for "long job compiled its model" (fun () ->
      (MC.stats (S.cache server)).MC.compiles >= 1);
  (match
     S.submit server { Job.default with Job.id = "short"; source }
   with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "short refused");
  wait_for "short job finished during the long job" (fun () ->
      status_of (records ()) "short" <> None);
  Alcotest.(check (option string)) "short ok while long runs" (Some "ok")
    (status_of (records ()) "short");
  Alcotest.(check (option string)) "long still in flight" None
    (status_of (records ()) "long");
  S.cancel server ~job:"long" ~reason:"overlap witnessed";
  ignore (S.drain server);
  Alcotest.(check (option string)) "long cancelled" (Some "cancelled")
    (status_of (records ()) "long");
  let cs = MC.stats (S.cache server) in
  Alcotest.(check int) "both jobs shared one compile" 1 cs.MC.compiles

let finals_with_executors n =
  let config = { S.default_config with S.executors = n } in
  let server, records = collecting_server ~config () in
  let sources =
    [ decay "1.0" "2.0"; decay "0.5" "1.0"; decay "2.0" "3.0" ]
  in
  List.iteri
    (fun i src ->
      List.iter
        (fun k ->
          match
            S.submit server
              { Job.default with
                Job.id = Printf.sprintf "m%d-%d" i k;
                source = src }
          with
          | `Ok _ -> ()
          | _ -> Alcotest.fail "submit refused")
        [ 0; 1 ])
    sources;
  ignore (S.drain server);
  List.filter_map
    (fun r ->
      match (str_field r "type", str_field r "job", J.member r "final") with
      | Some "status", Some j, Some f -> Some (j, J.to_string f)
      | _ -> None)
    (records ())
  |> List.sort compare

let test_server_bitwise_across_executor_counts () =
  (* Same burst, 1 vs 4 executors: per-job final states must be
     bitwise identical — concurrency must not touch numerics. *)
  let one = finals_with_executors 1 in
  let four = finals_with_executors 4 in
  Alcotest.(check int) "all jobs completed" 6 (List.length one);
  Alcotest.(check (list (pair string string)))
    "finals identical across executor counts" one four

(* ---------- admission control: tenant quotas & deadline ordering ---------- *)

let test_queue_deadline_ordering () =
  (* Within a priority the earliest absolute deadline pops first;
     priority still dominates; no deadline sorts last (infinity). *)
  let q = Q.create ~capacity:8 () in
  List.iter
    (fun (dl, x) ->
      Alcotest.(check bool) "accepted" true
        (Q.submit ~deadline:dl q ~priority:0 x = `Ok))
    [ (5., "b"); (1., "a"); (Float.infinity, "c") ];
  Alcotest.(check bool) "accepted" true (Q.submit q ~priority:1 "p" = `Ok);
  Q.close q;
  let rec drain acc =
    match Q.pop q with Some x -> drain (x :: acc) | None -> List.rev acc
  in
  Alcotest.(check (list string)) "priority, then earliest deadline, then fifo"
    [ "p"; "a"; "b"; "c" ] (drain [])

let test_queue_tenant_queued_quota () =
  let q = Q.create ~max_queued_per_tenant:2 ~capacity:8 () in
  Alcotest.(check bool) "first accepted" true
    (Q.submit ~tenant:"t" q ~priority:0 "a" = `Ok);
  Alcotest.(check bool) "second accepted" true
    (Q.submit ~tenant:"t" q ~priority:0 "b" = `Ok);
  Alcotest.(check bool) "third shed as over-quota" true
    (Q.submit ~tenant:"t" q ~priority:9 "c" = `Rejected_quota);
  Alcotest.(check bool) "other tenant unaffected" true
    (Q.submit ~tenant:"u" q ~priority:0 "d" = `Ok);
  Alcotest.(check bool) "force bypasses the quota" true
    (Q.submit ~tenant:"t" ~force:true q ~priority:0 "e" = `Ok);
  Alcotest.(check int) "tenant t queued" 3 (Q.queued_for q ~tenant:"t");
  (* popping one of t's entries does not open a slot while still at
     quota (force pushed it one over) *)
  Alcotest.(check bool) "pop returns t's oldest" true (Q.pop q = Some "a");
  Alcotest.(check bool) "still at quota after one pop" true
    (Q.submit ~tenant:"t" q ~priority:0 "f" = `Rejected_quota);
  Alcotest.(check bool) "capacity shedding still reported as full" true
    (let q2 = Q.create ~max_queued_per_tenant:8 ~capacity:1 () in
     ignore (Q.submit ~tenant:"t" q2 ~priority:0 "x");
     Q.submit ~tenant:"t" q2 ~priority:0 "y" = `Rejected_full)

let test_queue_tenant_running_quota () =
  let q = Q.create ~max_running_per_tenant:1 ~capacity:8 () in
  Alcotest.(check bool) "accepted" true
    (Q.submit ~tenant:"t" q ~priority:5 "t1" = `Ok);
  Alcotest.(check bool) "accepted" true
    (Q.submit ~tenant:"t" q ~priority:5 "t2" = `Ok);
  Alcotest.(check bool) "accepted" true
    (Q.submit ~tenant:"u" q ~priority:0 "u1" = `Ok);
  Alcotest.(check bool) "best entry pops first" true (Q.pop q = Some "t1");
  (* t is saturated: its higher-priority t2 is skipped for u's job *)
  Alcotest.(check bool) "saturated tenant skipped for next-best" true
    (Q.pop q = Some "u1");
  Alcotest.(check int) "t running" 1 (Q.running_for q ~tenant:"t");
  Q.finished q ~tenant:"u";
  (* only t2 remains and t still holds its running slot: a consumer
     must block until [finished] releases it *)
  let popped = Atomic.make None in
  let d = Domain.spawn (fun () -> Atomic.set popped (Some (Q.pop q))) in
  Unix.sleepf 0.05;
  Alcotest.(check bool) "pop blocks while tenant saturated" true
    (Atomic.get popped = None);
  Q.finished q ~tenant:"t";
  wait_for "blocked pop released by finished" (fun () ->
      Atomic.get popped <> None);
  Domain.join d;
  Alcotest.(check bool) "released pop yields the skipped job" true
    (Atomic.get popped = Some (Some "t2"))

let test_server_tenant_quota () =
  (* One executor pinned by a long job; tenant t1 may queue one more.
     Its second queued job sheds as rejected_quota while tenant t2
     still gets in. *)
  let config = { S.default_config with S.max_queued_per_tenant = 1 } in
  let server, records = collecting_server ~config () in
  let source = decay "1.0" "2.0" in
  let long =
    { Job.default with
      Job.id = "long"; tenant = "t1"; source; solver = Job.Rk4 (Some 1e-8) }
  in
  (match S.submit server long with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "long refused");
  wait_for "executor picked up the long job" (fun () ->
      (MC.stats (S.cache server)).MC.compiles >= 1);
  (match
     S.submit server { Job.default with Job.id = "q1"; tenant = "t1"; source }
   with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "q1 refused");
  (match
     S.submit server { Job.default with Job.id = "q2"; tenant = "t1"; source }
   with
  | `Rejected status ->
      Alcotest.(check string) "tenant-quota shed status" "rejected_quota"
        status
  | _ -> Alcotest.fail "expected q2 shed over tenant quota");
  (match
     S.submit server { Job.default with Job.id = "q3"; tenant = "t2"; source }
   with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "other tenant must be unaffected");
  S.cancel server ~job:"long" ~reason:"quota witnessed";
  ignore (S.drain server);
  let rs = records () in
  Alcotest.(check (option string)) "q1 completed" (Some "ok")
    (status_of rs "q1");
  Alcotest.(check (option string)) "q2 shed" (Some "rejected_quota")
    (status_of rs "q2");
  Alcotest.(check (option string)) "q3 completed" (Some "ok")
    (status_of rs "q3");
  Alcotest.(check int) "stats.rejected_quota" 1
    (S.stats server).S.rejected_quota

let test_server_deadline_shed () =
  (* An absurd deadline margin makes any model with a recorded run-time
     estimate miss any finite deadline: the second job for the same
     model sheds before entering the queue.  Models without an estimate
     are never shed (no data, no prediction). *)
  let config = { S.default_config with S.deadline_margin = 1e12 } in
  let server, records = collecting_server ~config () in
  let source = decay "1.0" "2.0" in
  ignore (S.submit server { Job.default with Job.id = "warm"; source });
  wait_for "warm job recorded a run-time estimate" (fun () ->
      status_of (records ()) "warm" <> None);
  (match
     S.submit server
       { Job.default with Job.id = "doomed"; source; deadline_s = 0.5 }
   with
  | `Rejected status ->
      Alcotest.(check string) "deadline shed status" "rejected_deadline"
        status
  | _ -> Alcotest.fail "expected the doomed job shed");
  (match
     S.submit server
       { Job.default with
         Job.id = "nodl"; source (* no deadline: margin never applies *) }
   with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "deadline-free job must not be shed");
  (match
     S.submit server
       { Job.default with
         Job.id = "unseen"; source = decay "2.0" "1.0"; deadline_s = 0.5 }
   with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "unseen model must not be shed");
  ignore (S.drain server);
  let rs = records () in
  Alcotest.(check (option string)) "doomed shed" (Some "rejected_deadline")
    (status_of rs "doomed");
  Alcotest.(check (option string)) "deadline-free ran" (Some "ok")
    (status_of rs "nodl");
  Alcotest.(check int) "stats.rejected_deadline" 1
    (S.stats server).S.rejected_deadline

(* ---------- write-ahead journal ---------- *)

let tmp_journal () =
  let path = Filename.temp_file "om_serve_test" ".journal" in
  Sys.remove path;
  path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let with_journal f =
  let path = tmp_journal () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let jspec id = { Job.default with Job.id = id; source = decay "1.0" "2.0" }

let test_journal_replay_roundtrip () =
  with_journal (fun path ->
      Alcotest.(check bool) "missing file replays empty" true
        (match Jr.replay path with
        | Ok r -> r.Jr.pending = [] && r.Jr.accepted = 0 && not r.Jr.torn_tail
        | Error _ -> false);
      let j = Jr.open_append path in
      let s1 = jspec "j1" and s2 = jspec "j2" and s3 = jspec "j3" in
      ignore (Jr.record_accept j s1);
      ignore (Jr.record_accept j s2);
      let seq3 = Jr.record_accept j s3 in
      Alcotest.(check int) "sequence numbers are monotonic" 3 seq3;
      Jr.record_state j ~id:"j1" ~attempt:1 "running";
      Jr.record_state j ~id:"j1" ~status:"ok" "done";
      Jr.record_state j ~id:"j2" ~attempt:1 "running";
      Jr.record_state j ~id:"j2" ~attempt:1 ~delay_s:0.05 "retrying";
      Jr.await_durable j seq3;
      Jr.close j;
      match Jr.replay path with
      | Error e -> Alcotest.fail e
      | Ok r ->
          Alcotest.(check int) "accepted" 3 r.Jr.accepted;
          Alcotest.(check int) "completed" 1 r.Jr.completed;
          Alcotest.(check int) "failed" 0 r.Jr.failed;
          Alcotest.(check bool) "no torn tail" false r.Jr.torn_tail;
          (* retrying j2 and untouched j3 are pending, in accept order,
             with their full specs reconstructed bit-for-bit *)
          Alcotest.(check bool) "pending specs reconstructed" true
            (r.Jr.pending = [ s2; s3 ]))

let test_journal_torn_tail_ignored () =
  (* A crash mid-append leaves a final line without the newline: replay
     must ignore exactly that fragment and keep everything before it. *)
  with_journal (fun path ->
      let j = Jr.open_append path in
      ignore (Jr.record_accept j (jspec "keep"));
      Jr.close j;
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc {|{"rec":"accept","job":{"id":"to|};
      close_out oc;
      (match Jr.replay path with
      | Error e -> Alcotest.fail e
      | Ok r ->
          Alcotest.(check bool) "torn tail flagged" true r.Jr.torn_tail;
          Alcotest.(check int) "fragment not counted" 1 r.Jr.accepted;
          Alcotest.(check bool) "intact job still pending" true
            (match r.Jr.pending with
            | [ s ] -> s.Job.id = "keep"
            | _ -> false));
      (* re-opening for append after a torn tail starts a fresh line:
         the journal self-heals on the next record *)
      let j2 = Jr.open_append path in
      ignore (Jr.record_accept j2 (jspec "after"));
      Jr.close j2;
      match Jr.replay path with
      | Error e -> Alcotest.fail e
      | Ok r ->
          Alcotest.(check int) "healed journal counts both" 2 r.Jr.accepted)

let test_journal_malformed_rejected () =
  (* Unlike a torn tail, a complete-but-corrupt line anywhere is a real
     integrity failure: replay refuses rather than silently dropping
     jobs. *)
  let expect_error what lines =
    with_journal (fun path ->
        let oc = open_out_bin path in
        List.iter (fun l -> output_string oc (l ^ "\n")) lines;
        close_out oc;
        match Jr.replay path with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail (what ^ ": expected replay to refuse"))
  in
  let accept =
    J.to_string (J.Obj [ ("rec", J.Str "accept"); ("job", Job.to_json (jspec "a")) ])
  in
  expect_error "garbage line" [ accept; "not json at all" ];
  expect_error "unknown record kind" [ accept; {|{"rec":"mystery"}|} ];
  expect_error "state for unaccepted id"
    [ accept; {|{"rec":"state","id":"ghost","state":"done"}|} ];
  expect_error "accept without a job" [ {|{"rec":"accept"}|} ]

let test_server_journal_lifecycle () =
  (* A journaled run writes accept → running → done for a clean job and
     accept → running → retrying → requeued → running → done for a
     flaky one; replay after drain finds nothing pending. *)
  with_journal (fun path ->
      let journal = Jr.open_append path in
      let config = { S.default_config with S.retry_backoff_s = 0. } in
      let server, records = collecting_server ~config ~journal () in
      let source = decay "1.0" "2.0" in
      ignore (S.submit server { Job.default with Job.id = "clean"; source });
      ignore
        (S.submit server
           { Job.default with
             Job.id = "flaky"; source; retries = 1;
             chaos =
               Some { Job.kind = `Nan; task = 0; round = 1; count = 64; attempts = 1 } });
      ignore (S.drain server);
      let rs = records () in
      Alcotest.(check (option string)) "clean ok" (Some "ok")
        (status_of rs "clean");
      Alcotest.(check (option string)) "flaky converged" (Some "ok")
        (status_of rs "flaky");
      (match Jr.replay path with
      | Error e -> Alcotest.fail e
      | Ok r ->
          Alcotest.(check int) "both accepted" 2 r.Jr.accepted;
          Alcotest.(check int) "both completed" 2 r.Jr.completed;
          Alcotest.(check bool) "nothing pending after drain" true
            (r.Jr.pending = []));
      let raw = read_file path in
      let has s =
        let n = String.length s and m = String.length raw in
        let rec scan i = i + n <= m && (String.sub raw i n = s || scan (i + 1)) in
        scan 0
      in
      List.iter
        (fun (what, fragment) ->
          Alcotest.(check bool) what true (has fragment))
        [
          ("retry transition journaled", {|"state":"retrying"|});
          ("re-enqueue journaled", {|"state":"requeued"|});
          ("second attempt journaled", {|"attempt":2|});
          ("terminal status journaled", {|"status":"ok"|});
        ])

let test_server_crash_recovery_bitwise () =
  (* The recovery contract end to end: a journal holding an accept with
     no terminal is replayed into a fresh server, runs exactly once and
     streams the same bytes a clean run streams. *)
  let spec = { (jspec "r1") with Job.chunk = 150 } in
  let job_records rs =
    List.filter_map
      (fun r ->
        match (str_field r "type", str_field r "job") with
        | Some ("chunk" | "status"), Some "r1" -> Some (J.to_string r)
        | _ -> None)
      rs
  in
  (* clean reference run, no journal *)
  let clean_server, clean_records = collecting_server () in
  ignore (S.submit clean_server spec);
  ignore (S.drain clean_server);
  let reference = job_records (clean_records ()) in
  Alcotest.(check int) "reference streamed chunks and a status" 4
    (List.length reference);
  with_journal (fun path ->
      (* simulate the crash: accept journaled, process died before any
         state transition *)
      let j = Jr.open_append path in
      ignore (Jr.record_accept j spec);
      Jr.close j;
      let replay =
        match Jr.replay path with Ok r -> r | Error e -> Alcotest.fail e
      in
      Alcotest.(check bool) "crashed job pending" true
        (replay.Jr.pending = [ spec ]);
      (* restart: same journal file, recover, drain *)
      let journal = Jr.open_append path in
      let server, records = collecting_server ~journal () in
      Alcotest.(check int) "one job recovered" 1 (S.recover server replay);
      ignore (S.drain server);
      let rs = records () in
      Alcotest.(check (option string)) "recovered job completed" (Some "ok")
        (status_of rs "r1");
      Alcotest.(check int) "exactly one terminal status" 1
        (List.length (List.filter (fun (id, _) -> id = "r1") (statuses rs)));
      Alcotest.(check (list string)) "recovered stream bitwise equal"
        reference (job_records rs);
      Alcotest.(check int) "stats.recovered" 1 (S.stats server).S.recovered;
      (* a second replay of the same journal finds nothing to redo *)
      match Jr.replay path with
      | Error e -> Alcotest.fail e
      | Ok r ->
          Alcotest.(check bool) "journal now complete" true
            (r.Jr.pending = [] && r.Jr.completed = 1 && r.Jr.accepted = 1))

(* ---------- retry / backoff ---------- *)

let retry_config = { S.default_config with S.retry_backoff_s = 0. }

let status_record rs id =
  List.find
    (fun r -> str_field r "type" = Some "status" && str_field r "job" = Some id)
    rs

let test_server_retry_converges_bitwise () =
  (* Chaos on attempt 1 only: the retry runs clean, the job converges
     to ok on attempt 2 and its final state matches an undisturbed
     run of the same model bit for bit. *)
  let server, records = collecting_server ~config:retry_config () in
  let source = decay "1.0" "2.0" in
  ignore
    (S.submit server
       { Job.default with
         Job.id = "flaky"; source; retries = 1;
         chaos =
           Some { Job.kind = `Nan; task = 0; round = 1; count = 64; attempts = 1 } });
  ignore (S.submit server { Job.default with Job.id = "witness"; source });
  ignore (S.drain server);
  let rs = records () in
  Alcotest.(check (option string)) "flaky converged" (Some "ok")
    (status_of rs "flaky");
  let flaky = status_record rs "flaky" in
  Alcotest.(check (option int)) "succeeded on attempt 2" (Some 2)
    (int_field flaky "attempts");
  let retries =
    List.filter (fun r -> str_field r "type" = Some "retry") rs
  in
  Alcotest.(check int) "one retry record emitted" 1 (List.length retries);
  (match retries with
  | [ r ] ->
      Alcotest.(check (option string)) "retry names the job" (Some "flaky")
        (str_field r "job");
      Alcotest.(check (option int)) "retry names the attempt" (Some 1)
        (int_field r "attempt")
  | _ -> ());
  Alcotest.(check bool) "retried final bitwise equals clean final" true
    (J.member flaky "final" = J.member (status_record rs "witness") "final");
  Alcotest.(check bool) "witness has no attempts field" true
    (int_field (status_record rs "witness") "attempts" = None);
  Alcotest.(check int) "stats.retried" 1 (S.stats server).S.retried

let test_server_retry_budget_exhausted () =
  (* Chaos on every attempt: retries stop at the budget, the job fails
     terminally with the full attempt count on record. *)
  let server, records = collecting_server ~config:retry_config () in
  let source = decay "1.0" "1.0" in
  ignore
    (S.submit server
       { Job.default with
         Job.id = "doomed"; source; retries = 2;
         chaos =
           Some { Job.kind = `Nan; task = 0; round = 1; count = 64; attempts = 0 } });
  (* a model error is not transient: never retried whatever the budget *)
  ignore
    (S.submit server
       { Job.default with Job.id = "bad"; source = "not a model"; retries = 3 });
  ignore (S.drain server);
  let rs = records () in
  Alcotest.(check (option string)) "budget exhausted fails terminally"
    (Some "solver_failure")
    (status_of rs "doomed");
  Alcotest.(check (option int)) "all three attempts on record" (Some 3)
    (int_field (status_record rs "doomed") "attempts");
  Alcotest.(check int) "exactly one terminal status" 1
    (List.length (List.filter (fun (id, _) -> id = "doomed") (statuses rs)));
  Alcotest.(check (option string)) "model error terminal immediately"
    (Some "model_error")
    (status_of rs "bad");
  Alcotest.(check bool) "model error never retried" true
    (int_field (status_record rs "bad") "attempts" = None);
  Alcotest.(check int) "stats.retried counts both transitions" 2
    (S.stats server).S.retried

(* ---------- result cache ---------- *)

let test_result_cache_unit () =
  (* LRU over abstract values, plus the key discipline: float inputs
     enter the key as IEEE bit patterns, so nearby-but-distinct values
     never collide. *)
  let c = RC.create 2 in
  let k1 = RC.key ~source_key:"s" ~solver:(Job.Rk4 (Some 0.1)) ~tend:1.0 in
  let k2 =
    RC.key ~source_key:"s" ~solver:(Job.Rk4 (Some 0.1000000000000001)) ~tend:1.0
  in
  let k3 = RC.key ~source_key:"s" ~solver:Job.Rkf45 ~tend:1.0 in
  Alcotest.(check bool) "nearby step sizes get distinct keys" true (k1 <> k2);
  Alcotest.(check bool) "solvers get distinct keys" true (k1 <> k3);
  Alcotest.(check string) "keys are deterministic" k1
    (RC.key ~source_key:"s" ~solver:(Job.Rk4 (Some 0.1)) ~tend:1.0);
  RC.store c k1 1;
  RC.store c k2 2;
  Alcotest.(check (option int)) "hit" (Some 1) (RC.lookup c k1);
  RC.store c k3 3 (* k2 is now least-recent: evicted *);
  Alcotest.(check (option int)) "evicted" None (RC.lookup c k2);
  Alcotest.(check (option int)) "survivor" (Some 1) (RC.lookup c k1);
  let hits, misses, entries = RC.stats c in
  Alcotest.(check int) "hits" 2 hits;
  Alcotest.(check int) "misses" 1 misses;
  Alcotest.(check int) "entries" 2 entries;
  (* capacity 0 disables without counting *)
  let off = RC.create 0 in
  RC.store off k1 1;
  Alcotest.(check (option int)) "disabled never hits" None (RC.lookup off k1);
  Alcotest.(check bool) "disabled counts nothing" true
    (RC.stats off = (0, 0, 0))

let test_server_result_cache_hit_bitwise () =
  (* Two identical jobs: the second is answered from the result cache —
     witnessed by the status field and the hit counter — and streams
     exactly the bytes the first streamed.  A different tend misses. *)
  let config = { S.default_config with S.result_cache_capacity = 4 } in
  let server, records = collecting_server ~config () in
  let source = decay "1.0" "2.0" in
  let mk id = { Job.default with Job.id = id; source; chunk = 150 } in
  ignore (S.submit server (mk "c1"));
  ignore (S.drain server);
  let rs1 = records () in
  Alcotest.(check (option string)) "first computed" (Some "ok")
    (status_of rs1 "c1");
  Alcotest.(check bool) "first is not a cache hit" true
    (str_field (status_record rs1 "c1") "result_cache" = None);
  let server2, records2 = collecting_server ~config () in
  ignore (S.submit server2 (mk "c1"));
  ignore (S.submit server2 (mk "c2"));
  ignore (S.submit server2 { (mk "c3") with Job.tend = 0.5 });
  ignore (S.drain server2);
  let rs = records2 () in
  List.iter
    (fun id ->
      Alcotest.(check (option string)) (id ^ " ok") (Some "ok")
        (status_of rs id))
    [ "c1"; "c2"; "c3" ];
  Alcotest.(check (option string)) "second job answered from cache"
    (Some "hit")
    (str_field (status_record rs "c2") "result_cache");
  Alcotest.(check bool) "different tend misses" true
    (str_field (status_record rs "c3") "result_cache" = None);
  let hits, misses, entries = S.result_cache_stats server2 in
  Alcotest.(check int) "one hit" 1 hits;
  Alcotest.(check int) "two misses" 2 misses;
  Alcotest.(check int) "two entries" 2 entries;
  let stream id =
    List.filter_map
      (fun r ->
        match (str_field r "type", str_field r "job") with
        | Some "chunk", Some j when j = id ->
            Option.map J.to_string (J.member r "rows")
        | Some "status", Some j when j = id ->
            Option.map J.to_string (J.member r "final")
        | _ -> None)
      rs
  in
  Alcotest.(check (list string)) "hit streams the computed bytes"
    (stream "c1") (stream "c2")

let () =
  Alcotest.run "om_serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "float printing" `Quick test_json_floats;
          Alcotest.test_case "parse errors" `Quick test_json_errors;
        ] );
      ( "job",
        [
          Alcotest.test_case "defaults" `Quick test_job_defaults;
          Alcotest.test_case "decode errors" `Quick test_job_decode_errors;
          Alcotest.test_case "chaos plan" `Quick test_job_chaos_plan;
        ] );
      ( "queue",
        [
          Alcotest.test_case "priority order" `Quick test_queue_priority_order;
          Alcotest.test_case "bounded rejection" `Quick
            test_queue_bounded_rejection;
          Alcotest.test_case "close semantics" `Quick test_queue_close;
          Alcotest.test_case "concurrent consumers" `Quick
            test_queue_concurrent_consumers;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit skips compile, bitwise identical" `Quick
            test_cache_hit_skips_compile_bitwise;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "capacity zero" `Quick
            test_cache_capacity_zero_never_stores;
        ] );
      ( "server",
        [
          Alcotest.test_case "tenants share artifact, no leakage" `Quick
            test_server_tenants_share_artifact_no_leakage;
          Alcotest.test_case "chaos fails job not server" `Quick
            test_server_chaos_fails_job_not_server;
          Alcotest.test_case "chaos recovers bitwise" `Quick
            test_server_chaos_recovers_bitwise;
          Alcotest.test_case "deadline exceeded" `Quick
            test_server_deadline_exceeded;
          Alcotest.test_case "cancel" `Quick test_server_cancel;
          Alcotest.test_case "model error and invalid" `Quick
            test_server_model_error_and_invalid;
          Alcotest.test_case "chunk stream" `Quick test_server_chunk_stream;
          Alcotest.test_case "overload rejection" `Quick
            test_server_rejection_overload;
          Alcotest.test_case "summary counts" `Quick
            test_server_summary_counts;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "clone_scratch concurrent execution" `Quick
            test_clone_scratch_concurrent_execution;
          Alcotest.test_case "compile off-lock, single-flight" `Quick
            test_cache_compile_off_lock_single_flight;
          Alcotest.test_case "duplicate in-flight id refused" `Quick
            test_server_duplicate_id;
          Alcotest.test_case "drain idempotent" `Quick
            test_server_drain_idempotent;
          Alcotest.test_case "per-job sink routing" `Quick
            test_server_per_job_sink_routing;
          Alcotest.test_case "two executors overlap on one model" `Quick
            test_server_executors_overlap_same_model;
          Alcotest.test_case "bitwise identity across executor counts" `Quick
            test_server_bitwise_across_executor_counts;
        ] );
      ( "admission",
        [
          Alcotest.test_case "deadline ordering" `Quick
            test_queue_deadline_ordering;
          Alcotest.test_case "tenant queued quota" `Quick
            test_queue_tenant_queued_quota;
          Alcotest.test_case "tenant running quota" `Quick
            test_queue_tenant_running_quota;
          Alcotest.test_case "server tenant quota" `Quick
            test_server_tenant_quota;
          Alcotest.test_case "deadline-aware shedding" `Quick
            test_server_deadline_shed;
        ] );
      ( "journal",
        [
          Alcotest.test_case "replay roundtrip" `Quick
            test_journal_replay_roundtrip;
          Alcotest.test_case "torn tail ignored" `Quick
            test_journal_torn_tail_ignored;
          Alcotest.test_case "malformed rejected" `Quick
            test_journal_malformed_rejected;
          Alcotest.test_case "journaled server lifecycle" `Quick
            test_server_journal_lifecycle;
          Alcotest.test_case "crash recovery bitwise" `Quick
            test_server_crash_recovery_bitwise;
        ] );
      ( "retry",
        [
          Alcotest.test_case "converges bitwise" `Quick
            test_server_retry_converges_bitwise;
          Alcotest.test_case "budget exhausted" `Quick
            test_server_retry_budget_exhausted;
        ] );
      ( "results",
        [
          Alcotest.test_case "lru and key discipline" `Quick
            test_result_cache_unit;
          Alcotest.test_case "hit bitwise, counters" `Quick
            test_server_result_cache_hit_bitwise;
        ] );
    ]
