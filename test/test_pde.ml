(* Tests for the PDE extension: grids, method-of-lines discretisation,
   analytic decay rates, conservation, and integration with the code
   generation pipeline. *)

module G = Om_pde.Grid
module Dz = Om_pde.Discretize
module Fm = Om_lang.Flat_model
module E = Om_expr.Expr

(* ---------- grid ---------- *)

let test_grid_1d () =
  let g = G.make_1d ~n:11 ~length:2. in
  Alcotest.(check (float 1e-12)) "spacing" 0.2 g.h;
  Alcotest.(check (float 1e-12)) "x of 5" 1. (G.x_of g 5);
  Alcotest.(check string) "node name" "u[3]" (G.node_1d "u" 3);
  Alcotest.(check int) "interior count" 9 (List.length (G.interior_1d g))

let test_grid_1d_invalid () =
  Alcotest.check_raises "too small"
    (Invalid_argument "Grid.make_1d: need at least 3 nodes") (fun () ->
      ignore (G.make_1d ~n:2 ~length:1.))

let test_grid_2d () =
  let g = G.make_2d ~nx:5 ~ny:9 ~lx:1. ~ly:2. in
  Alcotest.(check (float 1e-12)) "hx" 0.25 g.hx;
  Alcotest.(check (float 1e-12)) "hy" 0.25 g.hy;
  Alcotest.(check string) "node name" "u[2,5]" (G.node_2d "u" 2 5);
  Alcotest.(check int) "interior" (3 * 7) (List.length (G.interior_2d g))

(* ---------- discretisation structure ---------- *)

let test_heat_structure () =
  let m = Dz.heat_1d ~n:11 () in
  (* Dirichlet ends: 9 interior states. *)
  Alcotest.(check int) "9 states" 9 (Fm.dim m);
  Om_lang.Typecheck.check m;
  (* Tridiagonal coupling: each interior equation references at most 3
     states. *)
  List.iter
    (fun (_, rhs) ->
      Alcotest.(check bool) "banded" true (List.length (E.vars rhs) <= 3))
    m.equations

let test_neumann_keeps_boundary_state () =
  let spec =
    {
      Dz.name = "neumann";
      field = "u";
      grid = G.make_1d ~n:5 ~length:1.;
      initial = (fun _ -> 1.);
      rhs = (fun ~u:_ ~ux:_ ~uxx ~x:_ -> uxx);
      left = Dz.Neumann 0.;
      right = Dz.Dirichlet 0.;
    }
  in
  let m = Dz.discretize_1d spec in
  (* Nodes 0..3 are states (4); node 4 is Dirichlet. *)
  Alcotest.(check int) "4 states" 4 (Fm.dim m);
  Alcotest.(check bool) "u[0] is a state" true
    (List.mem_assoc "u[0]" m.states)

let test_heat_2d_structure () =
  let m = Dz.heat_2d ~nx:7 ~ny:7 () in
  Alcotest.(check int) "interior grid" 25 (Fm.dim m);
  Om_lang.Typecheck.check m;
  (* 5-point stencil. *)
  List.iter
    (fun (_, rhs) ->
      Alcotest.(check bool) "5-point" true (List.length (E.vars rhs) <= 5))
    m.equations

(* ---------- analytic validation ---------- *)

(* Heat equation fundamental mode decays as exp(-alpha (pi/L)^2 t). *)
let test_heat_decay_rate () =
  let alpha = 0.1 and length = 1. in
  let m = Dz.heat_1d ~n:41 ~length ~alpha () in
  let sys = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false m.equations in
  let y0 = Fm.initial_values m in
  let tend = 0.5 in
  let tr = Om_ode.Rk.rkf45 ~atol:1e-9 ~rtol:1e-9 sys ~t0:0. ~y0 ~tend in
  let yf = Om_ode.Odesys.final_state tr in
  let mid = Fm.dim m / 2 in
  let expected =
    y0.(mid) *. Float.exp (Float.neg alpha *. (Float.pi /. length) ** 2. *. tend)
  in
  Alcotest.(check (float 1e-3)) "fundamental mode decay" expected yf.(mid)

let test_heat_maximum_principle () =
  (* Solution must stay within the initial bounds (no over/undershoot). *)
  let m = Dz.heat_1d ~n:21 () in
  let sys = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false m.equations in
  let y0 = Fm.initial_values m in
  let tr = Om_ode.Rk.rkf45 sys ~t0:0. ~y0 ~tend:1. in
  Array.iter
    (fun y ->
      Array.iter
        (fun v ->
          Alcotest.(check bool) "bounded" true (v >= -1e-9 && v <= 1. +. 1e-9))
        y)
    tr.states

let test_advection_moves_pulse () =
  let m = Dz.advection_diffusion_1d ~n:81 ~speed:1. ~alpha:0.002 () in
  let sys = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false m.equations in
  let y0 = Fm.initial_values m in
  let tr = Om_ode.Rk.rkf45 sys ~t0:0. ~y0 ~tend:0.25 in
  let yf = Om_ode.Odesys.final_state tr in
  let peak a =
    let best = ref 0 in
    Array.iteri (fun i v -> if v > a.(!best) then best := i) a;
    !best
  in
  (* The pulse starts at x = 0.25 and travels at unit speed for 0.25:
     peak should move from node ~20 to node ~40 of 79. *)
  let p0 = peak y0 and p1 = peak yf in
  Alcotest.(check bool) "moved right" true (p1 > p0 + 10);
  Alcotest.(check bool) "roughly half way" true (abs (p1 - 40) <= 4)

let test_burgers_steepens_and_dissipates () =
  let m = Dz.burgers_1d ~n:81 ~nu:0.02 () in
  let sys = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false m.equations in
  let y0 = Fm.initial_values m in
  let r = Om_ode.Lsoda.integrate sys ~t0:0. ~y0 ~tend:0.5 in
  let yf = Om_ode.Odesys.final_state r.trajectory in
  Alcotest.(check bool) "finite" true (Array.for_all Float.is_finite yf);
  let energy a = Array.fold_left (fun acc v -> acc +. (v *. v)) 0. a in
  Alcotest.(check bool) "viscosity dissipates energy" true
    (energy yf < energy y0)

let test_heat_2d_decay () =
  let alpha = 0.1 in
  let m = Dz.heat_2d ~nx:13 ~ny:13 ~alpha () in
  let sys = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false m.equations in
  let y0 = Fm.initial_values m in
  let tend = 0.2 in
  let tr = Om_ode.Rk.rkf45 ~atol:1e-9 ~rtol:1e-9 sys ~t0:0. ~y0 ~tend in
  let yf = Om_ode.Odesys.final_state tr in
  (* Fundamental 2D mode decays at rate alpha * 2 pi^2. *)
  let mid =
    match Array.find_index (fun n -> n = "u[6,6]") sys.names with
    | Some i -> i
    | None -> Alcotest.fail "missing centre node"
  in
  let expected =
    y0.(mid) *. Float.exp (Float.neg alpha *. 2. *. (Float.pi ** 2.) *. tend)
  in
  Alcotest.(check (float 5e-3)) "2D mode decay" expected yf.(mid)

(* ---------- pipeline integration ---------- *)

let test_pde_through_codegen () =
  let m = Dz.heat_1d ~n:21 () in
  let r = Om_codegen.Pipeline.compile m in
  (* The generated code must agree with direct evaluation. *)
  let sys = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false m.equations in
  let y0 = Fm.initial_values m in
  let d1 = Om_ode.Odesys.rhs sys 0. y0 in
  let d2 = Array.make (Fm.dim m) 0. in
  Om_codegen.Pipeline.rhs_fn r 0. y0 d2;
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-12)) (string_of_int i) v d2.(i))
    d1

let test_pde_scc_structure () =
  (* Diffusion couples every interior node: one big SCC. *)
  let m = Dz.heat_1d ~n:21 () in
  let a = Om_codegen.Pipeline.analyse m in
  Alcotest.(check int) "single SCC" 1 a.comps.count

let test_pde_jacobian_banded () =
  let m = Dz.heat_1d ~n:41 () in
  let jg = Om_codegen.Jacobian_gen.generate m in
  (* Tridiagonal: about 3 nonzeros per row. *)
  let dim = Fm.dim m in
  Alcotest.(check int) "tridiagonal count" ((3 * dim) - 2)
    (Om_codegen.Jacobian_gen.nonzero_count jg)

let test_pde_parallelises () =
  (* A 200-node PDE system has plenty of equation-level parallelism on
     the low-latency machine. *)
  let m = Dz.advection_diffusion_1d ~n:201 () in
  let r = Om_codegen.Pipeline.compile m in
  let sp =
    Objectmath.Runtime.speedup
      ~machine:(Om_machine.Machine.ideal 16) ~nworkers:8 r
  in
  Alcotest.(check bool) "near-linear on ideal machine" true (sp > 6.)

(* ---------- wave equation ---------- *)

let test_wave_structure () =
  let m = Dz.wave_1d ~n:11 () in
  (* 9 interior nodes x (displacement + velocity). *)
  Alcotest.(check int) "18 states" 18 (Fm.dim m);
  Om_lang.Typecheck.check m

let test_wave_standing_period () =
  (* A standing sine wave with c = 1 on length 1 has period 2: at t = 1
     the displacement is inverted, at t = 2 restored. *)
  let m = Dz.wave_1d ~n:41 ~speed:1. ~length:1. () in
  let sys = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false m.equations in
  let y0 = Fm.initial_values m in
  let tr = Om_ode.Rk.rkf45 ~atol:1e-9 ~rtol:1e-9 sys ~t0:0. ~y0 ~tend:2. in
  let at_t t =
    (Om_ode.Odesys.sample tr ~times:[| t |]).(0)
  in
  let idx name =
    match Array.find_index (fun n -> n = name) sys.names with
    | Some i -> i
    | None -> Alcotest.fail ("missing " ^ name)
  in
  let mid = idx "u[20]" in
  let half = at_t 1. and full = at_t 2. in
  Alcotest.(check (float 2e-2)) "inverted at half period"
    (Float.neg y0.(mid)) half.(mid);
  Alcotest.(check (float 2e-2)) "restored at full period" y0.(mid)
    full.(mid)

let test_wave_energy_conserved () =
  (* Semi-discrete wave energy E = sum v^2/2 + c^2 (du/dx)^2/2 is
     conserved up to integration error. *)
  let m = Dz.wave_1d ~n:31 () in
  let sys = Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false m.equations in
  let y0 = Fm.initial_values m in
  let tr = Om_ode.Rk.rkf45 ~atol:1e-10 ~rtol:1e-10 sys ~t0:0. ~y0 ~tend:1.5 in
  let energy y =
    (* States interleave u[i], v[i] in grid order. *)
    let n2 = Array.length y / 2 in
    let u = Array.init n2 (fun k -> y.(2 * k)) in
    let v = Array.init n2 (fun k -> y.((2 * k) + 1)) in
    let h = 1. /. 30. in
    let e = ref 0. in
    Array.iter (fun vi -> e := !e +. (0.5 *. vi *. vi *. h)) v;
    (* Gradient terms, including the two boundary segments to the fixed
       (zero) ends — without them the discrete energy is not invariant. *)
    let du0 = u.(0) /. h and dun = Float.neg u.(n2 - 1) /. h in
    e := !e +. (0.5 *. du0 *. du0 *. h) +. (0.5 *. dun *. dun *. h);
    for k = 0 to n2 - 2 do
      let du = (u.(k + 1) -. u.(k)) /. h in
      e := !e +. (0.5 *. du *. du *. h)
    done;
    !e
  in
  let e0 = energy y0 and e1 = energy (Om_ode.Odesys.final_state tr) in
  Alcotest.(check bool) "energy drift below 1%" true
    (Float.abs (e1 -. e0) /. e0 < 0.01)

(* ---------- stiff PDE with banded Newton ---------- *)

let test_bdf_banded_matches_dense () =
  let m = Dz.heat_1d ~n:31 () in
  let y0 = Fm.initial_values m in
  let run ?banded () =
    let sys = Om_codegen.Jacobian_gen.to_odesys m in
    Om_ode.Odesys.final_state
      (Om_ode.Bdf.integrate ~order:2 ?banded sys ~t0:0. ~y0 ~tend:0.1
         ~h:2e-3)
  in
  let dense = run () in
  let jg = Om_codegen.Jacobian_gen.generate m in
  let band = Om_ode.Banded.bandwidth_of_jacobian jg.entries in
  Alcotest.(check (pair int int)) "tridiagonal" (1, 1) band;
  let banded = run ~banded:band () in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-10)) (string_of_int i) v banded.(i))
    dense

let test_bdf_banded_heat_accuracy () =
  (* Stiff integration of the heat equation with the generated banded
     Jacobian still matches the analytic mode decay. *)
  let alpha = 0.1 in
  let m = Dz.heat_1d ~n:31 ~alpha () in
  let sys = Om_codegen.Jacobian_gen.to_odesys m in
  let y0 = Fm.initial_values m in
  let tend = 0.5 in
  let tr =
    Om_ode.Bdf.integrate ~order:2 ~banded:(1, 1) sys ~t0:0. ~y0 ~tend
      ~h:1e-3
  in
  let yf = Om_ode.Odesys.final_state tr in
  let mid = Fm.dim m / 2 in
  let expected =
    y0.(mid) *. Float.exp (Float.neg alpha *. (Float.pi ** 2.) *. tend)
  in
  Alcotest.(check (float 2e-3)) "decay with banded Newton" expected yf.(mid)

let () =
  Alcotest.run "om_pde"
    [
      ( "grid",
        [
          Alcotest.test_case "1d" `Quick test_grid_1d;
          Alcotest.test_case "1d invalid" `Quick test_grid_1d_invalid;
          Alcotest.test_case "2d" `Quick test_grid_2d;
        ] );
      ( "structure",
        [
          Alcotest.test_case "heat tridiagonal" `Quick test_heat_structure;
          Alcotest.test_case "neumann boundary" `Quick
            test_neumann_keeps_boundary_state;
          Alcotest.test_case "2d five-point" `Quick test_heat_2d_structure;
        ] );
      ( "physics",
        [
          Alcotest.test_case "heat decay rate" `Quick test_heat_decay_rate;
          Alcotest.test_case "maximum principle" `Quick
            test_heat_maximum_principle;
          Alcotest.test_case "advection transport" `Quick
            test_advection_moves_pulse;
          Alcotest.test_case "burgers dissipation" `Slow
            test_burgers_steepens_and_dissipates;
          Alcotest.test_case "2d heat decay" `Slow test_heat_2d_decay;
        ] );
      ( "wave",
        [
          Alcotest.test_case "structure" `Quick test_wave_structure;
          Alcotest.test_case "standing-wave period" `Quick
            test_wave_standing_period;
          Alcotest.test_case "energy conservation" `Quick
            test_wave_energy_conserved;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "codegen equivalence" `Quick
            test_pde_through_codegen;
          Alcotest.test_case "SCC structure" `Quick test_pde_scc_structure;
          Alcotest.test_case "banded jacobian" `Quick test_pde_jacobian_banded;
          Alcotest.test_case "parallelises" `Quick test_pde_parallelises;
          Alcotest.test_case "banded BDF matches dense" `Quick
            test_bdf_banded_matches_dense;
          Alcotest.test_case "banded BDF accuracy" `Quick
            test_bdf_banded_heat_accuracy;
        ] );
    ]
