The compiler CLI end to end, on stable deterministic outputs.

Analysis of the servo model (paper-style SCC report):

  $ omc analyze --model servo
  model Servo: 14 equations, 8 SCCs (6 nontrivial)
    SCC  0 (1): S[1].sensor.Value
    SCC  1 (2): S[1].load.Speed, S[1].load.Angle
    SCC  2 (1): S[1].angle.Value
    SCC  3 (3): S[1].ctrl.IPart, S[1].motor.Current, S[1].motor.Speed
    SCC  4 (1): S[2].sensor.Value
    SCC  5 (2): S[2].load.Speed, S[2].load.Angle
    SCC  6 (1): S[2].angle.Value
    SCC  7 (3): S[2].ctrl.IPart, S[2].motor.Current, S[2].motor.Speed
  condensation: 4 layers (critical path)
  max equation-system-level speedup: 2.00
  isolated states:   (none)
  driven inputs:     (none)
  pure observers:    S[1].sensor.Value, S[2].sensor.Value
  largest SCC share: 21%

The structure browser (paper figure 5):

  $ omc browse --model bearing2d
  inheritance hierarchy:
  SpinningElement
    Body
      Roller  <- instances: W[1..10]
      Ring
        InnerRing  <- instances: Inner
  
  composition structure:
  Inner : InnerRing
  W[1..10] : Roller

A model file written by hand, flattened:

  $ cat > pendulum.om <<'MODEL'
  > model Pendulum;
  > class P
  >   parameter g = 9.81;
  >   variable theta init 0.5;
  >   variable omega;
  >   equation der(theta) = omega;
  >   equation der(omega) = 0.0 - g * sin(theta);
  > end;
  > instance p of P;
  > MODEL
  $ omc flatten pendulum.om
  model Pendulum: 2 state variables
    p.theta                      init 0.5
    p.omega                      init 0
    der(p.theta) = p.omega
    der(p.omega) = (-9.81)*sin(p.theta)

Syntax errors carry positions:

  $ cat > broken.om <<'MODEL'
  > model B;
  > class C
  >   parameter = 3;
  > end;
  > MODEL
  $ omc flatten broken.om
  omc: syntax error at 3:13: expected an identifier but found '='
  [1]

Semantic errors are typed too:

  $ cat > loop.om <<'MODEL'
  > model L;
  > class C
  >   variable x;
  >   alias a = b;
  >   alias b = a;
  >   equation der(x) = a;
  > end;
  > instance c of C;
  > MODEL
  $ omc flatten loop.om
  omc: semantic error: algebraic loop among parameters/aliases (c.a -> c.b)
  [1]

Deterministic simulation with the fixed-step solver:

  $ omc simulate pendulum.om --solver rk4 --step 0.25 --tend 0.5 --csv
  simulated Pendulum to t=0.5: 2 steps, 8 RHS calls, 0 Jacobians
  t,p.theta,p.omega
  0,0.5,0
  0.25,0.359743,-1.06742
  0.5,0.0164602,-1.5448

Code generation emits all four backends:

  $ omc compile pendulum.om -o gen | grep wrote
  wrote gen_parallel.f90
  wrote gen_parallel.c
  wrote gen_jacobian.f90
  wrote gen.m

Start values override the model without re-elaboration (paper section 3.2):

  $ cat > start.txt <<'VALUES'
  > # state value
  > p.theta 0.1
  > VALUES
  $ omc simulate pendulum.om --solver rk4 --step 0.25 --tend 0.25 --init start.txt --csv
  simulated Pendulum to t=0.25: 1 steps, 4 RHS calls, 0 Jacobians
  t,p.theta,p.omega
  0,0.1,0
  0.25,0.0709519,-0.21992

Unknown states in the start file are rejected:

  $ cat > bad.txt <<'VALUES'
  > nope 1.0
  > VALUES
  $ omc simulate pendulum.om --init bad.txt
  omc: unknown state nope in bad.txt
  [1]

A parameter sweep compiles the model once and integrates every value as
one lockstep ensemble:

  $ omc sweep pendulum.om --class P --param g --values 1,4,9.81,16 --tend 0.5
  sweep P.g over 4 values to t=0.5 (engine: compile-once ensemble)
           value    final p.theta    steps  rhs-calls
               1  4.411663623e-01       11         66
               4  2.776987785e-01       11         66
            9.81  1.466962371e-02       11         66
              16 -1.946569516e-01       13         90

Sweeping a parameter the model does not declare is a model error:

  $ omc sweep pendulum.om --class P --param nope --values 1
  omc: unknown sweep target: parameter nope of class P
  [1]

Seeded Monte Carlo over a parameter distribution is reproducible from
the seed and runs on the same compile-once ensemble engine:

  $ omc ensemble pendulum.om --class P --param g --dist uniform:5,15 \
  >   --samples 8 --seed 11 --tend 0.5 --show-samples
  monte carlo P.g: 8 samples, seed 11, t=0.5 (engine: compile-once ensemble)
  final p.theta: mean  1.052315709e-01, stddev 1.160158576e-01
               g    final p.theta
       11.548872 -5.111345487e-02
        5.403810  2.078103290e-01
        6.767726  1.438411489e-01
        5.836343  1.871082588e-01
        7.763586  9.953338544e-02
       13.564899 -1.204183566e-01
        5.885327  1.847882483e-01
        5.769062  1.903030082e-01

Differential fuzzing checks every strategy pair on random models, fully
reproducible from (seed, case index):

  $ omc fuzz --cases 5 --seed 7
  5 cases: 0 failed, 0 discarded (mean dim 11.0, mean tasks 4.6)

Solver failures exit with a distinct code (3) and a typed message, unlike
model errors (1) and usage errors (2).  A finite-time blowup underflows
the adaptive step:

  $ cat > blowup.om <<'MODEL'
  > model Blowup;
  > class B
  >   variable x init 1.0;
  >   equation der(x) = x * x;
  > end;
  > instance b of B;
  > MODEL
  $ omc simulate blowup.om --solver lsoda --tend 2.0
  omc: solver failure: lsoda step failed at t=0.999941 (h=1.98631e-14) after 0 retries: step size underflow
  [3]

Under the runtime's finite guard the same blowup is caught the moment a
derivative goes non-finite, attributed to its equation, and reported
after the retry budget is exhausted:

  $ omc bench blowup.om --workers 2 --tend 2.0
  omc: solver failure: rk-fixed step failed at t=1.01 (h=3.90625e-05) after 8 retries: non-finite RHS output inf in der(b.x) (state slot 0) at t=1.01
  [3]

An injected transient NaN, by contrast, is masked: the guard catches it,
the solver retries the step (the fault fires once), and the run completes
with the injection recorded in the report:

  $ omc bench --model servo --workers 2 --chaos-nan 0:3
  Servo on SPARCCenter 2000 with 2 workers:
    1603 RHS calls in 0.0769 simulated s -> 20850.7 calls/s
    supervisor messaging: 0.0482 s
    chaos: 1 fault(s) injected, 1 solver retry(ies)
    static speedup vs local evaluation: 1.01x

A worker stalled past the barrier deadline is dropped and its tasks are
reassigned to the survivors (wall-clock numbers elided; OS jitter may
record additional advisory stalls, so only the first drop is checked;
the 100ms stall vs 2ms deadline gives the polling supervisor a wide
window even on a loaded single-core machine):

  $ omc bench --model servo --domains 2 --tend 0.0002 --chaos-stall-worker 0:5 \
  >   --chaos-stall-micros 100000 --barrier-deadline 0.002 > stall.out
  $ grep -o "chaos: 1 fault(s) injected" stall.out
  chaos: 1 fault(s) injected
  $ grep -o "dropped worker 0 -> 1 live worker(s)" stall.out | head -1
  dropped worker 0 -> 1 live worker(s)

A worker domain that fails to spawn degrades the run to fewer domains
before the first round:

  $ omc bench --model servo --domains 2 --tend 0.0002 --chaos-fail-spawn 1 \
  >   | grep -E "chaos:|degradation:"
    chaos: 1 fault(s) injected, 0 solver retry(ies)
    degradation: round 0: dropped worker 1 -> 1 live worker(s) (failed to spawn worker domain 1 of 2: injected spawn failure)

Chaos fuzzing injects one seeded fault per generated model and demands
the recovered 2-domain trajectory stay bitwise identical to the
fault-free reference:

  $ omc fuzz --chaos --cases 5 --seed 7
  5 cases: 0 failed, 0 discarded (mean dim 11.0, mean tasks 4.6)

The serve subcommand turns omc into a long-running NDJSON job service:
jobs stream in on stdin, status records stream out in completion order
(one executor = submission order within a priority).  The second tenant's
byte-identical source is a cache hit (one compile total in the summary),
the chaos job exhausts the retry budget and fails as solver_failure
without taking the server down, and an unparsable model is a model_error
(--no-timings drops wall-clock fields so the output is stable):

  $ omc serve --no-timings <<'EOF'
  > {"id":"cold","tenant":"alice","source":"model M; class C variable x init 2.0; equation der(x) = 0.0 - x; end; instance c of C;"}
  > {"id":"warm","tenant":"bob","source":"model M; class C variable x init 2.0; equation der(x) = 0.0 - x; end; instance c of C;"}
  > {"id":"boom","tenant":"alice","source":"model M; class C variable x init 2.0; equation der(x) = 0.0 - x; end; instance c of C;","chaos":{"kind":"nan","task":0,"round":1,"count":64}}
  > {"id":"after","tenant":"bob","source":"model M; class C variable x init 2.0; equation der(x) = 0.0 - x; end; instance c of C;"}
  > {"id":"bad","tenant":"alice","source":"not a model"}
  > EOF
  {"type":"status","job":"cold","tenant":"alice","status":"ok","steps":400,"rhs_calls":1600,"retries":0,"faults":0,"degradations":0,"final":[0.73575888234312392],"cache":"miss"}
  {"type":"status","job":"warm","tenant":"bob","status":"ok","steps":400,"rhs_calls":1600,"retries":0,"faults":0,"degradations":0,"final":[0.73575888234312392],"cache":"hit"}
  {"type":"status","job":"boom","tenant":"alice","status":"solver_failure","error":"rk-fixed step failed at t=0 (h=1.95313e-05) after 8 retries: non-finite RHS output nan in der(c.x) (state slot 0) at t=0","cache":"hit"}
  {"type":"status","job":"after","tenant":"bob","status":"ok","steps":400,"rhs_calls":1600,"retries":0,"faults":0,"degradations":0,"final":[0.73575888234312392],"cache":"hit"}
  {"type":"status","job":"bad","tenant":"alice","status":"model_error","error":"syntax error at 1:1: expected 'model' but found identifier \"not\"","cache":"none"}
  {"type":"summary","jobs":5,"ok":3,"failed":2,"rejected":0,"cache":{"hits":3,"misses":1,"compiles":1,"evictions":0,"entries":1}}

Streamed trajectories arrive as chunk records before the job's status;
a 401-row rk4 trajectory in 200-row chunks is three records:

  $ omc serve --no-timings <<'EOF' | grep -o '"type":"chunk","job":"s","seq":[0-9]*'
  > {"id":"s","source":"model M; class C variable x init 2.0; equation der(x) = 0.0 - x; end; instance c of C;","chunk":200}
  > EOF
  "type":"chunk","job":"s","seq":0
  "type":"chunk","job":"s","seq":1
  "type":"chunk","job":"s","seq":2

Reusing the id of a job still in flight is refused with an "invalid"
status (accepting it would orphan the running job's cancel token); the
original job is unaffected and the duplicate never reaches the queue
(the first job's 100k-step integration keeps it in flight while the
duplicate line is read):

  $ omc serve --no-timings <<'EOF' | grep -o -e '"job":"d","tenant":"t","status":"[a-z]*"' -e '"jobs":[0-9]*,"ok":[0-9]*,"failed":[0-9]*'
  > {"id":"d","tenant":"t","source":"model M; class C variable x init 2.0; equation der(x) = 0.0 - x; end; instance c of C;","h":0.00001}
  > {"id":"d","tenant":"t","source":"model M; class C variable x init 2.0; equation der(x) = 0.0 - x; end; instance c of C;"}
  > EOF
  "job":"d","tenant":"t","status":"invalid"
  "job":"d","tenant":"t","status":"ok"
  "jobs":1,"ok":1,"failed":0

Socket mode serves connections concurrently against one shared server:
each connection's NDJSON goes through its own writer, jobs from every
connection share the compiled-model cache, the queue and the executor
domains, and a connection's session ends with its own summary whose
cache block is the shared cache (two sessions, one model: one compile):

  $ cat > client.py <<'PY'
  > import socket, sys
  > s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
  > s.connect(sys.argv[1])
  > s.sendall((sys.argv[2] + "\n").encode())
  > s.shutdown(socket.SHUT_WR)
  > buf = b""
  > while True:
  >     d = s.recv(65536)
  >     if not d:
  >         break
  >     buf += d
  > sys.stdout.write(buf.decode())
  > PY
  $ omc serve --socket ./omc.sock --accept 2 --executors 2 --no-timings > server.out &
  $ SERVE_PID=$!
  $ for i in $(seq 50); do [ -S ./omc.sock ] && break; sleep 0.1; done
  $ python3 client.py ./omc.sock '{"id":"c1","tenant":"one","source":"model M; class C variable x init 2.0; equation der(x) = 0.0 - x; end; instance c of C;"}' > conn1.out &
  $ CONN1=$!
  $ python3 client.py ./omc.sock '{"id":"c2","tenant":"two","source":"model M; class C variable x init 2.0; equation der(x) = 0.0 - x; end; instance c of C;"}' > conn2.out &
  $ CONN2=$!
  $ wait $CONN1 $CONN2 $SERVE_PID
  $ grep -h -o '"status":"[a-z]*"' conn1.out conn2.out
  "status":"ok"
  "status":"ok"
  $ grep -h -o '"compiles":[0-9]*' conn1.out conn2.out | sort | tail -1
  "compiles":1

Per-tenant admission control: with --quota-queued 1 and the executor
pinned by the 2M-step job (the one-second pause after its line
guarantees the executor has picked it up before the probes arrive, so
the quota slot is free for q1), tenant t's second queued job is shed
as rejected_quota the moment its line is read, while tenant u is
unaffected; the summary's rejected count includes the quota shed:

  $ { echo '{"id":"slow","tenant":"t","source":"model M; class C variable x init 2.0; equation der(x) = 0.0 - x; end; instance c of C;","h":0.0000005}'; sleep 1; cat; } <<'EOF2' | omc serve --no-timings --quota-queued 1
  > {"id":"q1","tenant":"t","source":"model M; class C variable x init 2.0; equation der(x) = 0.0 - x; end; instance c of C;"}
  > {"id":"q2","tenant":"t","source":"model M; class C variable x init 2.0; equation der(x) = 0.0 - x; end; instance c of C;"}
  > {"id":"u1","tenant":"u","source":"model M; class C variable x init 2.0; equation der(x) = 0.0 - x; end; instance c of C;"}
  > EOF2
  {"type":"status","job":"q2","tenant":"t","status":"rejected_quota","error":"tenant \"t\" is at its queued-job quota"}
  {"type":"status","job":"slow","tenant":"t","status":"ok","steps":2000001,"rhs_calls":8000004,"retries":0,"faults":0,"degradations":0,"final":[0.73575888231545994],"cache":"miss"}
  {"type":"status","job":"q1","tenant":"t","status":"ok","steps":400,"rhs_calls":1600,"retries":0,"faults":0,"degradations":0,"final":[0.73575888234312392],"cache":"hit"}
  {"type":"status","job":"u1","tenant":"u","status":"ok","steps":400,"rhs_calls":1600,"retries":0,"faults":0,"degradations":0,"final":[0.73575888234312392],"cache":"hit"}
  {"type":"summary","jobs":3,"ok":3,"failed":0,"rejected":1,"cache":{"hits":2,"misses":1,"compiles":1,"evictions":0,"entries":1}}

Transient failures retry with exponential backoff: the chaos fault
fires on attempt 1 only, so with --retries 1 the job emits one retry
record, converges to the clean final state on attempt 2 (note the
attempts field and the retried summary count), and the model cache
makes the second attempt free of compilation:

  $ omc serve --no-timings --retries 1 --retry-backoff 0 <<'EOF2'
  > {"id":"flaky","source":"model M; class C variable x init 2.0; equation der(x) = 0.0 - x; end; instance c of C;","chaos":{"kind":"nan","task":0,"round":1,"count":64,"attempts":1}}
  > EOF2
  {"type":"retry","job":"flaky","tenant":"default","attempt":1,"delay_s":0.0,"error":"rk-fixed step failed at t=0 (h=1.95313e-05) after 8 retries: non-finite RHS output nan in der(c.x) (state slot 0) at t=0"}
  {"type":"status","job":"flaky","tenant":"default","status":"ok","steps":400,"rhs_calls":1600,"retries":0,"faults":0,"degradations":0,"final":[0.73575888234312392],"attempts":2,"cache":"hit"}
  {"type":"summary","jobs":1,"ok":1,"failed":0,"rejected":0,"retried":1,"cache":{"hits":1,"misses":1,"compiles":1,"evictions":0,"entries":1}}

The write-ahead journal records accepts and state transitions as
NDJSON; a drained run leaves every job terminal, so restarting on the
same journal recovers nothing (exactly-once, no duplicate execution):

  $ omc serve --no-timings --journal j.ndjson <<'EOF2'
  > {"id":"j1","source":"model M; class C variable x init 2.0; equation der(x) = 0.0 - x; end; instance c of C;"}
  > EOF2
  {"type":"status","job":"j1","tenant":"default","status":"ok","steps":400,"rhs_calls":1600,"retries":0,"faults":0,"degradations":0,"final":[0.73575888234312392],"cache":"miss"}
  {"type":"summary","jobs":1,"ok":1,"failed":0,"rejected":0,"cache":{"hits":0,"misses":1,"compiles":1,"evictions":0,"entries":1}}
  $ grep -o '"rec":"accept","job":{"id":"j1"' j.ndjson
  "rec":"accept","job":{"id":"j1"
  $ grep -c '"state":"done"' j.ndjson
  1
  $ omc serve --no-timings --journal j.ndjson </dev/null
  {"type":"summary","jobs":0,"ok":0,"failed":0,"rejected":0,"cache":{"hits":0,"misses":0,"compiles":0,"evictions":0,"entries":0}}

Crash recovery: a journal holding an accepted job with no terminal
state (the process died first) plus a torn final line (it died
mid-append) replays into exactly one re-run — the fragment is ignored,
the lost job completes with the usual bitwise-stable final state, and
a second restart finds the journal complete:

  $ printf '%s\n' '{"rec":"accept","job":{"id":"lost","source":"model M; class C variable x init 2.0; equation der(x) = 0.0 - x; end; instance c of C;"}}' > crash.ndjson
  $ printf '{"rec":"accept","job":{"id":"torn","sour' >> crash.ndjson
  $ omc serve --no-timings --journal crash.ndjson </dev/null
  {"type":"recovered","jobs":1,"torn_tail":true}
  {"type":"status","job":"lost","tenant":"default","status":"ok","steps":400,"rhs_calls":1600,"retries":0,"faults":0,"degradations":0,"final":[0.73575888234312392],"cache":"miss"}
  {"type":"summary","jobs":1,"ok":1,"failed":0,"rejected":0,"recovered":1,"cache":{"hits":0,"misses":1,"compiles":1,"evictions":0,"entries":1}}
  $ omc serve --no-timings --journal crash.ndjson </dev/null
  {"type":"summary","jobs":0,"ok":0,"failed":0,"rejected":0,"cache":{"hits":0,"misses":0,"compiles":0,"evictions":0,"entries":0}}
