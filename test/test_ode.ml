(* Tests for the ODE stack: dense linear algebra, explicit and implicit
   solvers, convergence orders, Jacobians and the LSODA-style driver. *)

module L = Om_ode.Linalg
module Odesys = Om_ode.Odesys
module Rk = Om_ode.Rk
module Adams = Om_ode.Adams
module Bdf = Om_ode.Bdf
module Lsoda = Om_ode.Lsoda
module Jacobian = Om_ode.Jacobian
module E = Om_expr.Expr

let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ---------- linalg ---------- *)

let test_lu_solve_known () =
  let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = L.solve a [| 5.; 10. |] in
  checkf "x0" 1. x.(0);
  checkf "x1" 3. x.(1)

let test_lu_det () =
  let a = [| [| 2.; 0. |]; [| 0.; 3. |] |] in
  checkf "det" 6. (L.lu_det (L.lu_factor a));
  (* Row swap flips the sign. *)
  let b = [| [| 0.; 3. |]; [| 2.; 0. |] |] in
  checkf "det swapped" (-6.) (L.lu_det (L.lu_factor b))

let test_singular () =
  let a = [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" (L.Singular 1) (fun () ->
      ignore (L.lu_factor a))

let test_inverse () =
  let a = [| [| 4.; 7. |]; [| 2.; 6. |] |] in
  let inv = L.inverse a in
  let prod = L.mat_mul a inv in
  checkf "i00" 1. prod.(0).(0);
  checkf "i01" 0. prod.(0).(1);
  checkf "i10" 0. prod.(1).(0);
  checkf "i11" 1. prod.(1).(1)

let random_system_gen =
  QCheck.Gen.(
    let* n = int_range 1 6 in
    let* entries = array_size (return (n * n)) (float_range (-5.) 5.) in
    let* b = array_size (return n) (float_range (-5.) 5.) in
    return (n, entries, b))

let arbitrary_system =
  QCheck.make
    ~print:(fun (n, _, _) -> Printf.sprintf "n=%d" n)
    random_system_gen

let prop_lu_solve_residual =
  QCheck.Test.make ~name:"LU solve has small residual" ~count:200
    arbitrary_system (fun (n, entries, b) ->
      let a = Array.init n (fun i -> Array.init n (fun j -> entries.((i * n) + j))) in
      (* Diagonal dominance guarantees nonsingularity and conditioning. *)
      for i = 0 to n - 1 do
        a.(i).(i) <- a.(i).(i) +. 20.
      done;
      let x = L.solve a b in
      let r = L.mat_vec a x in
      let err = ref 0. in
      for i = 0 to n - 1 do
        err := Float.max !err (Float.abs (r.(i) -. b.(i)))
      done;
      !err < 1e-8)

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose twice is identity" ~count:100
    arbitrary_system (fun (n, entries, _) ->
      let a = Array.init n (fun i -> Array.init n (fun j -> entries.((i * n) + j))) in
      L.transpose (L.transpose a) = a)

let test_norms () =
  checkf "inf" 3. (L.norm_inf [| 1.; -3.; 2. |]);
  checkf "two" 5. (L.norm2 [| 3.; 4. |]);
  checkf "wrms" 1. (L.wrms_norm [| 2.; 2. |] [| 2.; 2. |])

(* ---------- banded linear algebra ---------- *)

module Banded = Om_ode.Banded

let test_banded_get_set () =
  let b = Banded.create ~n:5 ~ml:1 ~mu:2 in
  Banded.set b 2 3 7.;
  checkf "stored" 7. (Banded.get b 2 3);
  checkf "zero outside band" 0. (Banded.get b 4 0);
  Alcotest.check_raises "set outside band"
    (Invalid_argument "Banded.set: outside the band") (fun () ->
      Banded.set b 4 0 1.)

let test_banded_roundtrip () =
  let dense =
    [| [| 2.; 1.; 0. |]; [| -1.; 3.; 0.5 |]; [| 0.; -2.; 4. |] |]
  in
  let b = Banded.of_dense ~ml:1 ~mu:1 dense in
  Alcotest.(check bool) "to_dense inverse" true (Banded.to_dense b = dense)

let test_banded_of_dense_rejects () =
  let dense = [| [| 1.; 0.; 9. |]; [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |] |] in
  Alcotest.check_raises "outside band"
    (Invalid_argument "Banded.of_dense: entry outside the band") (fun () ->
      ignore (Banded.of_dense ~ml:0 ~mu:1 dense))

let test_banded_mat_vec () =
  let dense = [| [| 2.; 1.; 0. |]; [| -1.; 3.; 0.5 |]; [| 0.; -2.; 4. |] |] in
  let b = Banded.of_dense ~ml:1 ~mu:1 dense in
  let x = [| 1.; 2.; 3. |] in
  let y1 = Banded.mat_vec b x and y2 = L.mat_vec dense x in
  Array.iteri (fun i v -> checkf (string_of_int i) v y1.(i)) y2

let random_banded_gen =
  QCheck.Gen.(
    let* n = int_range 2 15 in
    let* ml = int_range 0 3 in
    let* mu = int_range 0 3 in
    let ml = min ml (n - 1) and mu = min mu (n - 1) in
    let* entries = array_size (return (n * (ml + mu + 1))) (float_range (-3.) 3.) in
    let* b = array_size (return n) (float_range (-5.) 5.) in
    return (n, ml, mu, entries, b))

let arbitrary_banded =
  QCheck.make
    ~print:(fun (n, ml, mu, _, _) -> Printf.sprintf "n=%d ml=%d mu=%d" n ml mu)
    random_banded_gen

let prop_banded_solve_matches_dense =
  QCheck.Test.make ~name:"banded LU matches dense LU" ~count:300
    arbitrary_banded (fun (n, ml, mu, entries, rhs) ->
      let b = Banded.create ~n ~ml ~mu in
      let k = ref 0 in
      for i = 0 to n - 1 do
        for j = max 0 (i - ml) to min (n - 1) (i + mu) do
          Banded.set b i j entries.(!k mod Array.length entries);
          incr k
        done;
        (* Diagonal dominance for conditioning. *)
        Banded.set b i i (Banded.get b i i +. 25.)
      done;
      let dense = Banded.to_dense b in
      let x1 = Banded.lu_solve (Banded.lu_factor b) rhs in
      let x2 = L.solve dense rhs in
      Array.for_all2 (fun a c -> Float.abs (a -. c) < 1e-8) x1 x2)

let prop_banded_residual =
  QCheck.Test.make ~name:"banded LU has small residual" ~count:300
    arbitrary_banded (fun (n, ml, mu, entries, rhs) ->
      let b = Banded.create ~n ~ml ~mu in
      let k = ref 0 in
      for i = 0 to n - 1 do
        for j = max 0 (i - ml) to min (n - 1) (i + mu) do
          Banded.set b i j entries.(!k mod Array.length entries);
          incr k
        done;
        Banded.set b i i (Banded.get b i i +. 25.)
      done;
      let x = Banded.lu_solve (Banded.lu_factor b) rhs in
      let r = Banded.mat_vec b x in
      Array.for_all2 (fun a c -> Float.abs (a -. c) < 1e-8) r rhs)

let test_bandwidth_of_jacobian () =
  let ml, mu = Banded.bandwidth_of_jacobian [ (0, 1, ()); (3, 1, ()); (2, 2, ()) ] in
  Alcotest.(check int) "ml" 2 ml;
  Alcotest.(check int) "mu" 1 mu

(* ---------- fixtures ---------- *)

(* y' = -y, y(0)=1: y(t) = exp(-t). *)
let decay () = Odesys.of_equations [ ("y", E.neg (E.var "y")) ]

(* Circle: x' = y, y' = -x. *)
let circle () =
  Odesys.of_equations [ ("x", E.var "y"); ("y", E.neg (E.var "x")) ]

(* Stiff linear problem: y' = -1000 (y - cos t) - sin t. *)
let stiff_linear () =
  Odesys.of_equations
    [
      ( "y",
        E.(
          sub
            (mul [ const (-1000.); sub (var "y") (cos (var "t")) ])
            (sin (var "t"))) );
    ]

let final solver = Odesys.final_state solver

(* ---------- explicit solvers ---------- *)

let test_euler_decay () =
  let sys = decay () in
  let tr = Rk.integrate_fixed Rk.euler sys ~t0:0. ~y0:[| 1. |] ~tend:1. ~h:1e-4 in
  Alcotest.(check (float 1e-3)) "exp(-1)" (Float.exp (-1.)) (final tr).(0)

let test_rk4_circle () =
  let sys = circle () in
  let tr =
    Rk.integrate_fixed Rk.rk4 sys ~t0:0. ~y0:[| 1.; 0. |]
      ~tend:(2. *. Float.pi) ~h:1e-2
  in
  Alcotest.(check (float 1e-6)) "x back to 1" 1. (final tr).(0);
  Alcotest.(check (float 1e-6)) "y back to 0" 0. (final tr).(1)

(* Convergence order: halving h divides the error by ~2^order. *)
let order_of stepper h =
  let err h =
    let sys = decay () in
    let tr = Rk.integrate_fixed stepper sys ~t0:0. ~y0:[| 1. |] ~tend:1. ~h in
    Float.abs ((final tr).(0) -. Float.exp (-1.))
  in
  Float.log (err h /. err (h /. 2.)) /. Float.log 2.

let test_orders () =
  let o1 = order_of Rk.euler 1e-2 in
  Alcotest.(check bool) "euler ~1" true (o1 > 0.8 && o1 < 1.2);
  let o2 = order_of Rk.heun 1e-2 in
  Alcotest.(check bool) "heun ~2" true (o2 > 1.7 && o2 < 2.3);
  let o4 = order_of Rk.rk4 1e-1 in
  Alcotest.(check bool) "rk4 ~4" true (o4 > 3.5 && o4 < 4.5)

let test_rkf45_tolerance () =
  let sys = circle () in
  let tr =
    Rk.rkf45 ~atol:1e-10 ~rtol:1e-10 sys ~t0:0. ~y0:[| 1.; 0. |]
      ~tend:(2. *. Float.pi)
  in
  Alcotest.(check (float 1e-6)) "tight tolerance" 1. (final tr).(0);
  let sys2 = circle () in
  let _tr2 =
    Rk.rkf45 ~atol:1e-4 ~rtol:1e-4 sys2 ~t0:0. ~y0:[| 1.; 0. |]
      ~tend:(2. *. Float.pi)
  in
  Alcotest.(check bool) "loose tolerance uses fewer steps" true
    (sys2.counters.steps < sys.counters.steps)

let test_rkf45_rejections_counted () =
  let sys = stiff_linear () in
  let _ = Rk.rkf45 sys ~t0:0. ~y0:[| 0. |] ~tend:0.1 in
  Alcotest.(check bool) "some rejections on stiff problem" true
    (sys.counters.rejected >= 0)

(* ---------- adams ---------- *)

let test_adams_orders () =
  (* Error tolerance scales with the method order at h = 1e-3. *)
  List.iter
    (fun (order, tol) ->
      let sys = decay () in
      let tr = Adams.integrate ~order sys ~t0:0. ~y0:[| 1. |] ~tend:1. ~h:1e-3 in
      Alcotest.(check (float tol))
        (Printf.sprintf "order %d" order)
        (Float.exp (-1.))
        (final tr).(0))
    [ (1, 1e-3); (2, 1e-6); (3, 1e-8); (4, 1e-8) ]

let test_adams_rhs_calls_per_step () =
  (* PECE: two RHS calls per step after startup. *)
  let sys = decay () in
  let _ = Adams.integrate ~order:2 sys ~t0:0. ~y0:[| 1. |] ~tend:1. ~h:0.01 in
  let calls_per_step =
    float_of_int sys.counters.rhs_calls /. float_of_int sys.counters.steps
  in
  Alcotest.(check bool) "~2 calls/step" true
    (calls_per_step > 1.8 && calls_per_step < 2.6)

let test_pece_error_estimate () =
  Alcotest.(check (float 1e-12)) "inf norm of gap" 0.5
    (Adams.pece_error_estimate [| 1.; 2. |] [| 1.5; 2.25 |]);
  Alcotest.(check (float 1e-12)) "zero for equal" 0.
    (Adams.pece_error_estimate [| 3. |] [| 3. |])

let test_adams_bad_order () =
  Alcotest.check_raises "order 5" (Invalid_argument "Adams.integrate: order in 1..4")
    (fun () ->
      ignore
        (Adams.integrate ~order:5 (decay ()) ~t0:0. ~y0:[| 1. |] ~tend:1.
           ~h:0.1))

(* ---------- bdf ---------- *)

let test_bdf_decay () =
  List.iter
    (fun order ->
      let sys = decay () in
      let tr = Bdf.integrate ~order sys ~t0:0. ~y0:[| 1. |] ~tend:1. ~h:1e-3 in
      Alcotest.(check (float 1e-3))
        (Printf.sprintf "bdf%d" order)
        (Float.exp (-1.))
        (final tr).(0))
    [ 1; 2; 3 ]

let test_bdf_stiff_stable () =
  (* Implicit method must survive h far above the explicit stability
     limit (2/1000). *)
  let sys = stiff_linear () in
  let tr = Bdf.integrate ~order:2 sys ~t0:0. ~y0:[| 0. |] ~tend:1. ~h:0.01 in
  Alcotest.(check (float 0.05)) "tracks cos t" (Float.cos 1.) (final tr).(0);
  Alcotest.(check bool) "used the Jacobian" true (sys.counters.jac_calls > 0)

let test_bdf_uses_analytic_jacobian () =
  let sys = stiff_linear () in
  Alcotest.(check bool) "jac present" true (sys.jac <> None);
  let before = sys.counters.rhs_calls in
  let j = Jacobian.analytic sys 0. [| 0.5 |] in
  checkf "df/dy" (-1000.) j.(0).(0);
  Alcotest.(check int) "no RHS calls for analytic jac" before
    sys.counters.rhs_calls

let test_numeric_jacobian () =
  let sys = circle () in
  let j = Jacobian.numeric sys 0. [| 0.3; 0.7 |] in
  Alcotest.(check (float 1e-5)) "j01" 1. j.(0).(1);
  Alcotest.(check (float 1e-5)) "j10" (-1.) j.(1).(0);
  Alcotest.(check (float 1e-5)) "j00" 0. j.(0).(0)

(* ---------- rosenbrock ---------- *)

module Ros = Om_ode.Rosenbrock

let test_ros2_decay () =
  let sys = decay () in
  let tr = Ros.integrate sys ~t0:0. ~y0:[| 1. |] ~tend:1. ~h:1e-3 in
  Alcotest.(check (float 1e-6)) "exp(-1)" (Float.exp (-1.)) (final tr).(0)

let test_ros2_order () =
  let err h =
    let sys = decay () in
    let tr = Ros.integrate sys ~t0:0. ~y0:[| 1. |] ~tend:1. ~h in
    Float.abs ((final tr).(0) -. Float.exp (-1.))
  in
  let order = Float.log (err 1e-2 /. err 5e-3) /. Float.log 2. in
  Alcotest.(check bool) "second order" true (order > 1.7 && order < 2.3)

let test_ros2_stiff_stable () =
  (* One linear solve pair per step at h far beyond the explicit limit. *)
  let sys = stiff_linear () in
  let tr = Ros.integrate sys ~t0:0. ~y0:[| 0. |] ~tend:1. ~h:0.01 in
  Alcotest.(check (float 0.05)) "tracks cos t" (Float.cos 1.) (final tr).(0);
  Alcotest.(check bool) "no newton iterations" true
    (sys.counters.newton_iters = 0)

let test_ros2_banded_matches_dense () =
  let sys () =
    Odesys.of_equations
      [
        ("a", E.(sub (var "b") (mul [ const 100.; var "a" ])));
        ("b", E.(sub (var "a") (var "b")));
      ]
  in
  let y0 = [| 1.; 0. |] in
  let d =
    final (Ros.integrate (sys ()) ~t0:0. ~y0 ~tend:0.5 ~h:1e-3)
  in
  let b =
    final (Ros.integrate ~banded:(1, 1) (sys ()) ~t0:0. ~y0 ~tend:0.5 ~h:1e-3)
  in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-12)) (string_of_int i) v b.(i))
    d

(* ---------- lsoda ---------- *)

let test_lsoda_nonstiff_stays_adams () =
  let sys = circle () in
  let r = Lsoda.integrate sys ~t0:0. ~y0:[| 1.; 0. |] ~tend:(2. *. Float.pi) in
  Alcotest.(check bool) "no switch" true (r.switches = []);
  Alcotest.(check (float 1e-3)) "accuracy" 1.
    (Odesys.final_state r.trajectory).(0)

let test_lsoda_switches_on_stiff () =
  let sys = stiff_linear () in
  let r = Lsoda.integrate sys ~t0:0. ~y0:[| 0. |] ~tend:2. in
  Alcotest.(check bool) "switched to BDF" true
    (List.exists (fun (_, m) -> m = Lsoda.Bdf_mode) r.switches);
  Alcotest.(check (float 0.05)) "accuracy" (Float.cos 2.)
    (Odesys.final_state r.trajectory).(0)

let test_lsoda_stiff_beats_pure_adams_on_calls () =
  let sys1 = stiff_linear () in
  let _ = Lsoda.integrate sys1 ~t0:0. ~y0:[| 0. |] ~tend:2. in
  let sys2 = stiff_linear () in
  let _ =
    Lsoda.integrate ~start_mode:Lsoda.Adams_mode ~stiffness_window:1_000_000
      sys2 ~t0:0. ~y0:[| 0. |] ~tend:2.
  in
  (* With switching disabled (huge window) the explicit method needs far
     more RHS evaluations. *)
  Alcotest.(check bool) "lsoda cheaper" true
    (sys1.counters.rhs_calls < sys2.counters.rhs_calls)

let test_lsoda_trajectory_monotone_time () =
  let sys = circle () in
  let r = Lsoda.integrate sys ~t0:0. ~y0:[| 1.; 0. |] ~tend:1. in
  let ts = r.trajectory.ts in
  let ok = ref true in
  for i = 1 to Array.length ts - 1 do
    if ts.(i) <= ts.(i - 1) then ok := false
  done;
  Alcotest.(check bool) "strictly increasing" true !ok;
  Alcotest.(check (float 1e-9)) "ends at tend" 1. ts.(Array.length ts - 1)

(* ---------- events (LSODAR-style root finding) ---------- *)

module Events = Om_ode.Events

let test_event_zero_crossing_time () =
  (* x(t) = cos t crosses zero at pi/2. *)
  let sys = circle () in
  let ev = { Events.label = "x-zero"; g = (fun _ y -> y.(0)) } in
  let r =
    Events.integrate ~atol:1e-10 ~rtol:1e-10 ~events:[ ev ] sys ~t0:0.
      ~y0:[| 1.; 0. |] ~tend:2.
  in
  match Events.crossings r "x-zero" with
  | [ o ] ->
      Alcotest.(check (float 1e-5)) "at pi/2" (Float.pi /. 2.) o.time;
      Alcotest.(check bool) "falling" true (not o.rising);
      Alcotest.(check (float 1e-4)) "y at crossing" (-1.) o.state.(1)
  | l -> Alcotest.failf "expected one crossing, got %d" (List.length l)

let test_event_counts_periodic () =
  (* sin t has 3 zero crossings in (0, 3 pi] excluding t0. *)
  let sys = circle () in
  let ev = { Events.label = "y-zero"; g = (fun _ y -> y.(1)) } in
  let r =
    Events.integrate ~atol:1e-10 ~rtol:1e-10 ~events:[ ev ] sys ~t0:0.
      ~y0:[| 1.; 0. |]
      ~tend:(3. *. Float.pi +. 0.1)
  in
  Alcotest.(check int) "three crossings" 3
    (List.length (Events.crossings r "y-zero"))

let test_event_stop_at_first () =
  let sys = circle () in
  let ev = { Events.label = "x-zero"; g = (fun _ y -> y.(0)) } in
  let r =
    Events.integrate ~stop_at_first:true ~events:[ ev ] sys ~t0:0.
      ~y0:[| 1.; 0. |] ~tend:20.
  in
  Alcotest.(check int) "one occurrence" 1 (List.length r.occurrences);
  let last = r.trajectory.ts.(Array.length r.trajectory.ts - 1) in
  Alcotest.(check bool) "trajectory cut" true (last < 3.)

let test_event_time_function () =
  (* Event on the time variable itself: g = t - 0.5. *)
  let sys = decay () in
  let ev = { Events.label = "t-half"; g = (fun t _ -> t -. 0.5) } in
  let r = Events.integrate ~events:[ ev ] sys ~t0:0. ~y0:[| 1. |] ~tend:1. in
  match Events.crossings r "t-half" with
  | [ o ] -> Alcotest.(check (float 1e-6)) "at 0.5" 0.5 o.time
  | _ -> Alcotest.fail "expected exactly one crossing"

let test_event_multiple_functions () =
  let sys = circle () in
  let evs =
    [
      { Events.label = "x-zero"; g = (fun _ y -> y.(0)) };
      { Events.label = "y-zero"; g = (fun _ y -> y.(1)) };
    ]
  in
  let r =
    Events.integrate ~events:evs sys ~t0:0. ~y0:[| 1.; 0. |]
      ~tend:(2. *. Float.pi -. 0.05)
  in
  Alcotest.(check int) "x crossings" 2
    (List.length (Events.crossings r "x-zero"));
  Alcotest.(check int) "y crossings" 1
    (List.length (Events.crossings r "y-zero"));
  (* Chronological ordering. *)
  let times = List.map (fun (o : Events.occurrence) -> o.time) r.occurrences in
  Alcotest.(check bool) "sorted" true (List.sort compare times = times)

(* ---------- cross-solver consistency ---------- *)

(* Random stable 2x2 linear systems: all solvers must agree. *)
let stable_system_gen =
  QCheck.Gen.(
    let* a01 = float_range (-2.) 2. in
    let* a10 = float_range (-2.) 2. in
    let* d0 = float_range 0.5 4. in
    let* d1 = float_range 0.5 4. in
    let* x0 = float_range (-2.) 2. in
    let* y0 = float_range (-2.) 2. in
    return (a01, a10, d0, d1, x0, y0))

let arbitrary_stable =
  QCheck.make
    ~print:(fun (a, b, c, d, e, f) ->
      Printf.sprintf "a01=%g a10=%g d=(%g,%g) y0=(%g,%g)" a b c d e f)
    stable_system_gen

let linear_system (a01, a10, d0, d1) =
  (* Diagonally dominant negative diagonal: stable. *)
  let dom = 1. +. Float.max (Float.abs a01) (Float.abs a10) in
  Odesys.of_equations
    [
      ( "p",
        E.(add [ mul [ const (Float.neg (d0 +. dom)); var "p" ];
                 mul [ const a01; var "q" ] ]) );
      ( "q",
        E.(add [ mul [ const a10; var "p" ];
                 mul [ const (Float.neg (d1 +. dom)); var "q" ] ]) );
    ]

let prop_solvers_agree =
  QCheck.Test.make ~name:"rkf45, lsoda and rosenbrock agree" ~count:30
    arbitrary_stable (fun (a01, a10, d0, d1, x0, y0) ->
      let y0v = [| x0; y0 |] in
      let final run = run (linear_system (a01, a10, d0, d1)) in
      let r1 =
        final (fun sys ->
            Odesys.final_state
              (Rk.rkf45 ~atol:1e-10 ~rtol:1e-9 sys ~t0:0. ~y0:y0v ~tend:1.))
      in
      let r2 =
        final (fun sys ->
            Odesys.final_state
              (Lsoda.integrate ~atol:1e-10 ~rtol:1e-9 sys ~t0:0. ~y0:y0v
                 ~tend:1.)
                .trajectory)
      in
      let r3 =
        final (fun sys ->
            Odesys.final_state
              (Om_ode.Rosenbrock.integrate sys ~t0:0. ~y0:y0v ~tend:1.
                 ~h:1e-3))
      in
      let close a b = Float.abs (a -. b) < 1e-4 in
      close r1.(0) r2.(0) && close r1.(1) r2.(1)
      && close r1.(0) r3.(0) && close r1.(1) r3.(1))

(* ---------- of_equations ---------- *)

let test_of_equations_errors () =
  Alcotest.check_raises "free variable"
    (Invalid_argument "Odesys.of_equations: free variable q") (fun () ->
      ignore (Odesys.of_equations [ ("x", E.var "q") ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Odesys.of_equations: duplicate x") (fun () ->
      ignore (Odesys.of_equations [ ("x", E.var "x"); ("x", E.var "x") ]))

let test_pp_counters () =
  let sys = decay () in
  ignore (Odesys.rhs sys 0. [| 1. |]);
  let text = Fmt.str "%a" Odesys.pp_counters sys.counters in
  Alcotest.(check string) "render"
    "steps=0 rhs=1 jac=0 rejected=0 newton=0 lu=0 retries=0" text

let test_counters_reset () =
  let sys = decay () in
  ignore (Odesys.rhs sys 0. [| 1. |]);
  Alcotest.(check int) "counted" 1 sys.counters.rhs_calls;
  Odesys.reset_counters sys;
  Alcotest.(check int) "reset" 0 sys.counters.rhs_calls

let test_sample_interpolation () =
  let tr =
    { Odesys.ts = [| 0.; 1.; 3. |];
      states = [| [| 0. |]; [| 10. |]; [| 30. |] |] }
  in
  let out = Odesys.sample tr ~times:[| -1.; 0.5; 2.; 5. |] in
  checkf "clamped left" 0. out.(0).(0);
  checkf "midpoint" 5. out.(1).(0);
  checkf "second segment" 20. out.(2).(0);
  checkf "clamped right" 30. out.(3).(0)

let test_sample_matches_solution () =
  let sys = decay () in
  let tr = Rk.rkf45 ~atol:1e-10 ~rtol:1e-10 sys ~t0:0. ~y0:[| 1. |] ~tend:2. in
  let times = Array.init 11 (fun i -> 0.2 *. float_of_int i) in
  let out = Odesys.sample tr ~times in
  (* Linear interpolation between accepted steps is only second order in
     the step size, so the tolerance is looser than the solver's. *)
  Array.iteri
    (fun i t ->
      Alcotest.(check (float 1e-3))
        (Printf.sprintf "t=%g" t)
        (Float.exp (Float.neg t))
        out.(i).(0))
    times

let test_column () =
  let sys = circle () in
  let tr = Rk.integrate_fixed Rk.rk4 sys ~t0:0. ~y0:[| 1.; 0. |] ~tend:0.1 ~h:0.05 in
  let xs = Odesys.column tr "x" sys in
  Alcotest.(check int) "column length" (Array.length tr.ts) (Array.length xs);
  checkf "starts at 1" 1. xs.(0)

(* ---------- corner cases ---------- *)

(* A zero-dimensional system is degenerate but legal: integrators must
   advance time and return empty state rows rather than crash. *)
let test_zero_dim () =
  let sys = Odesys.make ~names:[||] ~dim:0 (fun _ _ _ -> ()) in
  let tr = Rk.integrate_fixed Rk.rk4 sys ~t0:0. ~y0:[||] ~tend:0.1 ~h:0.025 in
  Alcotest.(check int) "rk4 steps" 5 (Array.length tr.ts);
  Array.iter
    (fun row -> Alcotest.(check int) "empty rows" 0 (Array.length row))
    tr.states;
  let res = Lsoda.integrate sys ~t0:0. ~y0:[||] ~tend:0.1 in
  Alcotest.(check bool) "lsoda reaches tend" true
    (Odesys.final_state res.trajectory |> Array.length = 0)

(* One equation, x' = -x: every solver must track exp(-t). *)
let test_single_equation_all_solvers () =
  let run name trajectory =
    let yf = (Odesys.final_state trajectory).(0) in
    Alcotest.(check (float 1e-4)) name (Float.exp (-1.)) yf
  in
  let fresh () = Odesys.of_equations [ ("x", E.(mul [ const (-1.); var "x" ])) ] in
  run "rk4"
    (Rk.integrate_fixed Rk.rk4 (fresh ()) ~t0:0. ~y0:[| 1. |] ~tend:1.
       ~h:0.01);
  run "rkf45" (Rk.rkf45 (fresh ()) ~t0:0. ~y0:[| 1. |] ~tend:1.);
  run "lsoda"
    (Lsoda.integrate (fresh ()) ~t0:0. ~y0:[| 1. |] ~tend:1.).trajectory

(* The fuzz generator's purpose-built stiff model must actually drive the
   LSODA heuristic into its BDF regime: after the fast transient decays,
   the accuracy-chosen Adams step keeps bumping into the stability bound
   h·L ≈ 1 with L ≈ rate. *)
let test_lsoda_stiff_generated_model () =
  let f = Om_lang.Flatten.flatten (Om_fuzz.Gen.stiff_model ~rate:2000. ()) in
  let sys = Odesys.of_equations f.equations in
  let res =
    Lsoda.integrate sys ~t0:0. ~y0:(Om_lang.Flat_model.initial_values f)
      ~tend:2.
  in
  Alcotest.(check bool) "switched at least once" true
    (List.length res.switches >= 1);
  Alcotest.(check bool) "entered BDF mode" true
    (List.exists (fun (_, m) -> m = Lsoda.Bdf_mode) res.switches);
  (* The trajectory itself must stay sane: x relaxes onto cos t. *)
  let xs = Odesys.column res.trajectory "s.x" sys in
  let last = xs.(Array.length xs - 1) in
  let t_last = res.trajectory.ts.(Array.length res.trajectory.ts - 1) in
  Alcotest.(check (float 5e-2)) "x tracks cos t" (Float.cos t_last) last

(* ---------- typed-fault backoff ---------- *)

module Ge = Om_guard.Om_error

(* x' = -x whose output is poisoned with NaN for the RHS-call numbers
   selected by [poison]; a finite guard turns the poison into the typed
   error the solvers' retry ladders catch.  Poisoning by call number
   keeps the fault transient and deterministic: after the solver
   re-evaluates, the step sees only clean outputs. *)
let faulty_decay ~poison =
  let calls = ref 0 in
  let g = Om_guard.Finite_guard.create ~names:[| "x" |] ~dim:1 in
  let rhs t y ydot =
    incr calls;
    ydot.(0) <- (if poison !calls then Float.nan else Float.neg y.(0));
    Om_guard.Finite_guard.check g ~time:t ydot
  in
  Odesys.make ~names:[| "x" |] ~dim:1 rhs

let clean_decay () =
  Odesys.make ~names:[| "x" |] ~dim:1 (fun _ y ydot ->
      ydot.(0) <- Float.neg y.(0))

let test_rk4_transient_retry () =
  (* One poisoned (t, step): the fixed-step ladder retries at the SAME
     step size, so the recovered trajectory is bitwise identical. *)
  let reference =
    Rk.integrate_fixed Rk.rk4 (clean_decay ()) ~t0:0. ~y0:[| 1. |] ~tend:1.
      ~h:0.1
  in
  let sys = faulty_decay ~poison:(fun n -> n = 7) in
  let tr = Rk.integrate_fixed Rk.rk4 sys ~t0:0. ~y0:[| 1. |] ~tend:1. ~h:0.1 in
  Alcotest.(check int) "one retry counted" 1 sys.counters.retries;
  Alcotest.(check bool) "times identical" true (tr.ts = reference.ts);
  Alcotest.(check bool) "states identical" true (tr.states = reference.states)

let test_rk4_budget_exhausted () =
  (* A permanent fault exhausts the budget and fails typed, naming the
     offending equation in the reason chain. *)
  let sys = faulty_decay ~poison:(fun n -> n >= 7) in
  match
    Rk.integrate_fixed Rk.rk4 sys ~t0:0. ~y0:[| 1. |] ~tend:1. ~h:0.1
  with
  | _ -> Alcotest.fail "permanent fault not detected"
  | exception Ge.Error (Ge.Step_failure { solver; retries; reason; _ }) ->
      Alcotest.(check string) "solver named" "rk-fixed" solver;
      Alcotest.(check int) "budget spent" 8 retries;
      Alcotest.(check bool) "equation attributed" true
        (let n = String.length reason and m = String.length "der(x)" in
         let rec go i =
           i + m <= n && (String.sub reason i m = "der(x)" || go (i + 1))
         in
         go 0);
      Alcotest.(check bool) "every attempt counted" true
        (sys.counters.retries > retries)

let test_rkf45_transient_retry () =
  let reference =
    Rk.rkf45 (clean_decay ()) ~t0:0. ~y0:[| 1. |] ~tend:1.
  in
  let sys = faulty_decay ~poison:(fun n -> n = 10) in
  let tr = Rk.rkf45 sys ~t0:0. ~y0:[| 1. |] ~tend:1. in
  Alcotest.(check int) "one retry counted" 1 sys.counters.retries;
  Alcotest.(check bool) "times identical" true (tr.ts = reference.ts);
  Alcotest.(check bool) "states identical" true (tr.states = reference.states)

let test_rkf45_budget_exhausted () =
  let sys = faulty_decay ~poison:(fun n -> n >= 10) in
  match Rk.rkf45 sys ~t0:0. ~y0:[| 1. |] ~tend:1. with
  | _ -> Alcotest.fail "permanent fault not detected"
  | exception Ge.Error (Ge.Step_failure { solver; retries; _ }) ->
      Alcotest.(check string) "solver named" "rkf45" solver;
      Alcotest.(check int) "budget spent" 8 retries

let test_lsoda_transient_retry () =
  let reference =
    (Lsoda.integrate (clean_decay ()) ~t0:0. ~y0:[| 1. |] ~tend:1.).trajectory
  in
  let sys = faulty_decay ~poison:(fun n -> n = 10) in
  let res = Lsoda.integrate sys ~t0:0. ~y0:[| 1. |] ~tend:1. in
  Alcotest.(check int) "one retry counted" 1 sys.counters.retries;
  Alcotest.(check bool) "times identical" true
    (res.trajectory.ts = reference.ts);
  Alcotest.(check bool) "states identical" true
    (res.trajectory.states = reference.states)

let test_lsoda_budget_exhausted () =
  let sys = faulty_decay ~poison:(fun n -> n >= 10) in
  match Lsoda.integrate sys ~t0:0. ~y0:[| 1. |] ~tend:1. with
  | _ -> Alcotest.fail "permanent fault not detected"
  | exception Ge.Error (Ge.Step_failure { solver; retries; _ }) ->
      Alcotest.(check string) "solver named" "lsoda" solver;
      Alcotest.(check int) "budget spent" 8 retries

(* ---------- sparse stiff regression ---------- *)

(* A method-of-lines heat equation: 32 states, tridiagonal Jacobian,
   stiff enough (lambda_max ~ 4/dx^2) to drive LSODA into BDF.  The
   dense and sparse Newton paths must produce Int64-bitwise identical
   trajectories — the whole design contract of [Om_ode.Sparse]. *)
let heat_system ~with_symbolic_jacobian () =
  let f = Om_pde.Discretize.heat_1d ~n:34 () in
  ( Odesys.of_equations ~with_symbolic_jacobian f.Om_lang.Flat_model.equations,
    Om_lang.Flat_model.initial_values f )

let check_bitwise_traj name (a : Odesys.trajectory) (b : Odesys.trajectory) =
  let beq x y = Int64.bits_of_float x = Int64.bits_of_float y in
  Alcotest.(check bool) (name ^ ": same times") true
    (Array.for_all2 beq a.ts b.ts);
  Alcotest.(check bool) (name ^ ": states bitwise") true
    (Array.for_all2 (fun ra rb -> Array.for_all2 beq ra rb) a.states b.states)

let test_bdf_sparse_matches_dense_bitwise () =
  List.iter
    (fun symbolic ->
      let name = if symbolic then "symbolic" else "fd" in
      let run jac_mode =
        let sys, y0 = heat_system ~with_symbolic_jacobian:symbolic () in
        Bdf.integrate ~jac_mode sys ~t0:0. ~y0 ~tend:0.05 ~h:1e-3
      in
      check_bitwise_traj ("bdf " ^ name) (run Odesys.Dense) (run Odesys.Sparse))
    [ true; false ]

let test_lsoda_sparse_matches_dense_bitwise () =
  List.iter
    (fun symbolic ->
      let name = if symbolic then "symbolic" else "fd" in
      let run jac_mode =
        let sys, y0 = heat_system ~with_symbolic_jacobian:symbolic () in
        let res = Lsoda.integrate ~jac_mode sys ~t0:0. ~y0 ~tend:0.2 in
        (* The sparse path only matters if the driver actually entered
           its BDF regime. *)
        Alcotest.(check bool) (name ^ ": entered BDF") true
          (List.exists (fun (_, m) -> m = Lsoda.Bdf_mode) res.switches);
        res.trajectory
      in
      check_bitwise_traj ("lsoda " ^ name) (run Odesys.Dense)
        (run Odesys.Sparse))
    [ true; false ]

(* Auto resolves to the sparse path on this system (32 states,
   tridiagonal) and must still be bitwise the explicit modes. *)
let test_auto_resolves_sparse_and_matches () =
  let sys, _ = heat_system ~with_symbolic_jacobian:true () in
  (match Jacobian.mode_stats sys with
  | "sparse", Some (nnz, colors) ->
      Alcotest.(check int) "tridiagonal nnz" 94 nnz;
      Alcotest.(check int) "tridiagonal colors" 3 colors
  | mode, _ -> Alcotest.failf "Auto resolved to %s" mode);
  let run jac_mode =
    let sys, y0 = heat_system ~with_symbolic_jacobian:true () in
    Bdf.integrate ~jac_mode sys ~t0:0. ~y0 ~tend:0.05 ~h:1e-3
  in
  check_bitwise_traj "auto" (run Odesys.Auto) (run Odesys.Sparse)

(* Singular iteration matrices surface as the same typed Newton_failure
   in every jac mode (the solver's step-shrinking taxonomy, not an
   untyped linear-algebra exception). *)
let test_sparse_singular_newton_failure () =
  List.iter
    (fun jac_mode ->
      let pat = Om_ode.Sparse.pattern_of_entries ~rows:2 ~cols:2
          [ (0, 0); (1, 1) ]
      in
      let sys =
        Odesys.make ~sparsity:pat
          ~jac:(fun _ _ m ->
            m.(0).(0) <- 1.;
            m.(0).(1) <- 0.;
            m.(1).(0) <- 0.;
            m.(1).(1) <- 1.)
          ~sjac:(fun _ _ v ->
            v.(0) <- 1.;
            v.(1) <- 1.)
          ~dim:2
          (fun _ y ydot ->
            ydot.(0) <- y.(0);
            ydot.(1) <- y.(1))
      in
      (* alpha0 = beta_h and J = I make M = alpha0*I - beta_h*J = 0. *)
      Alcotest.check_raises "singular Newton matrix is typed"
        (Ge.Error (Ge.Newton_failure { time = 0.; iterations = 0 }))
        (fun () ->
          ignore
            (Bdf.solve_implicit_stage ~jac_mode sys ~tol:1e-10 ~max_iter:4
               ~t_next:0. ~beta_h:1. ~rhs_const:[| 0.; 0. |] ~alpha0:1.
               ~y_guess:[| 1.; 1. |])))
    [ Odesys.Dense; Odesys.Sparse ]

(* Every numeric-Jacobian entry point bumps jac_calls exactly once and
   costs dim + 1 RHS evaluations. *)
let test_numeric_jacobian_counts_once () =
  let sys = clean_decay () in
  let m = Array.make_matrix 1 1 0. in
  Jacobian.numeric_into sys 0. [| 1. |] m;
  Alcotest.(check int) "jac_calls after numeric_into" 1
    sys.Odesys.counters.Odesys.jac_calls;
  Alcotest.(check int) "rhs calls = dim + 1" 2
    sys.Odesys.counters.Odesys.rhs_calls;
  ignore (Jacobian.numeric sys 0. [| 1. |]);
  Alcotest.(check int) "jac_calls after numeric" 2
    sys.Odesys.counters.Odesys.jac_calls

let () =
  let q = Qcheck_seed.to_alcotest in
  Alcotest.run "om_ode"
    [
      ( "linalg",
        [
          Alcotest.test_case "solve known" `Quick test_lu_solve_known;
          Alcotest.test_case "determinant" `Quick test_lu_det;
          Alcotest.test_case "singular" `Quick test_singular;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "norms" `Quick test_norms;
          q prop_lu_solve_residual;
          q prop_transpose_involution;
        ] );
      ( "explicit",
        [
          Alcotest.test_case "euler decay" `Quick test_euler_decay;
          Alcotest.test_case "rk4 circle" `Quick test_rk4_circle;
          Alcotest.test_case "convergence orders" `Quick test_orders;
          Alcotest.test_case "rkf45 tolerances" `Quick test_rkf45_tolerance;
          Alcotest.test_case "rkf45 rejections" `Quick
            test_rkf45_rejections_counted;
        ] );
      ( "adams",
        [
          Alcotest.test_case "orders 1-4" `Quick test_adams_orders;
          Alcotest.test_case "PECE call count" `Quick
            test_adams_rhs_calls_per_step;
          Alcotest.test_case "bad order" `Quick test_adams_bad_order;
          Alcotest.test_case "PECE error estimate" `Quick
            test_pece_error_estimate;
        ] );
      ( "bdf",
        [
          Alcotest.test_case "decay" `Quick test_bdf_decay;
          Alcotest.test_case "stiff stability" `Quick test_bdf_stiff_stable;
          Alcotest.test_case "analytic jacobian" `Quick
            test_bdf_uses_analytic_jacobian;
          Alcotest.test_case "numeric jacobian" `Quick test_numeric_jacobian;
        ] );
      ( "rosenbrock",
        [
          Alcotest.test_case "decay" `Quick test_ros2_decay;
          Alcotest.test_case "order 2" `Quick test_ros2_order;
          Alcotest.test_case "stiff stability" `Quick test_ros2_stiff_stable;
          Alcotest.test_case "banded matches dense" `Quick
            test_ros2_banded_matches_dense;
        ] );
      ( "corner",
        [
          Alcotest.test_case "zero dimension" `Quick test_zero_dim;
          Alcotest.test_case "single equation, all solvers" `Quick
            test_single_equation_all_solvers;
          Alcotest.test_case "generated stiff model switches" `Quick
            test_lsoda_stiff_generated_model;
        ] );
      ( "lsoda",
        [
          Alcotest.test_case "nonstiff stays adams" `Quick
            test_lsoda_nonstiff_stays_adams;
          Alcotest.test_case "switches on stiff" `Quick
            test_lsoda_switches_on_stiff;
          Alcotest.test_case "switching saves calls" `Quick
            test_lsoda_stiff_beats_pure_adams_on_calls;
          Alcotest.test_case "monotone trajectory" `Quick
            test_lsoda_trajectory_monotone_time;
        ] );
      ( "banded",
        [
          Alcotest.test_case "get/set" `Quick test_banded_get_set;
          Alcotest.test_case "dense roundtrip" `Quick test_banded_roundtrip;
          Alcotest.test_case "of_dense rejects" `Quick
            test_banded_of_dense_rejects;
          Alcotest.test_case "mat_vec" `Quick test_banded_mat_vec;
          Alcotest.test_case "bandwidth" `Quick test_bandwidth_of_jacobian;
          q prop_banded_solve_matches_dense;
          q prop_banded_residual;
        ] );
      ( "consistency", [ q prop_solvers_agree ] );
      ( "events",
        [
          Alcotest.test_case "crossing time" `Quick
            test_event_zero_crossing_time;
          Alcotest.test_case "periodic counts" `Quick
            test_event_counts_periodic;
          Alcotest.test_case "stop at first" `Quick test_event_stop_at_first;
          Alcotest.test_case "time event" `Quick test_event_time_function;
          Alcotest.test_case "multiple functions" `Quick
            test_event_multiple_functions;
        ] );
      ( "sparse regression",
        [
          Alcotest.test_case "bdf dense = sparse bitwise" `Quick
            test_bdf_sparse_matches_dense_bitwise;
          Alcotest.test_case "lsoda dense = sparse bitwise" `Quick
            test_lsoda_sparse_matches_dense_bitwise;
          Alcotest.test_case "auto resolves sparse" `Quick
            test_auto_resolves_sparse_and_matches;
          Alcotest.test_case "singular Newton matrix typed" `Quick
            test_sparse_singular_newton_failure;
          Alcotest.test_case "numeric jac_calls counted once" `Quick
            test_numeric_jacobian_counts_once;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "rk4 transient retry" `Quick
            test_rk4_transient_retry;
          Alcotest.test_case "rk4 budget exhausted" `Quick
            test_rk4_budget_exhausted;
          Alcotest.test_case "rkf45 transient retry" `Quick
            test_rkf45_transient_retry;
          Alcotest.test_case "rkf45 budget exhausted" `Quick
            test_rkf45_budget_exhausted;
          Alcotest.test_case "lsoda transient retry" `Quick
            test_lsoda_transient_retry;
          Alcotest.test_case "lsoda budget exhausted" `Quick
            test_lsoda_budget_exhausted;
        ] );
      ( "odesys",
        [
          Alcotest.test_case "elaboration errors" `Quick
            test_of_equations_errors;
          Alcotest.test_case "counters" `Quick test_counters_reset;
          Alcotest.test_case "counters printing" `Quick test_pp_counters;
          Alcotest.test_case "column" `Quick test_column;
          Alcotest.test_case "sample interpolation" `Quick
            test_sample_interpolation;
          Alcotest.test_case "sample matches solution" `Quick
            test_sample_matches_solution;
        ] );
    ]
