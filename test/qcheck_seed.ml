(* Deterministic seeding for every qcheck property in the suite.

   qcheck-alcotest's [to_alcotest] defaults to a self-initialised RNG, so
   a failing property run could not be reproduced from the test output
   alone.  [to_alcotest] below threads one explicit seed — overridable
   with the [QCHECK_SEED] (or [OM_QCHECK_SEED]) environment variable —
   into every property, and prints that seed when a property fails so
   the exact run can be replayed with e.g.

     QCHECK_SEED=1234 dune exec test/test_expr.exe

   This module is linked into every test executable (single dune [tests]
   stanza), so it must have no top-level effects beyond computing the
   seed. *)

let seed =
  let from_env name =
    match Sys.getenv_opt name with
    | Some s -> int_of_string_opt s
    | None -> None
  in
  match (from_env "QCHECK_SEED", from_env "OM_QCHECK_SEED") with
  | Some s, _ | None, Some s -> s
  | None, None -> 42

let to_alcotest cell =
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) cell
  in
  let run' x =
    try run x
    with e ->
      Printf.eprintf "[qcheck] property %S failed under seed %d (set \
                      QCHECK_SEED to reproduce)\n%!" name seed;
      raise e
  in
  (name, speed, run')
