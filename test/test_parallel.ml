(* Tests for the real multicore executor: domain pool round protocol,
   descriptor validation, bit-identical trajectories through Runtime for
   every worker count, and the zero-allocation steady-state round. *)

module P = Om_codegen.Pipeline
module Bb = Om_codegen.Bytecode_backend
module R = Objectmath.Runtime
module Round_desc = Om_machine.Round_desc
module Domain_pool = Om_parallel.Domain_pool
module Par_exec = Om_parallel.Par_exec

let bearing = lazy (P.compile (Om_models.Bearing2d.model ()))
let powerplant = lazy (P.compile (Om_models.Powerplant.model ()))

let desc_of ~nworkers (r : P.result) =
  let costs = Bb.task_costs_static r.compiled in
  let sched = Om_sched.Lpt.schedule ~costs r.tasks ~nprocs:nworkers in
  Round_desc.make ~assignment:sched.assignment ~task_flops:costs
    ~task_reads:(Array.map (fun t -> t.Om_sched.Task.reads) r.tasks)
    ~task_writes:(Array.map (fun t -> t.Om_sched.Task.writes) r.tasks)
    ~state_dim:r.compiled.dim

(* ---------- domain pool ---------- *)

let test_pool_rounds () =
  let hits = Array.make 4 0 in
  let pool =
    Domain_pool.create ~job:(fun w -> hits.(w) <- hits.(w) + 1) 4
  in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      for _ = 1 to 25 do
        Domain_pool.round pool
      done;
      Alcotest.(check int) "rounds counted" 25 (Domain_pool.rounds pool);
      Alcotest.(check (array int)) "every worker ran every round"
        [| 25; 25; 25; 25 |] hits);
  Alcotest.(check bool) "inactive after shutdown" false
    (Domain_pool.active pool);
  (* Idempotent: a second shutdown must not raise or hang. *)
  Domain_pool.shutdown pool

let test_pool_invalid () =
  Alcotest.check_raises "zero workers"
    (Invalid_argument "Domain_pool.create: nworkers < 1") (fun () ->
      ignore (Domain_pool.create ~job:ignore 0))

(* ---------- fault containment and degradation ---------- *)

let busy_wait seconds =
  let t0 = Om_parallel.Monotonic.now () in
  while Om_parallel.Monotonic.now () -. t0 < seconds do
    Domain.cpu_relax ()
  done

let test_pool_exception_containment () =
  (* A job that raises mid-round must not kill its domain or hang the
     barrier: the exception surfaces on the supervisor as a typed
     Worker_exception, and the pool keeps working afterwards. *)
  let boom = Atomic.make false in
  let hits = Array.make 2 0 in
  let job w =
    hits.(w) <- hits.(w) + 1;
    if w = 1 && Atomic.get boom then failwith "kaboom"
  in
  let pool = Domain_pool.create ~job 2 in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      Domain_pool.round pool;
      Atomic.set boom true;
      (match Domain_pool.round pool with
      | () -> Alcotest.fail "worker exception swallowed"
      | exception
          Om_guard.Om_error.(
            Error (Worker_exception { worker; round; detail })) ->
          Alcotest.(check int) "worker attributed" 1 worker;
          Alcotest.(check int) "round attributed" 1 round;
          Alcotest.(check bool) "detail carries the original" true
            (String.length detail > 0));
      (* The failed round still completed on every worker... *)
      Alcotest.(check (array int)) "barrier completed" [| 2; 2 |] hits;
      (* ...and the pool is fully operational for subsequent rounds. *)
      Atomic.set boom false;
      for _ = 1 to 3 do
        Domain_pool.round pool
      done;
      Alcotest.(check (array int)) "pool reusable" [| 5; 5 |] hits);
  Alcotest.(check bool) "clean shutdown" false (Domain_pool.active pool);
  (* A fresh pool spawns fine after the poisoned one died. *)
  let pool2 = Domain_pool.create ~job:ignore 2 in
  Domain_pool.round pool2;
  Domain_pool.shutdown pool2

let test_pool_typed_fault_passthrough () =
  (* Typed guard errors raised inside a job cross the barrier as-is,
     not wrapped as Worker_exception. *)
  let fire = Atomic.make false in
  let job _w =
    if Atomic.get fire then
      Om_guard.Om_error.(
        error
          (Nonfinite_output
             { slot = 0; equation = "der(x)"; value = Float.nan; time = 0. }))
  in
  let pool = Domain_pool.create ~job 2 in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      Domain_pool.round pool;
      Atomic.set fire true;
      Alcotest.(check bool) "typed fault passes through unwrapped" true
        (match Domain_pool.round pool with
        | () -> false
        | exception
            Om_guard.Om_error.(Error (Nonfinite_output { equation; _ })) ->
            equation = "der(x)"
        | exception _ -> false))

let test_pool_stall_detection () =
  (* A worker outliving the barrier deadline is recorded (and
     attributed) without corrupting the round: the barrier still waits
     for it. *)
  let stall = Atomic.make false in
  let done_flags = Array.make 2 0 in
  let job w =
    if w = 1 && Atomic.get stall then busy_wait 0.01;
    done_flags.(w) <- done_flags.(w) + 1
  in
  let pool = Domain_pool.create ~barrier_deadline:0.002 ~job 2 in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      Domain_pool.round pool;
      ignore (Domain_pool.take_stall pool);
      Atomic.set stall true;
      Domain_pool.round pool;
      Atomic.set stall false;
      (match Domain_pool.take_stall pool with
      | Some (Om_guard.Om_error.Worker_stall { worker; waited_s; _ }) ->
          Alcotest.(check int) "stalled worker attributed" 1 worker;
          Alcotest.(check bool) "waited past the deadline" true
            (waited_s >= 0.002)
      | Some e ->
          (* More than one worker can miss the deadline under load. *)
          Alcotest.(check bool) "timeout event" true
            (match e with
            | Om_guard.Om_error.Barrier_timeout _ -> true
            | _ -> false)
      | None -> Alcotest.fail "stall not detected");
      Alcotest.(check bool) "event consumed" true
        (Domain_pool.take_stall pool = None);
      (* The slow worker's write completed before round returned. *)
      Alcotest.(check (array int)) "barrier waited for the straggler"
        [| 2; 2 |] done_flags)

let test_pool_spawn_fail () =
  (* Injected spawn failure: typed error, nothing leaks, and the same
     job can immediately be spawned without injection. *)
  (match
     Domain_pool.create ~spawn_fail:(fun w -> w = 1) ~job:ignore 3
   with
  | _ -> Alcotest.fail "injected spawn failure ignored"
  | exception
      Om_guard.Om_error.(Error (Spawn_failure { worker; nworkers; _ })) ->
      Alcotest.(check int) "failing worker" 1 worker;
      Alcotest.(check int) "pool size attributed" 3 nworkers);
  let pool = Domain_pool.create ~job:ignore 3 in
  Domain_pool.round pool;
  Domain_pool.shutdown pool

let test_drop_worker () =
  (* The degradation ladder: dropping a worker moves all its tasks to
     the survivors and changes no output bit. *)
  let r = Lazy.force bearing in
  let nworkers = 3 in
  let desc = desc_of ~nworkers r in
  let dim = r.compiled.dim in
  let y = Om_lang.Flat_model.initial_values r.model in
  let reference = Array.make dim 0. in
  Bb.rhs_fn r.compiled 0. y reference;
  Par_exec.with_executor ~nworkers desc r.compiled @@ fun px ->
  let ydot = Array.make dim 0. in
  Par_exec.rhs_fn px 0. y ydot;
  Alcotest.(check bool) "before drop: matches sequential" true
    (ydot = reference);
  Alcotest.(check int) "all live" 3 (Par_exec.live_workers px);
  Par_exec.drop_worker px 1;
  Alcotest.(check int) "one dropped" 2 (Par_exec.live_workers px);
  let tasks = Par_exec.worker_tasks px in
  Alcotest.(check int) "dead worker has an empty slice" 0
    (Array.length tasks.(1));
  let covered = Array.make (Round_desc.n_tasks desc) 0 in
  Array.iter
    (Array.iter (fun task -> covered.(task) <- covered.(task) + 1))
    tasks;
  Array.iteri
    (fun task n ->
      Alcotest.(check int)
        (Printf.sprintf "task %d still scheduled once" task)
        1 n)
    covered;
  Array.fill ydot 0 dim 0.;
  Par_exec.rhs_fn px 0. y ydot;
  Alcotest.(check bool) "after drop: matches sequential bitwise" true
    (ydot = reference);
  (* Ladder bottom and misuse are rejected. *)
  Alcotest.(check bool) "double drop rejected" true
    (match Par_exec.drop_worker px 1 with
    | () -> false
    | exception Invalid_argument _ -> true);
  Par_exec.drop_worker px 0;
  Alcotest.(check bool) "last worker cannot be dropped" true
    (match Par_exec.drop_worker px 2 with
    | () -> false
    | exception Invalid_argument _ -> true);
  Array.fill ydot 0 dim 0.;
  Par_exec.rhs_fn px 0. y ydot;
  Alcotest.(check bool) "single survivor still matches" true
    (ydot = reference)

let test_exec_fault_injection () =
  (* A Nan_task fault poisons the task's output slots in exactly its
     round; the next round is clean again (fire-once). *)
  let r = Lazy.force bearing in
  let nworkers = 2 in
  let desc = desc_of ~nworkers r in
  let dim = r.compiled.dim in
  let y = Om_lang.Flat_model.initial_values r.model in
  let reference = Array.make dim 0. in
  Bb.rhs_fn r.compiled 0. y reference;
  let plan =
    Om_guard.Fault_plan.make
      [ Om_guard.Fault_plan.Nan_task { task = 0; round = 2 } ]
  in
  Par_exec.with_executor ~fault:plan ~nworkers desc r.compiled @@ fun px ->
  let ydot = Array.make dim 0. in
  Par_exec.rhs_fn px 0. y ydot;
  Alcotest.(check bool) "round 1 clean" true (ydot = reference);
  Alcotest.(check int) "nothing injected yet" 0
    (Par_exec.faults_injected px);
  Par_exec.rhs_fn px 0. y ydot;
  Alcotest.(check int) "fault fired in round 2" 1
    (Par_exec.faults_injected px);
  Alcotest.(check bool) "round 2 poisoned" true
    (Array.exists Float.is_nan ydot);
  Par_exec.rhs_fn px 0. y ydot;
  Alcotest.(check bool) "round 3 clean again" true (ydot = reference)

let test_exec_spawn_fail_injection () =
  let r = Lazy.force bearing in
  let desc = desc_of ~nworkers:2 r in
  let plan =
    Om_guard.Fault_plan.make [ Om_guard.Fault_plan.Fail_spawn { worker = 0 } ]
  in
  Alcotest.(check bool) "spawn failure surfaces from create" true
    (match Par_exec.create ~fault:plan ~nworkers:2 desc r.compiled with
    | px ->
        Par_exec.shutdown px;
        false
    | exception Om_guard.Om_error.(Error (Spawn_failure { worker = 0; _ })) ->
        true)

(* ---------- round descriptor ---------- *)

let test_desc_validation () =
  let ok =
    Round_desc.make ~assignment:[| 0; 1; 0 |] ~task_flops:[| 1.; 2.; 3. |]
      ~task_reads:[| [ 0 ]; [ 1 ]; [] |]
      ~task_writes:[| [ 0 ]; [ 1 ]; [ 2 ] |]
      ~state_dim:3
  in
  Alcotest.(check int) "n_tasks" 3 (Round_desc.n_tasks ok);
  Alcotest.(check int) "min_workers" 2 (Round_desc.min_workers ok);
  let mismatched () =
    ignore
      (Round_desc.make ~assignment:[| 0; 1 |] ~task_flops:[| 1. |]
         ~task_reads:[| [] |] ~task_writes:[| [] |] ~state_dim:1)
  in
  Alcotest.(check bool) "length mismatch rejected" true
    (match mismatched () with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_exec_validation () =
  let r = Lazy.force bearing in
  let desc = desc_of ~nworkers:4 r in
  Alcotest.(check bool) "nworkers below assignment range rejected" true
    (match Par_exec.create ~nworkers:2 desc r.compiled with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "nworkers < 1 rejected" true
    (match Par_exec.create ~nworkers:0 desc r.compiled with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_exec_partition () =
  (* The materialised per-worker task lists are a partition of all task
     ids, each worker's slice ascending. *)
  let r = Lazy.force bearing in
  let nworkers = 3 in
  let desc = desc_of ~nworkers r in
  Par_exec.with_executor ~nworkers desc r.compiled @@ fun px ->
  let tasks = Par_exec.worker_tasks px in
  Alcotest.(check int) "one slice per worker" nworkers (Array.length tasks);
  let seen = Array.make (Round_desc.n_tasks desc) 0 in
  Array.iteri
    (fun w slice ->
      Array.iteri
        (fun i task ->
          seen.(task) <- seen.(task) + 1;
          Alcotest.(check int) "assignment respected" w desc.assignment.(task);
          if i > 0 then
            Alcotest.(check bool) "ascending ids" true (slice.(i - 1) < task))
        slice)
    tasks;
  Array.iteri
    (fun task n ->
      Alcotest.(check int) (Printf.sprintf "task %d scheduled once" task) 1 n)
    seen

(* ---------- differential: Real_domains vs sequential ---------- *)

let sequential_reference (r : P.result) ~solver ~tend =
  let sys =
    Om_ode.Odesys.make
      ~names:(Om_lang.Flat_model.state_names r.model)
      ~dim:r.compiled.dim (P.rhs_fn r)
  in
  let y0 = Om_lang.Flat_model.initial_values r.model in
  match solver with
  | R.Rk4 h -> Om_ode.Rk.integrate_fixed Om_ode.Rk.rk4 sys ~t0:0. ~y0 ~tend ~h
  | _ -> assert false

let check_identical ?(scheduling = R.Static) name (r : P.result) =
  let tend = 1e-4 in
  let solver = R.Rk4 (tend /. 10.) in
  let reference = sequential_reference r ~solver ~tend in
  List.iter
    (fun n ->
      let rep =
        R.execute
          ~config:
            { R.default_config with execution = R.Real_domains n; scheduling }
          ~solver ~tend r
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: times identical with %d domains" name n)
        true
        (rep.trajectory.ts = reference.ts);
      Alcotest.(check bool)
        (Printf.sprintf "%s: states identical with %d domains" name n)
        true
        (rep.trajectory.states = reference.states))
    [ 1; 2; 4 ]

let test_identical_bearing () = check_identical "bearing" (Lazy.force bearing)

let test_identical_powerplant () =
  check_identical "powerplant" (Lazy.force powerplant)

let test_identical_semidynamic () =
  (* The acceptance property of the measured rescheduler: swapping LPT
     schedules mid-run must not change a single bit of the trajectory. *)
  check_identical ~scheduling:(R.Semidynamic 3) "bearing semidynamic"
    (Lazy.force bearing);
  check_identical ~scheduling:(R.Semidynamic 3) "powerplant semidynamic"
    (Lazy.force powerplant)

(* ---------- measured semi-dynamic execution ---------- *)

let test_real_reschedules () =
  (* Real_domains + Semidynamic must perform actual reschedules (the
     rescheduler fires every [period] observed rounds), and the report's
     telemetry must be measured, not placeholder. *)
  let r = Lazy.force bearing in
  let tend = 1e-4 in
  let rep =
    R.execute
      ~config:
        {
          R.default_config with
          execution = R.Real_domains 2;
          scheduling = R.Semidynamic 5;
        }
      ~solver:(R.Rk4 (tend /. 10.)) ~tend r
  in
  (* Rk4 over 10 steps = 40 RHS rounds; period 5 -> several reschedules
     even if a few rounds fall under clock granularity. *)
  Alcotest.(check bool) "at least one real reschedule" true
    (rep.reschedules >= 1);
  Alcotest.(check bool) "reschedule overhead measured, nonnegative" true
    (rep.sched_overhead_seconds >= 0.);
  Alcotest.(check int) "per-worker compute array" 2
    (Array.length rep.worker_compute_seconds);
  Alcotest.(check int) "per-worker wait array" 2
    (Array.length rep.worker_wait_seconds);
  Array.iter
    (fun c ->
      Alcotest.(check bool) "compute nonnegative" true (c >= 0.))
    rep.worker_compute_seconds;
  Array.iter
    (fun w -> Alcotest.(check bool) "wait nonnegative" true (w >= 0.))
    rep.worker_wait_seconds;
  Alcotest.(check bool) "utilization in (0, 1]" true
    (rep.worker_utilization > 0. && rep.worker_utilization <= 1.)

let test_set_assignment () =
  (* Swapping the live assignment between rounds changes the partition
     without changing results. *)
  let r = Lazy.force bearing in
  let nworkers = 2 in
  let desc = desc_of ~nworkers r in
  let dim = r.compiled.dim in
  let y = Om_lang.Flat_model.initial_values r.model in
  let reference = Array.make dim 0. in
  Bb.rhs_fn r.compiled 0. y reference;
  Par_exec.with_executor ~nworkers desc r.compiled @@ fun px ->
  let ydot = Array.make dim 0. in
  Par_exec.rhs_fn px 0. y ydot;
  Alcotest.(check bool) "original schedule matches sequential" true
    (ydot = reference);
  (* Invert the assignment: every task moves to the other worker. *)
  let flipped = Array.map (fun w -> 1 - w) desc.assignment in
  Par_exec.set_assignment px flipped;
  let tasks = Par_exec.worker_tasks px in
  Array.iteri
    (fun w slice ->
      Array.iter
        (fun task ->
          Alcotest.(check int) "flipped assignment respected" w
            flipped.(task))
        slice)
    tasks;
  Array.fill ydot 0 dim 0.;
  Par_exec.rhs_fn px 0. y ydot;
  Alcotest.(check bool) "flipped schedule matches sequential" true
    (ydot = reference)

let test_set_assignment_invalid () =
  let r = Lazy.force bearing in
  let nworkers = 2 in
  let desc = desc_of ~nworkers r in
  Par_exec.with_executor ~nworkers desc r.compiled @@ fun px ->
  let ntasks = Array.length r.compiled.Bb.tasks in
  Alcotest.(check bool) "wrong length rejected" true
    (match Par_exec.set_assignment px [| 0 |] with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "worker id out of range rejected" true
    (match Par_exec.set_assignment px (Array.make ntasks nworkers) with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_measured_telemetry () =
  let r = Lazy.force bearing in
  let nworkers = 2 in
  let desc = desc_of ~nworkers r in
  Par_exec.with_measured ~nworkers ~tasks:r.tasks desc r.compiled @@ fun m ->
  let dim = r.compiled.dim in
  let y = Om_lang.Flat_model.initial_values r.model in
  let ydot = Array.make dim 0. in
  for _ = 1 to 20 do
    Par_exec.measured_rhs_fn m 0. y ydot
  done;
  let st = Par_exec.stats m in
  let module Rs = Om_parallel.Round_stats in
  Alcotest.(check int) "rounds observed" 20 (Rs.rounds st);
  Alcotest.(check int) "no reschedules without semidynamic" 0
    (Rs.reschedules st);
  Alcotest.(check bool) "round time positive" true (Rs.round_seconds st > 0.);
  Alcotest.(check int) "compute per worker" nworkers
    (Array.length (Rs.worker_compute st));
  Alcotest.(check int) "wait per worker" nworkers
    (Array.length (Rs.worker_wait st));
  Array.iter
    (fun w -> Alcotest.(check bool) "wait nonnegative" true (w >= 0.))
    (Rs.worker_wait st);
  let u = Rs.utilization st in
  Alcotest.(check bool) "utilization in (0, 1]" true (u > 0. && u <= 1.)

(* ---------- zero allocation in the steady state ---------- *)

let test_round_zero_alloc () =
  (* After warm-up, a parallel RHS round must allocate nothing on the
     supervisor domain: measure the minor-word delta over two loop sizes
     so fixed per-measurement costs cancel (same idiom as the register
     VM's allocation test). *)
  let r = Lazy.force bearing in
  let nworkers = 2 in
  let desc = desc_of ~nworkers r in
  Par_exec.with_executor ~nworkers desc r.compiled @@ fun px ->
  let dim = r.compiled.dim in
  let y = Om_lang.Flat_model.initial_values r.model in
  let ydot = Array.make dim 0. in
  let words n =
    Par_exec.rhs_fn px 0. y ydot;
    let before = Gc.minor_words () in
    for _ = 1 to n do
      Par_exec.rhs_fn px 0. y ydot
    done;
    Gc.minor_words () -. before
  in
  let d1 = words 50 in
  let d2 = words 550 in
  Alcotest.(check (float 0.)) "zero words per round" 0. (d2 -. d1)

let test_measured_round_zero_alloc () =
  (* The measured semi-dynamic path — per-task timing, telemetry
     accumulation, share normalisation, EWMA observation — must also be
     allocation-free on the supervisor in rounds where no reschedule
     fires (period larger than the loop). *)
  let r = Lazy.force bearing in
  let nworkers = 2 in
  let desc = desc_of ~nworkers r in
  Par_exec.with_measured ~semidynamic:1_000_000 ~nworkers ~tasks:r.tasks desc
    r.compiled
  @@ fun m ->
  let dim = r.compiled.dim in
  let y = Om_lang.Flat_model.initial_values r.model in
  let ydot = Array.make dim 0. in
  let words n =
    Par_exec.measured_rhs_fn m 0. y ydot;
    let before = Gc.minor_words () in
    for _ = 1 to n do
      Par_exec.measured_rhs_fn m 0. y ydot
    done;
    Gc.minor_words () -. before
  in
  let d1 = words 50 in
  let d2 = words 550 in
  Alcotest.(check (float 0.)) "zero words per measured round" 0. (d2 -. d1)

(* ---------- scaling JSON ---------- *)

let test_scaling_json_nan () =
  (* Non-finite measurements must serialise as null, never as the
     invalid-JSON tokens nan/inf. *)
  let module S = Om_parallel.Scaling in
  let point =
    {
      S.workers = 2;
      rounds = 10;
      seconds = Float.nan;
      rhs_per_sec = Float.infinity;
      speedup = Float.neg_infinity;
      identical = false;
      first_diff = Some 3;
      worker_compute = [| 0.5; Float.nan |];
      worker_wait = [| 0.; 0.1 |];
      reschedules = 1;
    }
  in
  let series =
    {
      S.model = "nan-model";
      dim = 4;
      ntasks = 7;
      semidynamic = Some 10;
      points = [ point ];
    }
  in
  let path = Filename.temp_file "scaling" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.write_json ~path ~ncores:4 [ series ];
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let contains sub =
        let n = String.length text and m = String.length sub in
        let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "nan serialised as null" true
        (contains "\"seconds\": null");
      Alcotest.(check bool) "nan inside float array serialised as null" true
        (contains "null]");
      Alcotest.(check bool) "first_diff index present" true
        (contains "\"first_diff\": 3");
      Alcotest.(check bool) "no nan token" false (contains "nan,");
      Alcotest.(check bool) "no inf token" false (contains "inf"))

let () =
  Alcotest.run "om_parallel"
    [
      ( "domain_pool",
        [
          Alcotest.test_case "round protocol" `Quick test_pool_rounds;
          Alcotest.test_case "invalid" `Quick test_pool_invalid;
          Alcotest.test_case "exception containment" `Quick
            test_pool_exception_containment;
          Alcotest.test_case "typed fault passthrough" `Quick
            test_pool_typed_fault_passthrough;
          Alcotest.test_case "stall detection" `Quick test_pool_stall_detection;
          Alcotest.test_case "spawn failure" `Quick test_pool_spawn_fail;
        ] );
      ( "round_desc",
        [ Alcotest.test_case "validation" `Quick test_desc_validation ] );
      ( "par_exec",
        [
          Alcotest.test_case "validation" `Quick test_exec_validation;
          Alcotest.test_case "partition" `Quick test_exec_partition;
          Alcotest.test_case "zero-alloc round" `Quick test_round_zero_alloc;
          Alcotest.test_case "set_assignment" `Quick test_set_assignment;
          Alcotest.test_case "set_assignment invalid" `Quick
            test_set_assignment_invalid;
          Alcotest.test_case "drop_worker" `Quick test_drop_worker;
          Alcotest.test_case "fault injection" `Quick test_exec_fault_injection;
          Alcotest.test_case "spawn-fail injection" `Quick
            test_exec_spawn_fail_injection;
        ] );
      ( "measured",
        [
          Alcotest.test_case "telemetry" `Quick test_measured_telemetry;
          Alcotest.test_case "real reschedules" `Quick test_real_reschedules;
          Alcotest.test_case "zero-alloc measured round" `Quick
            test_measured_round_zero_alloc;
        ] );
      ( "differential",
        [
          Alcotest.test_case "bearing identical" `Quick test_identical_bearing;
          Alcotest.test_case "powerplant identical" `Quick
            test_identical_powerplant;
          Alcotest.test_case "semidynamic identical" `Quick
            test_identical_semidynamic;
        ] );
      ( "scaling",
        [ Alcotest.test_case "nan json" `Quick test_scaling_json_nan ] );
    ]
