(* Tests for the real multicore executor: domain pool round protocol,
   descriptor validation, bit-identical trajectories through Runtime for
   every worker count, and the zero-allocation steady-state round. *)

module P = Om_codegen.Pipeline
module Bb = Om_codegen.Bytecode_backend
module R = Objectmath.Runtime
module Round_desc = Om_machine.Round_desc
module Domain_pool = Om_parallel.Domain_pool
module Par_exec = Om_parallel.Par_exec

let bearing = lazy (P.compile (Om_models.Bearing2d.model ()))
let powerplant = lazy (P.compile (Om_models.Powerplant.model ()))

let desc_of ~nworkers (r : P.result) =
  let costs = Bb.task_costs_static r.compiled in
  let sched = Om_sched.Lpt.schedule ~costs r.tasks ~nprocs:nworkers in
  Round_desc.make ~assignment:sched.assignment ~task_flops:costs
    ~task_reads:(Array.map (fun t -> t.Om_sched.Task.reads) r.tasks)
    ~task_writes:(Array.map (fun t -> t.Om_sched.Task.writes) r.tasks)
    ~state_dim:r.compiled.dim

(* ---------- domain pool ---------- *)

let test_pool_rounds () =
  let hits = Array.make 4 0 in
  let pool =
    Domain_pool.create ~job:(fun w -> hits.(w) <- hits.(w) + 1) 4
  in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      for _ = 1 to 25 do
        Domain_pool.round pool
      done;
      Alcotest.(check int) "rounds counted" 25 (Domain_pool.rounds pool);
      Alcotest.(check (array int)) "every worker ran every round"
        [| 25; 25; 25; 25 |] hits);
  Alcotest.(check bool) "inactive after shutdown" false
    (Domain_pool.active pool);
  (* Idempotent: a second shutdown must not raise or hang. *)
  Domain_pool.shutdown pool

let test_pool_invalid () =
  Alcotest.check_raises "zero workers"
    (Invalid_argument "Domain_pool.create: nworkers < 1") (fun () ->
      ignore (Domain_pool.create ~job:ignore 0))

(* ---------- round descriptor ---------- *)

let test_desc_validation () =
  let ok =
    Round_desc.make ~assignment:[| 0; 1; 0 |] ~task_flops:[| 1.; 2.; 3. |]
      ~task_reads:[| [ 0 ]; [ 1 ]; [] |]
      ~task_writes:[| [ 0 ]; [ 1 ]; [ 2 ] |]
      ~state_dim:3
  in
  Alcotest.(check int) "n_tasks" 3 (Round_desc.n_tasks ok);
  Alcotest.(check int) "min_workers" 2 (Round_desc.min_workers ok);
  let mismatched () =
    ignore
      (Round_desc.make ~assignment:[| 0; 1 |] ~task_flops:[| 1. |]
         ~task_reads:[| [] |] ~task_writes:[| [] |] ~state_dim:1)
  in
  Alcotest.(check bool) "length mismatch rejected" true
    (match mismatched () with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_exec_validation () =
  let r = Lazy.force bearing in
  let desc = desc_of ~nworkers:4 r in
  Alcotest.(check bool) "nworkers below assignment range rejected" true
    (match Par_exec.create ~nworkers:2 desc r.compiled with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "nworkers < 1 rejected" true
    (match Par_exec.create ~nworkers:0 desc r.compiled with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_exec_partition () =
  (* The materialised per-worker task lists are a partition of all task
     ids, each worker's slice ascending. *)
  let r = Lazy.force bearing in
  let nworkers = 3 in
  let desc = desc_of ~nworkers r in
  Par_exec.with_executor ~nworkers desc r.compiled @@ fun px ->
  let tasks = Par_exec.worker_tasks px in
  Alcotest.(check int) "one slice per worker" nworkers (Array.length tasks);
  let seen = Array.make (Round_desc.n_tasks desc) 0 in
  Array.iteri
    (fun w slice ->
      Array.iteri
        (fun i task ->
          seen.(task) <- seen.(task) + 1;
          Alcotest.(check int) "assignment respected" w desc.assignment.(task);
          if i > 0 then
            Alcotest.(check bool) "ascending ids" true (slice.(i - 1) < task))
        slice)
    tasks;
  Array.iteri
    (fun task n ->
      Alcotest.(check int) (Printf.sprintf "task %d scheduled once" task) 1 n)
    seen

(* ---------- differential: Real_domains vs sequential ---------- *)

let sequential_reference (r : P.result) ~solver ~tend =
  let sys =
    Om_ode.Odesys.make
      ~names:(Om_lang.Flat_model.state_names r.model)
      ~dim:r.compiled.dim (P.rhs_fn r)
  in
  let y0 = Om_lang.Flat_model.initial_values r.model in
  match solver with
  | R.Rk4 h -> Om_ode.Rk.integrate_fixed Om_ode.Rk.rk4 sys ~t0:0. ~y0 ~tend ~h
  | _ -> assert false

let check_identical name (r : P.result) =
  let tend = 1e-4 in
  let solver = R.Rk4 (tend /. 10.) in
  let reference = sequential_reference r ~solver ~tend in
  List.iter
    (fun n ->
      let rep =
        R.execute
          ~config:{ R.default_config with execution = R.Real_domains n }
          ~solver ~tend r
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: times identical with %d domains" name n)
        true
        (rep.trajectory.ts = reference.ts);
      Alcotest.(check bool)
        (Printf.sprintf "%s: states identical with %d domains" name n)
        true
        (rep.trajectory.states = reference.states))
    [ 1; 2; 4 ]

let test_identical_bearing () = check_identical "bearing" (Lazy.force bearing)

let test_identical_powerplant () =
  check_identical "powerplant" (Lazy.force powerplant)

(* ---------- zero allocation in the steady state ---------- *)

let test_round_zero_alloc () =
  (* After warm-up, a parallel RHS round must allocate nothing on the
     supervisor domain: measure the minor-word delta over two loop sizes
     so fixed per-measurement costs cancel (same idiom as the register
     VM's allocation test). *)
  let r = Lazy.force bearing in
  let nworkers = 2 in
  let desc = desc_of ~nworkers r in
  Par_exec.with_executor ~nworkers desc r.compiled @@ fun px ->
  let dim = r.compiled.dim in
  let y = Om_lang.Flat_model.initial_values r.model in
  let ydot = Array.make dim 0. in
  let words n =
    Par_exec.rhs_fn px 0. y ydot;
    let before = Gc.minor_words () in
    for _ = 1 to n do
      Par_exec.rhs_fn px 0. y ydot
    done;
    Gc.minor_words () -. before
  in
  let d1 = words 50 in
  let d2 = words 550 in
  Alcotest.(check (float 0.)) "zero words per round" 0. (d2 -. d1)

let () =
  Alcotest.run "om_parallel"
    [
      ( "domain_pool",
        [
          Alcotest.test_case "round protocol" `Quick test_pool_rounds;
          Alcotest.test_case "invalid" `Quick test_pool_invalid;
        ] );
      ( "round_desc",
        [ Alcotest.test_case "validation" `Quick test_desc_validation ] );
      ( "par_exec",
        [
          Alcotest.test_case "validation" `Quick test_exec_validation;
          Alcotest.test_case "partition" `Quick test_exec_partition;
          Alcotest.test_case "zero-alloc round" `Quick test_round_zero_alloc;
        ] );
      ( "differential",
        [
          Alcotest.test_case "bearing identical" `Quick test_identical_bearing;
          Alcotest.test_case "powerplant identical" `Quick
            test_identical_powerplant;
        ] );
    ]
