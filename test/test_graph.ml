(* Tests for the graph substrate: digraph operations, Tarjan SCC,
   condensation, topological ordering/layering and DOT output. *)

module D = Om_graph.Digraph
module Scc = Om_graph.Scc
module Topo = Om_graph.Topo
module Dot = Om_graph.Dot

let build labels edges = D.of_edges labels edges

let test_digraph_basic () =
  let g = build [ "a"; "b"; "c" ] [ ("a", "b"); ("b", "c") ] in
  Alcotest.(check int) "nodes" 3 (D.node_count g);
  Alcotest.(check int) "edges" 2 (D.edge_count g);
  Alcotest.(check (list int)) "succ a" [ 1 ] (D.succ g 0);
  Alcotest.(check (list int)) "pred c" [ 1 ] (D.pred g 2);
  Alcotest.(check string) "label" "b" (D.label g 1);
  Alcotest.(check bool) "mem" true (D.mem_edge g 0 1);
  Alcotest.(check bool) "not mem" false (D.mem_edge g 1 0)

let test_duplicate_edges () =
  let g = D.create () in
  let a = D.add_node g "a" and b = D.add_node g "b" in
  D.add_edge g a b;
  D.add_edge g a b;
  Alcotest.(check int) "dedup" 1 (D.edge_count g)

let test_transpose () =
  let g = build [ "a"; "b" ] [ ("a", "b") ] in
  let t = D.transpose g in
  Alcotest.(check bool) "reversed" true (D.mem_edge t 1 0);
  Alcotest.(check bool) "original gone" false (D.mem_edge t 0 1)

let test_bad_edge () =
  let g = D.create () in
  let a = D.add_node g "a" in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Digraph: node 7 out of range") (fun () ->
      D.add_edge g a 7)

(* ---------- Tarjan ---------- *)

let test_scc_simple_cycle () =
  let g = build [ "a"; "b"; "c" ] [ ("a", "b"); ("b", "c"); ("c", "a") ] in
  let c = Scc.tarjan g in
  Alcotest.(check int) "one component" 1 c.count

let test_scc_dag () =
  let g = build [ "a"; "b"; "c" ] [ ("a", "b"); ("b", "c") ] in
  let c = Scc.tarjan g in
  Alcotest.(check int) "three components" 3 c.count

let test_scc_two_cycles () =
  let g =
    build
      [ "a"; "b"; "c"; "d"; "e" ]
      [ ("a", "b"); ("b", "a"); ("b", "c"); ("c", "d"); ("d", "c"); ("d", "e") ]
  in
  let c = Scc.tarjan g in
  Alcotest.(check int) "3 components" 3 c.count;
  (* a,b together; c,d together; e alone *)
  Alcotest.(check bool) "a~b" true (c.comp_of.(0) = c.comp_of.(1));
  Alcotest.(check bool) "c~d" true (c.comp_of.(2) = c.comp_of.(3));
  Alcotest.(check bool) "e separate" true (c.comp_of.(4) <> c.comp_of.(3))

let test_scc_reverse_topological () =
  (* Component numbering: earlier components have no edges into later
     ones (reverse topological). *)
  let g = build [ "a"; "b"; "c" ] [ ("a", "b"); ("b", "c") ] in
  let c = Scc.tarjan g in
  (* "c" is a sink: must be component 0. *)
  Alcotest.(check int) "sink first" 0 c.comp_of.(2)

let test_condensation () =
  let g =
    build
      [ "a"; "b"; "c"; "d" ]
      [ ("a", "b"); ("b", "a"); ("b", "c"); ("c", "d"); ("d", "c") ]
  in
  let c = Scc.tarjan g in
  let cond = Scc.condensation g c in
  Alcotest.(check int) "2 supernodes" 2 (D.node_count cond);
  Alcotest.(check int) "1 superedge" 1 (D.edge_count cond);
  Alcotest.(check bool) "acyclic" true (Topo.is_acyclic cond)

let test_nontrivial () =
  let g =
    build [ "a"; "b"; "c"; "s" ]
      [ ("a", "b"); ("b", "a"); ("s", "s") ]
  in
  let c = Scc.tarjan g in
  let nt = Scc.nontrivial g c in
  (* {a,b} is nontrivial; the self loop s is too; c is not. *)
  Alcotest.(check int) "two nontrivial" 2 (List.length nt)

(* Property: comp_of is consistent with mutual reachability. *)
let reachable g =
  let n = D.node_count g in
  let r = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    let rec dfs v =
      List.iter (fun w -> if not r.(i).(w) then begin r.(i).(w) <- true; dfs w end) (D.succ g v)
    in
    dfs i
  done;
  r

let random_graph_gen =
  QCheck.Gen.(
    let* n = int_range 1 12 in
    let* edges =
      list_size (int_bound (n * 2))
        (pair (int_bound (n - 1)) (int_bound (n - 1)))
    in
    return (n, edges))

let arbitrary_graph =
  QCheck.make
    ~print:(fun (n, e) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) e)))
    random_graph_gen

let graph_of (n, edges) =
  let g = D.create () in
  for i = 0 to n - 1 do
    ignore (D.add_node g (string_of_int i))
  done;
  List.iter (fun (a, b) -> D.add_edge g a b) edges;
  g

let prop_scc_mutual_reachability =
  QCheck.Test.make ~name:"same SCC iff mutually reachable" ~count:200
    arbitrary_graph (fun spec ->
      let g = graph_of spec in
      let c = Scc.tarjan g in
      let r = reachable g in
      let n = D.node_count g in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then begin
            let same = c.comp_of.(i) = c.comp_of.(j) in
            let mutual = r.(i).(j) && r.(j).(i) in
            if same <> mutual then ok := false
          end
        done
      done;
      !ok)

let prop_condensation_acyclic =
  QCheck.Test.make ~name:"condensation is acyclic" ~count:200 arbitrary_graph
    (fun spec ->
      let g = graph_of spec in
      let c = Scc.tarjan g in
      Topo.is_acyclic (Scc.condensation g c))

(* ---------- topo ---------- *)

let test_topo_sort () =
  let g = build [ "a"; "b"; "c"; "d" ] [ ("a", "b"); ("a", "c"); ("b", "d"); ("c", "d") ] in
  let order = Topo.sort g in
  let pos = Array.make 4 0 in
  List.iteri (fun i v -> pos.(v) <- i) order;
  Alcotest.(check bool) "a before b" true (pos.(0) < pos.(1));
  Alcotest.(check bool) "b before d" true (pos.(1) < pos.(3));
  Alcotest.(check bool) "c before d" true (pos.(2) < pos.(3))

let test_topo_cycle () =
  let g = build [ "a"; "b" ] [ ("a", "b"); ("b", "a") ] in
  Alcotest.check_raises "cycle" (Invalid_argument "Topo.sort: graph has a cycle")
    (fun () -> ignore (Topo.sort g))

let test_layers () =
  let g = build [ "a"; "b"; "c"; "d" ] [ ("a", "b"); ("a", "c"); ("b", "d"); ("c", "d") ] in
  let layers = Topo.layers g in
  Alcotest.(check int) "3 layers" 3 (List.length layers);
  Alcotest.(check (list int)) "layer 0" [ 0 ] (List.nth layers 0);
  Alcotest.(check (list int)) "layer 1" [ 1; 2 ] (List.sort compare (List.nth layers 1));
  Alcotest.(check int) "longest path" 3 (Topo.longest_path g)

let prop_layers_respect_edges =
  QCheck.Test.make ~name:"layers respect edges on DAGs" ~count:200
    arbitrary_graph (fun spec ->
      let n, edges = spec in
      (* Force a DAG by orienting edges low->high. *)
      let dag_edges =
        List.filter_map
          (fun (a, b) ->
            if a < b then Some (a, b) else if b < a then Some (b, a) else None)
          edges
      in
      let g = graph_of (n, dag_edges) in
      let layers = Topo.layers g in
      let level = Array.make n 0 in
      List.iteri (fun i l -> List.iter (fun v -> level.(v) <- i) l) layers;
      List.for_all (fun (a, b) -> level.(a) < level.(b)) dag_edges)

(* ---------- dot ---------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_dot_output () =
  let g = build [ "a"; "b" ] [ ("a", "b") ] in
  let s = Dot.to_string g in
  Alcotest.(check bool) "has node a" true
    (contains s "label=\"a\"");
  Alcotest.(check bool) "has edge" true (contains s "n0 -> n1")

let test_dot_clusters () =
  let g = build [ "a"; "b"; "c" ] [ ("a", "b"); ("b", "a") ] in
  let c = Scc.tarjan g in
  let s = Dot.with_components g c in
  Alcotest.(check bool) "has cluster" true
    (contains s "subgraph cluster_")

let test_dot_escaping () =
  let g = build [ "we\"ird" ] [] in
  let s = Dot.to_string g in
  Alcotest.(check bool) "escaped quote" true
    (contains s "we\\\"ird")

let test_dot_save () =
  let g = build [ "a" ] [] in
  let path = Filename.temp_file "graph" ".dot" in
  Dot.save path (Dot.to_string g);
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "file written" true (len > 10)

let test_condensation_labels () =
  let g = build [ "a"; "b"; "c" ] [ ("a", "b"); ("b", "a") ] in
  let c = Scc.tarjan g in
  let cond = Scc.condensation g c in
  let labels = List.map (D.label cond) (D.nodes cond) in
  Alcotest.(check bool) "member count annotated" true
    (List.exists (fun l -> contains l "(+1)") labels)

let () =
  let q = Qcheck_seed.to_alcotest in
  Alcotest.run "om_graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "basic" `Quick test_digraph_basic;
          Alcotest.test_case "duplicate edges" `Quick test_duplicate_edges;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "bad edge" `Quick test_bad_edge;
        ] );
      ( "scc",
        [
          Alcotest.test_case "simple cycle" `Quick test_scc_simple_cycle;
          Alcotest.test_case "dag" `Quick test_scc_dag;
          Alcotest.test_case "two cycles" `Quick test_scc_two_cycles;
          Alcotest.test_case "reverse topological numbering" `Quick
            test_scc_reverse_topological;
          Alcotest.test_case "condensation" `Quick test_condensation;
          Alcotest.test_case "nontrivial" `Quick test_nontrivial;
          q prop_scc_mutual_reachability;
          q prop_condensation_acyclic;
        ] );
      ( "topo",
        [
          Alcotest.test_case "sort" `Quick test_topo_sort;
          Alcotest.test_case "cycle detection" `Quick test_topo_cycle;
          Alcotest.test_case "layers" `Quick test_layers;
          q prop_layers_respect_edges;
        ] );
      ( "dot",
        [
          Alcotest.test_case "output" `Quick test_dot_output;
          Alcotest.test_case "clusters" `Quick test_dot_clusters;
          Alcotest.test_case "escaping" `Quick test_dot_escaping;
          Alcotest.test_case "save" `Quick test_dot_save;
          Alcotest.test_case "condensation labels" `Quick
            test_condensation_labels;
        ] );
    ]
