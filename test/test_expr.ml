(* Tests for the symbolic expression engine: smart-constructor
   normalisation, simplification, differentiation, evaluation, printing
   and the cost model. *)

module E = Om_expr.Expr
module Eval = Om_expr.Eval
module Deriv = Om_expr.Deriv
module Simplify = Om_expr.Simplify
module Subst = Om_expr.Subst
module Cost = Om_expr.Cost
module Pf = Om_expr.Prefix_form

let x = E.var "x"
let y = E.var "y"
let z = E.var "z"

let check_expr msg expected actual =
  Alcotest.check
    (Alcotest.testable E.pp E.equal)
    msg expected actual

let check_float = Alcotest.check (Alcotest.float 1e-9)

(* ---------- random expression generator for property tests ---------- *)

let leaf_gen =
  QCheck.Gen.(
    oneof
      [
        map E.const (float_range (-4.) 4.);
        oneofl [ x; y; z ];
      ])

let expr_gen =
  QCheck.Gen.(
    sized_size (int_bound 6) @@ fix (fun self n ->
        if n <= 0 then leaf_gen
        else
          frequency
            [
              (2, leaf_gen);
              ( 3,
                map2
                  (fun a b -> E.add [ a; b ])
                  (self (n / 2)) (self (n / 2)) );
              ( 3,
                map2
                  (fun a b -> E.mul [ a; b ])
                  (self (n / 2)) (self (n / 2)) );
              (1, map (fun a -> E.neg a) (self (n - 1)));
              (1, map (fun a -> E.sin a) (self (n - 1)));
              (1, map (fun a -> E.cos a) (self (n - 1)));
              (1, map (fun a -> E.powi a 2) (self (n - 1)));
              ( 1,
                map2
                  (fun a b ->
                    E.if_ (E.cond a E.Lt b) (E.add [ a; b ]) (E.sub a b))
                  (self (n / 2)) (self (n / 2)) );
            ]))

let arbitrary_expr = QCheck.make ~print:(Fmt.to_to_string E.pp) expr_gen

let env_of v = Eval.env_of_list [ ("x", v.(0)); ("y", v.(1)); ("z", v.(2)) ]

let triple_gen = QCheck.Gen.(triple (float_range (-3.) 3.) (float_range (-3.) 3.) (float_range (-3.) 3.))

let arbitrary_expr_env =
  QCheck.make
    ~print:(fun (e, (a, b, c)) ->
      Printf.sprintf "%s @ (%g, %g, %g)" (Fmt.to_to_string E.pp e) a b c)
    QCheck.Gen.(pair expr_gen triple_gen)

let close a b =
  (* Exact equality first: it is the strongest agreement and the only
     sound comparison when both sides overflow to the same infinity
     (inf - inf is nan, which fails the relative test below). *)
  a = b
  || (Float.is_nan a && Float.is_nan b)
  || Float.abs (a -. b) <= 1e-6 *. (1. +. Float.max (Float.abs a) (Float.abs b))

(* ---------- unit tests: smart constructors ---------- *)

let test_constant_folding () =
  check_expr "2+3" (E.const 5.) (E.add [ E.const 2.; E.const 3. ]);
  check_expr "2*3*x*0" E.zero (E.mul [ E.const 2.; E.const 3.; x; E.zero ]);
  check_expr "x*1" x (E.mul [ x; E.one ]);
  check_expr "x+0" x (E.add [ x; E.zero ]);
  check_expr "x^0" E.one (E.powi x 0);
  check_expr "x^1" x (E.powi x 1);
  check_expr "2^3" (E.const 8.) (E.pow E.two (E.const 3.))

let test_like_terms () =
  check_expr "x+x = 2x" E.(mul [ two; x ]) (E.add [ x; x ]);
  check_expr "2x+3x = 5x" E.(mul [ const 5.; x ]) (E.add [ E.mul [ E.two; x ]; E.mul [ E.const 3.; x ] ]);
  check_expr "x-x = 0" E.zero (E.sub x x);
  check_expr "x*x = x^2" (E.powi x 2) (E.mul [ x; x ]);
  check_expr "x^2*x^3 = x^5" (E.powi x 5) (E.mul [ E.powi x 2; E.powi x 3 ]);
  check_expr "x/x = 1" E.one (E.div x x)

let test_flattening () =
  check_expr "(x+y)+z = x+(y+z)"
    (E.add [ x; E.add [ y; z ] ])
    (E.add [ E.add [ x; y ]; z ]);
  check_expr "assoc mul"
    (E.mul [ x; E.mul [ y; z ] ])
    (E.mul [ E.mul [ x; y ]; z ])

let test_commutativity () =
  check_expr "x+y = y+x" (E.add [ x; y ]) (E.add [ y; x ]);
  check_expr "x*y = y*x" (E.mul [ x; y ]) (E.mul [ y; x ])

let test_if_collapse () =
  check_expr "if with equal branches"
    x
    (E.if_ (E.cond x E.Lt y) x x);
  check_expr "if with constant condition"
    x
    (E.if_ (E.cond E.one E.Lt E.two) x y)

let test_call_arity () =
  Alcotest.check_raises "sin/2 rejected"
    (Invalid_argument "Expr.call: sin expects 1 arguments") (fun () ->
      ignore (E.call E.Sin [ x; y ]))

let test_vars () =
  Alcotest.(check (list string))
    "vars sorted, unique" [ "x"; "y" ]
    (E.vars (E.add [ x; E.mul [ y; x ] ]));
  Alcotest.(check bool) "mem_var" true (E.mem_var "y" (E.sin y));
  Alcotest.(check bool) "not mem_var" false (E.mem_var "q" (E.sin y))

let test_pp_golden () =
  let show e = Fmt.to_to_string E.pp e in
  Alcotest.(check string) "sum with negative" "x - 2*y"
    (show (E.sub x (E.mul [ E.two; y ])));
  Alcotest.(check string) "division" "x/y" (show (E.div x y));
  Alcotest.(check string) "negated product" "-(x*y)"
    (show (E.neg (E.mul [ x; y ])));
  Alcotest.(check string) "reciprocal" "1/x" (show (E.div E.one x));
  Alcotest.(check string) "power" "x^2" (show (E.powi x 2));
  Alcotest.(check string) "call" "sin(x + y)" (show (E.sin (E.add [ x; y ])))

let test_pp_roundtrip_sanity () =
  let e = E.(sub (mul [ two; x ]) (div y (powi z 2))) in
  let s = Fmt.to_to_string E.pp e in
  Alcotest.(check bool) "prints something" true (String.length s > 3)

(* ---------- simplify ---------- *)

let test_pythagoras () =
  let e = E.(add [ powi (sin x) 2; powi (cos x) 2 ]) in
  check_expr "sin²+cos² = 1" E.one (Simplify.simplify e);
  let e2 = E.(add [ mul [ const 3.; powi (sin x) 2 ]; mul [ const 3.; powi (cos x) 2 ]; y ]) in
  check_expr "3sin²+3cos²+y = 3+y"
    E.(add [ const 3.; y ])
    (Simplify.simplify e2)

let test_sqrt_square () =
  check_expr "sqrt(x²) = |x|" (E.abs x) (Simplify.simplify (E.sqrt (E.powi x 2)));
  check_expr "sqrt(x)² = x" x (Simplify.simplify (E.powi (E.sqrt x) 2))

let test_inverse_pairs () =
  check_expr "log(exp x)" x (Simplify.simplify (E.log (E.exp x)));
  check_expr "exp(log x)" x (Simplify.simplify (E.exp (E.log x)));
  check_expr "abs(abs x)" (E.abs x) (Simplify.simplify (E.abs (E.abs x)))

let test_odd_even_symmetry () =
  check_expr "sin(-x) = -sin x"
    (E.neg (E.sin x))
    (Simplify.simplify (E.sin (E.neg x)));
  check_expr "cos(-x) = cos x" (E.cos x) (Simplify.simplify (E.cos (E.neg x)));
  check_expr "abs(-2x) = abs(2x)"
    (E.abs (E.mul [ E.two; x ]))
    (Simplify.simplify (E.abs (E.mul [ E.const (-2.); x ])));
  (* Symmetry enables collection: sin(x) + sin(-x) = 0. *)
  check_expr "sin x + sin(-x) = 0" E.zero
    (Simplify.simplify (E.add [ E.sin x; E.sin (E.neg x) ]))

let test_expand () =
  let e = E.(mul [ add [ x; y ]; add [ x; E.neg y ] ]) in
  check_expr "(x+y)(x-y) = x²-y²"
    E.(sub (powi x 2) (powi y 2))
    (Simplify.expand e)

let prop_simplify_preserves_value =
  QCheck.Test.make ~name:"simplify preserves evaluation" ~count:300
    arbitrary_expr_env (fun (e, (a, b, c)) ->
      let env = env_of [| a; b; c |] in
      let v1 = Eval.eval env e in
      let v2 = Eval.eval env (Simplify.simplify e) in
      close v1 v2)

let prop_expand_preserves_value =
  QCheck.Test.make ~name:"expand preserves evaluation" ~count:300
    arbitrary_expr_env (fun (e, (a, b, c)) ->
      let env = env_of [| a; b; c |] in
      close (Eval.eval env e) (Eval.eval env (Simplify.expand e)))

let prop_simplify_idempotent =
  QCheck.Test.make ~name:"simplify idempotent" ~count:200 arbitrary_expr
    (fun e ->
      let s = Simplify.simplify e in
      E.equal s (Simplify.simplify s))

(* ---------- differentiation ---------- *)

let finite_diff f v h = (f (v +. h) -. f (v -. h)) /. (2. *. h)

(* Conditionals and |x|-style functions have kinks where finite
   differences legitimately disagree with the branch-wise derivative, so
   the strict comparison only runs on smooth expressions. *)
let has_kink e =
  E.fold
    (fun acc n ->
      acc
      ||
      match n with
      | E.If _ | E.Call ((E.Abs | E.Sign | E.Min | E.Max), _) -> true
      | _ -> false)
    false e

let prop_deriv_matches_finite_difference =
  QCheck.Test.make ~name:"d/dx matches finite differences" ~count:300
    arbitrary_expr_env (fun (e, (a, b, c)) ->
      QCheck.assume (not (has_kink e));
      let de = Deriv.diff "x" e in
      let f v = Eval.eval (env_of [| v; b; c |]) e in
      let exact = Eval.eval (env_of [| a; b; c |]) de in
      let approx = finite_diff f a 1e-5 in
      QCheck.assume (Float.is_finite exact && Float.is_finite approx);
      (* Third-derivative truncation error scales with the value sizes,
         so tolerate a relative error. *)
      Float.abs (exact -. approx)
      <= 1e-3 *. (10. +. Float.max (Float.abs exact) (Float.abs approx)))

let test_deriv_table () =
  check_expr "d sin" (E.cos x) (Deriv.diff "x" (E.sin x));
  check_expr "d cos" (E.neg (E.sin x)) (Deriv.diff "x" (E.cos x));
  check_expr "d exp" (E.exp x) (Deriv.diff "x" (E.exp x));
  check_expr "d log" (E.div E.one x) (Deriv.diff "x" (E.log x));
  check_expr "d x²" E.(mul [ two; x ]) (Deriv.diff "x" (E.powi x 2));
  check_expr "d const" E.zero (Deriv.diff "x" (E.const 42.));
  check_expr "d other var" E.zero (Deriv.diff "x" y)

let test_deriv_product_rule () =
  (* d(x * sin x) = sin x + x cos x *)
  check_expr "product rule"
    E.(add [ sin x; mul [ x; cos x ] ])
    (Deriv.diff "x" (E.mul [ x; E.sin x ]))

let test_gradient () =
  let e = E.(add [ powi x 2; mul [ x; y ] ]) in
  let g = Deriv.gradient [ "x"; "y" ] e in
  check_expr "dx" E.(add [ mul [ two; x ]; y ]) (List.assoc "x" g);
  check_expr "dy" x (List.assoc "y" g)

(* ---------- evaluation ---------- *)

let test_env_of_list_duplicates () =
  (* Later bindings win, like successive assignments. *)
  let env = Eval.env_of_list [ ("x", 1.); ("x", 2.) ] in
  check_float "last binding" 2. (Eval.eval env x)

let test_eval_unbound () =
  Alcotest.check_raises "unbound" (Eval.Unbound "q") (fun () ->
      ignore (Eval.eval (Eval.env_of_list []) (E.var "q")))

let prop_eval_fn_agrees =
  QCheck.Test.make ~name:"eval_fn agrees with eval" ~count:300
    arbitrary_expr_env (fun (e, (a, b, c)) ->
      let names = [| "x"; "y"; "z" |] in
      let f = Eval.eval_fn names e in
      close (f [| a; b; c |]) (Eval.eval (env_of [| a; b; c |]) e))

let prop_cost_dyn_value_agrees =
  QCheck.Test.make ~name:"cost_dyn value agrees with eval" ~count:300
    arbitrary_expr_env (fun (e, (a, b, c)) ->
      let names = [| "x"; "y"; "z" |] in
      let f = Om_expr.Cost_dyn.build names e in
      let acc = ref 0. in
      close (f [| a; b; c |] acc) (Eval.eval (env_of [| a; b; c |]) e))

let prop_cost_dyn_within_static_bounds =
  QCheck.Test.make ~name:"dynamic cost <= worst-case static cost" ~count:300
    arbitrary_expr_env (fun (e, (a, b, c)) ->
      let names = [| "x"; "y"; "z" |] in
      let f = Om_expr.Cost_dyn.build names e in
      let acc = ref 0. in
      ignore (f [| a; b; c |] acc);
      !acc <= Cost.flops e +. 1e-9)

(* ---------- expression VMs ---------- *)

module Vm = Om_expr.Vm
module Vm_stack = Om_expr.Vm_stack
module Vm_code = Om_expr.Vm_code

(* Differential testing wants the full ISA exercised, so extend the
   generator with the binary primitives and nested conditionals. *)
let vm_expr_gen =
  QCheck.Gen.(
    sized_size (int_bound 8) @@ fix (fun self n ->
        if n <= 0 then leaf_gen
        else
          frequency
            [
              (2, leaf_gen);
              (3, map2 (fun a b -> E.add [ a; b ]) (self (n / 2)) (self (n / 2)));
              (3, map2 (fun a b -> E.mul [ a; b ]) (self (n / 2)) (self (n / 2)));
              (1, map2 E.sub (self (n / 2)) (self (n / 2)));
              (1, map (fun a -> E.neg a) (self (n - 1)));
              (1, map (fun a -> E.sin a) (self (n - 1)));
              (1, map (fun a -> E.cos a) (self (n - 1)));
              (1, map (fun a -> E.exp a) (self (n - 1)));
              (1, map (fun a -> E.sqrt (E.abs a)) (self (n - 1)));
              (1, map (fun a -> E.powi a 2) (self (n - 1)));
              (1, map (fun a -> E.powi a 3) (self (n - 1)));
              (1, map2 E.atan2 (self (n / 2)) (self (n / 2)));
              (1, map2 E.hypot (self (n / 2)) (self (n / 2)));
              (1, map2 E.min_e (self (n / 2)) (self (n / 2)));
              (1, map2 E.max_e (self (n / 2)) (self (n / 2)));
              ( 2,
                map2
                  (fun a b ->
                    E.if_ (E.cond a E.Lt b) (E.add [ a; b ]) (E.sub a b))
                  (self (n / 2)) (self (n / 2)) );
              ( 1,
                map2
                  (fun a b ->
                    E.if_ (E.cond a E.Ge b)
                      (E.if_ (E.cond b E.Gt E.zero) a (E.neg b))
                      (E.mul [ a; b ]))
                  (self (n / 2)) (self (n / 2)) );
            ]))

let arbitrary_vm_expr_env =
  QCheck.make
    ~print:(fun (e, (a, b, c)) ->
      Printf.sprintf "%s @ (%g, %g, %g)" (Fmt.to_to_string E.pp e) a b c)
    QCheck.Gen.(pair vm_expr_gen triple_gen)

let prop_vm_matches_eval =
  QCheck.Test.make ~name:"register VM agrees with tree evaluation" ~count:500
    arbitrary_vm_expr_env (fun (e, (a, b, c)) ->
      let names = [| "x"; "y"; "z" |] in
      let p = Vm.compile names e in
      close (Vm.run p [| a; b; c |]) (Eval.eval (env_of [| a; b; c |]) e))

let prop_vm_peephole_preserves_value =
  QCheck.Test.make ~name:"peephole pass preserves VM results" ~count:500
    arbitrary_vm_expr_env (fun (e, (a, b, c)) ->
      let names = [| "x"; "y"; "z" |] in
      let p0 = Vm.compile ~optimize:false names e in
      let p1 = Vm.compile names e in
      close (Vm.run p0 [| a; b; c |]) (Vm.run p1 [| a; b; c |]))

let prop_vm_peephole_never_grows_code =
  QCheck.Test.make ~name:"peephole pass never grows code" ~count:300
    arbitrary_vm_expr_env (fun (e, _) ->
      let names = [| "x"; "y"; "z" |] in
      Vm.length (Vm.compile names e)
      <= Vm.length (Vm.compile ~optimize:false names e))

let prop_vmstack_matches_eval =
  QCheck.Test.make ~name:"stack VM agrees with tree evaluation" ~count:300
    arbitrary_expr_env (fun (e, (a, b, c)) ->
      let names = [| "x"; "y"; "z" |] in
      let p = Vm_stack.compile names e in
      close (Vm_stack.run p [| a; b; c |]) (Eval.eval (env_of [| a; b; c |]) e))

let prop_vm_stack_bound_respected =
  QCheck.Test.make ~name:"stack VM max_stack is an upper bound" ~count:300
    arbitrary_expr (fun e ->
      (* Running would raise Invalid_argument on stack overflow since the
         operand array is sized by max_stack. *)
      let p = Vm_stack.compile [| "x"; "y"; "z" |] e in
      ignore (Vm_stack.run p [| 0.5; -0.5; 1.5 |]);
      Vm_stack.max_stack p >= 1)

let prop_vm_code_size_linear =
  QCheck.Test.make ~name:"VM code size linear in expression size" ~count:300
    arbitrary_expr (fun e ->
      let ps = Vm_stack.compile [| "x"; "y"; "z" |] e in
      let pr = Vm.compile ~optimize:false [| "x"; "y"; "z" |] e in
      Vm_stack.length ps <= 3 * E.size e && Vm.length pr <= 4 * E.size e)

let test_vm_unbound () =
  Alcotest.check_raises "unknown variable (register)" (Eval.Unbound "q")
    (fun () -> ignore (Vm.compile [| "x" |] (E.var "q")));
  Alcotest.check_raises "unknown variable (stack)" (Eval.Unbound "q")
    (fun () -> ignore (Vm_stack.compile [| "x" |] (E.var "q")))

let test_vm_conditional_branches () =
  let e = E.if_ (E.cond x E.Lt E.zero) (E.const 10.) (E.const 20.) in
  let p = Vm.compile [| "x" |] e in
  check_float "then branch" 10. (Vm.run p [| -1. |]);
  check_float "else branch" 20. (Vm.run p [| 1. |]);
  let ps = Vm_stack.compile [| "x" |] e in
  check_float "then branch (stack)" 10. (Vm_stack.run ps [| -1. |]);
  check_float "else branch (stack)" 20. (Vm_stack.run ps [| 1. |])

let test_vm_disassemble () =
  let p = Vm.compile [| "x" |] (E.add [ x; E.one ]) in
  let d = Vm.disassemble p in
  Alcotest.(check bool) "has load" true
    (String.length d > 0
    && List.exists
         (fun l -> String.length l > 6)
         (String.split_on_char '\n' d));
  (* x + 1 folds to [ldv; addk] after the peephole pass. *)
  Alcotest.(check int) "two instrs" 2 (Vm.length p)

(* The flagship fusion case: x*y + z*x + 3 collapses to
   vmul / addk / vmacc — three instructions, two of them fused. *)
let test_vm_fusion () =
  let e = E.add [ E.mul [ x; y ]; E.mul [ z; x ]; E.const 3. ] in
  let p = Vm.compile [| "x"; "y"; "z" |] e in
  check_float "value" (2. *. 3. +. 5. *. 2. +. 3.)
    (Vm.run p [| 2.; 3.; 5. |]);
  Alcotest.(check int) "three instrs" 3 (Vm.length p);
  let s = Vm.stats p in
  Alcotest.(check int) "two fused" 2 s.fused;
  let has op =
    Array.exists
      (fun (i : Vm_code.instr) ->
        match (op, i) with
        | `Vmul, Vm_code.Vmul _ -> true
        | `Vmacc, Vm_code.Vmacc _ -> true
        | _ -> false)
      (Vm.instructions p)
  in
  Alcotest.(check bool) "vmul present" true (has `Vmul);
  Alcotest.(check bool) "vmacc present" true (has `Vmacc)

(* Constant subtrees fold at compile time: no call instructions survive
   and the program is a single constant load. *)
let test_vm_constant_folding () =
  let e =
    E.add [ E.sin (E.const 2.); E.mul [ E.const 3.; E.const 4. ] ]
  in
  let p = Vm.compile [| "x" |] e in
  Alcotest.(check int) "single ldc" 1 (Vm.length p);
  check_float "value" (Float.sin 2. +. 12.) (Vm.run p [| 0. |])

(* Statement programs: temps store into the env, roots into out;
   unread private temps are dead-store eliminated. *)
let test_vm_stmts () =
  let names = [| "x"; "y"; "tmp"; "dead" |] in
  let tmp = E.var "tmp" in
  let stmts =
    [
      (E.add [ x; y ], Vm.To_env 2);
      (E.mul [ x; x; y ], Vm.To_env 3);
      (E.mul [ tmp; tmp ], Vm.To_out 0);
      (E.add [ tmp; x ], Vm.To_out 1);
    ]
  in
  let private_env_slot s = s >= 2 in
  let p = Vm.compile_stmts ~private_env_slot ~out_size:2 names stmts in
  let env = [| 2.; 3.; 0.; 0. |] in
  let out = [| 0.; 0. |] in
  Vm.exec p ~env ~out;
  check_float "tmp^2" 25. out.(0);
  check_float "tmp + x" 7. out.(1);
  Alcotest.(check int) "statement program has no result register" (-1)
    (Vm.result_reg p);
  (* The "dead" temp is never read, so no store to env slot 3 remains. *)
  let stores_dead =
    Array.exists
      (fun (i : Vm_code.instr) ->
        match i with Vm_code.Ste (_, s) -> s = 3 | _ -> false)
      (Vm.instructions p)
  in
  Alcotest.(check bool) "dead temp store eliminated" false stores_dead

let test_vm_epilogue () =
  let p = Vm.compile_epilogue ~out_size:5 [ (0, [ 2; 3 ]); (1, [ 4 ]) ] in
  let out = [| 0.; 0.; 1.5; 2.5; -4. |] in
  Vm.exec p ~env:[||] ~out;
  check_float "sum slots" 4. out.(0);
  check_float "single slot" (-4.) out.(1)

(* Steady-state zero allocation: the per-exec minor-word slope between
   two loop lengths must be exactly zero. *)
let test_vm_exec_no_alloc () =
  let e =
    E.add
      [
        E.mul [ x; y ];
        E.sin (E.mul [ z; x ]);
        E.if_ (E.cond x E.Lt y) (E.hypot x z) (E.powi y 2);
      ]
  in
  let p = Vm.compile [| "x"; "y"; "z" |] e in
  let env = [| 0.3; 0.7; -1.2 |] in
  let out = [||] in
  let words n =
    (* Warm up so any one-time allocation is excluded. *)
    Vm.exec p ~env ~out;
    let before = Gc.minor_words () in
    for _ = 1 to n do
      Vm.exec p ~env ~out
    done;
    Gc.minor_words () -. before
  in
  let d1 = words 1_000 in
  let d2 = words 11_000 in
  Alcotest.(check (float 0.)) "zero words per exec" 0. (d2 -. d1)

(* ---------- substitution ---------- *)

let test_subst () =
  check_expr "x -> y+1 in x²"
    (E.powi (E.add [ y; E.one ]) 2)
    (Subst.apply [ ("x", E.add [ y; E.one ]) ] (E.powi x 2));
  check_expr "simultaneous swap"
    (E.sub y x)
    (Subst.apply [ ("x", y); ("y", x) ] (E.sub x y))

let test_rename () =
  check_expr "rename"
    (E.add [ E.var "a.x"; E.var "a.y" ])
    (Subst.rename (fun v -> "a." ^ v) (E.add [ x; y ]))

(* ---------- cost model ---------- *)

let test_cost_basics () =
  check_float "add" 1. (Cost.flops (E.add [ x; y ]));
  check_float "leaf" 0. (Cost.flops x);
  check_float "sin" 20. (Cost.flops (E.sin x));
  Alcotest.(check bool)
    "worst case >= mean" true
    (let e =
       E.if_ (E.cond x E.Lt y) (E.sin (E.sin x)) y
     in
     Cost.flops e >= Cost.flops_mean e)

let test_cost_if_branches () =
  let e = E.if_ (E.cond x E.Lt y) (E.sin x) E.zero in
  (* worst: cmp (1) + sin (20); mean: 1 + 10 *)
  check_float "worst" 21. (Cost.flops e);
  check_float "mean" 11. (Cost.flops_mean e)

(* ---------- prefix form ---------- *)

let test_prefix_form_basic () =
  Alcotest.(check string)
    "plus" "Plus[x, y]"
    (Pf.to_string (E.add [ x; y ]));
  Alcotest.(check string)
    "annotated"
    "Sin[om$Type[x, om$Real]]"
    (Pf.to_string ~annotate:true (E.sin x))

let prefix_fuzz_chars = "PlusTimesSinIf[],. 0123456789-eqxyz$_"

let prop_prefix_parser_total =
  QCheck.Test.make ~name:"FullForm parser fails only with Failure" ~count:500
    (QCheck.make
       ~print:(fun s -> s)
       QCheck.Gen.(
         let* n = int_range 0 60 in
         let* chars =
           list_size (return n)
             (map
                (fun i -> prefix_fuzz_chars.[i])
                (int_bound (String.length prefix_fuzz_chars - 1)))
         in
         return (String.init (List.length chars) (List.nth chars))))
    (fun text ->
      match Pf.of_string text with
      | _ -> true
      | exception Failure _ -> true
      | exception _ -> false)

let prop_prefix_roundtrip =
  QCheck.Test.make ~name:"prefix form parses back" ~count:300 arbitrary_expr
    (fun e ->
      E.equal e (Pf.of_string (Pf.to_string e)))

let prop_prefix_roundtrip_annotated =
  QCheck.Test.make ~name:"annotated prefix form parses back" ~count:200
    arbitrary_expr (fun e ->
      E.equal e (Pf.of_string (Pf.to_string ~annotate:true e)))

let test_prefix_lines () =
  let e =
    E.add (List.init 30 (fun i -> E.mul [ E.int (i + 1); E.sin (E.var (Printf.sprintf "v%d" i)) ]))
  in
  let lines = Pf.to_lines ~width:60 e in
  Alcotest.(check bool) "wrapped" true (List.length lines > 3);
  (* Re-joining and parsing must restore the expression. *)
  let joined = String.concat " " lines in
  Alcotest.(check bool) "reparses" true (E.equal e (Pf.of_string joined))

let test_equation_to_string () =
  let s = Pf.equation_to_string ~lhs_var:"x" (E.neg y) in
  Alcotest.(check string) "equation"
    "Equal[Derivative[1][x][t], Times[-1, y]]" s

(* ---------- compare/hash ---------- *)

let prop_hash_consistent =
  QCheck.Test.make ~name:"equal implies same hash" ~count:200
    (QCheck.pair arbitrary_expr arbitrary_expr) (fun (a, b) ->
      (not (E.equal a b)) || E.hash a = E.hash b)

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:200
    (QCheck.pair arbitrary_expr arbitrary_expr) (fun (a, b) ->
      Int.compare (E.compare a b) 0 = -Int.compare (E.compare b a) 0)

let () =
  let q = Qcheck_seed.to_alcotest in
  Alcotest.run "om_expr"
    [
      ( "constructors",
        [
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "like terms" `Quick test_like_terms;
          Alcotest.test_case "flattening" `Quick test_flattening;
          Alcotest.test_case "commutativity" `Quick test_commutativity;
          Alcotest.test_case "if collapse" `Quick test_if_collapse;
          Alcotest.test_case "call arity" `Quick test_call_arity;
          Alcotest.test_case "vars" `Quick test_vars;
          Alcotest.test_case "pretty printing" `Quick test_pp_roundtrip_sanity;
          Alcotest.test_case "pretty-print golden" `Quick test_pp_golden;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "pythagoras" `Quick test_pythagoras;
          Alcotest.test_case "sqrt of square" `Quick test_sqrt_square;
          Alcotest.test_case "inverse pairs" `Quick test_inverse_pairs;
          Alcotest.test_case "odd/even symmetry" `Quick
            test_odd_even_symmetry;
          Alcotest.test_case "expand" `Quick test_expand;
          q prop_simplify_preserves_value;
          q prop_expand_preserves_value;
          q prop_simplify_idempotent;
        ] );
      ( "deriv",
        [
          Alcotest.test_case "table" `Quick test_deriv_table;
          Alcotest.test_case "product rule" `Quick test_deriv_product_rule;
          Alcotest.test_case "gradient" `Quick test_gradient;
          q prop_deriv_matches_finite_difference;
        ] );
      ( "eval",
        [
          Alcotest.test_case "unbound" `Quick test_eval_unbound;
          Alcotest.test_case "duplicate env keys" `Quick
            test_env_of_list_duplicates;
          q prop_eval_fn_agrees;
          q prop_cost_dyn_value_agrees;
          q prop_cost_dyn_within_static_bounds;
        ] );
      ( "vm",
        [
          q prop_vm_matches_eval;
          q prop_vm_peephole_preserves_value;
          q prop_vm_peephole_never_grows_code;
          q prop_vmstack_matches_eval;
          q prop_vm_stack_bound_respected;
          q prop_vm_code_size_linear;
          Alcotest.test_case "unbound" `Quick test_vm_unbound;
          Alcotest.test_case "conditional" `Quick test_vm_conditional_branches;
          Alcotest.test_case "disassemble" `Quick test_vm_disassemble;
          Alcotest.test_case "fusion" `Quick test_vm_fusion;
          Alcotest.test_case "constant folding" `Quick test_vm_constant_folding;
          Alcotest.test_case "statement block" `Quick test_vm_stmts;
          Alcotest.test_case "epilogue" `Quick test_vm_epilogue;
          Alcotest.test_case "no allocation" `Quick test_vm_exec_no_alloc;
        ] );
      ( "subst",
        [
          Alcotest.test_case "substitution" `Quick test_subst;
          Alcotest.test_case "rename" `Quick test_rename;
        ] );
      ( "cost",
        [
          Alcotest.test_case "basics" `Quick test_cost_basics;
          Alcotest.test_case "if branches" `Quick test_cost_if_branches;
        ] );
      ( "prefix_form",
        [
          Alcotest.test_case "basic" `Quick test_prefix_form_basic;
          Alcotest.test_case "wrapping" `Quick test_prefix_lines;
          Alcotest.test_case "equation" `Quick test_equation_to_string;
          q prop_prefix_roundtrip;
          q prop_prefix_parser_total;
          q prop_prefix_roundtrip_annotated;
        ] );
      ( "order",
        [ q prop_hash_consistent; q prop_compare_total_order ] );
    ]
