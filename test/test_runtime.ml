(* Tests for the parallel-execution runtime: simulated machine time,
   #RHS-calls/s accounting, scheduling strategies, and the invariance of
   the numerical results under scheduling choices. *)

module R = Objectmath.Runtime
module Machine = Om_machine.Machine
module Sup = Om_machine.Supervisor
module P = Om_codegen.Pipeline
module Fm = Om_lang.Flat_model

let servo = lazy (P.compile (Om_models.Servo.model ()))
let bearing = lazy (P.compile (Om_models.Bearing2d.model ()))

let config ?(machine = Machine.sparccenter_2000) ?(nworkers = 1)
    ?(strategy = Sup.Broadcast_state) ?(scheduling = R.Static)
    ?(topology = R.Flat) ?(execution = R.Simulated) () =
  {
    R.default_config with
    R.machine;
    nworkers;
    strategy;
    scheduling;
    topology;
    execution;
  }

let test_report_basics () =
  let r = Lazy.force servo in
  let rep = R.execute ~config:(config ()) ~tend:1. r in
  Alcotest.(check bool) "rhs calls" true (rep.rhs_calls > 0);
  Alcotest.(check bool) "sim time positive" true (rep.sim_seconds > 0.);
  Alcotest.(check bool) "rate consistent" true
    (Float.abs
       (rep.rhs_calls_per_sec -. (float_of_int rep.rhs_calls /. rep.sim_seconds))
    < 1e-6 *. rep.rhs_calls_per_sec);
  Alcotest.(check int) "static never reschedules" 0 rep.reschedules

let test_trajectory_independent_of_scheduling () =
  (* Scheduling affects simulated time, never numerics. *)
  let r = Lazy.force servo in
  let t1 = (R.execute ~config:(config ~nworkers:1 ()) ~tend:1. r).trajectory in
  let t2 = (R.execute ~config:(config ~nworkers:7 ()) ~tend:1. r).trajectory in
  let t3 =
    (R.execute ~config:(config ~scheduling:(R.Semidynamic 5) ()) ~tend:1. r)
      .trajectory
  in
  let same a b =
    Array.for_all2 (fun x y -> x = y) (Om_ode.Odesys.final_state a)
      (Om_ode.Odesys.final_state b)
  in
  Alcotest.(check bool) "1 vs 7 workers" true (same t1 t2);
  Alcotest.(check bool) "static vs semidynamic" true (same t1 t3)

let test_local_execution_faster_than_one_worker () =
  (* Shipping everything to a single worker only adds communication. *)
  let r = Lazy.force bearing in
  let local = R.round_seconds ~config:(config ~nworkers:0 ()) r in
  let one = R.round_seconds ~config:(config ~nworkers:1 ()) r in
  Alcotest.(check bool) "comm overhead visible" true (local < one)

let test_speedup_on_low_latency_machine () =
  let r = Lazy.force bearing in
  let s4 = R.speedup ~machine:Machine.sparccenter_2000 ~nworkers:4 r in
  let s7 = R.speedup ~machine:Machine.sparccenter_2000 ~nworkers:7 r in
  Alcotest.(check bool) "4 workers give real speedup" true (s4 > 2.);
  Alcotest.(check bool) "7 beats 4" true (s7 > s4)

let test_high_latency_machine_peaks () =
  (* On the Parsytec, speedup must collapse for large worker counts
     relative to its own peak (paper Figure 12). *)
  let r = Lazy.force bearing in
  let speedups =
    List.map
      (fun w -> R.speedup ~machine:Machine.parsytec_gcpp ~nworkers:w r)
      [ 1; 2; 4; 8; 16; 32 ]
  in
  let peak = List.fold_left Float.max 0. speedups in
  let last = List.nth speedups 5 in
  Alcotest.(check bool) "peak above 1" true (peak > 1.);
  Alcotest.(check bool) "declines past peak" true (last < peak)

let test_timeshared_knee () =
  let r = Lazy.force bearing in
  let s7 = R.speedup ~machine:Machine.sparccenter_2000 ~nworkers:7 r in
  let s12 = R.speedup ~machine:Machine.sparccenter_2000 ~nworkers:12 r in
  Alcotest.(check bool) "knee at the machine size" true (s12 <= s7 +. 0.2)

let test_needed_only_not_slower () =
  let r = Lazy.force bearing in
  let b =
    R.round_seconds ~config:(config ~machine:Machine.parsytec_gcpp ~nworkers:4 ()) r
  in
  let n =
    R.round_seconds
      ~config:
        (config ~machine:Machine.parsytec_gcpp ~nworkers:4
           ~strategy:Sup.Needed_only ())
      r
  in
  Alcotest.(check bool) "needed-only at least as fast" true (n <= b +. 1e-12)

let test_needed_only_same_numerics () =
  let r = Lazy.force servo in
  let run strategy =
    Om_ode.Odesys.final_state
      (R.execute ~config:(config ~nworkers:4 ~strategy ()) ~solver:(R.Rk4 0.01)
         ~tend:0.5 r)
        .trajectory
  in
  Alcotest.(check bool) "identical states" true
    (run Sup.Broadcast_state = run Sup.Needed_only)

let test_semidynamic_reschedules_and_overhead () =
  let r = Lazy.force bearing in
  let rep =
    R.execute
      ~config:(config ~nworkers:4 ~scheduling:(R.Semidynamic 10) ())
      ~solver:(R.Rk4 1e-5) ~tend:1e-3 r
  in
  Alcotest.(check bool) "rescheduled" true (rep.reschedules > 0);
  Alcotest.(check bool) "overhead accounted" true
    (rep.sched_overhead_seconds > 0.);
  (* Paper §3.2.3: semi-dynamic LPT consumes less than 1% of execution
     time. *)
  Alcotest.(check bool) "overhead below 1%" true
    (rep.sched_overhead_seconds < 0.01 *. rep.sim_seconds)

let test_worker_utilization () =
  let r = Lazy.force bearing in
  let util w =
    (R.execute ~config:(config ~nworkers:w ()) ~solver:(R.Rk4 1e-4)
       ~tend:5e-4 r)
      .worker_utilization
  in
  let u1 = util 1 and u7 = util 7 in
  Alcotest.(check bool) "bounded" true (u1 > 0. && u1 <= 1.0 +. 1e-9);
  Alcotest.(check bool) "fewer workers busier" true (u1 > u7)

let test_rhs_calls_match_solver () =
  let r = Lazy.force servo in
  let rep = R.execute ~config:(config ()) ~solver:(R.Rk4 0.01) ~tend:1. r in
  (* RK4: exactly 4 RHS calls per step, 100 steps. *)
  Alcotest.(check int) "4 calls per step" 400 rep.rhs_calls

let test_solvers_run () =
  let r = Lazy.force servo in
  List.iter
    (fun solver ->
      let rep = R.execute ~config:(config ()) ~solver ~tend:0.5 r in
      Alcotest.(check bool) "finite state" true
        (Array.for_all Float.is_finite
           (Om_ode.Odesys.final_state rep.trajectory)))
    [ R.Rk4 0.005; R.Rkf45; R.Lsoda ]

let test_tree_topology_runtime () =
  (* Tree scatter/gather through the runtime: same numerics, different
     simulated time; on a large low-latency machine with many workers the
     tree must win. *)
  let r = P.compile (Om_models.Bearing_scaled.model ~n_rollers:20 ~profile_order:10 ()) in
  let m = Machine.t3d_class_mpp in
  let flat =
    R.round_seconds ~config:(config ~machine:m ~nworkers:63 ()) r
  in
  let tree =
    R.round_seconds
      ~config:(config ~machine:m ~nworkers:63 ~topology:(R.Tree 2) ())
      r
  in
  Alcotest.(check bool) "tree faster at 63 workers" true (tree < flat);
  (* Numerics identical regardless of topology. *)
  let t1 =
    (R.execute ~config:(config ~nworkers:8 ()) ~solver:(R.Rk4 1e-4)
       ~tend:4e-4 r)
      .trajectory
  in
  let t2 =
    (R.execute
       ~config:(config ~nworkers:8 ~topology:(R.Tree 4) ())
       ~solver:(R.Rk4 1e-4) ~tend:4e-4 r)
      .trajectory
  in
  Alcotest.(check bool) "same numerics" true
    (Om_ode.Odesys.final_state t1 = Om_ode.Odesys.final_state t2)

let test_sweep_monotone () =
  let source =
    {|model M; class C parameter k = 1.0; variable x init 1.0;
      equation der(x) = 0.0 - k * x; end; instance c of C;|}
  in
  let points =
    Objectmath.Sweep.run ~source ~cls:"C" ~param:"k"
      ~values:[ 0.5; 1.; 2.; 4. ] ~tend:1.
      ~metric:(Objectmath.Sweep.final_value "c.x")
      ()
  in
  (* Final value of exp(-k) is decreasing in k, and matches analytically. *)
  List.iter
    (fun (p : Objectmath.Sweep.point) ->
      Alcotest.(check (float 1e-3))
        (Printf.sprintf "exp(-%g)" p.value)
        (Float.exp (Float.neg p.value))
        p.metric)
    points;
  let metrics = List.map (fun (p : Objectmath.Sweep.point) -> p.metric) points in
  Alcotest.(check bool) "decreasing" true
    (List.sort (fun a b -> compare b a) metrics = metrics)

let test_sweep_series () =
  let points =
    [ { Objectmath.Sweep.value = 1.; metric = 2.; steps = 0; rhs_calls = 0 } ]
  in
  let s = Objectmath.Sweep.to_series "m" points in
  Alcotest.(check bool) "series" true (s.points = [ (1., 2.) ])

let test_odesys_of_source () =
  let fm, sys =
    Objectmath.odesys_of_source
      {|model M; class C variable x init 2.0; equation der(x) = 0.0 - x; end;
        instance c of C;|}
  in
  Alcotest.(check int) "dim" 1 sys.dim;
  let tr = Om_ode.Rk.rkf45 sys ~t0:0. ~y0:(Fm.initial_values fm) ~tend:1. in
  Alcotest.(check (float 1e-4)) "2 exp(-1)" (2. *. Float.exp (-1.))
    (Om_ode.Odesys.final_state tr).(0)

let test_odesys_of_result () =
  let r = Lazy.force servo in
  let sys = Objectmath.odesys_of_result r in
  let y0 = Fm.initial_values r.model in
  let tr = Om_ode.Rk.integrate_fixed Om_ode.Rk.rk4 sys ~t0:0. ~y0 ~tend:0.1 ~h:0.01 in
  Alcotest.(check bool) "integrates" true
    (Array.for_all Float.is_finite (Om_ode.Odesys.final_state tr))

(* ---------- chaos: faults, recovery, degradation ---------- *)

let test_simulated_chaos_bitwise_recovery () =
  (* A seeded NaN/Inf poisoned into one simulated round must be caught
     by the guard, retried away, and leave the trajectory bitwise
     identical to the fault-free run — with the injection and the retry
     visible in the report. *)
  let r = Lazy.force servo in
  let tend = 0.05 in
  let solver = R.Rk4 (tend /. 10.) in
  let clean = R.execute ~config:(config ~nworkers:2 ()) ~solver ~tend r in
  Alcotest.(check int) "clean run: no faults" 0 clean.faults_injected;
  Alcotest.(check int) "clean run: no retries" 0 clean.retries;
  Alcotest.(check bool) "clean run: no degradations" true
    (clean.degradations = []);
  List.iter
    (fun fault ->
      let plan = Om_guard.Fault_plan.make [ fault ] in
      let cfg =
        { (config ~nworkers:2 ()) with R.faults = Some plan }
      in
      let rep = R.execute ~config:cfg ~solver ~tend r in
      Alcotest.(check int) "fault injected" 1 rep.faults_injected;
      Alcotest.(check bool) "solver retried" true (rep.retries >= 1);
      Alcotest.(check bool) "times identical" true
        (rep.trajectory.ts = clean.trajectory.ts);
      Alcotest.(check bool) "states identical" true
        (rep.trajectory.states = clean.trajectory.states))
    [
      Om_guard.Fault_plan.Nan_task { task = 0; round = 5 };
      Om_guard.Fault_plan.Inf_task { task = 1; round = 9 };
    ]

let test_simulated_guard_stops_blowup () =
  (* Genuinely divergent dynamics exhaust the retry budget and surface
     as a typed step failure instead of a NaN-filled trajectory. *)
  let f = Om_lang.Flatten.flatten_string
      "model Blowup; class B variable x init 1.0; equation der(x) = x * x; \
       end; instance b of B;"
  in
  let r = P.compile f in
  match R.execute ~config:(config ()) ~solver:(R.Rk4 0.05) ~tend:2. r with
  | _ -> Alcotest.fail "blowup not detected"
  | exception Om_guard.Om_error.(Error (Step_failure { reason; _ })) ->
      Alcotest.(check bool) "equation attributed" true
        (let sub = "der(b.x)" in
         let n = String.length reason and m = String.length sub in
         let rec go i =
           i + m <= n && (String.sub reason i m = sub || go (i + 1))
         in
         go 0)

let test_no_guard_config_disables_detection () =
  (* With the guard off and no faults, execution still works (the knob
     exists for overhead measurements). *)
  let r = Lazy.force servo in
  let cfg = { (config ~nworkers:2 ()) with R.guard = false } in
  let rep = R.execute ~config:cfg ~solver:(R.Rk4 5e-3) ~tend:0.05 r in
  Alcotest.(check bool) "finite result" true
    (Array.for_all Float.is_finite (Om_ode.Odesys.final_state rep.trajectory))

let test_real_domains_chaos_bitwise_recovery () =
  let r = Lazy.force servo in
  let tend = 1e-4 in
  let solver = R.Rk4 (tend /. 10.) in
  let clean =
    R.execute ~config:(config ~execution:(R.Real_domains 2) ()) ~solver ~tend
      r
  in
  let plan =
    Om_guard.Fault_plan.make
      [ Om_guard.Fault_plan.Nan_task { task = 0; round = 3 } ]
  in
  let cfg =
    { (config ~execution:(R.Real_domains 2) ()) with R.faults = Some plan }
  in
  let rep = R.execute ~config:cfg ~solver ~tend r in
  Alcotest.(check int) "fault injected" 1 rep.faults_injected;
  Alcotest.(check bool) "solver retried" true (rep.retries >= 1);
  Alcotest.(check bool) "times identical" true
    (rep.trajectory.ts = clean.trajectory.ts);
  Alcotest.(check bool) "states identical" true
    (rep.trajectory.states = clean.trajectory.states)

let test_spawn_failure_degrades () =
  (* An injected spawn failure walks the degradation ladder: the run
     completes on fewer domains, records the degradation, and changes
     no output bit. *)
  let r = Lazy.force servo in
  let tend = 1e-4 in
  let solver = R.Rk4 (tend /. 10.) in
  let clean =
    R.execute ~config:(config ~execution:(R.Real_domains 2) ()) ~solver ~tend
      r
  in
  let plan =
    Om_guard.Fault_plan.make
      [ Om_guard.Fault_plan.Fail_spawn { worker = 1 } ]
  in
  let cfg =
    { (config ~execution:(R.Real_domains 3) ()) with R.faults = Some plan }
  in
  let rep = R.execute ~config:cfg ~solver ~tend r in
  (match rep.degradations with
  | [ d ] ->
      Alcotest.(check int) "failed worker recorded" 1 d.Om_guard.Om_error.worker;
      Alcotest.(check int) "remaining workers recorded" 2
        d.Om_guard.Om_error.remaining;
      Alcotest.(check bool) "cause is the spawn failure" true
        (match d.Om_guard.Om_error.cause with
        | Om_guard.Om_error.Spawn_failure { worker = 1; nworkers = 3; _ } ->
            true
        | _ -> false)
  | ds ->
      Alcotest.failf "expected exactly one degradation, got %d"
        (List.length ds));
  Alcotest.(check bool) "times identical" true
    (rep.trajectory.ts = clean.trajectory.ts);
  Alcotest.(check bool) "states identical" true
    (rep.trajectory.states = clean.trajectory.states)

let test_spawn_failure_ladder_to_sequential () =
  (* Every domain failing to spawn bottoms out at guarded sequential
     execution — still bitwise identical. *)
  let r = Lazy.force servo in
  let tend = 1e-4 in
  let solver = R.Rk4 (tend /. 10.) in
  let clean =
    R.execute ~config:(config ~execution:(R.Real_domains 1) ()) ~solver ~tend
      r
  in
  (* Two fire-once faults on worker 0: one per rung of the ladder (the
     retry with fewer domains re-checks worker ids from 0). *)
  let plan =
    Om_guard.Fault_plan.make
      [
        Om_guard.Fault_plan.Fail_spawn { worker = 0 };
        Om_guard.Fault_plan.Fail_spawn { worker = 0 };
      ]
  in
  let cfg =
    { (config ~execution:(R.Real_domains 2) ()) with R.faults = Some plan }
  in
  let rep = R.execute ~config:cfg ~solver ~tend r in
  Alcotest.(check int) "two rungs recorded" 2 (List.length rep.degradations);
  Alcotest.(check bool) "states identical" true
    (rep.trajectory.states = clean.trajectory.states)

let () =
  Alcotest.run "runtime"
    [
      ( "reports",
        [
          Alcotest.test_case "basics" `Quick test_report_basics;
          Alcotest.test_case "rhs calls match solver" `Quick
            test_rhs_calls_match_solver;
          Alcotest.test_case "all solvers" `Quick test_solvers_run;
        ] );
      ( "invariance",
        [
          Alcotest.test_case "trajectory independent of scheduling" `Quick
            test_trajectory_independent_of_scheduling;
        ] );
      ( "performance model",
        [
          Alcotest.test_case "local beats one worker" `Quick
            test_local_execution_faster_than_one_worker;
          Alcotest.test_case "low-latency speedup" `Quick
            test_speedup_on_low_latency_machine;
          Alcotest.test_case "high-latency peak" `Quick
            test_high_latency_machine_peaks;
          Alcotest.test_case "timesharing knee" `Quick test_timeshared_knee;
          Alcotest.test_case "needed-only strategy" `Quick
            test_needed_only_not_slower;
          Alcotest.test_case "worker utilization" `Quick
            test_worker_utilization;
          Alcotest.test_case "needed-only numerics" `Quick
            test_needed_only_same_numerics;
        ] );
      ( "semidynamic",
        [
          Alcotest.test_case "reschedules with bounded overhead" `Quick
            test_semidynamic_reschedules_and_overhead;
        ] );
      ( "topology",
        [
          Alcotest.test_case "tree through runtime" `Quick
            test_tree_topology_runtime;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "monotone analytic" `Quick test_sweep_monotone;
          Alcotest.test_case "series" `Quick test_sweep_series;
        ] );
      ( "umbrella",
        [
          Alcotest.test_case "odesys_of_source" `Quick test_odesys_of_source;
          Alcotest.test_case "odesys_of_result" `Quick test_odesys_of_result;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "simulated bitwise recovery" `Quick
            test_simulated_chaos_bitwise_recovery;
          Alcotest.test_case "guard stops blowup" `Quick
            test_simulated_guard_stops_blowup;
          Alcotest.test_case "guard off" `Quick
            test_no_guard_config_disables_detection;
          Alcotest.test_case "real domains bitwise recovery" `Quick
            test_real_domains_chaos_bitwise_recovery;
          Alcotest.test_case "spawn failure degrades" `Quick
            test_spawn_failure_degrades;
          Alcotest.test_case "spawn ladder to sequential" `Quick
            test_spawn_failure_ladder_to_sequential;
        ] );
    ]
