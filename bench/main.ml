(* Benchmark harness: one entry per table/figure of the paper plus
   ablations.  Run everything with `dune exec bench/main.exe`, or a single
   experiment with `dune exec bench/main.exe -- fig12`.

   Paper: Andersson & Fritzson, "Generating Parallel Code from Object
   Oriented Mathematical Models", PPoPP 1995. *)

module R = Objectmath.Runtime
module P = Om_codegen.Pipeline
module Stats = Om_codegen.Stats
module Machine = Om_machine.Machine
module Sup = Om_machine.Supervisor
module Fm = Om_lang.Flat_model
module Scc = Om_graph.Scc
module D = Om_graph.Digraph

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

let out_dir = "bench_out"

let ensure_out_dir () =
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755

(* Models are compiled lazily and shared between experiments. *)
let bearing = lazy (P.compile (Om_models.Bearing2d.model ()))
let plant = lazy (P.compile (Om_models.Powerplant.model ()))
let servo = lazy (P.compile (Om_models.Servo.model ()))

let config ?(machine = Machine.sparccenter_2000) ?(nworkers = 1)
    ?(strategy = Sup.Broadcast_state) ?(scheduling = R.Static)
    ?(topology = R.Flat) ?(execution = R.Simulated) () =
  {
    R.default_config with
    R.machine;
    nworkers;
    strategy;
    scheduling;
    topology;
    execution;
  }

(* ------------------------------------------------------------------ *)
(* Figure 3: dependency graph / SCCs of the hydroelectric plant.       *)

let scc_report name (r : P.result) =
  let a = r.analysis in
  Printf.printf "%s: %d equations, %d SCCs (%d nontrivial)\n" name
    (Fm.dim r.model) a.comps.count
    (List.length a.nontrivial);
  let sizes = Array.map List.length a.comps.members in
  let hist = Hashtbl.create 8 in
  Array.iter
    (fun s ->
      Hashtbl.replace hist s (1 + Option.value ~default:0 (Hashtbl.find_opt hist s)))
    sizes;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist []
  |> List.sort compare
  |> List.iter (fun (size, count) ->
         Printf.printf "  %2d SCC(s) of %d equation(s)\n" count size)

let fig3 () =
  section "Figure 3 — dependency graph and SCCs, hydroelectric power plant";
  ensure_out_dir ();
  let r = Lazy.force plant in
  let a = r.analysis in
  scc_report "PowerPlant" r;
  Printf.printf "\nStrongly connected components:\n";
  Array.iteri
    (fun k members ->
      let labels = List.map (D.label a.graph) members in
      Printf.printf "  SCC %2d: %s\n" k (String.concat ", " labels))
    a.comps.members;
  let layers = Om_graph.Topo.layers a.condensed in
  Printf.printf "\nCondensation layers (parallel fronts):\n";
  List.iteri
    (fun i l ->
      Printf.printf "  layer %d: %s\n" i
        (String.concat ", " (List.map (D.label a.condensed) l)))
    layers;
  let dot = Om_graph.Dot.with_components a.graph a.comps in
  Om_graph.Dot.save (Filename.concat out_dir "fig3_powerplant.dot") dot;
  Printf.printf "\nDOT graph written to %s/fig3_powerplant.dot\n" out_dir;
  Printf.printf
    "Paper: multiple separate SCCs (per-gate loops, dam, regulator) -> the\n\
     plant partitions; reproduced: %d SCCs with six 4-equation gate loops.\n"
    a.comps.count

(* ------------------------------------------------------------------ *)
(* Figure 6: SCCs of the 2D rolling bearing.                           *)

let fig6 () =
  section "Figure 6 — dependency graph and SCCs, 2D rolling bearing";
  ensure_out_dir ();
  let r = Lazy.force bearing in
  let a = r.analysis in
  scc_report "Bearing2D" r;
  Array.iteri
    (fun k members ->
      let labels = List.map (D.label a.graph) members in
      if List.length members <= 6 then
        Printf.printf "  SCC %2d: %s\n" k (String.concat ", " labels)
      else
        Printf.printf "  SCC %2d: %d equations (%s, ...)\n" k
          (List.length members)
          (String.concat ", "
             (List.filteri (fun i _ -> i < 5) labels)))
    a.comps.members;
  let dot = Om_graph.Dot.with_components a.graph a.comps in
  Om_graph.Dot.save (Filename.concat out_dir "fig6_bearing.dot") dot;
  Printf.printf "DOT graph written to %s/fig6_bearing.dot\n" out_dir;
  Printf.printf
    "Paper: \"all equations are strongly connected except one\" (2 SCCs).\n\
     Reproduced: %d SCCs; the driven rotation Inner.theta is the trivial one.\n"
    a.comps.count

(* ------------------------------------------------------------------ *)
(* Figure 5: inheritance hierarchy and composition of the 2D bearing.  *)

let fig5 () =
  section
    "Figure 5 — inheritance hierarchy and composition, 2D bearing model";
  ensure_out_dir ();
  let ast = Om_lang.Parser.parse_model (Om_models.Bearing2d.source ()) in
  Printf.printf "inheritance hierarchy:\n%s\n"
    (Om_lang.Browser.inheritance_tree ast);
  Printf.printf "composition structure:\n%s"
    (Om_lang.Browser.composition_tree ast);
  let path = Filename.concat out_dir "fig5_bearing_structure.dot" in
  Om_graph.Dot.save path (Om_lang.Browser.to_dot ast);
  Printf.printf "\nstructure graph written to %s\n" path;
  Printf.printf
    "\nPaper Figure 5: the bearing model's class hierarchy is rooted at\n\
     SpinningElement and refines through Body into Roller and the rings,\n\
     with the rolling elements as an instance array — the same shape as\n\
     reproduced above (the paper's extra CoordinateSystem/Contact layers\n\
     handle 3D coordinate transforms that the 2D model does not need).\n"

(* ------------------------------------------------------------------ *)
(* §2.5.1: equation-system-level parallelism across the three models.  *)

let syslevel () =
  section
    "Table (§2.5.1) — equation-system-level parallelism per application";
  Printf.printf
    "%-12s %6s %6s %13s %14s %14s %14s %14s\n" "model" "eqs" "SCCs"
    "max speedup" "p=8, comm=0" "p=8, SMP comm" "p=8, DM comm"
    "pipeline p=8";
  (* Cost of shipping one subsystem's interface values per solver step,
     in flop units; a compiler falls back to the serial solution when the
     partitioned schedule is slower, hence the clamp at 1. *)
  let comm_flops (m : Machine.t) =
    ((2. *. m.latency) +. (16. *. m.per_byte)) /. m.flop_time
  in
  List.iter
    (fun (name, r) ->
      let r : P.result = Lazy.force r in
      let a = r.analysis in
      let dim = Fm.dim r.model in
      let max_sp =
        Om_sched.Dag_sched.max_speedup a.condensed ~weights:a.scc_weights
      in
      let sp comm =
        Float.max 1. (P.system_level_speedup a ~comm ~nprocs:8)
      in
      let pipe =
        Om_sched.Dag_sched.pipeline_throughput a.condensed
          ~weights:a.scc_weights ~nprocs:8
      in
      Printf.printf "%-12s %6d %6d %13.2f %14.2f %14.2f %14.2f %14.2f\n"
        name dim a.comps.count max_sp (sp 0.)
        (sp (comm_flops Machine.sparccenter_2000))
        (sp (comm_flops Machine.parsytec_gcpp))
        pipe)
    [ ("servo", servo); ("powerplant", plant); ("bearing2d", bearing) ];
  Printf.printf
    "(speedups below 1 are clamped: the compiler keeps the serial code;\n\
     the pipeline column is §2.1's \"values produced from the solution of\n\
     one system are continuously passed as input for the solution of\n\
     another\" — a throughput bound, not a latency speedup)\n";
  Printf.printf
    "\nPaper: \"the hydroelectric power station model and the trivial\n\
     servo-example could be reasonably parallelized through such\n\
     partitioning, whereas the 2D bearing model only yielded two SCCs\";\n\
     the technique \"cannot in general be expected to pay off\".\n"

(* ------------------------------------------------------------------ *)
(* Figure 10: the supervisor/worker scheme, as a round Gantt chart.    *)

let fig10 () =
  section "Figure 10 — supervisor/worker execution of one RHS round";
  ensure_out_dir ();
  let r = Lazy.force bearing in
  let costs = Om_codegen.Bytecode_backend.task_costs_static r.compiled in
  let reads = Array.map (fun t -> t.Om_sched.Task.reads) r.tasks in
  let writes = Array.map (fun t -> t.Om_sched.Task.writes) r.tasks in
  List.iter
    (fun ((m : Machine.t), file) ->
      let w = 4 in
      let sched = Om_sched.Lpt.schedule ~costs r.tasks ~nprocs:w in
      let result, trace =
        Om_machine.Supervisor.round_traced m ~nworkers:w
          ~assignment:sched.assignment ~task_flops:costs ~task_reads:reads
          ~task_writes:writes ~state_dim:r.compiled.dim
          ~strategy:Sup.Broadcast_state
      in
      let row_labels =
        "supervisor" :: List.init w (Printf.sprintf "worker %d")
      in
      let segments =
        List.map
          (fun (s : Om_machine.Supervisor.segment) ->
            {
              Om_viz.Plot.row = s.who + 1;
              t_start = s.t0 *. 1e3;
              t_end = s.t1 *. 1e3;
              category =
                (match s.kind with
                | `Send -> "send state"
                | `Compute -> "compute RHS"
                | `Recv -> "receive results");
            })
          trace
      in
      let path = Filename.concat out_dir file in
      let svg =
        Om_viz.Plot.gantt_svg
          ~title:
            (Printf.sprintf "%s: one RHS round, 4 workers (%.2f ms)" m.name
               (1e3 *. result.duration))
          ~row_labels segments
      in
      let oc = open_out path in
      output_string oc svg;
      close_out oc;
      Printf.printf
        "%-20s round %.3f ms (supervisor busy %.3f ms) -> %s\n" m.name
        (1e3 *. result.duration)
        (1e3 *. result.supervisor_busy)
        path)
    [
      (Machine.sparccenter_2000, "fig10_gantt_sparc.svg");
      (Machine.parsytec_gcpp, "fig10_gantt_parsytec.svg");
    ];
  Printf.printf
    "\nPaper Figure 10: the solver (supervisor) ships the state to the\n\
     workers, they evaluate their RHS tasks, results return.  On the\n\
     Parsytec the send/receive bars dominate the lane — the latency wall\n\
     of §4 made visible.\n"

(* ------------------------------------------------------------------ *)
(* §3.3: code generation statistics for the 2D bearing.                *)

let table_codegen () =
  section "Table (§3.3) — generated code statistics, 2D bearing";
  let src = Om_models.Bearing2d.source () in
  let r = Lazy.force bearing in
  let s = Stats.collect ~source:src r in
  Format.printf "%a@." Stats.pp s;
  let ratio a b = float_of_int a /. float_of_int b in
  Printf.printf "Shape comparison with the paper's 2D bearing:\n";
  Printf.printf "  %-42s %10s %12s\n" "" "paper" "this repo";
  Printf.printf "  %-42s %10s %12d\n" "ObjectMath source lines" "560"
    (Option.get s.source_lines);
  Printf.printf "  %-42s %10s %12d\n" "intermediate form lines" "11859"
    s.intermediate_lines;
  Printf.printf "  %-42s %10.1f %12.1f\n" "expansion ratio source->intermediate"
    (11859. /. 560.)
    (ratio s.intermediate_lines (Option.get s.source_lines));
  Printf.printf "  %-42s %10s %12d\n" "parallel F90 lines" "10913"
    s.fortran_parallel_lines;
  Printf.printf "  %-42s %10.2f %12.2f\n" "declaration share of parallel F90"
    (4709. /. 10913.)
    (ratio s.fortran_parallel_decls s.fortran_parallel_lines);
  Printf.printf "  %-42s %10s %12d\n" "serial F90 lines" "4301"
    s.fortran_serial_lines;
  Printf.printf "  %-42s %10.2f %12.2f\n" "serial/parallel F90 size ratio"
    (4301. /. 10913.)
    (ratio s.fortran_serial_lines s.fortran_parallel_lines);
  Printf.printf "  %-42s %10s %12d\n" "CSEs, parallel (per-task)" "4642"
    s.cse_parallel;
  Printf.printf "  %-42s %10s %12d\n" "CSEs, serial (global)" "1840"
    s.cse_serial;
  Printf.printf "  %-42s %10.2f %12.2f\n" "CSE ratio serial/parallel"
    (1840. /. 4642.)
    (ratio s.cse_serial s.cse_parallel)

(* ------------------------------------------------------------------ *)
(* §3.2.3: semi-dynamic LPT overhead.                                  *)

let lpt_overhead () =
  section "Table (§3.2.3) — semi-dynamic LPT rescheduling overhead";
  let r = Lazy.force bearing in
  Printf.printf "%-8s %12s %14s %12s\n" "period" "reschedules" "overhead s"
    "share %%";
  List.iter
    (fun period ->
      let rep =
        R.execute
          ~config:(config ~nworkers:7 ~scheduling:(R.Semidynamic period) ())
          ~solver:(R.Rk4 2e-5) ~tend:4e-3 r
      in
      Printf.printf "%-8d %12d %14.5f %11.3f%%\n" period rep.reschedules
        rep.sched_overhead_seconds
        (100. *. rep.sched_overhead_seconds /. rep.sim_seconds))
    [ 5; 10; 25; 100 ];
  Printf.printf
    "\nPaper: the semi-dynamic LPT \"consumes less than 1%% of the execution\n\
     time for the 2D bearing simulation examples so far investigated\".\n"

(* ------------------------------------------------------------------ *)
(* §4: message latency of the two machines.                            *)

let latency () =
  section "Table (§4) — message cost on the two target machines";
  Printf.printf "%-20s %18s %20s\n" "machine" "1-byte msg [us]"
    "state vector [us]";
  let r = Lazy.force bearing in
  let dim = Fm.dim r.model in
  List.iter
    (fun (m : Machine.t) ->
      Printf.printf "%-20s %18.1f %20.1f\n" m.name
        (1e6 *. Machine.message_time m ~bytes:1)
        (1e6 *. Machine.message_time m ~bytes:((dim + 1) * 8)))
    [ Machine.sparccenter_2000; Machine.parsytec_gcpp ];
  Printf.printf
    "\nPaper: \"A message of 1 byte takes 4 us ... on the shared memory\n\
     architecture and 140 us on the distributed memory machine.\"\n"

(* ------------------------------------------------------------------ *)
(* Figure 12: #RHS-calls/s vs number of processors.                    *)

let fig12 () =
  section "Figure 12 — #RHS-calls/s vs worker processors, 2D bearing";
  let r = Lazy.force bearing in
  let tend = 2e-3 in
  let solver = R.Rk4 (tend /. 100.) in
  let series (m : Machine.t) =
    List.map
      (fun workers ->
        let rep =
          R.execute ~config:(config ~machine:m ~nworkers:workers ()) ~solver
            ~tend r
        in
        (workers, rep.rhs_calls_per_sec))
      (List.init 18 (fun i -> i))
  in
  let sparc = series Machine.sparccenter_2000 in
  let parsytec = series Machine.parsytec_gcpp in
  Printf.printf "%-6s %22s %22s\n" "procs" "SPARCCenter 2000"
    "Parsytec GC/PP";
  List.iter2
    (fun (p, s) (_, d) ->
      if p = 0 then
        Printf.printf "%-6s %22.1f %22.1f   (solver-local reference)\n"
          "local" s d
      else Printf.printf "%-6d %22.1f %22.1f\n" p s d)
    sparc parsytec;
  let peak l =
    List.fold_left
      (fun (bp, bv) (p, v) -> if p > 0 && v > bv then (p, v) else (bp, bv))
      (0, 0.) l
  in
  let sp, sv = peak sparc and pp_, pv = peak parsytec in
  let base = List.assoc 1 sparc in
  ensure_out_dir ();
  let svg_series name l =
    Om_viz.Plot.series name
      (List.filter_map
         (fun (p, v) -> if p >= 1 then Some (float_of_int p, v) else None)
         l)
  in
  Om_viz.Plot.save_svg
    ~path:(Filename.concat out_dir "fig12_speedup.svg")
    ~title:"2D bearing: #RHS-calls/s vs worker processors"
    ~x_label:"worker processors" ~y_label:"#RHS-calls / s"
    [ svg_series "SPARCCenter 2000" sparc; svg_series "Parsytec GC/PP" parsytec ];
  Printf.printf "\nSVG written to %s/fig12_speedup.svg\n" out_dir;
  Printf.printf
    "SPARC peak:    %.0f calls/s at %d processors (%.1fx over 1 proc)\n" sv
    sp (sv /. base);
  Printf.printf
    "Parsytec peak: %.0f calls/s at %d processors (%.1fx over 1 proc)\n" pv pp_
    (pv /. List.assoc 1 parsytec);
  Printf.printf
    "\nPaper: almost linear speedup up to 7 processors on the SPARC with a\n\
     knee from UNIX timesharing; the Parsytec peaks at 4 processors, after\n\
     which latency and contention dominate.\n"

(* ------------------------------------------------------------------ *)
(* §6: projected speedup for large (3D-class) bearing problems.        *)

let scaling () =
  section "Table (§6) — projected speedup for large bearing problems";
  (* A 1995 low-latency MPP (Cray T3D class) for the projection. *)
  let mpp = Machine.t3d_class_mpp in
  let problems =
    [
      ("2D bearing (10 rollers)", lazy (Lazy.force bearing));
      ( "3D-class (30 rollers, order 40)",
        lazy (P.compile (Om_models.Bearing_scaled.model ())) );
      ( "3D-class (45 rollers, order 60)",
        lazy
          (P.compile
             (Om_models.Bearing_scaled.model ~n_rollers:45 ~profile_order:60
                ())) );
    ]
  in
  Printf.printf "%-34s %12s | %s\n" "problem" "RHS kflops"
    "speedup at workers 15 / 63 / 127 / 255 / 511 (MPP)";
  List.iter
    (fun (name, r) ->
      let r : P.result = Lazy.force r in
      let flops = Om_sched.Task.total_cost r.tasks /. 1000. in
      let sp w = R.speedup ~machine:mpp ~nworkers:w r in
      Printf.printf "%-34s %12.0f | %7.1f %7.1f %7.1f %7.1f %7.1f\n" name
        flops (sp 15) (sp 63) (sp 127) (sp 255) (sp 511))
    problems;
  (* The paper's 100-300x claim comes from "preliminary analysis and
     test runs of subsets" of the 3D applications: an analytic projection
     to full 3D-problem sizes, which we reproduce by running the machine
     model directly on synthetic task sets of the projected weight (tasks
     of ~3 kflop, ~10 state reads each, needed-only messages). *)
  Printf.printf
    "\nProjection to full 3D bearing problems (analytic, as in the paper):\n";
  Printf.printf "%-34s %12s | %s\n" "projected problem" "RHS Mflops"
    "speedup at workers 63 / 127 / 255 / 511 (MPP)";
  let project total_flops =
    let task_cost = 3000. in
    let n = int_of_float (total_flops /. task_cost) in
    let task_flops = Array.make n task_cost in
    let task_reads = Array.init n (fun i -> List.init 10 (fun k -> (i + k) mod (n / 3 + 1))) in
    let task_writes = Array.init n (fun i -> [ i ]) in
    let state_dim = (n / 3) + 1 in
    let seq = total_flops *. mpp.Machine.flop_time in
    fun w ->
      let assignment = Array.init n (fun i -> i mod w) in
      let round =
        Sup.round mpp ~nworkers:w ~assignment ~task_flops ~task_reads
          ~task_writes ~state_dim ~strategy:Sup.Needed_only
      in
      seq /. round.duration
  in
  List.iter
    (fun mflops ->
      let sp = project (mflops *. 1e6) in
      Printf.printf "%-34s %12.0f | %7.1f %7.1f %7.1f %7.1f\n"
        (Printf.sprintf "3D bearing, %.0f Mflop RHS" mflops)
        mflops (sp 63) (sp 127) (sp 255) (sp 511))
    [ 1.; 5.; 20. ];
  Printf.printf
    "\nPaper: \"Preliminary analysis and test runs ... indicate that a\n\
     potential speedup of 100-300 will be possible for large bearing\n\
     problems\" given low latency, high bandwidth and heavy right-hand\n\
     sides.\n"

(* ------------------------------------------------------------------ *)
(* §3.2.1: generated Jacobian vs numeric difference approximation.     *)

let table_jacobian () =
  section
    "Table (§3.2.1) — generated Jacobian vs numeric approximation, 2D \
     bearing (BDF2)";
  let fm = Om_models.Bearing2d.model () in
  let jg = Om_codegen.Jacobian_gen.generate fm in
  Printf.printf
    "sparse Jacobian: %d nonzeros of %d entries (%.1f%% dense), %d CSE \
     temps,\n%.0f flops per evaluation vs %.0f for the (dim+1)-call \
     numeric scheme\n\n"
    (Om_codegen.Jacobian_gen.nonzero_count jg)
    (jg.dim * jg.dim)
    (100. *. Om_codegen.Jacobian_gen.density jg)
    (Om_codegen.Cse.temp_count jg.block)
    (Om_codegen.Jacobian_gen.flops jg)
    (float_of_int (jg.dim + 1) *. Om_lang.Flat_model.total_rhs_flops fm);
  let y0 = Om_lang.Flat_model.initial_values fm in
  let flop_time = Machine.sparccenter_2000.flop_time in
  let rhs_flops = Om_lang.Flat_model.total_rhs_flops fm in
  Printf.printf "%-12s %10s %10s %22s\n" "Jacobian" "RHS calls" "Jac calls"
    "simulated compute [s]";
  let run name sys jac_flops =
    Om_ode.Odesys.reset_counters sys;
    let _ =
      Om_ode.Bdf.integrate ~order:2 sys ~t0:0. ~y0 ~tend:5e-4 ~h:2e-6
    in
    let t =
      ((float_of_int sys.Om_ode.Odesys.counters.rhs_calls *. rhs_flops)
      +. (float_of_int sys.counters.jac_calls *. jac_flops))
      *. flop_time
    in
    Printf.printf "%-12s %10d %10d %22.3f\n" name sys.counters.rhs_calls
      sys.counters.jac_calls t
  in
  run "numeric"
    (Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false fm.equations)
    0.
  (* numeric jacobians cost RHS calls, already counted *);
  run "generated"
    (Om_codegen.Jacobian_gen.to_odesys fm)
    (Om_codegen.Jacobian_gen.flops jg);
  Printf.printf
    "\nPaper §3.2.1: providing the solver with a generated Jacobian \
     function\ninstead of the internal difference approximation \"might \
     be reduced\ndrastically\" — reproduced: ~24x fewer RHS evaluations \
     on the stiff path.\n"

(* ------------------------------------------------------------------ *)
(* Ablation A: CSE scope.                                              *)

let ablation_cse () =
  section "Ablation A — common-subexpression-elimination scope";
  let m = Om_models.Bearing2d.model () in
  Printf.printf "%-12s %10s %12s %12s %16s %16s\n" "CSE scope" "temps"
    "RHS kflops" "max task" "SPARC w=7 speedup" "w=7 round [ms]";
  List.iter
    (fun (name, scope) ->
      let cfg = { P.default_config with cse_scope = scope } in
      let r = P.compile ~config:cfg m in
      let total = Om_sched.Task.total_cost r.tasks in
      let sp = R.speedup ~machine:Machine.sparccenter_2000 ~nworkers:7 r in
      let round = R.round_seconds ~config:(config ~nworkers:7 ()) r in
      Printf.printf "%-12s %10d %12.1f %12.0f %16.2f %16.3f\n" name
        r.compiled.cse_temp_total (total /. 1000.)
        (Om_sched.Task.max_cost r.tasks)
        sp (1000. *. round))
    [ ("none", Om_codegen.Bytecode_backend.Cse_none);
      ("per-task", Om_codegen.Bytecode_backend.Cse_per_task) ];
  (* Global CSE corresponds to the serial code: report its cost. *)
  let serial =
    P.compile
      ~config:{ P.default_config with cse_scope = Om_codegen.Bytecode_backend.Cse_global }
      m
  in
  Printf.printf "%-12s %10d %12.1f %12s %16s\n" "global" serial.compiled.cse_temp_total
    (Om_sched.Task.total_cost serial.tasks /. 1000.)
    "-" "(serial reference)";
  Printf.printf
    "(absolute round time is what matters: scope `none' parallelises a\n\
     little better but computes twice the work)\n";
  Printf.printf
    "\nPaper §3.3: per-task CSE cannot share \"several large subexpressions\"\n\
     between equations, hence more extracted temporaries and more total\n\
     work than the globally-optimized serial code.\n"

(* ------------------------------------------------------------------ *)
(* Ablation B: static vs semi-dynamic scheduling under varying load.   *)

let ablation_sched () =
  section "Ablation B — static vs semi-dynamic LPT under conditional load";
  let r = Lazy.force bearing in
  let n_tasks = Array.length r.tasks in
  let run scheduling =
    R.execute
      ~config:(config ~nworkers:7 ~scheduling ())
      ~solver:(R.Rk4 2e-5) ~tend:4e-3 r
  in
  let rows =
    [
      ("static (estimated costs)", run R.Static);
      ("static (uniform costs)", run (R.Static_with (Array.make n_tasks 1.)));
      ("semi-dynamic, period 10", run (R.Semidynamic 10));
      ("semi-dynamic, period 50", run (R.Semidynamic 50));
    ]
  in
  Printf.printf "%-28s %16s %14s %12s\n" "scheduling" "RHS calls/s"
    "overhead s" "reschedules";
  List.iter
    (fun (name, (rep : R.report)) ->
      Printf.printf "%-28s %16.1f %14.5f %12d\n" name rep.rhs_calls_per_sec
        rep.sched_overhead_seconds rep.reschedules)
    rows;
  Printf.printf
    "\nPaper §3.2.3: conditional right-hand sides shift load over time;\n\
     feeding measured times back into LPT keeps the schedule balanced at\n\
     under 1%% overhead.\n"

(* ------------------------------------------------------------------ *)
(* Ablation C: task granularity.                                       *)

let ablation_grain () =
  section "Ablation C — task granularity (split threshold)";
  let m = Om_models.Bearing2d.model () in
  Printf.printf "%-16s %8s %12s %18s %18s\n" "split threshold" "tasks"
    "max task" "SPARC w=7 speedup" "Parsytec w=3 speedup";
  List.iter
    (fun threshold ->
      let cfg = { P.default_config with split_threshold = threshold } in
      let r = P.compile ~config:cfg m in
      let s = R.speedup ~machine:Machine.sparccenter_2000 ~nworkers:7 r in
      let d = R.speedup ~machine:Machine.parsytec_gcpp ~nworkers:3 r in
      Printf.printf "%-16.0f %8d %12.0f %18.2f %18.2f\n" threshold
        (Array.length r.tasks)
        (Om_sched.Task.max_cost r.tasks)
        s d)
    [ 500.; 1000.; 2000.; 4000.; 8000.; 1e9 ];
  Printf.printf
    "\nPaper §4: \"To be able to increase the performance the problem has to\n\
     have a larger granularity\" — but finer tasks only help while the\n\
     per-message cost stays below the per-task computation.\n"

(* ------------------------------------------------------------------ *)
(* Ablation D: message strategy (paper §3.2's planned improvement).     *)

let ablation_comm () =
  section "Ablation D — message composition (broadcast vs needed-only)";
  let r = Lazy.force bearing in
  let info =
    Om_codegen.Comm_analysis.analyse r.plan
      ~state_names:(Fm.state_names r.model)
  in
  Printf.printf
    "tasks read on average %.0f%% of the state vector\n\n"
    (100. *. Om_codegen.Comm_analysis.read_fraction info ~dim:r.compiled.dim);
  Printf.printf "%-10s %26s %26s\n" "workers" "broadcast [RHS-calls/s]"
    "needed-only [RHS-calls/s]";
  List.iter
    (fun w ->
      let rate strategy =
        1.
        /. R.round_seconds
             ~config:(config ~machine:Machine.parsytec_gcpp ~nworkers:w
                        ~strategy ())
             r
      in
      Printf.printf "%-10d %26.1f %26.1f\n" w (rate Sup.Broadcast_state)
        (rate Sup.Needed_only))
    [ 1; 2; 4; 8; 16 ];
  Printf.printf
    "\nPaper §3.2: \"Currently, every variable that might be used is passed\n\
     to the worker processors, i.e. all variables in the state vector ...\n\
     This composition of smaller messages instead of sending the whole\n\
     state will be implemented in the future.\"  The needed-only column\n\
     is that future improvement, on the high-latency machine.\n"

(* ------------------------------------------------------------------ *)
(* Ablation E: scatter/gather topology at scale.                        *)

let ablation_topology () =
  section "Ablation E — flat vs tree scatter/gather on a large machine";
  let r = P.compile (Om_models.Bearing_scaled.model ()) in
  let mpp = Machine.t3d_class_mpp in
  let costs = Om_codegen.Bytecode_backend.task_costs_static r.compiled in
  let reads = Array.map (fun t -> t.Om_sched.Task.reads) r.tasks in
  let writes = Array.map (fun t -> t.Om_sched.Task.writes) r.tasks in
  let seq = Om_machine.Supervisor.sequential_time mpp ~task_flops:costs in
  Printf.printf "3D-class bearing (%.0f kflop RHS) on the 512-node MPP:\n\n"
    (Array.fold_left ( +. ) 0. costs /. 1000.);
  Printf.printf "%-10s %18s %18s %18s\n" "workers" "flat speedup"
    "tree (fanout 2)" "tree (fanout 4)";
  List.iter
    (fun w ->
      let sched = Om_sched.Lpt.schedule ~costs r.tasks ~nprocs:w in
      let flat =
        (Om_machine.Supervisor.round mpp ~nworkers:w
           ~assignment:sched.assignment ~task_flops:costs ~task_reads:reads
           ~task_writes:writes ~state_dim:r.compiled.dim
           ~strategy:Sup.Broadcast_state)
          .duration
      in
      let tree fanout =
        (Om_machine.Supervisor.tree_round mpp ~fanout ~nworkers:w
           ~assignment:sched.assignment ~task_flops:costs ~task_reads:reads
           ~task_writes:writes ~state_dim:r.compiled.dim)
          .duration
      in
      Printf.printf "%-10d %18.1f %18.1f %18.1f\n" w (seq /. flat)
        (seq /. tree 2) (seq /. tree 4))
    [ 15; 31; 63; 127 ];
  Printf.printf
    "\nPaper §3.2.3: \"As the application, and thus the number of ODEs\n\
     increases, larger messages need to be sent between the solver process\n\
     and all the workers.  This must be handled efficiently to make the\n\
     application scalable.\"  The tree removes the O(workers) message\n\
     serialisation at the supervisor.\n"

(* ------------------------------------------------------------------ *)
(* Extension: the PDE path of paper §6.                                 *)

let extension_pde () =
  section "Extension (§6) — partial differential equations";
  let cases =
    [
      ("heat 1D, 101 nodes", Om_pde.Discretize.heat_1d ~n:101 ());
      ( "advection-diffusion, 201 nodes",
        Om_pde.Discretize.advection_diffusion_1d ~n:201 () );
      ("Burgers (fluid), 101 nodes", Om_pde.Discretize.burgers_1d ~n:101 ());
      ("wave 1D, 101 nodes", Om_pde.Discretize.wave_1d ~n:101 ());
      ("heat 2D, 17x17", Om_pde.Discretize.heat_2d ~nx:17 ~ny:17 ());
    ]
  in
  Printf.printf "%-32s %6s %6s %10s %18s %18s\n" "PDE model" "ODEs" "SCCs"
    "jac nnz" "SPARC w=7 speedup" "ideal w=8 speedup";
  List.iter
    (fun (name, m) ->
      let r = P.compile m in
      let jg = Om_codegen.Jacobian_gen.generate m in
      let sp_sparc =
        R.speedup ~machine:Machine.sparccenter_2000 ~nworkers:7 r
      in
      let sp_ideal = R.speedup ~machine:(Machine.ideal 16) ~nworkers:8 r in
      Printf.printf "%-32s %6d %6d %10d %18.2f %18.2f\n" name
        (Fm.dim r.model) r.analysis.comps.count
        (Om_codegen.Jacobian_gen.nonzero_count jg)
        sp_sparc sp_ideal)
    cases;
  Printf.printf
    "\nPaper §6: \"We have also started to extend the domain of equation\n\
     systems for which code can be generated to partial differential\n\
     equations, where fluid dynamics applications are common.\"  The\n\
     method-of-lines systems flow through the unchanged pipeline; their\n\
     per-node tasks are light, so equation-level speedup needs low\n\
     latency (ideal column) — consistent with §4's granularity finding.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks.                                          *)

(* The before/after pairs tracked in BENCH_micro.json: logical name,
   baseline benchmark (the engine the seed shipped with), current
   benchmark.  Entries whose two sides coincide are single-engine
   trajectory points. *)
let micro_pairs =
  [
    ("vm-eval", "objectmath/vmstack-roller-eq", "objectmath/vm-roller-eq");
    ( "bearing-rhs",
      "objectmath/bearing-rhs-closures",
      "objectmath/bearing-rhs-bytecode" );
    ("simplify", "objectmath/simplify-roller-eq", "objectmath/simplify-roller-eq");
    ("cse", "objectmath/cse-servo", "objectmath/cse-servo");
    (* The finite guard's overhead on a full RHS evaluation: the "after"
       side scans the derivative vector after the round (EXPERIMENTS.md
       targets < 2%). *)
    ( "guard-bearing",
      "objectmath/bearing-rhs-bytecode",
      "objectmath/bearing-rhs-guarded" );
    ( "guard-powerplant",
      "objectmath/powerplant-rhs-bytecode",
      "objectmath/powerplant-rhs-guarded" );
  ]

let write_micro_json path rows =
  (* rows : (name * ns_per_run) list.  Hand-rolled JSON keeps the bench
     binary dependency-free. *)
  let buf = Buffer.create 2048 in
  let num ns = Printf.sprintf "%.6g" ns in
  Buffer.add_string buf "{\n  \"schema\": \"objectmath-bench-micro/1\",\n";
  Buffer.add_string buf "  \"benchmarks\": {\n";
  List.iteri
    (fun i (name, ns) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    %S: { \"ns_per_run\": %s, \"ops_per_sec\": %s }%s\n" name
           (num ns)
           (num (1e9 /. ns))
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  },\n  \"pairs\": {\n";
  let pairs =
    List.filter_map
      (fun (label, before, after) ->
        match (List.assoc_opt before rows, List.assoc_opt after rows) with
        | Some b, Some a -> Some (label, before, after, 1e9 /. b, 1e9 /. a)
        | _ -> None)
      micro_pairs
  in
  List.iteri
    (fun i (label, before, after, b_ops, a_ops) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    %S: { \"before\": %S, \"after\": %S,\n\
           \      \"before_ops_per_sec\": %s, \"after_ops_per_sec\": %s, \
            \"speedup\": %s }%s\n"
           label before after (num b_ops) (num a_ops)
           (num (a_ops /. b_ops))
           (if i = List.length pairs - 1 then "" else ",")))
    pairs;
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc

let micro () =
  section "Micro-benchmarks (bechamel)";
  let open Bechamel in
  let r = Lazy.force bearing in
  let heavy_eq = snd (List.nth r.model.equations 8) in
  let state_names = Fm.state_names r.model in
  let names = Array.append state_names [| "t" |] in
  let env = Array.make (Array.length names) 0.01 in
  let eval_fn = Om_expr.Eval.eval_fn names heavy_eq in
  let vm_prog = Om_expr.Vm.compile names heavy_eq in
  let vmstack_prog = Om_expr.Vm_stack.compile names heavy_eq in
  let y0 = Fm.initial_values r.model in
  let ydot = Array.make (Fm.dim r.model) 0. in
  (* The seed's execution engine, as the before side of the RHS pair. *)
  let bc_closures =
    Om_codegen.Bytecode_backend.compile
      ~backend:Om_codegen.Bytecode_backend.Exec_closures r.plan ~state_names
  in
  let lu_mat =
    Array.init 20 (fun i ->
        Array.init 20 (fun j -> if i = j then 21. else 1. /. float_of_int (1 + i + j)))
  in
  let bearing_guard =
    Om_guard.Finite_guard.create ~names:state_names ~dim:(Fm.dim r.model)
  in
  let pp = Lazy.force plant in
  let pp_y0 = Fm.initial_values pp.model in
  let pp_ydot = Array.make (Fm.dim pp.model) 0. in
  let plant_guard =
    Om_guard.Finite_guard.create
      ~names:(Fm.state_names pp.model)
      ~dim:(Fm.dim pp.model)
  in
  let targets =
    List.map (fun (s, e) -> (s, e)) (Lazy.force servo).model.equations
  in
  let tests =
    Test.make_grouped ~name:"objectmath"
      [
        Test.make ~name:"simplify-roller-eq"
          (Staged.stage (fun () -> Om_expr.Simplify.simplify heavy_eq));
        Test.make ~name:"diff-roller-eq"
          (Staged.stage (fun () -> Om_expr.Deriv.diff "W[1].R" heavy_eq));
        Test.make ~name:"eval-roller-eq"
          (Staged.stage (fun () -> eval_fn env));
        Test.make ~name:"vm-roller-eq"
          (Staged.stage (fun () -> Om_expr.Vm.run vm_prog env));
        Test.make ~name:"vmstack-roller-eq"
          (Staged.stage (fun () -> Om_expr.Vm_stack.run vmstack_prog env));
        Test.make ~name:"cse-servo"
          (Staged.stage (fun () -> Om_codegen.Cse.eliminate targets));
        Test.make ~name:"tarjan-bearing"
          (Staged.stage (fun () -> Scc.tarjan r.analysis.graph));
        Test.make ~name:"lu-20x20"
          (Staged.stage (fun () -> Om_ode.Linalg.lu_factor lu_mat));
        Test.make ~name:"bearing-rhs-bytecode"
          (Staged.stage (fun () -> P.rhs_fn r 0. y0 ydot));
        Test.make ~name:"bearing-rhs-closures"
          (Staged.stage (fun () ->
               Om_codegen.Bytecode_backend.rhs_fn bc_closures 0. y0 ydot));
        Test.make ~name:"bearing-rhs-guarded"
          (Staged.stage (fun () ->
               P.rhs_fn r 0. y0 ydot;
               Om_guard.Finite_guard.check bearing_guard ~time:0. ydot));
        Test.make ~name:"powerplant-rhs-bytecode"
          (Staged.stage (fun () -> P.rhs_fn pp 0. pp_y0 pp_ydot));
        Test.make ~name:"powerplant-rhs-guarded"
          (Staged.stage (fun () ->
               P.rhs_fn pp 0. pp_y0 pp_ydot;
               Om_guard.Finite_guard.check plant_guard ~time:0. pp_ydot));
        Test.make ~name:"lpt-71-tasks"
          (Staged.stage (fun () -> Om_sched.Lpt.schedule r.tasks ~nprocs:7));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  Printf.printf "%-44s %16s %18s\n" "benchmark" "time per run" "ops/sec";
  let measured =
    List.filter_map
      (fun (name, est) ->
        match Analyze.OLS.estimates est with
        | Some [ ns ] when ns > 0. -> Some (name, ns)
        | _ -> None)
      rows
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Printf.printf "%-44s %16s %18.0f\n" name pretty (1e9 /. ns))
    measured;
  ensure_out_dir ();
  let json_path = Filename.concat out_dir "BENCH_micro.json" in
  write_micro_json json_path measured;
  Printf.printf "\nmachine-readable results written to %s\n" json_path;
  List.iter
    (fun (label, before, after) ->
      match
        (List.assoc_opt before measured, List.assoc_opt after measured)
      with
      | Some b, Some a when before <> after ->
          Printf.printf "%-14s %.2fx (%s -> %s)\n" label (b /. a)
            before after
      | _ -> ())
    micro_pairs

(* ------------------------------------------------------------------ *)
(* Real multicore execution: measured #RHS-calls/s on OCaml domains,    *)
(* next to the simulated Figure 12 curve for the same schedules.        *)

let multicore () =
  section "Multicore — measured #RHS-calls/s on real OCaml domains";
  ensure_out_dir ();
  let ncores = Domain.recommended_domain_count () in
  let workers =
    List.sort_uniq compare (1 :: 2 :: 4 :: (if ncores > 4 then [ min ncores 8 ] else []))
  in
  Printf.printf "host cores: %d; sweeping workers %s\n\n" ncores
    (String.concat ", " (List.map string_of_int workers));
  (* Each model is swept twice: static LPT and the measured semi-dynamic
     rescheduler (§3.2.3), so BENCH_parallel.json carries the
     static-vs-semidynamic comparison on real hardware. *)
  let series =
    List.concat_map
      (fun (name, r) ->
        let r = Lazy.force r in
        List.map
          (fun semidynamic ->
            let s =
              Om_parallel.Scaling.measure ~rounds:1500 ?semidynamic ~name
                ~workers r
            in
            Format.printf "%a@." Om_parallel.Scaling.pp_series s;
            s)
          [ None; Some 25 ])
      [ ("bearing2d", bearing); ("powerplant", plant) ]
  in
  let path = Filename.concat out_dir "BENCH_parallel.json" in
  Om_parallel.Scaling.write_json ~path ~ncores series;
  Printf.printf "machine-readable results written to %s\n" path;
  (* The simulated curve the measured one sits next to (Figure 12). *)
  let r = Lazy.force bearing in
  Printf.printf
    "\nsimulated SPARCCenter speedup for the same LPT schedules:\n";
  List.iter
    (fun w ->
      if w >= 1 then
        Printf.printf "  %d workers: %.2fx\n" w
          (R.speedup ~machine:Machine.sparccenter_2000 ~nworkers:w r))
    workers;
  Printf.printf
    "\nOn shared memory there is no 4 us per-message cost, so the real\n\
     curve rises faster than the simulated SPARC curve — until the host\n\
     runs out of cores (ncores=%d here), where it flattens; trajectories\n\
     stay byte-identical at every worker count and across semi-dynamic\n\
     reschedules (the `identical' column).\n"
    ncores

(* ------------------------------------------------------------------ *)
(* Ensemble engine: trajectories/sec, scalar loop vs batched VM.       *)

let write_ensemble_json path ~model ~dim ~nsteps ~h rows =
  (* rows : (width, scalar_tps, batched_tps) list; hand-rolled JSON as
     in [write_micro_json]. *)
  let buf = Buffer.create 1024 in
  let num v = Printf.sprintf "%.6g" v in
  Buffer.add_string buf "{\n  \"schema\": \"objectmath-bench-ensemble/1\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"model\": %S,\n  \"dim\": %d,\n  \"steps\": %d,\n  \"h\": %s,\n"
       model dim nsteps (num h));
  Buffer.add_string buf "  \"widths\": [\n";
  List.iteri
    (fun i (w, s_tps, b_tps) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"width\": %d, \"scalar_traj_per_sec\": %s, \
            \"batched_traj_per_sec\": %s, \"speedup\": %s }%s\n"
           w (num s_tps) (num b_tps)
           (num (b_tps /. s_tps))
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc

(* Scalar-loop baseline: per-member fixed RK4 over the scalar register
   VM ([Pipeline.rhs_fn]), no trajectory recording — the same arithmetic
   the batched engine performs, minus the batching. *)
let scalar_rk4 rhs ~dim ~y0 ~t0 ~tend ~h =
  let y = Array.copy y0 in
  let k1 = Array.make dim 0. and k2 = Array.make dim 0. in
  let k3 = Array.make dim 0. and k4 = Array.make dim 0. in
  let ytmp = Array.make dim 0. in
  let t = ref t0 in
  while !t < tend -. 1e-12 do
    let h' = Float.min h (tend -. !t) in
    rhs !t y k1;
    for i = 0 to dim - 1 do ytmp.(i) <- y.(i) +. (h' /. 2. *. k1.(i)) done;
    rhs (!t +. (h' /. 2.)) ytmp k2;
    for i = 0 to dim - 1 do ytmp.(i) <- y.(i) +. (h' /. 2. *. k2.(i)) done;
    rhs (!t +. (h' /. 2.)) ytmp k3;
    for i = 0 to dim - 1 do ytmp.(i) <- y.(i) +. (h' *. k3.(i)) done;
    rhs (!t +. h') ytmp k4;
    for i = 0 to dim - 1 do
      y.(i) <-
        y.(i) +. (h' /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i)))
    done;
    t := !t +. h'
  done;
  y

let ensemble_run ~widths ~nsteps ~min_traj () =
  section "Ensemble — trajectories/sec, scalar loop vs batched VM (bearing)";
  ensure_out_dir ();
  let r = Lazy.force bearing in
  let dim = Fm.dim r.model in
  let y0 = Fm.initial_values r.model in
  let h = 2e-5 in
  let tend = float_of_int nsteps *. h in
  let rhs = P.rhs_fn r in
  (* Deterministic per-member perturbations so lanes differ. *)
  let member_y0 m =
    Array.mapi
      (fun i v -> v +. (1e-9 *. float_of_int (((m * 31) + (i * 7)) mod 13)))
      y0
  in
  let now = Om_parallel.Monotonic.now in
  Printf.printf "bearing RHS, dim %d, %d RK4 steps per trajectory, h=%g\n\n"
    dim nsteps h;
  Printf.printf "%-8s %10s %22s %22s %10s\n" "width" "reps"
    "scalar [traj/s]" "batched [traj/s]" "speedup";
  let rows =
    List.map
      (fun w ->
        let reps = max 1 (min_traj / w) in
        let y0s = Array.init w member_y0 in
        (* Scalar loop: one member at a time through the scalar VM. *)
        let t0 = now () in
        for _ = 1 to reps do
          for m = 0 to w - 1 do
            ignore (scalar_rk4 rhs ~dim ~y0:y0s.(m) ~t0:0. ~tend ~h)
          done
        done;
        let scalar_s = now () -. t0 in
        (* Batched VM: the whole batch in lockstep. *)
        let bb = Om_codegen.Batch_backend.create r.compiled ~width:w in
        let brhs = Om_codegen.Batch_backend.brhs bb in
        let t0 = now () in
        for _ = 1 to reps do
          let ens = Om_ode.Ensemble.create ~dim ~f:brhs y0s in
          ignore (Om_ode.Ensemble.rk4 ens ~t0:0. ~tend ~h)
        done;
        let batched_s = now () -. t0 in
        let traj = float_of_int (w * reps) in
        let s_tps = traj /. scalar_s and b_tps = traj /. batched_s in
        Printf.printf "%-8d %10d %22.1f %22.1f %9.2fx\n" w reps s_tps b_tps
          (b_tps /. s_tps);
        (w, s_tps, b_tps))
      widths
  in
  let path = Filename.concat out_dir "BENCH_ensemble.json" in
  write_ensemble_json path ~model:"bearing2d" ~dim ~nsteps ~h rows;
  Printf.printf "\nmachine-readable results written to %s\n" path;
  Printf.printf
    "\nBoth columns run the same register programs; the batched column\n\
     amortises instruction decode over the batch (one decoded op drives\n\
     the whole lane range), which is where the speedup comes from.\n"

let ensemble () =
  ensemble_run ~widths:[ 1; 8; 64; 512; 4096 ] ~nsteps:25 ~min_traj:512 ()

(* Cheap CI variant: small widths, few steps, still writes the JSON. *)
let ensemble_smoke () =
  ensemble_run ~widths:[ 1; 8; 64 ] ~nsteps:5 ~min_traj:64 ()

(* ------------------------------------------------------------------ *)
(* Serve: sustained jobs/sec, compile-cache amortisation, tail latency. *)

let percentile sorted p =
  (* nearest-rank on an ascending array; p in [0,100] *)
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    sorted.(min (n - 1)
              (int_of_float (Float.round (float_of_int (n - 1) *. p /. 100.))))

let write_serve_json path ~nmodels ~repeats ~tend ~steps rows =
  (* rows : (label, cache_capacity, executors, jobs, jobs_per_sec, wall_s,
     compiles, hits, p50_ms, p95_ms, p99_ms) list *)
  let buf = Buffer.create 1024 in
  let num v = Printf.sprintf "%.6g" v in
  Buffer.add_string buf "{\n  \"schema\": \"objectmath-bench-serve/3\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"models\": %d,\n  \"repeats\": %d,\n  \"tend\": %s,\n  \
        \"steps_per_job\": %d,\n"
       nmodels repeats (num tend) steps);
  Buffer.add_string buf "  \"series\": [\n";
  List.iteri
    (fun i (label, cap, execs, jobs, jps, wall, compiles, hits, p50, p95, p99)
       ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"label\": %S, \"cache_capacity\": %d, \"executors\": %d, \
            \"jobs\": %d, \"jobs_per_sec\": %s, \"wall_s\": %s, \
            \"compiles\": %d, \"cache_hits\": %d, \"p50_ms\": %s, \
            \"p95_ms\": %s, \"p99_ms\": %s }%s\n"
           label cap execs jobs (num jps) (num wall) compiles hits (num p50)
           (num p95) (num p99)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  let jps label =
    List.find_map
      (fun (l, _, _, _, jps, _, _, _, _, _, _) ->
        if l = label then Some jps else None)
      rows
  in
  let ratio name a b =
    match (jps a, jps b) with
    | Some va, Some vb when vb <> 0. ->
        Printf.sprintf "  \"%s\": %s" name (num (va /. vb))
    | _ -> Printf.sprintf "  \"%s\": null" name
  in
  Buffer.add_string buf (ratio "warm_over_cold" "warm" "cold");
  Buffer.add_string buf ",\n";
  (* Same-model concurrency: >1 means jobs on one hot artifact really
     overlapped (meaningless ≈1 on a single hardware core, where the
     series is still recorded for cross-machine comparison). *)
  Buffer.add_string buf
    (ratio "same_model_x2_over_x1" "same-model-x2" "same-model-x1");
  Buffer.add_string buf ",\n";
  (* Durability cost: a warm same-model burst with the write-ahead
     journal on, as a fraction of the identical journal-free burst.
     Group-commit fsync keeps this near 1.0 (< 1.05 is the acceptance
     bar). *)
  Buffer.add_string buf (ratio "journal_overhead" "journal-off" "journal-on");
  Buffer.add_string buf "\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc

let serve_run ~nmodels ~repeats () =
  section "Serve — jobs/sec, compile-cache amortisation, tail latency";
  ensure_out_dir ();
  let tend = 0.01 and steps = 20 in
  let solver = Om_serve.Job.Rk4 (Some (tend /. float_of_int steps)) in
  (* Fuzz-generated model mix, prefiltered: each candidate must compile
     and integrate finitely over the short job horizon.  The short
     horizon keeps the run itself cheap, so a cache hit (skipping
     flatten/typecheck/codegen) dominates the per-job cost. *)
  let models =
    let rec gather i acc =
      if List.length acc >= nmodels then List.rev acc
      else begin
        let rng = Random.State.make [| 2026; i |] in
        let src = Om_fuzz.Gen.source rng in
        match
          let r = Om_codegen.Pipeline.compile_source src in
          Objectmath.Runtime.execute
            ~solver:(Rk4 (tend /. float_of_int steps))
            ~tend r
        with
        | rep
          when Array.for_all Float.is_finite
                 (Om_ode.Odesys.final_state rep.trajectory) ->
            gather (i + 1) (src :: acc)
        | _ -> gather (i + 1) acc
        | exception _ -> gather (i + 1) acc
      end
    in
    gather 0 []
  in
  let jobs =
    List.concat_map
      (fun rep ->
        List.mapi
          (fun m source ->
            {
              Om_serve.Job.default with
              Om_serve.Job.id = Printf.sprintf "r%d-m%d" rep m;
              tenant = Printf.sprintf "tenant-%d" (m mod 3);
              source;
              solver;
              tend;
            })
          models)
      (List.init repeats Fun.id)
  in
  Printf.printf
    "%d fuzz models x %d repeats = %d jobs per series (%d rk4 steps each)\n\n"
    (List.length models) repeats (List.length jobs) steps;
  let now = Om_parallel.Monotonic.now in
  let journal_path = Filename.concat out_dir "bench_serve.journal" in
  let run_series ?(executors = 1) ?(journal = false) ?(recover_first = false)
      label cache_capacity jobs =
    let njobs = List.length jobs in
    let latencies = ref [] in
    let mu = Mutex.create () in
    let emit record =
      match
        ( Om_serve.Json.member record "type",
          Om_serve.Json.member record "total_s" )
      with
      | Some (Om_serve.Json.Str "status"), Some v -> (
          match Om_serve.Json.to_float v with
          | Some s ->
              Mutex.lock mu;
              latencies := s :: !latencies;
              Mutex.unlock mu
          | None -> ())
      | _ -> ()
    in
    let config =
      {
        Om_serve.Server.default_config with
        Om_serve.Server.queue_capacity = njobs + 1;
        executors;
        cache_capacity;
        timings = true;
      }
    in
    let t0 = now () in
    let server =
      if journal then begin
        if (not recover_first) && Sys.file_exists journal_path then
          Sys.remove journal_path;
        (* recovery series: replay an existing journal and re-enqueue the
           crashed jobs; the measured wall covers replay + re-execution *)
        let replay =
          match Om_serve.Journal.replay journal_path with
          | Ok r -> r
          | Error msg -> failwith msg
        in
        let j = Om_serve.Journal.open_append journal_path in
        let server = Om_serve.Server.create ~config ~journal:j ~emit () in
        ignore (Om_serve.Server.recover server replay);
        server
      end
      else Om_serve.Server.create ~config ~emit ()
    in
    List.iter (fun j -> ignore (Om_serve.Server.submit server j)) jobs;
    ignore (Om_serve.Server.drain server);
    let wall = now () -. t0 in
    (* the recovery series submits nothing itself: its jobs all come
       from the journal, so count terminal statuses instead *)
    let njobs = max njobs (List.length !latencies) in
    let cs = Om_serve.Model_cache.stats (Om_serve.Server.cache server) in
    let sorted = Array.of_list !latencies in
    Array.sort compare sorted;
    let pct p = percentile sorted p *. 1e3 in
    let jps = float_of_int njobs /. wall in
    Printf.printf
      "%-14s cache=%-3d x%d %8.1f jobs/s  wall %6.3fs  compiles %3d  hits \
       %3d  p50 %6.2fms  p95 %6.2fms  p99 %6.2fms\n"
      label cache_capacity executors jps wall
      cs.Om_serve.Model_cache.compiles cs.Om_serve.Model_cache.hits (pct 50.)
      (pct 95.) (pct 99.);
    ( label, cache_capacity, executors, njobs, jps, wall,
      cs.Om_serve.Model_cache.compiles, cs.Om_serve.Model_cache.hits,
      pct 50., pct 95., pct 99. )
  in
  (* Cold: caching disabled, every job pays the full pipeline.  Warm:
     every distinct source compiles once; repeats are cache hits. *)
  let cold = run_series "cold" 0 jobs in
  let warm = run_series "warm" 64 jobs in
  (* Same-model concurrency: a burst of identical jobs against one hot
     artifact, scaled across executor counts.  One compile serves the
     whole burst; each executor integrates its own scratch clone, so the
     x2/x1 throughput ratio measures true execution overlap (≈1 on a
     single hardware core, →2 with two real cores). *)
  let hot_steps = 400 in
  let hot_source = List.hd models in
  let hot_jobs tag =
    List.init (8 * repeats) (fun i ->
        {
          Om_serve.Job.default with
          Om_serve.Job.id = Printf.sprintf "hot%s-%d" tag i;
          tenant = "hot";
          source = hot_source;
          solver = Om_serve.Job.Rk4 (Some (tend /. float_of_int hot_steps));
          tend;
        })
  in
  let sm1 = run_series ~executors:1 "same-model-x1" 64 (hot_jobs "x1") in
  let sm2 = run_series ~executors:2 "same-model-x2" 64 (hot_jobs "x2") in
  (* Durability: the warm series again with the write-ahead journal on —
     every accept fsynced (group commit) before its job runs. *)
  let rename tag =
    List.map (fun j ->
        { j with Om_serve.Job.id = tag ^ "-" ^ j.Om_serve.Job.id })
  in
  (* Durability: group-commit fsync overhead, measured on a warm burst
     long enough for batching to amortise.  Per-job fsync would show up
     here as a multi-x slowdown; group commit (executors block on their
     accept's fsync only, terminal records ride later batches) keeps
     the journal-on/journal-off gap within a few percent. *)
  let journal_burst tag =
    List.init (32 * repeats) (fun i ->
        {
          Om_serve.Job.default with
          Om_serve.Job.id = Printf.sprintf "%s-%d" tag i;
          tenant = "durable";
          source = hot_source;
          solver = Om_serve.Job.Rk4 (Some (tend /. float_of_int hot_steps));
          tend;
        })
  in
  (* Paired interleaved rounds for the overhead ratio: on a loaded
     single-core machine a ~100ms series varies ±20% run to run, which
     would drown the few percent the journal actually costs (and any
     scheme that picks each side's run independently compares a lucky
     run against an unlucky one).  Each round runs journal-off then
     journal-on back to back, sharing ambient load, and the reported
     rows aggregate all rounds — total jobs over total wall — so
     transient stalls fall out of both sides alike. *)
  let aggregate rows =
    let label, cap, ex, _, _, _, _, _, _, _, _ = List.hd rows in
    let sum f = List.fold_left (fun a r -> a +. f r) 0. rows in
    let sumi f = List.fold_left (fun a r -> a + f r) 0 rows in
    let njobs = sumi (fun (_, _, _, n, _, _, _, _, _, _, _) -> n) in
    let wall = sum (fun (_, _, _, _, _, w, _, _, _, _, _) -> w) in
    let med f =
      let a = Array.of_list (List.map f rows) in
      Array.sort compare a;
      a.(Array.length a / 2)
    in
    ( label, cap, ex, njobs, float_of_int njobs /. wall, wall,
      sumi (fun (_, _, _, _, _, _, c, _, _, _, _) -> c),
      sumi (fun (_, _, _, _, _, _, _, h, _, _, _) -> h),
      med (fun (_, _, _, _, _, _, _, _, p, _, _) -> p),
      med (fun (_, _, _, _, _, _, _, _, _, p, _) -> p),
      med (fun (_, _, _, _, _, _, _, _, _, _, p) -> p) )
  in
  let pairs =
    List.init 3 (fun _ ->
        let off = run_series "journal-off" 64 (journal_burst "jb") in
        let on_ =
          run_series ~journal:true "journal-on" 64 (journal_burst "jo")
        in
        (off, on_))
  in
  let jbase = aggregate (List.map fst pairs) in
  let wj = aggregate (List.map snd pairs) in
  (* Recovery: journal a burst of accepts with no terminal records (a
     crashed server), then measure replay + re-execution to drain. *)
  let crashed = rename "crash" jobs in
  if Sys.file_exists journal_path then Sys.remove journal_path;
  let j = Om_serve.Journal.open_append journal_path in
  List.iter (fun s -> ignore (Om_serve.Journal.record_accept j s)) crashed;
  Om_serve.Journal.close j;
  let recov =
    run_series ~journal:true ~recover_first:true "recovery" 64 []
  in
  if Sys.file_exists journal_path then Sys.remove journal_path;
  let rows = [ cold; warm; sm1; sm2; jbase; wj; recov ] in
  let path = Filename.concat out_dir "BENCH_serve.json" in
  write_serve_json path ~nmodels:(List.length models) ~repeats ~tend ~steps
    rows;
  let series_jps (_, _, _, _, jps, _, _, _, _, _, _) = jps in
  Printf.printf
    "\nwarm/cold throughput: %.2fx (compile amortised across %d repeats)\n"
    (series_jps warm /. series_jps cold)
    repeats;
  Printf.printf
    "same-model x2/x1 throughput: %.2fx (scratch-clone executor overlap)\n"
    (series_jps sm2 /. series_jps sm1);
  Printf.printf
    "journal overhead: %.3fx journal-off throughput (group-commit fsync; \
     < 1.05 is the acceptance bar)\n"
    (series_jps jbase /. series_jps wj);
  Printf.printf "recovery drain: %.1f jobs/s from a cold journal replay\n"
    (series_jps recov);
  Printf.printf "machine-readable results written to %s\n" path

let serve_bench () = serve_run ~nmodels:12 ~repeats:6 ()

(* Cheap CI variant: fewer models and repeats, still writes the JSON. *)
let serve_smoke () = serve_run ~nmodels:4 ~repeats:3 ()

(* ------------------------------------------------------------------ *)
(* Sparse Jacobians: colored compressed columns + sparse LU vs the     *)
(* dense Newton pipeline, over method-of-lines heat-equation sizes.    *)

type jac_row = {
  jr_states : int;
  jr_nnz : int;
  jr_colors : int;
  jr_fd_evals : int;  (** measured RHS evaluations of one fd Jacobian *)
  jr_sparse : float * float * float;  (** jac, assemble+factor, solve [s] *)
  jr_dense : (float * float * float) option;  (** None above [dense_cap] *)
}

let write_jacobian_json path rows =
  let buf = Buffer.create 2048 in
  let num v = Printf.sprintf "%.6g" v in
  Buffer.add_string buf "{\n  \"schema\": \"objectmath-bench-jacobian/1\",\n";
  Buffer.add_string buf
    "  \"model\": \"heat_1d\",\n  \"alpha\": 1.5,\n  \"beta\": 1e-4,\n";
  Buffer.add_string buf "  \"sizes\": [\n";
  List.iteri
    (fun i r ->
      let sj, sf, ss = r.jr_sparse in
      let sparse_step = sj +. sf +. ss in
      let dense_fields =
        match r.jr_dense with
        | None ->
            "\"dense_jac_s\": null, \"dense_factor_s\": null, \
             \"dense_solve_s\": null, \"dense_step_s\": null, \
             \"newton_speedup\": null"
        | Some (dj, df, ds) ->
            let dense_step = dj +. df +. ds in
            Printf.sprintf
              "\"dense_jac_s\": %s, \"dense_factor_s\": %s, \
               \"dense_solve_s\": %s, \"dense_step_s\": %s, \
               \"newton_speedup\": %s"
              (num dj) (num df) (num ds) (num dense_step)
              (num (dense_step /. sparse_step))
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"states\": %d, \"nnz\": %d, \"colors\": %d, \
            \"fd_evals\": %d, \"sparse_jac_s\": %s, \"sparse_factor_s\": \
            %s, \"sparse_solve_s\": %s, \"sparse_step_s\": %s, %s }%s\n"
           r.jr_states r.jr_nnz r.jr_colors r.jr_fd_evals (num sj) (num sf)
           (num ss) (num sparse_step) dense_fields
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc

let jacobian_run ~sizes ~dense_cap () =
  section
    "Jacobian — colored sparse columns + sparse LU vs the dense Newton \
     pipeline (1D heat equation)";
  ensure_out_dir ();
  let now = Om_parallel.Monotonic.now in
  let time_it f =
    let t0 = now () in
    let r = f () in
    (now () -. t0, r)
  in
  let alpha = 1.5 and beta = 1e-4 in
  Printf.printf "%-9s %9s %7s %8s | %11s %11s %11s | %11s %9s\n" "states"
    "nnz" "colors" "fd evals" "sparse jac" "sp factor" "sp step"
    "dense step" "speedup";
  let rows =
    List.map
      (fun states ->
        let m = Om_pde.Discretize.heat_1d ~n:(states + 2) () in
        let sys =
          Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false
            m.equations
        in
        let y = Fm.initial_values m in
        let t = 0.01 in
        let ctx =
          match Om_ode.Jacobian.plan ~jac_mode:Om_ode.Odesys.Sparse sys with
          | Om_ode.Jacobian.Sparse_plan ctx -> ctx
          | _ -> failwith "jacobian bench: sparse plan expected"
        in
        let nnz = Om_ode.Sparse.nnz ctx.spat in
        let colors = ctx.coloring.ncolors in
        (* Count the RHS evaluations of one colored fd Jacobian: must be
           exactly [colors + 1] (one per color plus the base point). *)
        let calls0 = sys.counters.rhs_calls in
        Om_ode.Jacobian.sparse_eval_into sys ctx t y;
        let fd_evals = sys.counters.rhs_calls - calls0 in
        let sparse_jac_s, () =
          time_it (fun () -> Om_ode.Jacobian.sparse_eval_into sys ctx t y)
        in
        let sparse_factor_s, lu =
          time_it (fun () ->
              Om_ode.Sparse.newton_assemble ctx.newton ~jac:ctx.sj ~alpha
                ~beta;
              Om_ode.Sparse.lu_factor
                (Om_ode.Sparse.newton_matrix ctx.newton))
        in
        let b = Array.init states (fun i -> Float.sin (float_of_int i)) in
        let sparse_solve_s, _ =
          time_it (fun () -> Om_ode.Sparse.lu_solve lu b)
        in
        let dense =
          if states > dense_cap then None
          else begin
            let jm = Om_ode.Linalg.make states states 0. in
            let dense_jac_s, () =
              time_it (fun () -> Om_ode.Jacobian.eval_into sys t y jm)
            in
            let dense_factor_s, dlu =
              time_it (fun () ->
                  (* Build the Newton matrix in place to halve the peak
                     footprint at the big sizes. *)
                  for i = 0 to states - 1 do
                    let row = jm.(i) in
                    for k = 0 to states - 1 do
                      row.(k) <-
                        (if i = k then alpha else 0.) -. (beta *. row.(k))
                    done
                  done;
                  Om_ode.Linalg.lu_factor jm)
            in
            let dense_solve_s, _ =
              time_it (fun () -> Om_ode.Linalg.lu_solve dlu b)
            in
            Some (dense_jac_s, dense_factor_s, dense_solve_s)
          end
        in
        let sj, sf, ss = (sparse_jac_s, sparse_factor_s, sparse_solve_s) in
        let sparse_step = sj +. sf +. ss in
        (match dense with
        | Some (dj, df, ds) ->
            let dense_step = dj +. df +. ds in
            Printf.printf
              "%-9d %9d %7d %8d | %11.2e %11.2e %11.2e | %11.2e %8.1fx\n"
              states nnz colors fd_evals sj sf sparse_step dense_step
              (dense_step /. sparse_step)
        | None ->
            Printf.printf
              "%-9d %9d %7d %8d | %11.2e %11.2e %11.2e | %11s %9s\n" states
              nnz colors fd_evals sj sf sparse_step "-" "-");
        {
          jr_states = states;
          jr_nnz = nnz;
          jr_colors = colors;
          jr_fd_evals = fd_evals;
          jr_sparse = (sj, sf, ss);
          jr_dense = dense;
        })
      sizes
  in
  let path = Filename.concat out_dir "BENCH_jacobian.json" in
  write_jacobian_json path rows;
  Printf.printf "\nmachine-readable results written to %s\n" path;
  Printf.printf
    "\nThe compressed fd Jacobian costs one RHS evaluation per color plus\n\
     the base point (tridiagonal heat: 3 colors at every size), and the\n\
     sparse LU factors the tridiagonal Newton matrix with no fill — both\n\
     flat in the stencil width instead of the state count, which is where\n\
     the dense O(n) fd evaluations and O(n^3) factorisation go.\n";
  rows

let jacobian () =
  ignore
    (jacobian_run
       ~sizes:[ 1000; 3162; 10000; 31623; 100000 ]
       ~dense_cap:10000 ())

(* Cheap CI variant: one modest size, dense comparison included, with
   the structural assertions CI relies on. *)
let jacobian_smoke () =
  let rows = jacobian_run ~sizes:[ 401 ] ~dense_cap:401 () in
  List.iter
    (fun r ->
      if r.jr_colors >= r.jr_states then
        failwith
          (Printf.sprintf "jacobian-smoke: %d colors on %d states"
             r.jr_colors r.jr_states);
      if r.jr_fd_evals <> r.jr_colors + 1 then
        failwith
          (Printf.sprintf "jacobian-smoke: %d fd evals for %d colors"
             r.jr_fd_evals r.jr_colors))
    rows;
  Printf.printf "jacobian-smoke: colors < states and fd evals = colors + 1\n"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig3", fig3);
    ("fig5", fig5);
    ("fig6", fig6);
    ("syslevel", syslevel);
    ("fig10", fig10);
    ("table-codegen", table_codegen);
    ("lpt-overhead", lpt_overhead);
    ("latency", latency);
    ("table-jacobian", table_jacobian);
    ("fig12", fig12);
    ("scaling", scaling);
    ("ablation-cse", ablation_cse);
    ("ablation-sched", ablation_sched);
    ("ablation-grain", ablation_grain);
    ("ablation-comm", ablation_comm);
    ("ablation-topology", ablation_topology);
    ("extension-pde", extension_pde);
    ("micro", micro);
    ("multicore", multicore);
    ("ensemble", ensemble);
    ("ensemble-smoke", ensemble_smoke);
    ("serve", serve_bench);
    ("serve-smoke", serve_smoke);
    ("jacobian", jacobian);
    ("jacobian-smoke", jacobian_smoke);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] ->
      Printf.printf
        "ObjectMath reproduction — full benchmark suite (all experiments)\n";
      List.iter (fun (_, f) -> f ()) experiments
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown experiment %s; available: %s\n" name
                (String.concat ", " (List.map fst experiments));
              exit 1)
        names
