(* LRU cache of finished trajectories, keyed on everything that
   determines the output bytes: the model's content hash, the solver
   (with its fixed step, bit-exact) and the end time (bit-exact).
   Floats are keyed by their IEEE bits, not their printed form, so two
   keys collide only when the runs are bitwise-identical by
   construction — which is exactly the property the serve tests assert
   about a cache hit.

   Same shape as [Model_cache] minus the in-flight latch: a second
   identical job arriving while the first is still running simply runs
   too (result identity makes the duplicated work harmless), which
   keeps this module a plain mutex-protected map.  The value type is
   abstract here; the server stores its replayable run record. *)

type 'a entry = {
  key : string;
  value : 'a;
  mutable prev : 'a entry option;
  mutable next : 'a entry option;
}

type 'a t = {
  mutex : Mutex.t;
  capacity : int;
  table : (string, 'a entry) Hashtbl.t;
  mutable head : 'a entry option;  (* most recently used *)
  mutable tail : 'a entry option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
}

let create capacity =
  if capacity < 0 then invalid_arg "Result_cache.create: negative capacity";
  {
    mutex = Mutex.create ();
    capacity;
    table = Hashtbl.create (max 8 capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
  }

let key ~source_key ~solver ~tend =
  let bits f = Printf.sprintf "%Lx" (Int64.bits_of_float f) in
  let solver_part =
    match solver with
    | Job.Rk4 None -> "rk4"
    | Job.Rk4 (Some h) -> "rk4:" ^ bits h
    | Job.Rkf45 -> "rkf45"
    | Job.Lsoda -> "lsoda"
  in
  String.concat "|" [ source_key; solver_part; bits tend ]

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let lookup t key =
  if t.capacity = 0 then None
  else begin
    Mutex.lock t.mutex;
    let result =
      match Hashtbl.find_opt t.table key with
      | Some e ->
          t.hits <- t.hits + 1;
          unlink t e;
          push_front t e;
          Some e.value
      | None ->
          t.misses <- t.misses + 1;
          None
    in
    Mutex.unlock t.mutex;
    result
  end

let store t key value =
  if t.capacity > 0 then begin
    Mutex.lock t.mutex;
    (match Hashtbl.find_opt t.table key with
    | Some e ->
        (* racing identical jobs: keep the first stored result so every
           later hit is bitwise-stable *)
        unlink t e;
        push_front t e
    | None ->
        let e = { key; value; prev = None; next = None } in
        Hashtbl.replace t.table key e;
        push_front t e;
        if Hashtbl.length t.table > t.capacity then
          match t.tail with
          | Some lru ->
              unlink t lru;
              Hashtbl.remove t.table lru.key
          | None -> ());
    Mutex.unlock t.mutex
  end

let stats t =
  Mutex.lock t.mutex;
  let s = (t.hits, t.misses, Hashtbl.length t.table) in
  Mutex.unlock t.mutex;
  s
