type entry = { key : string; compiled : Om_codegen.Pipeline.result }

type stats = {
  compiles : int;
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
}

type slot = { entry : entry; mutable last_used : int }

(* One latch per source being compiled right now: the compiling thread
   publishes its outcome here and wakes every waiter.  The latch lives
   in [inflight] only while the compile runs, so the table mutex is
   never held across a compile. *)
type latch = {
  lmutex : Mutex.t;
  ldone : Condition.t;
  mutable outcome : (entry, exn) result option;
}

type t = {
  mutex : Mutex.t;  (* guards table, inflight and the counters — map
                       operations only, never compilation *)
  table : (string, slot) Hashtbl.t;
  inflight : (string, latch) Hashtbl.t;
  cap : int;
  config : Om_codegen.Pipeline.config option;
  on_compile : (string -> unit) option;
  mutable tick : int;  (* LRU clock: bumped on every hit/insert *)
  mutable compiles : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?config ?on_compile ~capacity () =
  if capacity < 0 then invalid_arg "Model_cache.create: capacity < 0";
  {
    mutex = Mutex.create ();
    table = Hashtbl.create (max 8 capacity);
    inflight = Hashtbl.create 8;
    cap = capacity;
    config;
    on_compile;
    tick = 0;
    compiles = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let touch t slot =
  t.tick <- t.tick + 1;
  slot.last_used <- t.tick

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key slot acc ->
        match acc with
        | Some (_, best) when best.last_used <= slot.last_used -> acc
        | _ -> Some (key, slot))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1

let resolve latch outcome =
  Mutex.lock latch.lmutex;
  latch.outcome <- Some outcome;
  Condition.broadcast latch.ldone;
  Mutex.unlock latch.lmutex

let await latch =
  Mutex.lock latch.lmutex;
  while latch.outcome = None do
    Condition.wait latch.ldone latch.lmutex
  done;
  let outcome = Option.get latch.outcome in
  Mutex.unlock latch.lmutex;
  outcome

let rec lookup t source =
  let key = Om_codegen.Pipeline.source_key source in
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some slot ->
      t.hits <- t.hits + 1;
      touch t slot;
      Mutex.unlock t.mutex;
      `Hit slot.entry
  | None -> (
      match Hashtbl.find_opt t.inflight key with
      | Some latch -> (
          (* Someone is compiling this source right now: wait on its
             latch (off the table mutex, so hits on other sources keep
             flowing) and take the hit path — the compile was skipped. *)
          t.hits <- t.hits + 1;
          Mutex.unlock t.mutex;
          match await latch with
          | Ok entry -> `Hit entry
          | Error _ ->
              (* The compile we piggybacked on failed.  Retry from the
                 top: the latch is gone, so this attempt either compiles
                 itself and raises the error to its own caller with the
                 hit stat rolled back, or joins a newer attempt. *)
              Mutex.lock t.mutex;
              t.hits <- t.hits - 1;
              Mutex.unlock t.mutex;
              lookup t source)
      | None ->
          let latch =
            { lmutex = Mutex.create (); ldone = Condition.create ();
              outcome = None }
          in
          Hashtbl.add t.inflight key latch;
          t.misses <- t.misses + 1;
          Mutex.unlock t.mutex;
          (* Compile with no lock held: a slow compile stalls only
             requests for this same source (parked on the latch above),
             never hits or compiles of other sources. *)
          (match t.on_compile with Some f -> f source | None -> ());
          match Om_codegen.Pipeline.compile_source ?config:t.config source with
          | compiled ->
              let entry = { key; compiled } in
              Mutex.lock t.mutex;
              t.compiles <- t.compiles + 1;
              if t.cap > 0 then begin
                if Hashtbl.length t.table >= t.cap then evict_lru t;
                let slot = { entry; last_used = 0 } in
                touch t slot;
                Hashtbl.add t.table key slot
              end;
              Hashtbl.remove t.inflight key;
              Mutex.unlock t.mutex;
              resolve latch (Ok entry);
              `Miss entry
          | exception e ->
              Mutex.lock t.mutex;
              Hashtbl.remove t.inflight key;
              (* An ill-formed source is neither a hit nor a miss: the
                 stats count cache traffic for real models only. *)
              t.misses <- t.misses - 1;
              Mutex.unlock t.mutex;
              resolve latch (Error e);
              raise e)

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      compiles = t.compiles;
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      entries = Hashtbl.length t.table;
    }
  in
  Mutex.unlock t.mutex;
  s

let capacity t = t.cap

let resident t =
  Mutex.lock t.mutex;
  let slots = Hashtbl.fold (fun key slot acc -> (key, slot.last_used) :: acc) t.table [] in
  Mutex.unlock t.mutex;
  slots
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.map fst
