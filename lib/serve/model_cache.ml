type entry = {
  key : string;
  compiled : Om_codegen.Pipeline.result;
  lock : Mutex.t;
}

type stats = {
  compiles : int;
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
}

type slot = { entry : entry; mutable last_used : int }

type t = {
  mutex : Mutex.t;
  table : (string, slot) Hashtbl.t;
  cap : int;
  config : Om_codegen.Pipeline.config option;
  mutable tick : int;  (* LRU clock: bumped on every hit/insert *)
  mutable compiles : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?config ~capacity () =
  if capacity < 0 then invalid_arg "Model_cache.create: capacity < 0";
  {
    mutex = Mutex.create ();
    table = Hashtbl.create (max 8 capacity);
    cap = capacity;
    config;
    tick = 0;
    compiles = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let touch t slot =
  t.tick <- t.tick + 1;
  slot.last_used <- t.tick

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key slot acc ->
        match acc with
        | Some (_, best) when best.last_used <= slot.last_used -> acc
        | _ -> Some (key, slot))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1

let lookup t source =
  let key = Om_codegen.Pipeline.source_key source in
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some slot ->
      t.hits <- t.hits + 1;
      touch t slot;
      Mutex.unlock t.mutex;
      `Hit slot.entry
  | None ->
      (* Compile under the cache mutex: a second request for the same
         new source blocks here and then takes the hit path, so each
         source compiles exactly once. *)
      let finish () = Mutex.unlock t.mutex in
      let compiled =
        try Om_codegen.Pipeline.compile_source ?config:t.config source
        with e -> finish (); raise e
      in
      t.misses <- t.misses + 1;
      t.compiles <- t.compiles + 1;
      let entry = { key; compiled; lock = Mutex.create () } in
      if t.cap > 0 then begin
        if Hashtbl.length t.table >= t.cap then evict_lru t;
        let slot = { entry; last_used = 0 } in
        touch t slot;
        Hashtbl.add t.table key slot
      end;
      finish ();
      `Miss entry

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      compiles = t.compiles;
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      entries = Hashtbl.length t.table;
    }
  in
  Mutex.unlock t.mutex;
  s

let capacity t = t.cap

let resident t =
  Mutex.lock t.mutex;
  let slots = Hashtbl.fold (fun key slot acc -> (key, slot.last_used) :: acc) t.table [] in
  Mutex.unlock t.mutex;
  slots
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.map fst
