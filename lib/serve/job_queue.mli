(** Thread-safe bounded priority queue — the server's submission queue.

    Producers {!submit} without blocking: a full queue {e rejects} the
    item instead of applying back-pressure, which is the serve layer's
    overload story (the caller turns the rejection into a per-job
    [rejected] status record and the client retries or sheds load).
    Consumers {!pop}, blocking while the queue is empty and open.

    Ordering: highest {!submit} priority first; FIFO among equal
    priorities (a submission sequence number breaks ties), so
    same-priority jobs complete in submission order — the ordered-status
    guarantee the cram tests assert.

    Implementation: a binary max-heap under one mutex with a condition
    variable for sleeping consumers; every operation is O(log n). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val submit : 'a t -> priority:int -> 'a -> [ `Ok | `Rejected | `Closed ]
(** Enqueue, never blocking: [`Rejected] when [length t = capacity],
    [`Closed] after {!close}. *)

val pop : 'a t -> 'a option
(** Dequeue the highest-priority item, blocking while the queue is
    empty and open; [None] once the queue is closed {e and} drained —
    the consumer's termination signal. *)

val close : 'a t -> unit
(** Stop accepting submissions and wake every blocked consumer.  Items
    already queued are still delivered.  Idempotent. *)

val closed : 'a t -> bool
val length : 'a t -> int
val capacity : 'a t -> int
