(** Thread-safe bounded priority queue with per-tenant admission
    control — the server's submission queue.

    Producers {!submit} without blocking: an over-capacity or over-quota
    submission is {e rejected} instead of applying back-pressure, which
    is the serve layer's overload story (the caller turns each shed
    path into its own typed status record).  Consumers {!pop}, blocking
    while nothing is eligible and the queue is open.

    Ordering: highest {!submit} priority first; within a priority,
    earlier absolute [deadline] first (no deadline = infinity); FIFO
    within that (a submission sequence number breaks ties), so
    same-priority deadline-free jobs complete in submission order — the
    ordered-status guarantee the cram tests assert.

    The shed paths are distinguishable so each gets its own status:
    - [`Rejected_full] — the queue holds [capacity] items (global
      overload shedding, every tenant affected);
    - [`Rejected_quota] — this tenant already has
      [max_queued_per_tenant] items queued (per-tenant fairness; other
      tenants are unaffected).

    [max_running_per_tenant] caps concurrent {e execution} per tenant:
    {!pop} skips entries whose tenant is at the cap (the best eligible
    entry pops instead, so one tenant's burst cannot monopolise the
    executor domains) and unblocks when {!finished} releases a slot.

    Implementation: a binary max-heap under one mutex with a condition
    variable for sleeping consumers; O(log n) without quotas, one O(n)
    scan per pop when the root's tenant is saturated. *)

type 'a t

val create :
  ?max_queued_per_tenant:int ->
  ?max_running_per_tenant:int ->
  capacity:int ->
  unit ->
  'a t
(** [0] (the default) disables the respective tenant quota.
    @raise Invalid_argument on [capacity < 1] or a negative quota. *)

val submit :
  ?tenant:string ->
  ?deadline:float ->
  ?force:bool ->
  'a t ->
  priority:int ->
  'a ->
  [ `Ok | `Rejected_full | `Rejected_quota | `Closed ]
(** Enqueue, never blocking.  [deadline] is an absolute wall-clock time
    (epoch seconds) used for ordering within a priority; default
    infinity.  [force] bypasses the capacity and quota checks (never
    the closed check) — the retry path uses it so a re-enqueued job,
    which was already admitted once, cannot be shed on re-entry. *)

val pop : 'a t -> 'a option
(** Dequeue the best eligible item, blocking while none is available
    and the queue is open; [None] once the queue is closed {e and}
    drained — the consumer's termination signal.  Counts the entry's
    tenant as running: the caller must call {!finished} when the job
    leaves execution (terminal status or retry re-enqueue). *)

val finished : 'a t -> tenant:string -> unit
(** Release one running slot for [tenant] and wake blocked consumers. *)

val close : 'a t -> unit
(** Stop accepting submissions and wake every blocked consumer.  Items
    already queued are still delivered.  Idempotent. *)

val closed : 'a t -> bool
val length : 'a t -> int

val queued_for : 'a t -> tenant:string -> int
(** Currently queued (not yet popped) items for [tenant]. *)

val running_for : 'a t -> tenant:string -> int
(** Popped-but-not-{!finished} items for [tenant]. *)

val capacity : 'a t -> int
