type solver = Rk4 of float option | Rkf45 | Lsoda

type chaos = {
  kind : [ `Nan | `Inf | `Fail_spawn ];
  task : int;
  round : int;
  count : int;
  attempts : int;
}

type spec = {
  id : string;
  tenant : string;
  priority : int;
  deadline_s : float;
  source : string;
  solver : solver;
  tend : float;
  chunk : int;
  domains : int;
  retries : int;
  chaos : chaos option;
}

let default =
  {
    id = "";
    tenant = "default";
    priority = 0;
    deadline_s = 0.;
    source = "";
    solver = Rk4 None;
    tend = 1.0;
    chunk = 0;
    domains = 0;
    retries = 0;
    chaos = None;
  }

let ( let* ) = Result.bind

let field json name conv ~default =
  match Json.member json name with
  | None | Some Json.Null -> Ok default
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad %S field" name))

let chaos_of_json json =
  match Json.member json "chaos" with
  | None | Some Json.Null -> Ok None
  | Some c ->
      let* kind =
        match Option.bind (Json.member c "kind") Json.to_str with
        | Some "nan" | None -> Ok `Nan
        | Some "inf" -> Ok `Inf
        | Some "fail_spawn" -> Ok `Fail_spawn
        | Some other -> Error (Printf.sprintf "bad chaos kind %S" other)
      in
      let* task = field c "task" Json.to_int ~default:0 in
      let* round = field c "round" Json.to_int ~default:1 in
      let* count = field c "count" Json.to_int ~default:1 in
      let* attempts = field c "attempts" Json.to_int ~default:0 in
      if task < 0 || round < 1 || count < 1 || attempts < 0 then
        Error "bad chaos coordinates"
      else Ok (Some { kind; task; round; count; attempts })

let of_json ?(default_id = "") ?(default_retries = 0) ~resolve json =
  match json with
  | Json.Obj _ ->
      let* id = field json "id" Json.to_str ~default:default_id in
      let* tenant = field json "tenant" Json.to_str ~default:default.tenant in
      let* priority = field json "priority" Json.to_int ~default:0 in
      let* deadline_s = field json "deadline_s" Json.to_float ~default:0. in
      let* tend = field json "tend" Json.to_float ~default:default.tend in
      let* chunk = field json "chunk" Json.to_int ~default:0 in
      let* domains = field json "domains" Json.to_int ~default:0 in
      let* retries = field json "retries" Json.to_int ~default:default_retries in
      let* h = field json "h" Json.to_float ~default:0. in
      let* solver =
        match Option.bind (Json.member json "solver") Json.to_str with
        | None | Some "rk4" -> Ok (Rk4 (if h > 0. then Some h else None))
        | Some "rkf45" -> Ok Rkf45
        | Some "lsoda" -> Ok Lsoda
        | Some other -> Error (Printf.sprintf "unknown solver %S" other)
      in
      let* source =
        match
          ( Option.bind (Json.member json "source") Json.to_str,
            Option.bind (Json.member json "model") Json.to_str )
        with
        | Some src, None -> Ok src
        | None, Some name -> (
            match resolve name with
            | Some src -> Ok src
            | None -> Error (Printf.sprintf "unknown builtin model %S" name))
        | Some _, Some _ -> Error "give either \"source\" or \"model\", not both"
        | None, None -> Error "a model is required: \"source\" or \"model\""
      in
      let* chaos = chaos_of_json json in
      if deadline_s < 0. then Error "negative deadline_s"
      else if tend <= 0. then Error "nonpositive tend"
      else if chunk < 0 || domains < 0 then Error "negative chunk or domains"
      else if retries < 0 then Error "negative retries"
      else
        Ok
          {
            id;
            tenant;
            priority;
            deadline_s;
            source;
            solver;
            tend;
            chunk;
            domains;
            retries;
            chaos;
          }
  | _ -> Error "job record must be a JSON object"

(* The journal's wire form: every field explicit, in a fixed order, so
   encode -> decode is the identity on specs and journal bytes are
   deterministic for a given submission sequence. *)
let to_json spec =
  let solver_fields =
    match spec.solver with
    | Rk4 None -> [ ("solver", Json.Str "rk4") ]
    | Rk4 (Some h) -> [ ("solver", Json.Str "rk4"); ("h", Json.Num h) ]
    | Rkf45 -> [ ("solver", Json.Str "rkf45") ]
    | Lsoda -> [ ("solver", Json.Str "lsoda") ]
  in
  let chaos_fields =
    match spec.chaos with
    | None -> []
    | Some { kind; task; round; count; attempts } ->
        [
          ( "chaos",
            Json.Obj
              [
                ( "kind",
                  Json.Str
                    (match kind with
                    | `Nan -> "nan"
                    | `Inf -> "inf"
                    | `Fail_spawn -> "fail_spawn") );
                ("task", Json.Int task);
                ("round", Json.Int round);
                ("count", Json.Int count);
                ("attempts", Json.Int attempts);
              ] );
        ]
  in
  Json.Obj
    ([
       ("id", Json.Str spec.id);
       ("tenant", Json.Str spec.tenant);
       ("priority", Json.Int spec.priority);
       ("deadline_s", Json.Num spec.deadline_s);
       ("source", Json.Str spec.source);
     ]
    @ solver_fields
    @ [
        ("tend", Json.Num spec.tend);
        ("chunk", Json.Int spec.chunk);
        ("domains", Json.Int spec.domains);
        ("retries", Json.Int spec.retries);
      ]
    @ chaos_fields)

let fault_plan ?(attempt = 1) spec =
  match spec.chaos with
  | Some { kind; task; round; count; attempts }
    when attempts = 0 || attempt <= attempts ->
      let fault i =
        match kind with
        | `Nan -> Om_guard.Fault_plan.Nan_task { task; round = round + i }
        | `Inf -> Om_guard.Fault_plan.Inf_task { task; round = round + i }
        | `Fail_spawn -> Om_guard.Fault_plan.Fail_spawn { worker = task + i }
      in
      Some (Om_guard.Fault_plan.make (List.init count fault))
  | Some _ | None -> None
