(* Binary max-heap of (priority, deadline, seq, item): higher priority
   first; within a priority, earlier absolute deadline first (no
   deadline = infinity); FIFO (lower sequence number) as the final tie
   break.  The same mutex also carries the admission-control state:
   per-tenant queued counts (checked at submit) and per-tenant running
   counts (checked at pop, so a tenant at its running quota cannot
   starve other tenants' jobs behind it in the heap). *)

type 'a entry = {
  prio : int;
  deadline : float;  (* absolute epoch seconds; infinity = none *)
  seq : int;
  tenant : string;
  item : 'a;
}

type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable heap : 'a entry array;  (* heap.(0 .. size-1) is the heap *)
  mutable size : int;
  mutable seq : int;
  mutable is_closed : bool;
  cap : int;
  max_queued : int;  (* per tenant; 0 = unlimited *)
  max_running : int;  (* per tenant; 0 = unlimited *)
  queued : (string, int) Hashtbl.t;
  running : (string, int) Hashtbl.t;
}

let create ?(max_queued_per_tenant = 0) ?(max_running_per_tenant = 0)
    ~capacity () =
  if capacity < 1 then invalid_arg "Job_queue.create: capacity < 1";
  if max_queued_per_tenant < 0 || max_running_per_tenant < 0 then
    invalid_arg "Job_queue.create: negative tenant quota";
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    heap = [||];
    size = 0;
    seq = 0;
    is_closed = false;
    cap = capacity;
    max_queued = max_queued_per_tenant;
    max_running = max_running_per_tenant;
    queued = Hashtbl.create 8;
    running = Hashtbl.create 8;
  }

let count tbl tenant = Option.value ~default:0 (Hashtbl.find_opt tbl tenant)

let adjust tbl tenant d =
  let n = count tbl tenant + d in
  if n <= 0 then Hashtbl.remove tbl tenant else Hashtbl.replace tbl tenant n

let before a b =
  a.prio > b.prio
  || (a.prio = b.prio
      && (a.deadline < b.deadline
         || (a.deadline = b.deadline && a.seq < b.seq)))

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!best) then best := l;
  if r < t.size && before t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    swap t i !best;
    sift_down t !best
  end

let submit ?(tenant = "") ?(deadline = Float.infinity) ?(force = false) t
    ~priority item =
  Mutex.lock t.mutex;
  let result =
    if t.is_closed then `Closed
    else if (not force) && t.size >= t.cap then `Rejected_full
    else if
      (not force) && t.max_queued > 0 && count t.queued tenant >= t.max_queued
    then `Rejected_quota
    else begin
      if t.size = Array.length t.heap then begin
        let grown =
          Array.make
            (max 8 (2 * max 1 (Array.length t.heap)))
            { prio = 0; deadline = 0.; seq = 0; tenant; item }
        in
        Array.blit t.heap 0 grown 0 t.size;
        t.heap <- grown
      end;
      t.heap.(t.size) <-
        { prio = priority; deadline; seq = t.seq; tenant; item };
      t.seq <- t.seq + 1;
      t.size <- t.size + 1;
      sift_up t (t.size - 1);
      adjust t.queued tenant 1;
      Condition.signal t.nonempty;
      `Ok
    end
  in
  Mutex.unlock t.mutex;
  result

let eligible t e =
  t.max_running = 0 || count t.running e.tenant < t.max_running

(* Remove entry [i] keeping the heap shape: move the last entry into the
   hole and restore the invariant in whichever direction it broke. *)
let remove_at t i =
  t.size <- t.size - 1;
  if i < t.size then begin
    t.heap.(i) <- t.heap.(t.size);
    sift_down t i;
    sift_up t i
  end

(* The best entry whose tenant is under its running quota.  The root is
   the global best, so when it is eligible (always, without quotas) this
   is O(log n); otherwise a linear scan finds the best eligible entry —
   heap order only holds along root paths, so scanning is required and
   fine at queue scale. *)
let take_best_eligible t =
  if t.size = 0 then None
  else if eligible t t.heap.(0) then begin
    let e = t.heap.(0) in
    remove_at t 0;
    Some e
  end
  else begin
    let best = ref (-1) in
    for i = 1 to t.size - 1 do
      if eligible t t.heap.(i)
         && (!best < 0 || before t.heap.(i) t.heap.(!best))
      then best := i
    done;
    if !best < 0 then None
    else begin
      let e = t.heap.(!best) in
      remove_at t !best;
      Some e
    end
  end

let pop t =
  Mutex.lock t.mutex;
  let rec go () =
    match take_best_eligible t with
    | Some e ->
        adjust t.queued e.tenant (-1);
        adjust t.running e.tenant 1;
        Some e.item
    | None ->
        if t.size = 0 && t.is_closed then None
        else begin
          (* Either the queue is empty (wait for a submit or close) or
             every queued job's tenant is at its running quota (wait for
             a [finished], which broadcasts). *)
          Condition.wait t.nonempty t.mutex;
          go ()
        end
  in
  let result = go () in
  Mutex.unlock t.mutex;
  result

let finished t ~tenant =
  Mutex.lock t.mutex;
  adjust t.running tenant (-1);
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex

let close t =
  Mutex.lock t.mutex;
  t.is_closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex

let closed t =
  Mutex.lock t.mutex;
  let c = t.is_closed in
  Mutex.unlock t.mutex;
  c

let length t =
  Mutex.lock t.mutex;
  let n = t.size in
  Mutex.unlock t.mutex;
  n

let queued_for t ~tenant =
  Mutex.lock t.mutex;
  let n = count t.queued tenant in
  Mutex.unlock t.mutex;
  n

let running_for t ~tenant =
  Mutex.lock t.mutex;
  let n = count t.running tenant in
  Mutex.unlock t.mutex;
  n

let capacity t = t.cap
