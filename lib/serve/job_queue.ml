(* Binary max-heap of (priority, seq, item): higher priority first,
   lower sequence number (earlier submission) first within a priority. *)

type 'a entry = { prio : int; seq : int; item : 'a }

type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable heap : 'a entry array;  (* heap.(0 .. size-1) is the heap *)
  mutable size : int;
  mutable seq : int;
  mutable is_closed : bool;
  cap : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Job_queue.create: capacity < 1";
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    heap = [||];
    size = 0;
    seq = 0;
    is_closed = false;
    cap = capacity;
  }

let before a b = a.prio > b.prio || (a.prio = b.prio && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!best) then best := l;
  if r < t.size && before t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    swap t i !best;
    sift_down t !best
  end

let submit t ~priority item =
  Mutex.lock t.mutex;
  let result =
    if t.is_closed then `Closed
    else if t.size >= t.cap then `Rejected
    else begin
      if t.size = Array.length t.heap then begin
        let grown =
          Array.make
            (max 8 (min t.cap (2 * max 1 (Array.length t.heap))))
            { prio = 0; seq = 0; item }
        in
        Array.blit t.heap 0 grown 0 t.size;
        t.heap <- grown
      end;
      t.heap.(t.size) <- { prio = priority; seq = t.seq; item };
      t.seq <- t.seq + 1;
      t.size <- t.size + 1;
      sift_up t (t.size - 1);
      Condition.signal t.nonempty;
      `Ok
    end
  in
  Mutex.unlock t.mutex;
  result

let pop t =
  Mutex.lock t.mutex;
  while t.size = 0 && not t.is_closed do
    Condition.wait t.nonempty t.mutex
  done;
  let result =
    if t.size = 0 then None
    else begin
      let top = t.heap.(0) in
      t.size <- t.size - 1;
      if t.size > 0 then begin
        t.heap.(0) <- t.heap.(t.size);
        sift_down t 0
      end;
      Some top.item
    end
  in
  Mutex.unlock t.mutex;
  result

let close t =
  Mutex.lock t.mutex;
  t.is_closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex

let closed t =
  Mutex.lock t.mutex;
  let c = t.is_closed in
  Mutex.unlock t.mutex;
  c

let length t =
  Mutex.lock t.mutex;
  let n = t.size in
  Mutex.unlock t.mutex;
  n

let capacity t = t.cap
