(** The multi-tenant simulation service: a job queue in front of the
    runtime, a compiled-model cache, per-job cancellation/deadlines and
    streamed NDJSON results.

    A server owns a bounded priority {!Job_queue}, a {!Model_cache}
    shared by every job, and [executors] worker domains that pop jobs
    and run them through {!Om_codegen.Pipeline} +
    {!Objectmath.Runtime.execute}.
    Every externally visible event is one JSON record handed to the
    [emit] callback (one line of NDJSON in [omc serve]), or to the
    job's own [sink] when the submission carried one:

    - [{"type":"chunk","job":id,"seq":k,"rows":[[t,y0,...],...]}] —
      streamed trajectory rows, for jobs with [chunk > 0];
    - [{"type":"status","job":id,"tenant":t,"status":s,...}] — exactly
      one terminal record per accepted job;
    - [{"type":"summary",...}] — once, from the first {!drain}.

    Status values and their triggers:
    - ["ok"] — integration completed (possibly degraded; the
      [degradations] count says how many ladder rungs were taken);
    - ["solver_failure"] — the solver exhausted its retry/step budget
      ({!Om_guard.Om_error.Error}), e.g. under a chaos plan longer than
      the retry budget.  The server keeps serving subsequent jobs;
    - ["cancelled"] / ["deadline_exceeded"] — the job's
      {!Om_guard.Cancel} token fired, while queued or mid-run;
    - ["model_error"] — the front end rejected the source
      (lex/parse/flatten/typecheck);
    - ["rejected"] — the submission queue was full (overload shedding);
    - ["invalid"] — the NDJSON record was undecodable, or reused the id
      of a job still in flight (accepting it would orphan one job's
      cancel token).

    {b Concurrency model.}  Executors share exactly two things: the
    compiled-model cache (immutable artifacts, map operations under the
    cache's own mutex, compilation off-lock) and the job queue.  Each
    job executes an {!Om_codegen.Pipeline.clone_scratch} of the cached
    artifact, so any number of executors can run the {e same} hot model
    simultaneously — there is no per-model or per-entry execution lock.
    The remaining locks, in acquisition order (none is ever held while
    another is taken, except state_mutex inside an emit-free region):
    queue mutex (pop/submit), cache mutex (map ops), [state_mutex]
    (tokens/counters/summary), [emit_mutex] (default emit only; a
    per-job [sink] serialises itself).

    With one executor (the default), status records are emitted in
    completion order = priority-then-FIFO order — the ordering the CI
    smoke test asserts.  With several, records never interleave (emit
    and each sink are serialised) but completion order depends on job
    durations. *)

type config = {
  queue_capacity : int;  (** bound on queued jobs; default 64 *)
  executors : int;  (** worker domains popping jobs; default 1 *)
  cache_capacity : int;
      (** compiled-model cache residency; [0] disables caching.
          Default 32.  Ignored when {!create} is given a cache. *)
  timings : bool;
      (** include [queue_s]/[run_s]/[total_s] in status records
          (default [true]; [omc serve --no-timings] turns it off so
          cram output is deterministic) *)
  resolve : string -> string option;
      (** builtin-model resolution for job ["model"] fields (default:
          none resolve) *)
  pipeline : Om_codegen.Pipeline.config option;
      (** partitioning config for cache-miss compiles *)
}

val default_config : config

type stats = {
  submitted : int;  (** accepted into the queue *)
  completed : int;  (** terminal status records for accepted jobs *)
  ok : int;
  failed : int;  (** completed - ok *)
  rejected : int;  (** shed at submission *)
}

type t

val create : ?config:config -> ?cache:Model_cache.t -> emit:(Json.t -> unit) -> unit -> t
(** Start a server: spawns the executor domains immediately.  [emit]
    receives every output record not routed to a per-job sink; it is
    called under a lock, from executor domains, and must not call back
    into the server.  Pass [cache] to share one compiled-model cache
    across servers (the socket mode shares it across connections). *)

val submit :
  ?sink:(Json.t -> unit) ->
  t ->
  Job.spec ->
  [ `Ok of string | `Duplicate | `Rejected | `Closed ]
(** Enqueue a job.  An empty [spec.id] is replaced with a fresh
    ["job-N"]; the returned id is the one status records will carry.
    The job's deadline clock starts now — time spent queued counts.
    When [sink] is given, every record this job produces (chunks,
    terminal status, and the failure records below) goes to it instead
    of the server-wide [emit]; the sink is called from executor domains
    and must do its own serialisation (the socket mode wraps each
    connection's writer in a mutex).
    [`Duplicate] means a job with this id is already in flight — the
    spec is not queued and an ["invalid"] status record is emitted
    (accepting it would clobber the in-flight job's cancel token).
    [`Rejected] (queue full) also emits the job's ["rejected"] status
    record. *)

val cancel : ?reason:string -> t -> job:string -> unit
(** Request cancellation of a queued or running job by id.  Unknown or
    already-completed ids are ignored. *)

val handle_line :
  ?sink:(Json.t -> unit) -> t -> string -> [ `Queued of string | `Replied | `Quiet ]
(** Feed one NDJSON input line: blank lines are ignored; a
    [{"type":"cancel","job":id}] control record calls {!cancel};
    anything else is decoded as a {!Job.spec} and submitted with
    [sink].  Parse or decode failures emit an ["invalid"] status
    record; a full queue emits ["rejected"] — this function never
    raises.  The result tells a connection loop what the line turned
    into: [`Queued id] — a job was accepted, expect an asynchronous
    terminal status for [id] later; [`Replied] — the line was answered
    synchronously (invalid / duplicate / rejected records have already
    reached the sink); [`Quiet] — nothing was or will be emitted for
    this line (blank, a well-formed cancel, or the server is
    draining). *)

val stats : t -> stats
val cache : t -> Model_cache.t

val drain : t -> Json.t
(** Close the queue, run every queued job to completion, join the
    executor domains, then emit and return the summary record
    ([jobs]/[ok]/[failed]/[rejected] counts plus cache statistics).
    Idempotent: subsequent calls (from any thread) return the same
    summary record without emitting it again. *)
