(** The multi-tenant simulation service: a job queue in front of the
    runtime, a compiled-model cache, per-job cancellation/deadlines,
    durability via a write-ahead {!Journal}, per-tenant admission
    control, bounded retry/backoff, and streamed NDJSON results.

    A server owns a bounded priority {!Job_queue} (with per-tenant
    quotas), a {!Model_cache} shared by every job, an optional
    {!Result_cache} of finished trajectories, [executors] worker
    domains that pop jobs and run them through
    {!Om_codegen.Pipeline} + {!Objectmath.Runtime.execute}, and one
    retry-nursery domain holding failed-but-retryable jobs through
    their backoff.
    Every externally visible event is one JSON record handed to the
    [emit] callback (one line of NDJSON in [omc serve]), or to the
    job's own [sink] when the submission carried one:

    - [{"type":"chunk","job":id,"seq":k,"rows":[[t,y0,...],...]}] —
      streamed trajectory rows, for jobs with [chunk > 0];
    - [{"type":"retry","job":id,"tenant":t,"attempt":k,"delay_s":d,
      "error":e}] — a job-retryable failure entering backoff (not
      terminal: the job will run again);
    - [{"type":"status","job":id,"tenant":t,"status":s,...}] — exactly
      one terminal record per accepted job.  Jobs that ran more than
      once carry [attempts]:k;
    - [{"type":"summary",...}] — once, from the first {!drain}.

    Status values and their triggers:
    - ["ok"] — integration completed (possibly degraded; the
      [degradations] count says how many ladder rungs were taken).  A
      job answered from the result cache additionally carries
      ["result_cache":"hit"];
    - ["solver_failure"] — the solver exhausted its retry/step budget
      ({!Om_guard.Om_error.Error}) and the job either has no retry
      budget left or the fault is not
      {!Om_guard.Om_error.job_retryable}.  The server keeps serving
      subsequent jobs;
    - ["cancelled"] / ["deadline_exceeded"] — the job's
      {!Om_guard.Cancel} token fired, while queued or mid-run;
    - ["model_error"] — the front end rejected the source
      (lex/parse/flatten/typecheck);
    - ["rejected_full"] — the submission queue was at capacity (global
      overload shedding);
    - ["rejected_quota"] — the tenant was at its queued-job quota
      (per-tenant fairness; other tenants unaffected);
    - ["rejected_deadline"] — the job's deadline is below the model's
      estimated run time (EWMA of past runs), so running it could only
      produce a late ["deadline_exceeded"];
    - ["invalid"] — the NDJSON record was undecodable, or reused the id
      of a job still in flight (accepting it would orphan one job's
      cancel token).

    {b Durability.}  With a {!Journal}, every accepted job's spec is
    journaled {e before} it can run, and every transition
    (running/retrying/requeued/terminal) is appended as it happens.
    Executors wait for a job's accept record to be fsynced (group
    commit) before its first side effect, so after a crash
    {!Journal.replay} + {!recover} re-enqueues exactly the accepted
    jobs with no terminal record — once each — and re-running them is
    bitwise-identical for deterministic jobs.

    {b Concurrency model.}  Executors share the compiled-model cache
    (immutable artifacts, map operations under the cache's own mutex,
    compilation off-lock), the result cache (same discipline), the job
    queue, and the journal (single-line appends under its own mutex).
    Each job executes an {!Om_codegen.Pipeline.clone_scratch} of the
    cached artifact, so any number of executors can run the {e same}
    hot model simultaneously.  The remaining locks, in acquisition
    order (none is ever held while another is taken, except
    state_mutex inside an emit-free region): queue mutex (pop/submit),
    cache mutexes (map ops), journal mutex (appends), [state_mutex]
    (tokens/counters/EWMA/inflight), retry-nursery mutex, [emit_mutex]
    (default emit only; a per-job [sink] serialises itself).

    With one executor (the default), status records are emitted in
    completion order = priority, then earliest deadline, then FIFO —
    the ordering the CI smoke test asserts.  With several, records
    never interleave (emit and each sink are serialised) but completion
    order depends on job durations. *)

type config = {
  queue_capacity : int;  (** bound on queued jobs; default 64 *)
  executors : int;  (** worker domains popping jobs; default 1 *)
  cache_capacity : int;
      (** compiled-model cache residency; [0] disables caching.
          Default 32.  Ignored when {!create} is given a cache. *)
  timings : bool;
      (** include [queue_s]/[run_s]/[total_s] in status records
          (default [true]; [omc serve --no-timings] turns it off so
          cram output is deterministic) *)
  resolve : string -> string option;
      (** builtin-model resolution for job ["model"] fields (default:
          none resolve) *)
  pipeline : Om_codegen.Pipeline.config option;
      (** partitioning config for cache-miss compiles *)
  max_queued_per_tenant : int;
      (** per-tenant bound on queued jobs; [0] (default) = no quota.
          Over-quota submissions shed as ["rejected_quota"]. *)
  max_running_per_tenant : int;
      (** per-tenant bound on concurrently executing jobs; [0]
          (default) = no quota.  Enforced at pop: a saturated tenant's
          jobs wait while other tenants' jobs overtake them. *)
  default_retries : int;
      (** retry budget given to decoded jobs that do not set
          ["retries"] themselves; default 0 *)
  retry_backoff_s : float;
      (** base backoff before re-running a retryable failure; attempt
          [k] waits [retry_backoff_s * 2^(k-1)].  Default 0.05. *)
  deadline_margin : float;
      (** deadline shedding factor: shed a job at admission when
          [ewma_run_time * deadline_margin > deadline_s].  [0.]
          (default) disables shedding; [1.] sheds jobs whose deadline
          is below the model's smoothed run time. *)
  result_cache_capacity : int;
      (** finished-trajectory cache residency; [0] (default) disables
          result caching entirely (no new output fields) *)
}

val default_config : config

type stats = {
  submitted : int;  (** accepted into the queue (including recovered) *)
  completed : int;  (** terminal status records for accepted jobs *)
  ok : int;
  failed : int;  (** completed - ok *)
  rejected_full : int;  (** shed: queue at capacity *)
  rejected_quota : int;  (** shed: tenant at queued quota *)
  rejected_deadline : int;  (** shed: deadline below estimated run time *)
  retried : int;  (** retry transitions (attempts beyond each first) *)
  recovered : int;  (** jobs re-enqueued by {!recover} *)
}

type t

val create :
  ?config:config ->
  ?cache:Model_cache.t ->
  ?journal:Journal.t ->
  emit:(Json.t -> unit) ->
  unit ->
  t
(** Start a server: spawns the executor domains and the retry nursery
    immediately.  [emit] receives every output record not routed to a
    per-job sink; it is called under a lock, from executor domains, and
    must not call back into the server.  Pass [cache] to share one
    compiled-model cache across servers (the socket mode shares it
    across connections).  Pass [journal] to journal every accepted job
    and its transitions; the server owns the journal from here on and
    closes it in {!drain}. *)

val submit :
  ?sink:(Json.t -> unit) ->
  t ->
  Job.spec ->
  [ `Ok of string | `Duplicate | `Rejected of string | `Closed ]
(** Enqueue a job.  An empty [spec.id] is replaced with a fresh
    ["job-N"]; the returned id is the one status records will carry.
    The job's deadline clock starts now — time spent queued (and in
    retry backoff) counts.  When [sink] is given, every record this job
    produces goes to it instead of the server-wide [emit]; the sink is
    called from executor domains and must do its own serialisation.
    [`Duplicate] means a job with this id is already in flight — the
    spec is not queued and an ["invalid"] status record is emitted.
    [`Rejected status] carries the shed status (["rejected_full"],
    ["rejected_quota"] or ["rejected_deadline"]); the matching status
    record has already been emitted. *)

val recover : t -> Journal.replay -> int
(** Re-enqueue the pending jobs of a journal replay — the jobs a
    previous process accepted but never finished — returning how many
    were re-enqueued.  Each is journaled as a ["requeued"] transition
    (never a second accept), bypasses admission control (it was already
    admitted once), and restarts its deadline clock at recovery time.
    Call once, right after {!create}, before accepting new work. *)

val cancel : ?reason:string -> t -> job:string -> unit
(** Request cancellation of a queued, running, or backoff-pending job
    by id.  Unknown or already-completed ids are ignored. *)

val handle_line :
  ?sink:(Json.t -> unit) -> t -> string -> [ `Queued of string | `Replied | `Quiet ]
(** Feed one NDJSON input line: blank lines are ignored; a
    [{"type":"cancel","job":id}] control record calls {!cancel};
    anything else is decoded as a {!Job.spec} (with the server's
    [default_retries]) and submitted with [sink].  Parse or decode
    failures emit an ["invalid"] status record; shed submissions emit
    their ["rejected_*"] record — this function never raises.  The
    result tells a connection loop what the line turned into:
    [`Queued id] — a job was accepted, expect an asynchronous terminal
    status for [id] later; [`Replied] — the line was answered
    synchronously; [`Quiet] — nothing was or will be emitted for this
    line. *)

val stats : t -> stats
val cache : t -> Model_cache.t

val result_cache_stats : t -> int * int * int
(** [(hits, misses, entries)] of the result cache; zeros when result
    caching is disabled. *)

val drain : t -> Json.t
(** Wait for every accepted job (including jobs in retry backoff) to
    reach its terminal status, close the queue, join the executor and
    nursery domains, close the journal if any, then emit and return the
    summary record ([jobs]/[ok]/[failed]/[rejected] counts — plus
    [retried]/[recovered] when nonzero and result-cache statistics when
    enabled — and compiled-model cache statistics).  Idempotent:
    subsequent calls (from any thread) return the same summary record
    without emitting it again. *)
