(** The multi-tenant simulation service: a job queue in front of the
    runtime, a compiled-model cache, per-job cancellation/deadlines and
    streamed NDJSON results.

    A server owns a bounded priority {!Job_queue}, a {!Model_cache}
    shared by every job, and [executors] worker domains that pop jobs
    and run them through {!Om_codegen.Pipeline} +
    {!Objectmath.Runtime.execute}.
    Every externally visible event is one JSON record handed to the
    [emit] callback (one line of NDJSON in [omc serve]):

    - [{"type":"chunk","job":id,"seq":k,"rows":[[t,y0,...],...]}] —
      streamed trajectory rows, for jobs with [chunk > 0];
    - [{"type":"status","job":id,"tenant":t,"status":s,...}] — exactly
      one terminal record per job;
    - [{"type":"summary",...}] — once, from {!drain}.

    Status values and their triggers:
    - ["ok"] — integration completed (possibly degraded; the
      [degradations] count says how many ladder rungs were taken);
    - ["solver_failure"] — the solver exhausted its retry/step budget
      ({!Om_guard.Om_error.Error}), e.g. under a chaos plan longer than
      the retry budget.  The server keeps serving subsequent jobs;
    - ["cancelled"] / ["deadline_exceeded"] — the job's
      {!Om_guard.Cancel} token fired, while queued or mid-run;
    - ["model_error"] — the front end rejected the source
      (lex/parse/flatten/typecheck);
    - ["rejected"] — the submission queue was full (overload shedding);
    - ["invalid"] — the NDJSON record itself was undecodable.

    With one executor (the default), status records are emitted in
    completion order = priority-then-FIFO order — the ordering the CI
    smoke test asserts.  With several, records never interleave (emit is
    serialised) but completion order depends on job durations. *)

type config = {
  queue_capacity : int;  (** bound on queued jobs; default 64 *)
  executors : int;  (** worker domains popping jobs; default 1 *)
  cache_capacity : int;
      (** compiled-model cache residency; [0] disables caching.
          Default 32.  Ignored when {!create} is given a cache. *)
  timings : bool;
      (** include [queue_s]/[run_s]/[total_s] in status records
          (default [true]; [omc serve --no-timings] turns it off so
          cram output is deterministic) *)
  resolve : string -> string option;
      (** builtin-model resolution for job ["model"] fields (default:
          none resolve) *)
  pipeline : Om_codegen.Pipeline.config option;
      (** partitioning config for cache-miss compiles *)
}

val default_config : config

type stats = {
  submitted : int;  (** accepted into the queue *)
  completed : int;  (** terminal status records for accepted jobs *)
  ok : int;
  failed : int;  (** completed - ok *)
  rejected : int;  (** shed at submission *)
}

type t

val create : ?config:config -> ?cache:Model_cache.t -> emit:(Json.t -> unit) -> unit -> t
(** Start a server: spawns the executor domains immediately.  [emit]
    receives every output record; it is called under a lock, from
    executor domains, and must not call back into the server.  Pass
    [cache] to share one compiled-model cache across servers (the
    socket mode shares it across connections). *)

val submit : t -> Job.spec -> [ `Ok of string | `Rejected | `Closed ]
(** Enqueue a job.  An empty [spec.id] is replaced with a fresh
    ["job-N"]; the returned id is the one status records will carry.
    The job's deadline clock starts now — time spent queued counts.
    [`Rejected] (queue full) also emits the job's ["rejected"] status
    record. *)

val cancel : ?reason:string -> t -> job:string -> unit
(** Request cancellation of a queued or running job by id.  Unknown or
    already-completed ids are ignored. *)

val handle_line : t -> string -> unit
(** Feed one NDJSON input line: blank lines are ignored; a
    [{"type":"cancel","job":id}] control record calls {!cancel};
    anything else is decoded as a {!Job.spec} and submitted.  Parse or
    decode failures emit an ["invalid"] status record; a full queue
    emits ["rejected"] — this function never raises. *)

val stats : t -> stats
val cache : t -> Model_cache.t

val drain : t -> Json.t
(** Close the queue, run every queued job to completion, join the
    executor domains, then emit and return the summary record
    ([jobs]/[ok]/[failed]/[rejected] counts plus cache statistics). *)
