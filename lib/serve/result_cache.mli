(** LRU cache of finished job results, keyed on the inputs that
    determine the output bytes.

    {!key} folds the model's content hash ([Pipeline.source_key] of the
    source text), the solver with its fixed step, and the end time into
    one string — floats by their IEEE-754 bits, so two jobs share a key
    exactly when their integrations are bitwise-identical by
    determinism of the pipeline.  The server consults the cache only
    for jobs with no chaos and [domains = 0] whose run ended [ok]
    (chaos and degradation make reruns legitimately differ), and a hit
    replays the stored trajectory chunks verbatim.

    Capacity [0] disables the cache: {!lookup} always misses without
    counting, {!store} drops — the default, so cached results never
    change [omc serve] output unless asked for. *)

type 'a t

val create : int -> 'a t
(** @raise Invalid_argument on a negative capacity. *)

val key : source_key:string -> solver:Job.solver -> tend:float -> string

val lookup : 'a t -> string -> 'a option
(** Counts a hit or a miss (except at capacity 0) and refreshes the
    entry's recency on hit. *)

val store : 'a t -> string -> 'a -> unit
(** Insert, evicting the least recently used entry past capacity.  A
    racing duplicate insert keeps the first value, so repeated hits are
    stable. *)

val stats : 'a t -> int * int * int
(** [(hits, misses, live_entries)]. *)
