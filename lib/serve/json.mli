(** Minimal JSON values for the newline-delimited serve protocol.

    The serve layer speaks NDJSON (one JSON value per line) on stdin or
    a Unix-domain socket; the container ships no JSON library, so this
    is a small self-contained codec: the full value grammar (objects,
    arrays, strings with escapes, numbers, literals), compact one-line
    printing with deterministic field order (objects print in
    construction order), and total accessors returning [option].

    Numbers distinguish {!Int} from {!Num} so counters print as
    integers; floats print with the shortest representation that
    round-trips ([%g] when exact, [%.17g] otherwise), which keeps
    records byte-stable across runs of the same computation. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string
(** Raised by {!of_string} on malformed input, with a position-bearing
    message. *)

val of_string : string -> t
(** Parse one JSON value (surrounding whitespace allowed, nothing else).
    Integral numbers within [int] range parse as {!Int}, everything
    else as {!Num}.
    @raise Error on malformed input. *)

val to_string : t -> string
(** Compact single-line rendering (no newlines — safe for NDJSON). *)

(** {1 Accessors} — total, [None] on shape mismatch. *)

val member : t -> string -> t option
(** Field of an {!Obj} ([None] on missing field or non-object). *)

val to_str : t -> string option
val to_bool : t -> bool option

val to_float : t -> float option
(** {!Int} and {!Num} both convert. *)

val to_int : t -> int option
(** {!Int}, or a {!Num} that is exactly integral. *)

val to_list : t -> t list option
