(** Write-ahead job journal: the serve layer's crash-recovery log.

    One journal is one append-only NDJSON file.  Every accepted job is
    appended {e before} it is enqueued ([{"rec":"accept","seq":N,
    "job":{...}}], with the job in {!Job.to_json} wire form), and every
    state transition is appended as it happens ([{"rec":"state",
    "id":...,"state":"running"|"retrying"|"requeued"|"done"|"failed"|
    "cancelled", ...}]).  After a crash, {!replay} folds the file into
    the set of jobs that were accepted but never reached a terminal
    state — exactly the work the restarted server must re-run.

    Durability is leader-based group-commit: {!record_accept} and
    {!record_state} write their line immediately (one [write] under the
    journal mutex, so lines never interleave) and return; the first
    {!await_durable} caller to find its record unsynced becomes the
    fsync leader and issues one [fsync] covering the whole backlog,
    while callers arriving meanwhile wait and are covered by that same
    fsync.  An executor calls {!await_durable} on a job's accept
    sequence before running it, so a job's side effects never precede
    its durable accept record — the exactly-once replay argument needs
    only that ordering, not a synchronous fsync per append (which would
    dominate small-job service times).  Terminal and transition records
    are {e not} awaited: they ride the page cache until the next
    demanded fsync or {!close} (a killed process loses nothing — the
    kernel still holds the writes; a machine crash at worst re-runs a
    job whose recovery is bitwise identical, which the recovery tests
    assert).  Undemanded records cost no fsync at all, and no dedicated
    sync domain exists to tax the executors' stop-the-world
    rendezvous — which keeps the journal's overhead on a warm serve
    benchmark within a few percent even on one core.

    Replay is tolerant of exactly one kind of damage — a byte-truncated
    {e final} line (the torn write of the crash itself), which is
    ignored and reported via [torn_tail].  A malformed line anywhere
    else means the file is not a journal (or was corrupted at rest) and
    replay returns [Error] rather than silently dropping records. *)

type t

val open_append : string -> t
(** Open (creating if needed) [path] for appending.  A torn final line
    left by a crash mid-append is truncated
    away — its single-write record never completed, so it was never
    acknowledged durable — leaving subsequent records on fresh lines.
    @raise Sys_error when the path cannot be opened. *)

val record_accept : t -> Job.spec -> int
(** Append the job's accept record and return its journal sequence
    number (monotonic from 1) for {!await_durable}. *)

val record_state :
  t ->
  id:string ->
  ?attempt:int ->
  ?status:string ->
  ?delay_s:float ->
  string ->
  unit
(** [record_state t ~id state] appends a state-transition record.
    [attempt] tags which job attempt is meant (retry accounting);
    [status] carries the server's fine-grained terminal status (e.g.
    ["solver_failure"] inside a ["failed"] record); [delay_s] records
    the backoff chosen for a ["retrying"] transition. *)

val await_durable : t -> int -> unit
(** Block until every record up to and including sequence number [seq]
    has been [fsync]ed. *)

val close : t -> unit
(** Flush (final fsync) and close the file.  Idempotent; records after
    close are discarded. *)

(** The fold of a journal file: what a restarted server needs. *)
type replay = {
  pending : Job.spec list;
      (** accepted but not terminal, in accept order — the jobs to
          re-enqueue (exactly once each: replay deduplicates on id,
          keeping the first accept) *)
  accepted : int;  (** accept records seen (distinct ids) *)
  completed : int;  (** ids whose last state is [done] *)
  failed : int;  (** ids whose last state is [failed] *)
  cancelled : int;  (** ids whose last state is [cancelled] *)
  torn_tail : bool;
      (** the file ended mid-record (no trailing newline); the fragment
          was ignored *)
}

val replay : string -> (replay, string) result
(** Fold [path].  A missing file is an empty journal (fresh start — the
    common case for a first boot with [--journal]).  [Error] on a
    malformed record anywhere but a torn final line, or on a [state]
    record whose id was never accepted with a terminal/running state
    (which would indicate interleaved writers or corruption). *)
