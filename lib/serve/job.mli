(** Job specifications for the simulation service.

    One job is one integration request: a model source (inline text, or
    a builtin name resolved by the caller), a solver, an end time, and
    the service-level envelope — tenant id, priority, wall-clock
    deadline, optional trajectory streaming and optional chaos
    injection.  {!of_json} decodes the wire form used by [omc serve]'s
    NDJSON protocol. *)

type solver = Rk4 of float option  (** fixed step; [None] = [tend/400] *)
            | Rkf45
            | Lsoda

(** Seeded fault injection riding on a job (the PR-5
    {!Om_guard.Fault_plan} taxonomy): poison [task]'s output with
    NaN/+inf in rounds [round .. round+count-1].  With [count] larger
    than the retry budget the job must fail as [solver_failure]; with
    [count = 1] the solvers recover bitwise — both are exercised by the
    serve tests. *)
type chaos = { kind : [ `Nan | `Inf ]; task : int; round : int; count : int }

type spec = {
  id : string;
  tenant : string;
  priority : int;  (** higher pops first; FIFO within a priority *)
  deadline_s : float;
      (** wall-clock seconds from submission; [0.] = none.  Enforced
          while queued (an expired job is failed without running) and
          mid-run (the runtime polls the job's {!Om_guard.Cancel} token
          every RHS round). *)
  source : string;  (** ObjectMath model source text *)
  solver : solver;
  tend : float;
  chunk : int;
      (** trajectory rows per streamed [chunk] record; [0] = stream no
          trajectory, emit only the final status *)
  domains : int;
      (** [> 0]: run RHS rounds on that many real OCaml domains (with
          the full degradation ladder); [0]: sequential in-process
          evaluation — chaos jobs run on the simulated executor instead,
          where task poisons apply *)
  chaos : chaos option;
}

val default : spec
(** [id ""], tenant ["default"], priority 0, no deadline, empty source,
    [Rk4 None] to [tend = 1.0], no streaming, no domains, no chaos. *)

val of_json :
  ?default_id:string ->
  resolve:(string -> string option) ->
  Json.t ->
  (spec, string) result
(** Decode a job record.  Recognised fields (all optional except the
    model): ["id"] (default [default_id]), ["tenant"], ["priority"],
    ["deadline_s"], ["source"] {e or} ["model"] (a builtin name passed
    through [resolve]), ["solver"] (["rk4"|"rkf45"|"lsoda"]), ["h"]
    (fixed step for rk4), ["tend"], ["chunk"], ["domains"], and
    ["chaos"] as [{"kind":"nan"|"inf","task":i,"round":r,"count":n}].
    Returns [Error msg] on unknown solvers, unresolvable model names,
    missing sources or malformed chaos specs. *)

val fault_plan : spec -> Om_guard.Fault_plan.t option
(** The {!Om_guard.Fault_plan} encoding of the job's chaos spec. *)
