(** Job specifications for the simulation service.

    One job is one integration request: a model source (inline text, or
    a builtin name resolved by the caller), a solver, an end time, and
    the service-level envelope — tenant id, priority, wall-clock
    deadline, job-level retry budget, optional trajectory streaming and
    optional chaos injection.  {!of_json} decodes the wire form used by
    [omc serve]'s NDJSON protocol; {!to_json} is its exact inverse and
    is what the {!Journal} persists. *)

type solver = Rk4 of float option  (** fixed step; [None] = [tend/400] *)
            | Rkf45
            | Lsoda

(** Seeded fault injection riding on a job (the PR-5
    {!Om_guard.Fault_plan} taxonomy).  [`Nan]/[`Inf] poison [task]'s
    output in rounds [round .. round+count-1]; [`Fail_spawn] fails the
    spawns of workers [task .. task+count-1] (meaningful with
    [domains > 0], where the runtime degrades down the worker ladder
    instead of failing the job).  [attempts] bounds which job attempts
    the plan fires on: [0] means every attempt; [k > 0] arms the plan
    on attempts [1..k] only, so a job whose chaos outlives the solver
    retry budget fails its first [k] attempts and then — given a
    job-level retry budget — converges to [ok].  Both regimes are
    exercised by the serve tests. *)
type chaos = {
  kind : [ `Nan | `Inf | `Fail_spawn ];
  task : int;
  round : int;
  count : int;
  attempts : int;
}

type spec = {
  id : string;
  tenant : string;
  priority : int;  (** higher pops first; FIFO within a priority *)
  deadline_s : float;
      (** wall-clock seconds from submission; [0.] = none.  Enforced at
          admission (a deadline that cannot plausibly be met is shed as
          [rejected_deadline]), while queued (an expired job is failed
          without running) and mid-run (the runtime polls the job's
          {!Om_guard.Cancel} token every RHS round).  Also orders the
          queue: within a priority, earlier deadlines pop first. *)
  source : string;  (** ObjectMath model source text *)
  solver : solver;
  tend : float;
  chunk : int;
      (** trajectory rows per streamed [chunk] record; [0] = stream no
          trajectory, emit only the final status *)
  domains : int;
      (** [> 0]: run RHS rounds on that many real OCaml domains (with
          the full degradation ladder); [0]: sequential in-process
          evaluation — chaos jobs run on the simulated executor instead,
          where task poisons apply *)
  retries : int;
      (** job-level retry budget: how many times a
          {!Om_guard.Om_error.job_retryable} failure may be re-enqueued
          (with exponential backoff) before the job goes terminal.
          [0] = fail on first error. *)
  chaos : chaos option;
}

val default : spec
(** [id ""], tenant ["default"], priority 0, no deadline, empty source,
    [Rk4 None] to [tend = 1.0], no streaming, no domains, no retries,
    no chaos. *)

val of_json :
  ?default_id:string ->
  ?default_retries:int ->
  resolve:(string -> string option) ->
  Json.t ->
  (spec, string) result
(** Decode a job record.  Recognised fields (all optional except the
    model): ["id"] (default [default_id]), ["tenant"], ["priority"],
    ["deadline_s"], ["source"] {e or} ["model"] (a builtin name passed
    through [resolve]), ["solver"] (["rk4"|"rkf45"|"lsoda"]), ["h"]
    (fixed step for rk4), ["tend"], ["chunk"], ["domains"], ["retries"]
    (default [default_retries], the server-wide budget), and ["chaos"]
    as [{"kind":"nan"|"inf"|"fail_spawn","task":i,"round":r,"count":n,
    "attempts":a}].  Returns [Error msg] on unknown solvers,
    unresolvable model names, missing sources or malformed specs. *)

val to_json : spec -> Json.t
(** Exact inverse of {!of_json} (every field explicit, fixed order):
    [of_json ~resolve (to_json s) = Ok s] for any decodable [s].  Used
    by the {!Journal} so replay reconstructs submissions bit-for-bit. *)

val fault_plan : ?attempt:int -> spec -> Om_guard.Fault_plan.t option
(** The {!Om_guard.Fault_plan} encoding of the job's chaos spec, armed
    for the given job [attempt] (default 1): [None] when the chaos
    record's [attempts] bound says this attempt runs clean. *)
