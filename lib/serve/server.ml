type config = {
  queue_capacity : int;
  executors : int;
  cache_capacity : int;
  timings : bool;
  resolve : string -> string option;
  pipeline : Om_codegen.Pipeline.config option;
}

let default_config =
  {
    queue_capacity = 64;
    executors = 1;
    cache_capacity = 32;
    timings = true;
    resolve = (fun _ -> None);
    pipeline = None;
  }

type stats = {
  submitted : int;
  completed : int;
  ok : int;
  failed : int;
  rejected : int;
}

type item = {
  spec : Job.spec;
  token : Om_guard.Cancel.t;
  submitted_at : float;
  sink : (Json.t -> unit) option;
}

type t = {
  config : config;
  queue : item Job_queue.t;
  model_cache : Model_cache.t;
  emit_fn : Json.t -> unit;
  emit_mutex : Mutex.t;
  state_mutex : Mutex.t;
  drain_mutex : Mutex.t;
  tokens : (string, Om_guard.Cancel.t) Hashtbl.t;
  mutable counters : stats;
  mutable next_id : int;
  mutable workers : unit Domain.t list;
  mutable summary : Json.t option;
}

let emit t record =
  Mutex.lock t.emit_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.emit_mutex) (fun () ->
      t.emit_fn record)

(* A job's records go to its own sink when it has one (socket mode: the
   submitting connection's writer, which carries its own mutex), to the
   server-wide emit otherwise. *)
let emit_item t item record =
  match item.sink with Some sink -> sink record | None -> emit t record

let with_state t f =
  Mutex.lock t.state_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.state_mutex) f

(* ---- job execution ---- *)

let runtime_solver spec =
  match spec.Job.solver with
  | Job.Rk4 (Some h) -> Objectmath.Runtime.Rk4 h
  | Job.Rk4 None -> Objectmath.Runtime.Rk4 (spec.Job.tend /. 400.)
  | Job.Rkf45 -> Objectmath.Runtime.Rkf45
  | Job.Lsoda -> Objectmath.Runtime.Lsoda

let execution_mode spec =
  (* Real domains when asked for; otherwise sequential — except that
     chaos task-poisons only land on the simulated executor, so chaos
     jobs without domains run there. *)
  if spec.Job.domains > 0 then Objectmath.Runtime.Real_domains spec.Job.domains
  else if spec.Job.chaos <> None then Objectmath.Runtime.Simulated
  else Objectmath.Runtime.Real_domains 0

let num f = Json.Num f

(* Build and emit each chunk record as soon as its rows are assembled:
   at no point does a second record-form copy of the whole trajectory
   exist, so a 10^6-row trajectory costs one chunk of rows at a time on
   top of the trajectory itself. *)
let emit_chunks t item (trajectory : Om_ode.Odesys.trajectory) =
  let spec = item.spec in
  if spec.Job.chunk > 0 then begin
    let n = Array.length trajectory.ts in
    let row k =
      Json.Arr
        (num trajectory.ts.(k)
        :: Array.to_list (Array.map num trajectory.states.(k)))
    in
    let rec go start seq =
      if start < n then begin
        let len = min spec.Job.chunk (n - start) in
        let rows = List.init len (fun i -> row (start + i)) in
        emit_item t item
          (Json.Obj
             [
               ("type", Json.Str "chunk");
               ("job", Json.Str spec.Job.id);
               ("seq", Json.Int seq);
               ("rows", Json.Arr rows);
             ]);
        go (start + len) (seq + 1)
      end
    in
    go 0 0
  end

let timing_fields t ~submitted_at ~started_at ~finished_at =
  if not t.config.timings then []
  else
    [
      ("queue_s", num (started_at -. submitted_at));
      ("run_s", num (finished_at -. started_at));
      ("total_s", num (finished_at -. submitted_at));
    ]

let status_record t item ~cache_state ~started_at fields =
  let finished_at = Unix.gettimeofday () in
  Json.Obj
    (("type", Json.Str "status")
    :: ("job", Json.Str item.spec.Job.id)
    :: ("tenant", Json.Str item.spec.Job.tenant)
    :: fields
    @ [ ("cache", Json.Str cache_state) ]
    @ timing_fields t ~submitted_at:item.submitted_at ~started_at
        ~finished_at)

let classify = function
  | Om_guard.Om_error.Error (Om_guard.Om_error.Cancelled _ as e) ->
      Some ("cancelled", Om_guard.Om_error.to_string e)
  | Om_guard.Om_error.Error (Om_guard.Om_error.Deadline_exceeded _ as e) ->
      Some ("deadline_exceeded", Om_guard.Om_error.to_string e)
  | Om_guard.Om_error.Error e ->
      Some ("solver_failure", Om_guard.Om_error.to_string e)
  | Om_lang.Flatten.Error msg -> Some ("model_error", msg)
  | Om_lang.Parser.Error (msg, pos) ->
      Some
        ( "model_error",
          Printf.sprintf "syntax error at %d:%d: %s" pos.Om_lang.Ast.line
            pos.Om_lang.Ast.col msg )
  | Om_lang.Lexer.Error (msg, pos) ->
      Some
        ( "model_error",
          Printf.sprintf "lexical error at %d:%d: %s" pos.Om_lang.Ast.line
            pos.Om_lang.Ast.col msg )
  | Invalid_argument msg -> Some ("model_error", msg)
  | _ -> None

let record_completion t ~succeeded =
  with_state t (fun () ->
      t.counters <-
        {
          t.counters with
          completed = t.counters.completed + 1;
          ok = (t.counters.ok + if succeeded then 1 else 0);
          failed = (t.counters.failed + if succeeded then 0 else 1);
        })

let run_job t item =
  let spec = item.spec in
  let started_at = Unix.gettimeofday () in
  let fail ~cache_state status message =
    record_completion t ~succeeded:false;
    emit_item t item
      (status_record t item ~cache_state ~started_at
         [ ("status", Json.Str status); ("error", Json.Str message) ])
  in
  match
    (* Queued-phase cancellation/deadline: don't even compile. *)
    Om_guard.Cancel.check item.token;
    Model_cache.lookup t.model_cache spec.Job.source
  with
  | exception e -> (
      match classify e with
      | Some (status, message) -> fail ~cache_state:"none" status message
      | None ->
          fail ~cache_state:"none" "internal_error" (Printexc.to_string e))
  | looked_up -> (
      let cache_state, entry =
        match looked_up with
        | `Hit entry -> ("hit", entry)
        | `Miss entry -> ("miss", entry)
      in
      let runtime_config =
        {
          Objectmath.Runtime.default_config with
          execution = execution_mode spec;
          faults = Job.fault_plan spec;
          cancel = Some item.token;
        }
      in
      (* The cached artifact is shared read-only; this job executes its
         own clone of the mutable scratch (value environment, output
         slots, register files), so any number of executors can run the
         same hot model concurrently — no per-entry lock. *)
      let compiled = Om_codegen.Pipeline.clone_scratch entry.Model_cache.compiled in
      match
        Objectmath.Runtime.execute ~config:runtime_config
          ~solver:(runtime_solver spec) ~tend:spec.Job.tend compiled
      with
      | exception e -> (
          match classify e with
          | Some (status, message) -> fail ~cache_state status message
          | None -> fail ~cache_state "internal_error" (Printexc.to_string e))
      | report ->
          emit_chunks t item report.trajectory;
          let final = Om_ode.Odesys.final_state report.trajectory in
          record_completion t ~succeeded:true;
          emit_item t item
            (status_record t item ~cache_state ~started_at
               [
                 ("status", Json.Str "ok");
                 ("steps", Json.Int report.solver_steps);
                 ("rhs_calls", Json.Int report.rhs_calls);
                 ("retries", Json.Int report.retries);
                 ("faults", Json.Int report.faults_injected);
                 ("degradations", Json.Int (List.length report.degradations));
                 ("final", Json.Arr (Array.to_list (Array.map num final)));
               ]))

let forget_token t id =
  with_state t (fun () -> Hashtbl.remove t.tokens id)

let executor_loop t () =
  let rec go () =
    match Job_queue.pop t.queue with
    | None -> ()
    | Some item ->
        (* run_job reports every failure as a status record; nothing may
           kill the executor, so subsequent jobs keep being served. *)
        (try run_job t item
         with e ->
           record_completion t ~succeeded:false;
           emit_item t item
             (Json.Obj
                [
                  ("type", Json.Str "status");
                  ("job", Json.Str item.spec.Job.id);
                  ("tenant", Json.Str item.spec.Job.tenant);
                  ("status", Json.Str "internal_error");
                  ("error", Json.Str (Printexc.to_string e));
                ]));
        forget_token t item.spec.Job.id;
        go ()
  in
  go ()

(* ---- public API ---- *)

let create ?(config = default_config) ?cache ~emit () =
  let model_cache =
    match cache with
    | Some c -> c
    | None ->
        Model_cache.create ?config:config.pipeline
          ~capacity:config.cache_capacity ()
  in
  let t =
    {
      config;
      queue = Job_queue.create ~capacity:config.queue_capacity;
      model_cache;
      emit_fn = emit;
      emit_mutex = Mutex.create ();
      state_mutex = Mutex.create ();
      drain_mutex = Mutex.create ();
      tokens = Hashtbl.create 64;
      counters = { submitted = 0; completed = 0; ok = 0; failed = 0; rejected = 0 };
      next_id = 0;
      workers = [];
      summary = None;
    }
  in
  t.workers <-
    List.init (max 1 config.executors) (fun _ -> Domain.spawn (executor_loop t));
  t

let submit ?sink t spec =
  let spec =
    if spec.Job.id <> "" then spec
    else
      with_state t (fun () ->
          t.next_id <- t.next_id + 1;
          { spec with Job.id = Printf.sprintf "job-%d" t.next_id })
  in
  let token =
    Om_guard.Cancel.create ~deadline_s:spec.Job.deadline_s ~job:spec.Job.id ()
  in
  let emit_to = match sink with Some s -> s | None -> emit t in
  (* The tokens table is the set of in-flight ids; claiming is atomic
     with the duplicate check so two racing submissions of one id can
     never both enter the queue (the loser's cancel would otherwise be
     clobbered and the job made unreachable). *)
  let claimed =
    with_state t (fun () ->
        if Hashtbl.mem t.tokens spec.Job.id then false
        else begin
          Hashtbl.add t.tokens spec.Job.id token;
          true
        end)
  in
  if not claimed then begin
    emit_to
      (Json.Obj
         [
           ("type", Json.Str "status");
           ("job", Json.Str spec.Job.id);
           ("tenant", Json.Str spec.Job.tenant);
           ("status", Json.Str "invalid");
           ("error", Json.Str "duplicate id: a job with this id is in flight");
         ]);
    `Duplicate
  end
  else begin
    let item = { spec; token; submitted_at = Unix.gettimeofday (); sink } in
    match Job_queue.submit t.queue ~priority:spec.Job.priority item with
    | `Ok ->
        with_state t (fun () ->
            t.counters <- { t.counters with submitted = t.counters.submitted + 1 });
        `Ok spec.Job.id
    | `Rejected ->
        forget_token t spec.Job.id;
        with_state t (fun () ->
            t.counters <- { t.counters with rejected = t.counters.rejected + 1 });
        emit_to
          (Json.Obj
             [
               ("type", Json.Str "status");
               ("job", Json.Str spec.Job.id);
               ("tenant", Json.Str spec.Job.tenant);
               ("status", Json.Str "rejected");
               ("error", Json.Str "submission queue full");
             ]);
        `Rejected
    | `Closed ->
        forget_token t spec.Job.id;
        `Closed
  end

let cancel ?reason t ~job =
  match with_state t (fun () -> Hashtbl.find_opt t.tokens job) with
  | Some token -> Om_guard.Cancel.cancel ?reason token
  | None -> ()

let invalid ?sink t ~id message =
  let record =
    Json.Obj
      [
        ("type", Json.Str "status");
        ("job", Json.Str id);
        ("status", Json.Str "invalid");
        ("error", Json.Str message);
      ]
  in
  match sink with Some s -> s record | None -> emit t record

let handle_line ?sink t line =
  let line = String.trim line in
  if line = "" then `Quiet
  else
    match Json.of_string line with
    | exception Json.Error msg ->
        invalid ?sink t ~id:"" ("bad JSON: " ^ msg);
        `Replied
    | json -> (
        match Option.bind (Json.member json "type") Json.to_str with
        | Some "cancel" -> (
            match Option.bind (Json.member json "job") Json.to_str with
            | Some job ->
                let reason =
                  Option.bind (Json.member json "reason") Json.to_str
                in
                cancel ?reason t ~job;
                `Quiet
            | None ->
                invalid ?sink t ~id:"" "cancel record without \"job\"";
                `Replied)
        | Some other when other <> "job" ->
            invalid ?sink t ~id:"" (Printf.sprintf "unknown record type %S" other);
            `Replied
        | _ -> (
            match Job.of_json ~resolve:t.config.resolve json with
            | Error msg ->
                let id =
                  Option.value ~default:""
                    (Option.bind (Json.member json "id") Json.to_str)
                in
                invalid ?sink t ~id msg;
                `Replied
            | Ok spec -> (
                match submit ?sink t spec with
                | `Ok id -> `Queued id
                | `Duplicate | `Rejected -> `Replied
                | `Closed -> `Quiet)))

let stats t = with_state t (fun () -> t.counters)
let cache t = t.model_cache

let drain t =
  (* The whole drain runs under one mutex: the first caller closes the
     queue, joins the executors and emits the summary; every later or
     concurrent caller blocks until that finishes and gets the cached
     record without re-emitting — drain is idempotent. *)
  Mutex.lock t.drain_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.drain_mutex) (fun () ->
      match t.summary with
      | Some s -> s
      | None ->
          Job_queue.close t.queue;
          let workers =
            with_state t (fun () ->
                let w = t.workers in
                t.workers <- [];
                w)
          in
          List.iter Domain.join workers;
          let counters = stats t in
          let cs = Model_cache.stats t.model_cache in
          let summary =
            Json.Obj
              [
                ("type", Json.Str "summary");
                ("jobs", Json.Int counters.submitted);
                ("ok", Json.Int counters.ok);
                ("failed", Json.Int counters.failed);
                ("rejected", Json.Int counters.rejected);
                ( "cache",
                  Json.Obj
                    [
                      ("hits", Json.Int cs.Model_cache.hits);
                      ("misses", Json.Int cs.Model_cache.misses);
                      ("compiles", Json.Int cs.Model_cache.compiles);
                      ("evictions", Json.Int cs.Model_cache.evictions);
                      ("entries", Json.Int cs.Model_cache.entries);
                    ] );
              ]
          in
          t.summary <- Some summary;
          emit t summary;
          summary)
