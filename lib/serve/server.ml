type config = {
  queue_capacity : int;
  executors : int;
  cache_capacity : int;
  timings : bool;
  resolve : string -> string option;
  pipeline : Om_codegen.Pipeline.config option;
  max_queued_per_tenant : int;
  max_running_per_tenant : int;
  default_retries : int;
  retry_backoff_s : float;
  deadline_margin : float;
  result_cache_capacity : int;
}

let default_config =
  {
    queue_capacity = 64;
    executors = 1;
    cache_capacity = 32;
    timings = true;
    resolve = (fun _ -> None);
    pipeline = None;
    max_queued_per_tenant = 0;
    max_running_per_tenant = 0;
    default_retries = 0;
    retry_backoff_s = 0.05;
    deadline_margin = 0.;
    result_cache_capacity = 0;
  }

type stats = {
  submitted : int;
  completed : int;
  ok : int;
  failed : int;
  rejected_full : int;
  rejected_quota : int;
  rejected_deadline : int;
  retried : int;
  recovered : int;
}

let zero_stats =
  {
    submitted = 0;
    completed = 0;
    ok = 0;
    failed = 0;
    rejected_full = 0;
    rejected_quota = 0;
    rejected_deadline = 0;
    retried = 0;
    recovered = 0;
  }

type item = {
  spec : Job.spec;
  token : Om_guard.Cancel.t;
  submitted_at : float;
  sink : (Json.t -> unit) option;
  attempt : int;  (* 1 for the first run of a job *)
  seq : int;  (* journal sequence of the accept record; 0 = durable *)
}

type retry_entry = { due : float; entry : item }

type t = {
  config : config;
  queue : item Job_queue.t;
  model_cache : Model_cache.t;
  results : Objectmath.Runtime.report Result_cache.t;
  journal : Journal.t option;
  emit_fn : Json.t -> unit;
  emit_mutex : Mutex.t;
  state_mutex : Mutex.t;
  idle : Condition.t;  (* inflight reached zero (state_mutex) *)
  drain_mutex : Mutex.t;
  tokens : (string, Om_guard.Cancel.t) Hashtbl.t;
  ewma : (string, float) Hashtbl.t;  (* model key -> smoothed run_s *)
  mutable counters : stats;
  mutable inflight : int;  (* accepted, no terminal status yet *)
  mutable next_id : int;
  mutable workers : unit Domain.t list;
  mutable summary : Json.t option;
  (* retry nursery: jobs in backoff, re-enqueued when due *)
  retry_mutex : Mutex.t;
  retry_wake : Condition.t;
  mutable retry_pending : retry_entry list;
  mutable retry_stop : bool;
  mutable retry_domain : unit Domain.t option;
}

let emit t record =
  Mutex.lock t.emit_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.emit_mutex) (fun () ->
      t.emit_fn record)

(* A job's records go to its own sink when it has one (socket mode: the
   submitting connection's writer, which carries its own mutex), to the
   server-wide emit otherwise. *)
let emit_item t item record =
  match item.sink with Some sink -> sink record | None -> emit t record

let with_state t f =
  Mutex.lock t.state_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.state_mutex) f

(* ---- journal hooks (no-ops without a journal) ---- *)

let journal_state t ~id ?attempt ?status ?delay_s state =
  match t.journal with
  | None -> ()
  | Some j -> Journal.record_state j ~id ?attempt ?status ?delay_s state

(* The journal's terminal vocabulary is coarser than the status records:
   done / failed / cancelled, with the fine-grained status carried as an
   attribute.  Replay only needs terminal-or-not; the attribute keeps
   the file auditable. *)
let journal_terminal t item status =
  let state =
    match status with
    | "ok" -> "done"
    | "cancelled" -> "cancelled"
    | _ -> "failed"
  in
  journal_state t ~id:item.spec.Job.id ~attempt:item.attempt ~status state

(* ---- job execution ---- *)

let runtime_solver spec =
  match spec.Job.solver with
  | Job.Rk4 (Some h) -> Objectmath.Runtime.Rk4 h
  | Job.Rk4 None -> Objectmath.Runtime.Rk4 (spec.Job.tend /. 400.)
  | Job.Rkf45 -> Objectmath.Runtime.Rkf45
  | Job.Lsoda -> Objectmath.Runtime.Lsoda

let execution_mode spec =
  (* Real domains when asked for; otherwise sequential — except that
     chaos task-poisons only land on the simulated executor, so chaos
     jobs without domains run there. *)
  if spec.Job.domains > 0 then Objectmath.Runtime.Real_domains spec.Job.domains
  else if spec.Job.chaos <> None then Objectmath.Runtime.Simulated
  else Objectmath.Runtime.Real_domains 0

let num f = Json.Num f

(* Build and emit each chunk record as soon as its rows are assembled:
   at no point does a second record-form copy of the whole trajectory
   exist, so a 10^6-row trajectory costs one chunk of rows at a time on
   top of the trajectory itself. *)
let emit_chunks t item (trajectory : Om_ode.Odesys.trajectory) =
  let spec = item.spec in
  if spec.Job.chunk > 0 then begin
    let n = Array.length trajectory.ts in
    let row k =
      Json.Arr
        (num trajectory.ts.(k)
        :: Array.to_list (Array.map num trajectory.states.(k)))
    in
    let rec go start seq =
      if start < n then begin
        let len = min spec.Job.chunk (n - start) in
        let rows = List.init len (fun i -> row (start + i)) in
        emit_item t item
          (Json.Obj
             [
               ("type", Json.Str "chunk");
               ("job", Json.Str spec.Job.id);
               ("seq", Json.Int seq);
               ("rows", Json.Arr rows);
             ]);
        go (start + len) (seq + 1)
      end
    in
    go 0 0
  end

let timing_fields t ~submitted_at ~started_at ~finished_at =
  if not t.config.timings then []
  else
    [
      ("queue_s", num (started_at -. submitted_at));
      ("run_s", num (finished_at -. started_at));
      ("total_s", num (finished_at -. submitted_at));
    ]

let status_record t item ~cache_state ~started_at fields =
  let finished_at = Unix.gettimeofday () in
  Json.Obj
    (("type", Json.Str "status")
    :: ("job", Json.Str item.spec.Job.id)
    :: ("tenant", Json.Str item.spec.Job.tenant)
    :: fields
    @ (if item.attempt > 1 then [ ("attempts", Json.Int item.attempt) ] else [])
    @ [ ("cache", Json.Str cache_state) ]
    @ timing_fields t ~submitted_at:item.submitted_at ~started_at
        ~finished_at)

let classify = function
  | Om_guard.Om_error.Error (Om_guard.Om_error.Cancelled _ as e) ->
      Some ("cancelled", Om_guard.Om_error.to_string e)
  | Om_guard.Om_error.Error (Om_guard.Om_error.Deadline_exceeded _ as e) ->
      Some ("deadline_exceeded", Om_guard.Om_error.to_string e)
  | Om_guard.Om_error.Error e ->
      Some ("solver_failure", Om_guard.Om_error.to_string e)
  | Om_lang.Flatten.Error msg -> Some ("model_error", msg)
  | Om_lang.Parser.Error (msg, pos) ->
      Some
        ( "model_error",
          Printf.sprintf "syntax error at %d:%d: %s" pos.Om_lang.Ast.line
            pos.Om_lang.Ast.col msg )
  | Om_lang.Lexer.Error (msg, pos) ->
      Some
        ( "model_error",
          Printf.sprintf "lexical error at %d:%d: %s" pos.Om_lang.Ast.line
            pos.Om_lang.Ast.col msg )
  | Invalid_argument msg -> Some ("model_error", msg)
  | _ -> None

let forget_token t id =
  with_state t (fun () -> Hashtbl.remove t.tokens id)

(* Every terminal status passes through here exactly once per accepted
   job: counters, journal terminal record, token release, and the
   inflight decrement that [drain] waits on. *)
let record_terminal t item ~succeeded ~status =
  journal_terminal t item status;
  forget_token t item.spec.Job.id;
  with_state t (fun () ->
      t.counters <-
        {
          t.counters with
          completed = t.counters.completed + 1;
          ok = (t.counters.ok + if succeeded then 1 else 0);
          failed = (t.counters.failed + if succeeded then 0 else 1);
        };
      t.inflight <- t.inflight - 1;
      if t.inflight = 0 then Condition.broadcast t.idle)

let ewma_alpha = 0.3

let note_run_time t ~key ~run_s =
  with_state t (fun () ->
      let next =
        match Hashtbl.find_opt t.ewma key with
        | None -> run_s
        | Some prev -> (ewma_alpha *. run_s) +. ((1. -. ewma_alpha) *. prev)
      in
      Hashtbl.replace t.ewma key next)

let estimated_run_time t ~key =
  with_state t (fun () -> Hashtbl.find_opt t.ewma key)

let result_cache_eligible t spec =
  t.config.result_cache_capacity > 0
  && spec.Job.chaos = None
  && spec.Job.domains = 0

let ok_fields (report : Objectmath.Runtime.report) ~final =
  [
    ("status", Json.Str "ok");
    ("steps", Json.Int report.solver_steps);
    ("rhs_calls", Json.Int report.rhs_calls);
    ("retries", Json.Int report.retries);
    ("faults", Json.Int report.faults_injected);
    ("degradations", Json.Int (List.length report.degradations));
    ("final", Json.Arr (Array.to_list (Array.map num final)));
  ]

(* Run one attempt of a job.  Emits the terminal status itself except
   when the failure is job-retryable and the job still has budget, in
   which case the caller (the executor loop) owns the retry hand-off. *)
let run_job t item =
  let spec = item.spec in
  let started_at = Unix.gettimeofday () in
  let fail ~cache_state status message =
    record_terminal t item ~succeeded:false ~status;
    emit_item t item
      (status_record t item ~cache_state ~started_at
         [ ("status", Json.Str status); ("error", Json.Str message) ]);
    `Done
  in
  let handle ~cache_state e =
    match e with
    | Om_guard.Om_error.Error err
      when Om_guard.Om_error.job_retryable err
           && item.attempt <= spec.Job.retries ->
        `Retry err
    | e -> (
        match classify e with
        | Some (status, message) -> fail ~cache_state status message
        | None -> fail ~cache_state "internal_error" (Printexc.to_string e))
  in
  match
    (* Queued-phase cancellation/deadline: don't even compile. *)
    Om_guard.Cancel.check item.token;
    Model_cache.lookup t.model_cache spec.Job.source
  with
  | exception e -> handle ~cache_state:"none" e
  | looked_up -> (
      let cache_state, entry =
        match looked_up with
        | `Hit entry -> ("hit", entry)
        | `Miss entry -> ("miss", entry)
      in
      let result_key =
        Result_cache.key ~source_key:entry.Model_cache.key
          ~solver:spec.Job.solver ~tend:spec.Job.tend
      in
      let cached =
        if result_cache_eligible t spec then
          Result_cache.lookup t.results result_key
        else None
      in
      match cached with
      | Some report ->
          (* Replay the stored trajectory verbatim: bitwise the same
             chunks and final state the computing job emitted. *)
          emit_chunks t item report.trajectory;
          let final = Om_ode.Odesys.final_state report.trajectory in
          record_terminal t item ~succeeded:true ~status:"ok";
          emit_item t item
            (status_record t item ~cache_state ~started_at
               (ok_fields report ~final
               @ [ ("result_cache", Json.Str "hit") ]));
          `Done
      | None -> (
          let runtime_config =
            {
              Objectmath.Runtime.default_config with
              execution = execution_mode spec;
              faults = Job.fault_plan ~attempt:item.attempt spec;
              cancel = Some item.token;
            }
          in
          (* The cached artifact is shared read-only; this job executes
             its own clone of the mutable scratch (value environment,
             output slots, register files), so any number of executors
             can run the same hot model concurrently — no per-entry
             lock. *)
          let compiled =
            Om_codegen.Pipeline.clone_scratch entry.Model_cache.compiled
          in
          match
            Objectmath.Runtime.execute ~config:runtime_config
              ~solver:(runtime_solver spec) ~tend:spec.Job.tend compiled
          with
          | exception e -> handle ~cache_state e
          | report ->
              emit_chunks t item report.trajectory;
              let final = Om_ode.Odesys.final_state report.trajectory in
              note_run_time t ~key:entry.Model_cache.key
                ~run_s:(Unix.gettimeofday () -. started_at);
              if result_cache_eligible t spec then
                Result_cache.store t.results result_key report;
              record_terminal t item ~succeeded:true ~status:"ok";
              emit_item t item
                (status_record t item ~cache_state ~started_at
                   (ok_fields report ~final));
              `Done))

(* ---- retry nursery ---- *)

(* One domain holds the jobs sitting out their backoff and re-enqueues
   each when due.  [Condition] has no timed wait, so a non-empty nursery
   polls in short sleeps; an empty one blocks on the condition until a
   retry is scheduled or the server drains.  Re-enqueue uses [force]:
   the job was already admitted once, so capacity and quota cannot shed
   it on re-entry (and the queue cannot be closed while it is pending —
   a job in backoff holds an inflight count, which [drain] waits on
   before closing). *)
let retry_loop t () =
  let rec go () =
    Mutex.lock t.retry_mutex;
    let action =
      let now = Unix.gettimeofday () in
      let due, waiting =
        List.partition (fun r -> r.due <= now) t.retry_pending
      in
      match due with
      | _ :: _ ->
          t.retry_pending <- waiting;
          `Requeue due
      | [] ->
          if t.retry_stop && waiting = [] then `Stop
          else if waiting = [] then begin
            Condition.wait t.retry_wake t.retry_mutex;
            `Again
          end
          else
            `Sleep
              (List.fold_left
                 (fun acc r -> Float.min acc (r.due -. now))
                 0.02 waiting)
    in
    Mutex.unlock t.retry_mutex;
    match action with
    | `Stop -> ()
    | `Again -> go ()
    | `Sleep d ->
        Unix.sleepf (Float.max 0.001 d);
        go ()
    | `Requeue items ->
        List.iter
          (fun { entry; _ } ->
            let spec = entry.spec in
            journal_state t ~id:spec.Job.id ~attempt:entry.attempt "requeued";
            let deadline =
              if spec.Job.deadline_s > 0. then
                entry.submitted_at +. spec.Job.deadline_s
              else Float.infinity
            in
            match
              Job_queue.submit ~tenant:spec.Job.tenant ~deadline ~force:true
                t.queue ~priority:spec.Job.priority entry
            with
            | `Ok -> ()
            | `Closed | `Rejected_full | `Rejected_quota ->
                (* unreachable: inflight > 0 keeps the queue open, and
                   force bypasses shedding — but never lose a terminal *)
                record_terminal t entry ~succeeded:false
                  ~status:"internal_error";
                emit_item t entry
                  (Json.Obj
                     [
                       ("type", Json.Str "status");
                       ("job", Json.Str spec.Job.id);
                       ("tenant", Json.Str spec.Job.tenant);
                       ("status", Json.Str "internal_error");
                       ("error", Json.Str "retry re-enqueue failed");
                     ]))
          items;
        go ()
  in
  go ()

let schedule_retry t item err =
  let spec = item.spec in
  let delay =
    t.config.retry_backoff_s *. Float.pow 2. (float_of_int (item.attempt - 1))
  in
  journal_state t ~id:spec.Job.id ~attempt:item.attempt ~delay_s:delay
    "retrying";
  with_state t (fun () ->
      t.counters <- { t.counters with retried = t.counters.retried + 1 });
  emit_item t item
    (Json.Obj
       [
         ("type", Json.Str "retry");
         ("job", Json.Str spec.Job.id);
         ("tenant", Json.Str spec.Job.tenant);
         ("attempt", Json.Int item.attempt);
         ("delay_s", Json.Num delay);
         ("error", Json.Str (Om_guard.Om_error.to_string err));
       ]);
  let entry =
    { due = Unix.gettimeofday () +. delay; entry = { item with attempt = item.attempt + 1 } }
  in
  Mutex.lock t.retry_mutex;
  t.retry_pending <- entry :: t.retry_pending;
  Condition.signal t.retry_wake;
  Mutex.unlock t.retry_mutex

let executor_loop t () =
  let rec go () =
    match Job_queue.pop t.queue with
    | None -> ()
    | Some item ->
        journal_state t ~id:item.spec.Job.id ~attempt:item.attempt "running";
        (* A job's side effects must not precede its durable accept
           record, or a crash could execute a job that replay does not
           know about.  The wait is on the group-commit sync daemon, so
           a burst of accepts costs one fsync, not one each. *)
        (match t.journal with
        | Some j when item.seq > 0 -> Journal.await_durable j item.seq
        | _ -> ());
        let outcome =
          (* run_job reports every failure as a status record; nothing
             may kill the executor, so subsequent jobs keep being
             served. *)
          try run_job t item
          with e ->
            record_terminal t item ~succeeded:false ~status:"internal_error";
            emit_item t item
              (Json.Obj
                 [
                   ("type", Json.Str "status");
                   ("job", Json.Str item.spec.Job.id);
                   ("tenant", Json.Str item.spec.Job.tenant);
                   ("status", Json.Str "internal_error");
                   ("error", Json.Str (Printexc.to_string e));
                 ]);
            `Done
        in
        (* Release the tenant's running slot before any backoff wait. *)
        Job_queue.finished t.queue ~tenant:item.spec.Job.tenant;
        (match outcome with
        | `Done -> ()
        | `Retry err -> schedule_retry t item err);
        go ()
  in
  go ()

(* ---- public API ---- *)

let create ?(config = default_config) ?cache ?journal ~emit () =
  let model_cache =
    match cache with
    | Some c -> c
    | None ->
        Model_cache.create ?config:config.pipeline
          ~capacity:config.cache_capacity ()
  in
  let t =
    {
      config;
      queue =
        Job_queue.create ~max_queued_per_tenant:config.max_queued_per_tenant
          ~max_running_per_tenant:config.max_running_per_tenant
          ~capacity:config.queue_capacity ();
      model_cache;
      results = Result_cache.create config.result_cache_capacity;
      journal;
      emit_fn = emit;
      emit_mutex = Mutex.create ();
      state_mutex = Mutex.create ();
      idle = Condition.create ();
      drain_mutex = Mutex.create ();
      tokens = Hashtbl.create 64;
      ewma = Hashtbl.create 16;
      counters = zero_stats;
      inflight = 0;
      next_id = 0;
      workers = [];
      summary = None;
      retry_mutex = Mutex.create ();
      retry_wake = Condition.create ();
      retry_pending = [];
      retry_stop = false;
      retry_domain = None;
    }
  in
  t.workers <-
    List.init (max 1 config.executors) (fun _ -> Domain.spawn (executor_loop t));
  t.retry_domain <- Some (Domain.spawn (retry_loop t));
  t

let reject_record spec status message =
  Json.Obj
    [
      ("type", Json.Str "status");
      ("job", Json.Str spec.Job.id);
      ("tenant", Json.Str spec.Job.tenant);
      ("status", Json.Str status);
      ("error", Json.Str message);
    ]

let bump_rejected t status =
  with_state t (fun () ->
      t.counters <-
        (match status with
        | "rejected_full" ->
            { t.counters with rejected_full = t.counters.rejected_full + 1 }
        | "rejected_quota" ->
            { t.counters with rejected_quota = t.counters.rejected_quota + 1 }
        | _ ->
            {
              t.counters with
              rejected_deadline = t.counters.rejected_deadline + 1;
            }))

(* Deadline-aware early shedding: when the EWMA of this model's run time
   says the job cannot plausibly finish inside its own deadline, shed it
   now instead of burning an executor slot to produce the same verdict
   late.  Only models this server has already run have an estimate, and
   [deadline_margin = 0.] turns the policy off entirely — both matter
   for output determinism. *)
let deadline_doomed t spec =
  t.config.deadline_margin > 0.
  && spec.Job.deadline_s > 0.
  &&
  match
    estimated_run_time t ~key:(Om_codegen.Pipeline.source_key spec.Job.source)
  with
  | Some est -> est *. t.config.deadline_margin > spec.Job.deadline_s
  | None -> false

let submit_item ?sink ?(recovered = false) t spec =
  let spec =
    if spec.Job.id <> "" then spec
    else
      with_state t (fun () ->
          t.next_id <- t.next_id + 1;
          { spec with Job.id = Printf.sprintf "job-%d" t.next_id })
  in
  let token =
    Om_guard.Cancel.create ~deadline_s:spec.Job.deadline_s ~job:spec.Job.id ()
  in
  let emit_to = match sink with Some s -> s | None -> emit t in
  (* The tokens table is the set of in-flight ids; claiming is atomic
     with the duplicate check so two racing submissions of one id can
     never both enter the queue (the loser's cancel would otherwise be
     clobbered and the job made unreachable). *)
  let claimed =
    with_state t (fun () ->
        if Hashtbl.mem t.tokens spec.Job.id then false
        else begin
          Hashtbl.add t.tokens spec.Job.id token;
          true
        end)
  in
  if not claimed then begin
    emit_to
      (reject_record spec "invalid"
         "duplicate id: a job with this id is in flight");
    `Duplicate
  end
  else if (not recovered) && deadline_doomed t spec then begin
    forget_token t spec.Job.id;
    bump_rejected t "rejected_deadline";
    emit_to
      (reject_record spec "rejected_deadline"
         "deadline below the model's estimated run time");
    `Rejected "rejected_deadline"
  end
  else begin
    let submitted_at = Unix.gettimeofday () in
    (* Write-ahead: the accept record is journaled before the job can
       become runnable.  A recovered job already has its accept record
       from the previous process — replay re-enqueues it exactly once,
       marked by a requeued transition, never by a second accept. *)
    let seq =
      match t.journal with
      | None -> 0
      | Some j ->
          if recovered then begin
            Journal.record_state j ~id:spec.Job.id "requeued";
            0
          end
          else Journal.record_accept j spec
    in
    let item =
      { spec; token; submitted_at; sink; attempt = 1; seq }
    in
    let deadline =
      if spec.Job.deadline_s > 0. then submitted_at +. spec.Job.deadline_s
      else Float.infinity
    in
    let shed status message =
      (* journaled as accepted a moment ago: tombstone it so replay
         does not resurrect a job the client was told was shed *)
      if not recovered then
        journal_state t ~id:spec.Job.id ~status "cancelled";
      forget_token t spec.Job.id;
      bump_rejected t status;
      emit_to (reject_record spec status message);
      `Rejected status
    in
    match
      Job_queue.submit ~tenant:spec.Job.tenant ~deadline ~force:recovered
        t.queue ~priority:spec.Job.priority item
    with
    | `Ok ->
        with_state t (fun () ->
            t.counters <-
              {
                t.counters with
                submitted = t.counters.submitted + 1;
                recovered =
                  (t.counters.recovered + if recovered then 1 else 0);
              };
            t.inflight <- t.inflight + 1);
        `Ok spec.Job.id
    | `Rejected_full -> shed "rejected_full" "submission queue full"
    | `Rejected_quota ->
        shed "rejected_quota"
          (Printf.sprintf "tenant %S is at its queued-job quota"
             spec.Job.tenant)
    | `Closed ->
        if not recovered then
          journal_state t ~id:spec.Job.id ~status:"closed" "cancelled";
        forget_token t spec.Job.id;
        `Closed
  end

let submit ?sink t spec = submit_item ?sink t spec

let recover t (replay : Journal.replay) =
  List.fold_left
    (fun n spec ->
      match submit_item ~recovered:true t spec with
      | `Ok _ -> n + 1
      | `Duplicate | `Rejected _ | `Closed -> n)
    0 replay.Journal.pending

let cancel ?reason t ~job =
  match with_state t (fun () -> Hashtbl.find_opt t.tokens job) with
  | Some token -> Om_guard.Cancel.cancel ?reason token
  | None -> ()

let invalid ?sink t ~id message =
  let record =
    Json.Obj
      [
        ("type", Json.Str "status");
        ("job", Json.Str id);
        ("status", Json.Str "invalid");
        ("error", Json.Str message);
      ]
  in
  match sink with Some s -> s record | None -> emit t record

let handle_line ?sink t line =
  let line = String.trim line in
  if line = "" then `Quiet
  else
    match Json.of_string line with
    | exception Json.Error msg ->
        invalid ?sink t ~id:"" ("bad JSON: " ^ msg);
        `Replied
    | json -> (
        match Option.bind (Json.member json "type") Json.to_str with
        | Some "cancel" -> (
            match Option.bind (Json.member json "job") Json.to_str with
            | Some job ->
                let reason =
                  Option.bind (Json.member json "reason") Json.to_str
                in
                cancel ?reason t ~job;
                `Quiet
            | None ->
                invalid ?sink t ~id:"" "cancel record without \"job\"";
                `Replied)
        | Some other when other <> "job" ->
            invalid ?sink t ~id:"" (Printf.sprintf "unknown record type %S" other);
            `Replied
        | _ -> (
            match
              Job.of_json ~default_retries:t.config.default_retries
                ~resolve:t.config.resolve json
            with
            | Error msg ->
                let id =
                  Option.value ~default:""
                    (Option.bind (Json.member json "id") Json.to_str)
                in
                invalid ?sink t ~id msg;
                `Replied
            | Ok spec -> (
                match submit ?sink t spec with
                | `Ok id -> `Queued id
                | `Duplicate | `Rejected _ -> `Replied
                | `Closed -> `Quiet)))

let stats t = with_state t (fun () -> t.counters)
let cache t = t.model_cache
let result_cache_stats t = Result_cache.stats t.results

let drain t =
  (* The whole drain runs under one mutex: the first caller waits out
     the inflight jobs (including retries sitting in backoff — a job in
     backoff still counts), closes the queue, joins the executors and
     the retry nursery, and emits the summary; every later or concurrent
     caller blocks until that finishes and gets the cached record
     without re-emitting — drain is idempotent. *)
  Mutex.lock t.drain_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.drain_mutex) (fun () ->
      match t.summary with
      | Some s -> s
      | None ->
          with_state t (fun () ->
              while t.inflight > 0 do
                Condition.wait t.idle t.state_mutex
              done);
          Job_queue.close t.queue;
          let workers =
            with_state t (fun () ->
                let w = t.workers in
                t.workers <- [];
                w)
          in
          List.iter Domain.join workers;
          Mutex.lock t.retry_mutex;
          t.retry_stop <- true;
          Condition.broadcast t.retry_wake;
          Mutex.unlock t.retry_mutex;
          (match
             with_state t (fun () ->
                 let d = t.retry_domain in
                 t.retry_domain <- None;
                 d)
           with
          | Some d -> Domain.join d
          | None -> ());
          Option.iter Journal.close t.journal;
          let counters = stats t in
          let cs = Model_cache.stats t.model_cache in
          let rejected =
            counters.rejected_full + counters.rejected_quota
            + counters.rejected_deadline
          in
          let opt_count name n =
            if n > 0 then [ (name, Json.Int n) ] else []
          in
          let result_fields =
            if t.config.result_cache_capacity = 0 then []
            else
              let hits, misses, entries = result_cache_stats t in
              [
                ( "results",
                  Json.Obj
                    [
                      ("hits", Json.Int hits);
                      ("misses", Json.Int misses);
                      ("entries", Json.Int entries);
                    ] );
              ]
          in
          let summary =
            Json.Obj
              ([
                 ("type", Json.Str "summary");
                 ("jobs", Json.Int counters.submitted);
                 ("ok", Json.Int counters.ok);
                 ("failed", Json.Int counters.failed);
                 ("rejected", Json.Int rejected);
               ]
              @ opt_count "retried" counters.retried
              @ opt_count "recovered" counters.recovered
              @ [
                  ( "cache",
                    Json.Obj
                      [
                        ("hits", Json.Int cs.Model_cache.hits);
                        ("misses", Json.Int cs.Model_cache.misses);
                        ("compiles", Json.Int cs.Model_cache.compiles);
                        ("evictions", Json.Int cs.Model_cache.evictions);
                        ("entries", Json.Int cs.Model_cache.entries);
                      ] );
                ]
              @ result_fields)
          in
          t.summary <- Some summary;
          emit t summary;
          summary)
