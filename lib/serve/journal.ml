(* Append-only NDJSON write-ahead log with leader-based group-commit
   durability.

   Writers append whole lines under [mutex] (one [Unix.write] each, so
   records never interleave) and bump [written_seq] — a plain page-cache
   write, never an fsync.  Durability is demanded, not scheduled: the
   first [await_durable] caller to find its record unsynced becomes the
   fsync leader, issues one fsync covering the whole backlog off-lock,
   and publishes [synced_seq]; callers arriving meanwhile wait on
   [synced] and are covered by that same fsync (or elect the next
   leader if their record landed after the leader's target).  That
   turns N outstanding accepts into one fsync, and costs nothing at
   all for records nobody awaits (state transitions ride the page
   cache until the next demanded fsync or [close]; on a kill -9 the
   kernel still has them, and on a machine crash replay simply re-runs
   the job).  No dedicated sync domain exists — that matters on small
   machines, where OCaml's stop-the-world minor collections must
   rendezvous with every domain and even a parked extra domain taxes
   the executors' allocation rate. *)

type t = {
  fd : Unix.file_descr;
  mutex : Mutex.t;
  synced : Condition.t;  (* synced_seq moved, or syncing/closed changed *)
  mutable written_seq : int;
  mutable synced_seq : int;
  mutable syncing : bool;  (* a leader's fsync is in flight *)
  mutable closing : bool;
  mutable closed : bool;
}

let open_append path =
  let fd =
    try Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    with Unix.Unix_error (e, _, _) ->
      raise (Sys_error (Printf.sprintf "%s: %s" path (Unix.error_message e)))
  in
  (* Truncate a torn final line left by a crash mid-append.  Each
     record is one write, so a torn tail is a write that never
     completed and was never acknowledged durable; replay ignores it,
     but a new record appended after it would be glued onto the
     fragment and corrupt that line for the *next* replay. *)
  (let size = (Unix.fstat fd).Unix.st_size in
   let chunk = 4096 in
   let rec line_start pos =
     (* offset just past the last newline at or before [pos] *)
     if pos = 0 then 0
     else
       let off = max 0 (pos - chunk) in
       let len = pos - off in
       ignore (Unix.lseek fd off Unix.SEEK_SET);
       let buf = Bytes.create len in
       let rec fill k =
         if k < len then
           match Unix.read fd buf k (len - k) with
           | 0 -> ()
           | n -> fill (k + n)
       in
       fill 0;
       match Bytes.rindex_opt buf '\n' with
       | Some i -> off + i + 1
       | None -> line_start off
   in
   if size > 0 then begin
     let keep = line_start size in
     if keep < size then Unix.ftruncate fd keep
   end);
  {
    fd;
    mutex = Mutex.create ();
    synced = Condition.create ();
    written_seq = 0;
    synced_seq = 0;
    syncing = false;
    closing = false;
    closed = false;
  }

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let append t line =
  Mutex.lock t.mutex;
  let seq =
    if t.closing then t.written_seq  (* discard; nothing to await *)
    else begin
      write_all t.fd line;
      t.written_seq <- t.written_seq + 1;
      t.written_seq
    end
  in
  Mutex.unlock t.mutex;
  seq

let record_accept t spec =
  let line =
    Json.to_string
      (Json.Obj [ ("rec", Json.Str "accept"); ("job", Job.to_json spec) ])
    ^ "\n"
  in
  append t line

let record_state t ~id ?attempt ?status ?delay_s state =
  let opt name conv v = Option.to_list (Option.map (fun x -> (name, conv x)) v) in
  let line =
    Json.to_string
      (Json.Obj
         ([
            ("rec", Json.Str "state");
            ("id", Json.Str id);
            ("state", Json.Str state);
          ]
         @ opt "attempt" (fun a -> Json.Int a) attempt
         @ opt "status" (fun s -> Json.Str s) status
         @ opt "delay_s" (fun d -> Json.Num d) delay_s))
    ^ "\n"
  in
  ignore (append t line)

let await_durable t seq =
  Mutex.lock t.mutex;
  let rec loop () =
    if t.synced_seq >= seq || t.closed then ()
    else if t.syncing then begin
      (* a leader's fsync is in flight; it either covers us or we
         re-check (and possibly lead) when it lands *)
      Condition.wait t.synced t.mutex;
      loop ()
    end
    else begin
      t.syncing <- true;
      let target = t.written_seq in
      Mutex.unlock t.mutex;
      (* fsync outside the mutex: appends keep flowing during the
         sync, forming the next batch *)
      Unix.fsync t.fd;
      Mutex.lock t.mutex;
      if target > t.synced_seq then t.synced_seq <- target;
      t.syncing <- false;
      Condition.broadcast t.synced;
      loop ()
    end
  in
  loop ();
  Mutex.unlock t.mutex

let close t =
  Mutex.lock t.mutex;
  if t.closing then Mutex.unlock t.mutex
  else begin
    t.closing <- true;
    (* wait out an in-flight leader so we never close the fd under its
       fsync *)
    while t.syncing do Condition.wait t.synced t.mutex done;
    Mutex.unlock t.mutex;
    (* final fsync before releasing any still-blocked awaiters: the
       whole backlog, state records included, is durable at close *)
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    Mutex.lock t.mutex;
    t.synced_seq <- t.written_seq;
    t.closed <- true;
    Condition.broadcast t.synced;
    Mutex.unlock t.mutex;
    Unix.close t.fd
  end

(* ---- replay ---- *)

type replay = {
  pending : Job.spec list;
  accepted : int;
  completed : int;
  failed : int;
  cancelled : int;
  torn_tail : bool;
}

type track = { spec : Job.spec; order : int; mutable last : string }

let terminal = function "done" | "failed" | "cancelled" -> true | _ -> false

let replay path =
  if not (Sys.file_exists path) then
    Ok
      {
        pending = [];
        accepted = 0;
        completed = 0;
        failed = 0;
        cancelled = 0;
        torn_tail = false;
      }
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    let torn_tail = len > 0 && contents.[len - 1] <> '\n' in
    let lines =
      (* keep only complete lines: a torn final fragment — the crash's
         own half-written record — is dropped here, not parsed *)
      let parts = String.split_on_char '\n' contents in
      let rec complete = function
        | [] | [ _ ] -> []  (* last part: "" for a clean tail, else torn *)
        | l :: rest -> l :: complete rest
      in
      complete parts
    in
    let jobs : (string, track) Hashtbl.t = Hashtbl.create 64 in
    let order = ref 0 in
    let err = ref None in
    let fail lineno msg =
      if !err = None then
        err := Some (Printf.sprintf "journal %s: line %d: %s" path lineno msg)
    in
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        if !err = None && String.trim line <> "" then
          match Json.of_string line with
          | exception Json.Error msg -> fail lineno msg
          | json -> (
              match Option.bind (Json.member json "rec") Json.to_str with
              | Some "accept" -> (
                  match Json.member json "job" with
                  | None -> fail lineno "accept record without job"
                  | Some job -> (
                      match Job.of_json ~resolve:(fun _ -> None) job with
                      | Error msg -> fail lineno ("bad job: " ^ msg)
                      | Ok spec ->
                          (* duplicate accept (same id): keep the first —
                             the server refuses duplicate live ids, so a
                             second accept can only be a resubmission
                             after the first went terminal; treat it as
                             reviving the id *)
                          if Hashtbl.mem jobs spec.Job.id then
                            (Hashtbl.find jobs spec.Job.id).last <- "queued"
                          else begin
                            incr order;
                            Hashtbl.replace jobs spec.Job.id
                              { spec; order = !order; last = "queued" }
                          end))
              | Some "state" -> (
                  match
                    ( Option.bind (Json.member json "id") Json.to_str,
                      Option.bind (Json.member json "state") Json.to_str )
                  with
                  | Some id, Some state -> (
                      match Hashtbl.find_opt jobs id with
                      | Some tr -> tr.last <- state
                      | None ->
                          fail lineno
                            (Printf.sprintf "state for unaccepted job %S" id))
                  | _ -> fail lineno "state record without id/state")
              | Some other -> fail lineno (Printf.sprintf "unknown rec %S" other)
              | None -> fail lineno "record without \"rec\""))
      lines;
    match !err with
    | Some msg -> Error msg
    | None ->
        let tracks =
          Hashtbl.fold (fun _ tr acc -> tr :: acc) jobs []
          |> List.sort (fun a b -> compare a.order b.order)
        in
        let count st =
          List.length (List.filter (fun tr -> tr.last = st) tracks)
        in
        Ok
          {
            pending =
              List.filter_map
                (fun tr -> if terminal tr.last then None else Some tr.spec)
                tracks;
            accepted = List.length tracks;
            completed = count "done";
            failed = count "failed";
            cancelled = count "cancelled";
            torn_tail;
          }
  end
