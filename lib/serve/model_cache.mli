(** Compiled-model cache: the serve layer's compile-once story.

    Jobs are keyed by the content hash of their model source
    ({!Om_codegen.Pipeline.source_key}); a hit returns the cached
    {!Om_codegen.Pipeline.result} and skips the whole
    flatten → typecheck → codegen front half of the pipeline — the
    property the serve tests assert with
    {!Om_codegen.Pipeline.compile_count}.  Tenancy is deliberately
    {e not} part of the key: two tenants submitting byte-identical
    sources share one compiled artifact (compilation is pure), while
    per-job state (initial values, trajectories, solver scratch) never
    enters the cache, so no simulation data can leak across tenants.

    Eviction is LRU over a fixed capacity.  [capacity = 0] disables the
    cache entirely — every lookup compiles and nothing is stored — which
    is how the serve bench measures its cold series.

    The compiled {!Om_codegen.Pipeline.result} contains a mutable
    bytecode evaluator ([Bytecode_backend.t] scratch arrays), so a
    shared artifact must not run on two executors at once: each entry
    carries a lock ([entry.lock]) the server holds for the duration of
    a job. *)

type entry = {
  key : string;  (** {!Om_codegen.Pipeline.source_key} of the source *)
  compiled : Om_codegen.Pipeline.result;
  lock : Mutex.t;
      (** held while a job executes on [compiled] (the bytecode VM's
          scratch arrays are mutable, so concurrent runs would race) *)
}

type stats = {
  compiles : int;  (** cache-triggered pipeline compilations *)
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** current residency *)
}

type t

val create : ?config:Om_codegen.Pipeline.config -> capacity:int -> unit -> t
(** [capacity] is the maximum number of resident compiled models;
    [0] disables storage (always compile, never cache).
    @raise Invalid_argument if [capacity < 0]. *)

val lookup : t -> string -> [ `Hit of entry | `Miss of entry ]
(** [lookup t source] returns the compiled form of [source], compiling
    it on a miss (under the cache mutex, so concurrent requests for the
    same new source compile once).  Front-end failures propagate to the
    caller and leave the cache unchanged.
    @raise Om_lang.Lexer.Error, [Om_lang.Parser.Error],
    [Om_lang.Flatten.Error] or [Invalid_argument] on ill-formed
    sources. *)

val stats : t -> stats
val capacity : t -> int

val resident : t -> string list
(** Keys currently cached, most recently used first (test hook). *)
