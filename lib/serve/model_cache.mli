(** Compiled-model cache: the serve layer's compile-once story.

    Jobs are keyed by the content hash of their model source
    ({!Om_codegen.Pipeline.source_key}); a hit returns the cached
    {!Om_codegen.Pipeline.result} and skips the whole
    flatten → typecheck → codegen front half of the pipeline — the
    property the serve tests assert with
    {!Om_codegen.Pipeline.compile_count}.  Tenancy is deliberately
    {e not} part of the key: two tenants submitting byte-identical
    sources share one compiled artifact (compilation is pure), while
    per-job state (initial values, trajectories, solver scratch) never
    enters the cache, so no simulation data can leak across tenants.

    Eviction is LRU over a fixed capacity.  [capacity = 0] disables the
    cache entirely — every lookup compiles and nothing is stored — which
    is how the serve bench measures its cold series.

    {b Concurrency.}  The internal mutex guards map operations only;
    compilation runs with no lock held.  A miss parks concurrent
    requests for the {e same} source on a per-key in-flight latch (each
    source still compiles exactly once; the waiters resume on the hit
    path), while lookups of {e other} sources — cached or not — proceed
    untouched: a slow compile never stalls a hit.  The returned
    {!Om_codegen.Pipeline.result} is shared between every job that hits
    the same entry; callers must not run it directly from several
    domains but clone its mutable scratch first
    ({!Om_codegen.Pipeline.clone_scratch}), which is how the server
    executes one cached artifact on many executors concurrently. *)

type entry = {
  key : string;  (** {!Om_codegen.Pipeline.source_key} of the source *)
  compiled : Om_codegen.Pipeline.result;
      (** shared, read-only: clone its scratch before executing *)
}

type stats = {
  compiles : int;  (** cache-triggered pipeline compilations *)
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** current residency *)
}

type t

val create :
  ?config:Om_codegen.Pipeline.config ->
  ?on_compile:(string -> unit) ->
  capacity:int ->
  unit ->
  t
(** [capacity] is the maximum number of resident compiled models;
    [0] disables storage (always compile, never cache).
    [on_compile] is an observability/test hook invoked with the source
    at the start of every actual compilation — off every lock, in the
    compiling thread, at most once per miss (latch waiters never invoke
    it).  The concurrency tests use it to hold a compile open and
    witness that hits keep flowing.
    @raise Invalid_argument if [capacity < 0]. *)

val lookup : t -> string -> [ `Hit of entry | `Miss of entry ]
(** [lookup t source] returns the compiled form of [source], compiling
    it on a miss.  Concurrent requests for the same new source compile
    once (the rest wait on the in-flight latch and return [`Hit]);
    requests for other sources are never blocked by a compile.
    Front-end failures propagate to the caller and leave the cache
    unchanged.
    @raise Om_lang.Lexer.Error, [Om_lang.Parser.Error],
    [Om_lang.Flatten.Error] or [Invalid_argument] on ill-formed
    sources. *)

val stats : t -> stats
val capacity : t -> int

val resident : t -> string list
(** Keys currently cached, most recently used first (test hook). *)
