type t =
  | Null
  | Bool of bool
  | Int of int
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string

let fail pos msg = raise (Error (Printf.sprintf "at %d: %s" pos msg))

(* ---- parsing ---- *)

type state = { s : string; mutable i : int }

let peek st = if st.i < String.length st.s then Some st.s.[st.i] else None

let skip_ws st =
  while
    st.i < String.length st.s
    && match st.s.[st.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.i <- st.i + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.i <- st.i + 1
  | _ -> fail st.i (Printf.sprintf "expected %c" c)

let literal st word value =
  let n = String.length word in
  if st.i + n <= String.length st.s && String.sub st.s st.i n = word then begin
    st.i <- st.i + n;
    value
  end
  else fail st.i (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.i >= String.length st.s then fail st.i "unterminated string";
    let c = st.s.[st.i] in
    st.i <- st.i + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        if st.i >= String.length st.s then fail st.i "unterminated escape";
        let e = st.s.[st.i] in
        st.i <- st.i + 1;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if st.i + 4 > String.length st.s then fail st.i "short \\u escape";
            let hex = String.sub st.s st.i 4 in
            st.i <- st.i + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail st.i "bad \\u escape"
            in
            (* Encode the code point as UTF-8 (BMP only; surrogate pairs
               are passed through as two 3-byte sequences, which is
               enough for a machine protocol that never re-encodes). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf
                (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
        | _ -> fail st.i "bad escape");
        go ())
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.i in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.i < String.length st.s && is_num_char st.s.[st.i] do
    st.i <- st.i + 1
  done;
  let text = String.sub st.s start (st.i - start) in
  match int_of_string_opt text with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt text with
      | Some f -> Num f
      | None -> fail start (Printf.sprintf "bad number %s" text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.i "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then (expect st '}'; Obj [])
      else begin
        let fields = ref [] in
        let rec go () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (k, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' -> expect st ','; go ()
          | Some '}' -> expect st '}'
          | _ -> fail st.i "expected , or }"
        in
        go ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then (expect st ']'; Arr [])
      else begin
        let items = ref [] in
        let rec go () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' -> expect st ','; go ()
          | Some ']' -> expect st ']'
          | _ -> fail st.i "expected , or ]"
        in
        go ();
        Arr (List.rev !items)
      end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.i (Printf.sprintf "unexpected character %c" c)

let of_string s =
  let st = { s; i = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.i <> String.length s then fail st.i "trailing garbage";
  v

(* ---- printing ---- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_str f =
  (* Non-finite values have no JSON rendering: emit null, as the bench
     JSON writers already do. *)
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else begin
    (* Shortest rendering that round-trips, so equal computations emit
       equal bytes. *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Num f -> Buffer.add_string buf (float_str f)
  | Str s -> escape buf s
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  write buf v;
  Buffer.contents buf

(* ---- accessors ---- *)

let member v k =
  match v with Obj fields -> List.assoc_opt k fields | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let to_float = function
  | Int n -> Some (float_of_int n)
  | Num f -> Some f
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_list = function Arr l -> Some l | _ -> None
