module E = Om_expr.Expr

type task = {
  tid : int;
  label : string;
  roots : (int * E.t) list;
}

type plan = {
  dim : int;
  n_partials : int;
  tasks : task array;
  epilogue : (int * int list) list;
  epilogue_flops : float;
}

let n_slots p = p.dim + p.n_partials

let task_cost t =
  List.fold_left
    (fun acc (_, e) -> acc +. Om_expr.Cost.flops_mean e)
    0. t.roots

(* Additive decomposition of an expression for task splitting.  Beyond
   top-level sums this descends through two meaning-preserving rewrites:

   - a product with a sum factor distributes when the remaining cofactor
     is cheap enough to duplicate;
   - a unilateral conditional [If (c, body, 0)] — the shape of every
     contact force — first absorbs cheap product cofactors
     ([k * If (c, b, 0) = If (c, k * b, 0)]) and then distributes over
     the terms of its taken branch ([If (c, sum t_i, 0) = sum If (c, t_i, 0)]),
     duplicating only the (cheap) condition.

   The cofactor/condition budget caps the recomputation this introduces. *)
let duplication_budget = 80.

let rec split_terms (e : E.t) : E.t list =
  match e with
  | E.Add ts -> List.concat_map split_terms ts
  | E.Mul fs -> (
      (* Pull a unilateral If out of the product. *)
      let ifs, others =
        List.partition
          (function E.If (_, _, E.Const 0.) -> true | _ -> false)
          fs
      in
      match ifs with
      | E.If (c, body, _) :: rest_ifs ->
          split_terms (E.if_ c (E.mul (body :: rest_ifs @ others)) E.zero)
      | _ -> (
          (* Distribute over one sum factor if the cofactor is cheap. *)
          let adds, rest =
            List.partition (function E.Add _ -> true | _ -> false) fs
          in
          match adds with
          | E.Add ts :: other_adds
            when Om_expr.Cost.flops_mean (E.mul (other_adds @ rest))
                 <= duplication_budget ->
              List.concat_map
                (fun t -> split_terms (E.mul (t :: other_adds @ rest)))
                ts
          | _ -> [ e ]))
  | E.If (c, a, E.Const 0.)
    when Om_expr.Cost.flops_mean c.lhs +. Om_expr.Cost.flops_mean c.rhs
         <= duplication_budget -> (
      match split_terms a with
      | [ _ ] -> [ e ]
      | ts -> List.map (fun t -> E.if_ c t E.zero) ts)
  | _ -> [ e ]

(* Split the terms of a sum into chunks of roughly [threshold] cost. *)
let chunk_terms threshold terms =
  let chunks = ref [] and current = ref [] and current_cost = ref 0. in
  List.iter
    (fun term ->
      let c = Om_expr.Cost.flops_mean term in
      if !current <> [] && !current_cost +. c > threshold then begin
        chunks := List.rev !current :: !chunks;
        current := [];
        current_cost := 0.
      end;
      current := term :: !current;
      current_cost := !current_cost +. c)
    terms;
  if !current <> [] then chunks := List.rev !current :: !chunks;
  List.rev !chunks

let partition ?(merge_threshold = 50.) ?(split_threshold = 4000.) assigns =
  let dim = Array.length assigns in
  let next_partial = ref 0 in
  let epilogue = ref [] in
  (* Worker work items: (slot, expr, cost), before grouping. *)
  let items = ref [] in
  Array.iter
    (fun (a : Assignments.t) ->
      let c = Assignments.cost a in
      match split_terms a.rhs with
      | terms when c > split_threshold && List.length terms >= 2 ->
          let chunks = chunk_terms (split_threshold /. 2.) terms in
          if List.length chunks = 1 then
            items := (a.state_index, a.rhs, c, a.state) :: !items
          else begin
            let slots =
              List.map
                (fun chunk ->
                  let slot = dim + !next_partial in
                  incr next_partial;
                  let e = E.add chunk in
                  items :=
                    (slot, e, Om_expr.Cost.flops_mean e,
                     Printf.sprintf "%s#%d" a.state (slot - dim))
                    :: !items;
                  slot)
                chunks
            in
            epilogue := (a.state_index, slots) :: !epilogue
          end
      | _ -> items := (a.state_index, a.rhs, c, a.state) :: !items)
    assigns;
  let items = List.rev !items in
  (* Group cheap items; expensive ones become singleton tasks. *)
  let tasks = ref [] in
  let flush group =
    match group with
    | [] -> ()
    | _ ->
        let roots = List.rev_map (fun (slot, e, _, _) -> (slot, e)) group in
        let label =
          match group with
          | [ (_, _, _, n) ] -> n
          | (_, _, _, n) :: _ ->
              Printf.sprintf "%s+%d" n (List.length group - 1)
          | [] -> assert false
        in
        tasks := (label, roots) :: !tasks
  in
  let group = ref [] and group_cost = ref 0. in
  List.iter
    (fun ((_, _, c, _) as item) ->
      if c >= merge_threshold then begin
        (* Large enough to stand alone. *)
        flush !group;
        group := [];
        group_cost := 0.;
        flush [ item ]
      end
      else begin
        if !group_cost +. c > merge_threshold && !group <> [] then begin
          flush !group;
          group := [];
          group_cost := 0.
        end;
        group := item :: !group;
        group_cost := !group_cost +. c
      end)
    items;
  flush !group;
  let tasks =
    List.rev !tasks
    |> List.mapi (fun tid (label, roots) -> { tid; label; roots })
    |> Array.of_list
  in
  let epilogue = List.rev !epilogue in
  let epilogue_flops =
    List.fold_left
      (fun acc (_, slots) -> acc +. float_of_int (List.length slots))
      0. epilogue
  in
  { dim; n_partials = !next_partial; tasks; epilogue; epilogue_flops }

let validate p =
  let written = Array.make (n_slots p) false in
  Array.iter
    (fun t ->
      List.iter
        (fun (slot, _) ->
          if slot < 0 || slot >= n_slots p then
            invalid_arg "Partition.validate: slot out of range";
          if written.(slot) then
            invalid_arg
              (Printf.sprintf "Partition.validate: slot %d written twice" slot);
          written.(slot) <- true)
        t.roots)
    p.tasks;
  List.iter
    (fun (deriv, slots) ->
      if deriv < 0 || deriv >= p.dim then
        invalid_arg "Partition.validate: epilogue derivative out of range";
      if written.(deriv) then
        invalid_arg
          (Printf.sprintf
             "Partition.validate: derivative %d both direct and via epilogue"
             deriv);
      written.(deriv) <- true;
      List.iter
        (fun s ->
          if s < p.dim || s >= n_slots p then
            invalid_arg "Partition.validate: epilogue partial out of range")
        slots)
    p.epilogue;
  for i = 0 to p.dim - 1 do
    if not written.(i) then
      invalid_arg
        (Printf.sprintf "Partition.validate: derivative %d never produced" i)
  done
