module E = Om_expr.Expr

type source = {
  code : string;
  total_lines : int;
  declaration_lines : int;
  statement_lines : int;
  cse_count : int;
}

type mode = Parallel | Serial

let c_func : E.func -> string = function
  | Sin -> "sin"
  | Cos -> "cos"
  | Tan -> "tan"
  | Asin -> "asin"
  | Acos -> "acos"
  | Atan -> "atan"
  | Sinh -> "sinh"
  | Cosh -> "cosh"
  | Tanh -> "tanh"
  | Exp -> "exp"
  | Log -> "log"
  | Sqrt -> "sqrt"
  | Abs -> "fabs"
  | Sign -> "om_sign"
  | Atan2 -> "atan2"
  | Min -> "fmin"
  | Max -> "fmax"
  | Hypot -> "hypot"

let float_literal x = Printf.sprintf "%.17g" x

(* Precedence: 1 sum, 2 product, 3 unary minus, 5 atom.  Powers lower to
   pow() or repeated multiplication at integer exponents. *)
let expr_to_c var_name e =
  let buf = Buffer.create 128 in
  let rec emit prec e =
    let paren p f =
      if prec > p then begin
        Buffer.add_char buf '(';
        f ();
        Buffer.add_char buf ')'
      end
      else f ()
    in
    match e with
    | E.Const x ->
        if x < 0. then paren 2 (fun () -> Buffer.add_string buf (float_literal x))
        else Buffer.add_string buf (float_literal x)
    | E.Var v -> Buffer.add_string buf (var_name v)
    | E.Add terms ->
        paren 1 (fun () ->
            List.iteri
              (fun i t ->
                if i > 0 then Buffer.add_string buf " + ";
                emit 2 t)
              terms)
    | E.Mul (E.Const (-1.) :: rest) when rest <> [] ->
        paren 3 (fun () ->
            Buffer.add_char buf '-';
            emit 5 (E.mul rest))
    | E.Mul factors ->
        paren 2 (fun () ->
            List.iteri
              (fun i f ->
                if i > 0 then Buffer.add_char buf '*';
                emit 5 f)
              factors)
    | E.Pow (b, E.Const n)
      when Float.is_integer n && n >= 2. && n <= 4. ->
        (* Small integer powers as explicit products. *)
        paren 2 (fun () ->
            let k = int_of_float n in
            for i = 0 to k - 1 do
              if i > 0 then Buffer.add_char buf '*';
              emit 5 b
            done)
    | E.Pow (b, E.Const (-1.)) ->
        paren 2 (fun () ->
            Buffer.add_string buf "1.0/";
            emit 5 b)
    | E.Pow (b, ex) ->
        Buffer.add_string buf "pow(";
        emit 1 b;
        Buffer.add_string buf ", ";
        emit 1 ex;
        Buffer.add_char buf ')'
    | E.Call (f, args) ->
        Buffer.add_string buf (c_func f);
        Buffer.add_char buf '(';
        List.iteri
          (fun i a ->
            if i > 0 then Buffer.add_string buf ", ";
            emit 1 a)
          args;
        Buffer.add_char buf ')'
    | E.If (c, t, e') ->
        paren 1 (fun () ->
            Buffer.add_char buf '(';
            emit 1 c.lhs;
            Buffer.add_string buf
              (match c.rel with
              | E.Lt -> " < "
              | E.Le -> " <= "
              | E.Gt -> " > "
              | E.Ge -> " >= ");
            emit 1 c.rhs;
            Buffer.add_string buf ") ? ";
            emit 2 t;
            Buffer.add_string buf " : ";
            emit 2 e')
  in
  emit 0 e;
  Buffer.contents buf

let mangle = Fortran.mangle

let slot_name dim state_names slot =
  if slot < dim then mangle state_names.(slot) ^ "_dot"
  else Printf.sprintf "partial_%d" (slot - dim)

type emitter = {
  lines : Buffer.t;
  mutable n_lines : int;
  mutable n_decls : int;
  mutable n_stmts : int;
}

let emitter () =
  { lines = Buffer.create 4096; n_lines = 0; n_decls = 0; n_stmts = 0 }

let line em s =
  Buffer.add_string em.lines s;
  Buffer.add_char em.lines '\n';
  em.n_lines <- em.n_lines + 1

let decl em s =
  line em s;
  em.n_decls <- em.n_decls + 1

let stmt em s =
  line em s;
  em.n_stmts <- em.n_stmts + 1

let generate ~mode (plan : Partition.plan) ~state_names ~initial ~model_name =
  let dim = plan.dim in
  let info = Comm_analysis.analyse plan ~state_names in
  let blocks =
    match mode with
    | Parallel ->
        Array.to_list plan.tasks
        |> List.map (fun (tk : Partition.task) ->
               let targets =
                 List.map
                   (fun (s, e) -> (slot_name dim state_names s, e))
                   tk.roots
               in
               ( tk,
                 Cse.eliminate ~prefix:(Printf.sprintf "cse$%d$" tk.tid)
                   targets ))
    | Serial ->
        let all_roots =
          Array.to_list plan.tasks
          |> List.concat_map (fun (tk : Partition.task) ->
                 List.map
                   (fun (s, e) -> (slot_name dim state_names s, e))
                   tk.roots)
        in
        let merged : Partition.task =
          { tid = 0; label = "serial"; roots = [] }
        in
        [ (merged, Cse.eliminate ~prefix:"cse$g$" all_roots) ]
  in
  let cse_count =
    List.fold_left (fun acc (_, b) -> acc + Cse.temp_count b) 0 blocks
  in
  let var_name = mangle in
  let em = emitter () in
  line em ("/* Generated C RHS code for model " ^ model_name ^ " */");
  line em "#include <math.h>";
  line em "";
  line em "static double om_sign(double x)";
  line em "{ return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0); }";
  line em "";
  (match mode with
  | Parallel ->
      line em
        (Printf.sprintf
           "void rhs(int workerid, const double yin[%d], double yout[%d])"
           (dim + 1)
           (Partition.n_slots plan))
  | Serial ->
      line em
        (Printf.sprintf
           "void rhs(double t, const double yin[%d], double yout[%d])" dim
           dim));
  line em "{";
  let emit_block indent (tk : Partition.task) (block : Cse.block) =
    List.iter
      (fun i ->
        decl em
          (Printf.sprintf "%sconst double %s = yin[%d];" indent
             (mangle state_names.(i))
             i))
      info.reads.(tk.tid);
    (match mode with
    | Parallel ->
        decl em (Printf.sprintf "%sconst double t = yin[%d];" indent dim)
    | Serial -> ());
    List.iter
      (fun (b : Cse.binding) ->
        stmt em
          (Printf.sprintf "%sconst double %s = %s;" indent (mangle b.name)
             (expr_to_c var_name b.expr)))
      block.temps;
    List.iter
      (fun (target, e) ->
        stmt em
          (Printf.sprintf "%sconst double %s = %s;" indent (mangle target)
             (expr_to_c var_name e)))
      block.roots;
    List.iter
      (fun (slot, _) ->
        stmt em
          (Printf.sprintf "%syout[%d] = %s;" indent slot
             (slot_name dim state_names slot)))
      tk.roots
  in
  (match mode with
  | Parallel ->
      line em "  switch (workerid) {";
      List.iter
        (fun (tk, block) ->
          line em (Printf.sprintf "  case %d: {" tk.Partition.tid);
          emit_block "    " tk block;
          line em "    break;";
          line em "  }")
        blocks;
      line em "  }"
  | Serial -> (
      match blocks with
      | [ (_, block) ] ->
          Array.iteri
            (fun i n ->
              decl em
                (Printf.sprintf "  const double %s = yin[%d];" (mangle n) i))
            state_names;
          line em "  (void)t;";
          List.iter
            (fun (b : Cse.binding) ->
              stmt em
                (Printf.sprintf "  const double %s = %s;" (mangle b.name)
                   (expr_to_c var_name b.expr)))
            block.temps;
          List.iter
            (fun (target, e) ->
              stmt em
                (Printf.sprintf "  const double %s = %s;" (mangle target)
                   (expr_to_c var_name e)))
            block.roots;
          List.iter
            (fun (deriv, slots) ->
              stmt em
                (Printf.sprintf "  const double %s = %s;"
                   (slot_name dim state_names deriv)
                   (String.concat " + "
                      (List.map (slot_name dim state_names) slots))))
            plan.epilogue;
          Array.iteri
            (fun i _ ->
              stmt em
                (Printf.sprintf "  yout[%d] = %s;" i
                   (slot_name dim state_names i)))
            state_names
      | _ -> assert false));
  line em "}";
  line em "";
  (match mode with
  | Parallel ->
      line em
        (Printf.sprintf "void gather_epilogue(double yout[%d])"
           (Partition.n_slots plan));
      line em "{";
      List.iter
        (fun (deriv, slots) ->
          stmt em
            (Printf.sprintf "  yout[%d] = %s;" deriv
               (String.concat " + "
                  (List.map (fun s -> Printf.sprintf "yout[%d]" s) slots))))
        plan.epilogue;
      line em "}";
      line em ""
  | Serial -> ());
  line em (Printf.sprintf "void init_state(double y[%d])" dim);
  line em "{";
  Array.iteri
    (fun i x -> stmt em (Printf.sprintf "  y[%d] = %s;" i (float_literal x)))
    initial;
  line em "}";
  {
    code = Buffer.contents em.lines;
    total_lines = em.n_lines;
    declaration_lines = em.n_decls;
    statement_lines = em.n_stmts;
    cse_count;
  }
