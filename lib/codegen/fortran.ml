module E = Om_expr.Expr

type source = {
  code : string;
  total_lines : int;
  declaration_lines : int;
  statement_lines : int;
  cse_count : int;
}

type mode = Parallel | Serial

let mangle s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '.' -> Buffer.add_string buf "__"
      | '[' -> Buffer.add_char buf '_'
      | ']' -> ()
      | '$' -> Buffer.add_char buf '_'
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_literal x =
  let s = Printf.sprintf "%.17g" x in
  if String.contains s 'e' then
    String.map (fun c -> if c = 'e' then 'd' else c) s
  else if String.contains s '.' then s ^ "d0"
  else s ^ ".0d0"

let fortran_func : E.func -> string = function
  | Sin -> "sin"
  | Cos -> "cos"
  | Tan -> "tan"
  | Asin -> "asin"
  | Acos -> "acos"
  | Atan -> "atan"
  | Sinh -> "sinh"
  | Cosh -> "cosh"
  | Tanh -> "tanh"
  | Exp -> "exp"
  | Log -> "log"
  | Sqrt -> "sqrt"
  | Abs -> "abs"
  | Sign -> "omsign"
  | Atan2 -> "atan2"
  | Min -> "min"
  | Max -> "max"
  | Hypot -> "omhypot"

(* Precedence: 1 sum, 2 product, 3 unary minus, 4 power, 5 atom. *)
let expr_to_fortran var_name e =
  let buf = Buffer.create 128 in
  let rec emit prec e =
    let paren p f =
      if prec > p then begin
        Buffer.add_char buf '(';
        f ();
        Buffer.add_char buf ')'
      end
      else f ()
    in
    match e with
    | E.Const x ->
        if x < 0. then paren 2 (fun () -> Buffer.add_string buf (float_literal x))
        else Buffer.add_string buf (float_literal x)
    | E.Var v -> Buffer.add_string buf (var_name v)
    | E.Add terms ->
        paren 1 (fun () ->
            List.iteri
              (fun i t ->
                if i > 0 then Buffer.add_string buf " + ";
                emit 2 t)
              terms)
    | E.Mul (E.Const (-1.) :: rest) when rest <> [] ->
        paren 3 (fun () ->
            Buffer.add_char buf '-';
            emit 4 (E.mul rest))
    | E.Mul factors ->
        paren 2 (fun () ->
            List.iteri
              (fun i f ->
                if i > 0 then Buffer.add_char buf '*';
                emit 4 f)
              factors)
    | E.Pow (b, E.Const n) when Float.is_integer n && Float.abs n < 1e9 ->
        paren 4 (fun () ->
            emit 5 b;
            Buffer.add_string buf
              (Printf.sprintf "**(%d)" (int_of_float n)))
    | E.Pow (b, ex) ->
        paren 4 (fun () ->
            emit 5 b;
            Buffer.add_string buf "**(";
            emit 1 ex;
            Buffer.add_char buf ')')
    | E.Call (f, args) ->
        Buffer.add_string buf (fortran_func f);
        Buffer.add_char buf '(';
        List.iteri
          (fun i a ->
            if i > 0 then Buffer.add_string buf ", ";
            emit 1 a)
          args;
        Buffer.add_char buf ')'
    | E.If (c, t, e') ->
        (* merge(tsource, fsource, mask) evaluates eagerly, which is fine
           for generated expression code. *)
        Buffer.add_string buf "merge(";
        emit 1 t;
        Buffer.add_string buf ", ";
        emit 1 e';
        Buffer.add_string buf ", ";
        emit 1 c.lhs;
        Buffer.add_string buf
          (match c.rel with
          | E.Lt -> " < "
          | E.Le -> " <= "
          | E.Gt -> " > "
          | E.Ge -> " >= ");
        emit 1 c.rhs;
        Buffer.add_char buf ')'
  in
  emit 0 e;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

type emitter = {
  lines : Buffer.t;
  mutable n_lines : int;
  mutable n_decls : int;
  mutable n_stmts : int;
}

let emitter () =
  { lines = Buffer.create 4096; n_lines = 0; n_decls = 0; n_stmts = 0 }

let line em s =
  Buffer.add_string em.lines s;
  Buffer.add_char em.lines '\n';
  em.n_lines <- em.n_lines + 1

let decl em s =
  line em s;
  em.n_decls <- em.n_decls + 1

(* Fortran 90 free-form lines are wrapped at 72 columns with a trailing
   '&'; each physical line counts toward the totals, the way the paper's
   10 913-line figure counts its generated code. *)
let wrap_width = 72

let stmt em s =
  let indent =
    let rec spaces i = if i < String.length s && s.[i] = ' ' then spaces (i + 1) else i in
    String.make (min (spaces 0 + 4) 20) ' '
  in
  (* Continuation lines carry a leading '&' so that even mid-token cuts
     are legal free-form Fortran (trailing '&' + leading '&'). *)
  let cont_prefix = indent ^ "&" in
  let rec emit_chunk text first =
    let prefix = if first then "" else cont_prefix in
    if String.length prefix + String.length text <= wrap_width then
      line em (prefix ^ text)
    else begin
      let budget = wrap_width - String.length prefix - 2 in
      (* Prefer cutting at a space before the limit; otherwise cut hard
         inside the token (legal thanks to the leading '&'). *)
      let cut = ref (min budget (String.length text - 1)) in
      while !cut > 0 && text.[!cut] <> ' ' do
        decr cut
      done;
      let at, skip = if !cut > 0 then (!cut, 1) else (budget, 0) in
      let head = String.sub text 0 at in
      let tail = String.sub text (at + skip) (String.length text - at - skip) in
      line em (prefix ^ head ^ " &");
      emit_chunk tail false
    end
  in
  emit_chunk s true;
  em.n_stmts <- em.n_stmts + 1

let slot_name dim state_names slot =
  if slot < dim then mangle state_names.(slot) ^ "_dot"
  else Printf.sprintf "partial_%d" (slot - dim)

let generate ~mode (plan : Partition.plan) ~state_names ~initial ~model_name =
  let dim = plan.dim in
  let info = Comm_analysis.analyse plan ~state_names in
  let blocks =
    match mode with
    | Parallel ->
        Array.to_list plan.tasks
        |> List.map (fun (tk : Partition.task) ->
               let targets =
                 List.map
                   (fun (s, e) -> (slot_name dim state_names s, e))
                   tk.roots
               in
               let block =
                 Cse.eliminate ~prefix:(Printf.sprintf "cse$%d$" tk.tid)
                   targets
               in
               (tk, block))
    | Serial ->
        let all_roots =
          Array.to_list plan.tasks
          |> List.concat_map (fun (tk : Partition.task) ->
                 List.map
                   (fun (s, e) -> (slot_name dim state_names s, e))
                   tk.roots)
        in
        let block = Cse.eliminate ~prefix:"cse$g$" all_roots in
        let merged : Partition.task =
          { tid = 0; label = "serial"; roots = [] }
        in
        [ (merged, block) ]
  in
  let cse_count =
    List.fold_left (fun acc (_, b) -> acc + Cse.temp_count b) 0 blocks
  in
  let var_name v = mangle v in
  let em = emitter () in
  line em ("! Generated Fortran 90 RHS code for model " ^ model_name);
  line em "! ObjectMath reproduction code generator";
  line em "module rhs_mod";
  line em "  implicit none";
  line em "  integer, parameter :: dp = kind(1.0d0)";
  line em "contains";
  line em "";
  (* The RHS subroutine. *)
  (match mode with
  | Parallel ->
      line em "  subroutine RHS(workerid, yin, yout)";
      line em "    integer, intent(in) :: workerid";
      line em (Printf.sprintf "    real(dp), intent(in) :: yin(%d)" (dim + 1));
      line em
        (Printf.sprintf "    real(dp), intent(inout) :: yout(%d)"
           (Partition.n_slots plan))
  | Serial ->
      line em "  subroutine RHS(t, yin, yout)";
      line em "    real(dp), intent(in) :: t";
      line em (Printf.sprintf "    real(dp), intent(in) :: yin(%d)" dim);
      line em (Printf.sprintf "    real(dp), intent(inout) :: yout(%d)" dim));
  (* Declarations: every local used anywhere in the body, one per line —
     this is what makes 43% of the generated lines in the paper. *)
  let declared = Hashtbl.create 256 in
  let declare n =
    if not (Hashtbl.mem declared n) then begin
      Hashtbl.add declared n ();
      decl em (Printf.sprintf "    real(dp) :: %s" n)
    end
  in
  (match mode with
  | Parallel -> declare "t"
  | Serial -> ());
  List.iter
    (fun ((tk : Partition.task), (block : Cse.block)) ->
      List.iter (fun i -> declare (mangle state_names.(i))) info.reads.(tk.tid);
      List.iter (fun (b : Cse.binding) -> declare (mangle b.name)) block.temps;
      List.iter (fun (target, _) -> declare (mangle target)) block.roots)
    blocks;
  (match mode with
  | Serial ->
      (* Serial code also evaluates the partials and the epilogue. *)
      List.iter
        (fun (_, slots) ->
          List.iter (fun s -> declare (slot_name dim state_names s)) slots)
        plan.epilogue
  | Parallel -> ());
  let emit_block indent (tk : Partition.task) (block : Cse.block) =
    (* Loads. *)
    List.iter
      (fun i ->
        stmt em
          (Printf.sprintf "%s%s = yin(%d)" indent
             (mangle state_names.(i))
             (i + 1)))
      info.reads.(tk.tid);
    (match mode with
    | Parallel -> stmt em (Printf.sprintf "%st = yin(%d)" indent (dim + 1))
    | Serial -> ());
    (* Temporaries. *)
    List.iter
      (fun (b : Cse.binding) ->
        stmt em
          (Printf.sprintf "%s%s = %s" indent (mangle b.name)
             (expr_to_fortran var_name b.expr)))
      block.temps;
    (* Outputs. *)
    List.iter
      (fun (target, e) ->
        stmt em
          (Printf.sprintf "%s%s = %s" indent (mangle target)
             (expr_to_fortran var_name e)))
      block.roots;
    List.iter
      (fun (slot, _) ->
        stmt em
          (Printf.sprintf "%syout(%d) = %s" indent (slot + 1)
             (slot_name dim state_names slot)))
      tk.roots
  in
  (match mode with
  | Parallel ->
      line em "    select case (workerid)";
      List.iter
        (fun ((tk : Partition.task), block) ->
          line em (Printf.sprintf "    case (%d)" (tk.tid + 1));
          emit_block "      " tk block)
        blocks;
      line em "    end select"
  | Serial -> (
      match blocks with
      | [ (_, block) ] ->
          (* Loads for every state. *)
          Array.iteri
            (fun i n ->
              stmt em (Printf.sprintf "    %s = yin(%d)" (mangle n) (i + 1)))
            state_names;
          List.iter
            (fun (b : Cse.binding) ->
              stmt em
                (Printf.sprintf "    %s = %s" (mangle b.name)
                   (expr_to_fortran var_name b.expr)))
            block.temps;
          List.iter
            (fun (target, e) ->
              stmt em
                (Printf.sprintf "    %s = %s" (mangle target)
                   (expr_to_fortran var_name e)))
            block.roots;
          (* Epilogue: fold partials into derivatives, then store. *)
          List.iter
            (fun (deriv, slots) ->
              stmt em
                (Printf.sprintf "    %s = %s"
                   (slot_name dim state_names deriv)
                   (String.concat " + "
                      (List.map (slot_name dim state_names) slots))))
            plan.epilogue;
          Array.iteri
            (fun i n ->
              ignore n;
              stmt em
                (Printf.sprintf "    yout(%d) = %s" (i + 1)
                   (slot_name dim state_names i)))
            state_names
      | _ -> assert false));
  line em "  end subroutine RHS";
  line em "";
  (match mode with
  | Parallel ->
      (* Supervisor-side gather epilogue. *)
      line em "  subroutine gather_epilogue(yout)";
      line em
        (Printf.sprintf "    real(dp), intent(inout) :: yout(%d)"
           (Partition.n_slots plan));
      List.iter
        (fun (deriv, slots) ->
          stmt em
            (Printf.sprintf "    yout(%d) = %s" (deriv + 1)
               (String.concat " + "
                  (List.map (fun s -> Printf.sprintf "yout(%d)" (s + 1)) slots))))
        plan.epilogue;
      line em "  end subroutine gather_epilogue";
      line em ""
  | Serial -> ());
  (* Start values (§3.2: generated so the model's variable names are
     usable, plus a reader so runs need no recompilation). *)
  line em "  subroutine init_state(y)";
  line em (Printf.sprintf "    real(dp), intent(out) :: y(%d)" dim);
  Array.iteri
    (fun i x ->
      stmt em (Printf.sprintf "    y(%d) = %s" (i + 1) (float_literal x)))
    initial;
  line em "  end subroutine init_state";
  line em "";
  line em "  subroutine read_start_values(unitno, y)";
  line em "    integer, intent(in) :: unitno";
  line em (Printf.sprintf "    real(dp), intent(out) :: y(%d)" dim);
  line em "    integer :: i";
  line em (Printf.sprintf "    do i = 1, %d" dim);
  line em "      read(unitno, *) y(i)";
  line em "    end do";
  line em "  end subroutine read_start_values";
  line em "";
  line em "  pure function omsign(x) result(s)";
  line em "    real(dp), intent(in) :: x";
  line em "    real(dp) :: s";
  line em "    if (x > 0.0d0) then";
  line em "      s = 1.0d0";
  line em "    else if (x < 0.0d0) then";
  line em "      s = -1.0d0";
  line em "    else";
  line em "      s = 0.0d0";
  line em "    end if";
  line em "  end function omsign";
  line em "";
  line em "  pure function omhypot(x, y) result(h)";
  line em "    real(dp), intent(in) :: x, y";
  line em "    real(dp) :: h";
  line em "    h = sqrt(x*x + y*y)";
  line em "  end function omhypot";
  line em "end module rhs_mod";
  {
    code = Buffer.contents em.lines;
    total_lines = em.n_lines;
    declaration_lines = em.n_decls;
    statement_lines = em.n_stmts;
    cse_count;
  }
