(* Batched execution of a compiled bytecode backend: the same task and
   epilogue register programs, reinterpreted over structure-of-arrays
   lanes by {!Om_expr.Vm_batch}.  Per lane the semantics are exactly
   {!Bytecode_backend.rhs_fn} — set state, run every task in order, run
   the epilogue, copy the derivative slots out. *)

module Bb = Bytecode_backend
module Vb = Om_expr.Vm_batch

type t = {
  dim : int;
  width : int;
  env : float array array; (* env_size x width: states, t, CSE temps *)
  out : float array array; (* n_slots x width *)
  tasks : Vb.t array;
  epilogue : Vb.t option;
}

let task_program (tk : Bb.compiled_task) =
  match tk.program with
  | Some p -> p
  | None ->
      invalid_arg "Batch_backend.create: task without a VM program"

let create (c : Bb.t) ~width =
  if c.backend <> Bb.Exec_vm then
    invalid_arg "Batch_backend.create: requires the Exec_vm backend";
  if width < 1 then invalid_arg "Batch_backend.create: width < 1";
  let progs = Array.map task_program c.tasks in
  let env_size =
    Array.fold_left
      (fun m p -> max m (Om_expr.Vm.raw p).rw_env_size)
      (c.dim + 1) progs
  in
  {
    dim = c.dim;
    width;
    env = Array.init env_size (fun _ -> Array.make width 0.);
    out = Array.init c.n_slots (fun _ -> Array.make width 0.);
    tasks = Array.map (Vb.create ~width) progs;
    epilogue = Option.map (Vb.create ~width) c.epilogue_program;
  }

(* Fresh SoA columns and Vm_batch scratch over the shared conditioned
   instruction streams — no recompaction/refusion, so per-job cloning
   stays cheap. *)
let clone_scratch t =
  {
    t with
    env = Array.init (Array.length t.env) (fun _ -> Array.make t.width 0.);
    out = Array.init (Array.length t.out) (fun _ -> Array.make t.width 0.);
    tasks = Array.map Vb.clone_scratch t.tasks;
    epilogue = Option.map Vb.clone_scratch t.epilogue;
  }

let width t = t.width
let dim t = t.dim

let brhs t ~times ~y ~ydot ~lo ~hi =
  let n = hi - lo in
  for i = 0 to t.dim - 1 do
    Array.blit y.(i) lo t.env.(i) lo n
  done;
  Array.blit times lo t.env.(t.dim) lo n;
  let tasks = t.tasks in
  for ti = 0 to Array.length tasks - 1 do
    Vb.exec tasks.(ti) ~env:t.env ~out:t.out ~lo ~hi
  done;
  (match t.epilogue with
  | Some ep -> Vb.exec ep ~env:t.env ~out:t.out ~lo ~hi
  | None -> ());
  for i = 0 to t.dim - 1 do
    Array.blit t.out.(i) lo ydot.(i) lo n
  done
