(** Equations to assignments.

    Paper §3.1: "Various transformations are done, including removing the
    derivatives and replacing the equations by assignments, where the
    right-hand sides are the right-hand sides from the equations."  Each
    first-order ODE [x'(t) = rhs] becomes the assignment
    [x$dot := rhs]. *)

type t = {
  state : string;  (** the differentiated state variable *)
  target : string;  (** the derivative variable, [state ^ "$dot"] *)
  state_index : int;  (** position in the model's state vector *)
  rhs : Om_expr.Expr.t;
}

val of_flat_model : Om_lang.Flat_model.t -> t array

val target_of_state : string -> string

val cost : t -> float
(** Mean-branch static flop estimate of the right-hand side. *)
