(** Generated Jacobian code.

    Paper §3.2.1: "There is also a possibility for the user to provide the
    solver with an extra function that computes the Jacobian, instead of
    having the solver doing it internally (which is usually very
    expensive).  If the user can provide this function the computation
    time might be reduced drastically."

    This module derives the sparse Jacobian [df_i/dy_j] of a flat model
    symbolically, shares work across entries with CSE, and provides both
    an executable closure (for {!Om_ode.Odesys.t}) and Fortran 90 text. *)

type t = {
  dim : int;
  entries : (int * int * Om_expr.Expr.t) list;
      (** nonzero entries [(row, col, expr)]; row = equation, col = state *)
  block : Cse.block;
      (** CSE'd computation; root targets are ["j$<row>$<col>"] *)
}

val generate : Om_lang.Flat_model.t -> t
(** Differentiate every right-hand side with respect to every state it
    mentions; structurally-zero entries are dropped. *)

val nonzero_count : t -> int

val density : t -> float
(** Fraction of structurally nonzero entries. *)

val flops : t -> float
(** Mean-branch flop cost of one Jacobian evaluation through the CSE'd
    block (compare with [dim + 1] RHS evaluations for the numeric
    difference approximation). *)

val compile :
  t -> state_names:string array ->
  float -> float array -> Om_ode.Linalg.mat -> unit
(** Executable form, suitable for [Odesys.make ~jac]. *)

val pattern : t -> Om_ode.Sparse.pattern
(** CSR sparsity pattern of the structurally nonzero entries (those whose
    symbolic derivative is not identically zero). *)

val compile_values :
  t ->
  state_names:string array ->
  Om_ode.Sparse.pattern * (float -> float array -> float array -> unit)
(** Compressed executable form: the pattern together with a closure
    writing the entry values in the pattern's CSR order, suitable for
    [Odesys.make ~sparsity ~sjac].  Shares the CSE'd block with
    {!compile}, so dense and compressed evaluations are bitwise equal
    entry for entry. *)

val to_odesys : Om_lang.Flat_model.t -> Om_ode.Odesys.t
(** Build an ODE system whose RHS is the direct evaluation of the model
    and whose Jacobian is the generated sparse code — attached both as a
    dense writer ([jac]) and as a compressed-column pair
    ([sparsity]/[sjac]), so every {!Odesys.jac_mode} is available. *)

val fortran : t -> state_names:string array -> model_name:string -> Fortran.source
(** A [subroutine JAC(t, yin, pd)] filling the dense matrix [pd]
    (column-major, the LSODA convention), zeros included once at the
    top. *)
