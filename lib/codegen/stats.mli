(** Code-generation statistics — the quantities §3.3 reports for the 2D
    bearing (source lines → intermediate-form lines → generated lines,
    declaration share, and CSE counts in parallel vs. serial scope). *)

type t = {
  model_name : string;
  source_lines : int option;
  n_classes : int option;
  n_instances : int option;
  n_equations : int;
  n_tasks : int;
  n_partials : int;
  intermediate_lines : int;
  fortran_parallel_lines : int;
  fortran_parallel_decls : int;
  fortran_serial_lines : int;
  fortran_serial_decls : int;
  c_parallel_lines : int;
  mathematica_lines : int;
  jacobian_nonzeros : int;
  jacobian_lines : int;
  cse_parallel : int;  (** temporaries with per-task CSE *)
  cse_serial : int;  (** temporaries with global CSE *)
  total_rhs_flops : float;
  vm_instructions : int;
      (** static register-VM instructions across tasks + epilogue *)
  vm_fused : int;  (** fused instructions after the peephole pass *)
  vm_flops : float;  (** static flop units of the VM code *)
}

val collect : ?source:string -> Pipeline.result -> t
(** Renders both Fortran modes (and parallel C) to count lines; [source]
    is the ObjectMath model text, used for the source-line count. *)

val pp : t Fmt.t
(** Paper-style summary table. *)

val count_lines : string -> int
