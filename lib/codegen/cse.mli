(** Common subexpression elimination.

    The code generator runs CSE in two scopes (paper §3.3): per task for
    parallel code, where "no subexpressions are shared between the tasks",
    and globally for serial code, where "different equations having several
    large subexpressions in common" shrink the program substantially
    (4 642 extracted subexpressions per-equation vs. 1 840 globally for the
    2D bearing). *)

type binding = { name : string; expr : Om_expr.Expr.t }

type block = {
  temps : binding list;
      (** temporaries in evaluation order; each refers only to model
          variables, time, and earlier temps *)
  roots : (string * Om_expr.Expr.t) list;
      (** the original targets, rewritten to use the temps *)
}

val eliminate :
  ?min_size:int ->
  ?min_count:int ->
  ?prefix:string ->
  (string * Om_expr.Expr.t) list ->
  block
(** Extract every subexpression of at least [min_size] nodes (default 3)
    occurring at least [min_count] times (default 2) across the given
    target/expression pairs.  Temporary names are [prefix ^ string_of_int i]
    (default prefix ["cse$"]). *)

val temp_count : block -> int

val block_cost : block -> float
(** Mean-branch flop cost of evaluating all temps then all roots. *)

val inline : block -> (string * Om_expr.Expr.t) list
(** Substitute the temps back into the roots (inverse of {!eliminate},
    up to smart-constructor normalisation).  Used by tests. *)

val verify_no_forward_refs : block -> bool
(** Every temp refers only to earlier temps. *)
