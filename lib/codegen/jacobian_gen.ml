module E = Om_expr.Expr

type t = {
  dim : int;
  entries : (int * int * E.t) list;
  block : Cse.block;
}

let target row col = Printf.sprintf "j$%d$%d" row col

let target_coords s =
  match String.split_on_char '$' s with
  | [ "j"; r; c ] -> (int_of_string r, int_of_string c)
  | _ -> invalid_arg "Jacobian_gen: bad target"

let generate (m : Om_lang.Flat_model.t) =
  let states = Array.of_list (List.map fst m.states) in
  let index = Hashtbl.create 64 in
  Array.iteri (fun i s -> Hashtbl.replace index s i) states;
  let entries =
    List.concat
      (List.mapi
         (fun row (_, rhs) ->
           (* Only differentiate with respect to states that actually
              occur: the rest are structural zeros. *)
           List.filter_map
             (fun v ->
               match Hashtbl.find_opt index v with
               | None -> None
               | Some col ->
                   let d = Om_expr.Deriv.diff v rhs in
                   if E.equal d E.zero then None else Some (row, col, d))
             (E.vars rhs))
         m.equations)
  in
  let targets =
    List.map (fun (r, c, e) -> (target r c, e)) entries
  in
  let block = Cse.eliminate ~prefix:"jcse$" targets in
  { dim = Array.length states; entries; block }

let nonzero_count t = List.length t.entries

let density t =
  if t.dim = 0 then 0.
  else float_of_int (nonzero_count t) /. float_of_int (t.dim * t.dim)

let flops t = Cse.block_cost t.block

let compile t ~state_names =
  let dim = t.dim in
  if Array.length state_names <> dim then
    invalid_arg "Jacobian_gen.compile: state_names length mismatch";
  let temp_names =
    List.map (fun (b : Cse.binding) -> b.name) t.block.temps
  in
  let names =
    Array.concat [ state_names; [| "t" |]; Array.of_list temp_names ]
  in
  let env = Array.make (Array.length names) 0. in
  let slot_of =
    let h = Hashtbl.create 64 in
    Array.iteri (fun i n -> Hashtbl.replace h n i) names;
    Hashtbl.find h
  in
  let temp_steps =
    List.map
      (fun (b : Cse.binding) ->
        (slot_of b.name, Om_expr.Eval.eval_fn names b.expr))
      t.block.temps
  in
  let root_steps =
    List.map
      (fun (tgt, e) ->
        let r, c = target_coords tgt in
        (r, c, Om_expr.Eval.eval_fn names e))
      t.block.roots
  in
  fun time y (m : Om_ode.Linalg.mat) ->
    Array.blit y 0 env 0 dim;
    env.(dim) <- time;
    List.iter (fun (slot, f) -> env.(slot) <- f env) temp_steps;
    Array.iter (fun row -> Array.fill row 0 dim 0.) m;
    List.iter (fun (r, c, f) -> m.(r).(c) <- f env) root_steps

let pattern t =
  Om_ode.Sparse.pattern_of_entries ~rows:t.dim ~cols:t.dim
    (List.map (fun (r, c, _) -> (r, c)) t.entries)

let compile_values t ~state_names =
  let dim = t.dim in
  if Array.length state_names <> dim then
    invalid_arg "Jacobian_gen.compile_values: state_names length mismatch";
  let pat = pattern t in
  let temp_names =
    List.map (fun (b : Cse.binding) -> b.name) t.block.temps
  in
  let names =
    Array.concat [ state_names; [| "t" |]; Array.of_list temp_names ]
  in
  let env = Array.make (Array.length names) 0. in
  let slot_of =
    let h = Hashtbl.create 64 in
    Array.iteri (fun i n -> Hashtbl.replace h n i) names;
    Hashtbl.find h
  in
  let temp_steps =
    List.map
      (fun (b : Cse.binding) ->
        (slot_of b.name, Om_expr.Eval.eval_fn names b.expr))
      t.block.temps
  in
  (* Each root target lands at its compressed slot in [pat]'s CSR value
     order, so the closure matches [Odesys.t.sjac]'s contract. *)
  let root_steps =
    List.map
      (fun (tgt, e) ->
        let r, c = target_coords tgt in
        let k = Om_ode.Sparse.index pat r c in
        assert (k >= 0);
        (k, Om_expr.Eval.eval_fn names e))
      t.block.roots
  in
  let nnz = Om_ode.Sparse.nnz pat in
  let f time y (v : float array) =
    Array.blit y 0 env 0 dim;
    env.(dim) <- time;
    List.iter (fun (slot, f) -> env.(slot) <- f env) temp_steps;
    Array.fill v 0 nnz 0.;
    List.iter (fun (k, f) -> v.(k) <- f env) root_steps
  in
  (pat, f)

let to_odesys (fm : Om_lang.Flat_model.t) =
  let state_names = Om_lang.Flat_model.state_names fm in
  let base =
    Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false fm.equations
  in
  let g = generate fm in
  let jac = compile g ~state_names in
  let sparsity, sjac = compile_values g ~state_names in
  Om_ode.Odesys.make ~names:state_names ~jac ~sparsity ~sjac ~dim:base.dim
    base.f

let fortran t ~state_names ~model_name =
  let buf = Buffer.create 4096 in
  let n_lines = ref 0 in
  let n_decls = ref 0 in
  let n_stmts = ref 0 in
  let line s =
    Buffer.add_string buf s;
    Buffer.add_char buf '\n';
    incr n_lines
  in
  let mangle = Fortran.mangle in
  line ("! Generated Jacobian for model " ^ model_name);
  line "subroutine JAC(t, yin, pd)";
  line "  integer, parameter :: dp = kind(1.0d0)";
  line "  real(dp), intent(in) :: t";
  line (Printf.sprintf "  real(dp), intent(in) :: yin(%d)" t.dim);
  line (Printf.sprintf "  real(dp), intent(out) :: pd(%d,%d)" t.dim t.dim);
  Array.iter
    (fun s ->
      line (Printf.sprintf "  real(dp) :: %s" (mangle s));
      incr n_decls)
    state_names;
  List.iter
    (fun (b : Cse.binding) ->
      line (Printf.sprintf "  real(dp) :: %s" (mangle b.name));
      incr n_decls)
    t.block.temps;
  line "  pd = 0.0d0";
  incr n_stmts;
  Array.iteri
    (fun i s ->
      line (Printf.sprintf "  %s = yin(%d)" (mangle s) (i + 1));
      incr n_stmts)
    state_names;
  List.iter
    (fun (b : Cse.binding) ->
      line
        (Printf.sprintf "  %s = %s" (mangle b.name)
           (Fortran.expr_to_fortran mangle b.expr));
      incr n_stmts)
    t.block.temps;
  List.iter
    (fun (tgt, e) ->
      let r, c = target_coords tgt in
      line
        (Printf.sprintf "  pd(%d,%d) = %s" (r + 1) (c + 1)
           (Fortran.expr_to_fortran mangle e));
      incr n_stmts)
    t.block.roots;
  line "end subroutine JAC";
  {
    Fortran.code = Buffer.contents buf;
    total_lines = !n_lines;
    declaration_lines = !n_decls;
    statement_lines = !n_stmts;
    cse_count = Cse.temp_count t.block;
  }
