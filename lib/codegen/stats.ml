type t = {
  model_name : string;
  source_lines : int option;
  n_classes : int option;
  n_instances : int option;
  n_equations : int;
  n_tasks : int;
  n_partials : int;
  intermediate_lines : int;
  fortran_parallel_lines : int;
  fortran_parallel_decls : int;
  fortran_serial_lines : int;
  fortran_serial_decls : int;
  c_parallel_lines : int;
  mathematica_lines : int;
  jacobian_nonzeros : int;
  jacobian_lines : int;
  cse_parallel : int;
  cse_serial : int;
  total_rhs_flops : float;
  vm_instructions : int;
  vm_fused : int;
  vm_flops : float;
}

let count_lines s =
  if s = "" then 0
  else
    let newlines =
      String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 s
    in
    if s.[String.length s - 1] = '\n' then newlines else newlines + 1

let collect ?source (r : Pipeline.result) =
  let m = r.model in
  let state_names = Om_lang.Flat_model.state_names m in
  let initial = Om_lang.Flat_model.initial_values m in
  let fpar =
    Fortran.generate ~mode:Fortran.Parallel r.plan ~state_names ~initial
      ~model_name:m.name
  in
  let fser =
    Fortran.generate ~mode:Fortran.Serial r.plan ~state_names ~initial
      ~model_name:m.name
  in
  let cpar =
    C_backend.generate ~mode:C_backend.Parallel r.plan ~state_names ~initial
      ~model_name:m.name
  in
  let mma = Mathematica_backend.generate m in
  let jg = Jacobian_gen.generate m in
  let jfor = Jacobian_gen.fortran jg ~state_names ~model_name:m.name in
  let source_info =
    Option.map
      (fun src ->
        let model = Om_lang.Parser.parse_model src in
        ( count_lines src,
          List.length model.classes,
          List.length model.instances ))
      source
  in
  {
    model_name = m.name;
    source_lines = Option.map (fun (l, _, _) -> l) source_info;
    n_classes = Option.map (fun (_, c, _) -> c) source_info;
    n_instances = Option.map (fun (_, _, i) -> i) source_info;
    n_equations = List.length m.equations;
    n_tasks = Array.length r.plan.tasks;
    n_partials = r.plan.n_partials;
    intermediate_lines = Om_lang.Typecheck.intermediate_line_count m;
    fortran_parallel_lines = fpar.total_lines;
    fortran_parallel_decls = fpar.declaration_lines;
    fortran_serial_lines = fser.total_lines;
    fortran_serial_decls = fser.declaration_lines;
    c_parallel_lines = cpar.total_lines;
    mathematica_lines = mma.total_lines;
    jacobian_nonzeros = Jacobian_gen.nonzero_count jg;
    jacobian_lines = jfor.total_lines;
    cse_parallel = fpar.cse_count;
    cse_serial = fser.cse_count;
    total_rhs_flops = Om_lang.Flat_model.total_rhs_flops m;
    vm_instructions = r.compiled.vm_instrs;
    vm_fused = r.compiled.vm_fused;
    vm_flops = r.compiled.vm_flops;
  }

let pp ppf s =
  let opt ppf = function
    | Some v -> Fmt.int ppf v
    | None -> Fmt.string ppf "-"
  in
  Fmt.pf ppf "model %s@." s.model_name;
  Fmt.pf ppf "  source lines               %a@." opt s.source_lines;
  Fmt.pf ppf "  classes / instances        %a / %a@." opt s.n_classes opt
    s.n_instances;
  Fmt.pf ppf "  equations (ODEs)           %d@." s.n_equations;
  Fmt.pf ppf "  tasks (partials)           %d (%d)@." s.n_tasks s.n_partials;
  Fmt.pf ppf "  intermediate-form lines    %d@." s.intermediate_lines;
  Fmt.pf ppf "  F90 parallel lines (decl)  %d (%d)@." s.fortran_parallel_lines
    s.fortran_parallel_decls;
  Fmt.pf ppf "  F90 serial lines (decl)    %d (%d)@." s.fortran_serial_lines
    s.fortran_serial_decls;
  Fmt.pf ppf "  C parallel lines           %d@." s.c_parallel_lines;
  Fmt.pf ppf "  Mathematica lines          %d@." s.mathematica_lines;
  Fmt.pf ppf "  Jacobian nonzeros (lines)  %d (%d)@." s.jacobian_nonzeros
    s.jacobian_lines;
  Fmt.pf ppf "  CSEs parallel / serial     %d / %d@." s.cse_parallel
    s.cse_serial;
  Fmt.pf ppf "  VM instructions (fused)    %d (%d)@." s.vm_instructions
    s.vm_fused;
  Fmt.pf ppf "  VM static flop units       %.0f@." s.vm_flops;
  Fmt.pf ppf "  mean RHS cost (flop units) %.0f@." s.total_rhs_flops
