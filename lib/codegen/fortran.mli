(** Fortran 90 code generation (paper Figure 11).

    The parallel form is one SPMD subroutine [RHS(workerid, yin, yout)]
    whose body is a [select case (workerid)] over the scheduled tasks; each
    case loads the state entries the task reads into named local variables,
    evaluates the task's temporaries and outputs, and stores the results
    into [yout].  "The unnecessary assignments in the generated code will
    be removed by the Fortran compiler by means of optimizations based on
    data flow analysis" — we generate the same redundant load/store style.

    The serial form is a straight-line [RHS(t, yin, yout)] with global CSE.
    Support routines for start values are emitted alongside, as §3.2
    describes. *)

type source = {
  code : string;
  total_lines : int;
  declaration_lines : int;
  statement_lines : int;
  cse_count : int;
}

type mode = Parallel | Serial

val generate :
  mode:mode ->
  Partition.plan ->
  state_names:string array ->
  initial:float array ->
  model_name:string ->
  source

val mangle : string -> string
(** Flattened model names to Fortran identifiers:
    [W[3].phi -> W_3__phi]; injective over the model's name set by
    construction (brackets and dots map to distinct sequences). *)

val expr_to_fortran : (string -> string) -> Om_expr.Expr.t -> string
(** Render an expression with the given variable renderer. *)
