type report = {
  isolated : string list;
  sources : string list;
  sinks : string list;
  largest_scc_share : float;
}

let analyse (m : Om_lang.Flat_model.t) =
  let g = Om_lang.Flat_model.dependency_graph m in
  let comps = Om_graph.Scc.tarjan g in
  let n = Om_graph.Digraph.node_count g in
  let name v = Om_graph.Digraph.label g v in
  let isolated = ref [] and sources = ref [] and sinks = ref [] in
  List.iter
    (fun v ->
      let out_deg =
        List.length (List.filter (fun w -> w <> v) (Om_graph.Digraph.succ g v))
      in
      let in_deg =
        List.length (List.filter (fun w -> w <> v) (Om_graph.Digraph.pred g v))
      in
      if out_deg = 0 && in_deg = 0 then isolated := name v :: !isolated
      else if in_deg = 0 then sources := name v :: !sources
      else if out_deg = 0 then sinks := name v :: !sinks)
    (Om_graph.Digraph.nodes g);
  let largest =
    Array.fold_left
      (fun acc members -> max acc (List.length members))
      0 comps.members
  in
  {
    isolated = List.rev !isolated;
    sources = List.rev !sources;
    sinks = List.rev !sinks;
    largest_scc_share =
      (if n = 0 then 0. else float_of_int largest /. float_of_int n);
  }

let pp ppf r =
  let plist ppf = function
    | [] -> Fmt.string ppf "(none)"
    | l -> Fmt.string ppf (String.concat ", " l)
  in
  Fmt.pf ppf "isolated states:   %a@." plist r.isolated;
  Fmt.pf ppf "driven inputs:     %a@." plist r.sources;
  Fmt.pf ppf "pure observers:    %a@." plist r.sinks;
  Fmt.pf ppf "largest SCC share: %.0f%%@." (100. *. r.largest_scc_share)

let restrict (m : Om_lang.Flat_model.t) ~keep =
  let g = Om_lang.Flat_model.dependency_graph m in
  let index = Hashtbl.create 64 in
  List.iteri (fun i (s, _) -> Hashtbl.replace index s i) m.states;
  let needed = Array.make (Om_graph.Digraph.node_count g) false in
  let rec mark v =
    if not needed.(v) then begin
      needed.(v) <- true;
      (* The equation for v reads its predecessors. *)
      List.iter mark (Om_graph.Digraph.pred g v)
    end
  in
  List.iter
    (fun s ->
      match Hashtbl.find_opt index s with
      | Some v -> mark v
      | None -> invalid_arg ("Diagnostics.restrict: unknown state " ^ s))
    keep;
  let kept i = needed.(i) in
  {
    m with
    states = List.filteri (fun i _ -> kept i) m.states;
    equations = List.filteri (fun i _ -> kept i) m.equations;
  }
