(** Communication analysis (paper §3.2, Figure 9's "Communication
    analysis" box): determine which state-vector entries each task reads
    and which output slots it writes, "to minimize the amount of sent data
    ... to find out which data should be distributed". *)

type info = {
  reads : int list array;  (** per task: state indices consumed *)
  writes : int list array;  (** per task: output slots produced *)
}

val analyse : Partition.plan -> state_names:string array -> info

val read_fraction : info -> dim:int -> float
(** Average fraction of the state vector a task actually reads: the
    saving available to the [Needed_only] message strategy. *)
