(** Batched (SoA) execution of a compiled bytecode backend.

    Wraps the register programs of a {!Bytecode_backend.t} compiled with
    [Exec_vm] into {!Om_expr.Vm_batch} instances sharing one
    structure-of-arrays environment, and exposes the batched right-hand
    side [brhs]: per lane it computes exactly what
    {!Bytecode_backend.rhs_fn} computes (set state, evaluate every task
    in order, run the reduction epilogue, copy derivative slots out) —
    Int64-bitwise, per the {!Om_expr.Vm_batch} contract.

    The [brhs] signature matches {!Ode.Ensemble.brhs}, so a batch
    backend plugs directly into the lockstep ensemble steppers.

    All mutable state (environment columns, output columns, register
    rows) is lane-indexed, so disjoint lane ranges of the same instance
    may be driven concurrently from different domains without cloning.
    [brhs] is allocation-free. *)

type t

val create : Bytecode_backend.t -> width:int -> t
(** @raise Invalid_argument if the backend is not [Exec_vm] or
    [width < 1]. *)

val clone_scratch : t -> t
(** An independent batch instance at the same width: environment and
    output columns plus every {!Om_expr.Vm_batch} register file are
    fresh, while the conditioned instruction streams are shared (they
    are immutable).  Unlike driving disjoint lane ranges of one
    instance, a clone may run {e any} lanes concurrently with the
    original — the per-job isolation the serve layer needs. *)

val width : t -> int
val dim : t -> int

val brhs :
  t ->
  times:float array ->
  y:float array array ->
  ydot:float array array ->
  lo:int ->
  hi:int ->
  unit
(** Evaluate the system derivative for lanes [lo..hi-1]:
    [ydot.(i).(j)] from state columns [y.(i).(j)] at time [times.(j)].
    Lanes outside the range are untouched. *)
