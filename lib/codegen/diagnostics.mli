(** Model diagnostics from the dependency analysis.

    Paper §2.5.1: "the analysis and the visualization of dependencies are
    very helpful tools for the model implementor.  It is easy to find
    missing dependencies or dependencies that should not be there.  Also,
    uninteresting parts of the problem can be removed at an early stage
    so that no computing power is wasted."  This module turns the
    dependency graph into those hints, and implements the removal. *)

type report = {
  isolated : string list;
      (** states with no dependencies in either direction (suspicious:
          often a missing coupling) *)
  sources : string list;
      (** states nothing depends on them {e from} — driven inputs such as
          a prescribed rotation *)
  sinks : string list;
      (** states that influence nothing — pure observers; they can leave
          the hot loop without changing any other trajectory *)
  largest_scc_share : float;
      (** fraction of the equations inside the largest SCC; near 1.0
          means system-level partitioning cannot help (the bearing),
          small means it can (the plant) *)
}

val analyse : Om_lang.Flat_model.t -> report

val pp : report Fmt.t

val restrict :
  Om_lang.Flat_model.t -> keep:string list -> Om_lang.Flat_model.t
(** The sub-model needed to reproduce the trajectories of [keep]: the
    backward-reachable closure of the dependency graph.  Every kept
    state's equation is unchanged, so the restricted model integrates to
    exactly the same values for those states.
    @raise Invalid_argument if a name in [keep] is not a state. *)
