type info = {
  reads : int list array;
  writes : int list array;
}

let analyse (plan : Partition.plan) ~state_names =
  let index = Hashtbl.create 64 in
  Array.iteri (fun i n -> Hashtbl.replace index n i) state_names;
  let task_reads (t : Partition.task) =
    let module Iset = Set.Make (Int) in
    List.fold_left
      (fun acc (_, e) ->
        List.fold_left
          (fun acc v ->
            match Hashtbl.find_opt index v with
            | Some i -> Iset.add i acc
            | None -> acc)
          acc
          (Om_expr.Expr.vars e))
      Iset.empty t.roots
    |> Iset.elements
  in
  {
    reads = Array.map task_reads plan.tasks;
    writes =
      Array.map
        (fun (t : Partition.task) -> List.map fst t.roots)
        plan.tasks;
  }

let read_fraction info ~dim =
  let n = Array.length info.reads in
  if n = 0 || dim = 0 then 0.
  else
    Array.fold_left
      (fun acc r -> acc +. (float_of_int (List.length r) /. float_of_int dim))
      0. info.reads
    /. float_of_int n
