type cse_scope = Cse_none | Cse_per_task | Cse_global
type exec_backend = Exec_closures | Exec_vm

type compiled_task = {
  id : int;
  label : string;
  eval : unit -> unit;
  measured_eval : unit -> float;
  static_cost : float;
  reads : int list;
  writes : int list;
  program : Om_expr.Vm.program option;
}

type t = {
  dim : int;
  n_slots : int;
  tasks : compiled_task array;
  set_state : float -> float array -> unit;
  out : float array;
  run_epilogue : unit -> unit;
  epilogue_program : Om_expr.Vm.program option;
  epilogue_flops : float;
  state_names : string array;
  cse_temp_total : int;
  backend : exec_backend;
  vm_instrs : int;
  vm_flops : float;
  vm_fused : int;
  fresh_scratch : unit -> t;
}

let slot_target slot = Printf.sprintf "slot$%d" slot

let slot_of_target s =
  match String.index_opt s '$' with
  | Some i ->
      int_of_string (String.sub s (i + 1) (String.length s - i - 1))
  | None -> invalid_arg "Bytecode_backend: bad slot target"

let no_env = [||]

let compile ?(scope = Cse_per_task) ?(backend = Exec_vm) ?(optimize = true)
    (plan : Partition.plan) ~state_names =
  let dim = plan.dim in
  if Array.length state_names <> dim then
    invalid_arg "Bytecode_backend.compile: state_names length mismatch";
  let info = Comm_analysis.analyse plan ~state_names in
  (* One CSE block per compiled task. *)
  let blocks =
    match scope with
    | Cse_none ->
        Array.to_list plan.tasks
        |> List.map (fun (tk : Partition.task) ->
               let targets =
                 List.map (fun (s, e) -> (slot_target s, e)) tk.roots
               in
               ( tk.tid,
                 tk.label,
                 { Cse.temps = []; roots = targets },
                 info.reads.(tk.tid),
                 info.writes.(tk.tid) ))
    | Cse_per_task ->
        Array.to_list plan.tasks
        |> List.map (fun (tk : Partition.task) ->
               let targets =
                 List.map (fun (s, e) -> (slot_target s, e)) tk.roots
               in
               let block =
                 Cse.eliminate
                   ~prefix:(Printf.sprintf "cse$%d$" tk.tid)
                   targets
               in
               (tk.tid, tk.label, block, info.reads.(tk.tid),
                info.writes.(tk.tid)))
    | Cse_global ->
        let targets =
          Array.to_list plan.tasks
          |> List.concat_map (fun (tk : Partition.task) ->
                 List.map (fun (s, e) -> (slot_target s, e)) tk.roots)
        in
        let block = Cse.eliminate ~prefix:"cse$g$" targets in
        let module Iset = Set.Make (Int) in
        let union a =
          Array.fold_left
            (fun acc l -> List.fold_left (fun s x -> Iset.add x s) acc l)
            Iset.empty a
          |> Iset.elements
        in
        [ (0, "serial", block, union info.reads, union info.writes) ]
  in
  (* Environment: states, time, then every temp of every block. *)
  let temp_names =
    List.concat_map
      (fun (_, _, (b : Cse.block), _, _) ->
        List.map (fun (t : Cse.binding) -> t.name) b.temps)
      blocks
  in
  let names =
    Array.concat
      [ state_names; [| "t" |]; Array.of_list temp_names ]
  in
  let env_size = Array.length names in
  let slot_of_name =
    let h = Hashtbl.create 64 in
    Array.iteri (fun i n -> Hashtbl.replace h n i) names;
    fun n ->
      match Hashtbl.find_opt h n with
      | Some i -> i
      | None -> invalid_arg ("Bytecode_backend: unknown name " ^ n)
  in
  let out_size = Partition.n_slots plan in
  (* Pure per-task compile products, shared by every scratch instance:
     register programs (whose instruction streams are immutable) or
     closure step lists (pure functions of the env array they are
     handed).  All lowering, CSE, peephole and validation work happens
     here, once. *)
  let plan_block (id, label, (block : Cse.block), reads, writes) =
    let code =
      match backend with
      | Exec_vm ->
          (* One register program per task: temps store to their env
             slots, roots to their output slots.  Temp slots are
             task-private (per-task CSE prefixes make the names unique),
             so the optimiser may drop stores nothing reads. *)
          let module Iset = Set.Make (Int) in
          let priv =
            List.fold_left
              (fun s (b : Cse.binding) -> Iset.add (slot_of_name b.name) s)
              Iset.empty block.temps
          in
          let stmts =
            List.map
              (fun (b : Cse.binding) ->
                (b.expr, Om_expr.Vm.To_env (slot_of_name b.name)))
              block.temps
            @ List.map
                (fun (target, e) ->
                  (e, Om_expr.Vm.To_out (slot_of_target target)))
                block.roots
          in
          `Vm
            (Om_expr.Vm.compile_stmts ~optimize
               ~private_env_slot:(fun s -> Iset.mem s priv)
               ~out_size names stmts)
      | Exec_closures ->
          let temp_steps =
            List.map
              (fun (b : Cse.binding) ->
                (slot_of_name b.name, Om_expr.Eval.eval_fn names b.expr))
              block.temps
          in
          let root_steps =
            List.map
              (fun (target, e) ->
                (slot_of_target target, Om_expr.Eval.eval_fn names e))
              block.roots
          in
          `Closures (temp_steps, root_steps)
    in
    let temp_msteps =
      List.map
        (fun (b : Cse.binding) ->
          (slot_of_name b.name, Om_expr.Cost_dyn.build names b.expr))
        block.temps
    in
    let root_msteps =
      List.map
        (fun (target, e) ->
          (slot_of_target target, Om_expr.Cost_dyn.build names e))
        block.roots
    in
    ( id, label, code, (temp_msteps, root_msteps), Cse.block_cost block,
      reads, writes )
  in
  let task_plans = List.map plan_block blocks in
  let epilogue_code =
    match backend with
    | Exec_vm ->
        `Vm (Om_expr.Vm.compile_epilogue ~optimize ~out_size plan.epilogue)
    | Exec_closures -> `Closures plan.epilogue
  in
  let vm_instrs, vm_flops, vm_fused =
    let add (i, fl, fu) p =
      let s = Om_expr.Vm.stats p in
      (i + s.instrs, fl +. s.flops, fu + s.fused)
    in
    let acc =
      List.fold_left
        (fun acc (_, _, code, _, _, _, _) ->
          match code with `Vm p -> add acc p | `Closures _ -> acc)
        (0, 0., 0) task_plans
    in
    match epilogue_code with `Vm p -> add acc p | `Closures _ -> acc
  in
  let cse_temp_total = List.length temp_names in
  let epilogue_flops = plan.epilogue_flops in
  (* Instantiation binds the shared plans to fresh mutable scratch: the
     env/out value arrays, a register file per task program
     (Vm.clone_scratch) and the evaluation closures over them.
     [compile] instantiates once; [clone_scratch] re-instantiates so
     another executor can run the same artifact concurrently. *)
  let rec instantiate () =
    let env = Array.make env_size 0. in
    let out = Array.make out_size 0. in
    let build_task
        (id, label, code, (temp_msteps, root_msteps), static_cost, reads,
         writes) =
      let program, eval =
        match code with
        | `Vm prog ->
            let p = Om_expr.Vm.clone_scratch prog in
            (Some p, fun () -> Om_expr.Vm.exec p ~env ~out)
        | `Closures (temp_steps, root_steps) ->
            ( None,
              fun () ->
                List.iter (fun (slot, f) -> env.(slot) <- f env) temp_steps;
                List.iter (fun (slot, f) -> out.(slot) <- f env) root_steps )
      in
      let measured_eval () =
        let acc = ref 0. in
        List.iter (fun (slot, f) -> env.(slot) <- f env acc) temp_msteps;
        List.iter (fun (slot, f) -> out.(slot) <- f env acc) root_msteps;
        !acc
      in
      { id; label; eval; measured_eval; static_cost; reads; writes; program }
    in
    let tasks = Array.of_list (List.map build_task task_plans) in
    let set_state t y =
      Array.blit y 0 env 0 dim;
      env.(dim) <- t
    in
    let run_epilogue, epilogue_program =
      match epilogue_code with
      | `Vm eprog ->
          let p = Om_expr.Vm.clone_scratch eprog in
          ((fun () -> Om_expr.Vm.exec p ~env:no_env ~out), Some p)
      | `Closures groups ->
          ( (fun () ->
              List.iter
                (fun (deriv, slots) ->
                  let acc = ref 0. in
                  List.iter (fun s -> acc := !acc +. out.(s)) slots;
                  out.(deriv) <- !acc)
                groups),
            None )
    in
    {
      dim;
      n_slots = out_size;
      tasks;
      set_state;
      out;
      run_epilogue;
      epilogue_program;
      epilogue_flops;
      state_names;
      cse_temp_total;
      backend;
      vm_instrs;
      vm_flops;
      vm_fused;
      fresh_scratch = instantiate;
    }
  in
  instantiate ()

let clone_scratch c = c.fresh_scratch ()

let rhs_fn c t y ydot =
  c.set_state t y;
  Array.iter (fun tk -> tk.eval ()) c.tasks;
  c.run_epilogue ();
  Array.blit c.out 0 ydot 0 c.dim

let task_costs_static c = Array.map (fun tk -> tk.static_cost) c.tasks
