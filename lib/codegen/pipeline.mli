(** End-to-end code-generation pipeline (paper Figure 9): flat model →
    assignments → dependency analysis → partitioning → CSE → executable
    tasks → schedulable task set. *)

type config = {
  merge_threshold : float;  (** group small assignments up to this cost *)
  split_threshold : float;  (** split assignments above this cost *)
  cse_scope : Bytecode_backend.cse_scope;
}

val default_config : config

(** Equation-system-level dependency analysis (paper §2.1, Figures 3/6). *)
type analysis = {
  graph : Om_graph.Digraph.t;  (** state-variable dependency graph *)
  comps : Om_graph.Scc.components;
  condensed : Om_graph.Digraph.t;  (** reduced acyclic graph of SCCs *)
  nontrivial : int list;  (** SCC ids that are real equation systems *)
  scc_weights : float array;  (** flop cost of each SCC's equations *)
}

type result = {
  model : Om_lang.Flat_model.t;
  assigns : Assignments.t array;
  plan : Partition.plan;
  compiled : Bytecode_backend.t;
  tasks : Om_sched.Task.t array;  (** schedulable view of the tasks *)
  analysis : analysis;
}

val analyse : Om_lang.Flat_model.t -> analysis

val compile :
  ?config:config ->
  ?backend:Bytecode_backend.exec_backend ->
  ?optimize:bool ->
  Om_lang.Flat_model.t ->
  result
(** [backend] and [optimize] are forwarded to
    {!Bytecode_backend.compile}; the defaults (register VM, peephole on)
    are what every driver uses.  The fuzz oracle overrides them to pit
    the execution strategies against each other. *)

val system_level_speedup : analysis -> comm:float -> nprocs:int -> float
(** Speedup attainable by solving SCC subsystems in parallel on the
    condensation DAG — the paper's first parallelisation approach. *)

val rhs_fn : result -> float -> float array -> float array -> unit
(** Sequential reference execution of the generated code. *)
