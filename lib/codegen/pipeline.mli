(** End-to-end code-generation pipeline (paper Figure 9): flat model →
    assignments → dependency analysis → partitioning → CSE → executable
    tasks → schedulable task set. *)

type config = {
  merge_threshold : float;  (** group small assignments up to this cost *)
  split_threshold : float;  (** split assignments above this cost *)
  cse_scope : Bytecode_backend.cse_scope;
}

val default_config : config

(** Equation-system-level dependency analysis (paper §2.1, Figures 3/6). *)
type analysis = {
  graph : Om_graph.Digraph.t;  (** state-variable dependency graph *)
  comps : Om_graph.Scc.components;
  condensed : Om_graph.Digraph.t;  (** reduced acyclic graph of SCCs *)
  nontrivial : int list;  (** SCC ids that are real equation systems *)
  scc_weights : float array;  (** flop cost of each SCC's equations *)
}

type result = {
  model : Om_lang.Flat_model.t;
  assigns : Assignments.t array;
  plan : Partition.plan;
  compiled : Bytecode_backend.t;
  tasks : Om_sched.Task.t array;  (** schedulable view of the tasks *)
  analysis : analysis;
}

val analyse : Om_lang.Flat_model.t -> analysis

val compile :
  ?config:config ->
  ?backend:Bytecode_backend.exec_backend ->
  ?optimize:bool ->
  Om_lang.Flat_model.t ->
  result
(** [backend] and [optimize] are forwarded to
    {!Bytecode_backend.compile}; the defaults (register VM, peephole on)
    are what every driver uses.  The fuzz oracle overrides them to pit
    the execution strategies against each other. *)

val clone_scratch : result -> result
(** An independently executable view of a compiled result: the model,
    plan, task metadata and analysis are shared (all immutable), and the
    executable backend is {!Bytecode_backend.clone_scratch}d so the
    clone's mutable evaluation state (value environment, output slots,
    register files) is its own.  This is what lets a cached artifact run
    on several executors at once: clone per job, no per-entry lock. *)

val compile_count : unit -> int
(** Process-global number of {!compile} invocations so far (an atomic
    counter, safe to read from any domain).  The serve layer's model
    cache asserts that cache hits really skip
    flatten/typecheck/codegen by sampling it around a lookup. *)

val source_key : string -> string
(** Content hash of a model source text (hex digest) — the key the
    compiled-model cache ([Om_serve.Model_cache]) memoises
    {!compile_source} under.  Equal sources get equal keys regardless of
    tenant, file name or submission time. *)

val compile_source :
  ?config:config ->
  ?backend:Bytecode_backend.exec_backend ->
  ?optimize:bool ->
  string ->
  result
(** The cache-friendly whole-frontend entry: flatten the source text
    ([Om_lang.Flatten.flatten_string]), re-validate the flat model
    ([Om_lang.Typecheck.check]) and {!compile} it — exactly the work a
    cache hit skips.
    @raise Om_lang.Lexer.Error, [Om_lang.Parser.Error],
    [Om_lang.Flatten.Error] or [Invalid_argument] on ill-formed
    sources (the caller maps these to its model-error status). *)

val system_level_speedup : analysis -> comm:float -> nprocs:int -> float
(** Speedup attainable by solving SCC subsystems in parallel on the
    condensation DAG — the paper's first parallelisation approach. *)

val rhs_fn : result -> float -> float array -> float array -> unit
(** Sequential reference execution of the generated code. *)
