(** C code generation — the second textual backend of the ObjectMath 4.0
    code generator (Figure 9 lists both a Fortran90 and a C++ generator;
    we emit portable C99). *)

type source = {
  code : string;
  total_lines : int;
  declaration_lines : int;
  statement_lines : int;
  cse_count : int;
}

type mode = Parallel | Serial

val generate :
  mode:mode ->
  Partition.plan ->
  state_names:string array ->
  initial:float array ->
  model_name:string ->
  source

val expr_to_c : (string -> string) -> Om_expr.Expr.t -> string
