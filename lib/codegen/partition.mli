(** Task partitioning.

    Paper §3.2: "The parallelization stage of the code generator groups all
    small assignments into one task and splits large assignments obtained
    from the equations into several tasks."

    - Grouping: assignments cheaper than [merge_threshold] are packed
      greedily into tasks of about that size.
    - Splitting: an assignment costlier than [split_threshold] whose
      right-hand side is a sum has its terms divided into chunks; each
      chunk becomes a task computing a {e partial} output, and the
      supervisor adds the partials into the derivative during the gather
      phase (keeping all worker tasks mutually independent, as the paper's
      LPT scheduler requires).

    Output slots: indices [0 .. dim-1] are derivative entries, indices
    [dim ..] are partials. *)

type task = {
  tid : int;
  label : string;
  roots : (int * Om_expr.Expr.t) list;
      (** (output slot, expression) computed by this task *)
}

type plan = {
  dim : int;  (** state-vector dimension *)
  n_partials : int;
  tasks : task array;
  epilogue : (int * int list) list;
      (** [(deriv, partial slots)] — supervisor sums these after gather *)
  epilogue_flops : float;
}

val partition :
  ?merge_threshold:float ->
  ?split_threshold:float ->
  Assignments.t array ->
  plan
(** Defaults: [merge_threshold = 50.], [split_threshold = 4000.] flop
    units.  Every derivative is produced exactly once (directly or via the
    epilogue). *)

val n_slots : plan -> int
(** [dim + n_partials]. *)

val task_cost : task -> float
val validate : plan -> unit
(** @raise Invalid_argument if slots are written twice or an epilogue
    entry references an unknown partial. *)
