(** Mathematica code generation.

    The ObjectMath 3.0 pipeline (paper Figure 8) contained a "Mathematica
    Code Generator" whose output was executed by Mathematica itself; 4.0
    kept emitting Mathematica code for symbolic evaluation via MathLink.
    This backend renders a flat model as a ready-to-run Mathematica
    program: the equation list, initial conditions, and an [NDSolve]
    driver. *)

type source = {
  code : string;
  total_lines : int;
}

val generate : Om_lang.Flat_model.t -> source

val expr_to_mathematica : (string -> string) -> Om_expr.Expr.t -> string
(** Infix Mathematica syntax ([Sin[x]], [x^2], [If[a < b, t, e]]) with the
    given variable renderer. *)

val mangle : Om_lang.Flat_model.t -> string -> string
(** Collision-free mapping of flattened state names ([W[3].Fi]) to
    Mathematica symbols ([W3Fi]). *)
