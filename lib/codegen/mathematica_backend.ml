module E = Om_expr.Expr

type source = { code : string; total_lines : int }

let mathematica_func : E.func -> string = function
  | Sin -> "Sin"
  | Cos -> "Cos"
  | Tan -> "Tan"
  | Asin -> "ArcSin"
  | Acos -> "ArcCos"
  | Atan -> "ArcTan"
  | Sinh -> "Sinh"
  | Cosh -> "Cosh"
  | Tanh -> "Tanh"
  | Exp -> "Exp"
  | Log -> "Log"
  | Sqrt -> "Sqrt"
  | Abs -> "Abs"
  | Sign -> "Sign"
  | Atan2 -> "OMArcTan2"  (* ArcTan[x, y] flips the argument order *)
  | Min -> "Min"
  | Max -> "Max"
  | Hypot -> "OMHypot"

let float_literal x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%d" (int_of_float x)
  else
    (* Mathematica uses *^ for exponents. *)
    let s = Printf.sprintf "%.17g" x in
    String.concat "*^" (String.split_on_char 'e' s)

(* Precedence: 1 additive, 2 multiplicative, 3 unary minus, 4 power,
   5 atom. *)
let expr_to_mathematica var_name e =
  let buf = Buffer.create 128 in
  let rec emit prec e =
    let paren p f =
      if prec > p then begin
        Buffer.add_char buf '(';
        f ();
        Buffer.add_char buf ')'
      end
      else f ()
    in
    match e with
    | E.Const x ->
        if x < 0. then paren 2 (fun () -> Buffer.add_string buf (float_literal x))
        else Buffer.add_string buf (float_literal x)
    | E.Var v -> Buffer.add_string buf (var_name v)
    | E.Add terms ->
        paren 1 (fun () ->
            List.iteri
              (fun i t ->
                if i > 0 then Buffer.add_string buf " + ";
                emit 2 t)
              terms)
    | E.Mul (E.Const (-1.) :: rest) when rest <> [] ->
        paren 3 (fun () ->
            Buffer.add_char buf '-';
            emit 4 (E.mul rest))
    | E.Mul factors ->
        paren 2 (fun () ->
            List.iteri
              (fun i f ->
                if i > 0 then Buffer.add_char buf '*';
                emit 4 f)
              factors)
    | E.Pow (b, ex) ->
        paren 4 (fun () ->
            emit 5 b;
            Buffer.add_char buf '^';
            emit 5 ex)
    | E.Call (f, args) ->
        Buffer.add_string buf (mathematica_func f);
        Buffer.add_char buf '[';
        List.iteri
          (fun i a ->
            if i > 0 then Buffer.add_string buf ", ";
            emit 1 a)
          args;
        Buffer.add_char buf ']'
    | E.If (c, t, e') ->
        Buffer.add_string buf "If[";
        emit 1 c.lhs;
        Buffer.add_string buf
          (match c.rel with
          | E.Lt -> " < "
          | E.Le -> " <= "
          | E.Gt -> " > "
          | E.Ge -> " >= ");
        emit 1 c.rhs;
        Buffer.add_string buf ", ";
        emit 1 t;
        Buffer.add_string buf ", ";
        emit 1 e';
        Buffer.add_char buf ']'
  in
  emit 0 e;
  Buffer.contents buf

let mangle (fm : Om_lang.Flat_model.t) =
  (* Strip non-alphanumeric characters; resolve collisions with numeric
     suffixes, deterministically in state order. *)
  let table = Hashtbl.create 64 in
  let used = Hashtbl.create 64 in
  let base s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
        then Buffer.add_char b c)
      s;
    let r = Buffer.contents b in
    if r = "" then "v" else r
  in
  List.iter
    (fun (s, _) ->
      let candidate = base s in
      let final =
        if not (Hashtbl.mem used candidate) then candidate
        else begin
          let k = ref 2 in
          while Hashtbl.mem used (Printf.sprintf "%s%d" candidate !k) do
            incr k
          done;
          Printf.sprintf "%s%d" candidate !k
        end
      in
      Hashtbl.add used final ();
      Hashtbl.add table s final)
    fm.states;
  fun s ->
    match Hashtbl.find_opt table s with
    | Some m -> m
    | None -> base s

let generate (fm : Om_lang.Flat_model.t) =
  let mg = mangle fm in
  let var_name v = if v = "t" then "t" else mg v ^ "[t]" in
  let buf = Buffer.create 4096 in
  let n = ref 0 in
  let line s =
    Buffer.add_string buf s;
    Buffer.add_char buf '\n';
    incr n
  in
  line ("(* Generated Mathematica code for model " ^ fm.name ^ " *)");
  line "";
  line "OMArcTan2[y_, x_] := ArcTan[x, y];";
  line "OMHypot[x_, y_] := Sqrt[x^2 + y^2];";
  line "";
  line "OMStates = {";
  let states = List.map fst fm.states in
  List.iteri
    (fun i s ->
      line
        (Printf.sprintf "  %s[t]%s" (mg s)
           (if i < List.length states - 1 then "," else "")))
    states;
  line "};";
  line "";
  line "OMEquations = {";
  List.iteri
    (fun i (s, rhs) ->
      line
        (Printf.sprintf "  %s'[t] == %s%s" (mg s)
           (expr_to_mathematica var_name rhs)
           (if i < List.length fm.equations - 1 then "," else "")))
    fm.equations;
  line "};";
  line "";
  line "OMInitial = {";
  List.iteri
    (fun i (s, v) ->
      line
        (Printf.sprintf "  %s[0] == %s%s" (mg s) (float_literal v)
           (if i < List.length fm.states - 1 then "," else "")))
    fm.states;
  line "};";
  line "";
  line "OMSolve[tend_] :=";
  line "  NDSolve[Join[OMEquations, OMInitial], OMStates, {t, 0, tend},";
  line "    Method -> Automatic]";
  { code = Buffer.contents buf; total_lines = !n }
