module E = Om_expr.Expr
module Smap = Map.Make (String)

module Etbl = Hashtbl.Make (struct
  type t = E.t

  let equal = E.equal
  let hash = E.hash
end)

type binding = { name : string; expr : E.t }

type block = {
  temps : binding list;
  roots : (string * E.t) list;
}

let extractable e =
  match e with
  | E.Const _ | E.Var _ -> false
  | E.Add _ | E.Mul _ | E.Pow _ | E.Call _ | E.If _ -> true

(* All rewriting below goes through [E.map_exact]: the smart constructors
   keep n-ary [Add]/[Mul] operands sorted, so replacing an extracted
   subtree with its temp variable (whose sort position differs from the
   subtree's) would reorder the operand list — and reordering a
   left-to-right float fold is a reassociation that can change the result
   by an ulp.  An order-preserving swap of a subtree for a variable bound
   to its value is exactly value-preserving, which the differential fuzz
   oracle relies on: every backend must reproduce the tree-walk
   interpreter bitwise. *)
let subst_exact = E.map_exact
let subst_children = E.map_exact_children

let eliminate ?(min_size = 3) ?(min_count = 2) ?(prefix = "cse$") targets =
  (* Pass 1: count syntactic occurrences of every candidate subtree. *)
  let counts = Etbl.create 256 in
  let rec count e =
    if extractable e && E.size e >= min_size then
      Etbl.replace counts e
        (1 + Option.value ~default:0 (Etbl.find_opt counts e));
    List.iter count (E.children e)
  in
  List.iter (fun (_, e) -> count e) targets;
  let shared =
    Etbl.fold (fun e c acc -> if c >= min_count then e :: acc else acc) counts []
    |> List.sort (fun a b ->
           let c = Int.compare (E.size a) (E.size b) in
           if c <> 0 then c else E.compare a b)
  in
  (* Pass 2: name the shared subtrees smallest-first, so each definition
     can refer to already-named smaller temps. *)
  let names = Etbl.create 64 in
  let defs =
    List.mapi
      (fun i e ->
        let name = prefix ^ string_of_int i in
        Etbl.add names e name;
        (name, e))
      shared
  in
  let lookup e = Option.map E.var (Etbl.find_opt names e) in
  let rewrite = subst_exact lookup in
  let temps =
    List.map (fun (name, e) -> { name; expr = subst_children lookup e }) defs
  in
  let roots = List.map (fun (t, e) -> (t, rewrite e)) targets in
  (* Pass 3: inline temps used at most once (their single consumer absorbs
     the definition) — extraction counts occurrences before substitution,
     so a subtree appearing only inside one bigger shared subtree would
     otherwise survive as a single-use temporary. *)
  let uses = Hashtbl.create 64 in
  let record_uses e =
    ignore
      (E.fold
         (fun () n ->
           match n with
           | E.Var v when String.length v >= String.length prefix
                          && String.sub v 0 (String.length prefix) = prefix ->
               Hashtbl.replace uses v
                 (1 + Option.value ~default:0 (Hashtbl.find_opt uses v))
           | _ -> ())
         () e)
  in
  List.iter (fun b -> record_uses b.expr) temps;
  List.iter (fun (_, e) -> record_uses e) roots;
  let dropped = ref Smap.empty in
  let resolve e =
    subst_exact
      (function E.Var v -> Smap.find_opt v !dropped | _ -> None)
      e
  in
  let kept =
    List.filter_map
      (fun b ->
        let u = Option.value ~default:0 (Hashtbl.find_opt uses b.name) in
        let expr = resolve b.expr in
        if u <= 1 then begin
          dropped := Smap.add b.name expr !dropped;
          None
        end
        else Some { b with expr })
      temps
  in
  let roots = List.map (fun (t, e) -> (t, resolve e)) roots in
  (* Renumber the kept temps densely. *)
  let renaming =
    List.mapi (fun i b -> (b.name, E.var (prefix ^ string_of_int i))) kept
  in
  let rn e =
    subst_exact
      (function E.Var v -> List.assoc_opt v renaming | _ -> None)
      e
  in
  let temps =
    List.mapi
      (fun i b -> { name = prefix ^ string_of_int i; expr = rn b.expr })
      kept
  in
  let roots = List.map (fun (t, e) -> (t, rn e)) roots in
  { temps; roots }

let temp_count b = List.length b.temps

let block_cost b =
  List.fold_left (fun acc t -> acc +. Om_expr.Cost.flops_mean t.expr) 0. b.temps
  +. List.fold_left
       (fun acc (_, e) -> acc +. Om_expr.Cost.flops_mean e)
       0. b.roots

let inline b =
  let resolved =
    List.fold_left
      (fun m t -> Smap.add t.name (Om_expr.Subst.apply_map m t.expr) m)
      Smap.empty b.temps
  in
  List.map (fun (t, e) -> (t, Om_expr.Subst.apply_map resolved e)) b.roots

let verify_no_forward_refs b =
  let all_temps = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.add all_temps t.name ()) b.temps;
  let defined = Hashtbl.create 16 in
  List.for_all
    (fun t ->
      let ok =
        List.for_all
          (fun v -> (not (Hashtbl.mem all_temps v)) || Hashtbl.mem defined v)
          (E.vars t.expr)
      in
      Hashtbl.add defined t.name ();
      ok)
    b.temps
