(** Executable backend: compile a partition plan into runnable tasks.

    The paper's generated Fortran 90 is compiled by an F90 compiler and
    linked with the runtime; here the equivalent executable artifact is a
    register-VM program per task ({!Om_expr.Vm}) over a shared value
    environment, which the sequential driver and the machine simulator
    both call.  Semantics match the textual backends exactly (same
    temps, same evaluation order).  The historical closure engine
    ({!Om_expr.Eval.eval_fn}) remains available as [Exec_closures] for
    before/after benchmarking. *)

type cse_scope =
  | Cse_none
  | Cse_per_task  (** parallel mode: no sharing across tasks (§3.3) *)
  | Cse_global  (** serial mode: one task, sharing everywhere *)

(** Execution engine for the compiled tasks. *)
type exec_backend =
  | Exec_closures  (** tree-shaped closures from {!Om_expr.Eval.eval_fn} *)
  | Exec_vm  (** flat register-VM programs (default; allocation-free) *)

type compiled_task = {
  id : int;
  label : string;
  eval : unit -> unit;
      (** evaluate temps then roots; reads the state environment set by
          {!set_state}, writes into {!out} *)
  measured_eval : unit -> float;
      (** like [eval] but returns the branch-resolved flop cost *)
  static_cost : float;  (** mean-branch estimate, includes temps *)
  reads : int list;
  writes : int list;
  program : Om_expr.Vm.program option;
      (** the task's register program ([Exec_vm] only), for disassembly
          and instruction statistics *)
}

type t = {
  dim : int;
  n_slots : int;
  tasks : compiled_task array;
  set_state : float -> float array -> unit;
  out : float array;  (** output slots: derivatives then partials *)
  run_epilogue : unit -> unit;
  epilogue_program : Om_expr.Vm.program option;
      (** the reduction-epilogue program ([Exec_vm] only), for engines
          that reinterpret it (e.g. {!Batch_backend}) *)
  epilogue_flops : float;
  state_names : string array;
  cse_temp_total : int;  (** temporaries across all tasks *)
  backend : exec_backend;
  vm_instrs : int;
      (** static VM instructions across tasks + epilogue (0 for
          [Exec_closures]) *)
  vm_flops : float;  (** static flop units of the VM code *)
  vm_fused : int;  (** fused instructions after the peephole pass *)
  fresh_scratch : unit -> t;
      (** re-instantiate the compiled plans over fresh mutable scratch —
          prefer the {!clone_scratch} wrapper *)
}

val compile :
  ?scope:cse_scope ->
  ?backend:exec_backend ->
  ?optimize:bool ->
  Partition.plan ->
  state_names:string array ->
  t
(** Default scope is [Cse_per_task]; default backend is [Exec_vm].
    [optimize] (default [true], [Exec_vm] only) runs the peephole pass
    over every task and epilogue program; the fuzz oracle compiles with
    [~optimize:false] to check that the pass is bit-preserving. *)

val clone_scratch : t -> t
(** An independently runnable instance of the same compiled artifact:
    the lowered register programs (or closure step lists) are shared —
    they are immutable after {!compile} — while the value environment,
    output slots, per-task register files and the evaluation closures
    around them are fresh.  No re-lowering, CSE, peephole or validation
    happens, so the cost is a few array allocations: cheap enough to
    call at every job start.  Clone and original may execute
    concurrently from different domains; the serve layer clones one
    scratch per executor instead of locking the cached artifact. *)

val rhs_fn : t -> float -> float array -> float array -> unit
(** Sequential execution of every task plus the epilogue: the reference
    semantics used for [Odesys.make]. *)

val task_costs_static : t -> float array
