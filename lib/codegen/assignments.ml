type t = {
  state : string;
  target : string;
  state_index : int;
  rhs : Om_expr.Expr.t;
}

let target_of_state s = s ^ "$dot"

let of_flat_model (m : Om_lang.Flat_model.t) =
  Array.of_list
    (List.mapi
       (fun i (state, rhs) ->
         { state; target = target_of_state state; state_index = i; rhs })
       m.equations)

let cost a = Om_expr.Cost.flops_mean a.rhs
