type config = {
  merge_threshold : float;
  split_threshold : float;
  cse_scope : Bytecode_backend.cse_scope;
}

let default_config =
  {
    merge_threshold = 50.;
    split_threshold = 4000.;
    cse_scope = Bytecode_backend.Cse_per_task;
  }

type analysis = {
  graph : Om_graph.Digraph.t;
  comps : Om_graph.Scc.components;
  condensed : Om_graph.Digraph.t;
  nontrivial : int list;
  scc_weights : float array;
}

type result = {
  model : Om_lang.Flat_model.t;
  assigns : Assignments.t array;
  plan : Partition.plan;
  compiled : Bytecode_backend.t;
  tasks : Om_sched.Task.t array;
  analysis : analysis;
}

let analyse (m : Om_lang.Flat_model.t) =
  let graph = Om_lang.Flat_model.dependency_graph m in
  let comps = Om_graph.Scc.tarjan graph in
  let condensed = Om_graph.Scc.condensation graph comps in
  let nontrivial = Om_graph.Scc.nontrivial graph comps in
  let eq_cost =
    Array.of_list
      (List.map (fun (_, e) -> Om_expr.Cost.flops_mean e) m.equations)
  in
  let scc_weights =
    Array.map
      (fun members ->
        List.fold_left (fun acc v -> acc +. eq_cost.(v)) 0. members)
      comps.members
  in
  { graph; comps; condensed; nontrivial; scc_weights }

(* Process-global invocation counter: the serve-layer model cache
   asserts cache hits skip compilation entirely by watching this. *)
let compiles = Atomic.make 0
let compile_count () = Atomic.get compiles

let compile ?(config = default_config) ?backend ?optimize
    (m : Om_lang.Flat_model.t) =
  Atomic.incr compiles;
  let assigns = Assignments.of_flat_model m in
  let plan =
    Partition.partition ~merge_threshold:config.merge_threshold
      ~split_threshold:config.split_threshold assigns
  in
  Partition.validate plan;
  let state_names = Om_lang.Flat_model.state_names m in
  let compiled =
    Bytecode_backend.compile ~scope:config.cse_scope ?backend ?optimize plan
      ~state_names
  in
  let tasks =
    Array.map
      (fun (ct : Bytecode_backend.compiled_task) ->
        Om_sched.Task.make ~id:ct.id ~label:ct.label ~cost:ct.static_cost
          ~reads:ct.reads ~writes:ct.writes)
      compiled.tasks
  in
  Om_sched.Task.validate tasks;
  { model = m; assigns; plan; compiled; tasks; analysis = analyse m }

(* Everything in a result except the executable backend is immutable
   analysis data; sharing it across clones keeps per-job cloning at a
   few array allocations. *)
let clone_scratch r =
  { r with compiled = Bytecode_backend.clone_scratch r.compiled }

let source_key source = Digest.to_hex (Digest.string source)

let compile_source ?config ?backend ?optimize source =
  let fm = Om_lang.Flatten.flatten_string source in
  Om_lang.Typecheck.check fm;
  compile ?config ?backend ?optimize fm

let system_level_speedup a ~comm ~nprocs =
  Om_sched.Dag_sched.speedup a.condensed ~weights:a.scc_weights ~comm ~nprocs

let rhs_fn r = Bytecode_backend.rhs_fn r.compiled
