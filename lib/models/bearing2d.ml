let default_tend = 0.05

(* Raceway profile correction: a truncated harmonic series in the roller
   position (raceway waviness / out-of-roundness, standard in rolling
   bearing dynamics).  The terms involve the compression, so the cost sits
   inside the contact-resolution path; the series order is the knob that
   reproduces the paper's right-hand-side weight ("several tens of
   thousands of floating point operations", §3.2). *)
let profile_series ~order ~compression_var =
  let term k =
    Printf.sprintf
      "0.001 / %d.0 * cos(%d.0 * Fi + 0.1 * %d.0) * sqrt(1.0 + %d.0 * %s^2)"
      k k k k compression_var
  in
  if order <= 0 then "0.0"
  else String.concat " + " (List.init order (fun i -> term (i + 1)))

(* Geometry and material constants (SI units, roughly a small cylindrical
   roller bearing).  The Hertz exponent 1.5 and the unilateral contact
   conditionals are the structurally important parts. *)
let base_classes = {|
// The class hierarchy mirrors the paper's Figure 5: a root class of
// spinning machine elements, refined into bodies with mass, then into
// rolling elements and rings.
class SpinningElement
  parameter omega_drive = 100.0;   // inner ring speed [rad/s]
  parameter pi = 3.14159265358979;
end;

class Body extends SpinningElement
  parameter m = 0.05;              // mass [kg]
end;
|}

let roller_class ~n_rollers ~profile_order =
  Printf.sprintf
    {|
class Roller extends Body
  parameter nr = %d;
  parameter j = 0.00001;       // roller inertia [kg m^2]
  parameter r_roll = 0.01;     // roller radius [m]
  parameter r_in = 0.04;       // inner raceway radius [m]
  parameter r_out = 0.06;      // outer raceway radius [m]
  parameter rc = 0.05;         // cage pitch radius [m]
  parameter k_hertz = 1000000.0;   // contact stiffness [N/m^1.5]
  parameter c_contact = 400.0;     // contact damping [Ns/m]
  parameter c_tract = 120.0;       // traction coefficient [Ns/m]
  parameter c_drag = 0.02;         // cage/lubricant drag

  variable Fi init 2.0 * pi * (index - 1) / nr;  // angular position
  variable W init 40.0;                          // angular velocity (cage speed)
  variable R init 0.05;                          // radial position
  variable U init 0.0;                           // radial velocity
  variable T3 init 200.0;                        // roller spin speed

  // Roller centre in housing coordinates.
  alias px = R * cos(Fi);
  alias py = R * sin(Fi);

  // ---- contact with the inner raceway (ring centre at Inner.x/y) ----
  alias dxi = px - Inner.x;
  alias dyi = py - Inner.y;
  alias disti = sqrt(dxi^2 + dyi^2);
  alias compi = r_in + r_roll - disti;          // compression depth
  // radial approach velocity of the contact
  alias rveli = (dxi * (U * cos(Fi) - R * W * sin(Fi) - Inner.vx)
               + dyi * (U * sin(Fi) + R * W * cos(Fi) - Inner.vy)) / disti;
  // raceway profile (waviness) correction of the contact stiffness
  alias profi = %s;
  alias ni = if compi > 0.0
             then k_hertz * compi * sqrt(compi) * (1.0 + profi)
                  - c_contact * rveli
             else 0.0;
  // surface speed mismatch at the inner contact drives the roller
  alias slipi = omega_drive * r_in - R * W - T3 * r_roll;
  alias fti = if compi > 0.0 then c_tract * slipi else 0.0;
  // unit normal (from inner centre to roller) and tangent
  alias nxi = dxi / disti;
  alias nyi = dyi / disti;

  // ---- contact with the fixed outer raceway (centred at origin) ----
  alias compo = R - (r_out - r_roll);
  alias profo = %s;
  alias no = if compo > 0.0
             then k_hertz * compo * sqrt(compo) * (1.0 + profo)
                  + c_contact * U
             else 0.0;
  alias slipo = R * W - T3 * r_roll;
  alias fto = if compo > 0.0 then c_tract * slipo else 0.0;

  // ---- force resolution in polar coordinates around the origin ----
  // radial direction components of the inner-contact force
  alias fradial = ni * (nxi * cos(Fi) + nyi * sin(Fi)) - no;
  alias ftang = fti - fto - c_drag * R * W;

  equation der(Fi) = W;
  equation der(W) = ftang / (m * R) - 2.0 * U * W / R;
  equation der(R) = U;
  equation der(U) = R * W^2 + fradial / m;
  equation der(T3) = (fti + fto) * r_roll / j - c_drag * T3;
end;
|}
    n_rollers
    (profile_series ~order:profile_order ~compression_var:"compi")
    (profile_series ~order:profile_order ~compression_var:"compo")

let inner_ring_class ~model_name = Printf.sprintf {|
class Ring extends Body with m = 1.2
  parameter c_support = 50.0;  // translational damping of the mount
end;

class InnerRing extends Ring
  parameter fx_ext = 0.0;      // external load [N]
  parameter fy_ext = -500.0;

  variable x init 0.0;
  variable y init -0.00001;
  variable vx init 0.0;
  variable vy init 0.0;
  variable theta init 0.0;     // driven rotation: the trivial SCC

  equation der(x) = vx;
  equation der(y) = vy;
  equation der(vx) = (fx_ext + fsum_x - c_support * vx) / m;
  equation der(vy) = (fy_ext + fsum_y - c_support * vy) / m;
  equation der(theta) = omega_drive;
end;
// model %s
|} model_name

(* Reaction on the inner ring from roller i: minus the inner-contact
   normal force along the contact normal. *)
let reaction axis i =
  Printf.sprintf "(0.0 - W[%d].ni * W[%d].n%si)" i i axis

let generate ~model_name ~n_rollers ~profile_order =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Printf.sprintf "model %s;\n" model_name);
  Buffer.add_string buf base_classes;
  Buffer.add_string buf (roller_class ~n_rollers ~profile_order);
  Buffer.add_string buf (inner_ring_class ~model_name);
  let sum axis =
    String.concat " + "
      (List.init n_rollers (fun i -> reaction axis (i + 1)))
  in
  Buffer.add_string buf
    (Printf.sprintf
       "\ninstance Inner of InnerRing with fsum_x = %s, fsum_y = %s;\n"
       (sum "x") (sum "y"));
  Buffer.add_string buf
    (Printf.sprintf "instance W[1..%d] of Roller;\n" n_rollers);
  Buffer.contents buf

(* Default profile order chosen so the generated code weight matches the
   paper's 2D bearing (11 859 intermediate-form lines, RHS of tens of
   thousands of flops). *)
let default_profile_order = 24

let source ?(n_rollers = 10) () =
  generate ~model_name:"Bearing2D" ~n_rollers
    ~profile_order:default_profile_order

let model ?(n_rollers = 10) () =
  Om_lang.Flatten.flatten_string (source ~n_rollers ())
