let default_tend = 0.02

let source ?(n_rollers = 30) ?(profile_order = 40) () =
  Bearing2d.generate ~model_name:"Bearing3DScale" ~n_rollers ~profile_order

let model ?(n_rollers = 30) ?(profile_order = 40) () =
  Om_lang.Flatten.flatten_string (source ~n_rollers ~profile_order ())
