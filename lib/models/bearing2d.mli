(** The 2D cylindrical rolling bearing model (paper §2.5, Figures 4–6).

    An outer ring fixed in the housing, an inner ring driven at constant
    angular velocity and carrying an external load, and [n] rolling
    elements riding between the raceways on Hertzian-style unilateral
    contacts with a raceway-waviness (harmonic profile) correction.  Every
    roller couples to the inner ring through the contact force sums, so
    the dependency graph has one large strongly connected component
    holding all the computation plus one trivial component (the driven
    rotation angle) — the structure of the paper's Figure 6.

    The contact conditionals (rollers on the unloaded side lose contact)
    make right-hand-side costs vary over time, which is what the
    semi-dynamic LPT experiment needs.  The default profile order is
    calibrated so the model's generated-code weight matches the paper's
    2D bearing. *)

val source : ?n_rollers:int -> unit -> string
(** ObjectMath source text of the model (defaults to the paper's ten
    rolling elements). *)

val model : ?n_rollers:int -> unit -> Om_lang.Flat_model.t
(** Parsed and flattened. *)

val default_tend : float
(** A simulated time span suitable for the performance experiments. *)

val default_profile_order : int

val generate :
  model_name:string -> n_rollers:int -> profile_order:int -> string
(** The parametric generator shared with {!Bearing_scaled}. *)
