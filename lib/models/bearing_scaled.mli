(** Synthetic "3D-class" bearing generator.

    The paper's industrial 3D bearing models (SKF) are proprietary; their
    relevant property for the performance experiments is a configurable
    number of rolling elements with right-hand sides heavy enough that "a
    potential speedup of 100-300 will be possible for large bearing
    problems" (§6).  This generator reproduces that regime: the 2D bearing
    structure with more rollers and a higher-order raceway-profile series
    inside each contact, scaling the per-roller cost the way 3D contact
    geometry does. *)

val source : ?n_rollers:int -> ?profile_order:int -> unit -> string
(** Defaults: 30 rollers, profile order 40. *)

val model :
  ?n_rollers:int -> ?profile_order:int -> unit -> Om_lang.Flat_model.t

val default_tend : float
