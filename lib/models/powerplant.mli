(** The hydroelectric power plant model (paper §2.5, Figure 3; based on
    Älvkarleby Kraftverk).

    Objects: a dam (surface level driven by inflow minus the total flow
    through the gates), [n] turbine gates each with its own local servo
    loop (gate angle, throttle actuator, and the integrator part of a local
    PI regulator — a small strongly connected component per gate), and a
    plant-wide regulator integrator reacting to the dam level.  The gate
    loops are mutually independent, the dam depends on every gate, and the
    regulator depends on the dam, so the SCC condensation is a shallow DAG
    that partitions well — the paper's positive example for
    equation-system-level parallelism. *)

val source : ?n_gates:int -> unit -> string
(** Defaults to the six gates of Figure 3. *)

val model : ?n_gates:int -> unit -> Om_lang.Flat_model.t

val default_tend : float
