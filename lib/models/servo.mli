(** The trivial servo example (paper §6 mentions it as the third small
    application, which "could be reasonably parallelized through such
    partitioning").

    A two-axis positioning servo.  Each axis is a composite of parts — a
    PI speed controller in closed loop with a DC motor (one SCC per axis),
    a compliant load shaft driven feed-forward (a second SCC), and a
    measurement filter — and the two independent axes are an instance
    array, so the model partitions into two parallel SCC chains. *)

val source : unit -> string
val model : unit -> Om_lang.Flat_model.t
val default_tend : float
