let default_tend = 5.

(* A two-axis positioning servo: each axis is a composite (controller,
   motor, integrator, compliant load, sensor) built with parts; the two
   axes are an instance array.  The axes are mutually independent, so the
   model partitions into two copies of a small SCC chain. *)
let text = {|
model Servo;

class Controller
  parameter k_p = 4.0;
  parameter k_i = 2.5;
  parameter speed_ref = 20.0;

  variable IPart init 0.0;

  alias error = speed_ref + 2.0 * sin(time) - feedback;
  alias output = k_p * error + IPart;

  equation der(IPart) = k_i * error;
end;

class Motor
  parameter resistance = 1.1;
  parameter inductance = 0.02;
  parameter k_emf = 0.35;
  parameter inertia = 0.01;
  parameter friction = 0.05;

  variable Current init 0.0;
  variable Speed init 0.0;

  equation der(Current) = (voltage - resistance * Current - k_emf * Speed)
                          / inductance;
  equation der(Speed) = (k_emf * Current - friction * Speed - load_torque)
                        / inertia;
end;

class LoadShaft
  parameter stiffness = 60.0;
  parameter damping = 0.4;
  parameter inertia = 0.05;

  variable Angle init 0.0;
  variable Speed init 0.0;

  alias twist = drive_angle - Angle;

  equation der(Angle) = Speed;
  equation der(Speed) = (stiffness * twist - damping * Speed) / inertia;
end;

class Filter
  parameter tau = 0.05;

  variable Value init 0.0;

  equation der(Value) = (input - Value) / tau;
end;

class Integrator
  variable Value init 0.0;
  equation der(Value) = input;
end;

class Axis
  part ctrl : Controller with feedback = motor.Speed;
  part motor : Motor with voltage = ctrl.output, load_torque = 0.0;
  part angle : Integrator with input = motor.Speed;
  part load : LoadShaft with drive_angle = angle.Value;
  part sensor : Filter with input = load.Speed;
end;

instance S[1..2] of Axis;
|}

let source () = String.trim text ^ "\n"

let model () = Om_lang.Flatten.flatten_string (source ())
