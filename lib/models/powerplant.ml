let default_tend = 600.

let gate_class = {|
class Gate
  parameter tau_servo = 2.5;      // throttle actuator time constant [s]
  parameter k_p = 0.8;            // local PI proportional gain
  parameter k_i = 0.15;           // local PI integral gain
  parameter k_flow = 35.0;        // flow through a fully open gate [m^3/s]
  parameter head_nom = 10.0;      // nominal head over the turbine [m]
  parameter setpoint = 0.6;       // commanded opening
  parameter damping = 1.2;

  parameter tau_water = 4.0;      // penstock water inertia [s]
  parameter eta = 0.85;           // turbine efficiency
  parameter j_turb = 12.0;        // turbine+generator inertia
  parameter load_torque = 240.0;  // grid load

  variable Angle init 0.5;        // gate opening angle [0..1]
  variable AngleRate init 0.0;
  variable Throttle init 0.5;     // servo/actuator position
  variable IPart init 0.0;        // local integrator state
  variable Flow init 17.5;        // penstock flow [m^3/s]
  variable TurbineSpeed init 25.0;

  // local control error: track the setpoint, corrected by the plant
  // regulator bias shipped in at instantiation
  alias error = setpoint + bias - Angle;
  alias command = k_p * error + IPart;

  // commanded flow through the gate (saturating at closed); the head is
  // taken as nominal so the plant stays feed-forward: gates -> dam ->
  // regulator, the SCC structure of the paper's Figure 3
  alias opening = max(Angle, 0.0);
  alias flow_cmd = k_flow * opening * sqrt(head_nom);

  equation der(Angle) = AngleRate;
  equation der(AngleRate) = (Throttle - Angle - damping * AngleRate) / tau_servo;
  equation der(Throttle) = (command - Throttle) / tau_servo;
  equation der(IPart) = k_i * error;
  // water column dynamics: the actual flow lags the gate command
  equation der(Flow) = (flow_cmd - Flow) / tau_water;
  // turbine accelerates with hydraulic torque ~ eta * rho g Q H / omega
  equation der(TurbineSpeed) = (eta * 9.81 * Flow * head_nom / max(TurbineSpeed, 1.0)
                               - load_torque) / j_turb;
end;
|}

let dam_class = {|
class Dam
  parameter area = 800000.0;      // reservoir surface area [m^2]
  parameter inflow = 180.0;       // river inflow [m^3/s]
  parameter nominal_level = 10.0;

  variable SurfaceLevel init 10.0;

  equation der(SurfaceLevel) = (inflow - outflow) / area;
end;
|}

let regulator_class = {|
class Regulator
  parameter k_i = 0.02;
  parameter target_level = 10.0;

  variable IPart init 0.0;

  equation der(IPart) = k_i * (level - target_level);
end;
|}

let spillway_class = {|
class Spillway
  parameter tau = 30.0;           // slow spill dynamics
  parameter crest = 10.5;         // spill starts above this level
  parameter k_spill = 60.0;

  variable Flow init 0.0;

  alias demand = if level > crest then k_spill * (level - crest) else 0.0;

  equation der(Flow) = (demand - Flow) / tau;
end;
|}

let source ?(n_gates = 6) () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "model PowerPlant;\n";
  Buffer.add_string buf gate_class;
  Buffer.add_string buf dam_class;
  Buffer.add_string buf regulator_class;
  Buffer.add_string buf spillway_class;
  let total_flow =
    String.concat " + "
      (List.init n_gates (fun i -> Printf.sprintf "G[%d].Flow" (i + 1)))
  in
  Buffer.add_string buf
    (Printf.sprintf
       "\ninstance G[1..%d] of Gate with bias = 0.02 * index;\n" n_gates);
  Buffer.add_string buf
    (Printf.sprintf "instance Dam of Dam with outflow = %s;\n" total_flow);
  Buffer.add_string buf
    "instance Reg of Regulator with level = Dam.SurfaceLevel;\n";
  Buffer.add_string buf
    "instance Spill of Spillway with level = Dam.SurfaceLevel;\n";
  Buffer.contents buf

let model ?(n_gates = 6) () =
  Om_lang.Flatten.flatten_string (source ~n_gates ())
