(** Elaboration of a parsed model into a flat ODE system.

    The stages mirror the ObjectMath compiler (paper §3.1): inheritance is
    resolved by member merging with parameter rebinding; composition
    ([part]) and instance arrays are expanded with dotted/indexed name
    prefixes; parameters and algebraic aliases are substituted away in
    dependency order; and the remaining equations are checked to form an
    explicit first-order ODE system over the state variables. *)

exception Error of string
(** Raised on semantic errors (unknown classes or names, inheritance
    cycles, algebraic loops among aliases, duplicate or missing equations,
    non-constant initial values). *)

val flatten : Ast.model -> Flat_model.t

val flatten_string : string -> Flat_model.t
(** Parse then flatten.  @raise Error / [Parser.Error] / [Lexer.Error]. *)
