let intermediate_form ?(width = 72) (m : Flat_model.t) =
  let header = [ "List["; "  List[" ] in
  let eq_lines =
    List.concat_map
      (fun (s, rhs) ->
        let eq =
          Om_expr.Prefix_form.equation_to_string ~annotate:true ~lhs_var:s rhs
        in
        (* Re-wrap the equation text at argument boundaries. *)
        let parsed_lines =
          (* equation_to_string yields one line; split it through the
             shared wrapper by rendering via to_lines on the rhs and
             prepending the derivative head. *)
          let rhs_lines = Om_expr.Prefix_form.to_lines ~annotate:true ~width rhs in
          match rhs_lines with
          | [] -> [ eq ]
          | first :: rest ->
              Printf.sprintf
                "    Equal[Derivative[1][om$Type[%s, om$Real]][om$Type[t, \
                 om$Real]],"
                s
              :: ("      " ^ first)
              :: List.map (fun l -> "      " ^ l) rest
              @ [ "    ]," ]
        in
        parsed_lines)
      m.equations
  in
  let footer =
    [
      "  ],";
      "  List[om$Type[t, om$Real], om$Type[tstart, om$Real], om$Type[tend, \
       om$Real]]";
      "]";
    ]
  in
  header @ eq_lines @ footer

let intermediate_line_count m = List.length (intermediate_form m)

let check (m : Flat_model.t) =
  let states = List.map fst m.states in
  let eq_states = List.map fst m.equations in
  (if List.sort compare states <> List.sort compare eq_states then
     let missing =
       List.filter (fun s -> not (List.mem s eq_states)) states
     in
     let extra = List.filter (fun s -> not (List.mem s states)) eq_states in
     let part what = function
       | [] -> []
       | names -> [ Printf.sprintf "%s %s" what (String.concat ", " names) ]
     in
     let detail =
       part "states without an equation:" missing
       @ part "equations without a state:" extra
     in
     let detail =
       if detail = [] then "duplicate names" else String.concat "; " detail
     in
     invalid_arg
       (Printf.sprintf "Typecheck.check: states and equations do not match (%s)"
          detail));
  List.iter
    (fun (s, rhs) ->
      List.iter
        (fun v ->
          if (not (List.mem v states)) && v <> "t" then
            invalid_arg
              (Printf.sprintf "Typecheck.check: %s is free in equation for %s"
                 v s))
        (Om_expr.Expr.vars rhs))
    m.equations
