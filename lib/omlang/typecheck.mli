(** Type derivation and the typed intermediate form.

    The reproduction's type system matches the paper's effective one for
    generated numerical code: every value is Real ([om$Type[_, om$Real]]),
    so "type checking" amounts to arity/shape validation (performed during
    flattening) plus annotation of the intermediate representation.  The
    annotated Mathematica-full-form listing produced here is the artifact
    whose size §3.3 reports (11 859 lines for the 2D bearing). *)

val intermediate_form : ?width:int -> Flat_model.t -> string list
(** The complete type-annotated prefix-form listing of the model: one
    [Equal[Derivative[1][x][t], rhs]] block per equation (wrapped at
    [width] columns, default 72) plus the enclosing list structure. *)

val intermediate_line_count : Flat_model.t -> int

val check : Flat_model.t -> unit
(** Re-validate a flat model: equation/state bijection and closed
    right-hand sides.  @raise Invalid_argument on violations (used by
    property tests; [Flatten.flatten] output always passes). *)
