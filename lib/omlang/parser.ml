exception Error of string * Ast.pos

type stream = { mutable toks : (Token.t * Ast.pos) list }

let peek st =
  match st.toks with
  | (t, p) :: _ -> (t, p)
  | [] -> (Token.EOF, { Ast.line = 0; col = 0 })

let next st =
  let t, p = peek st in
  (match st.toks with [] -> () | _ :: rest -> st.toks <- rest);
  (t, p)

let expect st tok =
  let t, p = next st in
  if t <> tok then
    raise
      (Error
         ( Printf.sprintf "expected %s but found %s" (Token.describe tok)
             (Token.describe t),
           p ))

let expect_ident st =
  match next st with
  | Token.IDENT s, _ -> s
  | t, p ->
      raise
        (Error
           ( Printf.sprintf "expected an identifier but found %s"
               (Token.describe t),
             p ))

let accept st tok =
  match peek st with
  | t, _ when t = tok ->
      ignore (next st);
      true
  | _ -> false

(* ---- expressions ---- *)

let rec parse_expression st : Ast.sexpr =
  match peek st with
  | Token.KW_IF, _ ->
      ignore (next st);
      let lhs = parse_additive st in
      let rel =
        match next st with
        | Token.LT, _ -> Om_expr.Expr.Lt
        | Token.LE, _ -> Om_expr.Expr.Le
        | Token.GT, _ -> Om_expr.Expr.Gt
        | Token.GE, _ -> Om_expr.Expr.Ge
        | t, p ->
            raise
              (Error
                 ( Printf.sprintf "expected a comparison but found %s"
                     (Token.describe t),
                   p ))
      in
      let rhs = parse_additive st in
      expect st Token.KW_THEN;
      let then_e = parse_expression st in
      expect st Token.KW_ELSE;
      let else_e = parse_expression st in
      Sif ({ sc_lhs = lhs; sc_rel = rel; sc_rhs = rhs }, then_e, else_e)
  | _ -> parse_additive st

and parse_additive st =
  let rec more acc =
    match peek st with
    | Token.PLUS, _ ->
        ignore (next st);
        more (Ast.Sbin (Badd, acc, parse_multiplicative st))
    | Token.MINUS, _ ->
        ignore (next st);
        more (Ast.Sbin (Bsub, acc, parse_multiplicative st))
    | _ -> acc
  in
  more (parse_multiplicative st)

and parse_multiplicative st =
  let rec more acc =
    match peek st with
    | Token.STAR, _ ->
        ignore (next st);
        more (Ast.Sbin (Bmul, acc, parse_unary st))
    | Token.SLASH, _ ->
        ignore (next st);
        more (Ast.Sbin (Bdiv, acc, parse_unary st))
    | _ -> acc
  in
  more (parse_unary st)

and parse_unary st =
  match peek st with
  | Token.MINUS, _ ->
      ignore (next st);
      Ast.Sneg (parse_unary st)
  | _ -> parse_power st

and parse_power st =
  let base = parse_atom st in
  if accept st Token.CARET then Ast.Sbin (Bpow, base, parse_unary st)
  else base

and parse_atom st : Ast.sexpr =
  match next st with
  | Token.NUMBER x, _ -> Snum x
  | Token.KW_TIME, _ -> Sname (Ast.name_of_string "time")
  | Token.LPAREN, _ ->
      let e = parse_expression st in
      expect st Token.RPAREN;
      e
  | Token.IDENT base, _ -> parse_name_or_call st base
  | t, p ->
      raise
        (Error
           ( Printf.sprintf "expected an expression but found %s"
               (Token.describe t),
             p ))

and parse_name_or_call st base : Ast.sexpr =
  (* function call: ident '(' args ')' — only for unqualified names *)
  match peek st with
  | Token.LPAREN, _ ->
      ignore (next st);
      let args =
        if accept st Token.RPAREN then []
        else begin
          let rec more acc =
            if accept st Token.COMMA then more (parse_expression st :: acc)
            else begin
              expect st Token.RPAREN;
              List.rev acc
            end
          in
          more [ parse_expression st ]
        end
      in
      Scall (base, args)
  | _ ->
      let parse_index () =
        if accept st Token.LBRACK then begin
          let ix = parse_expression st in
          expect st Token.RBRACK;
          Some ix
        end
        else None
      in
      let rec more acc =
        if accept st Token.DOT then begin
          let b = expect_ident st in
          more ({ Ast.base = b; index = parse_index () } :: acc)
        end
        else List.rev acc
      in
      let first = { Ast.base; index = parse_index () } in
      Sname { segments = more [ first ] }

(* ---- withs ---- *)

let parse_withs st : Ast.binding list =
  if accept st Token.KW_WITH then begin
    let one () =
      let n = expect_ident st in
      expect st Token.EQ;
      (n, parse_expression st)
    in
    let rec more acc =
      if accept st Token.COMMA then more (one () :: acc) else List.rev acc
    in
    more [ one () ]
  end
  else []

(* ---- members ---- *)

let parse_member st : Ast.member option =
  match peek st with
  | Token.KW_PARAMETER, _ ->
      ignore (next st);
      let n = expect_ident st in
      expect st Token.EQ;
      let e = parse_expression st in
      expect st Token.SEMI;
      Some (Parameter (n, e))
  | Token.KW_VARIABLE, _ ->
      ignore (next st);
      let n = expect_ident st in
      let init =
        if accept st Token.KW_INIT then parse_expression st else Ast.Snum 0.
      in
      expect st Token.SEMI;
      Some (Variable (n, init))
  | Token.KW_ALIAS, _ ->
      ignore (next st);
      let n = expect_ident st in
      expect st Token.EQ;
      let e = parse_expression st in
      expect st Token.SEMI;
      Some (Alias (n, e))
  | Token.KW_PART, _ ->
      ignore (next st);
      let n = expect_ident st in
      expect st Token.COLON;
      let cls = expect_ident st in
      let bindings = parse_withs st in
      expect st Token.SEMI;
      Some (Part (n, cls, bindings))
  | Token.KW_EQUATION, _ ->
      ignore (next st);
      expect st Token.KW_DER;
      expect st Token.LPAREN;
      let n = expect_ident st in
      expect st Token.RPAREN;
      expect st Token.EQ;
      let e = parse_expression st in
      expect st Token.SEMI;
      Some (Equation (n, e))
  | _ -> None

let parse_class st pos : Ast.class_def =
  let cname = expect_ident st in
  let parent =
    if accept st Token.KW_EXTENDS then begin
      let p = expect_ident st in
      let bindings = parse_withs st in
      Some (p, bindings)
    end
    else None
  in
  let rec members acc =
    match parse_member st with
    | Some m -> members (m :: acc)
    | None -> List.rev acc
  in
  let members = members [] in
  expect st Token.KW_END;
  ignore (accept st Token.SEMI);
  { cname; parent; members; cpos = pos }

let parse_instance st pos : Ast.instance_def =
  let iname = expect_ident st in
  let range =
    if accept st Token.LBRACK then begin
      let lo =
        match next st with
        | Token.NUMBER x, _ when Float.is_integer x -> int_of_float x
        | t, p ->
            raise
              (Error
                 ( Printf.sprintf "expected an integer but found %s"
                     (Token.describe t),
                   p ))
      in
      expect st Token.DOTDOT;
      let hi =
        match next st with
        | Token.NUMBER x, _ when Float.is_integer x -> int_of_float x
        | t, p ->
            raise
              (Error
                 ( Printf.sprintf "expected an integer but found %s"
                     (Token.describe t),
                   p ))
      in
      expect st Token.RBRACK;
      Some (lo, hi)
    end
    else None
  in
  expect st Token.KW_OF;
  let icls = expect_ident st in
  let ibindings = parse_withs st in
  expect st Token.SEMI;
  { iname; range; icls; ibindings; ipos = pos }

let parse_model_stream st : Ast.model =
  expect st Token.KW_MODEL;
  let mname = expect_ident st in
  expect st Token.SEMI;
  let classes = ref [] and instances = ref [] in
  let rec loop () =
    match next st with
    | Token.KW_CLASS, p ->
        classes := parse_class st p :: !classes;
        loop ()
    | Token.KW_INSTANCE, p ->
        instances := parse_instance st p :: !instances;
        loop ()
    | Token.EOF, _ -> ()
    | t, p ->
        raise
          (Error
             ( Printf.sprintf "expected 'class', 'instance' or end of input \
                               but found %s"
                 (Token.describe t),
               p ))
  in
  loop ();
  { mname; classes = List.rev !classes; instances = List.rev !instances }

let parse_model src = parse_model_stream { toks = Lexer.tokenize src }

let parse_expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expression st in
  expect st Token.EOF;
  e
