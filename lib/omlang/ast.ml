(** Surface abstract syntax of the ObjectMath-like modelling language.

    The language mirrors the constructs the paper's models use (Figures 1
    and 5): classes whose bodies declare parameters, state variables and
    differential equations; single inheritance with parameter rebinding;
    composition through parts; and arrays of instances such as the ten
    rollers [W[i]] of the 2D bearing. *)

type pos = { line : int; col : int }

type binop = Badd | Bsub | Bmul | Bdiv | Bpow

(** Surface expressions.  Names are resolved during flattening. *)
type sexpr =
  | Snum of float
  | Sname of name
  | Sbin of binop * sexpr * sexpr
  | Sneg of sexpr
  | Scall of string * sexpr list
  | Sif of scond * sexpr * sexpr

and scond = { sc_lhs : sexpr; sc_rel : Om_expr.Expr.rel; sc_rhs : sexpr }

(** A possibly qualified, possibly indexed name:
    [x], [Outer.omega], [W[3].x], [W[i].x]. *)
and name = { segments : segment list }

and segment = { base : string; index : sexpr option }

type binding = string * sexpr

type member =
  | Parameter of string * sexpr
  | Variable of string * sexpr  (** state variable with initial value *)
  | Alias of string * sexpr  (** auxiliary algebraic definition *)
  | Part of string * string * binding list
      (** composition: [part name : Class with ...] *)
  | Equation of string * sexpr  (** [der(x) = rhs] *)

type class_def = {
  cname : string;
  parent : (string * binding list) option;
  members : member list;
  cpos : pos;
}

type instance_def = {
  iname : string;
  range : (int * int) option;  (** [instance W[1..10]] *)
  icls : string;
  ibindings : binding list;
  ipos : pos;
}

type model = {
  mname : string;
  classes : class_def list;
  instances : instance_def list;
}

let name_of_string s = { segments = [ { base = s; index = None } ] }

let rec pp_sexpr ppf = function
  | Snum x -> Fmt.float ppf x
  | Sname n -> pp_name ppf n
  | Sbin (op, a, b) ->
      let s =
        match op with
        | Badd -> "+"
        | Bsub -> "-"
        | Bmul -> "*"
        | Bdiv -> "/"
        | Bpow -> "^"
      in
      Fmt.pf ppf "(%a %s %a)" pp_sexpr a s pp_sexpr b
  | Sneg a -> Fmt.pf ppf "(-%a)" pp_sexpr a
  | Scall (f, args) ->
      Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") pp_sexpr) args
  | Sif (c, a, b) ->
      Fmt.pf ppf "(if %a %s %a then %a else %a)" pp_sexpr c.sc_lhs
        (Om_expr.Expr.rel_name c.sc_rel)
        pp_sexpr c.sc_rhs pp_sexpr a pp_sexpr b

and pp_name ppf { segments } =
  List.iteri
    (fun i { base; index } ->
      if i > 0 then Fmt.char ppf '.';
      Fmt.string ppf base;
      match index with
      | Some ix -> Fmt.pf ppf "[%a]" pp_sexpr ix
      | None -> ())
    segments
