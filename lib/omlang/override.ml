exception Unknown_target of string

let set_parameter (m : Ast.model) ~cls ~param value =
  let found = ref false in
  let classes =
    List.map
      (fun (c : Ast.class_def) ->
        if c.cname <> cls then c
        else
          let members =
            List.map
              (fun (mem : Ast.member) ->
                match mem with
                | Parameter (n, _) when n = param ->
                    found := true;
                    Ast.Parameter (n, Snum value)
                | m -> m)
              c.members
          in
          { c with members })
      m.classes
  in
  if not !found then
    raise
      (Unknown_target (Printf.sprintf "parameter %s of class %s" param cls));
  { m with classes }

let set_instance_binding (m : Ast.model) ~instance ~name expr =
  let found = ref false in
  let instances =
    List.map
      (fun (i : Ast.instance_def) ->
        if i.iname <> instance then i
        else begin
          found := true;
          let ibindings =
            (name, expr) :: List.remove_assoc name i.ibindings
          in
          { i with ibindings }
        end)
      m.instances
  in
  if not !found then
    raise (Unknown_target (Printf.sprintf "instance %s" instance));
  { m with instances }

exception Structural of string

(* Promotion turns a class parameter into a frozen state variable
   ([x' = 0] with the default as initial value), so a sweep or ensemble
   can vary it per member through the state vector without recompiling.
   This only preserves the model's meaning when nothing rebinds the
   parameter structurally: a [with] binding naming it (inheritance,
   part, or instance) would rebind a parameter but silently shadow or
   conflict with a variable.  We detect any such binding conservatively
   and refuse, letting callers fall back to per-value re-elaboration. *)
let promote_parameter (m : Ast.model) ~cls ~param =
  let exists =
    List.exists
      (fun (c : Ast.class_def) ->
        c.cname = cls
        && List.exists
             (function Ast.Parameter (n, _) -> n = param | _ -> false)
             c.members)
      m.classes
  in
  if not exists then
    raise
      (Unknown_target (Printf.sprintf "parameter %s of class %s" param cls));
  let check_bindings where bs =
    if List.mem_assoc param bs then
      raise
        (Structural
           (Printf.sprintf "parameter %s of class %s is rebound by %s" param
              cls where))
  in
  List.iter
    (fun (c : Ast.class_def) ->
      (match c.parent with
      | Some (p, bs) when p = cls ->
          check_bindings (Printf.sprintf "class %s extends" c.cname) bs
      | _ -> ());
      List.iter
        (function
          | Ast.Part (pname, pcls, bs) when pcls = cls ->
              check_bindings
                (Printf.sprintf "part %s of class %s" pname c.cname)
                bs
          | _ -> ())
        c.members)
    m.classes;
  List.iter
    (fun (i : Ast.instance_def) ->
      if i.icls = cls then
        check_bindings (Printf.sprintf "instance %s" i.iname) i.ibindings)
    m.instances;
  let classes =
    List.map
      (fun (c : Ast.class_def) ->
        if c.cname <> cls then c
        else
          let members =
            List.map
              (fun (mem : Ast.member) ->
                match mem with
                | Parameter (n, default) when n = param ->
                    Ast.Variable (n, default)
                | m -> m)
              c.members
          in
          { c with members = members @ [ Ast.Equation (param, Snum 0.) ] })
      m.classes
  in
  { m with classes }

let flatten_with ~source ~overrides =
  let ast = Parser.parse_model source in
  let ast =
    List.fold_left
      (fun ast (cls, param, value) -> set_parameter ast ~cls ~param value)
      ast overrides
  in
  Flatten.flatten ast
