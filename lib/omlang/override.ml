exception Unknown_target of string

let set_parameter (m : Ast.model) ~cls ~param value =
  let found = ref false in
  let classes =
    List.map
      (fun (c : Ast.class_def) ->
        if c.cname <> cls then c
        else
          let members =
            List.map
              (fun (mem : Ast.member) ->
                match mem with
                | Parameter (n, _) when n = param ->
                    found := true;
                    Ast.Parameter (n, Snum value)
                | m -> m)
              c.members
          in
          { c with members })
      m.classes
  in
  if not !found then
    raise
      (Unknown_target (Printf.sprintf "parameter %s of class %s" param cls));
  { m with classes }

let set_instance_binding (m : Ast.model) ~instance ~name expr =
  let found = ref false in
  let instances =
    List.map
      (fun (i : Ast.instance_def) ->
        if i.iname <> instance then i
        else begin
          found := true;
          let ibindings =
            (name, expr) :: List.remove_assoc name i.ibindings
          in
          { i with ibindings }
        end)
      m.instances
  in
  if not !found then
    raise (Unknown_target (Printf.sprintf "instance %s" instance));
  { m with instances }

let flatten_with ~source ~overrides =
  let ast = Parser.parse_model source in
  let ast =
    List.fold_left
      (fun ast (cls, param, value) -> set_parameter ast ~cls ~param value)
      ast overrides
  in
  Flatten.flatten ast
