(** Model overrides: programmatic editing of parsed models.

    The environment's "evaluation of numerical experiments" (paper §1.1)
    needs the same model re-elaborated under different parameter values —
    e.g. sweeping the external load on the bearing or the river inflow of
    the power plant ("the model can be used for verifying dam safety
    margins, for example", §2.5).  Overrides operate on the AST, before
    flattening, so every parameter dependency re-elaborates correctly. *)

exception Unknown_target of string

val set_parameter :
  Ast.model -> cls:string -> param:string -> float -> Ast.model
(** Replace the default value of a class parameter.
    @raise Unknown_target if the class or parameter does not exist. *)

val set_instance_binding :
  Ast.model -> instance:string -> name:string -> Ast.sexpr -> Ast.model
(** Add or replace a [with] binding on an instance.
    @raise Unknown_target if the instance does not exist. *)

val flatten_with :
  source:string -> overrides:(string * string * float) list ->
  Flat_model.t
(** Parse [source], apply [(class, parameter, value)] overrides, flatten.
    @raise Unknown_target / [Flatten.Error] / [Parser.Error]. *)
