(** Model overrides: programmatic editing of parsed models.

    The environment's "evaluation of numerical experiments" (paper §1.1)
    needs the same model re-elaborated under different parameter values —
    e.g. sweeping the external load on the bearing or the river inflow of
    the power plant ("the model can be used for verifying dam safety
    margins, for example", §2.5).  Overrides operate on the AST, before
    flattening, so every parameter dependency re-elaborates correctly. *)

exception Unknown_target of string

exception Structural of string
(** Raised by {!promote_parameter} when promoting would change the
    model's meaning (the parameter is rebound by a [with] binding). *)

val set_parameter :
  Ast.model -> cls:string -> param:string -> float -> Ast.model
(** Replace the default value of a class parameter.
    @raise Unknown_target if the class or parameter does not exist. *)

val set_instance_binding :
  Ast.model -> instance:string -> name:string -> Ast.sexpr -> Ast.model
(** Add or replace a [with] binding on an instance.
    @raise Unknown_target if the instance does not exist. *)

val promote_parameter : Ast.model -> cls:string -> param:string -> Ast.model
(** Turn a class parameter into a frozen state variable: the member
    becomes [Variable (param, default)] plus the equation
    [der(param) = 0].  After flattening, each instance of the class
    carries the parameter as a state slot whose value can be set per
    ensemble member without re-elaborating the model — the compile-once
    fast path of {!module:Sweep} (in the [objectmath] umbrella).
    Promotion refuses ([Structural]) when any [with] binding (extends,
    part, or instance) rebinds the parameter, because binding a variable
    does not mean the same thing; callers fall back to per-value
    overrides.  Models whose initial values or other parameters depend
    on the promoted parameter fail later, in {!Flatten.flatten} (a
    promoted parameter no longer reduces to a constant) — callers
    should treat that the same way.
    @raise Unknown_target if the class or parameter does not exist.
    @raise Structural on a rebinding conflict. *)

val flatten_with :
  source:string -> overrides:(string * string * float) list ->
  Flat_model.t
(** Parse [source], apply [(class, parameter, value)] overrides, flatten.
    @raise Unknown_target / [Flatten.Error] / [Parser.Error]. *)
