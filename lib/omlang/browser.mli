(** Model structure browser.

    The ObjectMath environment's browser displayed "the overall structure
    of a model" (paper Figure 2), and Figure 5 shows the 2D bearing's
    inheritance hierarchy and composition structure.  This module derives
    both views from a parsed model: which classes extend which, which
    classes contain which parts, and which instances exist of each
    class. *)

type node = {
  cname : string;
  parent : string option;
  children : string list;  (** classes extending this one *)
  parts : (string * string) list;  (** (part name, part class) *)
  instances : string list;  (** instance names (arrays shown as [name[lo..hi]]) *)
}

val analyse : Ast.model -> node list
(** One node per class, in declaration order.
    @raise Flatten.Error on references to unknown classes. *)

val inheritance_tree : Ast.model -> string
(** Indented text rendering of the inheritance hierarchy with instance
    counts — the left half of paper Figure 5. *)

val composition_tree : Ast.model -> string
(** Indented rendering of the part-of structure rooted at the model's
    instances — the right half of paper Figure 5. *)

val to_dot : Ast.model -> string
(** Graphviz rendering: solid edges for inheritance, dashed for
    composition, boxes for classes, ovals for instances. *)
