module E = Om_expr.Expr

(* Precedence: 0 if, 1 additive, 2 multiplicative, 3 unary minus,
   4 power, 5 atom. *)
let rec sexpr_prec prec (e : Ast.sexpr) =
  let paren p s = if prec > p then "(" ^ s ^ ")" else s in
  match e with
  | Snum x ->
      let s =
        if Float.is_integer x && Float.abs x < 1e15 then
          Printf.sprintf "%.1f" x
        else Printf.sprintf "%.17g" x
      in
      if x < 0. then paren 2 s else s
  | Sname n -> name n
  | Sbin (op, a, b) -> (
      match op with
      | Badd -> paren 1 (sexpr_prec 1 a ^ " + " ^ sexpr_prec 2 b)
      | Bsub -> paren 1 (sexpr_prec 1 a ^ " - " ^ sexpr_prec 2 b)
      | Bmul -> paren 2 (sexpr_prec 2 a ^ " * " ^ sexpr_prec 3 b)
      | Bdiv -> paren 2 (sexpr_prec 2 a ^ " / " ^ sexpr_prec 3 b)
      | Bpow -> paren 4 (sexpr_prec 5 a ^ " ^ " ^ sexpr_prec 3 b))
  | Sneg a -> paren 3 ("-" ^ sexpr_prec 3 a)
  | Scall (f, args) ->
      f ^ "(" ^ String.concat ", " (List.map (sexpr_prec 0) args) ^ ")"
  | Sif (c, t, e') ->
      paren 0
        (Printf.sprintf "if %s %s %s then %s else %s" (sexpr_prec 1 c.sc_lhs)
           (E.rel_name c.sc_rel) (sexpr_prec 1 c.sc_rhs) (sexpr_prec 0 t)
           (sexpr_prec 0 e'))

and name ({ segments } : Ast.name) =
  String.concat "."
    (List.map
       (fun ({ base; index } : Ast.segment) ->
         match index with
         | None -> base
         | Some ix -> Printf.sprintf "%s[%s]" base (sexpr_prec 0 ix))
       segments)

let sexpr = sexpr_prec 0

let bindings = function
  | [] -> ""
  | bs ->
      " with "
      ^ String.concat ", "
          (List.map (fun (k, e) -> Printf.sprintf "%s = %s" k (sexpr e)) bs)

let member (m : Ast.member) =
  match m with
  | Parameter (n, e) -> Printf.sprintf "  parameter %s = %s;" n (sexpr e)
  | Variable (n, e) -> Printf.sprintf "  variable %s init %s;" n (sexpr e)
  | Alias (n, e) -> Printf.sprintf "  alias %s = %s;" n (sexpr e)
  | Part (n, cls, bs) -> Printf.sprintf "  part %s : %s%s;" n cls (bindings bs)
  | Equation (n, e) -> Printf.sprintf "  equation der(%s) = %s;" n (sexpr e)

let class_def (c : Ast.class_def) =
  let header =
    match c.parent with
    | None -> Printf.sprintf "class %s" c.cname
    | Some (p, bs) -> Printf.sprintf "class %s extends %s%s" c.cname p (bindings bs)
  in
  String.concat "\n"
    ((header :: List.map member c.members) @ [ "end;" ])

let instance_def (i : Ast.instance_def) =
  match i.range with
  | None -> Printf.sprintf "instance %s of %s%s;" i.iname i.icls (bindings i.ibindings)
  | Some (lo, hi) ->
      Printf.sprintf "instance %s[%d..%d] of %s%s;" i.iname lo hi i.icls
        (bindings i.ibindings)

let model (m : Ast.model) =
  String.concat "\n\n"
    ((Printf.sprintf "model %s;" m.mname)
     :: (List.map class_def m.classes @ List.map instance_def m.instances))
  ^ "\n"

(* ---- flat model back to source ---- *)

let flat_name s =
  String.map (fun c -> match c with '.' | '[' | ']' | ',' -> '_' | c -> c) s

(* Expressions of a flat model contain only state variables and t. *)
let rec flat_expr (e : E.t) : Ast.sexpr =
  match e with
  | E.Const x -> Snum x
  | E.Var "t" -> Sname (Ast.name_of_string "time")
  | E.Var v -> Sname (Ast.name_of_string (flat_name v))
  | E.Add (t :: ts) ->
      List.fold_left (fun acc u -> Ast.Sbin (Badd, acc, flat_expr u)) (flat_expr t) ts
  | E.Add [] -> Snum 0.
  | E.Mul (f :: fs) ->
      List.fold_left (fun acc u -> Ast.Sbin (Bmul, acc, flat_expr u)) (flat_expr f) fs
  | E.Mul [] -> Snum 1.
  | E.Pow (b, ex) -> Sbin (Bpow, flat_expr b, flat_expr ex)
  | E.Call (f, args) -> Scall (E.func_name f, List.map flat_expr args)
  | E.If (c, t, e') ->
      Sif
        ( { sc_lhs = flat_expr c.lhs; sc_rel = c.rel; sc_rhs = flat_expr c.rhs },
          flat_expr t, flat_expr e' )

let flat_model (fm : Flat_model.t) =
  let members =
    List.map
      (fun (s, v) -> Ast.Variable (flat_name s, Snum v))
      fm.states
    @ List.map
        (fun (s, rhs) -> Ast.Equation (flat_name s, flat_expr rhs))
        fm.equations
  in
  model
    {
      mname = fm.name;
      classes =
        [ { cname = "Flat"; parent = None; members; cpos = { line = 0; col = 0 } } ];
      instances =
        [ { iname = "m"; range = None; icls = "Flat"; ibindings = [];
            ipos = { line = 0; col = 0 } } ];
    }
