type node = {
  cname : string;
  parent : string option;
  children : string list;
  parts : (string * string) list;
  instances : string list;
}

let err fmt = Printf.ksprintf (fun s -> raise (Flatten.Error s)) fmt

let instance_label (i : Ast.instance_def) =
  match i.range with
  | None -> i.iname
  | Some (lo, hi) -> Printf.sprintf "%s[%d..%d]" i.iname lo hi

let analyse (m : Ast.model) =
  let class_names = List.map (fun (c : Ast.class_def) -> c.cname) m.classes in
  let check name =
    if not (List.mem name class_names) then err "unknown class %s" name
  in
  List.map
    (fun (c : Ast.class_def) ->
      let parent =
        match c.parent with
        | Some (p, _) ->
            check p;
            Some p
        | None -> None
      in
      let children =
        List.filter_map
          (fun (other : Ast.class_def) ->
            match other.parent with
            | Some (p, _) when p = c.cname -> Some other.cname
            | _ -> None)
          m.classes
      in
      let parts =
        List.filter_map
          (function
            | Ast.Part (n, cls, _) ->
                check cls;
                Some (n, cls)
            | _ -> None)
          c.members
      in
      let instances =
        List.filter_map
          (fun (i : Ast.instance_def) ->
            if i.icls = c.cname then Some (instance_label i) else None)
          m.instances
      in
      { cname = c.cname; parent; children; parts; instances })
    m.classes

let inheritance_tree (m : Ast.model) =
  let nodes = analyse m in
  let find name = List.find (fun n -> n.cname = name) nodes in
  let buf = Buffer.create 512 in
  let rec render indent n =
    Buffer.add_string buf indent;
    Buffer.add_string buf n.cname;
    (match n.instances with
    | [] -> ()
    | is ->
        Buffer.add_string buf
          (Printf.sprintf "  <- instances: %s" (String.concat ", " is)));
    Buffer.add_char buf '\n';
    List.iter (fun child -> render (indent ^ "  ") (find child)) n.children
  in
  List.iter (fun n -> if n.parent = None then render "" n) nodes;
  Buffer.contents buf

let composition_tree (m : Ast.model) =
  let nodes = analyse m in
  let find name = List.find (fun n -> n.cname = name) nodes in
  let buf = Buffer.create 512 in
  let rec render indent label cls depth =
    Buffer.add_string buf indent;
    Buffer.add_string buf (Printf.sprintf "%s : %s\n" label cls);
    if depth < 16 then
      List.iter
        (fun (pname, pcls) -> render (indent ^ "  ") pname pcls (depth + 1))
        (find cls).parts
  in
  List.iter
    (fun (i : Ast.instance_def) -> render "" (instance_label i) i.icls 0)
    m.instances;
  Buffer.contents buf

let to_dot (m : Ast.model) =
  let nodes = analyse m in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph \"model\" {\n  rankdir=BT;\n";
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [shape=box];\n" n.cname);
      (match n.parent with
      | Some p ->
          Buffer.add_string buf
            (Printf.sprintf "  \"%s\" -> \"%s\";\n" n.cname p)
      | None -> ());
      List.iter
        (fun (pname, pcls) ->
          Buffer.add_string buf
            (Printf.sprintf
               "  \"%s\" -> \"%s\" [style=dashed, label=\"%s\"];\n" n.cname
               pcls pname))
        n.parts;
      List.iter
        (fun inst ->
          Buffer.add_string buf
            (Printf.sprintf
               "  \"inst %s\" [shape=ellipse];\n  \"inst %s\" -> \"%s\" \
                [style=dotted];\n"
               inst inst n.cname))
        n.instances)
    nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
