(** Hand-written lexer for the modelling language.

    Comments run from [//] to end of line or between [(*] and [*)]
    (nested).  Identifiers are [[A-Za-z_][A-Za-z0-9_]*]; keywords are
    case-sensitive and lowercase. *)

exception Error of string * Ast.pos

val tokenize : string -> (Token.t * Ast.pos) list
(** The resulting list always ends with [EOF].
    @raise Error on unexpected characters or unterminated comments. *)
