(** Lexical tokens of the modelling language. *)

type t =
  | IDENT of string
  | NUMBER of float
  | KW_MODEL
  | KW_CLASS
  | KW_EXTENDS
  | KW_WITH
  | KW_PARAMETER
  | KW_VARIABLE
  | KW_INIT
  | KW_ALIAS
  | KW_PART
  | KW_EQUATION
  | KW_INSTANCE
  | KW_OF
  | KW_END
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_DER
  | KW_TIME
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | COMMA
  | SEMI
  | COLON
  | DOT
  | DOTDOT
  | EQ  (** [=] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CARET
  | LT
  | LE
  | GT
  | GE
  | EOF

let keyword_table =
  [
    ("model", KW_MODEL);
    ("class", KW_CLASS);
    ("extends", KW_EXTENDS);
    ("with", KW_WITH);
    ("parameter", KW_PARAMETER);
    ("variable", KW_VARIABLE);
    ("init", KW_INIT);
    ("alias", KW_ALIAS);
    ("part", KW_PART);
    ("equation", KW_EQUATION);
    ("instance", KW_INSTANCE);
    ("of", KW_OF);
    ("end", KW_END);
    ("if", KW_IF);
    ("then", KW_THEN);
    ("else", KW_ELSE);
    ("der", KW_DER);
    ("time", KW_TIME);
  ]

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUMBER x -> Printf.sprintf "number %g" x
  | KW_MODEL -> "'model'"
  | KW_CLASS -> "'class'"
  | KW_EXTENDS -> "'extends'"
  | KW_WITH -> "'with'"
  | KW_PARAMETER -> "'parameter'"
  | KW_VARIABLE -> "'variable'"
  | KW_INIT -> "'init'"
  | KW_ALIAS -> "'alias'"
  | KW_PART -> "'part'"
  | KW_EQUATION -> "'equation'"
  | KW_INSTANCE -> "'instance'"
  | KW_OF -> "'of'"
  | KW_END -> "'end'"
  | KW_IF -> "'if'"
  | KW_THEN -> "'then'"
  | KW_ELSE -> "'else'"
  | KW_DER -> "'der'"
  | KW_TIME -> "'time'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACK -> "'['"
  | RBRACK -> "']'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | COLON -> "':'"
  | DOT -> "'.'"
  | DOTDOT -> "'..'"
  | EQ -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | CARET -> "'^'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EOF -> "end of input"
