(** Unparser: abstract syntax back to concrete model text.

    The ObjectMath 4.0 architecture (paper Figure 8) contains a
    "Mathematica Unparser" box between the transformer and the code
    generator; this is its counterpart for the reproduction's surface
    syntax.  [Parser.parse_model (model m)] reproduces [m] up to position
    information, which the round-trip property tests verify. *)

val sexpr : Ast.sexpr -> string
val member : Ast.member -> string
val class_def : Ast.class_def -> string
val instance_def : Ast.instance_def -> string
val model : Ast.model -> string

val flat_model : Flat_model.t -> string
(** Render a flattened model as a single-class model whose instance names
    are encoded into the variable names (dots become underscores), so that
    flattening output can itself be saved, inspected and re-flattened. *)

val flat_name : string -> string
(** The name mangling {!flat_model} applies to qualified state names
    ([.], [\[], [\]] and [,] become [_]) — exposed so the fuzz oracle
    can predict the variable names a re-flattened flat model gets. *)
