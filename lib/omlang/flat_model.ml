(** Flat ODE model: the result of compiling away classes, inheritance,
    composition and instance arrays.

    Every state variable carries its fully qualified name (for example
    [W[3].phi] for roller 3's angle) and a numeric initial value; every
    equation is an explicit first-order ODE whose right-hand side refers
    only to state variables and the time variable ["t"].  This is the
    "ODEs internal form" box of the paper's Figure 7. *)

type t = {
  name : string;
  states : (string * float) list;  (** ordered: defines the state vector *)
  equations : (string * Om_expr.Expr.t) list;
      (** same order as [states]; [fst] is the state name *)
}

let dim m = List.length m.states

let state_names m = Array.of_list (List.map fst m.states)

let initial_values m = Array.of_list (List.map snd m.states)

let rhs_of m name =
  match List.assoc_opt name m.equations with
  | Some e -> e
  | None -> invalid_arg ("Flat_model.rhs_of: unknown state " ^ name)

(** Dependency graph between equations: an edge [x -> y] means state [x]
    appears in the right-hand side of [y'] — the input to the SCC analysis
    of paper Figures 3 and 6. *)
let dependency_graph m =
  let g = Om_graph.Digraph.create () in
  let ids =
    List.map (fun (s, _) -> (s, Om_graph.Digraph.add_node g s)) m.states
  in
  List.iter
    (fun (y, rhs) ->
      let target = List.assoc y ids in
      List.iter
        (fun v ->
          match List.assoc_opt v ids with
          | Some src -> Om_graph.Digraph.add_edge g src target
          | None -> ())
        (Om_expr.Expr.vars rhs))
    m.equations;
  g

let total_rhs_flops m =
  List.fold_left
    (fun acc (_, e) -> acc +. Om_expr.Cost.flops_mean e)
    0. m.equations
