exception Error of string

module E = Om_expr.Expr
module Smap = Map.Make (String)

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Inheritance resolution: merge parent members into the child, child
   definitions overriding same-named parent members, [extends ... with]
   bindings rewriting parent parameter defaults. *)

let member_key : Ast.member -> string = function
  | Parameter (n, _) -> "d:" ^ n  (* parameters, aliases and variables *)
  | Variable (n, _) -> "d:" ^ n   (* share one namespace *)
  | Alias (n, _) -> "d:" ^ n
  | Part (n, _, _) -> "d:" ^ n
  | Equation (n, _) -> "e:" ^ n

let resolve_class ?referrer classes cname =
  let rec resolve seen cname =
    if List.mem cname seen then
      err "inheritance cycle through class %s (chain: %s)" cname
        (String.concat " -> " (List.rev (cname :: seen)));
    let cls =
      match Hashtbl.find_opt classes cname with
      | Some c -> c
      | None -> (
          match (seen, referrer) with
          | child :: _, _ ->
              err "unknown class %s (parent of class %s)" cname child
          | [], Some r ->
              err "unknown class %s (instantiated as %s)" cname r
          | [], None -> err "unknown class %s" cname)
    in
    match cls.Ast.parent with
    | None -> cls.members
    | Some (pname, bindings) ->
        let inherited = resolve (cname :: seen) pname in
        (* Apply [with] bindings to parent parameters. *)
        let inherited =
          List.fold_left
            (fun members (k, e) ->
              let found = ref false in
              let members =
                List.map
                  (function
                    | Ast.Parameter (n, _) when n = k ->
                        found := true;
                        Ast.Parameter (n, e)
                    | m -> m)
                  members
              in
              if not !found then
                err "class %s: 'extends %s with %s = ...' does not match a \
                     parameter of %s"
                  cname pname k pname;
              members)
            inherited bindings
        in
        (* Child members override same-keyed inherited members. *)
        let child_keys = List.map member_key cls.members in
        List.filter
          (fun m -> not (List.mem (member_key m) child_keys))
          inherited
        @ cls.members
  in
  resolve [] cname

(* ------------------------------------------------------------------ *)
(* Elaboration contexts. *)

type local_kind = Kdef  (* parameter, variable or alias *) | Kpart

type ctx = {
  classes : (string, Ast.class_def) Hashtbl.t;
  prefix : string;  (* dotted path of the instance being elaborated *)
  locals : local_kind Smap.t;
  bindings : E.t Smap.t;  (* imported names, already elaborated *)
}

let qualified prefix n = if prefix = "" then n else prefix ^ "." ^ n

(* Accumulated flat declarations. *)
type acc = {
  mutable defs : (string * E.t) list;  (* parameters and aliases, reversed *)
  mutable states : (string * E.t) list;  (* name, init expr, reversed *)
  mutable eqs : (string * E.t) list;  (* state, rhs, reversed *)
}

let rec elab ctx (e : Ast.sexpr) : E.t =
  match e with
  | Snum x -> E.const x
  | Sneg a -> E.neg (elab ctx a)
  | Sbin (op, a, b) -> (
      let a = elab ctx a and b = elab ctx b in
      match op with
      | Badd -> E.add [ a; b ]
      | Bsub -> E.sub a b
      | Bmul -> E.mul [ a; b ]
      | Bdiv -> E.div a b
      | Bpow -> E.pow a b)
  | Scall (f, args) -> (
      let args = List.map (elab ctx) args in
      match E.func_of_name f with
      | Some fn ->
          if List.length args <> E.func_arity fn then
            err "function %s expects %d arguments" f (E.func_arity fn);
          E.call fn args
      | None -> err "unknown function %s" f)
  | Sif (c, a, b) ->
      E.if_
        (E.cond (elab ctx c.sc_lhs) c.sc_rel (elab ctx c.sc_rhs))
        (elab ctx a) (elab ctx b)
  | Sname n -> elab_name ctx n

and seg_string ctx ({ base; index } : Ast.segment) =
  match index with
  | None -> base
  | Some ix -> (
      match elab ctx ix with
      | E.Const k when Float.is_integer k ->
          Printf.sprintf "%s[%d]" base (int_of_float k)
      | _ -> err "index of %s does not reduce to an integer constant" base)

and elab_name ctx ({ segments } : Ast.name) : E.t =
  match segments with
  | [] -> assert false
  | [ { base = "time"; index = None } ] -> E.var "t"
  | [ { base; index = None } ] when Smap.mem base ctx.bindings ->
      Smap.find base ctx.bindings
  | { base; index = None } :: rest when Smap.mem base ctx.locals -> (
      match (Smap.find base ctx.locals, rest) with
      | Kdef, [] -> E.var (qualified ctx.prefix base)
      | Kdef, _ :: _ ->
          err "%s is not a part; cannot select %s.%s in %s" base base
            (String.concat "." (List.map (fun s -> s.Ast.base) rest))
            (if ctx.prefix = "" then "top level" else ctx.prefix)
      | Kpart, [] -> err "part %s used as a value" base
      | Kpart, rest ->
          let tail = List.map (seg_string ctx) rest in
          E.var
            (String.concat "." (qualified ctx.prefix base :: tail)))
  | segs ->
      (* Global reference to another instance's member, e.g. Outer.omega
         or W[3].x; validated once all instances are flattened. *)
      E.var (String.concat "." (List.map (seg_string ctx) segs))

(* ------------------------------------------------------------------ *)

let local_table members =
  List.fold_left
    (fun m (mem : Ast.member) ->
      match mem with
      | Parameter (n, _) | Variable (n, _) | Alias (n, _) ->
          Smap.add n Kdef m
      | Part (n, _, _) -> Smap.add n Kpart m
      | Equation _ -> m)
    Smap.empty members

(* Re-raise elaboration errors with the class member being elaborated, so
   a bad expression deep inside an inheritance chain or part tree names
   its definition site instead of surfacing as a bare message. *)
let in_member ~cls what name f =
  try f ()
  with Error msg -> err "class %s, %s %s: %s" cls what name msg

let rec instantiate classes acc ~prefix ~cls_name ~bindings =
  let members = resolve_class ~referrer:prefix classes cls_name in
  let locals = local_table members in
  (* Names bound at the instantiation site that do not match a declared
     parameter are imports; those matching parameters override defaults. *)
  let param_names =
    List.filter_map
      (function Ast.Parameter (n, _) -> Some n | _ -> None)
      members
  in
  let imports =
    Smap.filter (fun k _ -> not (List.mem k param_names)) bindings
  in
  let ctx = { classes; prefix; locals; bindings = imports } in
  List.iter
    (fun (mem : Ast.member) ->
      match mem with
      | Parameter (n, default) ->
          let value =
            match Smap.find_opt n bindings with
            | Some pre_elaborated -> pre_elaborated
            | None ->
                in_member ~cls:cls_name "parameter" n (fun () ->
                    elab ctx default)
          in
          acc.defs <- (qualified prefix n, value) :: acc.defs
      | Alias (n, e) ->
          let value =
            in_member ~cls:cls_name "alias" n (fun () -> elab ctx e)
          in
          acc.defs <- (qualified prefix n, value) :: acc.defs
      | Variable (n, init) ->
          let value =
            in_member ~cls:cls_name "variable" n (fun () -> elab ctx init)
          in
          acc.states <- (qualified prefix n, value) :: acc.states
      | Part (pname, pcls, pbindings) ->
          let sub_bindings =
            in_member ~cls:cls_name "part" pname (fun () ->
                List.fold_left
                  (fun m (k, e) -> Smap.add k (elab ctx e) m)
                  Smap.empty pbindings)
          in
          instantiate classes acc
            ~prefix:(qualified prefix pname)
            ~cls_name:pcls ~bindings:sub_bindings
      | Equation (n, rhs) ->
          if not (Smap.mem n locals) then
            err "equation for undeclared variable %s in class %s" n cls_name;
          let rhs =
            in_member ~cls:cls_name "equation der" n (fun () -> elab ctx rhs)
          in
          acc.eqs <- (qualified prefix n, rhs) :: acc.eqs)
    members

(* Substitute parameters and aliases into each other in dependency order,
   then into every equation and initial value. *)
let eliminate_defs defs =
  let names = List.map fst defs in
  let g = Om_graph.Digraph.create () in
  let ids = List.map (fun n -> (n, Om_graph.Digraph.add_node g n)) names in
  List.iter
    (fun (n, e) ->
      List.iter
        (fun v ->
          match List.assoc_opt v ids with
          | Some src when v <> n ->
              Om_graph.Digraph.add_edge g src (List.assoc n ids)
          | Some _ -> err "definition %s refers to itself" n
          | None -> ())
        (E.vars e))
    defs;
  let by_id = Array.of_list names in
  let order =
    match Om_graph.Topo.sort g with
    | order -> order
    | exception Invalid_argument _ ->
        let comps = Om_graph.Scc.tarjan g in
        let cycle =
          match Om_graph.Scc.nontrivial g comps with
          | c :: _ -> List.map (fun id -> by_id.(id)) comps.members.(c)
          | [] -> []
        in
        err "algebraic loop among parameters/aliases (%s)"
          (String.concat " -> " (List.sort String.compare cycle))
  in
  List.fold_left
    (fun resolved id ->
      let n = by_id.(id) in
      let e = List.assoc n defs in
      Smap.add n (Om_expr.Subst.apply_map resolved e) resolved)
    Smap.empty
    (List.map (fun id -> id) order)

let flatten (model : Ast.model) : Flat_model.t =
  let classes = Hashtbl.create 16 in
  List.iter
    (fun (c : Ast.class_def) ->
      if Hashtbl.mem classes c.cname then
        err "duplicate class %s" c.cname;
      Hashtbl.add classes c.cname c)
    model.classes;
  if model.instances = [] then err "model %s declares no instances" model.mname;
  let acc = { defs = []; states = []; eqs = [] } in
  let global_ctx ?index () =
    let bindings =
      match index with
      | Some i -> Smap.singleton "index" (E.int i)
      | None -> Smap.empty
    in
    { classes; prefix = ""; locals = Smap.empty; bindings }
  in
  List.iter
    (fun (inst : Ast.instance_def) ->
      let expand ~index prefix =
        let ctx = global_ctx ?index () in
        let bindings =
          List.fold_left
            (fun m (k, e) -> Smap.add k (elab ctx e) m)
            (match index with
            | Some i -> Smap.singleton "index" (E.int i)
            | None -> Smap.empty)
            inst.ibindings
        in
        instantiate classes acc ~prefix ~cls_name:inst.icls ~bindings
      in
      match inst.range with
      | None -> expand ~index:None inst.iname
      | Some (lo, hi) ->
          if hi < lo then err "instance %s: empty range" inst.iname;
          for i = lo to hi do
            expand ~index:(Some i) (Printf.sprintf "%s[%d]" inst.iname i)
          done)
    model.instances;
  let defs = List.rev acc.defs in
  let states = List.rev acc.states in
  let eqs = List.rev acc.eqs in
  (* Duplicate detection. *)
  let check_dups what names =
    let seen = Hashtbl.create 64 in
    List.iter
      (fun n ->
        if Hashtbl.mem seen n then err "duplicate %s %s" what n
        else Hashtbl.add seen n ())
      names
  in
  check_dups "definition" (List.map fst defs @ List.map fst states);
  check_dups "equation for" (List.map fst eqs);
  let resolved = eliminate_defs defs in
  let state_names = List.map fst states in
  (* Every state needs exactly one equation, in state order. *)
  let eq_for s =
    match List.assoc_opt s eqs with
    | Some rhs -> rhs
    | None -> err "no equation for state variable %s" s
  in
  List.iter
    (fun (s, _) ->
      if not (List.mem s state_names) then
        err "equation for %s, which is not a state variable" s)
    eqs;
  let subst e = Om_expr.Subst.apply_map resolved e in
  let final_eqs =
    List.map
      (fun s ->
        let rhs = subst (eq_for s) in
        List.iter
          (fun v ->
            if (not (List.mem v state_names)) && v <> "t" then
              err "unresolved name %s in the equation for %s" v s)
          (E.vars rhs);
        (s, rhs))
      state_names
  in
  let final_states =
    List.map
      (fun (s, init) ->
        match subst init with
        | E.Const x -> (s, x)
        | e ->
            err "initial value of %s does not reduce to a constant (%s)" s
              (Fmt.str "%a" E.pp e))
      states
  in
  { Flat_model.name = model.mname; states = final_states; equations = final_eqs }

let flatten_string src = flatten (Parser.parse_model src)
