exception Error of string * Ast.pos

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let current st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (match current st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let here st : Ast.pos = { line = st.line; col = st.col }

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let rec skip_block_comment st depth pos0 =
  match current st with
  | None -> raise (Error ("unterminated comment", pos0))
  | Some '*' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = ')'
    ->
      advance st;
      advance st;
      if depth > 1 then skip_block_comment st (depth - 1) pos0
  | Some '(' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '*'
    ->
      advance st;
      advance st;
      skip_block_comment st (depth + 1) pos0
  | Some _ ->
      advance st;
      skip_block_comment st depth pos0

let lex_number st =
  let start = st.pos in
  while (match current st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  (match current st with
  | Some '.'
    when st.pos + 1 < String.length st.src && is_digit st.src.[st.pos + 1] ->
      advance st;
      while (match current st with Some c -> is_digit c | None -> false) do
        advance st
      done
  | _ -> ());
  (* Consume an exponent only if it is complete ([e], optional sign, at
     least one digit) — otherwise [6e+foo] would lex as a broken number. *)
  (match current st with
  | Some ('e' | 'E') ->
      let n = String.length st.src in
      let after_sign =
        if
          st.pos + 1 < n
          && (st.src.[st.pos + 1] = '+' || st.src.[st.pos + 1] = '-')
        then st.pos + 2
        else st.pos + 1
      in
      if after_sign < n && is_digit st.src.[after_sign] then begin
        advance st;
        (match current st with
        | Some ('+' | '-') -> advance st
        | _ -> ());
        while (match current st with Some c -> is_digit c | None -> false) do
          advance st
        done
      end
  | _ -> ());
  float_of_string (String.sub st.src start (st.pos - start))

let lex_ident st =
  let start = st.pos in
  while (match current st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let toks = ref [] in
  let emit tok pos = toks := (tok, pos) :: !toks in
  let rec loop () =
    match current st with
    | None -> emit Token.EOF (here st)
    | Some c ->
        let pos = here st in
        (match c with
        | ' ' | '\t' | '\r' | '\n' -> advance st
        | '/' when st.pos + 1 < String.length src && src.[st.pos + 1] = '/' ->
            while
              match current st with Some c -> c <> '\n' | None -> false
            do
              advance st
            done
        | '(' when st.pos + 1 < String.length src && src.[st.pos + 1] = '*' ->
            advance st;
            advance st;
            skip_block_comment st 1 pos
        | '(' ->
            advance st;
            emit Token.LPAREN pos
        | ')' ->
            advance st;
            emit Token.RPAREN pos
        | '[' ->
            advance st;
            emit Token.LBRACK pos
        | ']' ->
            advance st;
            emit Token.RBRACK pos
        | ',' ->
            advance st;
            emit Token.COMMA pos
        | ';' ->
            advance st;
            emit Token.SEMI pos
        | ':' ->
            advance st;
            emit Token.COLON pos
        | '.' when st.pos + 1 < String.length src && src.[st.pos + 1] = '.' ->
            advance st;
            advance st;
            emit Token.DOTDOT pos
        | '.' ->
            advance st;
            emit Token.DOT pos
        | '=' ->
            advance st;
            emit Token.EQ pos
        | '+' ->
            advance st;
            emit Token.PLUS pos
        | '-' ->
            advance st;
            emit Token.MINUS pos
        | '*' ->
            advance st;
            emit Token.STAR pos
        | '/' ->
            advance st;
            emit Token.SLASH pos
        | '^' ->
            advance st;
            emit Token.CARET pos
        | '<' when st.pos + 1 < String.length src && src.[st.pos + 1] = '=' ->
            advance st;
            advance st;
            emit Token.LE pos
        | '<' ->
            advance st;
            emit Token.LT pos
        | '>' when st.pos + 1 < String.length src && src.[st.pos + 1] = '=' ->
            advance st;
            advance st;
            emit Token.GE pos
        | '>' ->
            advance st;
            emit Token.GT pos
        | c when is_digit c -> emit (Token.NUMBER (lex_number st)) pos
        | c when is_ident_start c ->
            let word = lex_ident st in
            let tok =
              match List.assoc_opt word Token.keyword_table with
              | Some kw -> kw
              | None -> Token.IDENT word
            in
            emit tok pos
        | c ->
            raise (Error (Printf.sprintf "unexpected character %C" c, pos)));
        if (match !toks with (Token.EOF, _) :: _ -> false | _ -> true) then
          loop ()
  in
  loop ();
  List.rev !toks
