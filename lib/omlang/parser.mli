(** Recursive-descent parser for the modelling language.

    Grammar sketch:
    {v
    model      ::= 'model' IDENT ';' (class | instance)* EOF
    class      ::= 'class' IDENT ('extends' IDENT withs?)? member* 'end' ';'?
    member     ::= 'parameter' IDENT '=' expr ';'
                 | 'variable' IDENT ('init' expr)? ';'
                 | 'alias' IDENT '=' expr ';'
                 | 'part' IDENT ':' IDENT withs? ';'
                 | 'equation' 'der' '(' IDENT ')' '=' expr ';'
    instance   ::= 'instance' IDENT ('[' INT '..' INT ']')?
                   'of' IDENT withs? ';'
    withs      ::= 'with' IDENT '=' expr (',' IDENT '=' expr)*
    expr       ::= additive | 'if' cond 'then' expr 'else' expr
    cond       ::= additive relop additive
    v}
    Expressions use the usual precedence (unary minus, [^] right
    associative, then [*]/[/], then [+]/[-]). *)

exception Error of string * Ast.pos

val parse_model : string -> Ast.model
(** @raise Error with a message and source position on syntax errors.
    @raise Lexer.Error on lexical errors. *)

val parse_expr : string -> Ast.sexpr
(** Parse a standalone expression (used by tests and the CLI). *)
