/* Monotonic clock for the parallel runtime's telemetry.
 *
 * The native entry point returns an unboxed double so OCaml callers
 * declared with [@unboxed]/[@@noalloc] can read the clock without
 * allocating — a requirement of the zero-allocation steady-state round
 * (see Om_parallel.Par_exec).  CLOCK_MONOTONIC is immune to wall-clock
 * adjustments, so per-task deltas are always non-negative. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

double om_monotonic_now_unboxed(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec;
}

CAMLprim value om_monotonic_now(value unit)
{
  return caml_copy_double(om_monotonic_now_unboxed(unit));
}
