(** Pre-spawned OCaml domains executing one fixed job per round.

    A pool owns [nworkers] domains for its whole lifetime — spawning a
    domain costs far more than an RHS round, so the supervisor/worker
    scheme of the paper maps onto domains spawned once and reused for
    every solver step.  Each round, worker [w] runs [job w] exactly
    once; {!round} returns when all workers have finished, with the
    workers' writes visible to the caller.

    Synchronisation is a generation counter and a completion counter
    (both [Atomic.t]) with a bounded spin before falling back to a
    mutex/condition sleep, so a steady-state round allocates nothing on
    any domain and behaves correctly both on dedicated cores (spin hits)
    and on oversubscribed machines (workers block instead of burning the
    supervisor's time slice). *)

type t

val create :
  ?spin_budget:int ->
  ?barrier_deadline:float ->
  ?spawn_fail:(int -> bool) ->
  job:(int -> unit) ->
  int ->
  t
(** [create ~job n] spawns [n] worker domains.  [job w] is the fixed
    body worker [w] executes each round; it must only touch state that
    is safe to share between domains (disjoint array slots, its own
    register files).  [spin_budget] (default 2000) bounds the busy-wait
    before a worker or the supervisor blocks.

    [barrier_deadline] (seconds, default [0.] = disabled) arms stall
    detection: a round that outlives the deadline records a typed
    {!Om_guard.Om_error.Worker_stall} / [Barrier_timeout] event,
    retrievable with {!take_stall}.  Detection is advisory — the round
    still waits for every worker, so a slow worker's writes are never
    torn.

    [spawn_fail] is a fault-injection hook consulted per worker id
    before any domain is spawned ([Om_guard.Fault_plan.spawn_should_fail]
    in chaos runs).
    @raise Invalid_argument if [n < 1], [spin_budget < 0] or
    [barrier_deadline < 0].
    @raise Om_guard.Om_error.Error ([Spawn_failure]) when [spawn_fail]
    trips or [Domain.spawn] itself fails; already-spawned domains are
    joined first, so nothing leaks. *)

val round : t -> unit
(** Run one round: every worker executes its job once; returns when all
    are done.  Allocation-free in steady state (with stall detection
    disarmed).

    A job that raises does not kill its domain or hang the barrier: the
    exception is contained on the worker, the round completes, and the
    exception is re-raised here on the supervisor — typed
    {!Om_guard.Om_error.Error} faults unchanged, anything else wrapped
    as [Worker_exception] with the worker and round attached.  The pool
    stays fully operational for subsequent rounds and {!shutdown}.
    @raise Invalid_argument after {!shutdown}. *)

val take_stall : t -> Om_guard.Om_error.t option
(** The stall event recorded by the last deadline overrun, if any;
    clears it.  [None] when stall detection is disarmed or every round
    met its deadline. *)

val shutdown : t -> unit
(** Terminate and join the worker domains.  Idempotent.  The pool
    cannot be restarted afterwards. *)

val nworkers : t -> int

val rounds : t -> int
(** Rounds completed so far. *)

val active : t -> bool
(** [true] until {!shutdown}. *)

val compute_seconds : t -> float array
(** The pool's per-worker timing buffer: [(compute_seconds t).(w)] is
    the wall-clock seconds worker [w] spent in its job during the last
    completed round, measured on the worker with the unboxed monotonic
    clock ({!Monotonic.now}).  The buffer itself is returned (not a
    copy) so reading it every round stays allocation-free; its contents
    are only stable between rounds. *)

val round_timing : t -> float array
(** The pool's 1-slot round-timing buffer: [(round_timing t).(0)] is
    the wall-clock seconds of the last {!round}, from publishing the
    generation to the last worker's completion.  Same aliasing contract
    as {!compute_seconds}. *)

val last_round_seconds : t -> float
(** [(round_timing t).(0)], for callers outside the hot path. *)
