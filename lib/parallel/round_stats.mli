(** Per-worker round telemetry for the real domain executor.

    Accumulates, over the lifetime of a {!Par_exec} executor, what the
    machine simulator reports analytically: per-worker compute versus
    barrier-wait time, total round wall time, reschedule count and the
    supervisor time spent rebuilding schedules, and the estimated
    makespan of the live schedule.  {!Runtime.report} surfaces these
    instead of the placeholder values real execution used to fake.

    {!observe_round} is allocation-free: scalar accumulators live in a
    pre-allocated float array (a mutable [float] record field would box
    on every update without flambda), and the round duration arrives
    through the pool's 1-slot timing buffer rather than as a fresh
    [float] argument (which would box at the call boundary). *)

type t

val create : nworkers:int -> t
(** @raise Invalid_argument if [nworkers < 1]. *)

val observe_round : t -> timing:float array -> compute:float array -> unit
(** Record one completed round.  [timing.(0)] is the round's wall-clock
    seconds ({!Domain_pool.round_timing}); [compute.(w)] worker [w]'s
    job seconds ({!Domain_pool.compute_seconds}).  Allocation-free.
    @raise Invalid_argument if [compute] is not [nworkers] long. *)

val note_reschedule : t -> seconds:float -> makespan:float -> unit
(** Record one schedule rebuild: the supervisor seconds it took and the
    LPT-estimated makespan of the new schedule (in the rescheduler's
    cost units). *)

val set_live_makespan : t -> float -> unit
(** Initialise the live-schedule makespan before the first rebuild. *)

val reset : t -> unit
(** Zero every accumulator (e.g. after warm-up rounds).  Keeps the
    live-schedule makespan. *)

val nworkers : t -> int
val rounds : t -> int

val round_seconds : t -> float
(** Total wall-clock seconds across all observed rounds. *)

val worker_compute : t -> float array
(** Per-worker total compute seconds (a copy). *)

val worker_wait : t -> float array
(** Per-worker total seconds between job end and round end — time spent
    waiting at the barrier (a copy). *)

val barrier_seconds : t -> float
(** Total round time not covered by the slowest worker's compute: the
    supervisor-side synchronisation overhead. *)

val utilization : t -> float
(** Mean fraction of round time the workers spent computing:
    [sum compute / (nworkers * round_seconds)]; [1.] before the first
    round. *)

val reschedules : t -> int

val reschedule_seconds : t -> float
(** Supervisor wall-clock seconds spent rebuilding LPT schedules. *)

val live_makespan : t -> float
(** Estimated makespan of the schedule currently executing, in the
    rescheduler's (normalised) cost units. *)

val pp : Format.formatter -> t -> unit
