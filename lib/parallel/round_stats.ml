(* Per-worker round telemetry for the real executor.

   All steady-state accumulation happens through float arrays: a record
   mixing floats with other fields stores its float fields boxed, so a
   [mutable seconds : float] field would allocate on every update
   (non-flambda OCaml).  Scalar accumulators therefore live in the
   [acc] array under the named indices below, and [observe_round] reads
   the round duration out of the caller's 1-slot [timing] buffer
   instead of taking a [float] argument (fresh float arguments box at
   call boundaries). *)

type t = {
  nworkers : int;
  compute : float array; (* per-worker compute seconds, total *)
  wait : float array; (* per-worker barrier-wait seconds, total *)
  acc : float array; (* scalar accumulators, see indices below *)
  mutable rounds : int;
  mutable reschedules : int;
}

(* acc indices *)
let i_round_seconds = 0 (* total wall time of all rounds *)
let i_barrier_seconds = 1 (* total round time minus critical-path compute *)
let i_resched_seconds = 2 (* supervisor time rebuilding schedules *)
let i_live_makespan = 3 (* estimated makespan of the live schedule *)
let i_scratch = 4 (* per-call scratch (max-compute of the round) *)
let n_acc = 5

let create ~nworkers =
  if nworkers < 1 then invalid_arg "Round_stats.create: nworkers < 1";
  {
    nworkers;
    compute = Array.make nworkers 0.;
    wait = Array.make nworkers 0.;
    acc = Array.make n_acc 0.;
    rounds = 0;
    reschedules = 0;
  }

let reset t =
  Array.fill t.compute 0 t.nworkers 0.;
  Array.fill t.wait 0 t.nworkers 0.;
  t.acc.(i_round_seconds) <- 0.;
  t.acc.(i_barrier_seconds) <- 0.;
  t.acc.(i_resched_seconds) <- 0.;
  t.rounds <- 0;
  t.reschedules <- 0

let observe_round t ~timing ~compute =
  if Array.length compute <> t.nworkers then
    invalid_arg "Round_stats.observe_round: compute length mismatch";
  let dur = Array.unsafe_get timing 0 in
  t.rounds <- t.rounds + 1;
  t.acc.(i_round_seconds) <- t.acc.(i_round_seconds) +. dur;
  t.acc.(i_scratch) <- 0.;
  for w = 0 to t.nworkers - 1 do
    let c = Array.unsafe_get compute w in
    Array.unsafe_set t.compute w (Array.unsafe_get t.compute w +. c);
    if c > t.acc.(i_scratch) then t.acc.(i_scratch) <- c;
    (* The worker's job interval lies inside the supervisor's round
       interval, so the gap is non-negative up to clock granularity. *)
    let gap = dur -. c in
    if gap > 0. then
      Array.unsafe_set t.wait w (Array.unsafe_get t.wait w +. gap)
  done;
  let barrier = dur -. t.acc.(i_scratch) in
  if barrier > 0. then
    t.acc.(i_barrier_seconds) <- t.acc.(i_barrier_seconds) +. barrier

let note_reschedule t ~seconds ~makespan =
  t.reschedules <- t.reschedules + 1;
  t.acc.(i_resched_seconds) <- t.acc.(i_resched_seconds) +. seconds;
  t.acc.(i_live_makespan) <- makespan

let set_live_makespan t makespan = t.acc.(i_live_makespan) <- makespan
let nworkers t = t.nworkers
let rounds t = t.rounds
let reschedules t = t.reschedules
let round_seconds t = t.acc.(i_round_seconds)
let barrier_seconds t = t.acc.(i_barrier_seconds)
let reschedule_seconds t = t.acc.(i_resched_seconds)
let live_makespan t = t.acc.(i_live_makespan)
let worker_compute t = Array.copy t.compute
let worker_wait t = Array.copy t.wait

let utilization t =
  let total = t.acc.(i_round_seconds) in
  if t.rounds = 0 || total <= 0. then 1.
  else
    Array.fold_left ( +. ) 0. t.compute /. (float_of_int t.nworkers *. total)

let pp ppf t =
  Format.fprintf ppf
    "%d rounds on %d workers: %.6f s wall, utilization %.1f%%, %d \
     reschedule(s) (%.6f s), barrier %.6f s@."
    t.rounds t.nworkers
    t.acc.(i_round_seconds)
    (100. *. utilization t) t.reschedules
    t.acc.(i_resched_seconds)
    t.acc.(i_barrier_seconds);
  for w = 0 to t.nworkers - 1 do
    Format.fprintf ppf "  worker %d: compute %.6f s, wait %.6f s@." w
      t.compute.(w) t.wait.(w)
  done
