(** Real multicore execution of one RHS round on OCaml domains.

    The measured counterpart of {!Om_machine.Supervisor.round_desc}:
    the same inputs — a task assignment from [Om_sched.Lpt] packaged in
    an {!Om_machine.Round_desc.t} and the per-task register-VM programs
    of an {!Om_codegen.Bytecode_backend.t} — but every round actually
    runs the tasks on [nworkers] pre-spawned domains sharing the state
    environment and output vector.

    Determinism: tasks write disjoint output slots and task-private
    environment temporaries, and the reduction epilogue runs on the
    supervisor domain after the round barrier in the same order as
    sequential execution, so the derivative vector — and therefore any
    trajectory integrated through {!rhs_fn} — is bit-identical to
    sequential evaluation for every worker count and for every task
    assignment, including assignments swapped mid-run by
    {!set_assignment}.

    Every task is timed with the unboxed monotonic clock
    ({!Monotonic.now}) into a pre-allocated buffer; the measured
    executor ({!create_measured}) feeds those per-task times into the
    paper's semi-dynamic LPT rescheduler ([Om_sched.Semidynamic]) and
    accumulates per-worker round telemetry ({!Round_stats}).

    A steady-state round — including a measured, semi-dynamic one that
    does not reschedule — allocates nothing on the supervisor domain
    (enforced by [Gc.minor_words] regression tests). *)

type t

val create :
  ?spin_budget:int ->
  ?barrier_deadline:float ->
  ?fault:Om_guard.Fault_plan.t ->
  nworkers:int ->
  Om_machine.Round_desc.t ->
  Om_codegen.Bytecode_backend.t ->
  t
(** Spawn the worker domains and distribute the descriptor's task
    assignment over them (each worker's tasks in ascending id order).
    [spin_budget] and [barrier_deadline] are forwarded to
    {!Domain_pool.create}.

    [fault] arms chaos instrumentation: worker jobs consult the plan
    after each task (output poisoning), after their slice (injected
    delays), and pool construction consults it per worker id (spawn
    failures).  Without a plan the job carries no instrumentation at
    all.  Plan queries mutate the plan from worker domains; a plan must
    not be shared between concurrently-running executors.
    @raise Invalid_argument if [nworkers < 1], if the assignment length
    does not match the compiled task count, or if a worker id is outside
    [0 .. nworkers-1].
    @raise Om_guard.Om_error.Error ([Spawn_failure]) when spawning
    fails, by injection or for real. *)

val rhs_fn : t -> float -> float array -> float array -> unit
(** [rhs_fn t time y ydot]: one parallel round — publish [(time, y)] to
    the shared environment, run every task on its worker domain, fold
    the epilogue on the supervisor, and write the derivatives into
    [ydot].  Drop-in replacement for
    {!Om_codegen.Bytecode_backend.rhs_fn}. *)

val set_assignment : t -> int array -> unit
(** Replace the live task assignment without respawning domains: the
    per-worker slices are rebuilt and swapped into the array the worker
    jobs read at the start of each round, so the new schedule takes
    effect at the next {!rhs_fn} call.  Supervisor-only; must not run
    concurrently with a round.
    @raise Invalid_argument on a wrong-length assignment or a worker id
    outside [0 .. nworkers-1]. *)

val drop_worker : t -> int -> unit
(** One step down the degradation ladder: remove [worker] from the live
    set and redistribute {e all} tasks over the remaining live workers
    by LPT on the static costs.  The dead worker keeps its domain (it
    joins every barrier with an empty slice, so {!shutdown} is
    unaffected); trajectories stay bit-identical across the
    reassignment because output slots are disjoint and the epilogue
    folds on the supervisor in fixed order.
    @raise Invalid_argument on an unknown, already-dropped, or last
    remaining worker. *)

val take_stall : t -> Om_guard.Om_error.t option
(** {!Domain_pool.take_stall} of the underlying pool: the stall event
    recorded by the last barrier-deadline overrun, if any (cleared). *)

val live_workers : t -> int
(** Workers still in the live set ([nworkers] minus drops). *)

val faults_injected : t -> int
(** Faults fired so far by the executor's plan ([0] without a plan). *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent. *)

val with_executor :
  ?spin_budget:int ->
  ?barrier_deadline:float ->
  ?fault:Om_guard.Fault_plan.t ->
  nworkers:int ->
  Om_machine.Round_desc.t ->
  Om_codegen.Bytecode_backend.t ->
  (t -> 'a) ->
  'a
(** [create], run the callback, and {!shutdown} even on exceptions. *)

val nworkers : t -> int

val rounds : t -> int
(** Rounds executed so far. *)

val worker_tasks : t -> int array array
(** Task ids per worker, ascending — the materialised live assignment
    (mutated in place by {!set_assignment}). *)

val task_seconds : t -> float array
(** The per-task timing buffer: [(task_seconds t).(i)] is the wall
    seconds task [i] took in the last round, measured on its worker.
    The buffer itself (not a copy); stable only between rounds. *)

val worker_compute : t -> float array
(** {!Domain_pool.compute_seconds} of the underlying pool. *)

val last_round_seconds : t -> float
(** Wall seconds of the last round ({!Domain_pool.last_round_seconds}). *)

(** {1 Measured execution}

    Telemetry plus the paper's §3.2.3 semi-dynamic loop on real
    hardware: every round is timed, per-task times are normalised into
    shares of the round and fed to [Om_sched.Semidynamic.observe], and
    when the rescheduler rebuilds its LPT schedule the new assignment is
    swapped into the live executor between rounds. *)

type measured = {
  exec : t;
  stats : Round_stats.t;
  semidyn : Om_sched.Semidynamic.t option;
      (** [None]: telemetry only (static schedule) *)
  shares : float array;  (** pre-allocated normalised-share buffer *)
  scratch : float array;  (** pre-allocated summation slot *)
}

val create_measured :
  ?spin_budget:int ->
  ?barrier_deadline:float ->
  ?fault:Om_guard.Fault_plan.t ->
  ?semidynamic:int ->
  nworkers:int ->
  tasks:Om_sched.Task.t array ->
  Om_machine.Round_desc.t ->
  Om_codegen.Bytecode_backend.t ->
  measured
(** {!create} plus telemetry.  With [~semidynamic:period] the executor
    re-runs LPT on measured costs every [period] rounds: the rescheduler
    starts from the descriptor's static costs normalised to sum 1 (which
    leaves the initial LPT assignment unchanged) and observes each
    round's per-task time shares, so estimates are scale-free.
    @raise Invalid_argument as {!create}, or if [tasks] does not match
    the compiled task count when [semidynamic] is given. *)

val measured_rhs_fn : measured -> float -> float array -> float array -> unit
(** {!rhs_fn} plus, after the round: record per-worker compute/wait into
    [stats]; under [semidynamic], feed normalised per-task time shares
    to the rescheduler and swap a rebuilt schedule into the executor
    (counted, and timed, as a reschedule in [stats]).  Rounds whose
    timings sum to zero (clock granularity) are not observed.
    Allocation-free on the supervisor except in the round where a
    reschedule fires. *)

val shutdown_measured : measured -> unit

val with_measured :
  ?spin_budget:int ->
  ?barrier_deadline:float ->
  ?fault:Om_guard.Fault_plan.t ->
  ?semidynamic:int ->
  nworkers:int ->
  tasks:Om_sched.Task.t array ->
  Om_machine.Round_desc.t ->
  Om_codegen.Bytecode_backend.t ->
  (measured -> 'a) ->
  'a
(** [create_measured], run the callback, and shut down even on
    exceptions. *)

val executor : measured -> t
val stats : measured -> Round_stats.t
val semidynamic : measured -> Om_sched.Semidynamic.t option
