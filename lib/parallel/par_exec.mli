(** Real multicore execution of one RHS round on OCaml domains.

    The measured counterpart of {!Om_machine.Supervisor.round_desc}:
    the same inputs — a task assignment from [Om_sched.Lpt] packaged in
    an {!Om_machine.Round_desc.t} and the per-task register-VM programs
    of an {!Om_codegen.Bytecode_backend.t} — but every round actually
    runs the tasks on [nworkers] pre-spawned domains sharing the state
    environment and output vector.

    Determinism: tasks write disjoint output slots and task-private
    environment temporaries, and the reduction epilogue runs on the
    supervisor domain after the round barrier in the same order as
    sequential execution, so the derivative vector — and therefore any
    trajectory integrated through {!rhs_fn} — is bit-identical to
    sequential evaluation for every worker count.

    A steady-state round allocates nothing on the supervisor domain
    (enforced by a [Gc.minor_words] regression test). *)

type t

val create :
  ?spin_budget:int ->
  nworkers:int ->
  Om_machine.Round_desc.t ->
  Om_codegen.Bytecode_backend.t ->
  t
(** Spawn the worker domains and distribute the descriptor's task
    assignment over them (each worker's tasks in ascending id order).
    [spin_budget] is forwarded to {!Domain_pool.create}.
    @raise Invalid_argument if [nworkers < 1], if the assignment length
    does not match the compiled task count, or if a worker id is outside
    [0 .. nworkers-1]. *)

val rhs_fn : t -> float -> float array -> float array -> unit
(** [rhs_fn t time y ydot]: one parallel round — publish [(time, y)] to
    the shared environment, run every task on its worker domain, fold
    the epilogue on the supervisor, and write the derivatives into
    [ydot].  Drop-in replacement for
    {!Om_codegen.Bytecode_backend.rhs_fn}. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent. *)

val with_executor :
  ?spin_budget:int ->
  nworkers:int ->
  Om_machine.Round_desc.t ->
  Om_codegen.Bytecode_backend.t ->
  (t -> 'a) ->
  'a
(** [create], run the callback, and {!shutdown} even on exceptions. *)

val nworkers : t -> int

val rounds : t -> int
(** Rounds executed so far. *)

val worker_tasks : t -> int array array
(** Task ids per worker, ascending — the materialised assignment. *)
