(** Allocation-free monotonic clock.

    [Unix.gettimeofday] (and every other [external] returning a plain
    [float]) boxes its result, which would break the zero-allocation
    steady-state round guarantee of {!Par_exec} the moment rounds are
    timed.  This clock's native stub returns an {e unboxed} double
    ([@unboxed]/[@@noalloc]), so reading it in a hot loop and storing
    the delta into a pre-allocated float array allocates nothing. *)

external now : unit -> (float [@unboxed])
  = "om_monotonic_now" "om_monotonic_now_unboxed"
[@@noalloc]
(** Seconds since an arbitrary fixed origin, monotonically
    non-decreasing (CLOCK_MONOTONIC).  Only differences are
    meaningful. *)
