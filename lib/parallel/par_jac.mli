(** Parallel evaluation of colored finite-difference column groups.

    The sparse Jacobian path ({!Om_ode.Jacobian.sparse_eval_into})
    perturbs one seed vector per {e color} and recovers every column of
    that color from a single RHS evaluation.  The per-color evaluations
    are independent, so they map directly onto the supervisor/worker
    scheme of the paper: this module spreads them over a
    {!Domain_pool}, each worker evaluating through its own scratch
    clone of the compiled model
    ({!Om_codegen.Pipeline.clone_scratch}).

    Work is distributed by an atomic ticket counter, and every group's
    result lands in its caller-assigned slot, so the output is
    bitwise-deterministic regardless of scheduling — and bitwise equal
    to the sequential evaluation, because the clones run the same
    bytecode on the same inputs. *)

type rhs = float -> float array -> float array -> unit

type t

val create : ?nworkers:int -> Om_codegen.Pipeline.result -> t
(** [create compiled] spawns a worker pool (default
    [Domain.recommended_domain_count () - 1], at least 1) whose workers
    evaluate [compiled]'s RHS through private scratch clones.
    @raise Invalid_argument if [nworkers < 1].
    @raise Om_guard.Om_error.Error ([Spawn_failure]) if a domain cannot
    be spawned. *)

val create_with : rhs array -> t
(** [create_with rhss] builds an evaluator over caller-supplied
    per-worker RHS closures ([rhss.(w)] is worker [w]'s private
    evaluator; closures must not share mutable scratch).
    @raise Invalid_argument on an empty array. *)

val batch : t -> float -> float array array -> float array array -> unit
(** [batch t time pts vals] evaluates [vals.(i) <- f(time, pts.(i))] for
    every [i], spreading the evaluations over the pool.  Waits for all
    workers; a typed fault raised by any evaluation is re-raised here
    (see {!Domain_pool.round}).
    @raise Invalid_argument after {!shutdown}. *)

val batch_rhs : t -> Om_ode.Jacobian.batch_rhs
(** The evaluator as a solver hook, for
    [Bdf.integrate ~jac_batch:(Par_jac.batch_rhs t)] and friends. *)

val nworkers : t -> int

val shutdown : t -> unit
(** Terminate the worker domains.  Idempotent. *)
