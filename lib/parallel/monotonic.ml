external now : unit -> (float [@unboxed])
  = "om_monotonic_now" "om_monotonic_now_unboxed"
[@@noalloc]
