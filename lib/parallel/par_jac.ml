type rhs = float -> float array -> float array -> unit

type t = {
  mutable pool : Domain_pool.t option;
  rhss : rhs array;
  mutable time : float;
  mutable pts : float array array;
  mutable vals : float array array;
  mutable count : int;
  next : int Atomic.t;
}

let job (st : t) w =
  let rhs = st.rhss.(w) in
  let rec loop () =
    let i = Atomic.fetch_and_add st.next 1 in
    if i < st.count then begin
      rhs st.time st.pts.(i) st.vals.(i);
      loop ()
    end
  in
  loop ()

let pool_exn t =
  match t.pool with
  | Some p -> p
  | None -> invalid_arg "Par_jac: evaluator shut down"

let create_with rhss =
  let nw = Array.length rhss in
  if nw < 1 then invalid_arg "Par_jac.create_with: no workers";
  let st =
    {
      pool = None;
      rhss;
      time = 0.;
      pts = [||];
      vals = [||];
      count = 0;
      next = Atomic.make 0;
    }
  in
  st.pool <- Some (Domain_pool.create ~job:(job st) nw);
  st

let create ?nworkers (compiled : Om_codegen.Pipeline.result) =
  let nw =
    match nworkers with
    | Some n -> n
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  if nw < 1 then invalid_arg "Par_jac.create: nworkers < 1";
  (* Every worker evaluates through its own scratch clone, so rounds
     share no mutable state; the clones run the same bytecode, so the
     values are bitwise those of the supervisor's own evaluator. *)
  create_with
    (Array.init nw (fun _ ->
         Om_codegen.Pipeline.rhs_fn (Om_codegen.Pipeline.clone_scratch compiled)))

let batch t time pts vals =
  let n = Array.length pts in
  if n > 0 then begin
    let pool = pool_exn t in
    t.time <- time;
    t.pts <- pts;
    t.vals <- vals;
    t.count <- n;
    Atomic.set t.next 0;
    Domain_pool.round pool;
    (* Drop the borrowed buffers so a caller's arrays are not kept
       alive (or visible to a stray worker) past the round. *)
    t.pts <- [||];
    t.vals <- [||];
    t.count <- 0
  end

let batch_rhs t : Om_ode.Jacobian.batch_rhs = fun time pts vals ->
  batch t time pts vals

let nworkers t = Array.length t.rhss

let shutdown t =
  match t.pool with
  | None -> ()
  | Some p ->
      Domain_pool.shutdown p;
      t.pool <- None
