(* Real supervisor/worker execution of one compiled RHS round.

   The same inputs as the simulated Supervisor.round — an LPT assignment
   (inside a Round_desc) and the per-task VM programs of a
   Bytecode_backend.t — but the tasks actually run, one domain per
   worker.  Domain safety rests on three properties of the compiled
   form:

   - every task owns its register program and therefore its scratch
     register file (Om_expr.Vm allocates one per program), and a task is
     assigned to exactly one worker;
   - CSE temporaries are task-private environment slots (per-task
     prefixes), so concurrent [ste] stores from different tasks hit
     disjoint indices of the shared [env] float array;
   - tasks write disjoint output slots, and the reduction epilogue runs
     on the supervisor after the barrier, folding partials in the same
     fixed order as sequential execution — which is why trajectories
     are bit-identical for every worker count {e and} for every task
     assignment, including assignments swapped in mid-run by the
     semi-dynamic rescheduler.

   Every task is timed with the unboxed monotonic clock into a shared
   pre-allocated [task_seconds] buffer (disjoint slots per task, so the
   concurrent writes race with nobody); those measurements drive the
   measured semi-dynamic rescheduling loop below. *)

module Bb = Om_codegen.Bytecode_backend
module Sd = Om_sched.Semidynamic

type t = {
  pool : Domain_pool.t;
  compiled : Bb.t;
  nworkers : int;
  worker_tasks : int array array; (* worker -> task ids, ascending *)
  task_seconds : float array; (* per-task wall seconds of the last round *)
  task_costs : float array; (* static costs, for degradation LPT *)
  live : bool array; (* live worker set (degradation ladder) *)
  round_box : int array; (* round_box.(0): round index seen by workers *)
  fault : Om_guard.Fault_plan.t option;
}

let worker_tasks t = t.worker_tasks
let nworkers t = t.nworkers
let rounds t = Domain_pool.rounds t.pool
let task_seconds t = t.task_seconds
let worker_compute t = Domain_pool.compute_seconds t.pool
let last_round_seconds t = Domain_pool.last_round_seconds t.pool
let take_stall t = Domain_pool.take_stall t.pool

let live_workers t =
  let n = ref 0 in
  Array.iter (fun l -> if l then incr n) t.live;
  !n

let faults_injected t =
  match t.fault with None -> 0 | Some p -> Om_guard.Fault_plan.injected p

(* Per-worker slices of an assignment, each ascending — shared by
   [create] and [set_assignment]. *)
let slices_of ~who ~nworkers ~ntasks assignment =
  if Array.length assignment <> ntasks then
    invalid_arg (who ^ ": assignment length mismatch");
  Array.iter
    (fun w ->
      if w < 0 || w >= nworkers then
        invalid_arg (who ^ ": worker id out of range"))
    assignment;
  let counts = Array.make nworkers 0 in
  Array.iter (fun w -> counts.(w) <- counts.(w) + 1) assignment;
  let slices = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make nworkers 0 in
  Array.iteri
    (fun tid w ->
      slices.(w).(fill.(w)) <- tid;
      fill.(w) <- fill.(w) + 1)
    assignment;
  slices

let create ?spin_budget ?barrier_deadline ?fault ~nworkers
    (desc : Om_machine.Round_desc.t) (compiled : Bb.t) =
  if nworkers < 1 then invalid_arg "Par_exec.create: nworkers < 1";
  let ntasks = Array.length compiled.Bb.tasks in
  let slices =
    slices_of ~who:"Par_exec.create" ~nworkers ~ntasks desc.assignment
  in
  let worker_tasks = Array.make nworkers [||] in
  Array.blit slices 0 worker_tasks 0 nworkers;
  let task_seconds = Array.make ntasks 0. in
  let tasks = compiled.Bb.tasks in
  let round_box = Array.make 1 0 in
  let plain_job w =
    (* [worker_tasks] is re-read every round, so a slice swapped in by
       [set_assignment] between rounds takes effect at the next round
       (the pool's generation atomics publish the write). *)
    let mine = Array.unsafe_get worker_tasks w in
    for i = 0 to Array.length mine - 1 do
      let tid = Array.unsafe_get mine i in
      let t0 = Monotonic.now () in
      (Array.unsafe_get tasks tid).Bb.eval ();
      Array.unsafe_set task_seconds tid (Monotonic.now () -. t0)
    done
  in
  (* The instrumented job only exists when a fault plan is supplied, so
     a fault-free executor carries no chaos branches at all on its hot
     path.  [round_box] is a plain write on the supervisor before the
     round, published to the workers by the pool's generation atomics. *)
  let job =
    match fault with
    | None -> plain_job
    | Some plan ->
        fun w ->
          let round = Array.unsafe_get round_box 0 in
          let mine = Array.unsafe_get worker_tasks w in
          for i = 0 to Array.length mine - 1 do
            let tid = Array.unsafe_get mine i in
            let t0 = Monotonic.now () in
            (Array.unsafe_get tasks tid).Bb.eval ();
            Array.unsafe_set task_seconds tid (Monotonic.now () -. t0);
            let p = Om_guard.Fault_plan.task_poison plan ~round ~task:tid in
            if p <> 0. then
              (* Overwrite every output slot the task owns; NaN/Inf then
                 survives the reduction epilogue into the derivative
                 vector, exactly like a genuinely non-finite task. *)
              List.iter
                (fun slot -> compiled.Bb.out.(slot) <- p)
                (Array.unsafe_get tasks tid).Bb.writes
          done;
          let d = Om_guard.Fault_plan.delay_micros plan ~round ~worker:w in
          if d > 0 then begin
            let until = Monotonic.now () +. (float_of_int d *. 1e-6) in
            while Monotonic.now () < until do
              Domain.cpu_relax ()
            done
          end
  in
  let spawn_fail =
    match fault with
    | None -> None
    | Some plan ->
        Some (fun w -> Om_guard.Fault_plan.spawn_should_fail plan ~worker:w)
  in
  let pool =
    Domain_pool.create ?spin_budget ?barrier_deadline ?spawn_fail ~job nworkers
  in
  {
    pool;
    compiled;
    nworkers;
    worker_tasks;
    task_seconds;
    task_costs = Bb.task_costs_static compiled;
    live = Array.make nworkers true;
    round_box;
    fault;
  }

let set_assignment t assignment =
  let ntasks = Array.length t.compiled.Bb.tasks in
  let slices =
    slices_of ~who:"Par_exec.set_assignment" ~nworkers:t.nworkers ~ntasks
      assignment
  in
  (* Swap the slices into the array the worker job closures capture; no
     domain is respawned.  Must only be called between rounds (i.e. from
     the supervisor, never concurrently with [rhs_fn]). *)
  Array.blit slices 0 t.worker_tasks 0 t.nworkers

(* Degradation ladder: give [w] an empty slice and redistribute every
   task over the remaining live workers by LPT on the static costs
   (sort by cost descending, ties by id, give each task to the
   least-loaded live worker).  The pool itself is untouched — the dead
   worker's domain stays in the barrier with nothing to do, so shutdown
   still joins everything — and because tasks write disjoint slots and
   the epilogue folds on the supervisor in fixed order, the trajectory
   stays bit-identical across the reassignment. *)
let drop_worker t w =
  if w < 0 || w >= t.nworkers then
    invalid_arg "Par_exec.drop_worker: worker id out of range";
  if not t.live.(w) then invalid_arg "Par_exec.drop_worker: already dropped";
  if live_workers t <= 1 then
    invalid_arg "Par_exec.drop_worker: cannot drop the last live worker";
  t.live.(w) <- false;
  let live_ids =
    Array.of_seq
      (Seq.filter (fun i -> t.live.(i)) (Seq.init t.nworkers Fun.id))
  in
  let ntasks = Array.length t.compiled.Bb.tasks in
  let order = Array.init ntasks Fun.id in
  Array.sort
    (fun a b ->
      let c = compare t.task_costs.(b) t.task_costs.(a) in
      if c <> 0 then c else compare a b)
    order;
  let loads = Array.make (Array.length live_ids) 0. in
  let assignment = Array.make ntasks 0 in
  Array.iter
    (fun tid ->
      let best = ref 0 in
      for k = 1 to Array.length live_ids - 1 do
        if loads.(k) < loads.(!best) then best := k
      done;
      assignment.(tid) <- live_ids.(!best);
      loads.(!best) <- loads.(!best) +. t.task_costs.(tid))
    order;
  set_assignment t assignment

let rhs_fn t time y ydot =
  let c = t.compiled in
  c.Bb.set_state time y;
  t.round_box.(0) <- t.round_box.(0) + 1;
  Domain_pool.round t.pool;
  c.Bb.run_epilogue ();
  Array.blit c.Bb.out 0 ydot 0 c.Bb.dim

let shutdown t = Domain_pool.shutdown t.pool

let with_executor ?spin_budget ?barrier_deadline ?fault ~nworkers desc
    compiled f =
  let t = create ?spin_budget ?barrier_deadline ?fault ~nworkers desc compiled in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ---------------------------------------------------------------- *)
(* Measured execution: telemetry + semi-dynamic rescheduling.        *)

type measured = {
  exec : t;
  stats : Round_stats.t;
  semidyn : Sd.t option;
  shares : float array; (* normalised per-task time shares buffer *)
  scratch : float array; (* scratch.(0): running sum (see measured_rhs_fn) *)
}

let executor m = m.exec
let stats m = m.stats
let semidynamic m = m.semidyn

(* Initial cost estimates for the rescheduler: the static costs
   normalised to sum 1, so the per-round time shares observed later live
   on the same scale.  Normalising by a positive constant changes no LPT
   decision, so the initial schedule equals LPT on the raw statics. *)
let normalized costs =
  let sum = Array.fold_left ( +. ) 0. costs in
  if sum <= 0. then Array.map (fun _ -> 1.) costs
  else Array.map (fun c -> c /. sum) costs

let create_measured ?spin_budget ?barrier_deadline ?fault ?semidynamic
    ~nworkers ~tasks (desc : Om_machine.Round_desc.t) compiled =
  let exec = create ?spin_budget ?barrier_deadline ?fault ~nworkers desc compiled in
  let ntasks = Array.length exec.task_seconds in
  let stats = Round_stats.create ~nworkers in
  let semidyn =
    match semidynamic with
    | None -> None
    | Some period ->
        if Array.length tasks <> ntasks then
          invalid_arg "Par_exec.create_measured: tasks length mismatch";
        let sd =
          Sd.create ~period ~costs:(normalized desc.task_flops) tasks
            ~nprocs:nworkers
        in
        Round_stats.set_live_makespan stats (Sd.current sd).Om_sched.Lpt.makespan;
        Some sd
  in
  { exec; stats; semidyn; shares = Array.make ntasks 0.; scratch = [| 0. |] }

let measured_rhs_fn m time y ydot =
  rhs_fn m.exec time y ydot;
  Round_stats.observe_round m.stats
    ~timing:(Domain_pool.round_timing m.exec.pool)
    ~compute:(Domain_pool.compute_seconds m.exec.pool);
  match m.semidyn with
  | None -> ()
  | Some sd ->
      (* Normalise the measured per-task seconds into shares of the
         round.  Summing through the pre-allocated scratch slot keeps
         this allocation-free (a float ref would box on every update;
         a float accumulator argument would box at each call). *)
      let ts = m.exec.task_seconds in
      let n = Array.length ts in
      m.scratch.(0) <- 0.;
      for i = 0 to n - 1 do
        m.scratch.(0) <- m.scratch.(0) +. Array.unsafe_get ts i
      done;
      let sum = m.scratch.(0) in
      if sum > 0. then begin
        let inv = 1. /. sum in
        for i = 0 to n - 1 do
          Array.unsafe_set m.shares i (Array.unsafe_get ts i *. inv)
        done;
        let before = Sd.reschedule_count sd in
        Sd.observe sd m.shares;
        if Sd.reschedule_count sd > before then begin
          let t0 = Monotonic.now () in
          let sched = Sd.current sd in
          set_assignment m.exec sched.Om_sched.Lpt.assignment;
          Round_stats.note_reschedule m.stats
            ~seconds:(Monotonic.now () -. t0)
            ~makespan:sched.Om_sched.Lpt.makespan
        end
      end

let shutdown_measured m = shutdown m.exec

let with_measured ?spin_budget ?barrier_deadline ?fault ?semidynamic ~nworkers
    ~tasks desc compiled f =
  let m =
    create_measured ?spin_budget ?barrier_deadline ?fault ?semidynamic
      ~nworkers ~tasks desc compiled
  in
  Fun.protect ~finally:(fun () -> shutdown_measured m) (fun () -> f m)
