(* Real supervisor/worker execution of one compiled RHS round.

   The same inputs as the simulated Supervisor.round — an LPT assignment
   (inside a Round_desc) and the per-task VM programs of a
   Bytecode_backend.t — but the tasks actually run, one domain per
   worker.  Domain safety rests on three properties of the compiled
   form:

   - every task owns its register program and therefore its scratch
     register file (Om_expr.Vm allocates one per program), and a task is
     assigned to exactly one worker;
   - CSE temporaries are task-private environment slots (per-task
     prefixes), so concurrent [ste] stores from different tasks hit
     disjoint indices of the shared [env] float array;
   - tasks write disjoint output slots, and the reduction epilogue runs
     on the supervisor after the barrier, folding partials in the same
     fixed order as sequential execution — which is why trajectories
     are bit-identical for every worker count. *)

module Bb = Om_codegen.Bytecode_backend

type t = {
  pool : Domain_pool.t;
  compiled : Bb.t;
  nworkers : int;
  worker_tasks : int array array; (* worker -> task ids, ascending *)
}

let worker_tasks t = t.worker_tasks
let nworkers t = t.nworkers
let rounds t = Domain_pool.rounds t.pool

let create ?spin_budget ~nworkers (desc : Om_machine.Round_desc.t)
    (compiled : Bb.t) =
  if nworkers < 1 then invalid_arg "Par_exec.create: nworkers < 1";
  let ntasks = Array.length compiled.Bb.tasks in
  if Array.length desc.assignment <> ntasks then
    invalid_arg "Par_exec.create: assignment length mismatch";
  Array.iter
    (fun w ->
      if w < 0 || w >= nworkers then
        invalid_arg "Par_exec.create: worker id out of range")
    desc.assignment;
  let counts = Array.make nworkers 0 in
  Array.iter (fun w -> counts.(w) <- counts.(w) + 1) desc.assignment;
  let worker_tasks = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make nworkers 0 in
  Array.iteri
    (fun tid w ->
      worker_tasks.(w).(fill.(w)) <- tid;
      fill.(w) <- fill.(w) + 1)
    desc.assignment;
  let tasks = compiled.Bb.tasks in
  let job w =
    let mine = Array.unsafe_get worker_tasks w in
    for i = 0 to Array.length mine - 1 do
      (Array.unsafe_get tasks (Array.unsafe_get mine i)).Bb.eval ()
    done
  in
  let pool = Domain_pool.create ?spin_budget ~job nworkers in
  { pool; compiled; nworkers; worker_tasks }

let rhs_fn t time y ydot =
  let c = t.compiled in
  c.Bb.set_state time y;
  Domain_pool.round t.pool;
  c.Bb.run_epilogue ();
  Array.blit c.Bb.out 0 ydot 0 c.Bb.dim

let shutdown t = Domain_pool.shutdown t.pool

let with_executor ?spin_budget ~nworkers desc compiled f =
  let t = create ?spin_budget ~nworkers desc compiled in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
