(** Measured multicore scaling sweeps ([BENCH_parallel.json]).

    Runs the same LPT schedules as the simulated Figure 12 experiment,
    but on real domains through {!Par_exec}, and reports measured
    [#RHS-calls/second] per worker count — so the simulated curve and
    the real-hardware curve can be plotted side by side.  Every sweep
    goes through the measured executor, so each point also carries its
    per-worker compute/wait telemetry and reschedule count, and a
    [?semidynamic] sweep runs the paper's §3.2.3 rescheduler live. *)

type point = {
  workers : int;  (** 0 = sequential (supervisor-only) baseline *)
  rounds : int;  (** timed RHS evaluations *)
  seconds : float;  (** wall-clock seconds over the timed rounds *)
  rhs_per_sec : float;
  speedup : float;
      (** vs a measured 1-worker executor run — always measured, even
          when 1 is not in the sweep, so every point (including the
          sequential one) shares a single baseline *)
  identical : bool;
      (** derivative vector bitwise equal to sequential execution
          ([Int64.bits_of_float] per element, so NaN payloads compare
          by bits rather than by IEEE [<>]) *)
  first_diff : int option;
      (** index of the first bitwise-differing element, [None] when
          identical *)
  reschedules : int;  (** schedule rebuilds during the timed rounds *)
  worker_compute : float array;
      (** per-worker task-execution seconds over the timed rounds
          ([[||]] for the sequential point) *)
  worker_wait : float array;
      (** per-worker barrier-wait seconds over the timed rounds *)
}

type series = {
  model : string;
  dim : int;
  ntasks : int;
  semidynamic : int option;
      (** rescheduling period of the sweep, [None] for static LPT *)
  points : point list;
}

val measure :
  ?rounds:int ->
  ?warmup:int ->
  ?semidynamic:int ->
  name:string ->
  workers:int list ->
  Om_codegen.Pipeline.result ->
  series
(** Time [rounds] (default 2000) RHS evaluations at the model's initial
    state, sequentially and for every worker count in [workers] (each
    preceded by [warmup] untimed evaluations), reusing one domain pool
    per worker count across all of its rounds.  Telemetry is reset
    after warm-up, so each point's reschedule count and worker
    compute/wait totals cover exactly the timed rounds.  The speedup
    baseline is always a measured 1-worker executor run: the sweep's
    own 1-worker point when [1] is in [workers], a dedicated extra run
    otherwise.  [?semidynamic] forwards the rescheduling period to
    {!Par_exec.create_measured}. *)

val schema : string
(** ["objectmath-bench-parallel/2"]. *)

val write_json : path:string -> ncores:int -> series list -> unit
(** Write the machine-readable sweep results; [ncores] records the
    host's core count so flat curves on small machines are
    interpretable.  Sweeps of the same model nest under one model
    object, keyed ["static"] / ["semidynamic"].  Non-finite floats are
    serialised as [null] — the output is always valid JSON even for a
    diverging model. *)

val pp_series : Format.formatter -> series -> unit
(** Human-readable table of one sweep. *)
