(** Measured multicore scaling sweeps ([BENCH_parallel.json]).

    Runs the same LPT schedules as the simulated Figure 12 experiment,
    but on real domains through {!Par_exec}, and reports measured
    [#RHS-calls/second] per worker count — so the simulated curve and
    the real-hardware curve can be plotted side by side. *)

type point = {
  workers : int;  (** 0 = sequential (supervisor-only) baseline *)
  rounds : int;  (** timed RHS evaluations *)
  seconds : float;  (** wall-clock seconds over the timed rounds *)
  rhs_per_sec : float;
  speedup : float;  (** vs the 1-worker measurement (or the sequential
                        baseline when 1 is not in the sweep) *)
  identical : bool;
      (** derivative vector bitwise equal to sequential execution *)
}

type series = {
  model : string;
  dim : int;
  ntasks : int;
  points : point list;
}

val measure :
  ?rounds:int ->
  ?warmup:int ->
  name:string ->
  workers:int list ->
  Om_codegen.Pipeline.result ->
  series
(** Time [rounds] (default 2000) RHS evaluations at the model's initial
    state, sequentially and for every worker count in [workers] (each
    preceded by [warmup] untimed evaluations), reusing one domain pool
    per worker count across all of its rounds. *)

val schema : string
(** ["objectmath-bench-parallel/1"]. *)

val write_json : path:string -> ncores:int -> series list -> unit
(** Write the machine-readable sweep results; [ncores] records the
    host's core count so flat curves on small machines are
    interpretable. *)

val pp_series : Format.formatter -> series -> unit
(** Human-readable table of one sweep. *)
