(* Measured multicore scaling sweeps: the real-hardware counterpart of
   the simulated Figure 12 series, sharing its schedule (LPT on static
   costs) and its metric (#RHS-calls per second). *)

module Bb = Om_codegen.Bytecode_backend
module P = Om_codegen.Pipeline

type point = {
  workers : int;
  rounds : int;
  seconds : float;
  rhs_per_sec : float;
  speedup : float;
  identical : bool;
}

type series = {
  model : string;
  dim : int;
  ntasks : int;
  points : point list;
}

let now = Unix.gettimeofday

let desc_for (r : P.result) ~nprocs =
  let costs = Bb.task_costs_static r.compiled in
  let sched = Om_sched.Lpt.schedule ~costs r.tasks ~nprocs in
  Om_machine.Round_desc.make ~assignment:sched.assignment ~task_flops:costs
    ~task_reads:(Array.map (fun t -> t.Om_sched.Task.reads) r.tasks)
    ~task_writes:(Array.map (fun t -> t.Om_sched.Task.writes) r.tasks)
    ~state_dim:r.compiled.Bb.dim

(* Evaluate the RHS [warmup + rounds] times at the model's initial
   state through [rhs]; return (seconds over the timed rounds, final
   derivative vector). *)
let time_rounds ~warmup ~rounds ~dim ~y0 rhs =
  let ydot = Array.make dim 0. in
  for _ = 1 to warmup do
    rhs 0. y0 ydot
  done;
  let t0 = now () in
  for _ = 1 to rounds do
    rhs 0. y0 ydot
  done;
  (now () -. t0, ydot)

let measure ?(rounds = 2000) ?(warmup = 50) ~name ~workers (r : P.result) =
  let dim = r.compiled.Bb.dim in
  let y0 = Om_lang.Flat_model.initial_values r.model in
  let seq_seconds, seq_ydot =
    time_rounds ~warmup ~rounds ~dim ~y0 (Bb.rhs_fn r.compiled)
  in
  let measured =
    List.map
      (fun w ->
        let desc = desc_for r ~nprocs:w in
        Par_exec.with_executor ~nworkers:w desc r.compiled (fun px ->
            let seconds, ydot =
              time_rounds ~warmup ~rounds ~dim ~y0 (Par_exec.rhs_fn px)
            in
            (w, seconds, ydot = seq_ydot)))
      workers
  in
  let base =
    match List.find_opt (fun (w, _, _) -> w = 1) measured with
    | Some (_, s, _) -> s
    | None -> seq_seconds
  in
  let point workers seconds identical =
    {
      workers;
      rounds;
      seconds;
      rhs_per_sec =
        (if seconds > 0. then float_of_int rounds /. seconds else 0.);
      speedup = (if seconds > 0. then base /. seconds else 0.);
      identical;
    }
  in
  {
    model = name;
    dim;
    ntasks = Array.length r.compiled.Bb.tasks;
    points =
      point 0 seq_seconds true
      :: List.map (fun (w, s, id) -> point w s id) measured;
  }

let schema = "objectmath-bench-parallel/1"

let write_json ~path ~ncores series =
  let buf = Buffer.create 2048 in
  let num x = Printf.sprintf "%.6g" x in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"schema\": %S,\n  \"ncores\": %d,\n  \"models\": {\n"
       schema ncores);
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "    %S: {\n      \"dim\": %d, \"tasks\": %d,\n      \"points\": {\n"
           s.model s.dim s.ntasks);
      List.iteri
        (fun j p ->
          Buffer.add_string buf
            (Printf.sprintf
               "        \"%d\": { \"rounds\": %d, \"seconds\": %s, \
                \"rhs_calls_per_sec\": %s, \"speedup_vs_1\": %s, \
                \"identical\": %b }%s\n"
               p.workers p.rounds (num p.seconds) (num p.rhs_per_sec)
               (num p.speedup) p.identical
               (if j = List.length s.points - 1 then "" else ",")))
        s.points;
      Buffer.add_string buf
        (Printf.sprintf "      }\n    }%s\n"
           (if i = List.length series - 1 then "" else ",")))
    series;
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc

let pp_series ppf s =
  Format.fprintf ppf "%s: dim %d, %d tasks@." s.model s.dim s.ntasks;
  Format.fprintf ppf "  %-9s %10s %14s %10s %10s@." "workers" "rounds"
    "RHS-calls/s" "speedup" "identical";
  List.iter
    (fun p ->
      Format.fprintf ppf "  %-9s %10d %14.0f %10.2f %10b@."
        (if p.workers = 0 then "seq" else string_of_int p.workers)
        p.rounds p.rhs_per_sec p.speedup p.identical)
    s.points
