(* Measured multicore scaling sweeps: the real-hardware counterpart of
   the simulated Figure 12 series, sharing its schedule (LPT on static
   costs) and its metric (#RHS-calls per second).  Each sweep runs
   through the measured executor, so per-point telemetry (reschedules,
   per-worker compute/wait) rides along, and a [?semidynamic] sweep
   exercises the paper's §3.2.3 rescheduler on real domains. *)

module Bb = Om_codegen.Bytecode_backend
module P = Om_codegen.Pipeline

type point = {
  workers : int;
  rounds : int;
  seconds : float;
  rhs_per_sec : float;
  speedup : float;
  identical : bool;
  first_diff : int option;
  reschedules : int;
  worker_compute : float array;
  worker_wait : float array;
}

type series = {
  model : string;
  dim : int;
  ntasks : int;
  semidynamic : int option;
  points : point list;
}

let now = Unix.gettimeofday

let desc_for (r : P.result) ~nprocs =
  let costs = Bb.task_costs_static r.compiled in
  let sched = Om_sched.Lpt.schedule ~costs r.tasks ~nprocs in
  Om_machine.Round_desc.make ~assignment:sched.assignment ~task_flops:costs
    ~task_reads:(Array.map (fun t -> t.Om_sched.Task.reads) r.tasks)
    ~task_writes:(Array.map (fun t -> t.Om_sched.Task.writes) r.tasks)
    ~state_dim:r.compiled.Bb.dim

(* First index where the two derivative vectors differ bitwise, [None]
   if they are identical.  Bit comparison via [Int64.bits_of_float]
   rather than polymorphic [=]: structural equality on float arrays
   treats [nan <> nan], so a NaN-producing model would report every run
   as non-identical even when the bits agree. *)
let first_diff_index a b =
  let n = Array.length a in
  if Array.length b <> n then Some 0
  else begin
    let i = ref 0 in
    while
      !i < n && Int64.equal (Int64.bits_of_float a.(!i)) (Int64.bits_of_float b.(!i))
    do
      incr i
    done;
    if !i >= n then None else Some !i
  end

(* Evaluate the RHS [warmup + rounds] times at the model's initial
   state through [rhs]; return (seconds over the timed rounds, final
   derivative vector). *)
let time_rounds ~warmup ~rounds ~dim ~y0 rhs =
  let ydot = Array.make dim 0. in
  for _ = 1 to warmup do
    rhs 0. y0 ydot
  done;
  let t0 = now () in
  for _ = 1 to rounds do
    rhs 0. y0 ydot
  done;
  (now () -. t0, ydot)

let measure ?(rounds = 2000) ?(warmup = 50) ?semidynamic ~name ~workers
    (r : P.result) =
  let dim = r.compiled.Bb.dim in
  let y0 = Om_lang.Flat_model.initial_values r.model in
  let seq_seconds, seq_ydot =
    time_rounds ~warmup ~rounds ~dim ~y0 (Bb.rhs_fn r.compiled)
  in
  (* One measured run at [w] workers: telemetry is reset after warm-up so
     reschedule counts and per-worker totals cover only the timed rounds. *)
  let run w =
    let desc = desc_for r ~nprocs:w in
    Par_exec.with_measured ?semidynamic ~nworkers:w ~tasks:r.tasks desc
      r.compiled (fun m ->
        let rhs = Par_exec.measured_rhs_fn m in
        let ydot = Array.make dim 0. in
        for _ = 1 to warmup do
          rhs 0. y0 ydot
        done;
        let st = Par_exec.stats m in
        Round_stats.reset st;
        let t0 = now () in
        for _ = 1 to rounds do
          rhs 0. y0 ydot
        done;
        let seconds = now () -. t0 in
        ( seconds,
          ydot,
          Round_stats.reschedules st,
          Round_stats.worker_compute st,
          Round_stats.worker_wait st ))
  in
  let measured = List.map (fun w -> (w, run w)) workers in
  (* The speedup denominator is always a measured 1-worker executor run:
     reusing the sweep's own 1-worker point when present, measuring one
     otherwise — never the sequential time, whose missing round barrier
     makes it a different baseline. *)
  let base_seconds =
    match List.assoc_opt 1 measured with
    | Some (s, _, _, _, _) -> s
    | None ->
        let s, _, _, _, _ = run 1 in
        s
  in
  let point ~workers ~seconds ~first_diff ~reschedules ~worker_compute
      ~worker_wait =
    {
      workers;
      rounds;
      seconds;
      rhs_per_sec =
        (if seconds > 0. then float_of_int rounds /. seconds else 0.);
      speedup = (if seconds > 0. then base_seconds /. seconds else 0.);
      identical = first_diff = None;
      first_diff;
      reschedules;
      worker_compute;
      worker_wait;
    }
  in
  {
    model = name;
    dim;
    ntasks = Array.length r.compiled.Bb.tasks;
    semidynamic;
    points =
      point ~workers:0 ~seconds:seq_seconds ~first_diff:None ~reschedules:0
        ~worker_compute:[||] ~worker_wait:[||]
      :: List.map
           (fun (w, (s, ydot, n, wc, ww)) ->
             point ~workers:w ~seconds:s
               ~first_diff:(first_diff_index seq_ydot ydot)
               ~reschedules:n ~worker_compute:wc ~worker_wait:ww)
           measured;
  }

let schema = "objectmath-bench-parallel/2"

(* JSON numbers must be finite: [nan]/[inf] from a diverging model or a
   zero-duration division are serialised as [null], never printed with
   [%g] (which would emit invalid JSON). *)
let num x = if Float.is_finite x then Printf.sprintf "%.6g" x else "null"

let num_array xs =
  "[" ^ String.concat ", " (Array.to_list (Array.map num xs)) ^ "]"

let series_key s =
  match s.semidynamic with None -> "static" | Some _ -> "semidynamic"

let write_json ~path ~ncores series =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"schema\": %S,\n  \"ncores\": %d,\n  \"models\": {\n"
       schema ncores);
  (* Group the sweeps by model, keeping first-appearance order, so a
     static and a semidynamic run of the same model nest under one
     model object. *)
  let models =
    List.fold_left
      (fun acc s -> if List.mem_assoc s.model acc then acc else (s.model, ()) :: acc)
      [] series
    |> List.rev_map fst
  in
  List.iteri
    (fun mi model ->
      let runs = List.filter (fun s -> s.model = model) series in
      let first = List.hd runs in
      Buffer.add_string buf
        (Printf.sprintf
           "    %S: {\n      \"dim\": %d, \"tasks\": %d,\n      \"series\": {\n"
           model first.dim first.ntasks);
      List.iteri
        (fun si s ->
          Buffer.add_string buf
            (Printf.sprintf "        %S: {\n" (series_key s));
          (match s.semidynamic with
          | None -> ()
          | Some p ->
              Buffer.add_string buf
                (Printf.sprintf "          \"period\": %d,\n" p));
          Buffer.add_string buf "          \"points\": {\n";
          List.iteri
            (fun j p ->
              Buffer.add_string buf
                (Printf.sprintf
                   "            \"%d\": { \"rounds\": %d, \"seconds\": %s, \
                    \"rhs_calls_per_sec\": %s, \"speedup_vs_1\": %s, \
                    \"identical\": %b, \"first_diff\": %s, \
                    \"reschedules\": %d, \"worker_compute\": %s, \
                    \"worker_wait\": %s }%s\n"
                   p.workers p.rounds (num p.seconds) (num p.rhs_per_sec)
                   (num p.speedup) p.identical
                   (match p.first_diff with
                   | None -> "null"
                   | Some i -> string_of_int i)
                   p.reschedules (num_array p.worker_compute)
                   (num_array p.worker_wait)
                   (if j = List.length s.points - 1 then "" else ",")))
            s.points;
          Buffer.add_string buf
            (Printf.sprintf "          }\n        }%s\n"
               (if si = List.length runs - 1 then "" else ",")))
        runs;
      Buffer.add_string buf
        (Printf.sprintf "      }\n    }%s\n"
           (if mi = List.length models - 1 then "" else ",")))
    models;
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc

let pp_series ppf s =
  Format.fprintf ppf "%s (%s): dim %d, %d tasks@." s.model
    (match s.semidynamic with
    | None -> "static"
    | Some p -> Printf.sprintf "semidynamic, period %d" p)
    s.dim s.ntasks;
  Format.fprintf ppf "  %-9s %10s %14s %10s %10s %8s@." "workers" "rounds"
    "RHS-calls/s" "speedup" "identical" "resched";
  List.iter
    (fun p ->
      Format.fprintf ppf "  %-9s %10d %14.0f %10.2f %10b %8d@."
        (if p.workers = 0 then "seq" else string_of_int p.workers)
        p.rounds p.rhs_per_sec p.speedup p.identical p.reschedules)
    s.points
