(* Pre-spawned worker domains with a spin-then-block round barrier.

   One round = the supervisor publishing a new generation number and
   every worker running its fixed job once.  All synchronisation is a
   pair of int atomics plus two mutex/condition pairs used only as a
   fallback when a spin budget runs out, so a steady-state round
   performs zero heap allocation on every domain.

   The generation protocol: [round] counts rounds; a worker remembers
   the last generation it served and runs its job whenever the counter
   moves (to [-1] for shutdown).  The last worker to finish bumps
   [ndone] to [nworkers] and wakes the supervisor.  Publishing the
   generation (and the shutdown marker) under [start_mutex] and
   re-checking it under the same mutex before [Condition.wait] rules
   out lost wake-ups; the atomics alone provide the happens-before
   edges that make the shared state and output arrays written before
   the round visible to the workers, and the workers' writes visible
   to the supervisor after the round. *)

type t = {
  nworkers : int;
  job : int -> unit;
  round : int Atomic.t; (* generation counter; -1 = shutdown *)
  ndone : int Atomic.t;
  start_mutex : Mutex.t;
  start_cond : Condition.t;
  done_mutex : Mutex.t;
  done_cond : Condition.t;
  spin_budget : int;
  compute : float array; (* per-worker job seconds of the last round *)
  timing : float array; (* timing.(0) = wall seconds of the last round *)
  mutable domains : unit Domain.t array;
  mutable rounds : int;
}

let nworkers t = t.nworkers
let rounds t = t.rounds
let active t = Array.length t.domains > 0
let compute_seconds t = t.compute
let round_timing t = t.timing
let last_round_seconds t = t.timing.(0)

let worker pool w =
  let last = ref 0 in
  (* Wait for the generation to move off [!last]; spin first (cheap on
     a dedicated core), block on the condition once the budget is
     spent (mandatory when domains outnumber cores). *)
  let next_generation () =
    let rec spin budget =
      let g = Atomic.get pool.round in
      if g <> !last then g
      else if budget > 0 then begin
        Domain.cpu_relax ();
        spin (budget - 1)
      end
      else begin
        Mutex.lock pool.start_mutex;
        let rec block () =
          let g = Atomic.get pool.round in
          if g = !last then begin
            Condition.wait pool.start_cond pool.start_mutex;
            block ()
          end
          else g
        in
        let g = block () in
        Mutex.unlock pool.start_mutex;
        g
      end
    in
    spin pool.spin_budget
  in
  let rec serve () =
    let g = next_generation () in
    if g >= 0 then begin
      last := g;
      (* Time the job with the unboxed monotonic clock and store the
         delta straight into this worker's pre-allocated slot — no
         allocation on the worker in steady state.  The write is
         published to the supervisor by the [ndone] bump below. *)
      let t0 = Monotonic.now () in
      pool.job w;
      Array.unsafe_set pool.compute w (Monotonic.now () -. t0);
      if Atomic.fetch_and_add pool.ndone 1 = pool.nworkers - 1 then begin
        Mutex.lock pool.done_mutex;
        Condition.broadcast pool.done_cond;
        Mutex.unlock pool.done_mutex
      end;
      serve ()
    end
  in
  serve ()

let create ?(spin_budget = 2000) ~job nworkers =
  if nworkers < 1 then invalid_arg "Domain_pool.create: nworkers < 1";
  if spin_budget < 0 then invalid_arg "Domain_pool.create: spin_budget < 0";
  let pool =
    {
      nworkers;
      job;
      round = Atomic.make 0;
      ndone = Atomic.make 0;
      start_mutex = Mutex.create ();
      start_cond = Condition.create ();
      done_mutex = Mutex.create ();
      done_cond = Condition.create ();
      spin_budget;
      compute = Array.make nworkers 0.;
      timing = Array.make 1 0.;
      domains = [||];
      rounds = 0;
    }
  in
  pool.domains <- Array.init nworkers (fun w -> Domain.spawn (fun () -> worker pool w));
  pool

(* Top level (not a local closure over [pool]) so a steady-state round
   allocates nothing: a local [let rec] capturing [pool] would build a
   fresh closure block on every call. *)
let rec supervisor_wait pool budget =
  if Atomic.get pool.ndone < pool.nworkers then
    if budget > 0 then begin
      Domain.cpu_relax ();
      supervisor_wait pool (budget - 1)
    end
    else begin
      Mutex.lock pool.done_mutex;
      while Atomic.get pool.ndone < pool.nworkers do
        Condition.wait pool.done_cond pool.done_mutex
      done;
      Mutex.unlock pool.done_mutex
    end

let round pool =
  if not (active pool) then invalid_arg "Domain_pool.round: pool is shut down";
  let t0 = Monotonic.now () in
  Atomic.set pool.ndone 0;
  Mutex.lock pool.start_mutex;
  Atomic.incr pool.round;
  Condition.broadcast pool.start_cond;
  Mutex.unlock pool.start_mutex;
  supervisor_wait pool pool.spin_budget;
  pool.timing.(0) <- Monotonic.now () -. t0;
  pool.rounds <- pool.rounds + 1

let shutdown pool =
  if active pool then begin
    Mutex.lock pool.start_mutex;
    Atomic.set pool.round (-1);
    Condition.broadcast pool.start_cond;
    Mutex.unlock pool.start_mutex;
    Array.iter Domain.join pool.domains;
    pool.domains <- [||]
  end
