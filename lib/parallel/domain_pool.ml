(* Pre-spawned worker domains with a spin-then-block round barrier.

   One round = the supervisor publishing a new generation number and
   every worker running its fixed job once.  All synchronisation is a
   pair of int atomics plus two mutex/condition pairs used only as a
   fallback when a spin budget runs out, so a steady-state round
   performs zero heap allocation on every domain.

   The generation protocol: [round] counts rounds; a worker remembers
   the last generation it served and runs its job whenever the counter
   moves (to [-1] for shutdown).  The last worker to finish bumps
   [ndone] to [nworkers] and wakes the supervisor.  Publishing the
   generation (and the shutdown marker) under [start_mutex] and
   re-checking it under the same mutex before [Condition.wait] rules
   out lost wake-ups; the atomics alone provide the happens-before
   edges that make the shared state and output arrays written before
   the round visible to the workers, and the workers' writes visible
   to the supervisor after the round. *)

type t = {
  nworkers : int;
  job : int -> unit;
  round : int Atomic.t; (* generation counter; -1 = shutdown *)
  ndone : int Atomic.t;
  start_mutex : Mutex.t;
  start_cond : Condition.t;
  done_mutex : Mutex.t;
  done_cond : Condition.t;
  spin_budget : int;
  deadline : float; (* barrier deadline in seconds; 0. = none *)
  compute : float array; (* per-worker job seconds of the last round *)
  timing : float array; (* timing.(0) = wall seconds of the last round *)
  arrived : int array; (* last generation each worker completed *)
  failures : exn option array; (* contained worker exceptions, per worker *)
  mutable stall : Om_guard.Om_error.t option; (* last barrier-deadline event *)
  mutable domains : unit Domain.t array;
  mutable rounds : int;
}

let nworkers t = t.nworkers
let rounds t = t.rounds
let active t = Array.length t.domains > 0
let compute_seconds t = t.compute
let round_timing t = t.timing
let last_round_seconds t = t.timing.(0)

let worker pool w =
  let last = ref 0 in
  (* Wait for the generation to move off [!last]; spin first (cheap on
     a dedicated core), block on the condition once the budget is
     spent (mandatory when domains outnumber cores). *)
  let next_generation () =
    let rec spin budget =
      let g = Atomic.get pool.round in
      if g <> !last then g
      else if budget > 0 then begin
        Domain.cpu_relax ();
        spin (budget - 1)
      end
      else begin
        Mutex.lock pool.start_mutex;
        let rec block () =
          let g = Atomic.get pool.round in
          if g = !last then begin
            Condition.wait pool.start_cond pool.start_mutex;
            block ()
          end
          else g
        in
        let g = block () in
        Mutex.unlock pool.start_mutex;
        g
      end
    in
    spin pool.spin_budget
  in
  let rec serve () =
    let g = next_generation () in
    if g >= 0 then begin
      last := g;
      (* Time the job with the unboxed monotonic clock and store the
         delta straight into this worker's pre-allocated slot — no
         allocation on the worker in steady state.  The write is
         published to the supervisor by the [ndone] bump below.

         A raising job is contained here rather than killing the domain:
         the exception is parked in this worker's failure slot, the
         barrier still completes (every sibling and the supervisor would
         otherwise wait forever on [ndone]) and the domain keeps serving
         rounds, so the pool always joins cleanly at shutdown.  The
         supervisor re-raises the parked exception after the round. *)
      let t0 = Monotonic.now () in
      (try pool.job w with e -> pool.failures.(w) <- Some e);
      Array.unsafe_set pool.compute w (Monotonic.now () -. t0);
      Array.unsafe_set pool.arrived w g;
      if Atomic.fetch_and_add pool.ndone 1 = pool.nworkers - 1 then begin
        Mutex.lock pool.done_mutex;
        Condition.broadcast pool.done_cond;
        Mutex.unlock pool.done_mutex
      end;
      serve ()
    end
  in
  serve ()

let create ?(spin_budget = 2000) ?(barrier_deadline = 0.)
    ?(spawn_fail = fun _ -> false) ~job nworkers =
  if nworkers < 1 then invalid_arg "Domain_pool.create: nworkers < 1";
  if spin_budget < 0 then invalid_arg "Domain_pool.create: spin_budget < 0";
  if barrier_deadline < 0. then
    invalid_arg "Domain_pool.create: barrier_deadline < 0";
  (* Injected spawn failures are checked before any domain exists, so a
     failing create leaks nothing. *)
  for w = 0 to nworkers - 1 do
    if spawn_fail w then
      Om_guard.Om_error.(
        error
          (Spawn_failure
             { worker = w; nworkers; reason = "injected spawn failure" }))
  done;
  let pool =
    {
      nworkers;
      job;
      round = Atomic.make 0;
      ndone = Atomic.make 0;
      start_mutex = Mutex.create ();
      start_cond = Condition.create ();
      done_mutex = Mutex.create ();
      done_cond = Condition.create ();
      spin_budget;
      deadline = barrier_deadline;
      compute = Array.make nworkers 0.;
      timing = Array.make 1 0.;
      arrived = Array.make nworkers 0;
      failures = Array.make nworkers None;
      stall = None;
      domains = [||];
      rounds = 0;
    }
  in
  (* A real [Domain.spawn] failure part-way through must not leak the
     domains already spawned: publish the shutdown generation, join what
     exists, then surface the typed fault. *)
  let spawned = ref [] in
  (try
     for w = 0 to nworkers - 1 do
       spawned := Domain.spawn (fun () -> worker pool w) :: !spawned
     done
   with e ->
     Mutex.lock pool.start_mutex;
     Atomic.set pool.round (-1);
     Condition.broadcast pool.start_cond;
     Mutex.unlock pool.start_mutex;
     List.iter Domain.join !spawned;
     Om_guard.Om_error.(
       error
         (Spawn_failure
            {
              worker = List.length !spawned;
              nworkers;
              reason = Printexc.to_string e;
            })));
  pool.domains <- Array.of_list (List.rev !spawned);
  pool

(* Top level (not a local closure over [pool]) so a steady-state round
   allocates nothing: a local [let rec] capturing [pool] would build a
   fresh closure block on every call. *)
let rec supervisor_wait pool budget =
  if Atomic.get pool.ndone < pool.nworkers then
    if budget > 0 then begin
      Domain.cpu_relax ();
      supervisor_wait pool (budget - 1)
    end
    else begin
      Mutex.lock pool.done_mutex;
      while Atomic.get pool.ndone < pool.nworkers do
        Condition.wait pool.done_cond pool.done_mutex
      done;
      Mutex.unlock pool.done_mutex
    end

(* Deadline-aware wait: after the spin budget, poll in short sleeps and
   the first time the deadline passes with workers still outstanding,
   record a stall event attributing the missing worker (reads of
   [arrived] are advisory — plain racy int reads, good enough for
   diagnostics).  Detection never abandons the barrier: the supervisor
   still waits for completion (a stalled worker that eventually arrives
   left consistent output), and the caller decides whether to degrade
   via {!take_stall}. *)
let supervisor_poll pool t0 =
  let recorded = ref (match pool.stall with None -> false | Some _ -> true) in
  while Atomic.get pool.ndone < pool.nworkers do
    (if (not !recorded) && Monotonic.now () -. t0 > pool.deadline then begin
       recorded := true;
       let g = Atomic.get pool.round in
       let missing = ref 0 and culprit = ref (-1) in
       for w = pool.nworkers - 1 downto 0 do
         if Array.unsafe_get pool.arrived w <> g then begin
           incr missing;
           culprit := w
         end
       done;
       let waited = Monotonic.now () -. t0 in
       if !missing = 1 then
         pool.stall <-
           Some
             (Om_guard.Om_error.Worker_stall
                { worker = !culprit; round = pool.rounds; waited_s = waited })
       else if !missing > 1 then
         pool.stall <-
           Some
             (Om_guard.Om_error.Barrier_timeout
                {
                  round = pool.rounds;
                  missing = !missing;
                  deadline_s = pool.deadline;
                })
     end);
    if Atomic.get pool.ndone < pool.nworkers then Unix.sleepf 20e-6
  done

let take_stall pool =
  let s = pool.stall in
  pool.stall <- None;
  s

(* Re-raise a contained worker exception on the supervisor.  Typed
   runtime faults pass through unchanged (they already carry their own
   attribution); anything else is wrapped so the caller learns which
   worker and round died. *)
let check_failures pool =
  for w = 0 to pool.nworkers - 1 do
    match Array.unsafe_get pool.failures w with
    | None -> ()
    | Some e -> (
        pool.failures.(w) <- None;
        match e with
        | Om_guard.Om_error.Error _ -> raise e
        | e ->
            Om_guard.Om_error.(
              error
                (Worker_exception
                   {
                     worker = w;
                     round = pool.rounds - 1;
                     detail = Printexc.to_string e;
                   })))
  done

let round pool =
  if not (active pool) then invalid_arg "Domain_pool.round: pool is shut down";
  let t0 = Monotonic.now () in
  Atomic.set pool.ndone 0;
  Mutex.lock pool.start_mutex;
  Atomic.incr pool.round;
  Condition.broadcast pool.start_cond;
  Mutex.unlock pool.start_mutex;
  if pool.deadline > 0. then begin
    (* Spin first as usual; only fall to the polling loop (which can
       observe the deadline) if the round is genuinely slow. *)
    let rec spin budget =
      if Atomic.get pool.ndone < pool.nworkers then
        if budget > 0 then begin
          Domain.cpu_relax ();
          spin (budget - 1)
        end
        else supervisor_poll pool t0
    in
    spin pool.spin_budget
  end
  else supervisor_wait pool pool.spin_budget;
  pool.timing.(0) <- Monotonic.now () -. t0;
  pool.rounds <- pool.rounds + 1;
  check_failures pool

let shutdown pool =
  if active pool then begin
    Mutex.lock pool.start_mutex;
    Atomic.set pool.round (-1);
    Condition.broadcast pool.start_cond;
    Mutex.unlock pool.start_mutex;
    Array.iter Domain.join pool.domains;
    pool.domains <- [||]
  end
