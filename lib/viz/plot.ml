type series = { label : string; points : (float * float) list }

let series label points = { label; points }

let of_arrays label xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Plot.of_arrays: length mismatch";
  { label; points = Array.to_list (Array.map2 (fun x y -> (x, y)) xs ys) }

let palette =
  [| "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b" |]

let bounds all =
  let xs = List.concat_map (fun s -> List.map fst s.points) all in
  let ys = List.concat_map (fun s -> List.map snd s.points) all in
  let min_l = List.fold_left Float.min Float.infinity in
  let max_l = List.fold_left Float.max Float.neg_infinity in
  let pad lo hi =
    if hi > lo then (lo, hi) else (lo -. 0.5, hi +. 0.5)
  in
  let x0, x1 = pad (min_l xs) (max_l xs) in
  let y0, y1 = pad (Float.min 0. (min_l ys)) (max_l ys) in
  (x0, x1, y0, y1)

(* Round a range endpoint to a tidy tick value. *)
let ticks lo hi n =
  let span = hi -. lo in
  List.init (n + 1) (fun i -> lo +. (span *. float_of_int i /. float_of_int n))

let fmt_tick v =
  if Float.abs v >= 1000. then Printf.sprintf "%.0f" v
  else if Float.abs v >= 10. then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.3g" v

let to_svg ?(width = 640) ?(height = 400) ?(title = "") ?(x_label = "")
    ?(y_label = "") all =
  if not (List.exists (fun s -> List.length s.points >= 2) all) then
    invalid_arg "Plot.to_svg: need at least one series with two points";
  let x0, x1, y0, y1 = bounds all in
  let ml, mr, mt, mb = (64, 16, 32, 48) in
  let pw = width - ml - mr and ph = height - mt - mb in
  let sx x = float_of_int ml +. ((x -. x0) /. (x1 -. x0) *. float_of_int pw) in
  let sy y =
    float_of_int (mt + ph) -. ((y -. y0) /. (y1 -. y0) *. float_of_int ph)
  in
  let buf = Buffer.create 4096 in
  let put fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  put
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\">\n"
    width height width height;
  put "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" width height;
  if title <> "" then
    put
      "<text x=\"%d\" y=\"20\" text-anchor=\"middle\" font-family=\"sans-serif\" \
       font-size=\"14\">%s</text>\n"
      (width / 2) title;
  (* Axes with ticks and grid lines. *)
  List.iter
    (fun v ->
      let x = sx v in
      put
        "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" stroke=\"#ddd\"/>\n"
        x mt x (mt + ph);
      put
        "<text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\" \
         font-family=\"sans-serif\" font-size=\"10\">%s</text>\n"
        x
        (mt + ph + 14)
        (fmt_tick v))
    (ticks x0 x1 8);
  List.iter
    (fun v ->
      let y = sy v in
      put
        "<line x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\" stroke=\"#ddd\"/>\n"
        ml y (ml + pw) y;
      put
        "<text x=\"%d\" y=\"%.1f\" text-anchor=\"end\" \
         font-family=\"sans-serif\" font-size=\"10\">%s</text>\n"
        (ml - 4) (y +. 3.) (fmt_tick v))
    (ticks y0 y1 6);
  put
    "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"none\" \
     stroke=\"black\"/>\n"
    ml mt pw ph;
  if x_label <> "" then
    put
      "<text x=\"%d\" y=\"%d\" text-anchor=\"middle\" \
       font-family=\"sans-serif\" font-size=\"12\">%s</text>\n"
      (ml + (pw / 2))
      (height - 8) x_label;
  if y_label <> "" then
    put
      "<text x=\"14\" y=\"%d\" text-anchor=\"middle\" \
       font-family=\"sans-serif\" font-size=\"12\" \
       transform=\"rotate(-90 14 %d)\">%s</text>\n"
      (mt + (ph / 2))
      (mt + (ph / 2))
      y_label;
  (* Series. *)
  List.iteri
    (fun k s ->
      let color = palette.(k mod Array.length palette) in
      let pts =
        String.concat " "
          (List.map (fun (x, y) -> Printf.sprintf "%.1f,%.1f" (sx x) (sy y))
             s.points)
      in
      put
        "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" \
         stroke-width=\"1.5\"/>\n"
        pts color;
      (* Legend entry. *)
      let ly = mt + 12 + (k * 16) in
      put
        "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"%s\" \
         stroke-width=\"2\"/>\n"
        (ml + pw - 130) ly (ml + pw - 110) ly color;
      put
        "<text x=\"%d\" y=\"%d\" font-family=\"sans-serif\" \
         font-size=\"11\">%s</text>\n"
        (ml + pw - 104) (ly + 4) s.label)
    all;
  put "</svg>\n";
  Buffer.contents buf

let save_svg ~path ?width ?height ?title ?x_label ?y_label all =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_svg ?width ?height ?title ?x_label ?y_label all))

let to_ascii ?(width = 64) ?(height = 16) s =
  match s.points with
  | [] | [ _ ] -> "(not enough points)"
  | pts ->
      let x0, x1, y0, y1 = bounds [ s ] in
      let grid = Array.make_matrix height width ' ' in
      List.iter
        (fun (x, y) ->
          let cx =
            int_of_float ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1))
          in
          let cy =
            int_of_float ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1))
          in
          grid.(height - 1 - cy).(cx) <- '*')
        pts;
      let buf = Buffer.create (width * height) in
      Array.iter
        (fun row ->
          Buffer.add_char buf '|';
          Array.iter (Buffer.add_char buf) row;
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf
        (Printf.sprintf "x: %s .. %s   y: %s .. %s   (%s)" (fmt_tick x0)
           (fmt_tick x1) (fmt_tick y0) (fmt_tick y1) s.label);
      Buffer.contents buf

type gantt_segment = {
  row : int;
  t_start : float;
  t_end : float;
  category : string;
}

let gantt_svg ?(width = 720) ?(height = 0) ?(title = "") ~row_labels segments
    =
  if segments = [] || row_labels = [] then
    invalid_arg "Plot.gantt_svg: empty input";
  let nrows = List.length row_labels in
  List.iter
    (fun s ->
      if s.row < 0 || s.row >= nrows then
        invalid_arg "Plot.gantt_svg: row out of range")
    segments;
  let lane = 22 in
  let ml, mr, mt, mb = (110, 16, 36, 36) in
  let height = if height > 0 then height else mt + mb + (nrows * lane) in
  let t1 =
    List.fold_left (fun acc s -> Float.max acc s.t_end) 0. segments
  in
  let t1 = if t1 <= 0. then 1. else t1 in
  let pw = width - ml - mr in
  let sx t = float_of_int ml +. (t /. t1 *. float_of_int pw) in
  let categories =
    List.sort_uniq compare (List.map (fun s -> s.category) segments)
  in
  let color c =
    let rec idx i = function
      | [] -> 0
      | x :: rest -> if x = c then i else idx (i + 1) rest
    in
    palette.(idx 0 categories mod Array.length palette)
  in
  let buf = Buffer.create 4096 in
  let put fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  put
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\">\n"
    width height width height;
  put "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" width height;
  if title <> "" then
    put
      "<text x=\"%d\" y=\"20\" text-anchor=\"middle\" \
       font-family=\"sans-serif\" font-size=\"13\">%s</text>\n"
      (width / 2) title;
  List.iteri
    (fun i label ->
      let y = mt + (i * lane) in
      put
        "<text x=\"%d\" y=\"%d\" text-anchor=\"end\" \
         font-family=\"sans-serif\" font-size=\"11\">%s</text>\n"
        (ml - 6)
        (y + (lane / 2) + 4)
        label;
      put
        "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#eee\"/>\n" ml
        (y + lane) (ml + pw) (y + lane))
    row_labels;
  List.iter
    (fun s ->
      let y = mt + (s.row * lane) + 3 in
      put
        "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" \
         fill=\"%s\" stroke=\"none\"/>\n"
        (sx s.t_start) y
        (Float.max 0.5 (sx s.t_end -. sx s.t_start))
        (lane - 6) (color s.category))
    segments;
  (* Time axis and legend. *)
  List.iter
    (fun v ->
      put
        "<text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\" \
         font-family=\"sans-serif\" font-size=\"10\">%s</text>\n"
        (sx v)
        (height - mb + 14)
        (fmt_tick v))
    (ticks 0. t1 6);
  List.iteri
    (fun k c ->
      let x = ml + (k * 110) in
      put
        "<rect x=\"%d\" y=\"%d\" width=\"12\" height=\"12\" fill=\"%s\"/>\n" x
        (height - 16) (color c);
      put
        "<text x=\"%d\" y=\"%d\" font-family=\"sans-serif\" \
         font-size=\"11\">%s</text>\n"
        (x + 16)
        (height - 6)
        c)
    categories;
  put "</svg>\n";
  Buffer.contents buf
