(** Minimal plotting for trajectories and speedup curves.

    The ObjectMath environment offered "graphical presentation and
    visualization" of numerical experiments (paper §1.1, Figure 7's
    "Visualization Tool" box).  This module renders line charts as SVG
    text and quick-look ASCII, with no dependencies. *)

type series = {
  label : string;
  points : (float * float) list;
}

val series : string -> (float * float) list -> series

val of_arrays : string -> float array -> float array -> series
(** @raise Invalid_argument on length mismatch. *)

val to_svg :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string
(** A complete standalone SVG document with axes, tick labels, a legend
    and one polyline per series.  @raise Invalid_argument when no series
    has at least two points. *)

val save_svg :
  path:string ->
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  unit

val to_ascii : ?width:int -> ?height:int -> series -> string
(** Quick terminal rendering of a single series. *)

type gantt_segment = {
  row : int;  (** 0-based row index *)
  t_start : float;
  t_end : float;
  category : string;  (** colours are assigned per distinct category *)
}

val gantt_svg :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  row_labels:string list ->
  gantt_segment list ->
  string
(** Horizontal activity chart: one lane per row, one rectangle per
    segment, a legend per category.  @raise Invalid_argument on empty
    input or rows outside the label range. *)
