(** Dynamic (branch-resolved) cost measurement.

    The semi-dynamic scheduler (paper §3.2.3) needs the {e actual} cost of
    each task in the iteration just executed: conditional right-hand sides
    make the static estimate wrong.  This module compiles an expression to
    a closure that evaluates it while accumulating the flop cost of the
    branches actually taken. *)

val build :
  ?weights:Cost.weights ->
  string array ->
  Expr.t ->
  float array -> float ref -> float
(** [build names e] returns [fun env acc -> value]: evaluates [e] against
    [env] (laid out like [names]) and adds the exercised flop cost to
    [acc].  @raise Eval.Unbound at build time for unknown variables. *)
