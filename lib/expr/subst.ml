module Smap = Map.Make (String)

let rec apply_map m e =
  match e with
  | Expr.Var v -> ( match Smap.find_opt v m with Some e' -> e' | None -> e)
  | _ -> Expr.map_children (apply_map m) e

let apply bindings e =
  apply_map (List.fold_left (fun m (v, x) -> Smap.add v x m) Smap.empty bindings) e

let rec rename f e =
  match e with
  | Expr.Var v -> Expr.var (f v)
  | _ -> Expr.map_children (rename f) e
