let head_of_func f = String.capitalize_ascii (Expr.func_name f)

let head_of_rel : Expr.rel -> string = function
  | Lt -> "Less"
  | Le -> "LessEqual"
  | Gt -> "Greater"
  | Ge -> "GreaterEqual"

let number_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then
    string_of_int (int_of_float x)
  else Printf.sprintf "%.17g" x

let rec render ~annotate buf (e : Expr.t) =
  let head h args =
    Buffer.add_string buf h;
    Buffer.add_char buf '[';
    List.iteri
      (fun i a ->
        if i > 0 then Buffer.add_string buf ", ";
        render ~annotate buf a)
      args;
    Buffer.add_char buf ']'
  in
  match e with
  | Const x -> Buffer.add_string buf (number_to_string x)
  | Var v ->
      if annotate then (
        Buffer.add_string buf "om$Type[";
        Buffer.add_string buf v;
        Buffer.add_string buf ", om$Real]")
      else Buffer.add_string buf v
  | Add xs -> head "Plus" xs
  | Mul xs -> head "Times" xs
  | Pow (a, b) -> head "Power" [ a; b ]
  | Call (f, args) -> head (head_of_func f) args
  | If (c, t, e') ->
      Buffer.add_string buf "If[";
      Buffer.add_string buf (head_of_rel c.rel);
      Buffer.add_char buf '[';
      render ~annotate buf c.lhs;
      Buffer.add_string buf ", ";
      render ~annotate buf c.rhs;
      Buffer.add_string buf "], ";
      render ~annotate buf t;
      Buffer.add_string buf ", ";
      render ~annotate buf e';
      Buffer.add_char buf ']'

let to_string ?(annotate = false) e =
  let buf = Buffer.create 256 in
  render ~annotate buf e;
  Buffer.contents buf

let to_lines ?(annotate = false) ?(width = 72) e =
  let s = to_string ~annotate e in
  (* Break after ", " separators once a line exceeds [width], indenting
     continuations by the current bracket depth. *)
  let lines = ref [] in
  let line = Buffer.create width in
  let depth = ref 0 in
  let flush_line () =
    lines := Buffer.contents line :: !lines;
    Buffer.clear line;
    Buffer.add_string line (String.make (min (2 * !depth) 40) ' ')
  in
  String.iteri
    (fun i c ->
      (match c with
      | '[' -> incr depth
      | ']' -> decr depth
      | _ -> ());
      Buffer.add_char line c;
      if
        c = ' '
        && i > 0
        && s.[i - 1] = ','
        && Buffer.length line >= width
      then flush_line ())
    s;
  if Buffer.length line > 0 then lines := Buffer.contents line :: !lines;
  List.rev !lines

let equation_to_string ?(annotate = false) ~lhs_var rhs =
  let lhs =
    if annotate then
      Printf.sprintf "Derivative[1][om$Type[%s, om$Real]][om$Type[t, om$Real]]"
        lhs_var
    else Printf.sprintf "Derivative[1][%s][t]" lhs_var
  in
  Printf.sprintf "Equal[%s, %s]" lhs (to_string ~annotate rhs)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

type token = Ident of string | Number of float | Lbrack | Rbrack | Comma

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '$' || c = '_'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\n' || c = '\t' then incr i
    else if c = '[' then (
      toks := Lbrack :: !toks;
      incr i)
    else if c = ']' then (
      toks := Rbrack :: !toks;
      incr i)
    else if c = ',' then (
      toks := Comma :: !toks;
      incr i)
    else if (c >= '0' && c <= '9') || c = '-' || c = '.' then (
      let j = ref !i in
      incr j;
      while
        !j < n
        && (let d = s.[!j] in
            (d >= '0' && d <= '9')
            || d = '.' || d = 'e' || d = 'E'
            || ((d = '-' || d = '+') && (s.[!j - 1] = 'e' || s.[!j - 1] = 'E')))
      do
        incr j
      done;
      let text = String.sub s !i (!j - !i) in
      (match float_of_string_opt text with
      | Some x -> toks := Number x :: !toks
      | None -> failwith ("Prefix_form.of_string: bad number " ^ text));
      i := !j)
    else if is_ident_char c then (
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do
        incr j
      done;
      toks := Ident (String.sub s !i (!j - !i)) :: !toks;
      i := !j)
    else failwith (Printf.sprintf "Prefix_form.of_string: bad character %c" c)
  done;
  List.rev !toks

(* Parsed values: a relation ([Less[a, b]]) is only legal as the first
   argument of [If], so the parser distinguishes the two cases. *)
type value = Vexpr of Expr.t | Vrel of Expr.cond

let of_string s =
  let toks = ref (tokenize s) in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let next () =
    match !toks with
    | [] -> failwith "Prefix_form.of_string: unexpected end"
    | t :: rest ->
        toks := rest;
        t
  in
  let expect t =
    if next () <> t then failwith "Prefix_form.of_string: syntax error"
  in
  let as_expr = function
    | Vexpr e -> e
    | Vrel _ -> failwith "Prefix_form.of_string: relation outside If"
  in
  let rec value () =
    match next () with
    | Number x -> Vexpr (Expr.const x)
    | Ident name -> (
        match peek () with
        | Some Lbrack ->
            expect Lbrack;
            let args = args_until_rbrack () in
            apply name args
        | _ -> Vexpr (Expr.var name))
    | Lbrack | Rbrack | Comma ->
        failwith "Prefix_form.of_string: syntax error"
  and args_until_rbrack () =
    match peek () with
    | Some Rbrack ->
        expect Rbrack;
        []
    | _ ->
        let a = value () in
        let rec more acc =
          match next () with
          | Comma -> more (value () :: acc)
          | Rbrack -> List.rev acc
          | Lbrack | Ident _ | Number _ ->
              failwith "Prefix_form.of_string: expected , or ]"
        in
        more [ a ]
  and apply name args =
    let rel r =
      match args with
      | [ a; b ] -> Vrel (Expr.cond (as_expr a) r (as_expr b))
      | _ -> failwith "Prefix_form.of_string: relation arity"
    in
    match name with
    | "Plus" -> Vexpr (Expr.add (List.map as_expr args))
    | "Times" -> Vexpr (Expr.mul (List.map as_expr args))
    | "Power" -> (
        match args with
        | [ a; b ] -> Vexpr (Expr.pow (as_expr a) (as_expr b))
        | _ -> failwith "Prefix_form.of_string: Power arity")
    | "Minus" -> (
        match args with
        | [ a ] -> Vexpr (Expr.neg (as_expr a))
        | _ -> failwith "Prefix_form.of_string: Minus arity")
    | "om$Type" -> (
        match args with
        | [ v; _ty ] -> Vexpr (as_expr v)
        | _ -> failwith "Prefix_form.of_string: om$Type arity")
    | "Less" -> rel Expr.Lt
    | "LessEqual" -> rel Expr.Le
    | "Greater" -> rel Expr.Gt
    | "GreaterEqual" -> rel Expr.Ge
    | "If" -> (
        match args with
        | [ Vrel c; t; e ] -> Vexpr (Expr.if_ c (as_expr t) (as_expr e))
        | _ -> failwith "Prefix_form.of_string: malformed If")
    | _ -> (
        match Expr.func_of_name (String.lowercase_ascii name) with
        | Some f -> Vexpr (Expr.call f (List.map as_expr args))
        | None ->
            failwith
              (Printf.sprintf
                 "Prefix_form.of_string: unknown head %s applied to %d args"
                 name (List.length args)))
  in
  let e = as_expr (value ()) in
  if !toks <> [] then failwith "Prefix_form.of_string: trailing input";
  e
