(** Register-based, allocation-free expression VM.

    The compiler lowers {!Expr.t} into a flat instruction array
    ({!Vm_code}) with pre-resolved register slots and a separate
    constant pool, runs the {!Peephole} optimiser over it (constant
    folding, [Fma]/[Vmul]/[Vmacc] fusion, dead-store elimination), and
    validates every operand once — so the interpreter is a tight loop
    over [Array.unsafe_get]/[unsafe_set] with zero heap allocation in
    steady state.  Primitives dispatch directly to [float -> float]
    externals; there is no per-call argument list.

    Semantics match {!Eval.eval} exactly, up to the sign of zero in
    empty/unit summands (the tree evaluator folds sums from [0.] and
    products from [1.]; the VM folds pairwise).

    A program owns a scratch register file: running the same program
    concurrently from two domains is a race.  Use {!clone_scratch} to
    give each domain its own register file over the shared (immutable)
    instruction stream. *)

type program

(** Where a statement stores its value. *)
type target =
  | To_env of int  (** env slot — CSE temporaries *)
  | To_out of int  (** output slot — derivative roots *)

type stats = {
  instrs : int;  (** static instruction count *)
  flops : float;  (** static flop units on the {!Cost.default} scale *)
  fused : int;  (** fused instructions ([Fma]/[Vmul]/[Vmacc]/[Sqr]) *)
}

val compile : ?optimize:bool -> string array -> Expr.t -> program
(** Compile a single expression; variables resolve to slots in the
    given name layout.  [optimize] (default [true]) runs the peephole
    pass.
    @raise Eval.Unbound for unknown variables. *)

val compile_stmts :
  ?optimize:bool ->
  ?private_env_slot:(int -> bool) ->
  out_size:int ->
  string array ->
  (Expr.t * target) list ->
  program
(** Compile a statement block — each expression evaluated in order and
    stored to its target.  [private_env_slot] marks env slots only this
    program reads (task-private CSE temporaries), letting the optimiser
    delete stores that end up unread.  Run with {!exec}. *)

val compile_epilogue :
  ?optimize:bool -> out_size:int -> (int * int list) list -> program
(** Compile a reduction epilogue: each [(deriv, slots)] sets
    [out.(deriv) <- sum of out.(slot)]s, folding from [0.] like the
    closure backend.  Reads and writes only [out]. *)

val clone_scratch : program -> program
(** An independently runnable copy of the program: the instruction
    stream, constant pool and metadata are shared (they are immutable
    after compilation), only the mutable register file is fresh.  O(the
    register count), no re-lowering or re-validation — cheap enough to
    call per job.  The clone and the original may run concurrently from
    different domains. *)

val run : program -> float array -> float
(** Evaluate an expression program against an environment laid out like
    the compile-time names.  The interpreter loop itself never
    allocates; only the returned float is boxed. *)

val exec : program -> env:float array -> out:float array -> unit
(** Run a program for its stores.  Allocation-free in steady state.
    [env] ([out]) must be at least the compile-time env (out) size;
    expression programs accept [out = [||]]. *)

(** The validated innards of a program, for engines that reinterpret the
    same instruction stream — currently the batched SoA interpreter
    ({!Vm_batch}).  The arrays are the live program, not copies: treat
    them as read-only. *)
type raw = {
  rw_code : int array;
  rw_consts : float array;
  rw_nregs : int;
  rw_result : int;  (** result register, or [-1] for statement programs *)
  rw_env_size : int;
  rw_out_size : int;
}

val raw : program -> raw
(** Every operand of [rw_code] has been checked by compile-time
    validation, so a reinterpreting engine may use unsafe array access
    with the same justification as {!exec}. *)

val length : program -> int
(** Instruction count. *)

val reg_count : program -> int

val result_reg : program -> int
(** Register holding the final value, or [-1] for statement programs. *)

val instructions : program -> Vm_code.instr array
(** Decoded form, for inspection and tests. *)

val disassemble : program -> string

val stats : program -> stats
