(** Algebraic simplification beyond the smart-constructor normal form.

    The smart constructors already flatten, sort, fold constants and collect
    like terms/powers.  This module adds a bottom-up rewriting pass with
    rules that are not applied eagerly: distribution of constants over sums,
    trigonometric Pythagoras ([sin^2 x + cos^2 x = 1]), collapsing
    [sqrt(x^2)] patterns, and branch pruning of conditionals with decidable
    conditions. *)

val simplify : Expr.t -> Expr.t
(** Idempotent, meaning-preserving rewrite to a (locally) smaller form. *)

val expand : Expr.t -> Expr.t
(** Distribute products over sums and expand small integer powers of sums.
    Useful before collecting terms; inverse-ish of factoring. *)
