exception Unbound of string

type env = (string, float) Hashtbl.t

let env_of_list l : env =
  let h = Hashtbl.create (List.length l) in
  List.iter (fun (k, v) -> Hashtbl.replace h k v) l;
  h

let rec eval env (e : Expr.t) =
  match e with
  | Const x -> x
  | Var v -> (
      match Hashtbl.find_opt env v with
      | Some x -> x
      | None -> raise (Unbound v))
  | Add xs -> List.fold_left (fun acc x -> acc +. eval env x) 0. xs
  | Mul xs -> List.fold_left (fun acc x -> acc *. eval env x) 1. xs
  | Pow (b, e') -> Expr.eval_pow (eval env b) (eval env e')
  | Call (f, args) -> Expr.eval_func f (List.map (eval env) args)
  | If (c, t, e') ->
      if Expr.eval_rel c.rel (eval env c.lhs) (eval env c.rhs) then eval env t
      else eval env e'

let eval_fn names e =
  let index v =
    let rec find i =
      if i >= Array.length names then raise (Unbound v)
      else if names.(i) = v then i
      else find (i + 1)
    in
    find 0
  in
  (* Compile the tree once into a closure over the value vector. *)
  let rec build (e : Expr.t) : float array -> float =
    match e with
    | Const x -> fun _ -> x
    | Var v ->
        let i = index v in
        fun ys -> ys.(i)
    | Add xs ->
        let fs = Array.of_list (List.map build xs) in
        fun ys ->
          let acc = ref 0. in
          Array.iter (fun f -> acc := !acc +. f ys) fs;
          !acc
    | Mul xs ->
        let fs = Array.of_list (List.map build xs) in
        fun ys ->
          let acc = ref 1. in
          Array.iter (fun f -> acc := !acc *. f ys) fs;
          !acc
    | Pow (b, ex) ->
        let fb = build b and fe = build ex in
        fun ys -> Expr.eval_pow (fb ys) (fe ys)
    | Call (f, args) -> (
        let fs = List.map build args in
        match fs with
        | [ f1 ] ->
            fun ys -> Expr.eval_func f [ f1 ys ]
        | [ f1; f2 ] -> fun ys -> Expr.eval_func f [ f1 ys; f2 ys ]
        | _ -> fun ys -> Expr.eval_func f (List.map (fun g -> g ys) fs))
    | If (c, t, e') ->
        let fl = build c.lhs and fr = build c.rhs in
        let ft = build t and fe = build e' in
        let rel = c.rel in
        fun ys ->
          if Expr.eval_rel rel (fl ys) (fr ys) then ft ys else fe ys
  in
  build e
