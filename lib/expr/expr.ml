type func =
  | Sin
  | Cos
  | Tan
  | Asin
  | Acos
  | Atan
  | Sinh
  | Cosh
  | Tanh
  | Exp
  | Log
  | Sqrt
  | Abs
  | Sign
  | Atan2
  | Min
  | Max
  | Hypot

type rel = Lt | Le | Gt | Ge

type t =
  | Const of float
  | Var of string
  | Add of t list
  | Mul of t list
  | Pow of t * t
  | Call of func * t list
  | If of cond * t * t

and cond = { lhs : t; rel : rel; rhs : t }

let rank = function
  | Const _ -> 0
  | Var _ -> 1
  | Pow _ -> 2
  | Mul _ -> 3
  | Add _ -> 4
  | Call _ -> 5
  | If _ -> 6

let rec compare a b =
  match (a, b) with
  | Const x, Const y -> Float.compare x y
  | Var x, Var y -> String.compare x y
  | Add xs, Add ys | Mul xs, Mul ys -> compare_list xs ys
  | Pow (x1, y1), Pow (x2, y2) ->
      let c = compare x1 x2 in
      if c <> 0 then c else compare y1 y2
  | Call (f, xs), Call (g, ys) ->
      let c = Stdlib.compare f g in
      if c <> 0 then c else compare_list xs ys
  | If (c1, t1, e1), If (c2, t2, e2) ->
      let c = compare_cond c1 c2 in
      if c <> 0 then c
      else
        let c = compare t1 t2 in
        if c <> 0 then c else compare e1 e2
  | _ -> Int.compare (rank a) (rank b)

and compare_cond c1 c2 =
  let c = compare c1.lhs c2.lhs in
  if c <> 0 then c
  else
    let c = Stdlib.compare c1.rel c2.rel in
    if c <> 0 then c else compare c1.rhs c2.rhs

and compare_list xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c <> 0 then c else compare_list xs' ys'

let equal a b = compare a b = 0

let rec hash e =
  match e with
  | Const x -> Hashtbl.hash x
  | Var s -> Hashtbl.hash s
  | Add xs -> hash_list 3 xs
  | Mul xs -> hash_list 5 xs
  | Pow (x, y) -> (7 * hash x) + (11 * hash y)
  | Call (f, xs) -> (13 * Hashtbl.hash f) + hash_list 17 xs
  | If (c, t, e') ->
      (19 * hash c.lhs)
      + (23 * Hashtbl.hash c.rel)
      + (29 * hash c.rhs) + (31 * hash t) + (37 * hash e')

and hash_list seed xs =
  List.fold_left (fun acc x -> (acc * 131) + hash x) seed xs

let const x = Const x
let int n = Const (float_of_int n)
let var s = Var s
let zero = Const 0.
let one = Const 1.
let two = Const 2.
let minus_one = Const (-1.)
let pi = Const (Float.pi)
let is_const = function Const _ -> true | _ -> false
let const_value = function Const x -> Some x | _ -> None

(* Split a product term into (numeric coefficient, remaining factors).  Used
   by [add] to collect like terms: 2*x and 3*x merge into 5*x. *)
let coeff_split = function
  | Const c -> (c, [])
  | Mul (Const c :: rest) -> (c, rest)
  | Mul fs -> (1., fs)
  | e -> (1., [ e ])

(* Split a factor into (base, numeric exponent).  Used by [mul] to collect
   powers: x * x^2 merges into x^3. *)
let power_split = function
  | Pow (b, Const n) -> (b, n)
  | e -> (e, 1.)

let eval_pow b n =
  if n = 2. then b *. b
  else if n = -1. then 1. /. b
  else if n = 1. then b
  else if n = 0. then 1.
  else Float.pow b n

let rec add terms =
  let flat =
    List.concat_map (function Add xs -> xs | e -> [ e ]) terms
  in
  (* Collect like terms keyed by their non-constant factor list. *)
  let table : (t list, float ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let konst = ref 0. in
  let record e =
    let c, fs = coeff_split e in
    if fs = [] then konst := !konst +. c
    else
      match Hashtbl.find_opt table fs with
      | Some r -> r := !r +. c
      | None ->
          Hashtbl.add table fs (ref c);
          order := fs :: !order
  in
  List.iter record flat;
  let rebuilt =
    List.rev !order
    |> List.filter_map (fun fs ->
           let c = !(Hashtbl.find table fs) in
           if c = 0. then None
           else if c = 1. then Some (mul_nocollect fs)
           else Some (mul_nocollect (Const c :: fs)))
  in
  let all = if !konst = 0. then rebuilt else Const !konst :: rebuilt in
  match List.sort compare all with
  | [] -> zero
  | [ e ] -> e
  | es -> Add es

(* Rebuild a product from factors already in collected form. *)
and mul_nocollect = function
  | [] -> one
  | [ e ] -> e
  | es -> Mul (List.sort compare es)

and mul factors =
  let flat =
    List.concat_map (function Mul xs -> xs | e -> [ e ]) factors
  in
  let table : (t, float ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let konst = ref 1. in
  let record e =
    match e with
    | Const c -> konst := !konst *. c
    | _ -> (
        let b, n = power_split e in
        match Hashtbl.find_opt table b with
        | Some r -> r := !r +. n
        | None ->
            Hashtbl.add table b (ref n);
            order := b :: !order)
  in
  List.iter record flat;
  if !konst = 0. then zero
  else
    let rebuilt =
      List.rev !order
      |> List.filter_map (fun b ->
             let n = !(Hashtbl.find table b) in
             if n = 0. then None
             else if n = 1. then Some b
             else Some (pow b (Const n)))
    in
    let all = if !konst = 1. then rebuilt else Const !konst :: rebuilt in
    match List.sort compare all with
    | [] -> one
    | [ e ] -> e
    | es -> Mul es

and pow base expo =
  match (base, expo) with
  | _, Const 0. -> one
  | _, Const 1. -> base
  | Const 1., _ -> one
  | Const b, Const n ->
      let r = eval_pow b n in
      if Float.is_finite r then Const r else Pow (base, expo)
  | Pow (b, Const m), Const n -> pow b (Const (m *. n))
  | _ -> Pow (base, expo)

let neg e = mul [ minus_one; e ]
let sub a b = add [ a; neg b ]
let div a b = mul [ a; pow b minus_one ]
let powi b n = pow b (int n)
let sqr e = powi e 2

let func_name = function
  | Sin -> "sin"
  | Cos -> "cos"
  | Tan -> "tan"
  | Asin -> "asin"
  | Acos -> "acos"
  | Atan -> "atan"
  | Sinh -> "sinh"
  | Cosh -> "cosh"
  | Tanh -> "tanh"
  | Exp -> "exp"
  | Log -> "log"
  | Sqrt -> "sqrt"
  | Abs -> "abs"
  | Sign -> "sign"
  | Atan2 -> "atan2"
  | Min -> "min"
  | Max -> "max"
  | Hypot -> "hypot"

let func_arity = function
  | Atan2 | Min | Max | Hypot -> 2
  | Sin | Cos | Tan | Asin | Acos | Atan | Sinh | Cosh | Tanh | Exp | Log
  | Sqrt | Abs | Sign ->
      1

let all_funcs =
  [
    Sin; Cos; Tan; Asin; Acos; Atan; Sinh; Cosh; Tanh; Exp; Log; Sqrt; Abs;
    Sign; Atan2; Min; Max; Hypot;
  ]

let func_of_name s = List.find_opt (fun f -> func_name f = s) all_funcs
let rel_name = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let eval_func f args =
  match (f, args) with
  | Sin, [ x ] -> Float.sin x
  | Cos, [ x ] -> Float.cos x
  | Tan, [ x ] -> Float.tan x
  | Asin, [ x ] -> Float.asin x
  | Acos, [ x ] -> Float.acos x
  | Atan, [ x ] -> Float.atan x
  | Sinh, [ x ] -> Float.sinh x
  | Cosh, [ x ] -> Float.cosh x
  | Tanh, [ x ] -> Float.tanh x
  | Exp, [ x ] -> Float.exp x
  | Log, [ x ] -> Float.log x
  | Sqrt, [ x ] -> Float.sqrt x
  | Abs, [ x ] -> Float.abs x
  | Sign, [ x ] -> if x > 0. then 1. else if x < 0. then -1. else 0.
  | Atan2, [ y; x ] -> Float.atan2 y x
  | Min, [ x; y ] -> Float.min x y
  | Max, [ x; y ] -> Float.max x y
  | Hypot, [ x; y ] -> Float.hypot x y
  | _ ->
      invalid_arg
        (Printf.sprintf "Expr.eval_func: %s applied to %d arguments"
           (func_name f) (List.length args))

let eval_rel r a b =
  match r with Lt -> a < b | Le -> a <= b | Gt -> a > b | Ge -> a >= b

let call f args =
  if List.length args <> func_arity f then
    invalid_arg
      (Printf.sprintf "Expr.call: %s expects %d arguments" (func_name f)
         (func_arity f));
  if List.for_all is_const args then
    let r =
      eval_func f
        (List.map (function Const c -> c | _ -> assert false) args)
    in
    if Float.is_finite r then Const r else Call (f, args)
  else Call (f, args)

let sin x = call Sin [ x ]
let cos x = call Cos [ x ]
let tan x = call Tan [ x ]
let exp x = call Exp [ x ]
let log x = call Log [ x ]
let sqrt x = call Sqrt [ x ]
let abs x = call Abs [ x ]
let sign x = call Sign [ x ]
let atan2 y x = call Atan2 [ y; x ]
let hypot x y = call Hypot [ x; y ]
let min_e x y = call Min [ x; y ]
let max_e x y = call Max [ x; y ]
let cond lhs rel rhs = { lhs; rel; rhs }

let if_ c t e =
  match (c.lhs, c.rhs) with
  | Const a, Const b -> if eval_rel c.rel a b then t else e
  | _ -> if equal t e then t else If (c, t, e)

let ( + ) = fun a b -> add [ a; b ]
let ( - ) = sub
let ( * ) = fun a b -> mul [ a; b ]
let ( / ) = div
let ( ** ) = powi
let ( ~- ) = neg

let children = function
  | Const _ | Var _ -> []
  | Add xs | Mul xs | Call (_, xs) -> xs
  | Pow (a, b) -> [ a; b ]
  | If (c, t, e) -> [ c.lhs; c.rhs; t; e ]

let map_children f = function
  | (Const _ | Var _) as e -> e
  | Add xs -> add (List.map f xs)
  | Mul xs -> mul (List.map f xs)
  | Pow (a, b) -> pow (f a) (f b)
  | Call (g, xs) -> call g (List.map f xs)
  | If (c, t, e) ->
      if_ { lhs = f c.lhs; rel = c.rel; rhs = f c.rhs } (f t) (f e)

(* Order-preserving substitution: rebuilds with the raw constructors so
   n-ary operand lists are not re-sorted (the smart constructors would),
   keeping left-to-right float folds associated exactly as the input. *)
let rec map_exact f e =
  match f e with Some e' -> e' | None -> map_exact_children f e

and map_exact_children f e =
  match e with
  | Const _ | Var _ -> e
  | Add xs -> Add (List.map (map_exact f) xs)
  | Mul xs -> Mul (List.map (map_exact f) xs)
  | Pow (a, b) -> Pow (map_exact f a, map_exact f b)
  | Call (g, xs) -> Call (g, List.map (map_exact f) xs)
  | If (c, t, e') ->
      If
        ( { c with lhs = map_exact f c.lhs; rhs = map_exact f c.rhs },
          map_exact f t,
          map_exact f e' )

let rec fold f acc e = List.fold_left (fold f) (f acc e) (children e)

let vars e =
  let module S = Set.Make (String) in
  fold (fun s e -> match e with Var v -> S.add v s | _ -> s) S.empty e
  |> S.elements

let mem_var v e =
  let exception Found in
  try
    fold (fun () e -> match e with Var w when w = v -> raise Found | _ -> ()) () e;
    false
  with Found -> true

let size e = fold (fun n _ -> Stdlib.( + ) n 1) 0 e

let rec depth e =
  match children e with
  | [] -> 1
  | cs -> Stdlib.( + ) 1 (List.fold_left (fun m c -> Stdlib.max m (depth c)) 0 cs)

let pp_float ppf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Fmt.pf ppf "%d" (int_of_float x)
  else Fmt.pf ppf "%.12g" x

(* Precedence levels: 0 sum, 1 product, 2 unary minus, 3 power, 4 atom. *)
let rec pp_prec prec ppf e =
  let paren p body =
    if Stdlib.( > ) prec p then Fmt.pf ppf "(%t)" body else body ppf
  in
  match e with
  | Const x when x < 0. -> paren 1 (fun ppf -> Fmt.pf ppf "%a" pp_float x)
  | Const x -> pp_float ppf x
  | Var v -> Fmt.string ppf v
  | Add terms ->
      paren 0 (fun ppf ->
          List.iteri
            (fun i t ->
              match coeff_split t with
              | c, fs when c < 0. && Stdlib.( > ) i 0 ->
                  Fmt.pf ppf " - %a" (pp_prec 1)
                    (if c = -1. && fs <> [] then mul_nocollect fs
                     else mul_nocollect (Const (Float.neg c) :: fs))
              | _ ->
                  if Stdlib.( > ) i 0 then Fmt.pf ppf " + ";
                  pp_prec 1 ppf t)
            terms)
  | Mul (Const (-1.) :: rest) ->
      paren 2 (fun ppf -> Fmt.pf ppf "-%a" (pp_prec 2) (mul_nocollect rest))
  | Mul factors ->
      paren 1 (fun ppf ->
          let num, den =
            List.partition
              (function Pow (_, Const n) when n < 0. -> false | _ -> true)
              factors
          in
          let pp_prod ppf = function
            | [] -> Fmt.string ppf "1"
            | fs ->
                List.iteri
                  (fun i f ->
                    if Stdlib.( > ) i 0 then Fmt.pf ppf "*";
                    pp_prec 3 ppf f)
                  fs
          in
          if den = [] then pp_prod ppf num
          else
            let inverted =
              List.map
                (function
                  | Pow (b, Const n) -> pow b (Const (Float.neg n))
                  | _ -> assert false)
                den
            in
            Fmt.pf ppf "%a/%a" pp_prod num (pp_prec 3)
              (match inverted with [ d ] -> d | ds -> mul_nocollect ds))
  | Pow (b, Const n) when n < 0. ->
      paren 1 (fun ppf ->
          Fmt.pf ppf "1/%a" (pp_prec 3) (pow b (Const (Float.neg n))))
  | Pow (b, e') ->
      paren 3 (fun ppf -> Fmt.pf ppf "%a^%a" (pp_prec 4) b (pp_prec 4) e')
  | Call (f, args) ->
      Fmt.pf ppf "%s(%a)" (func_name f)
        (Fmt.list ~sep:(Fmt.any ", ") (pp_prec 0))
        args
  | If (c, t, e') ->
      paren 0 (fun ppf ->
          Fmt.pf ppf "if %a %s %a then %a else %a" (pp_prec 0) c.lhs
            (rel_name c.rel) (pp_prec 0) c.rhs (pp_prec 0) t (pp_prec 0) e')

let pp = pp_prec 0
