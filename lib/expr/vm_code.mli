(** Instruction-set definition shared by the register-VM compiler
    ({!Vm}) and the flat-code optimiser ({!Peephole}).

    Programs are flat [int array]s with {!stride} words per instruction,
    [op; dst; a; b; c], plus a separate float constant pool.  Operand
    meaning depends on the opcode; see the opcode comments in the
    implementation.  Jump targets are absolute word offsets into the code
    array. *)

val stride : int

val op_ldc : int
val op_ldv : int
val op_ldo : int
val op_mov : int
val op_add : int
val op_sub : int
val op_mul : int
val op_neg : int
val op_sqr : int
val op_recip : int
val op_pow : int
val op_fma : int
val op_addk : int
val op_mulk : int
val op_call1 : int
val op_call2 : int
val op_vmul : int
val op_vmacc : int
val op_jmp : int
val op_jnot : int
val op_ste : int
val op_sto : int
val n_opcodes : int

val prim1_of_func : Expr.func -> int
(** @raise Invalid_argument on a 2-argument function. *)

val prim2_of_func : Expr.func -> int
val func_of_prim1 : int -> Expr.func
val func_of_prim2 : int -> Expr.func
val prim1_count : int
val prim2_count : int
val rel_id : Expr.rel -> int
val rel_of_id : int -> Expr.rel

(** Decoded instruction, for disassembly and tests only.  Register
    operands come first; [Ste]/[Sto] are [(slot, src_reg)]. *)
type instr =
  | Ldc of int * float
  | Ldv of int * int
  | Ldo of int * int
  | Mov of int * int
  | Add of int * int * int
  | Sub of int * int * int
  | Mul of int * int * int
  | Neg of int * int
  | Sqr of int * int
  | Recip of int * int
  | Powr of int * int * int
  | Fma of int * int * int * int
  | Addk of int * int * float
  | Mulk of int * int * float
  | Call1 of int * Expr.func * int
  | Call2 of int * Expr.func * int * int
  | Vmul of int * int * int
  | Vmacc of int * int * int * int
  | Jmp of int
  | Jnot of Expr.rel * int * int * int
  | Ste of int * int
  | Sto of int * int

val decode_at : int array -> float array -> int -> instr
val decode : int array -> float array -> instr array
val pp_instr : Format.formatter -> instr -> unit

val flop_weight : int array -> int -> float
(** Static flop-unit cost of the instruction at a word offset, on the
    {!Cost.default} scale. *)

val writes_reg : int -> bool
val is_fused : int -> bool

(** Operand-field interpretation for generic traversal. *)
type field_kind =
  | K_none
  | K_reg
  | K_env
  | K_out
  | K_const
  | K_prim1
  | K_prim2
  | K_target
  | K_rel

val field_kinds : int -> field_kind * field_kind * field_kind * field_kind
(** [(dst, a, b, c)] kinds for an opcode.  Note [Ste]'s env slot and
    [Sto]'s out slot are {e written}, not read; every other [K_env]/[K_out]
    field is a read. *)
