(* Batched SoA interpreter over the register VM's instruction stream.

   A batch instance holds one [float array] of length [width] per
   virtual register (structure of arrays, batch-major), so one
   instruction decode drives the whole batch: the per-op dispatch cost
   of the scalar VM is amortised over [width] lanes and the inner loops
   are tight float-array kernels.

   Per lane, the arithmetic is copied verbatim from {!Vm.loop} —
   including [Expr.eval_pow], the inlined [Float.min]/[Float.max]
   semantics and the two-rounding [fma] — so lane [j] of a batch run is
   Int64-bitwise identical to a scalar run of the same program over
   lane [j]'s environment.  Batch width 1 therefore reproduces the
   scalar VM exactly.

   Control flow ([If] lowering: forward-only [jnot]/[jmp] with a join
   register, see {!Vm}) is linearised SIMT-style: the program counter
   advances straight through the code, and a per-lane wake-up counter
   [sleep] masks lanes out of the instructions of the branch they are
   not taking.  At a [jnot] whose condition fails on a lane, the lane
   sleeps until the jump target; at a [jmp], every awake lane sleeps
   until the target.  Because jumps are forward-only and structured,
   every lane executes exactly the instruction subsequence the scalar
   interpreter would, in the same order.  Programs without jumps take a
   separate unmasked fast path, and the hybrid [drive] loop brings that
   fast path to branchy programs whenever the whole batch agrees.

   [create] conditions the instruction stream for batched execution
   (virtual-register compaction, load/consumer fusion — see the passes
   below); both rewrites preserve per-lane arithmetic bitwise.

   All mutable state — register rows, the sleep array, env/out columns —
   is indexed by lane, so running disjoint lane ranges of the same
   instance from different domains is safe (the parallel ensemble
   driver relies on this). *)

type t = {
  code : int array;
  consts : float array;
  width : int;
  nregs : int;
  result : int;
  env_size : int;
  out_size : int;
  regs : float array array; (* nregs rows of length width *)
  sleep : int array; (* per-lane wake-up pc; used only when has_jumps *)
  has_jumps : bool;
  njump : int array; (* per op: code offset of the next jmp/jnot at or
                        after it (code length if none); drives the
                        hybrid masked/unmasked execution *)
  mutable seen_env : float array array;
      (* last env/out validated by [exec]: callers like Batch_backend
         pass the same arrays on every call, so the O(env_size) column
         checks are skipped when both match physically *)
  mutable seen_out : float array array;
}

let () =
  (* Same literal-opcode contract as the scalar interpreter. *)
  assert (Vm_code.stride = 5);
  assert (Vm_code.op_jmp = 18 && Vm_code.op_jnot = 19)

(* ---- register compaction ----

   The compiler emits (almost) write-once virtual registers, so a
   program's register count grows with its length — hundreds of rows
   for the big generated tasks.  The scalar VM does not care (a row is
   one float), but here every row is [width] floats and a few hundred
   rows put the register file far outside the cache, which is exactly
   where a batch interpreter lives or dies.

   Renaming virtual registers onto a small physical file by occurrence
   intervals is semantics-preserving, masked control flow included:
   lanes advance through the code in pc order and each lane only
   touches its own column, so per column the memory order follows the
   pc.  A physical register freed at a virtual register's last textual
   occurrence is therefore never read as the old value again before
   its next definition (all later occurrences belong to the new
   virtual register).  Reads-before-write within one instruction are
   safe to share — every kernel reads its operand lanes before writing
   the destination lane. *)

let compact code nregs result =
  let nops = Array.length code / 5 in
  let first = Array.make (max nregs 1) max_int in
  let last = Array.make (max nregs 1) (-1) in
  let touch r i =
    if i < first.(r) then first.(r) <- i;
    if i > last.(r) then last.(r) <- i
  in
  for i = 0 to nops - 1 do
    let op = code.(i * 5)
    and d = code.((i * 5) + 1)
    and a = code.((i * 5) + 2)
    and b = code.((i * 5) + 3)
    and c = code.((i * 5) + 4) in
    match op with
    | 0 | 1 | 2 | 16 (* ldc/ldv/ldo/vmul: only [d] is a register *) ->
        touch d i
    | 3 | 7 | 8 | 9 | 12 | 13 | 14 | 17 (* unary on [a] *) ->
        touch d i;
        touch a i
    | 4 | 5 | 6 | 10 | 15 (* binary on [a],[b] *) ->
        touch d i;
        touch a i;
        touch b i
    | 11 (* fma *) ->
        touch d i;
        touch a i;
        touch b i;
        touch c i
    | 18 (* jmp: no registers *) -> ()
    | 19 (* jnot: [d] is the relation id *) ->
        touch a i;
        touch b i
    | _ (* ste/sto: [c] is an env/out slot *) -> touch a i
  done;
  (* The result register is read after the program ends. *)
  if result >= 0 then last.(result) <- nops;
  let starts = Array.make (nops + 2) [] in
  let ends = Array.make (nops + 2) [] in
  for r = 0 to nregs - 1 do
    if last.(r) >= 0 then begin
      let f = if first.(r) = max_int then last.(r) else first.(r) in
      starts.(f) <- r :: starts.(f);
      ends.(min last.(r) (nops + 1)) <- r :: ends.(min last.(r) (nops + 1))
    end
  done;
  let phys = Array.make (max nregs 1) (-1) in
  let free = ref [] in
  let next = ref 0 in
  for i = 0 to nops + 1 do
    (* Registers dying at op [i] free up before its definition: the
       kernels read all operands of a lane before writing it. *)
    List.iter
      (fun r -> if first.(r) < i then free := phys.(r) :: !free)
      ends.(i);
    List.iter
      (fun r ->
        match !free with
        | p :: tl ->
            free := tl;
            phys.(r) <- p
        | [] ->
            phys.(r) <- !next;
            incr next)
      starts.(i);
    (* A dead store (defined at [i], never read) frees immediately. *)
    List.iter
      (fun r -> if first.(r) = i then free := phys.(r) :: !free)
      ends.(i)
  done;
  let code' = Array.copy code in
  for i = 0 to nops - 1 do
    let op = code'.(i * 5) in
    let remap k = code'.((i * 5) + k) <- phys.(code'.((i * 5) + k)) in
    match op with
    | 0 | 1 | 2 | 16 -> remap 1
    | 3 | 7 | 8 | 9 | 12 | 13 | 14 | 17 ->
        remap 1;
        remap 2
    | 4 | 5 | 6 | 10 | 15 ->
        remap 1;
        remap 2;
        remap 3
    | 11 ->
        remap 1;
        remap 2;
        remap 3;
        remap 4
    | 18 -> ()
    | 19 ->
        remap 2;
        remap 3
    | _ -> remap 2
  done;
  (code', !next, (if result >= 0 then phys.(result) else result))

(* ---- load/consumer fusion ----

   Generated code is full of [ldv r, slot] feeding exactly one
   consumer: per lane that is a row write plus a row read for a value
   that already sits in an env column.  Batch-only opcodes (22..29,
   never produced by {!Vm.compile}) let the consumer read the env
   column in place, and the dead [ldv] is deleted outright:

     22 emulk   d <- env.(a) *. consts.(c)
     23 eaddk   d <- env.(a) +. consts.(c)
     24 eneg    d <- -. env.(a)
     25 esqr    d <- env.(a) * env.(a)
     26 erecip  d <- 1. /. env.(a)
     27 ecall1  d <- prim_c (env.(a))
     28 emula   d <- env.(a) *. regs.(b)
     29 emulb   d <- regs.(a) *. env.(b)

   Fusion is restricted to a def/use pair inside one jump-free segment
   (no jump instruction or jump target strictly between them) — the
   awake-lane mask cannot change there, so the consumer reads env for
   exactly the lanes the [ldv] would have served — and to env slots not
   stored to ([ste]) in between.  [emula]/[emulb] keep the operand
   order of the original [mul] so NaN payload propagation stays
   bitwise.  Runs after register compaction (whose role table only
   knows scalar opcodes); jump targets are remapped over the deleted
   instructions. *)

let fuse code =
  let nops = Array.length code / 5 in
  let boundary = Array.make (nops + 1) false in
  for i = 0 to nops - 1 do
    let op = code.(i * 5) in
    if op = 18 || op = 19 then begin
      boundary.(i) <- true;
      let t = code.((i * 5) + 4) / 5 in
      boundary.(min t nops) <- true
    end
  done;
  let dead = Array.make (max nops 1) false in
  let changed = ref false in
  for i = 0 to nops - 1 do
    if code.(i * 5) = 1 (* ldv *) then begin
      let r = code.((i * 5) + 1) and e = code.((i * 5) + 2) in
      let j = ref (i + 1) in
      let halt = ref false and blocked = ref false in
      let use = ref (-1) and nuses = ref 0 in
      while (not !halt) && !j < nops do
        if boundary.(!j) then halt := true
        else begin
          let op = code.(!j * 5)
          and d = code.((!j * 5) + 1)
          and a = code.((!j * 5) + 2)
          and b = code.((!j * 5) + 3)
          and c = code.((!j * 5) + 4) in
          let reads =
            match op with
            | 3 | 7 | 8 | 9 | 12 | 13 | 14 -> if a = r then 1 else 0
            | 4 | 5 | 6 | 10 | 15 ->
                (if a = r then 1 else 0) + if b = r then 1 else 0
            | 11 ->
                (if a = r then 1 else 0)
                + (if b = r then 1 else 0)
                + if c = r then 1 else 0
            | 17 | 20 | 21 -> if a = r then 1 else 0
            | 28 -> if b = r then 1 else 0
            | 29 -> if a = r then 1 else 0
            | _ -> 0
          in
          if reads > 0 then begin
            nuses := !nuses + reads;
            use := !j
          end;
          if op = 20 && c = e then blocked := true;
          let defines =
            match op with
            | 18 | 19 | 20 | 21 -> false
            | _ -> d = r
          in
          if defines then halt := true else incr j
        end
      done;
      if !nuses = 1 && not !blocked then begin
        let u = !use in
        let op = code.(u * 5) and a = code.((u * 5) + 2) in
        let b = code.((u * 5) + 3) in
        let rewrite op' k =
          code.(u * 5) <- op';
          code.((u * 5) + k) <- e;
          dead.(i) <- true;
          changed := true
        in
        match op with
        | 13 -> rewrite 22 2
        | 12 -> rewrite 23 2
        | 7 -> rewrite 24 2
        | 8 -> rewrite 25 2
        | 9 -> rewrite 26 2
        | 14 -> rewrite 27 2
        | 6 when a = r -> rewrite 28 2
        | 6 when b = r -> rewrite 29 3
        | _ -> ()
      end
    end
  done;
  if not !changed then code
  else begin
    let newpos = Array.make (nops + 1) 0 in
    let k = ref 0 in
    for i = 0 to nops - 1 do
      newpos.(i) <- !k;
      if not dead.(i) then incr k
    done;
    newpos.(nops) <- !k;
    let code' = Array.make (!k * 5) 0 in
    for i = 0 to nops - 1 do
      if not dead.(i) then begin
        let p = newpos.(i) * 5 in
        Array.blit code (i * 5) code' p 5;
        let op = code'.(p) in
        if op = 18 || op = 19 then
          code'.(p + 4) <- newpos.(min (code'.(p + 4) / 5) nops) * 5
      end
    done;
    code'
  end

let create (p : Vm.program) ~width =
  if width < 1 then invalid_arg "Vm_batch.create: width < 1";
  let r = Vm.raw p in
  let has_jumps =
    let found = ref false in
    let n = Array.length r.rw_code in
    let pos = ref 0 in
    while !pos < n do
      let op = r.rw_code.(!pos) in
      if op = Vm_code.op_jmp || op = Vm_code.op_jnot then found := true;
      pos := !pos + Vm_code.stride
    done;
    !found
  in
  let code, nregs, result = compact r.rw_code r.rw_nregs r.rw_result in
  let code = fuse code in
  let njump =
    let nops = Array.length code / 5 in
    let nj = Array.make (max nops 1) (Array.length code) in
    let nearest = ref (Array.length code) in
    for i = nops - 1 downto 0 do
      let op = code.(i * 5) in
      if op = 18 || op = 19 then nearest := i * 5;
      nj.(i) <- !nearest
    done;
    nj
  in
  {
    code;
    consts = r.rw_consts;
    width;
    nregs = max nregs 1;
    result;
    env_size = r.rw_env_size;
    out_size = r.rw_out_size;
    regs = Array.init (max nregs 1) (fun _ -> Array.make width 0.);
    sleep = Array.make width 0;
    has_jumps;
    njump;
    seen_env = [||];
    seen_out = [||];
  }

(* The conditioned code, constant pool and njump table are immutable
   after [create]; the register rows, sleep counters and validation
   memo are the only mutable state.  Cloning those gives an independent
   instance without re-running compaction/fusion. *)
let clone_scratch t =
  {
    t with
    regs = Array.init (Array.length t.regs) (fun _ -> Array.make t.width 0.);
    sleep = Array.make t.width 0;
    seen_env = [||];
    seen_out = [||];
  }

let width t = t.width
let has_jumps t = t.has_jumps

(* Float.min/Float.max semantics, inlined like the scalar VM (the
   stdlib functions are not [@@noalloc] and would box at the call). *)
let[@inline] fmin x y =
  if x <> x then x
  else if y <> y then y
  else if x < y then x
  else if y < x then y
  else if x = 0. && 1. /. x < 0. then x
  else y

let[@inline] fmax x y =
  if x <> x then x
  else if y <> y then y
  else if x < y then y
  else if y < x then x
  else if x = 0. && 1. /. x < 0. then y
  else x

(* ---- straight-line fast path (no jumps in the program) ----

   Toplevel recursive functions over immediate parameters, like the
   scalar [Vm.loop]: a local recursive function would capture the
   arrays in a closure and allocate on every call. *)

let rec sloop code consts regs env out stop pc lo hi =
  if pc < stop then begin
    let op = Array.unsafe_get code pc in
    let d = Array.unsafe_get code (pc + 1) in
    let a = Array.unsafe_get code (pc + 2) in
    let b = Array.unsafe_get code (pc + 3) in
    let c = Array.unsafe_get code (pc + 4) in
    (match op with
    | 0 (* ldc *) ->
        let dst = Array.unsafe_get regs d in
        let k = Array.unsafe_get consts c in
        for j = lo to hi do
          Array.unsafe_set dst j k
        done
    | 1 (* ldv *) ->
        let dst = Array.unsafe_get regs d in
        let src = Array.unsafe_get env a in
        for j = lo to hi do
          Array.unsafe_set dst j (Array.unsafe_get src j)
        done
    | 2 (* ldo *) ->
        let dst = Array.unsafe_get regs d in
        let src = Array.unsafe_get out a in
        for j = lo to hi do
          Array.unsafe_set dst j (Array.unsafe_get src j)
        done
    | 3 (* mov *) ->
        let dst = Array.unsafe_get regs d in
        let src = Array.unsafe_get regs a in
        for j = lo to hi do
          Array.unsafe_set dst j (Array.unsafe_get src j)
        done
    | 4 (* add *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let xb = Array.unsafe_get regs b in
        for j = lo to hi do
          Array.unsafe_set dst j
            (Array.unsafe_get xa j +. Array.unsafe_get xb j)
        done
    | 5 (* sub *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let xb = Array.unsafe_get regs b in
        for j = lo to hi do
          Array.unsafe_set dst j
            (Array.unsafe_get xa j -. Array.unsafe_get xb j)
        done
    | 6 (* mul *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let xb = Array.unsafe_get regs b in
        for j = lo to hi do
          Array.unsafe_set dst j
            (Array.unsafe_get xa j *. Array.unsafe_get xb j)
        done
    | 7 (* neg *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        for j = lo to hi do
          Array.unsafe_set dst j (-.Array.unsafe_get xa j)
        done
    | 8 (* sqr *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        for j = lo to hi do
          let x = Array.unsafe_get xa j in
          Array.unsafe_set dst j (x *. x)
        done
    | 9 (* recip *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        for j = lo to hi do
          Array.unsafe_set dst j (1. /. Array.unsafe_get xa j)
        done
    | 10 (* pow *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let xb = Array.unsafe_get regs b in
        for j = lo to hi do
          Array.unsafe_set dst j
            (Expr.eval_pow (Array.unsafe_get xa j) (Array.unsafe_get xb j))
        done
    | 11 (* fma *) ->
        (* Two rounded operations, matching Eval.eval — not a hardware
           fused multiply-add. *)
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let xb = Array.unsafe_get regs b in
        let xc = Array.unsafe_get regs c in
        for j = lo to hi do
          Array.unsafe_set dst j
            ((Array.unsafe_get xa j *. Array.unsafe_get xb j)
            +. Array.unsafe_get xc j)
        done
    | 12 (* addk *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let k = Array.unsafe_get consts c in
        for j = lo to hi do
          Array.unsafe_set dst j (Array.unsafe_get xa j +. k)
        done
    | 13 (* mulk *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let k = Array.unsafe_get consts c in
        for j = lo to hi do
          Array.unsafe_set dst j (Array.unsafe_get xa j *. k)
        done
    | 14 (* call1 *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        (match c with
        | 0 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.sin (Array.unsafe_get xa j))
            done
        | 1 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.cos (Array.unsafe_get xa j))
            done
        | 2 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.tan (Array.unsafe_get xa j))
            done
        | 3 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.asin (Array.unsafe_get xa j))
            done
        | 4 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.acos (Array.unsafe_get xa j))
            done
        | 5 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.atan (Array.unsafe_get xa j))
            done
        | 6 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.sinh (Array.unsafe_get xa j))
            done
        | 7 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.cosh (Array.unsafe_get xa j))
            done
        | 8 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.tanh (Array.unsafe_get xa j))
            done
        | 9 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.exp (Array.unsafe_get xa j))
            done
        | 10 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.log (Array.unsafe_get xa j))
            done
        | 11 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.sqrt (Array.unsafe_get xa j))
            done
        | 12 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.abs (Array.unsafe_get xa j))
            done
        | _ (* 13: sign *) ->
            for j = lo to hi do
              let x = Array.unsafe_get xa j in
              Array.unsafe_set dst j
                (if x > 0. then 1. else if x < 0. then -1. else 0.)
            done)
    | 15 (* call2 *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let xb = Array.unsafe_get regs b in
        (match c with
        | 0 ->
            for j = lo to hi do
              Array.unsafe_set dst j
                (Float.atan2 (Array.unsafe_get xa j) (Array.unsafe_get xb j))
            done
        | 1 ->
            for j = lo to hi do
              Array.unsafe_set dst j
                (fmin (Array.unsafe_get xa j) (Array.unsafe_get xb j))
            done
        | 2 ->
            for j = lo to hi do
              Array.unsafe_set dst j
                (fmax (Array.unsafe_get xa j) (Array.unsafe_get xb j))
            done
        | _ (* 3: hypot *) ->
            for j = lo to hi do
              Array.unsafe_set dst j
                (Float.hypot (Array.unsafe_get xa j) (Array.unsafe_get xb j))
            done)
    | 16 (* vmul *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get env a in
        let xb = Array.unsafe_get env b in
        for j = lo to hi do
          Array.unsafe_set dst j
            (Array.unsafe_get xa j *. Array.unsafe_get xb j)
        done
    | 17 (* vmacc *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let xb = Array.unsafe_get env b in
        let xc = Array.unsafe_get env c in
        for j = lo to hi do
          Array.unsafe_set dst j
            (Array.unsafe_get xa j
            +. (Array.unsafe_get xb j *. Array.unsafe_get xc j))
        done
    | 20 (* ste *) ->
        let dst = Array.unsafe_get env c in
        let src = Array.unsafe_get regs a in
        for j = lo to hi do
          Array.unsafe_set dst j (Array.unsafe_get src j)
        done
    | 21 (* sto *) ->
        let dst = Array.unsafe_get out c in
        let src = Array.unsafe_get regs a in
        for j = lo to hi do
          Array.unsafe_set dst j (Array.unsafe_get src j)
        done
    | 22 (* emulk *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get env a in
        let k = Array.unsafe_get consts c in
        for j = lo to hi do
          Array.unsafe_set dst j (Array.unsafe_get xa j *. k)
        done
    | 23 (* eaddk *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get env a in
        let k = Array.unsafe_get consts c in
        for j = lo to hi do
          Array.unsafe_set dst j (Array.unsafe_get xa j +. k)
        done
    | 24 (* eneg *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get env a in
        for j = lo to hi do
          Array.unsafe_set dst j (-.Array.unsafe_get xa j)
        done
    | 25 (* esqr *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get env a in
        for j = lo to hi do
          let x = Array.unsafe_get xa j in
          Array.unsafe_set dst j (x *. x)
        done
    | 26 (* erecip *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get env a in
        for j = lo to hi do
          Array.unsafe_set dst j (1. /. Array.unsafe_get xa j)
        done
    | 27 (* ecall1 *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get env a in
        (match c with
        | 0 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.sin (Array.unsafe_get xa j))
            done
        | 1 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.cos (Array.unsafe_get xa j))
            done
        | 2 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.tan (Array.unsafe_get xa j))
            done
        | 3 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.asin (Array.unsafe_get xa j))
            done
        | 4 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.acos (Array.unsafe_get xa j))
            done
        | 5 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.atan (Array.unsafe_get xa j))
            done
        | 6 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.sinh (Array.unsafe_get xa j))
            done
        | 7 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.cosh (Array.unsafe_get xa j))
            done
        | 8 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.tanh (Array.unsafe_get xa j))
            done
        | 9 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.exp (Array.unsafe_get xa j))
            done
        | 10 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.log (Array.unsafe_get xa j))
            done
        | 11 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.sqrt (Array.unsafe_get xa j))
            done
        | 12 ->
            for j = lo to hi do
              Array.unsafe_set dst j (Float.abs (Array.unsafe_get xa j))
            done
        | _ (* 13: sign *) ->
            for j = lo to hi do
              let x = Array.unsafe_get xa j in
              Array.unsafe_set dst j
                (if x > 0. then 1. else if x < 0. then -1. else 0.)
            done)
    | 28 (* emula *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get env a in
        let xb = Array.unsafe_get regs b in
        for j = lo to hi do
          Array.unsafe_set dst j
            (Array.unsafe_get xa j *. Array.unsafe_get xb j)
        done
    | _ (* 29: emulb *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let xb = Array.unsafe_get env b in
        for j = lo to hi do
          Array.unsafe_set dst j
            (Array.unsafe_get xa j *. Array.unsafe_get xb j)
        done);
    sloop code consts regs env out stop (pc + 5) lo hi
  end

(* ---- masked path (programs with jumps) ----

   Every instruction is guarded per lane: lane [j] participates iff
   [sleep.(j) <= pc].  [jnot] puts condition-failing lanes to sleep
   until the else-branch target; [jmp] puts the then-branch's awake
   lanes to sleep until the join.  Targets are strictly forward, so a
   sleeping lane always wakes at its branch's continuation. *)

let rec mloop code consts regs env out sleep stop pc lo hi =
  if pc < stop then begin
    let op = Array.unsafe_get code pc in
    let d = Array.unsafe_get code (pc + 1) in
    let a = Array.unsafe_get code (pc + 2) in
    let b = Array.unsafe_get code (pc + 3) in
    let c = Array.unsafe_get code (pc + 4) in
    (match op with
    | 0 (* ldc *) ->
        let dst = Array.unsafe_get regs d in
        let k = Array.unsafe_get consts c in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then Array.unsafe_set dst j k
        done
    | 1 (* ldv *) ->
        let dst = Array.unsafe_get regs d in
        let src = Array.unsafe_get env a in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j (Array.unsafe_get src j)
        done
    | 2 (* ldo *) ->
        let dst = Array.unsafe_get regs d in
        let src = Array.unsafe_get out a in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j (Array.unsafe_get src j)
        done
    | 3 (* mov *) ->
        let dst = Array.unsafe_get regs d in
        let src = Array.unsafe_get regs a in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j (Array.unsafe_get src j)
        done
    | 4 (* add *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let xb = Array.unsafe_get regs b in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j
              (Array.unsafe_get xa j +. Array.unsafe_get xb j)
        done
    | 5 (* sub *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let xb = Array.unsafe_get regs b in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j
              (Array.unsafe_get xa j -. Array.unsafe_get xb j)
        done
    | 6 (* mul *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let xb = Array.unsafe_get regs b in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j
              (Array.unsafe_get xa j *. Array.unsafe_get xb j)
        done
    | 7 (* neg *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j (-.Array.unsafe_get xa j)
        done
    | 8 (* sqr *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then begin
            let x = Array.unsafe_get xa j in
            Array.unsafe_set dst j (x *. x)
          end
        done
    | 9 (* recip *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j (1. /. Array.unsafe_get xa j)
        done
    | 10 (* pow *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let xb = Array.unsafe_get regs b in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j
              (Expr.eval_pow (Array.unsafe_get xa j) (Array.unsafe_get xb j))
        done
    | 11 (* fma *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let xb = Array.unsafe_get regs b in
        let xc = Array.unsafe_get regs c in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j
              ((Array.unsafe_get xa j *. Array.unsafe_get xb j)
              +. Array.unsafe_get xc j)
        done
    | 12 (* addk *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let k = Array.unsafe_get consts c in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j (Array.unsafe_get xa j +. k)
        done
    | 13 (* mulk *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let k = Array.unsafe_get consts c in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j (Array.unsafe_get xa j *. k)
        done
    | 14 (* call1 *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        (match c with
        | 0 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.sin (Array.unsafe_get xa j))
            done
        | 1 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.cos (Array.unsafe_get xa j))
            done
        | 2 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.tan (Array.unsafe_get xa j))
            done
        | 3 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.asin (Array.unsafe_get xa j))
            done
        | 4 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.acos (Array.unsafe_get xa j))
            done
        | 5 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.atan (Array.unsafe_get xa j))
            done
        | 6 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.sinh (Array.unsafe_get xa j))
            done
        | 7 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.cosh (Array.unsafe_get xa j))
            done
        | 8 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.tanh (Array.unsafe_get xa j))
            done
        | 9 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.exp (Array.unsafe_get xa j))
            done
        | 10 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.log (Array.unsafe_get xa j))
            done
        | 11 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.sqrt (Array.unsafe_get xa j))
            done
        | 12 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.abs (Array.unsafe_get xa j))
            done
        | _ (* 13: sign *) ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then begin
                let x = Array.unsafe_get xa j in
                Array.unsafe_set dst j
                  (if x > 0. then 1. else if x < 0. then -1. else 0.)
              end
            done)
    | 15 (* call2 *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let xb = Array.unsafe_get regs b in
        (match c with
        | 0 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j
                  (Float.atan2 (Array.unsafe_get xa j)
                     (Array.unsafe_get xb j))
            done
        | 1 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j
                  (fmin (Array.unsafe_get xa j) (Array.unsafe_get xb j))
            done
        | 2 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j
                  (fmax (Array.unsafe_get xa j) (Array.unsafe_get xb j))
            done
        | _ (* 3: hypot *) ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j
                  (Float.hypot (Array.unsafe_get xa j)
                     (Array.unsafe_get xb j))
            done)
    | 16 (* vmul *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get env a in
        let xb = Array.unsafe_get env b in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j
              (Array.unsafe_get xa j *. Array.unsafe_get xb j)
        done
    | 17 (* vmacc *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let xb = Array.unsafe_get env b in
        let xc = Array.unsafe_get env c in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j
              (Array.unsafe_get xa j
              +. (Array.unsafe_get xb j *. Array.unsafe_get xc j))
        done
    | 18 (* jmp *) ->
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then Array.unsafe_set sleep j c
        done
    | 19 (* jnot *) ->
        let xa = Array.unsafe_get regs a in
        let xb = Array.unsafe_get regs b in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then begin
            let x = Array.unsafe_get xa j in
            let y = Array.unsafe_get xb j in
            let holds =
              match d with
              | 0 -> x < y
              | 1 -> x <= y
              | 2 -> x > y
              | _ -> x >= y
            in
            if not holds then Array.unsafe_set sleep j c
          end
        done
    | 20 (* ste *) ->
        let dst = Array.unsafe_get env c in
        let src = Array.unsafe_get regs a in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j (Array.unsafe_get src j)
        done
    | 21 (* sto *) ->
        let dst = Array.unsafe_get out c in
        let src = Array.unsafe_get regs a in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j (Array.unsafe_get src j)
        done
    | 22 (* emulk *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get env a in
        let k = Array.unsafe_get consts c in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j (Array.unsafe_get xa j *. k)
        done
    | 23 (* eaddk *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get env a in
        let k = Array.unsafe_get consts c in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j (Array.unsafe_get xa j +. k)
        done
    | 24 (* eneg *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get env a in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j (-.Array.unsafe_get xa j)
        done
    | 25 (* esqr *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get env a in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then begin
            let x = Array.unsafe_get xa j in
            Array.unsafe_set dst j (x *. x)
          end
        done
    | 26 (* erecip *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get env a in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j (1. /. Array.unsafe_get xa j)
        done
    | 27 (* ecall1 *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get env a in
        (match c with
        | 0 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.sin (Array.unsafe_get xa j))
            done
        | 1 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.cos (Array.unsafe_get xa j))
            done
        | 2 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.tan (Array.unsafe_get xa j))
            done
        | 3 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.asin (Array.unsafe_get xa j))
            done
        | 4 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.acos (Array.unsafe_get xa j))
            done
        | 5 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.atan (Array.unsafe_get xa j))
            done
        | 6 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.sinh (Array.unsafe_get xa j))
            done
        | 7 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.cosh (Array.unsafe_get xa j))
            done
        | 8 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.tanh (Array.unsafe_get xa j))
            done
        | 9 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.exp (Array.unsafe_get xa j))
            done
        | 10 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.log (Array.unsafe_get xa j))
            done
        | 11 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.sqrt (Array.unsafe_get xa j))
            done
        | 12 ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then
                Array.unsafe_set dst j (Float.abs (Array.unsafe_get xa j))
            done
        | _ (* 13: sign *) ->
            for j = lo to hi do
              if Array.unsafe_get sleep j <= pc then begin
                let x = Array.unsafe_get xa j in
                Array.unsafe_set dst j
                  (if x > 0. then 1. else if x < 0. then -1. else 0.)
              end
            done)
    | 28 (* emula *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get env a in
        let xb = Array.unsafe_get regs b in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j
              (Array.unsafe_get xa j *. Array.unsafe_get xb j)
        done
    | _ (* 29: emulb *) ->
        let dst = Array.unsafe_get regs d in
        let xa = Array.unsafe_get regs a in
        let xb = Array.unsafe_get env b in
        for j = lo to hi do
          if Array.unsafe_get sleep j <= pc then
            Array.unsafe_set dst j
              (Array.unsafe_get xa j *. Array.unsafe_get xb j)
        done);
    mloop code consts regs env out sleep stop (pc + 5) lo hi
  end

(* ---- hybrid driver (programs with jumps) ----

   The masked walk above pays a per-lane sleep test on every
   instruction and executes {e both} arms of every branch, while the
   scalar interpreter jumps over the arm it does not take.  The driver
   recovers the scalar behaviour whenever the batch agrees: it tracks
   the number of sleeping lanes, runs jump-free segments through the
   unmasked [sloop] while everyone is awake, resolves a [jnot] all
   lanes answer the same way by jumping (skipping the untaken arm
   entirely), and only falls back to [mloop] segments while lanes
   genuinely diverge.  [nasleep] counts lanes with [sleep.(j) > pc];
   [next_wake] is the smallest wake-up pc among them ([max_int] when
   none sleep), so sleeper counts are only recomputed at pcs where a
   lane can actually wake. *)

let rec drive code consts njump regs env out sleep stop pc lo hi nasleep
    next_wake =
  if pc < stop then begin
    if nasleep = 0 then begin
      let j = Array.unsafe_get njump (pc / 5) in
      if j > pc then begin
        (* jump-free prefix, everyone awake: full-speed unmasked run *)
        sloop code consts regs env out j pc lo hi;
        drive code consts njump regs env out sleep stop j lo hi 0 max_int
      end
      else begin
        let op = Array.unsafe_get code pc in
        let c = Array.unsafe_get code (pc + 4) in
        if op = 18 (* jmp: everyone skips to the target *) then
          drive code consts njump regs env out sleep stop c lo hi 0 max_int
        else begin
          (* jnot with all lanes awake *)
          let d = Array.unsafe_get code (pc + 1) in
          let xa = Array.unsafe_get regs (Array.unsafe_get code (pc + 2)) in
          let xb = Array.unsafe_get regs (Array.unsafe_get code (pc + 3)) in
          let fails = ref 0 in
          for j = lo to hi do
            let x = Array.unsafe_get xa j in
            let y = Array.unsafe_get xb j in
            let holds =
              match d with
              | 0 -> x < y
              | 1 -> x <= y
              | 2 -> x > y
              | _ -> x >= y
            in
            if not holds then begin
              incr fails;
              Array.unsafe_set sleep j c
            end
          done;
          if !fails = 0 then
            drive code consts njump regs env out sleep stop (pc + 5) lo hi 0
              max_int
          else if !fails = hi - lo + 1 then
            (* unanimous: skip the then-arm like the scalar VM *)
            drive code consts njump regs env out sleep stop c lo hi 0 max_int
          else
            drive code consts njump regs env out sleep stop (pc + 5) lo hi
              !fails c
        end
      end
    end
    else if pc >= next_wake then begin
      (* a wake-up pc: recount the sleepers *)
      let n = ref 0 and nw = ref max_int in
      for j = lo to hi do
        let s = Array.unsafe_get sleep j in
        if s > pc then begin
          incr n;
          if s < !nw then nw := s
        end
      done;
      drive code consts njump regs env out sleep stop pc lo hi !n !nw
    end
    else begin
      let j = Array.unsafe_get njump (pc / 5) in
      if j > pc then begin
        (* jump-free masked segment up to the next jump or wake-up *)
        let seg = if next_wake < j then next_wake else j in
        mloop code consts regs env out sleep seg pc lo hi;
        drive code consts njump regs env out sleep stop seg lo hi nasleep
          next_wake
      end
      else begin
        let op = Array.unsafe_get code pc in
        let c = Array.unsafe_get code (pc + 4) in
        if op = 18 then begin
          (* jmp under divergence: the awake lanes sleep to the join;
             everyone is now asleep, so hop to the earliest wake-up *)
          for j = lo to hi do
            if Array.unsafe_get sleep j <= pc then Array.unsafe_set sleep j c
          done;
          let nw = if c < next_wake then c else next_wake in
          drive code consts njump regs env out sleep stop nw lo hi
            (hi - lo + 1) nw
        end
        else begin
          (* jnot under divergence *)
          let d = Array.unsafe_get code (pc + 1) in
          let xa = Array.unsafe_get regs (Array.unsafe_get code (pc + 2)) in
          let xb = Array.unsafe_get regs (Array.unsafe_get code (pc + 3)) in
          let k = ref 0 in
          for j = lo to hi do
            if Array.unsafe_get sleep j <= pc then begin
              let x = Array.unsafe_get xa j in
              let y = Array.unsafe_get xb j in
              let holds =
                match d with
                | 0 -> x < y
                | 1 -> x <= y
                | 2 -> x > y
                | _ -> x >= y
              in
              if not holds then begin
                incr k;
                Array.unsafe_set sleep j c
              end
            end
          done;
          let nl = nasleep + !k in
          let nw = if c < next_wake then c else next_wake in
          if nl = hi - lo + 1 then
            (* everyone asleep: hop to the earliest wake-up *)
            drive code consts njump regs env out sleep stop nw lo hi nl nw
          else
            drive code consts njump regs env out sleep stop (pc + 5) lo hi nl
              nw
        end
      end
    end
  end

let exec t ~env ~out ~lo ~hi =
  if lo < 0 || hi > t.width || lo >= hi then
    invalid_arg "Vm_batch.exec: bad lane range";
  (if env != t.seen_env || out != t.seen_out then begin
     if Array.length env < t.env_size then
       invalid_arg "Vm_batch.exec: env too small";
     if Array.length out < t.out_size then
       invalid_arg "Vm_batch.exec: out too small";
     let full = ref true in
     for s = 0 to t.env_size - 1 do
       let n = Array.length env.(s) in
       if n < hi then invalid_arg "Vm_batch.exec: env column too short";
       if n < t.width then full := false
     done;
     for s = 0 to t.out_size - 1 do
       let n = Array.length out.(s) in
       if n < hi then invalid_arg "Vm_batch.exec: out column too short";
       if n < t.width then full := false
     done;
     (* Cache only when every column covers the full batch width, so a
        later call with a larger lane range stays covered. *)
     if !full then begin
       t.seen_env <- env;
       t.seen_out <- out
     end
   end);
  let stop = Array.length t.code in
  if t.has_jumps then begin
    Array.fill t.sleep lo (hi - lo) 0;
    drive t.code t.consts t.njump t.regs env out t.sleep stop 0 lo (hi - 1) 0
      max_int
  end
  else sloop t.code t.consts t.regs env out stop 0 lo (hi - 1)

let result_row t =
  if t.result < 0 then
    invalid_arg "Vm_batch.result_row: statement program (use stores)";
  t.regs.(t.result)
