let build ?(weights = Cost.default) names e =
  let index v =
    let rec find i =
      if i >= Array.length names then raise (Eval.Unbound v)
      else if names.(i) = v then i
      else find (i + 1)
    in
    find 0
  in
  let w = weights in
  let rec build (e : Expr.t) : float array -> float ref -> float =
    match e with
    | Const x -> fun _ _ -> x
    | Var v ->
        let i = index v in
        fun env _ -> env.(i)
    | Add xs ->
        let fs = Array.of_list (List.map build xs) in
        let op_cost = float_of_int (Array.length fs - 1) *. w.w_add in
        fun env acc ->
          acc := !acc +. op_cost;
          let sum = ref 0. in
          Array.iter (fun f -> sum := !sum +. f env acc) fs;
          !sum
    | Mul xs ->
        let fs = Array.of_list (List.map build xs) in
        let op_cost = float_of_int (Array.length fs - 1) *. w.w_mul in
        fun env acc ->
          acc := !acc +. op_cost;
          let prod = ref 1. in
          Array.iter (fun f -> prod := !prod *. f env acc) fs;
          !prod
    | Pow (b, Const n) when Float.is_integer n ->
        let fb = build b in
        let a = Float.abs n in
        let mults =
          if a <= 1. then 0.
          else Float.ceil (Float.log a /. Float.log 2.)
        in
        let op_cost =
          (mults *. w.w_mul) +. if n < 0. then w.w_div else 0.
        in
        fun env acc ->
          acc := !acc +. op_cost;
          Expr.eval_pow (fb env acc) n
    | Pow (b, ex) ->
        let fb = build b and fe = build ex in
        fun env acc ->
          acc := !acc +. w.w_pow;
          Expr.eval_pow (fb env acc) (fe env acc)
    | Call (f, args) ->
        let fs = List.map build args in
        let fcost = w.w_call f in
        (match fs with
        | [ f1 ] ->
            fun env acc ->
              acc := !acc +. fcost;
              Expr.eval_func f [ f1 env acc ]
        | [ f1; f2 ] ->
            fun env acc ->
              acc := !acc +. fcost;
              Expr.eval_func f [ f1 env acc; f2 env acc ]
        | _ ->
            fun env acc ->
              acc := !acc +. fcost;
              Expr.eval_func f (List.map (fun g -> g env acc) fs))
    | If (c, t, e') ->
        let fl = build c.lhs and fr = build c.rhs in
        let ft = build t and fe = build e' in
        let rel = c.rel in
        fun env acc ->
          acc := !acc +. w.w_cmp;
          if Expr.eval_rel rel (fl env acc) (fr env acc) then ft env acc
          else fe env acc
  in
  build e
