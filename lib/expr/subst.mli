(** Capture-free substitution of variables by expressions. *)

val apply : (string * Expr.t) list -> Expr.t -> Expr.t
(** [apply bindings e] replaces every free occurrence of each bound variable
    simultaneously.  The result is re-normalised by the smart
    constructors. *)

val apply_map : Expr.t Map.Make(String).t -> Expr.t -> Expr.t

val rename : (string -> string) -> Expr.t -> Expr.t
(** Rename every variable through [f]. *)
