(** Mathematica-style FullForm ("prefix form") of expressions.

    The paper's code generator receives the model as "a list of abstract
    syntax trees, compatible with Mathematica's full form internal
    representation", with sub-expressions annotated by type information
    ([om$Type[x, om$Real]], Figure 11).  This module renders and parses that
    interchange format; the §3.3 intermediate-code line counts are computed
    over it. *)

val to_string : ?annotate:bool -> Expr.t -> string
(** One-line FullForm, e.g. [Plus[x, Times[-1, y]]].  With
    [~annotate:true] every variable is wrapped as [om$Type[v, om$Real]]. *)

val to_lines : ?annotate:bool -> ?width:int -> Expr.t -> string list
(** FullForm wrapped at argument boundaries to at most [width] columns
    (default 72), the way the ObjectMath compiler listed intermediate
    code. *)

val of_string : string -> Expr.t
(** Parse FullForm back, accepting [om$Type] annotations (they elaborate to
    plain variables).  @raise Failure on syntax errors. *)

val equation_to_string :
  ?annotate:bool -> lhs_var:string -> Expr.t -> string
(** Render a first-order ODE [x'(t) == rhs] the way Figure 11 shows:
    [Equal[Derivative[1][x][t], rhs]]. *)
