(** Batched structure-of-arrays interpreter for register-VM programs.

    A batch instance re-executes a validated {!Vm.program} over [width]
    independent environments at once: every virtual register becomes a
    [float array] of length [width] (batch-major SoA layout), so one
    instruction decode drives a tight float-array kernel over the whole
    batch instead of one lane.  This amortises the scalar VM's per-op
    dispatch the same way the register VM amortised the tree walker's
    per-node dispatch.

    {b Bitwise contract.}  Per lane, the arithmetic is the scalar
    interpreter's, operation for operation ({!Expr.eval_pow}, inlined
    [Float.min]/[Float.max], two-rounding [fma]) — lane [j] of a batch
    run is Int64-bitwise identical to a scalar {!Vm.exec} over lane
    [j]'s environment, and batch width 1 reproduces the scalar VM
    exactly.

    {b Control flow} is linearised SIMT-style with a per-lane wake-up
    counter: a lane failing a [jnot] sleeps until the branch target, a
    [jmp] puts the awake lanes to sleep until the join.  Forward-only
    structured jumps (the only kind {!Vm} emits) make this exact: each
    lane executes precisely the scalar taken path.  Jump-free programs
    use an unmasked fast path, and a hybrid driver extends it to
    branchy programs: while no lane sleeps, jump-free segments run
    unmasked and a unanimous [jnot] jumps over the untaken arm exactly
    like the scalar interpreter — the per-lane masked walk only runs
    while lanes genuinely diverge.

    {b Program conditioning.}  [create] rewrites the instruction stream
    for batched execution, preserving per-lane semantics bitwise: the
    compiler's write-once virtual registers are renamed onto a small
    physical file by occurrence-interval reuse (a few hundred
    [width]-float rows would fall out of cache), and single-use
    [ldv]s are fused into their consumer as batch-only env-operand
    opcodes, deleting a row round-trip per load.

    {b Concurrency.}  All mutable state is lane-indexed, so disjoint
    lane ranges of the same instance may run concurrently from
    different domains.  Overlapping ranges race, as do concurrent runs
    over shared env/out columns with overlapping lanes.

    {b Allocation.}  [exec] performs zero heap allocation: the register
    file is preallocated at {!create} and the interpreter loops are
    closure-free. *)

type t

val create : Vm.program -> width:int -> t
(** Wrap a compiled (and therefore validated) program for batched
    execution at the given width.  The instruction stream and constant
    pool are shared with the program; the register file is fresh.
    @raise Invalid_argument if [width < 1]. *)

val clone_scratch : t -> t
(** An independent instance over the same conditioned instruction
    stream: register rows, sleep counters and the validation memo are
    fresh; the (immutable) code, constant pool and jump table are
    shared.  Skips the compaction/fusion passes of {!create}, so it is
    cheap enough to call per job; clone and original may run
    concurrently from different domains. *)

val width : t -> int

val has_jumps : t -> bool
(** [true] when the program contains conditional code and the masked
    interpreter runs instead of the straight-line fast path. *)

val exec :
  t -> env:float array array -> out:float array array -> lo:int -> hi:int ->
  unit
(** [exec t ~env ~out ~lo ~hi] runs the program for lanes [lo..hi-1].
    [env] and [out] are SoA columns: [env.(slot).(lane)] mirrors the
    scalar [env.(slot)], and must provide at least the compile-time
    env/out sizes, each column at least [hi] long.  Expression programs
    accept [out = [||]].  Allocation-free.
    @raise Invalid_argument on a bad lane range or undersized arrays. *)

val result_row : t -> float array
(** For expression programs: the result register's lane row (the live
    array, not a copy — valid until the next {!exec}).
    @raise Invalid_argument for statement programs. *)
