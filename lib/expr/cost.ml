type weights = {
  w_add : float;
  w_mul : float;
  w_div : float;
  w_pow : float;
  w_call : Expr.func -> float;
  w_cmp : float;
}

let default_call : Expr.func -> float = function
  | Sin | Cos -> 20.
  | Tan -> 25.
  | Asin | Acos | Atan -> 25.
  | Sinh | Cosh | Tanh -> 25.
  | Exp -> 20.
  | Log -> 25.
  | Sqrt -> 10.
  | Abs | Sign -> 1.
  | Atan2 -> 30.
  | Min | Max -> 1.
  | Hypot -> 15.

let default =
  {
    w_add = 1.;
    w_mul = 1.;
    w_div = 4.;
    w_pow = 50.;
    w_call = default_call;
    w_cmp = 1.;
  }

(* [branch] combines the costs of the two arms of a conditional. *)
let rec cost w ~branch (e : Expr.t) =
  let k = cost w ~branch in
  match e with
  | Const _ | Var _ -> 0.
  | Add xs ->
      float_of_int (List.length xs - 1) *. w.w_add
      +. List.fold_left (fun acc x -> acc +. k x) 0. xs
  | Mul xs ->
      float_of_int (List.length xs - 1) *. w.w_mul
      +. List.fold_left (fun acc x -> acc +. k x) 0. xs
  | Pow (b, Const n) when Float.is_integer n ->
      (* Integer powers lower to repeated multiplication (or one division
         for negative exponents); cost log2 |n| multiplies. *)
      let a = Float.abs n in
      let mults = if a <= 1. then 0. else Float.ceil (Float.log a /. Float.log 2.) in
      k b +. (mults *. w.w_mul) +. (if n < 0. then w.w_div else 0.)
  | Pow (b, e') -> k b +. k e' +. w.w_pow
  | Call (f, args) ->
      w.w_call f +. List.fold_left (fun acc x -> acc +. k x) 0. args
  | If (c, t, e') ->
      w.w_cmp +. k c.lhs +. k c.rhs +. branch (k t) (k e')

let flops ?(weights = default) e = cost weights ~branch:Float.max e

let flops_mean ?(weights = default) e =
  cost weights ~branch:(fun a b -> (a +. b) /. 2.) e
