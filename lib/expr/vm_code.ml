(* Shared instruction-set definition for the register VM.

   Code is a flat [int array] with a fixed stride of {!stride} words per
   instruction: [op; dst; a; b; c].  The meaning of the operand fields
   depends on the opcode (register index, environment slot, constant-pool
   index, primitive id or jump target).  Keeping the encoding in its own
   module lets the lowering compiler ({!Vm}) and the optimiser
   ({!Peephole}) agree without a dependency cycle. *)

let stride = 5

(* Opcodes.  [dst]/[a]/[b] are register indices unless noted. *)
let op_ldc = 0 (* dst <- consts.(c) *)
let op_ldv = 1 (* dst <- env.(a) *)
let op_ldo = 2 (* dst <- out.(a) *)
let op_mov = 3 (* dst <- regs.(a) *)
let op_add = 4 (* dst <- regs.(a) +. regs.(b) *)
let op_sub = 5 (* dst <- regs.(a) -. regs.(b) *)
let op_mul = 6 (* dst <- regs.(a) *. regs.(b) *)
let op_neg = 7 (* dst <- -. regs.(a) *)
let op_sqr = 8 (* dst <- regs.(a) *. regs.(a) *)
let op_recip = 9 (* dst <- 1. /. regs.(a) *)
let op_pow = 10 (* dst <- regs.(a) ** regs.(b) *)
let op_fma = 11 (* dst <- regs.(a) *. regs.(b) +. regs.(c) *)
let op_addk = 12 (* dst <- regs.(a) +. consts.(c) *)
let op_mulk = 13 (* dst <- regs.(a) *. consts.(c) *)
let op_call1 = 14 (* dst <- prim1[c] regs.(a) *)
let op_call2 = 15 (* dst <- prim2[c] regs.(a) regs.(b) *)
let op_vmul = 16 (* dst <- env.(a) *. env.(b) *)
let op_vmacc = 17 (* dst <- regs.(a) +. env.(b) *. env.(c) *)
let op_jmp = 18 (* pc <- c *)
let op_jnot = 19 (* unless rel[dst] regs.(a) regs.(b): pc <- c *)
let op_ste = 20 (* env.(c) <- regs.(a) *)
let op_sto = 21 (* out.(c) <- regs.(a) *)
let n_opcodes = 22

(* Primitive ids for op_call1/op_call2.  The split mirrors
   {!Expr.func_arity}. *)
let prim1_funcs : Expr.func array =
  [|
    Sin; Cos; Tan; Asin; Acos; Atan; Sinh; Cosh; Tanh; Exp; Log; Sqrt; Abs;
    Sign;
  |]

let prim2_funcs : Expr.func array = [| Atan2; Min; Max; Hypot |]

let find_prim table f =
  let rec go i =
    if i >= Array.length table then invalid_arg "Vm_code: unknown primitive"
    else if table.(i) = f then i
    else go (i + 1)
  in
  go 0

let prim1_of_func f = find_prim prim1_funcs f
let prim2_of_func f = find_prim prim2_funcs f
let prim1_count = Array.length prim1_funcs
let prim2_count = Array.length prim2_funcs
let func_of_prim1 i = prim1_funcs.(i)
let func_of_prim2 i = prim2_funcs.(i)

let rel_id : Expr.rel -> int = function Lt -> 0 | Le -> 1 | Gt -> 2 | Ge -> 3
let rel_of_id = function
  | 0 -> Expr.Lt
  | 1 -> Expr.Le
  | 2 -> Expr.Gt
  | 3 -> Expr.Ge
  | _ -> invalid_arg "Vm_code.rel_of_id"

(* A decoded instruction, for inspection, disassembly and tests.  The
   interpreter never builds these. *)
type instr =
  | Ldc of int * float
  | Ldv of int * int
  | Ldo of int * int
  | Mov of int * int
  | Add of int * int * int
  | Sub of int * int * int
  | Mul of int * int * int
  | Neg of int * int
  | Sqr of int * int
  | Recip of int * int
  | Powr of int * int * int
  | Fma of int * int * int * int
  | Addk of int * int * float
  | Mulk of int * int * float
  | Call1 of int * Expr.func * int
  | Call2 of int * Expr.func * int * int
  | Vmul of int * int * int
  | Vmacc of int * int * int * int
  | Jmp of int
  | Jnot of Expr.rel * int * int * int
  | Ste of int * int
  | Sto of int * int

let decode_at code consts pos =
  let op = code.(pos)
  and dst = code.(pos + 1)
  and a = code.(pos + 2)
  and b = code.(pos + 3)
  and c = code.(pos + 4) in
  if op = op_ldc then Ldc (dst, consts.(c))
  else if op = op_ldv then Ldv (dst, a)
  else if op = op_ldo then Ldo (dst, a)
  else if op = op_mov then Mov (dst, a)
  else if op = op_add then Add (dst, a, b)
  else if op = op_sub then Sub (dst, a, b)
  else if op = op_mul then Mul (dst, a, b)
  else if op = op_neg then Neg (dst, a)
  else if op = op_sqr then Sqr (dst, a)
  else if op = op_recip then Recip (dst, a)
  else if op = op_pow then Powr (dst, a, b)
  else if op = op_fma then Fma (dst, a, b, c)
  else if op = op_addk then Addk (dst, a, consts.(c))
  else if op = op_mulk then Mulk (dst, a, consts.(c))
  else if op = op_call1 then Call1 (dst, func_of_prim1 c, a)
  else if op = op_call2 then Call2 (dst, func_of_prim2 c, a, b)
  else if op = op_vmul then Vmul (dst, a, b)
  else if op = op_vmacc then Vmacc (dst, a, b, c)
  else if op = op_jmp then Jmp c
  else if op = op_jnot then Jnot (rel_of_id dst, a, b, c)
  else if op = op_ste then Ste (c, a)
  else if op = op_sto then Sto (c, a)
  else invalid_arg "Vm_code.decode_at: bad opcode"

let decode code consts =
  Array.init (Array.length code / stride) (fun i ->
      decode_at code consts (i * stride))

let pp_instr ppf i =
  let g = Printf.sprintf "%g" in
  let s =
    match i with
    | Ldc (d, x) -> Printf.sprintf "ldc   r%d, %s" d (g x)
    | Ldv (d, s) -> Printf.sprintf "ldv   r%d, env[%d]" d s
    | Ldo (d, s) -> Printf.sprintf "ldo   r%d, out[%d]" d s
    | Mov (d, a) -> Printf.sprintf "mov   r%d, r%d" d a
    | Add (d, a, b) -> Printf.sprintf "add   r%d, r%d, r%d" d a b
    | Sub (d, a, b) -> Printf.sprintf "sub   r%d, r%d, r%d" d a b
    | Mul (d, a, b) -> Printf.sprintf "mul   r%d, r%d, r%d" d a b
    | Neg (d, a) -> Printf.sprintf "neg   r%d, r%d" d a
    | Sqr (d, a) -> Printf.sprintf "sqr   r%d, r%d" d a
    | Recip (d, a) -> Printf.sprintf "recip r%d, r%d" d a
    | Powr (d, a, b) -> Printf.sprintf "pow   r%d, r%d, r%d" d a b
    | Fma (d, a, b, c) -> Printf.sprintf "fma   r%d, r%d*r%d+r%d" d a b c
    | Addk (d, a, x) -> Printf.sprintf "addk  r%d, r%d, %s" d a (g x)
    | Mulk (d, a, x) -> Printf.sprintf "mulk  r%d, r%d, %s" d a (g x)
    | Call1 (d, f, a) ->
        Printf.sprintf "call  r%d, %s(r%d)" d (Expr.func_name f) a
    | Call2 (d, f, a, b) ->
        Printf.sprintf "call  r%d, %s(r%d, r%d)" d (Expr.func_name f) a b
    | Vmul (d, sa, sb) ->
        Printf.sprintf "vmul  r%d, env[%d]*env[%d]" d sa sb
    | Vmacc (d, acc, sa, sb) ->
        Printf.sprintf "vmacc r%d, r%d + env[%d]*env[%d]" d acc sa sb
    | Jmp t -> Printf.sprintf "jmp   %d" t
    | Jnot (r, a, b, t) ->
        Printf.sprintf "jnot  r%d %s r%d, %d" a (Expr.rel_name r) b t
    | Ste (s, a) -> Printf.sprintf "ste   env[%d], r%d" s a
    | Sto (s, a) -> Printf.sprintf "sto   out[%d], r%d" s a
  in
  Format.pp_print_string ppf s

(* Flop-unit weight of one instruction, on the same scale as
   {!Cost.default}: loads, moves and jumps are free; fused instructions
   charge the operations they combine. *)
let flop_weight code pos =
  let op = code.(pos) in
  if op = op_ldc || op = op_ldv || op = op_ldo || op = op_mov || op = op_jmp
     || op = op_ste || op = op_sto
  then 0.
  else if op = op_add || op = op_sub || op = op_mul || op = op_neg
          || op = op_sqr || op = op_addk || op = op_mulk || op = op_vmul
          || op = op_jnot
  then 1.
  else if op = op_fma || op = op_vmacc then 2.
  else if op = op_recip then 4.
  else if op = op_pow then 50.
  else if op = op_call1 then Cost.default.w_call (func_of_prim1 code.(pos + 4))
  else if op = op_call2 then Cost.default.w_call (func_of_prim2 code.(pos + 4))
  else invalid_arg "Vm_code.flop_weight: bad opcode"

(* Does this opcode write a register (as opposed to memory / control)? *)
let writes_reg op =
  op <> op_jmp && op <> op_jnot && op <> op_ste && op <> op_sto

let is_fused op = op = op_fma || op = op_vmul || op = op_vmacc || op = op_sqr

(* What each operand field of an instruction denotes, so the optimiser
   and the validator can interpret [dst; a; b; c] generically. *)
type field_kind =
  | K_none
  | K_reg
  | K_env
  | K_out
  | K_const
  | K_prim1
  | K_prim2
  | K_target
  | K_rel

let field_kinds o =
  if o = op_ldc then (K_reg, K_none, K_none, K_const)
  else if o = op_ldv then (K_reg, K_env, K_none, K_none)
  else if o = op_ldo then (K_reg, K_out, K_none, K_none)
  else if o = op_mov || o = op_neg || o = op_sqr || o = op_recip then
    (K_reg, K_reg, K_none, K_none)
  else if o = op_add || o = op_sub || o = op_mul || o = op_pow then
    (K_reg, K_reg, K_reg, K_none)
  else if o = op_fma then (K_reg, K_reg, K_reg, K_reg)
  else if o = op_addk || o = op_mulk then (K_reg, K_reg, K_none, K_const)
  else if o = op_call1 then (K_reg, K_reg, K_none, K_prim1)
  else if o = op_call2 then (K_reg, K_reg, K_reg, K_prim2)
  else if o = op_vmul then (K_reg, K_env, K_env, K_none)
  else if o = op_vmacc then (K_reg, K_reg, K_env, K_env)
  else if o = op_jmp then (K_none, K_none, K_none, K_target)
  else if o = op_jnot then (K_rel, K_reg, K_reg, K_target)
  else if o = op_ste then (K_none, K_reg, K_none, K_env)
  else if o = op_sto then (K_none, K_reg, K_none, K_out)
  else invalid_arg "Vm_code.field_kinds: bad opcode"
