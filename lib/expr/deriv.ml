open Expr

let rec diff v (e : Expr.t) =
  match e with
  | Const _ -> zero
  | Var w -> if w = v then one else zero
  | Add xs -> add (List.map (diff v) xs)
  | Mul xs ->
      (* Product rule over an n-ary product: sum over each factor
         differentiated with the others untouched. *)
      let rec terms before = function
        | [] -> []
        | f :: after ->
            mul ((diff v f :: List.rev before) @ after)
            :: terms (f :: before) after
      in
      add (terms [] xs)
  | Pow (b, Const n) ->
      (* d(b^n) = n * b^(n-1) * b' for constant n. *)
      mul [ const n; pow b (const (n -. 1.)); diff v b ]
  | Pow (b, ex) ->
      (* General case: b^e * (e' ln b + e b'/b). *)
      mul
        [
          pow b ex;
          add [ mul [ diff v ex; log b ]; mul [ ex; diff v b; pow b minus_one ] ];
        ]
  | Call (f, args) -> diff_call v f args
  | If (c, t, e') -> if_ c (diff v t) (diff v e')

and diff_call v f args =
  let chain inner outer = mul [ outer; diff v inner ] in
  match (f, args) with
  | Sin, [ x ] -> chain x (cos x)
  | Cos, [ x ] -> chain x (neg (sin x))
  | Tan, [ x ] -> chain x (add [ one; sqr (tan x) ])
  | Asin, [ x ] -> chain x (pow (sub one (sqr x)) (const (-0.5)))
  | Acos, [ x ] -> chain x (neg (pow (sub one (sqr x)) (const (-0.5))))
  | Atan, [ x ] -> chain x (div one (add [ one; sqr x ]))
  | Sinh, [ x ] -> chain x (call Cosh [ x ])
  | Cosh, [ x ] -> chain x (call Sinh [ x ])
  | Tanh, [ x ] -> chain x (sub one (sqr (call Tanh [ x ])))
  | Exp, [ x ] -> chain x (exp x)
  | Log, [ x ] -> chain x (div one x)
  | Sqrt, [ x ] -> chain x (div (const 0.5) (sqrt x))
  | Abs, [ x ] -> chain x (sign x)
  | Sign, [ x ] -> mul [ zero; diff v x ]
  | Atan2, [ y; x ] ->
      (* d atan2(y,x) = (x dy - y dx) / (x^2 + y^2) *)
      div
        (sub (mul [ x; diff v y ]) (mul [ y; diff v x ]))
        (add [ sqr x; sqr y ])
  | Min, [ a; b ] -> if_ (cond a Le b) (diff v a) (diff v b)
  | Max, [ a; b ] -> if_ (cond a Ge b) (diff v a) (diff v b)
  | Hypot, [ a; b ] ->
      div
        (add [ mul [ a; diff v a ]; mul [ b; diff v b ] ])
        (hypot a b)
  | _ -> invalid_arg "Deriv.diff: malformed call"

let gradient vars e = List.map (fun v -> (v, diff v e)) vars
